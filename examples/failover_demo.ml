(* Fail-over walkthrough: the two fail-over executions of the paper's
   Figure 1 (c and d), driven explicitly.

   (c) The primary crashes AFTER the commit decision reached the regD
       write-once register but BEFORE it told anyone: the cleaning thread of
       a backup tries to abort, loses against the register (write-once!),
       discovers the commit, finishes it and the client still delivers the
       ORIGINAL result — exactly once.

   (d) The primary crashes mid-compute: the cleaning thread aborts try 1,
       the client's retransmission reaches a new primary, and try 2 commits.

   Run with:  dune exec examples/failover_demo.exe *)

let cleaner_notes engine =
  List.filter_map
    (fun (e : Dsim.Trace.entry) ->
      match e.event with
      | Dsim.Trace.Note (pid, s)
        when String.length s > 8 && String.sub s 0 8 = "cleaned:" ->
          Some
            (Printf.sprintf "  [%.1f ms] %s %s" e.at
               (Dsim.Engine.name_of engine pid)
               s)
      | _ -> None)
    (Dsim.Trace.entries (Dsim.Engine.trace engine))

let scenario ~label ~crash_at =
  Printf.printf "--- %s (primary crashes at t=%.0f ms) ---\n" label crash_at;
  let engine, deployment =
    Harness.Simrun.deployment ~client_period:300.
      ~seed_data:(Workload.Bank.seed_accounts [ ("acct", 1000) ])
      ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        let r = issue "acct:-100" in
        Printf.printf "  client delivered %S after %d tr%s (%.1f ms)\n"
          r.result r.tries
          (if r.tries = 1 then "y" else "ies")
          (r.delivered_at -. r.issued_at))
      ()
  in
  Dsim.Engine.crash_at engine crash_at (Etx.Deployment.primary deployment);
  let quiesced =
    Etx.Deployment.run_to_quiescence ~deadline:120_000. deployment
  in
  assert quiesced;
  List.iter print_endline (cleaner_notes engine);
  let _, rm = List.hd deployment.dbs in
  (match Dbms.Rm.read_committed rm "acct" with
  | Some (Dbms.Value.Int balance) ->
      Printf.printf "  final balance: %d (debited exactly once)\n" balance
  | Some (Dbms.Value.Str _) | None -> assert false);
  (match Etx.Spec.check_all deployment with
  | [] -> print_endline "  specification holds"
  | violations ->
      List.iter print_endline violations;
      exit 1);
  print_endline "  message sequence diagram:";
  String.split_on_char '\n' (Harness.Seqdiag.of_engine engine)
  |> List.iter (fun line -> if line <> "" then print_endline ("    " ^ line));
  print_newline ()

let () =
  (* With the calibrated cost model, the decision lands in regD around
     t ≈ 225 ms and the client would deliver around t ≈ 243 ms. *)
  scenario ~label:"Fig 1(c): fail-over with commit" ~crash_at:230.;
  scenario ~label:"Fig 1(d): fail-over with abort" ~crash_at:100.
