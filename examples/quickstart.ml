(* Quickstart: issue one e-Transaction and watch the guarantees hold.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A deployment is a fresh simulated world: 3 stateless application
     servers running the asynchronous-replication protocol, 1 XA database,
     and a client. The [script] runs inside the client process; [issue]
     blocks until a COMMITTED result is delivered — that is the
     exactly-once contract. *)
  let _engine, deployment =
    Harness.Simrun.deployment
      ~seed_data:(Workload.Bank.seed_accounts [ ("alice", 100) ])
      ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        let record = issue "alice:-30" in
        Printf.printf "delivered: %s (in %.1f virtual ms, %d tr%s)\n"
          record.result
          (record.delivered_at -. record.issued_at)
          record.tries
          (if record.tries = 1 then "y" else "ies"))
      ()
  in
  (* Drive the virtual clock until the client is done and every database
     transaction is decided. *)
  let quiesced = Etx.Deployment.run_to_quiescence deployment in
  assert quiesced;

  (* The database state reflects exactly one execution. *)
  let _, rm = List.hd deployment.dbs in
  (match Dbms.Rm.read_committed rm "alice" with
  | Some (Dbms.Value.Int balance) ->
      Printf.printf "alice's balance: %d (was 100, debited 30 exactly once)\n"
        balance
  | Some (Dbms.Value.Str _) | None -> assert false);

  (* And the full e-Transaction specification (termination, agreement,
     validity — Section 3 of the paper) holds for the run. *)
  match Etx.Spec.check_all deployment with
  | [] -> print_endline "specification: T.1 T.2 A.1 A.2 A.3 V.1 V.2 all hold"
  | violations ->
      List.iter print_endline violations;
      exit 1
