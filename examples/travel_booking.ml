(* The paper's motivating travel application: book flight + hotel + car in
   one exactly-once transaction spanning three databases.

   Shows a genuine sell-out: the last seats go to whoever's transaction
   commits first, a concurrent request hits a user-level abort (the paper's
   footnote 4) and receives a committed "unavailable" report instead —
   never a double booking, never a lost booking.

   Run with:  dune exec examples/travel_booking.exe *)

let () =
  let destinations = [ "lisbon" ] in
  (* only 3 seats on the lisbon flight *)
  let inventory =
    Workload.Travel.seed_inventory ~destinations ~seats:3 ~rooms:10 ~cars:10
  in
  let _engine, deployment =
    Harness.Simrun.deployment ~n_dbs:3 (* flights / hotels / cars databases *)
      ~seed_data:inventory ~business:Workload.Travel.book
      ~script:(fun ~issue ->
        (* Party of two, then party of two again: 3 seats only — the second
           booking must fail cleanly, and the user must be TOLD it failed
           (rather than retrying blindly and maybe paying twice). *)
        List.iter
          (fun body ->
            let r = issue body in
            Printf.printf "%-10s -> %s (tries=%d)\n" body r.result r.tries)
          [ "lisbon:2"; "lisbon:2"; "lisbon:1" ])
      ()
  in
  let quiesced = Etx.Deployment.run_to_quiescence deployment in
  assert quiesced;

  (* Inventory accounting must be exact. *)
  let flights_rm = snd (List.nth deployment.dbs 0) in
  (match Dbms.Rm.read_committed flights_rm (Workload.Travel.seats_key "lisbon") with
  | Some (Dbms.Value.Int seats) ->
      Printf.printf "seats left on the lisbon flight: %d\n" seats
  | Some (Dbms.Value.Str _) | None -> assert false);

  match Etx.Spec.check_all deployment with
  | [] -> print_endline "specification holds across all three databases"
  | violations ->
      List.iter print_endline violations;
      exit 1
