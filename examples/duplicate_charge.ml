(* The motivation, demonstrated: with the unreliable baseline protocol a
   client that retries after a crash can be CHARGED TWICE; the e-Transaction
   protocol, under the identical fault schedule, charges exactly once.

   The schedule: the (single) application server crashes right after the
   database committed the debit but before the reply reached the client,
   then recovers. The client times out and retries. The baseline server is
   stateless, so the retry is a brand-new transaction — a second debit. The
   e-Transaction deployment instead recovers the committed decision from the
   wo-registers and re-delivers the ORIGINAL result.

   Run with:  dune exec examples/duplicate_charge.exe *)

let seed_data = Workload.Bank.seed_accounts [ ("card", 1000) ]

(* Crash times chosen inside each protocol's vulnerable window (calibrated
   cost model): the baseline server commits at the database around t ≈ 210
   and would reply at ≈ 214; the e-Transaction primary writes the commit
   decision into regD around t ≈ 225 and would reply at ≈ 243. *)
let baseline_crash = 200.

let etx_crash = 230.

let baseline_run () =
  let engine, b =
    Harness.Simrun.baseline ~client_period:300. ~seed_data
      ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        let r = issue "card:-100" in
        Printf.printf "  baseline client delivered %S (tries=%d)\n" r.result
          r.tries)
      ()
  in
  Dsim.Engine.crash_at engine baseline_crash b.server;
  Dsim.Engine.recover_at engine (baseline_crash +. 100.) b.server;
  ignore
    (Dsim.Engine.run_until ~deadline:120_000. engine (fun () ->
         Etx.Client.script_done b.client));
  let _, rm = List.hd b.dbs in
  match Dbms.Rm.read_committed rm "card" with
  | Some (Dbms.Value.Int balance) -> balance
  | Some (Dbms.Value.Str _) | None -> assert false

let etransaction_run () =
  let engine, d =
    Harness.Simrun.deployment ~client_period:300. ~seed_data
      ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        let r = issue "card:-100" in
        Printf.printf "  e-Transaction client delivered %S (tries=%d)\n"
          r.result r.tries)
      ()
  in
  Dsim.Engine.crash_at engine etx_crash (Etx.Deployment.primary d);
  let quiesced = Etx.Deployment.run_to_quiescence ~deadline:120_000. d in
  assert quiesced;
  (match Etx.Spec.check_all d with
  | [] -> ()
  | violations ->
      List.iter print_endline violations;
      exit 1);
  let _, rm = List.hd d.dbs in
  match Dbms.Rm.read_committed rm "card" with
  | Some (Dbms.Value.Int balance) -> balance
  | Some (Dbms.Value.Str _) | None -> assert false

let () =
  print_endline "Debiting 100 from a card with balance 1000; the server";
  print_endline "crashes after the commit but before replying, and the";
  print_endline "client retries.";
  print_newline ();
  let baseline_balance = baseline_run () in
  Printf.printf "  baseline final balance:      %4d%s\n" baseline_balance
    (if baseline_balance < 900 then "   <-- CHARGED TWICE" else "");
  print_newline ();
  let etx_balance = etransaction_run () in
  Printf.printf "  e-Transaction final balance: %4d   (exactly once)\n"
    etx_balance;
  assert (etx_balance = 900)
