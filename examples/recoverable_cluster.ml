(* The §5 extension in action: with persistent registers (crash-recovery
   consensus, the paper's pointer to [22,23]) the WHOLE middle tier can
   crash and come back, and the e-Transaction still executes exactly once.

   The run: one debit; all three application servers crash in a rolling
   wave starting mid-request and recover half a second later. A diskless
   deployment would be stuck forever (no majority was spared); the
   recoverable one finishes.

   Run with:  dune exec examples/recoverable_cluster.exe *)

let () =
  let engine, deployment =
    Harness.Simrun.deployment ~recoverable:true ~client_period:300.
      ~seed_data:(Workload.Bank.seed_accounts [ ("acct", 1000) ])
      ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        let r = issue "acct:-100" in
        Printf.printf "delivered %S after %d tr%s (%.1f virtual ms)\n"
          r.result r.tries
          (if r.tries = 1 then "y" else "ies")
          (r.delivered_at -. r.issued_at))
      ()
  in
  List.iteri
    (fun i server ->
      let at = 60. +. (float_of_int i *. 40.) in
      Dsim.Engine.crash_at engine at server;
      Dsim.Engine.recover_at engine (at +. 500.) server)
    deployment.app_servers;

  let quiesced =
    Etx.Deployment.run_to_quiescence ~deadline:300_000. deployment
  in
  assert quiesced;

  let _, rm = List.hd deployment.dbs in
  (match Dbms.Rm.read_committed rm "acct" with
  | Some (Dbms.Value.Int balance) ->
      Printf.printf "final balance: %d (debited exactly once across a full \
                     middle-tier outage)\n"
        balance;
      assert (balance = 900)
  | Some (Dbms.Value.Str _) | None -> assert false);

  (* agreement and non-blocking termination hold *)
  assert (Etx.Spec.agreement_a2 deployment = []);
  assert (Etx.Spec.agreement_a3 deployment = []);
  assert (Etx.Spec.termination_t2 deployment = []);
  print_endline "agreement + termination hold; see A5 for what this costs"
