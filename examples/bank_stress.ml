(* Stress run: 40 generated bank transfers through a hostile environment —
   10% message loss, heartbeat (imperfect) failure detection, one
   application-server crash and two database restarts — then check the full
   e-Transaction specification and print latency statistics.

   Run with:  dune exec examples/bank_stress.exe *)

let () =
  let kind = Workload.Generator.Bank_transfers { accounts = 8; max_amount = 50 } in
  let bodies = Workload.Generator.bodies ~seed:7 ~n:40 kind in
  let net = Dnet.Netmodel.lossy ~loss:0.10 (Dnet.Netmodel.three_tier ~n_dbs:1 ()) in
  let engine, deployment =
    Harness.Simrun.deployment ~seed:7 ~net ~client_period:300.
      ~fd_spec:
        (Etx.Appserver.Fd_heartbeat
           { period = 10.; initial_timeout = 60.; timeout_bump = 30. })
      ~seed_data:(Workload.Generator.seed_data_of kind)
      ~business:(Workload.Generator.business_of kind)
      ~script:(fun ~issue -> List.iter (fun body -> ignore (issue body)) bodies)
      ()
  in
  (* fault schedule *)
  Dsim.Engine.crash_at engine 1_500. (Etx.Deployment.primary deployment);
  let db = fst (List.hd deployment.dbs) in
  Dsim.Engine.crash_at engine 3_000. db;
  Dsim.Engine.recover_at engine 3_400. db;
  Dsim.Engine.crash_at engine 6_000. db;
  Dsim.Engine.recover_at engine 6_500. db;

  let quiesced =
    Etx.Deployment.run_to_quiescence ~deadline:600_000. deployment
  in
  Printf.printf "quiesced: %b at %.1f virtual ms\n" quiesced
    (Dsim.Engine.now_of engine);

  let records = Etx.Client.records deployment.client in
  let latencies =
    List.map (fun (r : Etx.Client.record) -> r.delivered_at -. r.issued_at) records
  in
  let summary = Stats.Summary.of_samples latencies in
  Format.printf "latency: %a@." Stats.Summary.pp summary;
  let retried =
    List.length (List.filter (fun (r : Etx.Client.record) -> r.tries > 1) records)
  in
  Printf.printf "%d/%d requests needed more than one try\n" retried
    (List.length records);

  (* Money conservation: transfers move balance around, never create it. *)
  let _, rm = List.hd deployment.dbs in
  let total =
    List.fold_left
      (fun acc i ->
        match Dbms.Rm.read_committed rm (Printf.sprintf "acct%d" i) with
        | Some (Dbms.Value.Int v) -> acc + v
        | Some (Dbms.Value.Str _) | None -> acc)
      0
      (List.init 8 Fun.id)
  in
  Printf.printf "sum of balances: %d (must be 8 x 10000)\n" total;
  assert (total = 80_000);

  match Etx.Spec.check_all deployment with
  | [] -> print_endline "specification holds under loss, crashes and restarts"
  | violations ->
      List.iter print_endline violations;
      exit 1
