(* Tests for the comparison protocols of the paper's Appendix 3: the
   unreliable baseline, logging 2PC, and primary-backup — including the
   behavioural contrasts the paper argues for (baseline duplication, 2PC
   blocking, primary-backup's need for perfect failure detection). *)

let bank = Workload.Bank.update

let seed_data = Workload.Bank.seed_accounts [ ("card", 1000) ]

let one_debit ~issue = ignore (issue "card:-100")

let balance dbs =
  let _, rm = List.hd dbs in
  match Dbms.Rm.read_committed rm "card" with
  | Some (Dbms.Value.Int v) -> v
  | Some (Dbms.Value.Str _) | None -> Alcotest.fail "card balance missing"

(* ------------------------------------------------------------------ *)
(* Baseline *)

let test_baseline_nice_run () =
  let e, b =
    Harness.Simrun.baseline ~seed_data ~business:bank
      ~script:(fun ~issue ->
        let r = issue "card:-100" in
        Alcotest.(check int) "one try" 1 r.tries)
      ()
  in
  let ok =
    Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
        Etx.Client.script_done b.client)
  in
  Alcotest.(check bool) "finished" true ok;
  Alcotest.(check int) "debited once" 900 (balance b.dbs)

let test_baseline_latency_beats_everyone () =
  let e, b =
    Harness.Simrun.baseline ~seed_data ~business:bank ~script:one_debit ()
  in
  ignore
    (Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
         Etx.Client.script_done b.client));
  match Etx.Client.records b.client with
  | [ r ] ->
      let latency = r.delivered_at -. r.issued_at in
      Alcotest.(check bool)
        (Printf.sprintf "latency %.1f near 217" latency)
        true
        (latency > 205. && latency < 230.)
  | _ -> Alcotest.fail "expected one record"

let test_baseline_double_charge () =
  (* The motivating hazard: crash after commit, before reply; the retry is
     a new transaction and the card is charged twice. *)
  let e, b =
    Harness.Simrun.baseline ~client_period:300. ~seed_data ~business:bank
      ~script:one_debit ()
  in
  Dsim.Engine.crash_at e 200. b.server;
  Dsim.Engine.recover_at e 280. b.server;
  ignore
    (Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
         Etx.Client.script_done b.client));
  Alcotest.(check int) "charged twice" 800 (balance b.dbs)

let test_baseline_user_abort_propagates () =
  (* A poisoned transaction must not one-phase-commit. *)
  let e, b =
    Harness.Simrun.baseline
      ~seed_data:(Workload.Bank.seed_accounts [ ("a", 10); ("b", 0) ])
      ~business:Workload.Bank.transfer
      ~script:(fun ~issue ->
        let r = issue "a:b:100" in
        Alcotest.(check bool) "eventually a failure report" true
          (r.tries >= 2))
      ()
  in
  let ok =
    Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
        Etx.Client.script_done b.client)
  in
  Alcotest.(check bool) "finished" true ok;
  let _, rm = List.hd b.dbs in
  Alcotest.(check bool) "no partial transfer" true
    (Dbms.Rm.read_committed rm "a" = Some (Dbms.Value.Int 10))

(* ------------------------------------------------------------------ *)
(* 2PC *)

let test_tpc_nice_run () =
  let e, t =
    Harness.Simrun.tpc ~seed_data ~business:bank
      ~script:(fun ~issue ->
        let r = issue "card:-100" in
        Alcotest.(check int) "one try" 1 r.tries)
      ()
  in
  let ok =
    Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
        Etx.Client.script_done t.client)
  in
  Alcotest.(check bool) "finished" true ok;
  Alcotest.(check int) "debited once" 900 (balance t.dbs);
  Alcotest.(check int) "two forced IOs" 2
    (Dstore.Disk.forced_writes t.coordinator_disk)

let test_tpc_blocking_then_recovery_resolves () =
  (* Crash the coordinator between the votes and the decide: the database
     stays in-doubt — locks held — until the coordinator recovers (2PC is
     blocking). Presumed-nothing recovery then aborts. *)
  let e, t =
    Harness.Simrun.tpc ~client_period:300. ~seed_data ~business:bank
      ~script:one_debit ()
  in
  (* with the calibrated model, votes are in around t≈228 and the outcome
     record is forced at ≈229-242 *)
  Dsim.Engine.crash_at e 228.5 t.coordinator;
  ignore (Dsim.Engine.run ~deadline:2_000. e);
  let _, rm = List.hd t.dbs in
  Alcotest.(check int) "in-doubt while coordinator down" 1
    (List.length (Dbms.Rm.in_doubt rm));
  Alcotest.(check bool) "locks held (blocking!)" true
    (List.length (Dbms.Rm.locks_held rm) > 0);
  (* recovery resolves it *)
  Dsim.Engine.recover e t.coordinator;
  ignore (Dsim.Engine.run ~deadline:120_000. e);
  Alcotest.(check int) "resolved after recovery" 0
    (List.length (Dbms.Rm.in_doubt rm));
  Alcotest.(check int) "no locks" 0 (List.length (Dbms.Rm.locks_held rm))

let test_etx_not_blocking_same_crash () =
  (* Contrast: the e-Transaction protocol resolves the same crash without
     the crashed process ever coming back. *)
  let e, d =
    Harness.Simrun.deployment ~client_period:300. ~seed_data ~business:bank
      ~script:one_debit ()
  in
  (* crash the primary right after the votes came back *)
  Dsim.Engine.crash_at e 222. (Etx.Deployment.primary d);
  let ok = Etx.Deployment.run_to_quiescence ~deadline:120_000. d in
  Alcotest.(check bool) "resolved without recovery" true ok;
  let _, rm = List.hd d.dbs in
  Alcotest.(check int) "no in-doubt" 0 (List.length (Dbms.Rm.in_doubt rm));
  Alcotest.(check (list string)) "spec holds" [] (Etx.Spec.check_all d)

let test_tpc_recovery_redrives_logged_commit () =
  (* Crash after the outcome record was forced but before the decides went
     out: recovery must re-drive the COMMIT. *)
  let e, t =
    Harness.Simrun.tpc ~client_period:300. ~seed_data ~business:bank
      ~script:one_debit ()
  in
  (* log-outcome is forced around t≈229-241.5; crash just after *)
  Dsim.Engine.crash_at e 241.8 t.coordinator;
  Dsim.Engine.recover_at e 400. t.coordinator;
  ignore
    (Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
         Etx.Client.script_done t.client));
  let _, rm = List.hd t.dbs in
  Alcotest.(check int) "no in-doubt" 0 (List.length (Dbms.Rm.in_doubt rm));
  (* the logged commit was re-driven: the money moved exactly once, even
     though the client also retried (getting a fresh-transaction result) *)
  Alcotest.(check bool) "committed outcome re-driven" true
    (List.exists
       (function
         | Baselines.Tpc.L_outcome (_, Dbms.Rm.Commit) -> true
         | Baselines.Tpc.L_outcome (_, Dbms.Rm.Abort) | Baselines.Tpc.L_start _
           ->
             false)
       (Dstore.Log.records t.log))

(* ------------------------------------------------------------------ *)
(* Primary-backup *)

let test_pb_nice_run () =
  let e, p =
    Harness.Simrun.pbackup ~seed_data ~business:bank
      ~script:(fun ~issue ->
        let r = issue "card:-100" in
        Alcotest.(check int) "one try" 1 r.tries)
      ()
  in
  let ok =
    Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
        Etx.Client.script_done p.client)
  in
  Alcotest.(check bool) "finished" true ok;
  Alcotest.(check int) "debited once" 900 (balance p.dbs)

let test_pb_failover_with_oracle_fd () =
  (* Primary crashes mid-compute; the backup (perfect detector) aborts the
     recorded transaction and serves the client's retry itself. *)
  let e, p =
    Harness.Simrun.pbackup ~client_period:300. ~seed_data ~business:bank
      ~script:one_debit ()
  in
  Dsim.Engine.crash_at e 100. p.primary;
  let ok =
    Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
        Etx.Client.script_done p.client)
  in
  Alcotest.(check bool) "client served by backup" true ok;
  Alcotest.(check int) "debited exactly once" 900 (balance p.dbs)

let test_pb_failover_finishes_recorded_commit () =
  (* Primary crashes after recording the commit outcome at the backup but
     before the decides: the backup finishes the COMMIT. *)
  let e, p =
    Harness.Simrun.pbackup ~client_period:300. ~seed_data ~business:bank
      ~script:one_debit ()
  in
  (* outcome is recorded at the backup around t≈232 *)
  Dsim.Engine.crash_at e 236. p.primary;
  let ok =
    Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
        Etx.Client.script_done p.client)
  in
  Alcotest.(check bool) "delivered" true ok;
  Alcotest.(check int) "committed exactly once" 900 (balance p.dbs)

let test_pb_false_suspicion_inconsistency () =
  (* The paper's warning, demonstrated: with an imperfect detector a false
     suspicion makes the (alive) primary and the promoted backup decide
     concurrently, and with skewed link latencies two databases receive
     OPPOSITE decisions first — permanent divergence. The e-Transaction
     protocol closes exactly this hole with wo-registers. *)
  let n_dbs = 2 in
  (* db pids are 0 and 1; primary 2, backup 3, client 4 *)
  let net _rng ~src ~dst =
    let link a b =
      match (a, b) with
      | 2, 0 | 0, 2 -> 1.0 (* primary <-> db1: fast *)
      | 2, 1 | 1, 2 -> 40.0 (* primary <-> db2: slow *)
      | 3, 0 | 0, 3 -> 80.0 (* backup <-> db1: slower *)
      | 3, 1 | 1, 3 -> 1.0 (* backup <-> db2: fast *)
      | 2, 3 | 3, 2 -> 60.0 (* primary <-> backup: slow records *)
      | _ -> 2.0
    in
    [ link src dst ]
  in
  (* falsely suspect the primary from t=600 even though it is alive; the
     predicate runs inside the backup's fiber, so it can read virtual time
     through the runtime it was built on *)
  let backup_fd _rt =
    Dnet.Fdetect.of_fun (fun pid ->
        pid = 2 && Runtime.Etx_runtime.now () > 600.)
  in
  let e, p =
    Harness.Simrun.pbackup ~net ~n_dbs ~client_period:10_000. ~seed_data
      ~business:bank ~backup_fd ~script:one_debit ()
  in
  ignore (Dsim.Engine.run ~deadline:60_000. e);
  let rm1 = snd (List.nth p.dbs 0) and rm2 = snd (List.nth p.dbs 1) in
  let rid =
    match Etx.Client.records p.client with
    | [ r ] -> r.rid
    | _ -> Alcotest.fail "expected one delivered record"
  in
  let xid = Dbms.Xid.make ~rid ~j:1 in
  let ph rm =
    match Dbms.Rm.phase_of rm xid with
    | Some Dbms.Rm.Committed -> "C"
    | Some Dbms.Rm.Aborted -> "A"
    | Some Dbms.Rm.Prepared -> "P"
    | Some Dbms.Rm.Active -> "act"
    | None -> "?"
  in
  (* the divergence: db1 committed, db2 aborted *)
  Alcotest.(check string) "db1 committed" "C" (ph rm1);
  Alcotest.(check string) "db2 aborted" "A" (ph rm2)

let () =
  Alcotest.run "baselines"
    [
      ( "baseline",
        [
          Alcotest.test_case "nice run" `Quick test_baseline_nice_run;
          Alcotest.test_case "latency ~217ms" `Quick
            test_baseline_latency_beats_everyone;
          Alcotest.test_case "double charge on retry" `Quick
            test_baseline_double_charge;
          Alcotest.test_case "user abort propagates" `Quick
            test_baseline_user_abort_propagates;
        ] );
      ( "2pc",
        [
          Alcotest.test_case "nice run + 2 forced IOs" `Quick test_tpc_nice_run;
          Alcotest.test_case "blocking until recovery" `Quick
            test_tpc_blocking_then_recovery_resolves;
          Alcotest.test_case "e-Transactions not blocking" `Quick
            test_etx_not_blocking_same_crash;
          Alcotest.test_case "recovery re-drives logged commit" `Quick
            test_tpc_recovery_redrives_logged_commit;
        ] );
      ( "primary-backup",
        [
          Alcotest.test_case "nice run" `Quick test_pb_nice_run;
          Alcotest.test_case "fail-over (abort path)" `Quick
            test_pb_failover_with_oracle_fd;
          Alcotest.test_case "fail-over finishes commit" `Quick
            test_pb_failover_finishes_recorded_commit;
          Alcotest.test_case "false suspicion diverges (paper's warning)"
            `Quick test_pb_false_suspicion_inconsistency;
        ] );
    ]
