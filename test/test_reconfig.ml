(* Elastic reconfiguration tests (DESIGN.md §16): the epoch-versioned
   shard map and its refinement algebra, the storage-level migration
   surface (seal / import), online shard splits under live traffic with
   the full cluster spec asserting, crash chaos over every migration
   phase, rolling restart, and the observability contract. *)

open Etx

(* ------------------------------------------------------------------ *)
(* Shard map: epochs, refinement, helpers *)

(* the unversioned placement function, reimplemented independently: the
   epoch-0 map must reproduce it bit-for-bit *)
let fnv1a_ref key =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let some_keys =
  [ "acct0"; "acct1"; "acct2"; "acct9"; "x"; ""; "a:b"; "zebra"; "k17" ]

let test_epoch0_identity () =
  List.iter
    (fun shards ->
      let m = Shard_map.create ~shards () in
      Alcotest.(check int) "epoch 0" 0 (Shard_map.epoch m);
      List.iter
        (fun k ->
          let expect = if shards = 1 then 0 else fnv1a_ref k mod shards in
          Alcotest.(check int)
            (Printf.sprintf "placement of %S over %d" k shards)
            expect (Shard_map.shard_of m k))
        some_keys)
    [ 1; 2; 3; 4; 8 ]

let test_split_refinement () =
  let m0 = Shard_map.create ~shards:2 () in
  let m1 = Shard_map.split m0 ~group:0 ~target:2 () in
  Alcotest.(check int) "epoch bumped" 1 (Shard_map.epoch m1);
  Alcotest.(check int) "slots constant" 2 (Shard_map.slots m1);
  Alcotest.(check int) "three groups" 3 (Shard_map.shards m1);
  Alcotest.(check (list int)) "groups" [ 0; 1; 2 ] (Shard_map.groups m1);
  (* refinement: a key either stays put or moves 0 -> 2; nothing else *)
  let saw_move = ref false in
  for i = 0 to 199 do
    let k = Printf.sprintf "acct%d" i in
    let a = Shard_map.shard_of m0 k and b = Shard_map.shard_of m1 k in
    (match Shard_map.moved m0 m1 k with
    | None -> Alcotest.(check int) ("unmoved " ^ k) a b
    | Some (s, d) ->
        saw_move := true;
        Alcotest.(check (pair int int)) ("move of " ^ k) (0, 2) (s, d);
        Alcotest.(check int) ("was at 0: " ^ k) 0 a;
        Alcotest.(check int) ("now at 2: " ^ k) 2 b);
    if a = 1 then Alcotest.(check int) ("shard 1 untouched: " ^ k) 1 b
  done;
  Alcotest.(check bool) "some key moved" true !saw_move;
  Alcotest.(check (list (pair int int)))
    "diff names exactly the move" [ (0, 2) ]
    (List.map
       (fun { Shard_map.src; dst } -> (src, dst))
       (Shard_map.diff m0 m1));
  (* a second, sequential split of the other source group *)
  let m2 = Shard_map.split m1 ~group:1 ~target:3 () in
  Alcotest.(check int) "epoch 2" 2 (Shard_map.epoch m2);
  Alcotest.(check (list int)) "four groups" [ 0; 1; 2; 3 ]
    (Shard_map.groups m2);
  Alcotest.(check (list (pair int int)))
    "second diff" [ (1, 3) ]
    (List.map
       (fun { Shard_map.src; dst } -> (src, dst))
       (Shard_map.diff m1 m2))

let test_split_validation () =
  let m = Shard_map.create ~shards:2 () in
  Alcotest.check_raises "target = source"
    (Invalid_argument "Shard_map.split: target = source group") (fun () ->
      ignore (Shard_map.split m ~group:0 ~target:0 ()));
  Alcotest.check_raises "gap"
    (Invalid_argument "Shard_map.split: target group would leave a gap")
    (fun () -> ignore (Shard_map.split m ~group:0 ~target:5 ()));
  Alcotest.check_raises "empty source"
    (Invalid_argument "Shard_map.split: source group owns nothing") (fun () ->
      ignore (Shard_map.split m ~group:7 ~target:2 ()));
  let m1 = Shard_map.split m ~group:0 ~target:2 () in
  Alcotest.check_raises "diff needs consecutive epochs"
    (Invalid_argument "Shard_map.diff: epochs are not consecutive") (fun () ->
      ignore (Shard_map.diff m1 m1))

let test_range_split_boundary () =
  let m0 = Shard_map.create ~policy:(Shard_map.Range [ "m" ]) ~shards:2 () in
  let m1 = Shard_map.split ~boundary:"f" m0 ~group:0 ~target:2 () in
  Alcotest.(check int) "below boundary stays" 0 (Shard_map.shard_of m1 "acct");
  Alcotest.(check int) "at boundary moves" 2 (Shard_map.shard_of m1 "f");
  Alcotest.(check int) "between f and m moves" 2 (Shard_map.shard_of m1 "horse" |> fun s -> if s = 2 then 2 else s);
  Alcotest.(check int) "above m untouched" 1 (Shard_map.shard_of m1 "zebra")

let test_boundary_helpers () =
  (* median of distinct keys *)
  let b = Shard_map.suggest_boundary ~keys:[ "d"; "a"; "c"; "b"; "a" ] in
  Alcotest.(check bool) "median within observed range" true ("a" < b && b <= "d");
  Alcotest.check_raises "too few distinct keys"
    (Invalid_argument
       "Shard_map.suggest_boundary: need at least 2 distinct keys to split")
    (fun () -> ignore (Shard_map.suggest_boundary ~keys:[ "a"; "a" ]));
  (* quantile boundaries: each shard owns a roughly equal key share *)
  let keys = List.init 90 (Printf.sprintf "k%02d") in
  let m = Shard_map.range_of_keys ~shards:3 ~keys () in
  let counts = Array.make 3 0 in
  List.iter
    (fun k ->
      let s = Shard_map.shard_of m k in
      counts.(s) <- counts.(s) + 1)
    keys;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d holds a fair share (%d)" i n)
        true
        (n >= 20 && n <= 40))
    counts

(* ------------------------------------------------------------------ *)
(* Storage surface: seal and import at the resource-manager level *)

let in_sim f =
  let t = Dsim.Engine.create () in
  let result = ref None in
  let _ =
    Dsim.Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        result := Some (f t))
  in
  ignore (Dsim.Engine.run t);
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not run"

let fresh_rm ?(seed_data = []) ?(name = "db-test") () =
  let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
  Dbms.Rm.create ~timing:Dbms.Rm.zero_timing ~seed_data ~disk ~name ()

let test_seal_blocks_disowned_writes () =
  in_sim (fun _ ->
      let rm = fresh_rm ~seed_data:[ ("stay", Dbms.Value.Int 1) ] () in
      Dbms.Rm.seal rm ~epoch:1 ~owns:(fun k -> k <> "gone");
      Alcotest.(check int) "sealed" 1 (Dbms.Rm.sealed_epoch rm);
      (* a write of a disowned key votes No even though the exec is fine *)
      let x = Dbms.Xid.make ~rid:1 ~j:1 in
      Dbms.Rm.xa_start rm ~xid:x;
      ignore (Dbms.Rm.exec rm ~xid:x [ Dbms.Rm.Put ("gone", Dbms.Value.Int 9) ]);
      Dbms.Rm.xa_end rm ~xid:x;
      Alcotest.(check bool) "disowned write refused" true
        (Dbms.Rm.vote rm ~xid:x = Dbms.Rm.No);
      (* a write the seal still owns commits normally *)
      let y = Dbms.Xid.make ~rid:2 ~j:1 in
      Dbms.Rm.xa_start rm ~xid:y;
      ignore (Dbms.Rm.exec rm ~xid:y [ Dbms.Rm.Put ("stay", Dbms.Value.Int 2) ]);
      Dbms.Rm.xa_end rm ~xid:y;
      Alcotest.(check bool) "owned write accepted" true
        (Dbms.Rm.vote rm ~xid:y = Dbms.Rm.Yes);
      ignore (Dbms.Rm.decide rm ~xid:y Dbms.Rm.Commit);
      (* monotone: an older epoch cannot weaken the seal *)
      Dbms.Rm.seal rm ~epoch:0 ~owns:(fun _ -> true);
      Alcotest.(check int) "older re-seal ignored" 1 (Dbms.Rm.sealed_epoch rm);
      (* the seal survives a crash (it is in the redo log) *)
      Dbms.Rm.recover rm;
      Alcotest.(check int) "seal recovered" 1 (Dbms.Rm.sealed_epoch rm))

let test_in_doubt_moving () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = Dbms.Xid.make ~rid:1 ~j:1 in
      Dbms.Rm.xa_start rm ~xid:x;
      ignore (Dbms.Rm.exec rm ~xid:x [ Dbms.Rm.Put ("gone", Dbms.Value.Int 1) ]);
      Dbms.Rm.xa_end rm ~xid:x;
      Alcotest.(check bool) "prepared" true (Dbms.Rm.vote rm ~xid:x = Dbms.Rm.Yes);
      (* sealed while the moving-key write is prepared-but-undecided *)
      Dbms.Rm.seal rm ~epoch:1 ~owns:(fun k -> k <> "gone");
      Alcotest.(check int) "counted as in-doubt moving" 1
        (Dbms.Rm.in_doubt_moving rm);
      ignore (Dbms.Rm.decide rm ~xid:x Dbms.Rm.Commit);
      Alcotest.(check int) "drained after decide" 0 (Dbms.Rm.in_doubt_moving rm))

let test_import_idempotent () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let entries = [ (3, [ ("k", Dbms.Value.Int 7) ]); (5, [ ("k", Dbms.Value.Int 9) ]) ] in
      let wm = Dbms.Rm.import rm ~src:"src-db" ~entries ~upto:5 () in
      Alcotest.(check int) "watermark advanced" 5 wm;
      Alcotest.(check int) "watermark readable" 5
        (Dbms.Rm.import_watermark rm ~src:"src-db");
      Alcotest.(check bool) "value visible" true
        (Dbms.Rm.read_committed rm "k" = Some (Dbms.Value.Int 9));
      (* replaying the same transfer is a no-op *)
      let wm2 = Dbms.Rm.import rm ~src:"src-db" ~entries ~upto:5 () in
      Alcotest.(check int) "replay no-op" 5 wm2;
      Alcotest.(check bool) "value unchanged" true
        (Dbms.Rm.read_committed rm "k" = Some (Dbms.Value.Int 9));
      (* an overlapping transfer only applies the suffix *)
      let wm3 =
        Dbms.Rm.import rm ~src:"src-db"
          ~entries:[ (5, [ ("k", Dbms.Value.Int 9) ]); (8, [ ("k2", Dbms.Value.Int 1) ]) ]
          ~upto:8 ()
      in
      Alcotest.(check int) "suffix applied" 8 wm3;
      Alcotest.(check bool) "suffix value visible" true
        (Dbms.Rm.read_committed rm "k2" = Some (Dbms.Value.Int 1));
      (* per-source watermarks are independent *)
      Alcotest.(check int) "other source untouched" 0
        (Dbms.Rm.import_watermark rm ~src:"other-db");
      (* durable: the watermark and values survive recovery *)
      Dbms.Rm.recover rm;
      Alcotest.(check int) "watermark recovered" 8
        (Dbms.Rm.import_watermark rm ~src:"src-db");
      Alcotest.(check bool) "values recovered" true
        (Dbms.Rm.read_committed rm "k" = Some (Dbms.Value.Int 9)))

(* ------------------------------------------------------------------ *)
(* Idle equivalence: wiring the reconfiguration machinery on without ever
   splitting leaves the delivered results untouched. The cfg fibers do
   perturb the deterministic scheduler, so the comparison is by result
   content, not timestamps: distinct per-client keys make each client's
   expected results independent of cross-client interleaving. *)

let test_reconfig_idle_equivalence () =
  let keys = [ "acct0"; "acct1"; "acct2"; "acct3" ] in
  let seed_data =
    Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
  in
  let scripts =
    List.map
      (fun k ~issue ->
        for _ = 1 to 3 do
          ignore (issue (k ^ ":5"))
        done)
      keys
  in
  let run ~reconfig =
    let _e, c =
      Harness.Simrun.cluster ~seed:11 ~shards:2 ~seed_data ~reconfig
        ~business:Workload.Bank.update ~scripts ()
    in
    assert (Cluster.run_to_quiescence ~deadline:300_000. c);
    Alcotest.(check (list string))
      (Printf.sprintf "spec (reconfig=%b)" reconfig)
      [] (Cluster.Spec.check_all c);
    List.map
      (fun h ->
        List.map
          (fun (r : Client.record) -> (r.key, r.body, r.result))
          (Client.records h))
      c.Cluster.clients
  in
  let off = run ~reconfig:false and on = run ~reconfig:true in
  Alcotest.(check int) "same client count" (List.length off) (List.length on);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "client %d same results" i)
        true
        (List.sort compare a = List.sort compare b))
    (List.combine off on)

(* ------------------------------------------------------------------ *)
(* Online split under live traffic: stale-map clients keep exactly-once *)

let moving_keys ~from ~target ~src ~dst n =
  List.filter
    (fun k -> Shard_map.shard_of from k = src && Shard_map.shard_of target k = dst)
    (List.init n (Printf.sprintf "acct%d"))

let test_online_split_under_traffic () =
  let reg = Obs.Registry.create () in
  let keys = List.init 6 (Printf.sprintf "acct%d") in
  let seed_data =
    Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
  in
  let scripts =
    List.map
      (fun k ~issue ->
        for _ = 1 to 10 do
          ignore (issue (k ^ ":1"))
        done)
      keys
  in
  let _e, c =
    Harness.Simrun.cluster ~seed:3 ~obs:reg ~shards:2 ~reconfig:true
      ~provision:1 ~client_period:200. ~seed_data
      ~business:Workload.Bank.update ~scripts ()
  in
  let e1 = Cluster.split c ~group:0 ~target:2 in
  Alcotest.(check int) "split establishes epoch 1" 1 e1;
  Alcotest.(check bool) "epoch reached" true
    (Cluster.await_epoch ~deadline:300_000. c 1);
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  Alcotest.(check int) "cluster observed the flip" 1 (Cluster.epoch c);
  Alcotest.(check (list string)) "full spec incl. migration integrity" []
    (Cluster.Spec.check_all c);
  (* every issue delivered exactly once *)
  Alcotest.(check int) "all records delivered" 60
    (List.length (Cluster.all_records c));
  (* the moved keys physically live at the destination now: post-flip
     commits of moved keys happened on group 2's database *)
  let moved =
    moving_keys ~from:c.Cluster.map ~target:(Cluster.current_map c) ~src:0
      ~dst:2 6
  in
  Alcotest.(check bool) "some key moved" true (moved <> []);
  (* value continuity: every key's balance at its current owner group is
     exactly seed + its 10 committed increments — for the moved keys this
     proves the copy carried the seeded state across, not just that
     post-flip commits recreated the key from zero *)
  List.iter
    (fun k ->
      let owner = Etx.Shard_map.shard_of (Cluster.current_map c) k in
      List.iter
        (fun (_, rm) ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s balance continuous at group %d" k owner)
            (Some 1010)
            (match Dbms.Rm.read_committed rm k with
            | Some (Dbms.Value.Int n) -> Some n
            | _ -> None))
        (Cluster.group c owner).Cluster.dbs)
    keys;
  (* the metrics the migration promises *)
  Alcotest.(check bool) "keys moved counted" true
    (Obs.Registry.counter_total reg "migrate.keys_moved" > 0);
  Alcotest.(check bool) "clients refreshed their maps" true
    (Obs.Registry.counter_total reg "client.map_refresh" > 0)

(* ------------------------------------------------------------------ *)
(* Live 2 -> 4: two sequential splits double the cluster under traffic *)

let test_live_2_to_4 () =
  let keys = List.init 8 (Printf.sprintf "acct%d") in
  let seed_data =
    Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
  in
  let scripts =
    List.map
      (fun k ~issue ->
        for _ = 1 to 12 do
          ignore (issue (k ^ ":1"))
        done)
      keys
  in
  let _e, c =
    Harness.Simrun.cluster ~seed:17 ~shards:2 ~reconfig:true ~provision:2
      ~client_period:200. ~seed_data ~business:Workload.Bank.update ~scripts ()
  in
  ignore (Cluster.split c ~group:0 ~target:2);
  Alcotest.(check bool) "first split done" true
    (Cluster.await_epoch ~deadline:300_000. c 1);
  ignore (Cluster.split c ~group:1 ~target:3);
  Alcotest.(check bool) "second split done" true
    (Cluster.await_epoch ~deadline:600_000. c 2);
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:900_000. c);
  Alcotest.(check int) "epoch 2" 2 (Cluster.epoch c);
  Alcotest.(check (list int)) "four groups own keys" [ 0; 1; 2; 3 ]
    (Shard_map.groups (Cluster.current_map c));
  (* zero lost or duplicated records across both migrations *)
  Alcotest.(check (list string)) "full spec" [] (Cluster.Spec.check_all c);
  Alcotest.(check int) "every request delivered exactly once" 96
    (List.length (Cluster.all_records c));
  (* the spare groups took real traffic: both committed transactions *)
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "group %d committed transactions" g)
        true
        (List.exists
           (fun (_, rm) -> Dbms.Rm.committed_xids rm <> [])
           (Cluster.group c g).Cluster.dbs))
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Chaos: a 2 -> 3 split racing crashes in every phase. The victim index
   sweeps config-group servers (the migration drivers), the source
   database (crash + recovery mid-copy), destination and bystander
   servers; message loss shifts the phase the crash lands in. *)

let prop_split_chaos =
  QCheck.Test.make
    ~name:"online split under crashes and loss (2 shards + 1 spare)"
    ~count:100
    QCheck.(
      quad
        (int_range 0 1_000_000)
        (float_range 0. 0.08)
        (float_range 1. 2_500.)
        (int_range 0 9))
    (fun (seed, loss, crash_time, victim_index) ->
      let map = Shard_map.create ~shards:2 () in
      let keys = [ "acct0"; "acct1"; "acct2"; "acct3" ] in
      let seed_data =
        Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
      in
      let scripts =
        List.map
          (fun k ~issue ->
            ignore (issue (k ^ ":1"));
            ignore (issue (k ^ ":1")))
          keys
      in
      let net =
        Dnet.Netmodel.lossy ~loss (Dnet.Netmodel.three_tier ~n_dbs:3 ())
      in
      let e, c =
        Harness.Simrun.cluster ~seed ~map ~net ~reconfig:true ~provision:1
          ~client_period:300.
          ~fd_spec:
            (Appserver.Fd_heartbeat
               { period = 10.; initial_timeout = 60.; timeout_bump = 30. })
          ~seed_data ~business:Workload.Bank.update ~scripts ()
      in
      ignore (Cluster.split c ~group:0 ~target:2);
      (* victims 0-8: one application server of group 0 (the config group
         hosting the driver), 1 (bystander) or 2 (destination); victim 9:
         the source database, which recovers with its durable state *)
      (if victim_index < 9 then begin
         let shard = victim_index / 3 and i = victim_index mod 3 in
         let victim = List.nth (Cluster.group c shard).Cluster.app_servers i in
         Dsim.Engine.crash_at e crash_time victim
       end
       else begin
         let db = fst (List.hd (Cluster.group c 0).Cluster.dbs) in
         Dsim.Engine.crash_at e crash_time db;
         Dsim.Engine.recover_at e (crash_time +. 400.) db
       end);
      let ok = Cluster.run_to_quiescence ~deadline:600_000. c in
      ok
      && Cluster.epoch c = 1
      && Cluster.Spec.check_all c = []
      && List.length (Cluster.all_records c) = 8)

(* ------------------------------------------------------------------ *)
(* Rolling restart: every node of a group bounced one at a time under
   live traffic, spec asserting end to end. Servers are recoverable
   (registers on stable storage), the database recovers from its WAL. *)

let test_rolling_restart () =
  let seed_data = Workload.Bank.seed_accounts [ ("acct0", 1000); ("acct1", 1000) ] in
  let scripts =
    List.map
      (fun k ~issue ->
        for _ = 1 to 16 do
          ignore (issue (k ^ ":1"))
        done)
      [ "acct0"; "acct1" ]
  in
  let e, c =
    Harness.Simrun.cluster ~seed:23 ~shards:1 ~reconfig:true
      ~recoverable:true ~client_period:300. ~seed_data
      ~business:Workload.Bank.update ~scripts ()
  in
  (* one node down at a time: db, then each application server in turn *)
  let g = Cluster.group c 0 in
  let nodes = List.map fst g.Cluster.dbs @ g.Cluster.app_servers in
  List.iteri
    (fun i pid ->
      let at = 500. +. (float_of_int i *. 1_500.) in
      Dsim.Engine.crash_at e at pid;
      Dsim.Engine.recover_at e (at +. 700.) pid)
    nodes;
  Alcotest.(check bool) "quiesced through the restarts" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  Alcotest.(check (list string)) "spec held throughout" []
    (Cluster.Spec.check_all c);
  Alcotest.(check int) "all requests delivered" 32
    (List.length (Cluster.all_records c))

(* ------------------------------------------------------------------ *)
(* Observability: the migration metrics flow when wired, and are never
   emitted — not even as zero series — when reconfiguration is off. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_obs_migration_metrics () =
  let reg = Obs.Registry.create () in
  let keys = List.init 4 (Printf.sprintf "acct%d") in
  let seed_data =
    Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
  in
  let scripts =
    List.map
      (fun k ~issue ->
        for _ = 1 to 8 do
          ignore (issue (k ^ ":1"))
        done)
      keys
  in
  let _e, c =
    Harness.Simrun.cluster ~seed:29 ~obs:reg ~shards:2 ~reconfig:true
      ~provision:1 ~client_period:200. ~seed_data
      ~business:Workload.Bank.update ~scripts ()
  in
  ignore (Cluster.split c ~group:0 ~target:2);
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  Alcotest.(check (list string)) "spec" [] (Cluster.Spec.check_all c);
  (* the epoch gauge reached 1 on at least one server *)
  let epoch_gauges =
    List.filter
      (fun ((k : Obs.Registry.key), _) -> k.name = "reconfig.epoch")
      (Obs.Registry.gauges reg)
  in
  Alcotest.(check bool) "epoch gauge emitted" true (epoch_gauges <> []);
  Alcotest.(check bool) "epoch gauge reached 1" true
    (List.exists (fun (_, v) -> v = 1.) epoch_gauges);
  Alcotest.(check bool) "keys moved" true
    (Obs.Registry.counter_total reg "migrate.keys_moved" > 0);
  Alcotest.(check bool) "map refreshes" true
    (Obs.Registry.counter_total reg "client.map_refresh" > 0);
  (* drain time histogram observed at least the one source database *)
  (match Obs.Registry.merged_histogram reg "migrate.drain_ms" with
  | None -> Alcotest.fail "no migrate.drain_ms histogram"
  | Some h ->
      Alcotest.(check bool) "drain observed" true (Obs.Histogram.count h > 0));
  (* and everything round-trips through the Prometheus exporter *)
  let dump = Obs.Export_prom.to_string reg in
  List.iter
    (fun metric ->
      Alcotest.(check bool) (metric ^ " exported") true
        (Obs.Export_prom.counter_values dump ~metric <> []))
    [ "etx_migrate_keys_moved"; "etx_client_map_refresh" ];
  Alcotest.(check bool) "epoch gauge exported" true
    (contains dump "etx_reconfig_epoch")

let test_obs_zero_emission_when_off () =
  let reg = Obs.Registry.create () in
  let seed_data = Workload.Bank.seed_accounts [ ("acct0", 1000) ] in
  let _e, c =
    Harness.Simrun.cluster ~seed:31 ~obs:reg ~shards:2 ~seed_data
      ~business:Workload.Bank.update
      ~scripts:
        [
          (fun ~issue ->
            for _ = 1 to 4 do
              ignore (issue "acct0:1")
            done);
        ]
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:300_000. c);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " not emitted") 0
        (Obs.Registry.counter_total reg name))
    [ "migrate.keys_moved"; "migrate.bounced"; "client.map_refresh" ];
  Alcotest.(check bool) "no epoch gauge" true
    (List.for_all
       (fun ((k : Obs.Registry.key), _) -> k.name <> "reconfig.epoch")
       (Obs.Registry.gauges reg));
  Alcotest.(check bool) "no drain histogram" true
    (Obs.Registry.merged_histogram reg "migrate.drain_ms" = None);
  let dump = Obs.Export_prom.to_string reg in
  Alcotest.(check bool) "no migrate metric in the dump" false
    (contains dump "etx_migrate");
  Alcotest.(check bool) "no reconfig metric in the dump" false
    (contains dump "etx_reconfig");
  (* the classic pipeline still reports *)
  Alcotest.(check bool) "client.committed still counted" true
    (Obs.Registry.counter_total reg "client.committed" = 4)

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "reconfig"
    [
      ( "shard-map",
        [
          Alcotest.test_case "epoch-0 placement identity" `Quick
            test_epoch0_identity;
          Alcotest.test_case "split refines, diff names the move" `Quick
            test_split_refinement;
          Alcotest.test_case "split validation" `Quick test_split_validation;
          Alcotest.test_case "range split at a boundary" `Quick
            test_range_split_boundary;
          Alcotest.test_case "boundary helpers" `Quick test_boundary_helpers;
        ] );
      ( "storage",
        [
          Alcotest.test_case "seal blocks disowned writes" `Quick
            test_seal_blocks_disowned_writes;
          Alcotest.test_case "in-doubt moving drains" `Quick
            test_in_doubt_moving;
          Alcotest.test_case "import idempotent and durable" `Quick
            test_import_idempotent;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "idle reconfig wiring changes nothing" `Quick
            test_reconfig_idle_equivalence;
        ] );
      ( "migration",
        [
          Alcotest.test_case "online split under live traffic" `Quick
            test_online_split_under_traffic;
          Alcotest.test_case "live 2 -> 4 split" `Quick test_live_2_to_4;
          Alcotest.test_case "rolling restart under live traffic" `Quick
            test_rolling_restart;
        ] );
      ("chaos", [ q prop_split_chaos ]);
      ( "obs",
        [
          Alcotest.test_case "migration metrics emitted and exported" `Quick
            test_obs_migration_metrics;
          Alcotest.test_case "zero emission when off" `Quick
            test_obs_zero_emission_when_off;
        ] );
    ]
