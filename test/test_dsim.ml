(* Tests for the discrete-event simulation kernel. *)

open Dsim
open Runtime

type Types.payload += Ping of int | Pong of int

(* demux classes for the engine tests below; classification is global, so
   every Ping/Pong in this binary lands in these buckets — semantically
   invisible to the predicate-based tests *)
let cls_ping =
  Engine.register_class ~name:"test-ping" (function
    | Ping _ -> true
    | _ -> false)

let cls_pong =
  Engine.register_class ~name:"test-pong" (function
    | Pong _ -> true
    | _ -> false)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_peek () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_stable_on_ties =
  (* With (key, seq) ordering, equal keys drain in insertion order — the
     engine relies on this for determinism. *)
  QCheck.Test.make ~name:"heap FIFO among equal keys" ~count:200
    QCheck.(list (int_bound 5))
    (fun keys ->
      let h =
        Heap.create
          ~leq:(fun (k1, s1) (k2, s2) -> k1 < k2 || (k1 = k2 && s1 <= s2))
          ()
      in
      List.iteri (fun i k -> Heap.push h (k, i)) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      let out = drain [] in
      (* sequence numbers are increasing within each key class *)
      let by_key = Hashtbl.create 8 in
      List.for_all
        (fun (k, s) ->
          let prev = Option.value ~default:(-1) (Hashtbl.find_opt by_key k) in
          Hashtbl.replace by_key k s;
          s > prev)
        out)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different" false (Rng.int64 a = Rng.int64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  Alcotest.(check bool) "split differs" false (Rng.int64 a = Rng.int64 c)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float in range" ~count:500 QCheck.(int_range 1 10000)
    (fun seed ->
      let r = Rng.create ~seed in
      let v = Rng.float r 3.5 in
      v >= 0. && v < 3.5)

let prop_rng_int_range =
  QCheck.Test.make ~name:"int in range" ~count:500
    QCheck.(pair (int_range 1 1000) (int_range 1 50))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let test_rng_int_large_bound () =
  (* The bitmask-rejection sampler must stay uniform at bounds where a
     modulo fold visibly skews the distribution. With [bound = 3 * 2^60]
     the top third holds exactly 1/3 of the mass; check range and that the
     top third gets its share (3000 draws: expect ~1000, 3-sigma ~ 77). *)
  let bound = 3 * (1 lsl 60) in
  let r = Rng.create ~seed:12 in
  let hi = ref 0 in
  for _ = 1 to 3_000 do
    let v = Rng.int r bound in
    if v < 0 || v >= bound then Alcotest.failf "out of range: %d" v;
    if v >= 1 lsl 61 then incr hi
  done;
  Alcotest.(check bool)
    (Printf.sprintf "top third ~1/3 of draws (got %d/3000)" !hi)
    true
    (!hi > 850 && !hi < 1150);
  (* the extreme: bound = max_int — every draw in range, top half reachable *)
  let r = Rng.create ~seed:13 in
  let top = ref 0 in
  for _ = 1 to 1_000 do
    let v = Rng.int r max_int in
    if v < 0 || v >= max_int then Alcotest.failf "out of range: %d" v;
    if v > max_int / 2 then incr top
  done;
  Alcotest.(check bool)
    (Printf.sprintf "top half reachable at max_int (got %d/1000)" !top)
    true
    (!top > 400 && !top < 600)

let test_rng_bool_bias () =
  let r = Rng.create ~seed:3 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r 0.3 then incr hits
  done;
  let ratio = float_of_int !hits /. 10_000. in
  Alcotest.(check bool) "near 0.3" true (ratio > 0.27 && ratio < 0.33)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:4 in
  let sum = ref 0. in
  for _ = 1 to 20_000 do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. 20_000. in
  Alcotest.(check bool) "mean near 5" true (mean > 4.7 && mean < 5.3)

(* ------------------------------------------------------------------ *)
(* Engine basics *)

let test_sleep_ordering () =
  let t = Engine.create () in
  let log = ref [] in
  let mark tag = log := tag :: !log in
  let _ =
    Engine.spawn t ~name:"a" ~main:(fun ~recovery:_ () ->
        Engine.sleep 10.;
        mark "a10";
        Engine.sleep 20.;
        mark "a30")
  in
  let _ =
    Engine.spawn t ~name:"b" ~main:(fun ~recovery:_ () ->
        Engine.sleep 5.;
        mark "b5";
        Engine.sleep 20.;
        mark "b25")
  in
  let outcome = Engine.run t in
  Alcotest.(check bool) "quiescent" true (outcome = Engine.Quiescent);
  Alcotest.(check (list string))
    "order" [ "b5"; "a10"; "b25"; "a30" ] (List.rev !log)

let test_virtual_time_advances () =
  let t = Engine.create () in
  let seen = ref 0. in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Engine.sleep 42.5;
        seen := Engine.now ())
  in
  ignore (Engine.run t);
  check_float "time" 42.5 !seen;
  check_float "engine clock" 42.5 (Engine.now_of t)

let test_send_recv () =
  let t = Engine.create () in
  let got = ref None in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        match Engine.recv_any () with
        | Some m -> got := Some m.Types.payload
        | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 7))
  in
  ignore (Engine.run t);
  Alcotest.(check bool) "got ping" true (!got = Some (Ping 7))

let test_selective_receive () =
  let t = Engine.create () in
  let order = ref [] in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        (* Wait for Pong first even though Ping arrives first. *)
        (match
           Engine.recv
             ~filter:(fun m ->
               match m.Types.payload with Pong _ -> true | _ -> false)
             ()
         with
        | Some { payload = Pong n; _ } -> order := ("pong", n) :: !order
        | _ -> ());
        match Engine.recv_any () with
        | Some { payload = Ping n; _ } -> order := ("ping", n) :: !order
        | _ -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1);
        Engine.sleep 5.;
        Engine.send receiver (Pong 2))
  in
  ignore (Engine.run t);
  Alcotest.(check (list (pair string int)))
    "pong then queued ping"
    [ ("pong", 2); ("ping", 1) ]
    (List.rev !order)

let test_recv_timeout () =
  let t = Engine.create () in
  let result = ref (Some ()) in
  let at = ref 0. in
  let _ =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        (match Engine.recv_any ~timeout:25. () with
        | Some _ -> ()
        | None -> result := None);
        at := Engine.now ())
  in
  ignore (Engine.run t);
  Alcotest.(check bool) "timed out" true (!result = None);
  check_float "at timeout" 25. !at

let test_recv_timeout_beaten_by_message () =
  let t = Engine.create () in
  let got = ref false in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        match Engine.recv_any ~timeout:50. () with
        | Some _ -> got := true
        | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.sleep 10.;
        Engine.send receiver (Ping 0))
  in
  ignore (Engine.run t);
  Alcotest.(check bool) "message won" true !got

let test_fork_shares_mailbox () =
  let t = Engine.create () in
  let tags = ref [] in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        Engine.fork "pong-handler" (fun () ->
            match
              Engine.recv
                ~filter:(fun m ->
                  match m.Types.payload with Pong _ -> true | _ -> false)
                ()
            with
            | Some _ -> tags := "pong" :: !tags
            | None -> ());
        match
          Engine.recv
            ~filter:(fun m ->
              match m.Types.payload with Ping _ -> true | _ -> false)
            ()
        with
        | Some _ -> tags := "ping" :: !tags
        | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.sleep 1.;
        Engine.send receiver (Pong 0);
        Engine.sleep 1.;
        Engine.send receiver (Ping 0))
  in
  ignore (Engine.run t);
  Alcotest.(check (list string)) "both fibers got their message"
    [ "pong"; "ping" ] (List.rev !tags)

let test_work_traced () =
  let reg = Obs.Registry.create () in
  let t = Engine.create ~obs:reg () in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Engine.work "sql" 187.;
        Engine.work "sql" 6.;
        Engine.work "commit" 18.6)
  in
  ignore (Engine.run t);
  (* work charges land in the registry's per-label histograms *)
  List.iter
    (fun (name, total, slices) ->
      match Obs.Registry.merged_histogram reg name with
      | Some h ->
          Alcotest.(check (float 1e-9)) (name ^ " total") total
            (Obs.Histogram.sum h);
          Alcotest.(check int) (name ^ " slices") slices
            (Obs.Histogram.count h)
      | None -> Alcotest.failf "no %s histogram" name)
    [ ("work.sql", 193., 2); ("work.commit", 18.6, 1) ]

(* ------------------------------------------------------------------ *)
(* Crash / recovery *)

let test_crash_drops_sleeper () =
  let t = Engine.create () in
  let woke = ref false in
  let victim =
    Engine.spawn t ~name:"v" ~main:(fun ~recovery:_ () ->
        Engine.sleep 100.;
        woke := true)
  in
  Engine.crash_at t 50. victim;
  ignore (Engine.run t);
  Alcotest.(check bool) "never woke" false !woke

let test_recovery_flag () =
  let t = Engine.create () in
  let runs = ref [] in
  let victim =
    Engine.spawn t ~name:"v" ~main:(fun ~recovery () ->
        runs := recovery :: !runs;
        Engine.sleep 1000.)
  in
  Engine.crash_at t 10. victim;
  Engine.recover_at t 20. victim;
  ignore (Engine.run ~deadline:500. t);
  Alcotest.(check (list bool)) "initial then recovery" [ false; true ]
    (List.rev !runs)

let test_message_to_down_process_lost () =
  let t = Engine.create () in
  let got = ref false in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        match Engine.recv_any () with Some _ -> got := true | None -> ())
  in
  Engine.crash_at t 1. receiver;
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.sleep 5.;
        Engine.send receiver (Ping 1))
  in
  Engine.recover_at t 20. receiver;
  ignore (Engine.run ~deadline:100. t);
  Alcotest.(check bool) "message was lost" false !got

let test_mailbox_cleared_on_crash () =
  let t = Engine.create () in
  let got = ref 0 in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery () ->
        if recovery then
          match Engine.recv_any ~timeout:100. () with
          | Some _ -> incr got
          | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1))
  in
  (* Message delivered at t=1 into the mailbox; crash at t=5 must clear it. *)
  Engine.crash_at t 5. receiver;
  Engine.recover_at t 10. receiver;
  ignore (Engine.run t);
  Alcotest.(check int) "nothing survived the crash" 0 !got

let test_incarnation_fences_stale_wakeups () =
  let t = Engine.create () in
  let wakes = ref 0 in
  let victim =
    Engine.spawn t ~name:"v" ~main:(fun ~recovery () ->
        if not recovery then begin
          Engine.sleep 100.;
          incr wakes
        end)
  in
  Engine.crash_at t 50. victim;
  Engine.recover_at t 60. victim;
  ignore (Engine.run t);
  (* The pre-crash sleep must not fire after recovery. *)
  Alcotest.(check int) "no stale wake" 0 !wakes

let test_is_up () =
  let t = Engine.create () in
  let p = Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () -> ()) in
  Alcotest.(check bool) "up" true (Engine.is_up t p);
  Engine.crash t p;
  Alcotest.(check bool) "down" false (Engine.is_up t p);
  Engine.recover t p;
  Alcotest.(check bool) "up again" true (Engine.is_up t p)

(* ------------------------------------------------------------------ *)
(* Network model, determinism, run control *)

let test_lossy_network_drops () =
  let net _rng ~src:_ ~dst:_ = [] in
  let t = Engine.create ~net () in
  let got = ref false in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        match Engine.recv_any ~timeout:100. () with
        | Some _ -> got := true
        | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1))
  in
  ignore (Engine.run t);
  Alcotest.(check bool) "dropped" false !got

let test_duplicating_network () =
  let net _rng ~src:_ ~dst:_ = [ 1.0; 2.0; 3.0 ] in
  let t = Engine.create ~net () in
  let count = ref 0 in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        let rec loop () =
          match Engine.recv_any ~timeout:50. () with
          | Some _ ->
              incr count;
              loop ()
          | None -> ()
        in
        loop ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1))
  in
  ignore (Engine.run t);
  Alcotest.(check int) "three copies" 3 !count

let test_self_send_bypasses_loss () =
  let net _rng ~src:_ ~dst:_ = [] in
  let t = Engine.create ~net () in
  let got = ref false in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Engine.send (Engine.self ()) (Ping 9);
        match Engine.recv_any ~timeout:10. () with
        | Some _ -> got := true
        | None -> ())
  in
  ignore (Engine.run t);
  Alcotest.(check bool) "self delivery" true !got

let test_redeliver () =
  let t = Engine.create () in
  let src_seen = ref (-1) in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Engine.redeliver ~src:42 (Ping 5);
        match Engine.recv_any ~timeout:10. () with
        | Some m -> src_seen := m.Types.src
        | None -> ())
  in
  ignore (Engine.run t);
  Alcotest.(check int) "attributed src" 42 !src_seen

let run_trace_of seed =
  let t = Engine.create ~seed () in
  let events = ref [] in
  let b =
    Engine.spawn t ~name:"b" ~main:(fun ~recovery:_ () ->
        let rec loop () =
          match Engine.recv_any ~timeout:30. () with
          | Some m ->
              events := (Engine.now (), m.Types.msg_id) :: !events;
              loop ()
          | None -> ()
        in
        loop ())
  in
  let _ =
    Engine.spawn t ~name:"a" ~main:(fun ~recovery:_ () ->
        for i = 1 to 10 do
          Engine.sleep (Engine.random_float 3.);
          Engine.send b (Ping i)
        done)
  in
  ignore (Engine.run t);
  !events

let test_determinism_same_seed () =
  Alcotest.(check bool)
    "identical traces" true
    (run_trace_of 123 = run_trace_of 123)

let test_determinism_different_seed () =
  Alcotest.(check bool)
    "different traces" false
    (run_trace_of 123 = run_trace_of 124)

let test_run_deadline () =
  let t = Engine.create () in
  let ticks = ref 0 in
  let _ =
    Engine.spawn t ~name:"ticker" ~main:(fun ~recovery:_ () ->
        let rec loop () =
          Engine.sleep 10.;
          incr ticks;
          loop ()
        in
        loop ())
  in
  let outcome = Engine.run ~deadline:95. t in
  Alcotest.(check bool) "deadline" true (outcome = Engine.Deadline_reached);
  Alcotest.(check int) "nine ticks" 9 !ticks

let test_run_until_pred () =
  let t = Engine.create () in
  let ticks = ref 0 in
  let _ =
    Engine.spawn t ~name:"ticker" ~main:(fun ~recovery:_ () ->
        let rec loop () =
          Engine.sleep 10.;
          incr ticks;
          loop ()
        in
        loop ())
  in
  let ok = Engine.run_until ~deadline:1000. t (fun () -> !ticks >= 5) in
  Alcotest.(check bool) "pred reached" true ok;
  Alcotest.(check int) "stopped promptly" 5 !ticks

let test_post_from_orchestration () =
  let t = Engine.create () in
  let got = ref false in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        match Engine.recv_any ~timeout:100. () with
        | Some _ -> got := true
        | None -> ())
  in
  Engine.schedule t ~delay:5. (fun () ->
      Engine.post t ~src:99 ~dst:receiver (Ping 1));
  ignore (Engine.run t);
  Alcotest.(check bool) "posted" true !got

let test_stop_interrupts_run () =
  let t = Engine.create () in
  let ticks = ref 0 in
  let _ =
    Engine.spawn t ~name:"ticker" ~main:(fun ~recovery:_ () ->
        let rec loop () =
          Engine.sleep 10.;
          incr ticks;
          if !ticks = 3 then Engine.stop t;
          loop ()
        in
        loop ())
  in
  let outcome = Engine.run t in
  Alcotest.(check bool) "stopped" true (outcome = Engine.Stopped);
  Alcotest.(check int) "exactly three" 3 !ticks

let test_exit_fiber () =
  let t = Engine.create () in
  let after = ref false in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Engine.fork "child" (fun () ->
            Engine.exit_fiber () |> ignore);
        Engine.sleep 1.;
        after := true)
  in
  let outcome = Engine.run t in
  Alcotest.(check bool) "clean quiescence" true (outcome = Engine.Quiescent);
  Alcotest.(check bool) "siblings unaffected" true !after

let test_zero_sleep_and_timeout () =
  let t = Engine.create () in
  let order = ref [] in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        order := "before" :: !order;
        Engine.sleep 0.;
        order := "after-sleep0" :: !order;
        (match Engine.recv_any ~timeout:0. () with
        | None -> order := "timeout0" :: !order
        | Some _ -> ());
        order := "done" :: !order)
  in
  ignore (Engine.run t);
  Alcotest.(check (list string))
    "zero delays are fine"
    [ "before"; "after-sleep0"; "timeout0"; "done" ]
    (List.rev !order)

let test_nested_fork () =
  let t = Engine.create () in
  let depth = ref 0 in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Engine.fork "child" (fun () ->
            incr depth;
            Engine.fork "grandchild" (fun () ->
                incr depth;
                Engine.fork "great" (fun () -> incr depth))))
  in
  ignore (Engine.run t);
  Alcotest.(check int) "all generations ran" 3 !depth

let test_fork_dies_with_process () =
  let t = Engine.create () in
  let child_woke = ref false in
  let p =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery () ->
        if not recovery then begin
          Engine.fork "child" (fun () ->
              Engine.sleep 100.;
              child_woke := true);
          Engine.sleep 1_000.
        end)
  in
  Engine.crash_at t 50. p;
  Engine.recover_at t 60. p;
  ignore (Engine.run t);
  Alcotest.(check bool) "forked fiber died with the crash" false !child_woke

let test_send_all_and_random_int () =
  let t = Engine.create () in
  let got = ref 0 in
  let receivers =
    List.init 3 (fun i ->
        Engine.spawn t
          ~name:(Printf.sprintf "rx%d" i)
          ~main:(fun ~recovery:_ () ->
            match Engine.recv_any ~timeout:100. () with
            | Some _ -> incr got
            | None -> ()))
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        let n = Engine.random_int 5 in
        Alcotest.(check bool) "random_int in range" true (n >= 0 && n < 5);
        Engine.send_all receivers (Ping n))
  in
  ignore (Engine.run t);
  Alcotest.(check int) "all three got it" 3 !got

let test_name_and_is_up_accessors () =
  let t = Engine.create () in
  let p = Engine.spawn t ~name:"alice" ~main:(fun ~recovery:_ () -> ()) in
  Alcotest.(check string) "name" "alice" (Engine.name_of t p);
  Alcotest.check_raises "unknown pid"
    (Invalid_argument "Engine: unknown process 99") (fun () ->
      ignore (Engine.name_of t 99))

(* ------------------------------------------------------------------ *)
(* Trace analyses *)

let test_communication_steps_chain () =
  let t = Engine.create () in
  (* a -> b -> c is two sequential steps. *)
  let c =
    Engine.spawn t ~name:"c" ~main:(fun ~recovery:_ () ->
        ignore (Engine.recv_any ~timeout:100. ()))
  in
  let b =
    Engine.spawn t ~name:"b" ~main:(fun ~recovery:_ () ->
        match Engine.recv_any ~timeout:100. () with
        | Some _ -> Engine.send c (Ping 2)
        | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"a" ~main:(fun ~recovery:_ () ->
        Engine.send b (Ping 1))
  in
  ignore (Engine.run t);
  Alcotest.(check int) "messages" 2 (Trace.message_count (Engine.trace t));
  Alcotest.(check int) "steps" 2
    (Trace.communication_steps (Engine.trace t))

let test_communication_steps_parallel () =
  let t = Engine.create () in
  (* a multicasts to b and c in parallel: 2 messages but 1 step. *)
  let b =
    Engine.spawn t ~name:"b" ~main:(fun ~recovery:_ () ->
        ignore (Engine.recv_any ~timeout:100. ()))
  in
  let c =
    Engine.spawn t ~name:"c" ~main:(fun ~recovery:_ () ->
        ignore (Engine.recv_any ~timeout:100. ()))
  in
  let _ =
    Engine.spawn t ~name:"a" ~main:(fun ~recovery:_ () ->
        Engine.send_all [ b; c ] (Ping 1))
  in
  ignore (Engine.run t);
  Alcotest.(check int) "messages" 2 (Trace.message_count (Engine.trace t));
  Alcotest.(check int) "steps" 1
    (Trace.communication_steps (Engine.trace t))

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine deterministic per seed" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed -> run_trace_of seed = run_trace_of seed)

(* ------------------------------------------------------------------ *)
(* Fifo *)

let test_fifo_order () =
  let f = Fifo.create () in
  List.iter (Fifo.push f) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Fifo.length f);
  let rec drain acc =
    match Fifo.pop f with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4 ] (drain []);
  Alcotest.(check bool) "empty after drain" true (Fifo.is_empty f)

let test_fifo_take_first () =
  let f = Fifo.create () in
  List.iter (Fifo.push f) [ 1; 2; 3; 4; 5 ];
  (* remove from the middle *)
  Alcotest.(check (option int)) "first even" (Some 2)
    (Fifo.take_first f (fun x -> x mod 2 = 0));
  Alcotest.(check (list int)) "rest intact" [ 1; 3; 4; 5 ] (Fifo.to_list f);
  (* remove the tail, then push again: the tail pointer must be fixed up *)
  Alcotest.(check (option int)) "take tail" (Some 5)
    (Fifo.take_first f (fun x -> x = 5));
  Fifo.push f 6;
  Alcotest.(check (list int)) "append after tail removal" [ 1; 3; 4; 6 ]
    (Fifo.to_list f);
  Alcotest.(check (option int)) "no match" None
    (Fifo.take_first f (fun x -> x = 99))

let test_fifo_clear () =
  let f = Fifo.create () in
  List.iter (Fifo.push f) [ 1; 2; 3 ];
  Fifo.clear f;
  Alcotest.(check int) "cleared" 0 (Fifo.length f);
  Fifo.push f 7;
  Alcotest.(check (list int)) "usable after clear" [ 7 ] (Fifo.to_list f)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_preserves_order () =
  let items = List.init 100 Fun.id in
  let out = Pool.map ~domains:4 (fun x -> x * x) items in
  Alcotest.(check (list int)) "order" (List.map (fun x -> x * x) items) out

let test_pool_matches_sequential () =
  let items = List.init 37 (fun i -> i * 13) in
  let f x = Printf.sprintf "%d:%d" x (x mod 7) in
  Alcotest.(check (list string)) "parity" (Pool.map ~domains:1 f items)
    (Pool.map ~domains:4 f items)

exception Pool_boom of int

let test_pool_propagates_exception () =
  Alcotest.check_raises "raises" (Pool_boom 5) (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x -> if x = 5 then raise (Pool_boom 5) else x)
           (List.init 20 Fun.id)))

let test_pool_empty_and_oversized () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:8 Fun.id []);
  (* more domains than items must clamp, not spawn idle domains *)
  Alcotest.(check (list int)) "clamped" [ 1; 2 ]
    (Pool.map ~domains:64 Fun.id [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* Mailbox growth regression: enqueueing n messages into a process that
   never receives must be ~O(n). The pre-Fifo representation appended with
   [mailbox @ [m]] — O(n) each, quadratic overall — which takes tens of
   seconds at this size; the deque version finishes in milliseconds. *)

let test_mailbox_enqueue_linear () =
  let n = 20_000 in
  let t = Engine.create ~tracing:false () in
  let sink =
    Engine.spawn t ~name:"sink" ~main:(fun ~recovery:_ () ->
        Engine.sleep 1e12)
  in
  let _ =
    Engine.spawn t ~name:"src" ~main:(fun ~recovery:_ () ->
        for i = 1 to n do
          Engine.send sink (Ping i)
        done)
  in
  let t0 = Sys.time () in
  ignore (Engine.run ~deadline:1e9 t);
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "20k enqueues in %.3fs (< 5s)" elapsed)
    true (elapsed < 5.0)

(* ------------------------------------------------------------------ *)
(* Classed queue (Cq) and message demultiplexing *)

let test_cq_order () =
  let q = Cq.create () in
  ignore (Cq.push q ~cls:0 "a");
  ignore (Cq.push q ~cls:1 "b");
  ignore (Cq.push q ~cls:0 "c");
  ignore (Cq.push q ~cls:(-1) "d");
  Alcotest.(check int) "length" 4 (Cq.length q);
  Alcotest.(check (list string)) "global order" [ "a"; "b"; "c"; "d" ]
    (Cq.to_list q);
  Alcotest.(check (option string)) "pop_cls 1" (Some "b") (Cq.pop_cls q 1);
  Alcotest.(check (option string)) "pop_cls 0" (Some "a") (Cq.pop_cls q 0);
  Alcotest.(check (option string)) "global pop" (Some "c") (Cq.pop q);
  Alcotest.(check (option string)) "unclassed" (Some "d") (Cq.pop q);
  Alcotest.(check bool) "empty" true (Cq.is_empty q)

let test_cq_take_first () =
  let q = Cq.create () in
  ignore (Cq.push q ~cls:0 1);
  ignore (Cq.push q ~cls:1 2);
  ignore (Cq.push q ~cls:0 3);
  ignore (Cq.push q ~cls:1 4);
  (* global scan crosses classes, oldest first *)
  Alcotest.(check (option int)) "take_first even" (Some 2)
    (Cq.take_first q (fun x -> x mod 2 = 0));
  (* bucket scan only sees its own class *)
  Alcotest.(check (option int)) "in-cls miss" None
    (Cq.take_first_in_cls q 0 (fun x -> x mod 2 = 0));
  Alcotest.(check (option int)) "in-cls hit" (Some 3)
    (Cq.take_first_in_cls q 0 (fun x -> x > 1));
  Alcotest.(check (list int)) "rest in order" [ 1; 4 ] (Cq.to_list q)

let test_cq_remove_and_clear () =
  let q = Cq.create () in
  let a = Cq.push q ~cls:0 "a" in
  let b = Cq.push q ~cls:0 "b" in
  Alcotest.(check bool) "remove live" true (Cq.remove q a);
  Alcotest.(check bool) "remove twice" false (Cq.remove q a);
  Alcotest.(check (list string)) "b left" [ "b" ] (Cq.to_list q);
  Cq.clear q;
  Alcotest.(check bool) "stale after clear" false (Cq.remove q b);
  Alcotest.(check int) "cleared" 0 (Cq.length q);
  (* handles from before the clear must not resurrect new-generation nodes *)
  let c = Cq.push q ~cls:0 "c" in
  Alcotest.(check bool) "remove b again" false (Cq.remove q b);
  Alcotest.(check bool) "new node fine" true (Cq.remove q c)

let test_demux_interleaved_waiters () =
  let t = Engine.create () in
  let log = ref [] in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        (* classed waiter registered before a predicate waiter that also
           matches Ping: registration order must decide who gets it *)
        Engine.fork "classed" (fun () ->
            match Engine.recv_cls cls_ping with
            | Some { Types.payload = Ping n; _ } -> log := ("cls", n) :: !log
            | _ -> ());
        Engine.fork "pred" (fun () ->
            match
              Engine.recv
                ~filter:(fun m ->
                  match m.Types.payload with
                  | Ping _ | Pong _ -> true
                  | _ -> false)
                ()
            with
            | Some { Types.payload = Ping n; _ } -> log := ("pred-ping", n) :: !log
            | Some { Types.payload = Pong n; _ } -> log := ("pred-pong", n) :: !log
            | _ -> ()))
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1);
        Engine.sleep 5.;
        Engine.send receiver (Ping 2))
  in
  ignore (Engine.run t);
  Alcotest.(check (list (pair string int)))
    "classed waiter wins, predicate takes the next"
    [ ("cls", 1); ("pred-ping", 2) ]
    (List.rev !log)

let test_demux_classed_skips_other_classes () =
  let t = Engine.create () in
  let log = ref [] in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        Engine.sleep 10.;
        (* mailbox now holds Ping 1, Ping 2, Pong 7 *)
        (match Engine.recv_cls cls_pong with
        | Some { Types.payload = Pong n; _ } -> log := ("pong", n) :: !log
        | _ -> ());
        (match Engine.recv_any () with
        | Some { Types.payload = Ping n; _ } -> log := ("ping", n) :: !log
        | _ -> ());
        match Engine.recv_any () with
        | Some { Types.payload = Ping n; _ } -> log := ("ping", n) :: !log
        | _ -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1);
        Engine.send receiver (Ping 2);
        Engine.send receiver (Pong 7))
  in
  ignore (Engine.run t);
  Alcotest.(check (list (pair string int)))
    "classed pop skips other classes; global order intact for the rest"
    [ ("pong", 7); ("ping", 1); ("ping", 2) ]
    (List.rev !log)

let test_demux_crash_clears_class_buckets () =
  let t = Engine.create () in
  let got = ref 0 in
  let receiver =
    Engine.spawn t ~name:"rx" ~main:(fun ~recovery () ->
        if recovery then
          match Engine.recv_cls ~timeout:100. cls_ping with
          | Some _ -> incr got
          | None -> ())
  in
  let _ =
    Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        Engine.send receiver (Ping 1))
  in
  (* classed message buffered at t=1; crash at t=5 must clear its bucket *)
  Engine.crash_at t 5. receiver;
  Engine.recover_at t 10. receiver;
  ignore (Engine.run t);
  Alcotest.(check int) "class bucket cleared by crash" 0 !got

(* Receiving n classed messages while n messages of another class sit in the
   mailbox must be ~O(n): each classed receive touches only its bucket. The
   predicate path re-scanned the whole mailbox per receive — O(n²), tens of
   seconds at this size. *)
let test_demux_classed_recv_linear () =
  let n = 20_000 in
  let t = Engine.create ~tracing:false () in
  let sink =
    Engine.spawn t ~name:"sink" ~main:(fun ~recovery:_ () ->
        for _ = 1 to n do
          ignore (Engine.recv_cls cls_pong)
        done;
        Engine.sleep 1e12)
  in
  let _ =
    Engine.spawn t ~name:"src" ~main:(fun ~recovery:_ () ->
        for i = 1 to n do
          Engine.send sink (Ping i)
        done;
        for i = 1 to n do
          Engine.send sink (Pong i)
        done)
  in
  let t0 = Sys.time () in
  ignore (Engine.run ~deadline:1e9 t);
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "20k classed recvs in %.3fs (< 5s)" elapsed)
    true (elapsed < 5.0)

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dsim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/length" `Quick test_heap_peek;
          q prop_heap_sorts;
          q prop_heap_stable_on_ties;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "take_first" `Quick test_fifo_take_first;
          Alcotest.test_case "clear" `Quick test_fifo_clear;
          Alcotest.test_case "mailbox enqueue linear" `Quick
            test_mailbox_enqueue_linear;
        ] );
      ( "demux",
        [
          Alcotest.test_case "cq order" `Quick test_cq_order;
          Alcotest.test_case "cq take_first" `Quick test_cq_take_first;
          Alcotest.test_case "cq remove/clear" `Quick test_cq_remove_and_clear;
          Alcotest.test_case "interleaved waiters" `Quick
            test_demux_interleaved_waiters;
          Alcotest.test_case "classed skips other classes" `Quick
            test_demux_classed_skips_other_classes;
          Alcotest.test_case "crash clears class buckets" `Quick
            test_demux_crash_clears_class_buckets;
          Alcotest.test_case "classed recv linear" `Quick
            test_demux_classed_recv_linear;
        ] );
      ( "pool",
        [
          Alcotest.test_case "preserves order" `Quick test_pool_preserves_order;
          Alcotest.test_case "parallel = sequential" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "propagates exception" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "empty/clamped" `Quick
            test_pool_empty_and_oversized;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bool bias" `Quick test_rng_bool_bias;
          Alcotest.test_case "large bounds stay uniform" `Quick
            test_rng_int_large_bound;
          Alcotest.test_case "exponential mean" `Quick
            test_rng_exponential_mean;
          q prop_rng_float_range;
          q prop_rng_int_range;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "virtual time" `Quick test_virtual_time_advances;
          Alcotest.test_case "send/recv" `Quick test_send_recv;
          Alcotest.test_case "selective receive" `Quick test_selective_receive;
          Alcotest.test_case "recv timeout" `Quick test_recv_timeout;
          Alcotest.test_case "message beats timeout" `Quick
            test_recv_timeout_beaten_by_message;
          Alcotest.test_case "fork shares mailbox" `Quick
            test_fork_shares_mailbox;
          Alcotest.test_case "work traced" `Quick test_work_traced;
          q prop_engine_deterministic;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "crash drops sleeper" `Quick
            test_crash_drops_sleeper;
          Alcotest.test_case "recovery flag" `Quick test_recovery_flag;
          Alcotest.test_case "message to down process lost" `Quick
            test_message_to_down_process_lost;
          Alcotest.test_case "mailbox cleared on crash" `Quick
            test_mailbox_cleared_on_crash;
          Alcotest.test_case "incarnation fencing" `Quick
            test_incarnation_fences_stale_wakeups;
          Alcotest.test_case "is_up" `Quick test_is_up;
        ] );
      ( "network",
        [
          Alcotest.test_case "lossy drops" `Quick test_lossy_network_drops;
          Alcotest.test_case "duplication" `Quick test_duplicating_network;
          Alcotest.test_case "self send immune" `Quick
            test_self_send_bypasses_loss;
          Alcotest.test_case "redeliver" `Quick test_redeliver;
        ] );
      ( "run-control",
        [
          Alcotest.test_case "determinism same seed" `Quick
            test_determinism_same_seed;
          Alcotest.test_case "determinism different seed" `Quick
            test_determinism_different_seed;
          Alcotest.test_case "deadline" `Quick test_run_deadline;
          Alcotest.test_case "run_until" `Quick test_run_until_pred;
          Alcotest.test_case "orchestration post" `Quick
            test_post_from_orchestration;
          Alcotest.test_case "stop" `Quick test_stop_interrupts_run;
          Alcotest.test_case "exit_fiber" `Quick test_exit_fiber;
          Alcotest.test_case "zero delays" `Quick test_zero_sleep_and_timeout;
          Alcotest.test_case "nested fork" `Quick test_nested_fork;
          Alcotest.test_case "fork dies with process" `Quick
            test_fork_dies_with_process;
          Alcotest.test_case "send_all/random_int" `Quick
            test_send_all_and_random_int;
          Alcotest.test_case "accessors" `Quick test_name_and_is_up_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "steps: chain" `Quick
            test_communication_steps_chain;
          Alcotest.test_case "steps: parallel" `Quick
            test_communication_steps_parallel;
        ] );
    ]
