(* Tests for the experiment harness: message classification and the shape of
   every regenerated table/figure (the claims EXPERIMENTS.md makes must be
   machine-checked, not eyeballed). *)

open Harness

let find_protocol (f : Experiments.fig8) name =
  match
    List.find_opt
      (fun (p : Experiments.fig8_protocol) ->
        String.length p.protocol >= String.length name
        && String.sub p.protocol 0 (String.length name) = name)
      f.protocols
  with
  | Some p -> p
  | None -> Alcotest.failf "protocol %s missing from figure 8" name

(* figure 8 is the most expensive artefact; compute it once *)
let fig8 = lazy (Experiments.figure8 ~transactions:15 ())

let test_fig8_has_four_protocols () =
  let f = Lazy.force fig8 in
  Alcotest.(check int) "protocols" 4 (List.length f.protocols)

let test_fig8_component_values_match_paper () =
  let f = Lazy.force fig8 in
  let ar = find_protocol f "AR" in
  let expect name lo hi =
    let v = List.assoc name ar.components in
    Alcotest.(check bool)
      (Printf.sprintf "%s=%.1f in [%.1f,%.1f]" name v lo hi)
      true
      (v >= lo && v <= hi)
  in
  (* paper Figure 8, AR column: start 3.5, end 3.5, commit 18.8,
     prepare 19.0, SQL 193.2, log-start 4.5, log-outcome 4.7 *)
  expect "start" 3.0 4.0;
  expect "end" 3.0 4.0;
  expect "commit" 17.5 20.0;
  expect "prepare" 18.0 21.5;
  expect "SQL" 185.0 195.0;
  expect "log-start" 3.0 5.5;
  expect "log-outcome" 3.0 5.5

let test_fig8_2pc_forced_io_rows () =
  let f = Lazy.force fig8 in
  let tpc = find_protocol f "2PC" in
  (* the paper's 12.5/12.7 ms eager IOs *)
  Alcotest.(check bool) "log-start is a forced write" true
    (List.assoc "log-start" tpc.components >= 12.0);
  Alcotest.(check bool) "log-outcome is a forced write" true
    (List.assoc "log-outcome" tpc.components >= 12.0);
  let baseline = find_protocol f "baseline" in
  Alcotest.(check (float 1e-9)) "baseline has no log rows" 0.
    (List.assoc "log-start" baseline.components)

let test_fig8_overhead_ordering () =
  let f = Lazy.force fig8 in
  let baseline = find_protocol f "baseline" in
  let ar = find_protocol f "AR" in
  let tpc = find_protocol f "2PC" in
  let pb = find_protocol f "primary-backup" in
  Alcotest.(check bool) "baseline < AR" true (baseline.total < ar.total);
  Alcotest.(check bool) "AR < 2PC (the headline result)" true
    (ar.total < tpc.total);
  (* the paper argues PB and AR have the same cost profile *)
  Alcotest.(check bool) "PB within 3% of AR" true
    (Float.abs (pb.total -. ar.total) /. ar.total < 0.03);
  (* overhead bands: paper 16% and 23%; our calibrated substrate lands at
     12-13% and 20% (the residual is the paper's run-to-run SQL noise) *)
  Alcotest.(check bool) "AR overhead in [8%,20%]" true
    (ar.overhead_pct > 8. && ar.overhead_pct < 20.);
  Alcotest.(check bool) "2PC overhead in [15%,28%]" true
    (tpc.overhead_pct > 15. && tpc.overhead_pct < 28.);
  Alcotest.(check bool) "2PC costs more than AR" true
    (tpc.overhead_pct > ar.overhead_pct)

let test_fig8_ci_methodology () =
  let f = Lazy.force fig8 in
  List.iter
    (fun (p : Experiments.fig8_protocol) ->
      Alcotest.(check bool)
        (p.protocol ^ " ci90/mean < 10% (paper methodology)")
        true (p.ci90_ratio < 0.10))
    f.protocols

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_fig8_rendering () =
  let s = Experiments.render_figure8 (Lazy.force fig8) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table mentions " ^ needle) true
        (contains s needle))
    [ "SQL"; "prepare"; "log-start"; "cost of reliability"; "total" ]

(* ------------------------------------------------------------------ *)

let fig7 = lazy (Experiments.figure7 ())

let fig7_find name =
  let rows = Lazy.force fig7 in
  match
    List.find_opt (fun (r : Experiments.fig7_row) -> r.proto = name) rows
  with
  | Some r -> r
  | None ->
      (* prefix match for the AR row *)
      List.find
        (fun (r : Experiments.fig7_row) ->
          String.length r.proto >= 2 && String.sub r.proto 0 2 = "AR")
        rows

let test_fig7_parallel_determinism () =
  (* the tentpole guarantee: mapping the trial list over 4 domains renders
     byte-for-byte the same table as the sequential run *)
  let seq = Experiments.render_figure7 (Experiments.figure7 ~domains:1 ()) in
  let par = Experiments.render_figure7 (Experiments.figure7 ~domains:4 ()) in
  Alcotest.(check string) "4-domain table byte-identical to 1-domain" seq par

let test_fig1_parallel_determinism () =
  let seq = Experiments.render_figure1 (Experiments.figure1 ~domains:1 ()) in
  let par = Experiments.render_figure1 (Experiments.figure1 ~domains:4 ()) in
  Alcotest.(check string) "4-domain table byte-identical to 1-domain" seq par

let test_fig7_message_ordering () =
  let baseline = fig7_find "baseline" in
  let tpc = fig7_find "2PC" in
  let pb = fig7_find "primary-backup" in
  let ar = fig7_find "AR" in
  Alcotest.(check bool) "baseline fewest app msgs" true
    (baseline.app_messages < tpc.app_messages
    && baseline.app_messages < pb.app_messages);
  Alcotest.(check bool) "AR app msgs = 2PC app msgs (same commit traffic)"
    true
    (ar.app_messages = tpc.app_messages);
  Alcotest.(check bool) "PB extra backup round trips" true
    (pb.app_messages > tpc.app_messages);
  Alcotest.(check bool) "AR replication costs extra substrate msgs" true
    (ar.all_messages > ar.app_messages)

let test_fig7_steps_ordering () =
  (* the paper's analytic claim: AR has the same number of communication
     steps as primary-backup, more than 2PC, more than baseline *)
  let baseline = fig7_find "baseline" in
  let tpc = fig7_find "2PC" in
  let pb = fig7_find "primary-backup" in
  let ar = fig7_find "AR" in
  Alcotest.(check bool) "baseline ≤ 2PC" true (baseline.steps <= tpc.steps);
  Alcotest.(check bool) "2PC < PB" true (tpc.steps < pb.steps);
  Alcotest.(check int) "AR = PB (the paper's claim)" pb.steps ar.steps

let test_fig7_forced_ios () =
  let tpc = fig7_find "2PC" in
  let ar = fig7_find "AR" in
  let baseline = fig7_find "baseline" in
  Alcotest.(check int) "2PC: two eager IOs" 2 tpc.forced_ios;
  Alcotest.(check int) "AR: none" 0 ar.forced_ios;
  Alcotest.(check int) "baseline: none" 0 baseline.forced_ios

(* ------------------------------------------------------------------ *)
(* byte-identity: renders captured on the commit before the classed-demux
   and indexed-outbox rework; same seeds must render the same bytes *)

let find_sub haystack needle from =
  let n = String.length needle in
  let rec scan i =
    if i + n > String.length haystack then
      Alcotest.failf "marker %s missing from figures.golden" needle
    else if String.sub haystack i n = needle then i
    else scan (i + 1)
  in
  scan from

let golden_figures =
  lazy
    (let ic = open_in "figures.golden" in
     let s = really_input_string ic (in_channel_length ic) in
     close_in ic;
     let m7 = "===FIG7===\n" and m8 = "===FIG8===\n" in
     let i7 = find_sub s m7 0 + String.length m7 in
     let i8 = find_sub s m8 i7 in
     ( String.sub s i7 (i8 - i7),
       String.sub s
         (i8 + String.length m8)
         (String.length s - i8 - String.length m8) ))

let test_fig7_golden_identity () =
  let g7, _ = Lazy.force golden_figures in
  Alcotest.(check string) "figure7 byte-identical to pre-demux render" g7
    (Experiments.render_figure7 (Lazy.force fig7))

let test_fig8_golden_identity () =
  let _, g8 = Lazy.force golden_figures in
  Alcotest.(check string) "figure8 byte-identical to pre-demux render" g8
    (Experiments.render_figure8 (Experiments.figure8 ~transactions:3 ()))

(* ------------------------------------------------------------------ *)

let test_fig1_scenarios () =
  let scenarios = Experiments.figure1 () in
  Alcotest.(check int) "four scenarios" 4 (List.length scenarios);
  List.iter
    (fun (s : Experiments.fig1_scenario) ->
      Alcotest.(check bool) (s.label ^ " delivered") true s.delivered;
      Alcotest.(check (list string)) (s.label ^ " violations") [] s.violations)
    scenarios;
  let nth i = List.nth scenarios i in
  Alcotest.(check int) "(a) single try" 1 (nth 0).tries;
  Alcotest.(check int) "(b) abort then commit" 2 (nth 1).tries;
  Alcotest.(check int) "(c) original result survives" 1 (nth 2).tries;
  Alcotest.(check (option string)) "(c) cleaner finished the commit"
    (Some "commit") (nth 2).cleaner_outcome;
  Alcotest.(check int) "(d) fail-over retry" 2 (nth 3).tries;
  Alcotest.(check (option string)) "(d) cleaner aborted" (Some "abort")
    (nth 3).cleaner_outcome

let test_ablation_backoff_monotonic_failover () =
  let rows = Experiments.backoff_sweep ~periods:[ 100.; 400.; 1600. ] () in
  match rows with
  | [ (_, n1, f1); (_, n2, f2); (_, n3, f3) ] ->
      Alcotest.(check bool) "nice latency flat" true
        (Float.abs (n1 -. n3) < 10.);
      Alcotest.(check bool) "failover latency grows with back-off" true
        (f1 < f2 && f2 < f3);
      Alcotest.(check bool) "nice < failover" true (n2 < f2)
  | _ -> Alcotest.fail "expected three rows"

let test_ablation_loss_monotonic () =
  let rows = Experiments.loss_sweep ~rates:[ 0.; 0.3 ] () in
  match rows with
  | [ (_, lat0, msgs0); (_, lat3, msgs3) ] ->
      Alcotest.(check bool) "loss costs latency" true (lat3 > lat0);
      Alcotest.(check bool) "loss costs messages" true (msgs3 > msgs0)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_persistence_ordering () =
  (* the design point: persistent registers push AR past 2PC *)
  match Experiments.persistence_ablation ~transactions:5 () with
  | [ (_, diskless); (_, persistent); (_, tpc) ] ->
      Alcotest.(check bool) "diskless < 2PC" true (diskless < tpc);
      Alcotest.(check bool) "persistent > 2PC" true (persistent > tpc)
  | _ -> Alcotest.fail "expected three configurations"

let test_ablation_consensus_failover_monotone () =
  (* with a useless detector, the round timeout is the fail-over latency *)
  match Experiments.consensus_failover_sweep ~round_timeouts:[ 25.; 200. ] () with
  | [ (_, fast); (_, slow) ] ->
      Alcotest.(check bool) "latency tracks the round timeout" true
        (fast < 60. && slow > 200. && fast < slow)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_throughput_contention () =
  match Experiments.throughput_sweep ~clients:[ 1; 4 ] ~requests_per_client:3 () with
  | [ (_, hot1, cold1); (_, hot4, cold4) ] ->
      Alcotest.(check bool) "single client: contention irrelevant" true
        (Float.abs (hot1 -. cold1) < 0.5);
      Alcotest.(check bool) "disjoint accounts scale better" true
        (cold4 > hot4);
      Alcotest.(check bool) "disjoint beats single client" true
        (cold4 > cold1)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_register_backends () =
  match Experiments.register_backend_comparison () with
  | [ (_, ct_nice, ct_failover); (_, blind_nice, blind_failover);
      (_, synod_nice, synod_failover) ] ->
      (* both substrates share the one-round-trip fast path *)
      Alcotest.(check bool) "CT fast path" true (ct_nice < 7.);
      Alcotest.(check bool) "blind-CT fast path" true (blind_nice < 7.);
      Alcotest.(check bool) "Synod fast path" true (synod_nice < 7.);
      (* fail-over: Paxos never waits on a detector; blind CT pays rounds *)
      Alcotest.(check bool) "Synod failover fast" true (synod_failover < 15.);
      Alcotest.(check bool) "oracle CT failover decent" true
        (ct_failover < 40.);
      Alcotest.(check bool) "blind CT pays the round timeout" true
        (blind_failover > 90.)
  | _ -> Alcotest.fail "expected three backends"

let test_ablation_fd_quality () =
  (* the sweep itself asserts the spec in every configuration; here we
     check the performance shape: an aggressive timeout causes spurious
     cleanings and retries, a generous one does not *)
  match Experiments.fd_quality_sweep ~requests:5 ~timeouts:[ 15.; 200. ] () with
  | [ (_, aggressive_cleanings, aggressive_tries, _); (_, calm_cleanings, calm_tries, _) ] ->
      Alcotest.(check bool) "aggressive timeout misfires" true
        (aggressive_cleanings > 0);
      Alcotest.(check bool) "retries follow" true (aggressive_tries > 0);
      Alcotest.(check int) "calm timeout: no cleanings" 0 calm_cleanings;
      Alcotest.(check int) "calm timeout: no retries" 0 calm_tries
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_dbs_flat () =
  let rows = Experiments.db_sweep ~counts:[ 1; 4 ] () in
  match rows with
  | [ (_, b1, a1, t1); (_, b4, a4, t4) ] ->
      (* prepare fan-out is parallel: latency must not grow linearly *)
      Alcotest.(check bool) "baseline flat" true (Float.abs (b4 -. b1) < 10.);
      Alcotest.(check bool) "AR flat" true (Float.abs (a4 -. a1) < 10.);
      Alcotest.(check bool) "2PC flat" true (Float.abs (t4 -. t1) < 10.)
  | _ -> Alcotest.fail "expected two rows"

(* ------------------------------------------------------------------ *)
(* message classification *)

let test_msgclass_kinds () =
  let t = Dsim.Engine.create () in
  let seen = ref [] in
  let rx =
    Dsim.Engine.spawn t ~name:"rx" ~main:(fun ~recovery:_ () ->
        let ch = Dnet.Rchannel.create () in
        Dnet.Rchannel.start ch;
        Dsim.Engine.sleep 1_000.)
  in
  let _ =
    Dsim.Engine.spawn t ~name:"tx" ~main:(fun ~recovery:_ () ->
        let ch = Dnet.Rchannel.create () in
        Dnet.Rchannel.start ch;
        Dnet.Rchannel.send ch rx (Etx.Etx_types.Request_msg
           { request = { rid = 1; key = "x"; body = "x" }; j = 1; group = 0; span = 0 });
        Dsim.Engine.sleep 1_000.)
  in
  ignore (Dsim.Engine.run ~deadline:100. t);
  List.iter
    (fun (e : Dsim.Trace.entry) ->
      match e.event with
      | Dsim.Trace.Sent (m, _) -> seen := Msgclass.kind_of m :: !seen
      | _ -> ())
    (Dsim.Trace.entries (Dsim.Engine.trace t));
  Alcotest.(check bool) "saw application traffic" true
    (List.mem Msgclass.Application !seen);
  Alcotest.(check bool) "saw channel overhead (acks)" true
    (List.mem Msgclass.Overhead !seen)

(* ------------------------------------------------------------------ *)
(* sequence diagrams *)

let count_occurrences haystack needle =
  let n = String.length needle in
  let rec scan i acc =
    if i + n > String.length haystack then acc
    else if String.sub haystack i n = needle then scan (i + 1) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let test_seqdiag_nice_run () =
  let e, d =
    Harness.Simrun.deployment ~business:Etx.Business.trivial
      ~script:(fun ~issue -> ignore (issue "x"))
      ()
  in
  ignore (Etx.Deployment.run_to_quiescence d);
  let diagram = Seqdiag.of_engine e in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("diagram shows " ^ needle) true
        (contains diagram needle))
    [
      "Request(";
      "XaStart(";
      "Exec(";
      "Prepare(";
      "Vote(";
      "Decide(";
      "AckDecide(";
      "Result(";
    ];
  (* messages appear exactly once (no channel-frame duplicates) *)
  Alcotest.(check int) "one Prepare arrow" 1
    (count_occurrences diagram "--Prepare(");
  Alcotest.(check int) "one Vote arrow" 1 (count_occurrences diagram "--Vote(");
  (* consensus substrate elided by default, shown on demand *)
  Alcotest.(check int) "no consensus by default" 0
    (count_occurrences diagram "consensus");
  let with_consensus = Seqdiag.of_engine ~include_consensus:true e in
  Alcotest.(check bool) "consensus on demand" true
    (count_occurrences with_consensus "consensus" > 0)

let test_seqdiag_failover_markers () =
  let e, d =
    Harness.Simrun.deployment ~client_period:300. ~business:Etx.Business.trivial
      ~script:(fun ~issue -> ignore (issue "x"))
      ()
  in
  Dsim.Engine.crash_at e 100. (Etx.Deployment.primary d);
  ignore (Etx.Deployment.run_to_quiescence ~deadline:60_000. d);
  let diagram = Seqdiag.of_engine e in
  Alcotest.(check bool) "crash marker" true (contains diagram "CRASH");
  Alcotest.(check bool) "cleaner activity" true (contains diagram "cleaned:");
  Alcotest.(check bool) "second try visible" true (contains diagram "j=2")

let test_seqdiag_max_lines () =
  let e, d =
    Harness.Simrun.deployment ~business:Etx.Business.trivial
      ~script:(fun ~issue -> ignore (issue "x"))
      ()
  in
  ignore (Etx.Deployment.run_to_quiescence d);
  let diagram = Seqdiag.of_engine ~max_lines:3 e in
  Alcotest.(check bool) "elision marker" true (contains diagram "more events");
  Alcotest.(check int) "four lines total" 4
    (List.length
       (List.filter
          (fun l -> l <> "")
          (String.split_on_char '\n' diagram)))

let () =
  Alcotest.run "harness"
    [
      ( "figure8",
        [
          Alcotest.test_case "four protocols" `Quick
            test_fig8_has_four_protocols;
          Alcotest.test_case "components match paper" `Quick
            test_fig8_component_values_match_paper;
          Alcotest.test_case "2PC forced-IO rows" `Quick
            test_fig8_2pc_forced_io_rows;
          Alcotest.test_case "overhead ordering" `Quick
            test_fig8_overhead_ordering;
          Alcotest.test_case "CI methodology" `Quick test_fig8_ci_methodology;
          Alcotest.test_case "rendering" `Quick test_fig8_rendering;
          Alcotest.test_case "golden byte-identity" `Quick
            test_fig8_golden_identity;
        ] );
      ( "figure7",
        [
          Alcotest.test_case "message ordering" `Quick
            test_fig7_message_ordering;
          Alcotest.test_case "steps ordering" `Quick test_fig7_steps_ordering;
          Alcotest.test_case "forced IOs" `Quick test_fig7_forced_ios;
          Alcotest.test_case "parallel determinism" `Quick
            test_fig7_parallel_determinism;
          Alcotest.test_case "golden byte-identity" `Quick
            test_fig7_golden_identity;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "four executions" `Quick test_fig1_scenarios;
          Alcotest.test_case "parallel determinism" `Quick
            test_fig1_parallel_determinism;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "backoff sweep" `Quick
            test_ablation_backoff_monotonic_failover;
          Alcotest.test_case "loss sweep" `Quick test_ablation_loss_monotonic;
          Alcotest.test_case "db sweep flat" `Quick test_ablation_dbs_flat;
          Alcotest.test_case "persistence ordering" `Quick
            test_ablation_persistence_ordering;
          Alcotest.test_case "consensus fail-over monotone" `Quick
            test_ablation_consensus_failover_monotone;
          Alcotest.test_case "throughput contention" `Quick
            test_ablation_throughput_contention;
          Alcotest.test_case "register backends" `Quick
            test_ablation_register_backends;
          Alcotest.test_case "fd quality" `Quick test_ablation_fd_quality;
        ] );
      ( "msgclass",
        [ Alcotest.test_case "classification" `Quick test_msgclass_kinds ] );
      ( "seqdiag",
        [
          Alcotest.test_case "nice run" `Quick test_seqdiag_nice_run;
          Alcotest.test_case "failover markers" `Quick
            test_seqdiag_failover_markers;
          Alcotest.test_case "line cap" `Quick test_seqdiag_max_lines;
        ] );
    ]
