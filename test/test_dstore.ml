(* Tests for the stable-storage substrate: simulated disk, write-ahead log,
   stable key-value store. *)

open Dsim

(* Run [f] inside a single-process simulation and return its result. *)
let in_sim f =
  let t = Engine.create () in
  let result = ref None in
  let _ = Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () -> result := Some (f t)) in
  ignore (Engine.run t);
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not run"

let test_disk_charges_time () =
  let elapsed =
    in_sim (fun _ ->
        let disk = Dstore.Disk.create ~force_latency:12.5 ~label:"log" () in
        let t0 = Engine.now () in
        Dstore.Disk.force disk;
        Dstore.Disk.force disk;
        Engine.now () -. t0)
  in
  Alcotest.(check (float 1e-9)) "two forced writes" 25.0 elapsed

let test_disk_counts () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~label:"log" () in
      Alcotest.(check int) "fresh" 0 (Dstore.Disk.forced_writes disk);
      Dstore.Disk.force disk;
      Dstore.Disk.force ~label:"special" disk;
      Alcotest.(check int) "counted" 2 (Dstore.Disk.forced_writes disk);
      Alcotest.(check (float 1e-9)) "latency accessor" 12.5
        (Dstore.Disk.force_latency disk))

let test_disk_trace_labels () =
  let reg = Obs.Registry.create () in
  let t = Engine.create ~obs:reg () in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        let disk = Dstore.Disk.create ~force_latency:5. ~label:"log" () in
        Dstore.Disk.force disk;
        Dstore.Disk.force ~label:"log-start" disk)
  in
  ignore (Engine.run t);
  (* each force charges work under its label; the registry's work.<label>
     histograms carry the totals *)
  List.iter
    (fun (name, total) ->
      match Obs.Registry.merged_histogram reg name with
      | Some h ->
          Alcotest.(check (float 1e-9)) (name ^ " total") total
            (Obs.Histogram.sum h);
          Alcotest.(check int) (name ^ " count") 1 (Obs.Histogram.count h)
      | None -> Alcotest.failf "no %s histogram" name)
    [ ("work.log", 5.); ("work.log-start", 5.) ]

let test_wal_append_records () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let wal = Dstore.Wal.create ~disk () in
      Alcotest.(check int) "empty" 0 (Dstore.Wal.length wal);
      Dstore.Wal.append wal "a";
      Dstore.Wal.append wal "b";
      Dstore.Wal.append wal "c";
      Alcotest.(check int) "three" 3 (Dstore.Wal.length wal);
      Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ]
        (Dstore.Wal.records wal);
      Alcotest.(check int) "one forced write per append" 3
        (Dstore.Disk.forced_writes disk))

let test_wal_replay () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:0.1 ~label:"log" () in
      let wal = Dstore.Wal.create ~disk () in
      List.iter (Dstore.Wal.append wal) [ 1; 2; 3; 4 ];
      Alcotest.(check int) "fold sum" 10
        (Dstore.Wal.replay wal ~init:0 ~f:( + )))

let test_wal_truncate () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:0.1 ~label:"log" () in
      let wal = Dstore.Wal.create ~disk () in
      Dstore.Wal.append wal "x";
      Dstore.Wal.truncate wal;
      Alcotest.(check int) "empty after truncate" 0 (Dstore.Wal.length wal);
      Alcotest.(check (list string)) "no records" [] (Dstore.Wal.records wal))

let test_stable_kv () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let kv = Dstore.Stable_kv.create ~disk () in
      Dstore.Stable_kv.put kv "a" 1;
      Dstore.Stable_kv.put kv "b" 2;
      Dstore.Stable_kv.put kv "a" 3;
      Alcotest.(check (option int)) "latest wins" (Some 3)
        (Dstore.Stable_kv.get kv "a");
      Alcotest.(check (option int)) "other" (Some 2)
        (Dstore.Stable_kv.get kv "b");
      Dstore.Stable_kv.remove kv "a";
      Alcotest.(check (option int)) "removed" None (Dstore.Stable_kv.get kv "a");
      Alcotest.(check (list (pair string int))) "bindings"
        [ ("b", 2) ]
        (Dstore.Stable_kv.bindings kv);
      Alcotest.(check int) "4 forced writes" 4 (Dstore.Disk.forced_writes disk))

let test_wal_survives_crash () =
  (* The WAL object lives outside the process; a crash between appends must
     not lose acknowledged records. *)
  let t = Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
  let wal = Dstore.Wal.create ~disk () in
  let after_recovery = ref [] in
  let p =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery () ->
        if recovery then after_recovery := Dstore.Wal.records wal
        else begin
          Dstore.Wal.append wal "committed-1";
          Engine.sleep 100.;
          Dstore.Wal.append wal "never-happens"
        end)
  in
  Engine.crash_at t 50. p;
  Engine.recover_at t 60. p;
  ignore (Engine.run t);
  Alcotest.(check (list string))
    "only the pre-crash record" [ "committed-1" ] !after_recovery

let prop_wal_replay_equals_fold =
  QCheck.Test.make ~name:"wal replay = list fold" ~count:100
    QCheck.(list small_int)
    (fun xs ->
      in_sim (fun _ ->
          let disk = Dstore.Disk.create ~force_latency:0.01 ~label:"l" () in
          let wal = Dstore.Wal.create ~disk () in
          List.iter (Dstore.Wal.append wal) xs;
          Dstore.Wal.replay wal ~init:[] ~f:(fun acc x -> x :: acc)
          = List.fold_left (fun acc x -> x :: acc) [] xs))

(* ------------------------------------------------------------------ *)
(* backend parity: disk work routed through the runtime capability *)

let deployment_forced_writes (d : Etx.Deployment.t) =
  List.map (fun (_, rm) -> Dstore.Disk.forced_writes (Dbms.Rm.disk rm)) d.dbs

let test_forced_writes_sim_live_parity () =
  (* The databases' forced IO goes through [Etx_runtime.work], so an
     identical loss-free run must cost exactly the same forced writes per
     database on the simulator and on the wall-clock backend. The generous
     client period keeps real-time jitter from ever triggering a retry. *)
  let business = Workload.Bank.update in
  let seed_data = Workload.Bank.seed_accounts [ ("acct", 100) ] in
  let script ~issue =
    ignore (issue "acct:-10");
    ignore (issue "acct:-10")
  in
  let _e, sim_d =
    Harness.Simrun.deployment ~n_dbs:2 ~client_period:5_000. ~seed_data
      ~business ~script ()
  in
  Alcotest.(check bool) "sim quiesced" true
    (Etx.Deployment.run_to_quiescence ~deadline:60_000. sim_d);
  let lt = Runtime_live.create () in
  let live_d =
    Etx.Deployment.build ~rt:(Runtime_live.runtime lt) ~n_dbs:2
      ~client_period:5_000. ~seed_data ~business ~script ()
  in
  let live_ok = Etx.Deployment.run_to_quiescence ~deadline:60_000. live_d in
  let sim_io = deployment_forced_writes sim_d
  and live_io = deployment_forced_writes live_d in
  Runtime_live.shutdown lt;
  Alcotest.(check bool) "live quiesced" true live_ok;
  Alcotest.(check bool) "forced IO happened" true
    (List.for_all (fun c -> c > 0) sim_io);
  Alcotest.(check (list int)) "identical forced IO on both backends" sim_io
    live_io

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dstore"
    [
      ( "disk",
        [
          Alcotest.test_case "charges virtual time" `Quick
            test_disk_charges_time;
          Alcotest.test_case "counts forced writes" `Quick test_disk_counts;
          Alcotest.test_case "trace labels" `Quick test_disk_trace_labels;
          Alcotest.test_case "sim/live forced-IO parity" `Quick
            test_forced_writes_sim_live_parity;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append/records" `Quick test_wal_append_records;
          Alcotest.test_case "replay" `Quick test_wal_replay;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "survives crash" `Quick test_wal_survives_crash;
          q prop_wal_replay_equals_fold;
        ] );
      ( "stable-kv",
        [ Alcotest.test_case "put/get/remove" `Quick test_stable_kv ] );
    ]
