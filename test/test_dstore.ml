(* Tests for the stable-storage substrate: simulated disk, LSN-addressed
   redo log, stable key-value store. *)

open Dsim

(* Run [f] inside a single-process simulation and return its result. *)
let in_sim f =
  let t = Engine.create () in
  let result = ref None in
  let _ = Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () -> result := Some (f t)) in
  ignore (Engine.run t);
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not run"

let test_disk_charges_time () =
  let elapsed =
    in_sim (fun _ ->
        let disk = Dstore.Disk.create ~force_latency:12.5 ~label:"log" () in
        let t0 = Engine.now () in
        Dstore.Disk.force disk;
        Dstore.Disk.force disk;
        Engine.now () -. t0)
  in
  Alcotest.(check (float 1e-9)) "two forced writes" 25.0 elapsed

let test_disk_counts () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~label:"log" () in
      Alcotest.(check int) "fresh" 0 (Dstore.Disk.forced_writes disk);
      Dstore.Disk.force disk;
      Dstore.Disk.force ~label:"special" disk;
      Alcotest.(check int) "counted" 2 (Dstore.Disk.forced_writes disk);
      Alcotest.(check (float 1e-9)) "latency accessor" 12.5
        (Dstore.Disk.force_latency disk))

let test_disk_trace_labels () =
  let reg = Obs.Registry.create () in
  let t = Engine.create ~obs:reg () in
  let _ =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        let disk = Dstore.Disk.create ~force_latency:5. ~label:"log" () in
        Dstore.Disk.force disk;
        Dstore.Disk.force ~label:"log-start" disk)
  in
  ignore (Engine.run t);
  (* each force charges work under its label; the registry's work.<label>
     histograms carry the totals *)
  List.iter
    (fun (name, total) ->
      match Obs.Registry.merged_histogram reg name with
      | Some h ->
          Alcotest.(check (float 1e-9)) (name ^ " total") total
            (Obs.Histogram.sum h);
          Alcotest.(check int) (name ^ " count") 1 (Obs.Histogram.count h)
      | None -> Alcotest.failf "no %s histogram" name)
    [ ("work.log", 5.); ("work.log-start", 5.) ]

let test_log_append_records () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let log = Dstore.Log.create ~disk () in
      Alcotest.(check int) "empty" 0 (Dstore.Log.length log);
      Alcotest.(check int) "lsn a" 1 (Dstore.Log.append log "a");
      Alcotest.(check int) "lsn b" 2 (Dstore.Log.append log "b");
      Alcotest.(check int) "lsn c" 3 (Dstore.Log.append log "c");
      Alcotest.(check int) "three" 3 (Dstore.Log.length log);
      Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ]
        (Dstore.Log.records log);
      Alcotest.(check int) "appends are volatile: no forced writes" 0
        (Dstore.Disk.forced_writes disk);
      Alcotest.(check int) "nothing durable yet" 0 (Dstore.Log.durable_lsn log);
      Dstore.Log.force log;
      Alcotest.(check int) "one force covers all" 1
        (Dstore.Disk.forced_writes disk);
      Alcotest.(check int) "durable watermark" 3 (Dstore.Log.durable_lsn log))

let test_log_iterate () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:0.1 ~label:"log" () in
      let log = Dstore.Log.create ~segment_size:2 ~disk () in
      Dstore.Log.append_list log [ 1; 2; 3; 4 ];
      Alcotest.(check int) "fold sum" 10
        (Dstore.Log.fold log ~init:0 ~f:( + ));
      let seen = ref [] in
      Dstore.Log.iter_from log ~lsn:3 ~f:(fun l r -> seen := (l, r) :: !seen);
      Alcotest.(check (list (pair int int)))
        "cursor from lsn 3"
        [ (3, 3); (4, 4) ]
        (List.rev !seen);
      Alcotest.(check (option int)) "random access" (Some 2)
        (Dstore.Log.get log ~lsn:2);
      Alcotest.(check (option int)) "past tail" None
        (Dstore.Log.get log ~lsn:5))

let test_log_truncate_below () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:0.1 ~label:"log" () in
      let log = Dstore.Log.create ~segment_size:2 ~disk () in
      Dstore.Log.append_list log [ "a"; "b"; "c"; "d"; "e" ];
      Dstore.Log.force log;
      let io = Dstore.Disk.forced_writes disk in
      Dstore.Log.truncate_below log ~lsn:4;
      Alcotest.(check int) "truncation forces nothing" io
        (Dstore.Disk.forced_writes disk);
      Alcotest.(check int) "floor" 4 (Dstore.Log.base_lsn log);
      Alcotest.(check int) "two retained" 2 (Dstore.Log.length log);
      Alcotest.(check (list string)) "suffix" [ "d"; "e" ]
        (Dstore.Log.records log);
      Alcotest.(check (option string)) "below floor is gone" None
        (Dstore.Log.get log ~lsn:2);
      Alcotest.check_raises "floor above durable rejected"
        (Invalid_argument "Log.truncate_below: retention floor above durable_lsn")
        (fun () ->
          Dstore.Log.append_list log [ "f"; "g" ];
          Dstore.Log.truncate_below log ~lsn:7))

let test_log_crash_cut () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:0.1 ~label:"log" () in
      let log = Dstore.Log.create ~segment_size:2 ~disk () in
      Dstore.Log.append_list log [ "a"; "b" ];
      Dstore.Log.force log;
      Dstore.Log.append_list log [ "c"; "d"; "e" ];
      Alcotest.(check int) "volatile tail" 5 (Dstore.Log.appended_lsn log);
      Dstore.Log.crash_cut log;
      Alcotest.(check int) "tail cut to durable" 2
        (Dstore.Log.appended_lsn log);
      Alcotest.(check (list string)) "durable prefix survives" [ "a"; "b" ]
        (Dstore.Log.records log);
      (* LSNs keep increasing after the cut *)
      Alcotest.(check int) "next lsn after cut" 3 (Dstore.Log.append log "c'");
      Dstore.Log.force log;
      Alcotest.(check (list string)) "resumed" [ "a"; "b"; "c'" ]
        (Dstore.Log.records log))

let test_log_group_commit_coalesces () =
  (* N concurrent committers, one disk force per window: with a coalescing
     log, concurrent forces pay one latency, not N. *)
  let t = Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:10. ~label:"log" () in
  let log = Dstore.Log.create ~coalesce:true ~disk () in
  let done_at = ref [] in
  for i = 1 to 4 do
    ignore
      (Engine.spawn t
         ~name:(Printf.sprintf "w%d" i)
         ~main:(fun ~recovery:_ () ->
           ignore (Dstore.Log.append log (Printf.sprintf "r%d" i));
           Dstore.Log.force log;
           done_at := Engine.now () :: !done_at))
  done;
  ignore (Engine.run t);
  Alcotest.(check int) "all four committed" 4 (List.length !done_at);
  Alcotest.(check int) "durable" 4 (Dstore.Log.durable_lsn log);
  (* all four appends happen at t=0 before the first force's disk write
     starts, so a single window covers them *)
  Alcotest.(check int) "one coalesced force" 1
    (Dstore.Disk.forced_writes disk)

let test_log_group_commit_late_window () =
  (* A record appended after a window's write started must NOT be reported
     durable by that window — a second force covers it. *)
  let t = Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:10. ~label:"log" () in
  let log = Dstore.Log.create ~coalesce:true ~disk () in
  ignore
    (Engine.spawn t ~name:"early" ~main:(fun ~recovery:_ () ->
         ignore (Dstore.Log.append log "early");
         Dstore.Log.force log));
  ignore
    (Engine.spawn t ~name:"late" ~main:(fun ~recovery:_ () ->
         Engine.sleep 5.;
         (* mid-window: the first force's write is in flight *)
         ignore (Dstore.Log.append log "late");
         Dstore.Log.force log;
         Alcotest.(check int) "late record durable on return" 2
           (Dstore.Log.durable_lsn log)));
  ignore (Engine.run t);
  Alcotest.(check int) "two windows" 2 (Dstore.Disk.forced_writes disk)

let prop_log_segments_invisible =
  QCheck.Test.make ~name:"segmenting never changes contents" ~count:100
    QCheck.(pair (1 -- 8) (list small_int))
    (fun (seg, xs) ->
      in_sim (fun _ ->
          let disk = Dstore.Disk.create ~force_latency:0.01 ~label:"l" () in
          let log = Dstore.Log.create ~segment_size:seg ~disk () in
          Dstore.Log.append_list log xs;
          Dstore.Log.records log = xs
          && Dstore.Log.length log = List.length xs))

let prop_log_crash_cut_keeps_durable_prefix =
  (* Force after a random prefix, append the rest, crash: exactly the
     durable prefix survives, regardless of segment boundaries. *)
  QCheck.Test.make ~name:"crash cut = durable prefix" ~count:100
    QCheck.(triple (1 -- 4) (list small_int) (list small_int))
    (fun (seg, before, after) ->
      in_sim (fun _ ->
          let disk = Dstore.Disk.create ~force_latency:0.01 ~label:"l" () in
          let log = Dstore.Log.create ~segment_size:seg ~disk () in
          Dstore.Log.append_list log before;
          Dstore.Log.force log;
          Dstore.Log.append_list log after;
          Dstore.Log.crash_cut log;
          Dstore.Log.records log = before
          && Dstore.Log.appended_lsn log = List.length before))

let prop_log_truncate_then_cut =
  (* Truncation composed with crash cut: the retained window is always
     [max floor 1 .. durable]. *)
  QCheck.Test.make ~name:"truncate+cut window" ~count:100
    QCheck.(quad (1 -- 4) (list small_int) small_nat (list small_int))
    (fun (seg, before, floor_off, after) ->
      in_sim (fun _ ->
          let disk = Dstore.Disk.create ~force_latency:0.01 ~label:"l" () in
          let log = Dstore.Log.create ~segment_size:seg ~disk () in
          Dstore.Log.append_list log before;
          Dstore.Log.force log;
          let floor = min (floor_off + 1) (Dstore.Log.durable_lsn log + 1) in
          Dstore.Log.truncate_below log ~lsn:floor;
          Dstore.Log.append_list log after;
          Dstore.Log.crash_cut log;
          let expect =
            List.filteri (fun i _ -> i + 1 >= floor) before
          in
          Dstore.Log.records log = expect))

let test_stable_kv () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let kv = Dstore.Stable_kv.create ~disk () in
      Dstore.Stable_kv.put kv "a" 1;
      Dstore.Stable_kv.put kv "b" 2;
      Dstore.Stable_kv.put kv "a" 3;
      Alcotest.(check (option int)) "latest wins" (Some 3)
        (Dstore.Stable_kv.get kv "a");
      Alcotest.(check (option int)) "other" (Some 2)
        (Dstore.Stable_kv.get kv "b");
      Dstore.Stable_kv.remove kv "a";
      Alcotest.(check (option int)) "removed" None (Dstore.Stable_kv.get kv "a");
      Alcotest.(check (list (pair string int))) "bindings"
        [ ("b", 2) ]
        (Dstore.Stable_kv.bindings kv);
      Alcotest.(check int) "4 forced writes" 4 (Dstore.Disk.forced_writes disk))

let test_log_survives_crash () =
  (* The log object lives outside the process; a crash between appends must
     not lose forced records, and must lose the unforced tail. *)
  let t = Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
  let log = Dstore.Log.create ~disk () in
  let after_recovery = ref [] in
  let p =
    Engine.spawn t ~name:"p" ~main:(fun ~recovery () ->
        if recovery then begin
          Dstore.Log.crash_cut log;
          after_recovery := Dstore.Log.records log
        end
        else begin
          ignore (Dstore.Log.append log "committed-1");
          Dstore.Log.force log;
          ignore (Dstore.Log.append log "appended-not-forced");
          Engine.sleep 100.;
          ignore (Dstore.Log.append log "never-happens")
        end)
  in
  Engine.crash_at t 50. p;
  Engine.recover_at t 60. p;
  ignore (Engine.run t);
  Alcotest.(check (list string))
    "only the forced record" [ "committed-1" ] !after_recovery

(* ------------------------------------------------------------------ *)
(* backend parity: disk work routed through the runtime capability *)

let deployment_forced_writes (d : Etx.Deployment.t) =
  List.map (fun (_, rm) -> Dstore.Disk.forced_writes (Dbms.Rm.disk rm)) d.dbs

let test_forced_writes_sim_live_parity () =
  (* The databases' forced IO goes through [Etx_runtime.work], so an
     identical loss-free run must cost exactly the same forced writes per
     database on the simulator and on the wall-clock backend. The generous
     client period keeps real-time jitter from ever triggering a retry. *)
  let business = Workload.Bank.update in
  let seed_data = Workload.Bank.seed_accounts [ ("acct", 100) ] in
  let script ~issue =
    ignore (issue "acct:-10");
    ignore (issue "acct:-10")
  in
  let _e, sim_d =
    Harness.Simrun.deployment ~n_dbs:2 ~client_period:5_000. ~seed_data
      ~business ~script ()
  in
  Alcotest.(check bool) "sim quiesced" true
    (Etx.Deployment.run_to_quiescence ~deadline:60_000. sim_d);
  let lt = Runtime_live.create () in
  let live_d =
    Etx.Deployment.build ~rt:(Runtime_live.runtime lt) ~n_dbs:2
      ~client_period:5_000. ~seed_data ~business ~script ()
  in
  let live_ok = Etx.Deployment.run_to_quiescence ~deadline:60_000. live_d in
  let sim_io = deployment_forced_writes sim_d
  and live_io = deployment_forced_writes live_d in
  Runtime_live.shutdown lt;
  Alcotest.(check bool) "live quiesced" true live_ok;
  Alcotest.(check bool) "forced IO happened" true
    (List.for_all (fun c -> c > 0) sim_io);
  Alcotest.(check (list int)) "identical forced IO on both backends" sim_io
    live_io

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dstore"
    [
      ( "disk",
        [
          Alcotest.test_case "charges virtual time" `Quick
            test_disk_charges_time;
          Alcotest.test_case "counts forced writes" `Quick test_disk_counts;
          Alcotest.test_case "trace labels" `Quick test_disk_trace_labels;
          Alcotest.test_case "sim/live forced-IO parity" `Quick
            test_forced_writes_sim_live_parity;
        ] );
      ( "log",
        [
          Alcotest.test_case "append/force/records" `Quick
            test_log_append_records;
          Alcotest.test_case "cursor/fold/get" `Quick test_log_iterate;
          Alcotest.test_case "truncate below" `Quick test_log_truncate_below;
          Alcotest.test_case "crash cut" `Quick test_log_crash_cut;
          Alcotest.test_case "group commit coalesces" `Quick
            test_log_group_commit_coalesces;
          Alcotest.test_case "group commit late window" `Quick
            test_log_group_commit_late_window;
          Alcotest.test_case "survives crash" `Quick test_log_survives_crash;
          q prop_log_segments_invisible;
          q prop_log_crash_cut_keeps_durable_prefix;
          q prop_log_truncate_then_cut;
        ] );
      ( "stable-kv",
        [ Alcotest.test_case "put/get/remove" `Quick test_stable_kv ] );
    ]
