(* Tests for the network layer: models, reliable channel, failure
   detectors. *)

open Dsim
open Runtime
open Dnet

type Types.payload += App of int

(* Count App payloads received by a process that records them. *)
let spawn_recorder t received =
  Engine.spawn t ~name:"recorder" ~main:(fun ~recovery:_ () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let rec loop () =
        match
          Engine.recv
            ~filter:(fun m ->
              match m.Types.payload with App _ -> true | _ -> false)
            ()
        with
        | Some { payload = App n; _ } ->
            received := n :: !received;
            loop ()
        | Some _ | None -> ()
      in
      loop ())

let spawn_sender t dst payloads =
  Engine.spawn t ~name:"sender" ~main:(fun ~recovery:_ () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      List.iter
        (fun n ->
          Rchannel.send ch dst (App n);
          Engine.sleep 1.)
        payloads)

(* ------------------------------------------------------------------ *)
(* Netmodel *)

let test_constant_model () =
  let model = Netmodel.constant 3. in
  let rng = Rng.create ~seed:1 in
  Alcotest.(check (list (float 1e-9))) "constant" [ 3. ]
    (model rng ~src:0 ~dst:1)

let test_uniform_model_range () =
  let model = Netmodel.uniform ~lo:2. ~hi:4. in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    match model rng ~src:0 ~dst:1 with
    | [ d ] -> Alcotest.(check bool) "in range" true (d >= 2. && d <= 4.)
    | _ -> Alcotest.fail "expected one delivery"
  done

let test_lossy_model_rate () =
  let model = Netmodel.lossy ~loss:0.5 (Netmodel.constant 1.) in
  let rng = Rng.create ~seed:2 in
  let dropped = ref 0 in
  for _ = 1 to 1000 do
    if model rng ~src:0 ~dst:1 = [] then incr dropped
  done;
  Alcotest.(check bool) "about half dropped" true
    (!dropped > 420 && !dropped < 580)

let test_dup_model () =
  let model = Netmodel.lossy ~dup:1.0 (Netmodel.constant 1.) in
  let rng = Rng.create ~seed:3 in
  Alcotest.(check int) "two copies" 2 (List.length (model rng ~src:0 ~dst:1))

let test_partition () =
  let p, model = Netmodel.partitionable (Netmodel.constant 1.) in
  let rng = Rng.create ~seed:4 in
  Netmodel.isolate p 1;
  Alcotest.(check bool) "isolated" true (Netmodel.is_isolated p 1);
  Alcotest.(check (list (float 1e-9))) "cut (dst)" [] (model rng ~src:0 ~dst:1);
  Alcotest.(check (list (float 1e-9))) "cut (src)" [] (model rng ~src:1 ~dst:0);
  Alcotest.(check (list (float 1e-9))) "others fine" [ 1. ]
    (model rng ~src:0 ~dst:2);
  Netmodel.rejoin p 1;
  Alcotest.(check (list (float 1e-9))) "healed" [ 1. ]
    (model rng ~src:0 ~dst:1);
  Netmodel.isolate p 1;
  Netmodel.heal p;
  Alcotest.(check bool) "heal clears" false (Netmodel.is_isolated p 1)

(* ------------------------------------------------------------------ *)
(* Reliable channel *)

let run_rchannel_scenario ~seed ~loss ~dup n =
  let net = Netmodel.lossy ~loss ~dup (Netmodel.lan ()) in
  let t = Engine.create ~seed ~net () in
  let received = ref [] in
  let recorder = spawn_recorder t received in
  let _ = spawn_sender t recorder (List.init n (fun i -> i)) in
  ignore (Engine.run ~deadline:60_000. t);
  List.sort compare !received

let test_rchannel_lossless () =
  Alcotest.(check (list int))
    "all delivered once" [ 0; 1; 2; 3; 4 ]
    (run_rchannel_scenario ~seed:1 ~loss:0. ~dup:0. 5)

let test_rchannel_heavy_loss () =
  Alcotest.(check (list int))
    "all delivered once despite 40% loss"
    (List.init 20 (fun i -> i))
    (run_rchannel_scenario ~seed:2 ~loss:0.4 ~dup:0. 20)

let test_rchannel_duplication () =
  Alcotest.(check (list int))
    "dedup despite duplicating network"
    (List.init 10 (fun i -> i))
    (run_rchannel_scenario ~seed:3 ~loss:0. ~dup:0.8 10)

let prop_rchannel_exactly_once =
  QCheck.Test.make ~name:"reliable channel exactly-once under loss+dup"
    ~count:30
    QCheck.(triple (int_range 0 10_000) (float_range 0. 0.5) (float_range 0. 0.5))
    (fun (seed, loss, dup) ->
      run_rchannel_scenario ~seed ~loss ~dup 8 = [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let test_rchannel_integrity_only_if_sent () =
  (* Nothing received that was never sent: trivially structural here, but we
     check the recorder sees exactly the sent set, no extras. *)
  let got = run_rchannel_scenario ~seed:9 ~loss:0.2 ~dup:0.2 6 in
  Alcotest.(check (list int)) "no inventions" [ 0; 1; 2; 3; 4; 5 ] got

let test_rchannel_pending_drains () =
  let t = Engine.create ~net:(Netmodel.lan ()) () in
  let received = ref [] in
  let recorder = spawn_recorder t received in
  let pending_after = ref (-1) in
  let _ =
    Engine.spawn t ~name:"sender" ~main:(fun ~recovery:_ () ->
        let ch = Rchannel.create () in
        Rchannel.start ch;
        Rchannel.send ch recorder (App 1);
        Engine.sleep 1_000.;
        pending_after := Rchannel.pending ch)
  in
  ignore (Engine.run ~deadline:5_000. t);
  Alcotest.(check int) "outbox drained after ack" 0 !pending_after

let test_rchannel_pending_exact () =
  (* pending must equal sends minus acked sends at every step: it counts
     unacknowledged messages, not heap entries or table size *)
  let t = Engine.create ~net:(Netmodel.lan ()) () in
  let received = ref [] in
  let recorder = spawn_recorder t received in
  let observed = ref [] in
  let _ =
    Engine.spawn t ~name:"sender" ~main:(fun ~recovery:_ () ->
        let ch = Rchannel.create () in
        Rchannel.start ch;
        let snap tag = observed := (tag, Rchannel.pending ch) :: !observed in
        snap "start";
        for i = 1 to 5 do
          Rchannel.send ch recorder (App i)
        done;
        (* no yield since the sends: nothing can have been acked yet *)
        snap "after-5-sends";
        Engine.sleep 1_000.;
        snap "after-acks";
        Rchannel.send ch recorder (App 6);
        Rchannel.send ch recorder (App 7);
        snap "after-2-more";
        Engine.sleep 1_000.;
        snap "end")
  in
  ignore (Engine.run ~deadline:10_000. t);
  Alcotest.(check (list (pair string int)))
    "pending tracks unacked sends exactly"
    [
      ("start", 0);
      ("after-5-sends", 5);
      ("after-acks", 0);
      ("after-2-more", 2);
      ("end", 0);
    ]
    (List.rev !observed);
  Alcotest.(check (list int)) "all delivered" [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare !received)

let test_rchannel_quiesces () =
  (* With no loss the run must reach quiescence: retransmitters block. *)
  let t = Engine.create ~net:(Netmodel.lan ()) () in
  let received = ref [] in
  let recorder = spawn_recorder t received in
  let _ = spawn_sender t recorder [ 1; 2; 3 ] in
  let outcome = Engine.run t in
  Alcotest.(check bool) "quiescent" true (outcome = Engine.Quiescent);
  Alcotest.(check (list int)) "delivered" [ 1; 2; 3 ]
    (List.sort compare !received)

let test_rchannel_crashed_receiver_no_delivery () =
  let t = Engine.create ~net:(Netmodel.lan ()) () in
  let received = ref [] in
  let recorder = spawn_recorder t received in
  Engine.crash_at t 0.5 recorder;
  let _ = spawn_sender t recorder [ 7 ] in
  ignore (Engine.run ~deadline:2_000. t);
  Alcotest.(check (list int)) "nothing delivered" [] !received

let test_rchannel_delivery_after_recovery () =
  (* Receiver is down when the send happens; retransmission delivers it
     after recovery — the channel termination property for good procs. *)
  let t = Engine.create ~net:(Netmodel.lan ()) () in
  let received = ref [] in
  let recorder = spawn_recorder t received in
  Engine.crash_at t 0.5 recorder;
  Engine.recover_at t 300. recorder;
  let _ = spawn_sender t recorder [ 7 ] in
  ignore (Engine.run ~deadline:5_000. t);
  Alcotest.(check (list int)) "delivered after recovery" [ 7 ] !received

(* ------------------------------------------------------------------ *)
(* Failure detector *)

(* Three peers; we inspect suspicion state through probe closures installed
   in each process. *)
let fd_scenario ~seed ~loss ~crash_p1_at ~probe_at =
  let net = Netmodel.lossy ~loss (Netmodel.lan ()) in
  let t = Engine.create ~seed ~net () in
  let suspicion = ref None in
  (* pids are assigned in spawn order: 0, 1, 2 *)
  let peers = [ 0; 1; 2 ] in
  let spawn_member name observe =
    Engine.spawn t ~name ~main:(fun ~recovery:_ () ->
        let fd = Fdetect.heartbeat ~peers () in
        Fdetect.start fd;
        if observe then begin
          Engine.sleep probe_at;
          suspicion := Some (Fdetect.suspects fd 1)
        end
        else Engine.sleep infinity)
  in
  let p0 = spawn_member "p0" true in
  let _p1 = spawn_member "p1" false in
  let _p2 = spawn_member "p2" false in
  assert (p0 = 0);
  (match crash_p1_at with None -> () | Some at -> Engine.crash_at t at 1);
  ignore (Engine.run ~deadline:(probe_at +. 100.) t);
  !suspicion

let test_fd_completeness () =
  match fd_scenario ~seed:1 ~loss:0. ~crash_p1_at:(Some 100.) ~probe_at:400. with
  | Some s -> Alcotest.(check bool) "crashed peer suspected" true s
  | None -> Alcotest.fail "probe did not run"

let test_fd_no_false_suspicion_lossless () =
  match fd_scenario ~seed:1 ~loss:0. ~crash_p1_at:None ~probe_at:400. with
  | Some s -> Alcotest.(check bool) "correct peer not suspected" false s
  | None -> Alcotest.fail "probe did not run"

let test_fd_oracle () =
  let t = Engine.create () in
  let rt = Dsim.Runtime_sim.of_engine t in
  let observed = ref []
  and victim = ref (-1) in
  let _ =
    Engine.spawn t ~name:"watcher" ~main:(fun ~recovery:_ () ->
        let fd = Fdetect.oracle rt in
        Fdetect.start fd;
        Engine.sleep 10.;
        observed := Fdetect.suspects fd !victim :: !observed;
        Engine.sleep 20.;
        observed := Fdetect.suspects fd !victim :: !observed)
  in
  victim := Engine.spawn t ~name:"victim" ~main:(fun ~recovery:_ () ->
      Engine.sleep infinity);
  Engine.crash_at t 15. !victim;
  ignore (Engine.run ~deadline:100. t);
  Alcotest.(check (list bool)) "oracle tracks truth exactly" [ true; false ]
    !observed

let test_fd_adaptive_timeout_grows () =
  (* Under heavy heartbeat loss, false suspicions occur and must bump the
     timeout (the eventually-accurate mechanism). *)
  let net = Netmodel.lossy ~loss:0.6 (Netmodel.lan ()) in
  let t = Engine.create ~seed:5 ~net () in
  let final_timeout = ref None in
  let peers = [ 0; 1 ] in
  let _ =
    Engine.spawn t ~name:"p0" ~main:(fun ~recovery:_ () ->
        let fd = Fdetect.heartbeat ~initial_timeout:30. ~peers () in
        Fdetect.start fd;
        Engine.sleep 5_000.;
        final_timeout := Fdetect.current_timeout fd 1)
  in
  let _ =
    Engine.spawn t ~name:"p1" ~main:(fun ~recovery:_ () ->
        let fd = Fdetect.heartbeat ~peers () in
        Fdetect.start fd;
        Engine.sleep infinity)
  in
  ignore (Engine.run ~deadline:6_000. t);
  match !final_timeout with
  | Some timeout ->
      Alcotest.(check bool) "timeout grew above initial" true (timeout > 30.)
  | None -> Alcotest.fail "no timeout observed"

let test_fd_heartbeat_suspect_clear_bump () =
  (* Heartbeat mode end-to-end: a silent peer is suspected after missed
     heartbeats; when it reappears the suspicion is cleared and its timeout
     is bumped (the eventually-accurate adaptation rule). *)
  let t = Engine.create ~seed:3 ~net:(Netmodel.lan ()) () in
  let peers = [ 0; 1 ] in
  let during = ref None and after = ref None and bumped = ref None in
  let _p0 =
    Engine.spawn t ~name:"p0" ~main:(fun ~recovery:_ () ->
        let fd =
          Fdetect.heartbeat ~initial_timeout:50. ~timeout_bump:25. ~peers ()
        in
        Fdetect.start fd;
        Engine.sleep 400.;
        during := Some (Fdetect.suspects fd 1);
        Engine.sleep 500.;
        after := Some (Fdetect.suspects fd 1);
        bumped := Fdetect.current_timeout fd 1)
  in
  let p1 =
    Engine.spawn t ~name:"p1" ~main:(fun ~recovery:_ () ->
        let fd = Fdetect.heartbeat ~peers () in
        Fdetect.start fd;
        Engine.sleep infinity)
  in
  (* p1 goes silent at 100 and reappears at 600 *)
  Engine.crash_at t 100. p1;
  Engine.recover_at t 600. p1;
  ignore (Engine.run ~deadline:1_500. t);
  Alcotest.(check (option bool)) "suspected while silent" (Some true) !during;
  Alcotest.(check (option bool)) "cleared on reappearance" (Some false) !after;
  match !bumped with
  | Some timeout ->
      Alcotest.(check bool)
        (Printf.sprintf "timeout %.0f bumped above initial 50" timeout)
        true (timeout > 50.)
  | None -> Alcotest.fail "no timeout recorded"

let prop_fd_eventually_suspects_crashed =
  QCheck.Test.make ~name:"fd completeness across seeds and loss" ~count:15
    QCheck.(pair (int_range 0 1000) (float_range 0. 0.3))
    (fun (seed, loss) ->
      match
        fd_scenario ~seed ~loss ~crash_p1_at:(Some 50.) ~probe_at:2_000.
      with
      | Some s -> s
      | None -> false)

(* ------------------------------------------------------------------ *)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dnet"
    [
      ( "netmodel",
        [
          Alcotest.test_case "constant" `Quick test_constant_model;
          Alcotest.test_case "uniform range" `Quick test_uniform_model_range;
          Alcotest.test_case "loss rate" `Quick test_lossy_model_rate;
          Alcotest.test_case "duplication" `Quick test_dup_model;
          Alcotest.test_case "partition" `Quick test_partition;
        ] );
      ( "rchannel",
        [
          Alcotest.test_case "lossless" `Quick test_rchannel_lossless;
          Alcotest.test_case "heavy loss" `Quick test_rchannel_heavy_loss;
          Alcotest.test_case "duplicating net" `Quick test_rchannel_duplication;
          Alcotest.test_case "integrity" `Quick
            test_rchannel_integrity_only_if_sent;
          Alcotest.test_case "outbox drains" `Quick test_rchannel_pending_drains;
          Alcotest.test_case "pending exact" `Quick test_rchannel_pending_exact;
          Alcotest.test_case "quiesces" `Quick test_rchannel_quiesces;
          Alcotest.test_case "crashed receiver" `Quick
            test_rchannel_crashed_receiver_no_delivery;
          Alcotest.test_case "delivery after recovery" `Quick
            test_rchannel_delivery_after_recovery;
          q prop_rchannel_exactly_once;
        ] );
      ( "fdetect",
        [
          Alcotest.test_case "completeness" `Quick test_fd_completeness;
          Alcotest.test_case "accuracy (lossless)" `Quick
            test_fd_no_false_suspicion_lossless;
          Alcotest.test_case "oracle" `Quick test_fd_oracle;
          Alcotest.test_case "adaptive timeout" `Quick
            test_fd_adaptive_timeout_grows;
          Alcotest.test_case "suspect, clear, bump (heartbeat mode)" `Quick
            test_fd_heartbeat_suspect_clear_bump;
          q prop_fd_eventually_suspects_crashed;
        ] );
    ]
