(* Tests for the business-logic workloads (bank, travel, generators),
   exercised through full deployments. *)

let run ?(n_dbs = 1) ?seed_data ~business bodies =
  let _e, d =
    Harness.Simrun.deployment ~n_dbs ?seed_data ~business
      ~script:(fun ~issue -> List.iter (fun b -> ignore (issue b)) bodies)
      ()
  in
  let ok = Etx.Deployment.run_to_quiescence ~deadline:300_000. d in
  Alcotest.(check bool) "quiesced" true ok;
  Alcotest.(check (list string)) "spec" [] (Etx.Spec.check_all d);
  d

let read_int d db_index key =
  let _, rm = List.nth d.Etx.Deployment.dbs db_index in
  match Dbms.Rm.read_committed rm key with
  | Some (Dbms.Value.Int v) -> v
  | Some (Dbms.Value.Str _) -> Alcotest.fail (key ^ " is not an int")
  | None -> Alcotest.fail (key ^ " missing")

let results (d : Etx.Deployment.t) =
  List.map
    (fun (r : Etx.Client.record) -> r.result)
    (Etx.Client.records d.client)

(* ------------------------------------------------------------------ *)
(* bank *)

let test_bank_update () =
  let d =
    run
      ~seed_data:(Workload.Bank.seed_accounts [ ("a", 100) ])
      ~business:Workload.Bank.update [ "a:25"; "a:-50" ]
  in
  Alcotest.(check int) "balance" 75 (read_int d 0 "a");
  Alcotest.(check (list string)) "results"
    [ "updated:a:125"; "updated:a:75" ]
    (results d)

let test_bank_update_creates_account () =
  let d = run ~business:Workload.Bank.update [ "fresh:10" ] in
  Alcotest.(check int) "created from zero" 10 (read_int d 0 "fresh")

let test_bank_transfer_moves_money () =
  let d =
    run
      ~seed_data:(Workload.Bank.seed_accounts [ ("a", 100); ("b", 5) ])
      ~business:Workload.Bank.transfer [ "a:b:30" ]
  in
  Alcotest.(check int) "a debited" 70 (read_int d 0 "a");
  Alcotest.(check int) "b credited" 35 (read_int d 0 "b")

let test_bank_transfer_insufficient () =
  let d =
    run
      ~seed_data:(Workload.Bank.seed_accounts [ ("a", 10); ("b", 0) ])
      ~business:Workload.Bank.transfer [ "a:b:30" ]
  in
  Alcotest.(check int) "a untouched" 10 (read_int d 0 "a");
  Alcotest.(check int) "b untouched" 0 (read_int d 0 "b");
  (match Etx.Client.records d.client with
  | [ r ] ->
      Alcotest.(check bool) "aborted once then reported" true (r.tries = 2);
      Alcotest.(check string) "failure report"
        "failed:insufficient-funds:a=10" r.result
  | _ -> Alcotest.fail "expected one record")

let test_bank_audit_read_only () =
  let d =
    run
      ~seed_data:(Workload.Bank.seed_accounts [ ("a", 42) ])
      ~business:Workload.Bank.audit [ "a"; "missing" ]
  in
  Alcotest.(check (list string)) "results"
    [ "balance:a:42"; "balance:missing:none" ]
    (results d)

let test_bank_parse_errors () =
  (* a malformed request body is a programming error: it aborts the whole
     simulation loudly rather than silently corrupting the run *)
  Alcotest.check_raises "update body"
    (Invalid_argument "Bank.update: bad request body nope") (fun () ->
      let _e, d =
        Harness.Simrun.deployment ~business:Workload.Bank.update
          ~script:(fun ~issue -> ignore (issue "nope"))
          ()
      in
      ignore (Etx.Deployment.run_to_quiescence ~deadline:10_000. d))

(* ------------------------------------------------------------------ *)
(* travel *)

let inventory destinations =
  Workload.Travel.seed_inventory ~destinations ~seats:4 ~rooms:2 ~cars:3

let test_travel_booking_decrements_all_three () =
  let d =
    run ~n_dbs:3 ~seed_data:(inventory [ "rome" ])
      ~business:Workload.Travel.book [ "rome:2" ]
  in
  (* resources spread round-robin across the three databases *)
  Alcotest.(check int) "seats on db1" 2
    (read_int d 0 (Workload.Travel.seats_key "rome"));
  Alcotest.(check int) "rooms on db2" 1
    (read_int d 1 (Workload.Travel.rooms_key "rome"));
  Alcotest.(check int) "cars on db3" 2
    (read_int d 2 (Workload.Travel.cars_key "rome"))

let test_travel_single_db_layout () =
  let d =
    run ~n_dbs:1 ~seed_data:(inventory [ "rome" ])
      ~business:Workload.Travel.book [ "rome:1" ]
  in
  Alcotest.(check int) "seats" 3 (read_int d 0 (Workload.Travel.seats_key "rome"));
  Alcotest.(check int) "rooms" 1 (read_int d 0 (Workload.Travel.rooms_key "rome"))

let test_travel_sellout_reports () =
  (* rooms = 2: the third booking must fail with a committed report, and
     inventory must never go negative *)
  let d =
    run ~n_dbs:3 ~seed_data:(inventory [ "oslo" ])
      ~business:Workload.Travel.book [ "oslo:1"; "oslo:1"; "oslo:1" ]
  in
  Alcotest.(check int) "rooms exhausted, not negative" 0
    (read_int d 1 (Workload.Travel.rooms_key "oslo"));
  match results d with
  | [ r1; r2; r3 ] ->
      Alcotest.(check bool) "first two booked" true
        (String.length r1 > 6
        && String.sub r1 0 6 = "booked"
        && String.sub r2 0 6 = "booked");
      Alcotest.(check bool) "third reported unavailable" true
        (String.length r3 > 11 && String.sub r3 0 11 = "unavailable")
  | _ -> Alcotest.fail "expected three records"

let test_travel_party_too_big () =
  let d =
    run ~n_dbs:3 ~seed_data:(inventory [ "lima" ])
      ~business:Workload.Travel.book [ "lima:9" ]
  in
  (match results d with
  | [ r ] ->
      Alcotest.(check bool) "unavailable" true
        (String.length r > 11 && String.sub r 0 11 = "unavailable")
  | _ -> Alcotest.fail "expected one record");
  Alcotest.(check int) "seats untouched" 4
    (read_int d 0 (Workload.Travel.seats_key "lima"))

(* ------------------------------------------------------------------ *)
(* generator *)

let test_generator_deterministic () =
  let kind = Workload.Generator.Bank_updates { accounts = 4; max_delta = 9 } in
  let a = Workload.Generator.bodies ~seed:3 ~n:20 kind in
  let b = Workload.Generator.bodies ~seed:3 ~n:20 kind in
  let c = Workload.Generator.bodies ~seed:4 ~n:20 kind in
  Alcotest.(check (list string)) "same seed" a b;
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Alcotest.(check int) "n bodies" 20 (List.length a)

let test_generator_bodies_parse () =
  (* every generated body must be accepted by its business logic *)
  let kinds =
    [
      Workload.Generator.Bank_updates { accounts = 3; max_delta = 5 };
      Workload.Generator.Bank_transfers { accounts = 3; max_amount = 5 };
      Workload.Generator.Travel_bookings
        { destinations = [ "x"; "y" ]; max_party = 2 };
    ]
  in
  List.iter
    (fun kind ->
      let bodies = Workload.Generator.bodies ~seed:1 ~n:5 kind in
      let d =
        run
          ~n_dbs:(match kind with Workload.Generator.Travel_bookings _ -> 3 | _ -> 1)
          ~seed_data:(Workload.Generator.seed_data_of kind)
          ~business:(Workload.Generator.business_of kind)
          bodies
      in
      Alcotest.(check int) "all delivered" 5
        (List.length (Etx.Client.records d.client)))
    kinds

let is_write body = String.contains body ':'

let test_generator_read_heavy_mix () =
  (* the interleave is deterministic: every (reads_per_write + 1)-th body
     is a write, so the ratio is exact for any n, not just in expectation *)
  List.iter
    (fun (reads_per_write, n) ->
      let kind =
        Workload.Generator.Read_heavy
          { accounts = 4; max_delta = 9; reads_per_write }
      in
      let bodies = Workload.Generator.bodies ~seed:9 ~n kind in
      let writes = List.length (List.filter is_write bodies) in
      let cycle = reads_per_write + 1 in
      let expected_writes =
        if reads_per_write = 0 then n
        else List.length (List.filteri (fun i _ -> i mod cycle = cycle - 1) bodies)
      in
      Alcotest.(check int)
        (Printf.sprintf "writes for rpw=%d n=%d" reads_per_write n)
        expected_writes writes;
      List.iteri
        (fun i body ->
          let want_write = reads_per_write = 0 || i mod cycle = cycle - 1 in
          Alcotest.(check bool)
            (Printf.sprintf "body %d kind (rpw=%d)" i reads_per_write)
            want_write (is_write body);
          match String.split_on_char ':' body with
          | [ acct ] | [ acct; _ ] ->
              Alcotest.(check bool) "account name" true
                (String.length acct > 4 && String.sub acct 0 4 = "acct")
          | _ -> Alcotest.fail ("bad read-heavy body " ^ body))
        bodies)
    [ (3, 20); (3, 7); (1, 10); (0, 6); (9, 30) ]

let test_generator_travel_lookups () =
  let kind = Workload.Generator.Travel_lookups { destinations = [ "x"; "y" ] } in
  let bodies = Workload.Generator.bodies ~seed:2 ~n:12 kind in
  List.iter
    (fun b -> Alcotest.(check bool) "known destination" true (List.mem b [ "x"; "y" ]))
    bodies;
  let d =
    run ~n_dbs:3
      ~seed_data:(Workload.Generator.seed_data_of kind)
      ~business:(Workload.Generator.business_of kind)
      bodies
  in
  List.iter
    (fun (r : Etx.Client.record) ->
      Alcotest.(check bool) "availability result" true
        (String.length r.result > 10
        && String.sub r.result 0 10 = "available:"))
    (Etx.Client.records d.client)

let test_generator_read_heavy_sharded () =
  let map = Etx.Shard_map.create ~shards:3 () in
  let kind =
    Workload.Generator.Read_heavy { accounts = 8; max_delta = 5; reads_per_write = 3 }
  in
  let tagged = Workload.Generator.sharded_bodies ~map ~seed:4 ~n:40 kind in
  Alcotest.(check int) "n bodies" 40 (List.length tagged);
  List.iter
    (fun (shard, body) ->
      (* every body is single-key: its tag must be its account's shard *)
      let acct = List.hd (String.split_on_char ':' body) in
      Alcotest.(check int) ("shard of " ^ body) (Etx.Shard_map.shard_of map acct)
        shard)
    tagged;
  (* the tagging must not perturb the body stream itself *)
  Alcotest.(check (list string)) "same stream as unsharded"
    (Workload.Generator.bodies ~seed:4 ~n:40 kind)
    (List.map snd tagged)

let test_generator_transfer_distinct_accounts () =
  let kind = Workload.Generator.Bank_transfers { accounts = 5; max_amount = 9 } in
  List.iter
    (fun body ->
      match String.split_on_char ':' body with
      | [ a; b; _ ] ->
          Alcotest.(check bool) "from <> to" true (not (String.equal a b))
      | _ -> Alcotest.fail "bad transfer body")
    (Workload.Generator.bodies ~seed:5 ~n:50 kind)

let test_generator_cross_ratio_mix () =
  let map = Etx.Shard_map.create ~shards:2 () in
  let kind = Workload.Generator.Bank_transfers { accounts = 8; max_amount = 9 } in
  let shard a = Etx.Shard_map.shard_of map a in
  let is_cross body =
    match String.split_on_char ':' body with
    | [ a; b; _ ] -> shard a <> shard b
    | _ -> Alcotest.fail ("bad transfer body " ^ body)
  in
  List.iter
    (fun ratio ->
      let tagged =
        Workload.Generator.sharded_bodies ~map ~cross_ratio:ratio ~seed:6
          ~n:30 kind
      in
      (* the interleave is deterministic, so the mix is exact, not just in
         expectation: request i is cross iff floor((i+1)r) > floor(ir) *)
      Alcotest.(check int)
        (Printf.sprintf "cross count at ratio %.1f" ratio)
        (int_of_float (30. *. ratio))
        (List.length (List.filter (fun (_, b) -> is_cross b) tagged));
      List.iteri
        (fun i (s, b) ->
          let want =
            ratio > 0.
            && int_of_float (float_of_int (i + 1) *. ratio)
               > int_of_float (float_of_int i *. ratio)
          in
          Alcotest.(check bool)
            (Printf.sprintf "body %d cross (r=%.1f)" i ratio)
            want (is_cross b);
          (* the tag is always the source account's home shard *)
          Alcotest.(check int) ("tag of " ^ b)
            (shard (List.hd (String.split_on_char ':' b)))
            s)
        tagged)
    [ 0.; 0.1; 0.5; 1. ]

let test_generator_cross_ratio_zero_byte_identical () =
  (* ratio 0 must not perturb the rng draw sequence: the default stream and
     the explicit-zero stream are the same list *)
  let map = Etx.Shard_map.create ~shards:3 () in
  let kind = Workload.Generator.Bank_transfers { accounts = 9; max_amount = 7 } in
  Alcotest.(check (list (pair int string)))
    "ratio 0 = default"
    (Workload.Generator.sharded_bodies ~map ~seed:8 ~n:25 kind)
    (Workload.Generator.sharded_bodies ~map ~cross_ratio:0. ~seed:8 ~n:25 kind)

let prop_travel_inventory_conserved =
  QCheck.Test.make ~name:"travel inventory never negative, exactly booked"
    ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 1 6))
    (fun (seed, n_requests) ->
      let bodies = List.init n_requests (fun _ -> "ibiza:1") in
      let _e, d =
        Harness.Simrun.deployment ~seed ~n_dbs:3
          ~seed_data:
            (Workload.Travel.seed_inventory ~destinations:[ "ibiza" ] ~seats:3
               ~rooms:3 ~cars:3)
          ~business:Workload.Travel.book
          ~script:(fun ~issue -> List.iter (fun b -> ignore (issue b)) bodies)
          ()
      in
      let ok = Etx.Deployment.run_to_quiescence ~deadline:300_000. d in
      ok
      && Etx.Spec.check_all d = []
      &&
      let booked =
        List.length
          (List.filter
             (fun (r : Etx.Client.record) ->
               String.length r.result > 6 && String.sub r.result 0 6 = "booked")
             (Etx.Client.records d.client))
      in
      let _, rm = List.nth d.dbs 0 in
      match Dbms.Rm.read_committed rm (Workload.Travel.seats_key "ibiza") with
      | Some (Dbms.Value.Int seats) ->
          seats = 3 - booked && seats >= 0 && booked <= 3
      | Some (Dbms.Value.Str _) | None -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "bank",
        [
          Alcotest.test_case "update" `Quick test_bank_update;
          Alcotest.test_case "update creates" `Quick
            test_bank_update_creates_account;
          Alcotest.test_case "transfer" `Quick test_bank_transfer_moves_money;
          Alcotest.test_case "insufficient funds" `Quick
            test_bank_transfer_insufficient;
          Alcotest.test_case "audit" `Quick test_bank_audit_read_only;
          Alcotest.test_case "parse errors are loud" `Quick
            test_bank_parse_errors;
        ] );
      ( "travel",
        [
          Alcotest.test_case "books across 3 dbs" `Quick
            test_travel_booking_decrements_all_three;
          Alcotest.test_case "single-db layout" `Quick
            test_travel_single_db_layout;
          Alcotest.test_case "sell-out reports" `Quick
            test_travel_sellout_reports;
          Alcotest.test_case "party too big" `Quick test_travel_party_too_big;
          q prop_travel_inventory_conserved;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "bodies parse" `Quick test_generator_bodies_parse;
          Alcotest.test_case "transfer accounts distinct" `Quick
            test_generator_transfer_distinct_accounts;
          Alcotest.test_case "read-heavy mix ratio exact" `Quick
            test_generator_read_heavy_mix;
          Alcotest.test_case "travel lookups" `Quick
            test_generator_travel_lookups;
          Alcotest.test_case "read-heavy sharded bodies intra-shard" `Quick
            test_generator_read_heavy_sharded;
          Alcotest.test_case "cross ratio mix exact" `Quick
            test_generator_cross_ratio_mix;
          Alcotest.test_case "cross ratio 0 byte-identical" `Quick
            test_generator_cross_ratio_zero_byte_identical;
        ] );
    ]
