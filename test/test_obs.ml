(* Observability subsystem tests: histogram merge/quantile properties,
   registry and exporter round-trips, span-tree completeness under
   crash/fail-over, and counter-vs-ground-truth consistency on both
   runtime backends. *)

module H = Obs.Histogram
module R = Obs.Registry
module Span = Obs.Span

let hist_of xs =
  let h = H.create () in
  List.iter (H.observe h) xs;
  h

let same_hist a b =
  H.to_sorted a = H.to_sorted b
  && H.zero_count a = H.zero_count b
  && H.count a = H.count b

(* ------------------------------------------------------------------ *)
(* Histogram properties *)

let sample = QCheck.float_range (-5.) 1e6

let prop_merge_assoc =
  QCheck.Test.make ~name:"merge associative" ~count:200
    QCheck.(triple (list sample) (list sample) (list sample))
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      same_hist (H.merge (H.merge ha hb) hc) (H.merge ha (H.merge hb hc)))

let prop_merge_comm =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    QCheck.(pair (list sample) (list sample))
    (fun (a, b) ->
      let ha = hist_of a and hb = hist_of b in
      let ca = H.count ha in
      let r = same_hist (H.merge ha hb) (H.merge hb ha) in
      (* and merge must not mutate its arguments *)
      r && H.count ha = ca)

let prop_quantile_error_bound =
  (* the estimate must sit within [quantile_error] (relative) of the true
     empirical quantile under the histogram's own rank convention:
     rank = max 1 (ceil (q * n)), 1-indexed over the sorted samples *)
  QCheck.Test.make ~name:"quantile error bounded" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 60) (float_range 1e-3 1e6))
        (float_range 0. 1.))
    (fun (xs, q) ->
      let h = hist_of xs in
      let n = List.length xs in
      let sorted = List.sort compare xs in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let truth = List.nth sorted (rank - 1) in
      match H.quantile h q with
      | None -> false
      | Some est ->
          Float.abs (est -. truth) <= (H.quantile_error +. 1e-6) *. truth)

let prop_count_sum =
  QCheck.Test.make ~name:"count and sum track observations" ~count:200
    QCheck.(list sample)
    (fun xs ->
      let h = hist_of xs in
      H.count h = List.length xs
      && Float.abs (H.sum h -. List.fold_left ( +. ) 0. xs)
         <= 1e-6 *. (1. +. Float.abs (H.sum h)))

let test_histogram_basics () =
  let h = hist_of [ 10.; 20.; 0.; -1.; 100. ] in
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check int) "zero bucket" 2 (H.zero_count h);
  Alcotest.(check (option (float 1e-9))) "min" (Some (-1.)) (H.min_value h);
  Alcotest.(check (option (float 1e-9))) "max" (Some 100.) (H.max_value h);
  (match H.quantile h 0.1 with
  | Some v -> Alcotest.(check (float 1e-9)) "low ranks hit zero bucket" 0. v
  | None -> Alcotest.fail "quantile on non-empty histogram");
  Alcotest.(check (option (float 1e-9)))
    "empty quantile" None
    (H.quantile (H.create ()) 0.5)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_counters () =
  let r = R.create () in
  R.incr r ~node:"g1:a1" ~name:"x" 2;
  R.incr r ~node:"a1" ~name:"x" 1;
  R.incr r ~node:"g1:a1" ~name:"x" 3;
  Alcotest.(check int) "total" 6 (R.counter_total r "x");
  Alcotest.(check int) "group 1 only" 5 (R.counter_total ~group:1 r "x");
  Alcotest.(check int) "group 0 only" 1 (R.counter_total ~group:0 r "x");
  Alcotest.(check int) "one node" 1 (R.counter_value r ~node:"a1" ~name:"x");
  Alcotest.(check int) "absent is 0" 0 (R.counter_value r ~node:"zz" ~name:"x");
  R.observe r ~node:"a1" ~name:"lat" 5.;
  R.observe r ~node:"g1:a1" ~name:"lat" 7.;
  match R.merged_histogram r "lat" with
  | None -> Alcotest.fail "no merged histogram"
  | Some h -> Alcotest.(check int) "merged over nodes" 2 (H.count h)

let test_registry_spans_off () =
  let r = R.create ~spans:false () in
  Alcotest.(check bool) "spans disabled" false (R.spans_enabled r);
  let id = R.span_open r ~node:"n" ~at:1. ~trace:7 "request" in
  Alcotest.(check int) "span_open returns 0" 0 id;
  R.span_close r ~at:2. id;
  R.event r ~node:"n" ~at:1. ~trace:0 ~name:"note" "hi";
  Alcotest.(check int) "no spans stored" 0 (List.length (R.spans r));
  Alcotest.(check int) "no events stored" 0 (List.length (R.events r));
  (* metrics still work in spans-off mode *)
  R.incr r ~node:"n" ~name:"c" 1;
  Alcotest.(check int) "counters live" 1 (R.counter_total r "c")

let test_span_forest () =
  let r = R.create () in
  let root = R.span_open r ~node:"c" ~at:0. ~trace:1 "request" in
  let child = R.span_open r ~node:"a" ~at:1. ~parent:root ~trace:1 "try" in
  let leaf = R.span_open r ~node:"a" ~at:2. ~parent:child ~trace:1 "compute" in
  R.span_close r ~at:3. leaf;
  R.span_close r ~at:4. child;
  R.span_attr r root "tries" "1";
  R.span_attr r root "tries" "2";
  (* other traces must not leak into this forest *)
  ignore (R.span_open r ~node:"c" ~at:0.5 ~trace:2 "request");
  (* unknown parent: adopted as a root, not dropped *)
  let orphan = R.span_open r ~node:"x" ~at:6. ~parent:9999 ~trace:1 "clean" in
  R.span_close r ~at:7. orphan;
  R.span_close r ~at:5. root;
  R.span_close r ~at:5.5 root;
  (* double close is a no-op *)
  let spans = R.spans r in
  (match Span.find spans ~trace:1 ~name:"request" with
  | [ s ] ->
      Alcotest.(check (option string))
        "first attr write wins" (Some "1") (Span.attr s "tries");
      Alcotest.(check (option (float 1e-9)))
        "close is idempotent" (Some 5.) (Span.duration s)
  | _ -> Alcotest.fail "expected one request span in trace 1");
  match Span.forest spans ~trace:1 with
  | [ t1; t2 ] ->
      Alcotest.(check int) "main tree size" 3 (Span.tree_size t1);
      Alcotest.(check string) "orphan adopted" "clean" t2.Span.span.Span.name
  | f -> Alcotest.failf "expected 2 roots, got %d" (List.length f)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let test_prom_roundtrip () =
  let r = R.create () in
  R.incr r ~node:"client" ~name:"client.committed" 4;
  R.incr r ~node:"g1:client" ~name:"client.committed" 3;
  R.observe r ~node:"a1" ~name:"db.vote_ms" 12.5;
  R.observe r ~node:"a1" ~name:"db.vote_ms" 0.;
  let dump = Obs.Export_prom.to_string r in
  Alcotest.(check (list (float 1e-9)))
    "counter values re-parse" [ 3.; 4. ]
    (List.sort compare
       (Obs.Export_prom.counter_values dump ~metric:"etx_client_committed"));
  let has sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length dump
      && (String.sub dump i n = sub || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "histogram buckets" true (has "etx_db_vote_ms_bucket");
  Alcotest.(check bool) "+Inf bucket" true (has "le=\"+Inf\"");
  Alcotest.(check bool) "histogram count" true (has "etx_db_vote_ms_count");
  Alcotest.(check bool) "type lines" true (has "# TYPE etx_client_committed counter")

let test_json_export () =
  let r = R.create () in
  R.incr r ~node:"n" ~name:"c" 1;
  R.observe r ~node:"n" ~name:"h" 3.;
  ignore (R.span_open r ~node:"n" ~at:1. ~trace:7 "request");
  let j = Obs.Export_json.to_json ~spans:true r in
  (match Stats.Json.member "schema" j with
  | Some (Stats.Json.String s) ->
      Alcotest.(check string) "schema" "etx-obs/1" s
  | _ -> Alcotest.fail "missing schema");
  (match Stats.Json.member "spans" j with
  | Some (Stats.Json.List [ Stats.Json.Obj fields ]) ->
      Alcotest.(check bool)
        "open span has null stop" true
        (List.assoc "stop" fields = Stats.Json.Null)
  | _ -> Alcotest.fail "expected one span");
  (* the document must round-trip through the parser *)
  let s = Stats.Json.to_string j in
  match Stats.Json.of_string s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export does not re-parse: %s" e

(* ------------------------------------------------------------------ *)
(* End-to-end: span trees under fail-over on the simulator *)

let bank_seed = Workload.Bank.seed_accounts [ ("acct0", 1_000_000) ]

let failover_run ~seed =
  let reg = R.create () in
  let e, d =
    Harness.Simrun.deployment ~seed ~client_period:300. ~obs:reg
      ~seed_data:bank_seed ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        ignore (issue "acct0:10");
        ignore (issue "acct0:5"))
      ()
  in
  Dsim.Engine.crash_at e 230. (Etx.Deployment.primary d);
  Alcotest.(check bool) "quiesced" true
    (Etx.Deployment.run_to_quiescence ~deadline:600_000. d);
  Alcotest.(check (list string)) "spec holds" [] (Etx.Spec.check_all d);
  (reg, d)

let test_span_tree_failover () =
  let reg, d = failover_run ~seed:42 in
  let spans = R.spans reg in
  let records = Etx.Client.records d.client in
  Alcotest.(check bool) "some records" true (records <> []);
  List.iter
    (fun (r : Etx.Client.record) ->
      (* exactly one root "request" span per committed request, closed,
         with the final try count attached *)
      (match Span.find spans ~trace:r.rid ~name:"request" with
      | [ s ] ->
          Alcotest.(check bool)
            (Printf.sprintf "request span of r%d closed" r.rid)
            true (Span.closed s);
          Alcotest.(check (option string))
            (Printf.sprintf "tries attr of r%d" r.rid)
            (Some (string_of_int r.tries))
            (Span.attr s "tries")
      | l ->
          Alcotest.failf "r%d: expected one request span, got %d" r.rid
            (List.length l));
      (* a committed request has at least one closed terminating span, and
         one of them carries the decisive j *)
      let terms =
        List.filter Span.closed (Span.find spans ~trace:r.rid ~name:"terminate")
      in
      Alcotest.(check bool)
        (Printf.sprintf "r%d terminated" r.rid)
        true (terms <> []);
      Alcotest.(check bool)
        (Printf.sprintf "r%d decisive terminate (j=%d)" r.rid r.tries)
        true
        (List.exists
           (fun s -> Span.attr s "j" = Some (string_of_int r.tries))
           terms);
      (* cleaner take-overs must parent under the request's root (or be
         roots themselves when the cleaning server never saw the request) *)
      let root_id =
        match Span.find spans ~trace:r.rid ~name:"request" with
        | [ s ] -> s.Span.id
        | _ -> 0
      in
      List.iter
        (fun (c : Span.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "clean span of r%d parents correctly" r.rid)
            true
            (c.Span.parent = root_id || c.Span.parent = 0))
        (Span.find spans ~trace:r.rid ~name:"clean"))
    records;
  (* the crash must leave abandoned (never-closed) spans behind *)
  Alcotest.(check bool) "crash leaves open spans" true
    (List.exists (fun s -> not (Span.closed s)) spans);
  (* forest construction covers every span of every request trace *)
  List.iter
    (fun (r : Etx.Client.record) ->
      let mine = List.filter (fun s -> s.Span.trace = r.rid) spans in
      let covered =
        List.fold_left
          (fun acc t -> acc + Span.tree_size t)
          0
          (Span.forest spans ~trace:r.rid)
      in
      Alcotest.(check int)
        (Printf.sprintf "forest covers all spans of r%d" r.rid)
        (List.length mine) covered)
    records

let test_obs_events_and_bridge () =
  let reg, d = failover_run ~seed:7 in
  ignore d;
  let events = R.events reg in
  Alcotest.(check bool) "crash event recorded" true
    (List.exists (fun (e : Span.event) -> e.ename = "crash") events);
  (* cleaner notes are teed into the registry as events *)
  Alcotest.(check bool) "note events recorded" true
    (List.exists (fun (e : Span.event) -> e.ename = "note") events);
  (* the trace-free diagram renderer sees the same story *)
  let diagram = Harness.Seqdiag.of_obs reg in
  let has sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length diagram
      && (String.sub diagram i n = sub || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "diagram shows the crash" true (has "CRASH");
  Alcotest.(check bool) "diagram shows spans" true (has "+request")

(* ------------------------------------------------------------------ *)
(* Counter vs ground truth, both backends *)

let committed_counter_matches_sim ~seed =
  let reg = R.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed ~client_period:300. ~tracing:false
      ~obs:reg ~seed_data:bank_seed ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        ignore (issue "acct0:1");
        ignore (issue "acct0:2");
        ignore (issue "acct0:3"))
      ()
  in
  Etx.Deployment.run_to_quiescence ~deadline:600_000. d
  && R.counter_total reg "client.committed"
     = List.length (Etx.Client.records d.client)
  && R.counter_total reg "client.requests" = 3

let prop_committed_counter_sim =
  QCheck.Test.make ~name:"committed counter = records (sim, random seeds)"
    ~count:8 QCheck.small_int (fun seed -> committed_counter_matches_sim ~seed)

let test_committed_counter_live () =
  List.iter
    (fun seed ->
      let reg = R.create () in
      let lt = Runtime_live.create ~seed ~obs:reg () in
      let d =
        Etx.Deployment.build ~rt:(Runtime_live.runtime lt)
          ~seed_data:bank_seed ~business:Workload.Bank.update
          ~script:(fun ~issue ->
            ignore (issue "acct0:1");
            ignore (issue "acct0:2"))
          ()
      in
      let ok = Etx.Deployment.run_to_quiescence ~deadline:60_000. d in
      Runtime_live.shutdown lt;
      Alcotest.(check bool) "live quiesced" true ok;
      Alcotest.(check int)
        (Printf.sprintf "live committed counter (seed %d)" seed)
        (List.length (Etx.Client.records d.client))
        (R.counter_total reg "client.committed"))
    [ 1; 42 ]

let test_cache_metrics () =
  let reg = R.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed:11 ~client_period:300. ~obs:reg
      ~cache:true
      ~seed_data:(Workload.Bank.seed_accounts [ ("acct0", 1000) ])
      ~business:Workload.Bank.mixed
      ~script:(fun ~issue ->
        ignore (issue "acct0");
        ignore (issue "acct0");
        ignore (issue "acct0:5");
        ignore (issue "acct0"))
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Etx.Deployment.run_to_quiescence ~deadline:600_000. d);
  Alcotest.(check (list string)) "spec holds" [] (Etx.Spec.check_all d);
  let records = Etx.Client.records d.client in
  let served =
    List.length (List.filter (fun (r : Etx.Client.record) -> r.cached) records)
  in
  Alcotest.(check bool) "some hits" true (R.counter_total reg "cache.hit" > 0);
  Alcotest.(check bool) "some misses" true
    (R.counter_total reg "cache.miss" > 0);
  Alcotest.(check bool) "the write invalidated" true
    (R.counter_total reg "cache.invalidate" > 0);
  (* every hit the servers counted was delivered as a cached record *)
  Alcotest.(check int) "client.cache_served = cached records" served
    (R.counter_total reg "client.cache_served");
  Alcotest.(check int) "hits = served" served
    (R.counter_total reg "cache.hit");
  (* the hit-latency histogram observed exactly the hits *)
  (match R.merged_histogram reg "cache.hit_latency_ms" with
  | None -> Alcotest.fail "no cache.hit_latency_ms histogram"
  | Some h -> Alcotest.(check int) "latency samples = hits" served (H.count h));
  (* and everything round-trips through the Prometheus exporter *)
  let dump = Obs.Export_prom.to_string reg in
  List.iter
    (fun metric ->
      Alcotest.(check bool) (metric ^ " exported") true
        (Obs.Export_prom.counter_values dump ~metric <> []))
    [ "etx_cache_hit"; "etx_cache_miss"; "etx_cache_invalidate";
      "etx_client_cache_served" ]

let test_cache_off_emits_nothing () =
  let reg = R.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed:11 ~client_period:300. ~obs:reg
      ~seed_data:(Workload.Bank.seed_accounts [ ("acct0", 1000) ])
      ~business:Workload.Bank.mixed
      ~script:(fun ~issue ->
        ignore (issue "acct0");
        ignore (issue "acct0:5"))
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Etx.Deployment.run_to_quiescence ~deadline:600_000. d);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " absent when cache off") 0
        (R.counter_total reg name))
    [ "cache.hit"; "cache.miss"; "cache.invalidate"; "client.cache_served" ]

let test_cluster_obs_consistency () =
  let reg = R.create () in
  let map = Etx.Shard_map.create ~shards:2 () in
  let _e, c =
    Harness.Simrun.cluster ~seed:5 ~map ~obs:reg
      ~seed_data:
        (Workload.Bank.seed_accounts [ ("acct0", 1000); ("acct1", 1000) ])
      ~business:Workload.Bank.update
      ~scripts:
        [
          (fun ~issue -> ignore (issue "acct0:1"));
          (fun ~issue -> ignore (issue "acct1:1"));
        ]
      ()
  in
  Alcotest.(check bool) "cluster quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  Alcotest.(check (list string)) "spec holds" [] (Cluster.Spec.check_all c);
  Alcotest.(check (list string))
    "obs consistent with ground truth" []
    (Cluster.Spec.obs_consistency reg c)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          q prop_merge_assoc;
          q prop_merge_comm;
          q prop_quantile_error_bound;
          q prop_count_sum;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and groups" `Quick
            test_registry_counters;
          Alcotest.test_case "spans-off mode" `Quick test_registry_spans_off;
          Alcotest.test_case "span forest" `Quick test_span_forest;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus round-trip" `Quick
            test_prom_roundtrip;
          Alcotest.test_case "json export" `Quick test_json_export;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "span tree under fail-over" `Quick
            test_span_tree_failover;
          Alcotest.test_case "events and diagram bridge" `Quick
            test_obs_events_and_bridge;
          q prop_committed_counter_sim;
          Alcotest.test_case "committed counter (live)" `Quick
            test_committed_counter_live;
          Alcotest.test_case "cluster obs consistency" `Quick
            test_cluster_obs_consistency;
          Alcotest.test_case "cache metrics" `Quick test_cache_metrics;
          Alcotest.test_case "cache metrics silent when off" `Quick
            test_cache_off_emits_nothing;
        ] );
    ]
