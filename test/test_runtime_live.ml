(* Tests for the wall-clock Live runtime backend: class-demultiplexed
   mailboxes, timer ordering, and the paper's crash-stop semantics (volatile
   state — fibers and mailbox — dies with the process; recovery reruns the
   main with [~recovery:true]).

   Wall-clock timings are kept small but the assertion windows generous, so
   the suite stays robust on loaded CI machines. *)

module ER = Runtime.Etx_runtime

type Runtime.Types.payload += Ping of int | Pong of int

let cls_ping =
  ER.register_class ~name:"test-ping" (function Ping _ -> true | _ -> false)

let cls_pong =
  ER.register_class ~name:"test-pong" (function Pong _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* mailbox demultiplexing *)

let test_classed_demux () =
  (* A fiber blocked on one class must not be woken by another class's
     arrival, and a classed receive takes from its bucket regardless of
     arrival order. *)
  let lt = Runtime_live.create () in
  let rt = Runtime_live.runtime lt in
  let got = ref [] in
  let rx = ref (-1) in
  let receiver =
    rt.spawn ~name:"rx" ~main:(fun ~recovery:_ () ->
        (* the Ping arrives first, but we ask for the Pong *)
        (match ER.recv_cls ~timeout:5_000. cls_pong with
        | Some { payload = Pong n; _ } -> got := ("pong", n) :: !got
        | Some _ | None -> ());
        match ER.recv_cls ~timeout:5_000. cls_ping with
        | Some { payload = Ping n; _ } -> got := ("ping", n) :: !got
        | Some _ | None -> ())
  in
  rx := receiver;
  let _tx =
    rt.spawn ~name:"tx" ~main:(fun ~recovery:_ () ->
        ER.send !rx (Ping 1);
        ER.sleep 20.;
        ER.send !rx (Pong 2))
  in
  let ok = rt.run_until ~deadline:10_000. (fun () -> List.length !got = 2) in
  Runtime_live.shutdown lt;
  Alcotest.(check bool) "both received" true ok;
  Alcotest.(check (list (pair string int)))
    "class buckets, not arrival order"
    [ ("pong", 2); ("ping", 1) ]
    (List.rev !got)

let test_filtered_recv_skips_rejected () =
  (* The predicate path: messages the filter rejects stay queued for later
     receives instead of being consumed. *)
  let lt = Runtime_live.create () in
  let rt = Runtime_live.runtime lt in
  let got = ref [] in
  let rx = ref (-1) in
  let receiver =
    rt.spawn ~name:"rx" ~main:(fun ~recovery:_ () ->
        let want n m =
          match m.Runtime.Types.payload with Ping k -> k = n | _ -> false
        in
        (match ER.recv ~timeout:5_000. ~filter:(want 2) () with
        | Some { payload = Ping n; _ } -> got := n :: !got
        | Some _ | None -> ());
        match ER.recv ~timeout:5_000. ~filter:(want 1) () with
        | Some { payload = Ping n; _ } -> got := n :: !got
        | Some _ | None -> ())
  in
  rx := receiver;
  let _tx =
    rt.spawn ~name:"tx" ~main:(fun ~recovery:_ () ->
        ER.send !rx (Ping 1);
        ER.sleep 20.;
        ER.send !rx (Ping 2))
  in
  let ok = rt.run_until ~deadline:10_000. (fun () -> List.length !got = 2) in
  Runtime_live.shutdown lt;
  Alcotest.(check bool) "both received" true ok;
  Alcotest.(check (list int)) "rejected message preserved" [ 2; 1 ]
    (List.rev !got)

(* ------------------------------------------------------------------ *)
(* timers *)

let test_sleep_ordering () =
  (* Two fibers with different sleeps must wake shortest-first, and a sleep
     must never return early on the wall clock. *)
  let lt = Runtime_live.create () in
  let rt = Runtime_live.runtime lt in
  let order = ref [] in
  let fast_wake = ref 0. in
  let _slow =
    rt.spawn ~name:"slow" ~main:(fun ~recovery:_ () ->
        ER.sleep 150.;
        order := "slow" :: !order)
  in
  let _fast =
    rt.spawn ~name:"fast" ~main:(fun ~recovery:_ () ->
        let t0 = ER.now () in
        ER.sleep 30.;
        fast_wake := ER.now () -. t0;
        order := "fast" :: !order)
  in
  let ok = rt.run_until ~deadline:10_000. (fun () -> List.length !order = 2) in
  Runtime_live.shutdown lt;
  Alcotest.(check bool) "both woke" true ok;
  Alcotest.(check (list string))
    "shorter sleep wakes first" [ "slow"; "fast" ] !order;
  Alcotest.(check bool)
    (Printf.sprintf "slept at least the requested 30 ms (%.1f)" !fast_wake)
    true
    (!fast_wake >= 29.)

(* ------------------------------------------------------------------ *)
(* crash / recovery *)

let test_crash_kills_fibers_and_clears_mailbox () =
  let lt = Runtime_live.create () in
  let rt = Runtime_live.runtime lt in
  let events = ref [] in
  let push e = events := e :: !events in
  let seen e = List.mem e !events in
  let victim =
    rt.spawn ~name:"victim" ~main:(fun ~recovery () ->
        if recovery then begin
          push "recovered";
          (* the Pong queued before the crash must be gone *)
          match ER.recv_cls ~timeout:150. cls_pong with
          | None -> push "mailbox-was-cleared"
          | Some _ -> push "stale-pong-survived"
        end
        else begin
          push "started";
          ER.fork "helper" (fun () ->
              ER.sleep 200.;
              push "helper-survived-crash");
          (* block forever on a class nobody sends *)
          ignore (ER.recv_cls ~timeout:30_000. cls_ping);
          push "blocked-recv-survived-crash"
        end)
  in
  let pong_sent = ref false in
  let _driver =
    rt.spawn ~name:"driver" ~main:(fun ~recovery:_ () ->
        ER.sleep 30.;
        ER.send victim (Pong 7);
        ER.sleep 10.;
        (* the send above is a network hop; by now it is queued *)
        pong_sent := true)
  in
  assert (rt.run_until ~deadline:5_000. (fun () -> seen "started"));
  assert (rt.run_until ~deadline:5_000. (fun () -> !pong_sent));
  rt.crash victim;
  Alcotest.(check bool) "victim reported down" false (rt.is_up victim);
  rt.recover victim;
  Alcotest.(check bool) "victim reported up" true (rt.is_up victim);
  let ok =
    rt.run_until ~deadline:5_000. (fun () -> seen "mailbox-was-cleared")
  in
  (* give the pre-crash helper's 200 ms timer time to (not) fire *)
  ignore
    (rt.run_until
       ~deadline:(Runtime_live.now_ms lt +. 300.)
       (fun () -> false));
  Runtime_live.shutdown lt;
  Alcotest.(check bool) "recovery ran with a clean mailbox" true ok;
  Alcotest.(check bool) "recovery flag passed" true (seen "recovered");
  Alcotest.(check bool) "forked helper died with the process" false
    (seen "helper-survived-crash");
  Alcotest.(check bool) "blocked receive died with the process" false
    (seen "blocked-recv-survived-crash");
  Alcotest.(check bool) "no stale message" false (seen "stale-pong-survived")

let () =
  Alcotest.run "runtime-live"
    [
      ( "mailbox",
        [
          Alcotest.test_case "classed demux" `Quick test_classed_demux;
          Alcotest.test_case "filtered recv preserves rejected" `Quick
            test_filtered_recv_skips_rejected;
        ] );
      ("timers", [ Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering ]);
      ( "crash",
        [
          Alcotest.test_case "crash kills fibers, clears mailbox" `Quick
            test_crash_kills_fibers_and_clears_mailbox;
        ] );
    ]
