(* End-to-end tests of the e-Transaction protocol against the paper's
   specification (Section 3): Termination T.1/T.2, Agreement A.1/A.2/A.3,
   Validity V.1/V.2 — in nice runs, under fail-over, and under random fault
   injection. *)

open Etx

let check_no_violations label d =
  let violations = Spec.check_all d in
  if violations <> [] then
    Alcotest.failf "%s: %s" label (String.concat "; " violations)

(* A bank-ish business per the paper's footnote 4: attempt 1 fails a guard
   when the seed balance is too low (user-level abort → that try's
   transaction is poisoned and votes No); later attempts compute a
   committable informational result instead. *)
let debit_or_report ~amount =
  Business.make ~label:"debit-or-report"
    (fun ctx ~body ->
        let db = List.hd ctx.Business.dbs in
        if ctx.Business.attempt = 1 then
          match
            ctx.Business.exec ~db
              [
                Dbms.Rm.Ensure_min ("balance", amount);
                Dbms.Rm.Add ("balance", -amount);
              ]
          with
          | Dbms.Rm.Exec_ok { business_ok = true; _ } ->
              Printf.sprintf "debited:%d:%s" amount body
          | Dbms.Rm.Exec_ok { business_ok = false; _ } -> "insufficient-funds"
          | Dbms.Rm.Exec_conflict _ | Dbms.Rm.Exec_rejected -> "error"
        else
          (* informational result: no writes, commits trivially *)
          match ctx.Business.exec ~db [ Dbms.Rm.Get "balance" ] with
          | Dbms.Rm.Exec_ok { values = [ v ]; _ } ->
              Printf.sprintf "report:balance=%s"
                (match v with
                | Some value -> Dbms.Value.to_string value
                | None -> "none")
          | _ -> "report:unavailable")

let one_request ?seed ?net ?n_app_servers ?n_dbs ?fd_spec ?seed_data
    ?client_period ?business () =
  let business = Option.value ~default:Business.trivial business in
  Harness.Simrun.deployment ?seed ?net ?n_app_servers ?n_dbs ?fd_spec ?seed_data
    ?client_period ~business
    ~script:(fun ~issue -> ignore (issue "req-1"))
    ()

(* ------------------------------------------------------------------ *)
(* Nice runs *)

let test_nice_run_commits () =
  let _e, d = one_request () in
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  (match Client.records d.client with
  | [ r ] ->
      Alcotest.(check int) "single try" 1 r.tries;
      Alcotest.(check string) "result" "ok:req-1" r.result
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
  check_no_violations "nice run" d

let test_three_sequential_requests () =
  let _e, d =
    Harness.Simrun.deployment ~business:Business.trivial
      ~script:(fun ~issue ->
        ignore (issue "alpha");
        ignore (issue "beta");
        ignore (issue "gamma"))
      ()
  in
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  Alcotest.(check int) "three results" 3 (List.length (Client.records d.client));
  List.iter
    (fun (r : Client.record) ->
      Alcotest.(check int) "first try each" 1 r.tries)
    (Client.records d.client);
  check_no_violations "sequential requests" d

let test_nice_run_latency_matches_paper_shape () =
  (* With the calibrated model a committed e-Transaction should take around
     250 ms as seen by the client (the paper measured 252.3). *)
  let _e, d = one_request () in
  ignore (Deployment.run_to_quiescence d);
  match Client.records d.client with
  | [ r ] ->
      let latency = r.delivered_at -. r.issued_at in
      Alcotest.(check bool)
        (Printf.sprintf "latency %.1f in [230,280]" latency)
        true
        (latency > 230. && latency < 280.)
  | _ -> Alcotest.fail "expected one record"

let test_user_level_abort_then_commit () =
  (* balance 10 < 100: attempt 1 poisons and aborts; attempt 2 reports and
     commits. Exactly the paper's footnote-4 behaviour. *)
  let _e, d =
    Harness.Simrun.deployment
      ~seed_data:[ ("balance", Dbms.Value.Int 10) ]
      ~business:(debit_or_report ~amount:100)
      ~script:(fun ~issue -> ignore (issue "pay"))
      ()
  in
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  (match Client.records d.client with
  | [ r ] ->
      Alcotest.(check int) "two tries" 2 r.tries;
      Alcotest.(check string) "report delivered" "report:balance=10" r.result
  | _ -> Alcotest.fail "expected one record");
  check_no_violations "user-level abort" d;
  (* the failed debit must not have applied *)
  let _, rm = List.hd d.dbs in
  Alcotest.(check bool) "balance untouched" true
    (Dbms.Rm.read_committed rm "balance" = Some (Dbms.Value.Int 10))

let test_successful_debit_applies_once () =
  let _e, d =
    Harness.Simrun.deployment
      ~seed_data:[ ("balance", Dbms.Value.Int 500) ]
      ~business:(debit_or_report ~amount:100)
      ~script:(fun ~issue -> ignore (issue "pay"))
      ()
  in
  ignore (Deployment.run_to_quiescence d);
  check_no_violations "successful debit" d;
  let _, rm = List.hd d.dbs in
  Alcotest.(check bool) "balance debited exactly once" true
    (Dbms.Rm.read_committed rm "balance" = Some (Dbms.Value.Int 400))

let test_multiple_dbs_all_commit () =
  let _e, d = one_request ~n_dbs:3 () in
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  check_no_violations "multi-db" d;
  match Client.records d.client with
  | [ r ] ->
      let xid = Dbms.Xid.make ~rid:r.rid ~j:r.tries in
      List.iter
        (fun (_, rm) ->
          Alcotest.(check bool)
            (Printf.sprintf "committed at %s" (Dbms.Rm.name rm))
            true
            (Dbms.Rm.phase_of rm xid = Some Dbms.Rm.Committed))
        d.dbs
  | _ -> Alcotest.fail "expected one record"

(* ------------------------------------------------------------------ *)
(* Fail-over *)

let test_failover_abort_midcompute () =
  (* Primary crashes mid-SQL (t=100ms): Fig. 1(d). The cleaner aborts try 1,
     the client retries, another server commits try 2. *)
  let e, d = one_request ~client_period:300. () in
  Dsim.Engine.crash_at e 100. (Deployment.primary d);
  let ok = Deployment.run_to_quiescence d ~deadline:60_000. in
  Alcotest.(check bool) "quiesced" true ok;
  (match Client.records d.client with
  | [ r ] -> Alcotest.(check bool) "retried" true (r.tries >= 2)
  | _ -> Alcotest.fail "expected one record");
  check_no_violations "fail-over abort" d

let test_failover_commit_after_regd () =
  (* Primary crashes after the decision landed in regD but before it could
     terminate: Fig. 1(c). The cleaner must finish the COMMIT and the client
     must deliver try 1's result. *)
  let e, d = one_request ~client_period:300. () in
  (* regD write completes around t≈225ms with the calibrated model *)
  Dsim.Engine.crash_at e 230. (Deployment.primary d);
  let ok = Deployment.run_to_quiescence d ~deadline:60_000. in
  Alcotest.(check bool) "quiesced" true ok;
  check_no_violations "fail-over commit" d

let test_client_crash_t2_holds () =
  (* The client crashes mid-request. Nothing is delivered, but no database
     may stay blocked (T.2) — the cleaning thread unblocks them. *)
  let e, d = one_request ~client_period:300. () in
  Dsim.Engine.crash_at e 100. (Deployment.primary d);
  Dsim.Engine.crash_at e 150. (Client.pid d.client);
  ignore (Dsim.Engine.run ~deadline:60_000. e);
  Alcotest.(check (list string)) "T.2" [] (Spec.termination_t2 d);
  Alcotest.(check (list string)) "A.3" [] (Spec.agreement_a3 d);
  Alcotest.(check int) "nothing delivered" 0
    (List.length (Client.records d.client))

let test_db_crash_recovery () =
  (* The (good) database crashes during the run and recovers; the protocol
     must still terminate with a committed result. *)
  let e, d = one_request ~client_period:300. () in
  let db = fst (List.hd d.dbs) in
  Dsim.Engine.crash_at e 120. db;
  Dsim.Engine.recover_at e 400. db;
  let ok = Deployment.run_to_quiescence d ~deadline:120_000. in
  Alcotest.(check bool) "quiesced" true ok;
  check_no_violations "db crash+recovery" d

let test_two_of_five_appservers_crash () =
  let e, d = one_request ~n_app_servers:5 ~client_period:300. () in
  (match d.app_servers with
  | a1 :: a2 :: _ ->
      Dsim.Engine.crash_at e 50. a1;
      Dsim.Engine.crash_at e 180. a2
  | _ -> Alcotest.fail "expected five servers");
  let ok = Deployment.run_to_quiescence d ~deadline:120_000. in
  Alcotest.(check bool) "quiesced" true ok;
  check_no_violations "minority crash (5 servers)" d

(* ------------------------------------------------------------------ *)
(* Systematic coverage and extensions *)

let test_crash_at_every_point () =
  (* Sweep the primary's crash time across the whole protocol timeline
     (registration, compute, prepare, regD write, terminate, reply): the
     specification must hold at EVERY cut point. *)
  let t = ref 5. in
  while !t < 270. do
    let e, d = one_request ~client_period:300. () in
    Dsim.Engine.crash_at e !t (Deployment.primary d);
    let ok = Deployment.run_to_quiescence ~deadline:120_000. d in
    if not ok then Alcotest.failf "crash at %.1f: did not quiesce" !t;
    (match Spec.check_all d with
    | [] -> ()
    | vs ->
        Alcotest.failf "crash at %.1f: %s" !t (String.concat "; " vs));
    (match Client.records d.client with
    | [ _ ] -> ()
    | rs -> Alcotest.failf "crash at %.1f: %d records" !t (List.length rs));
    t := !t +. 12.
  done

let test_heartbeat_fd_nice_run () =
  (* With a real (imperfect) detector and default parameters, a failure-free
     run must behave exactly like the oracle run: one try, no cleaner
     interference from false suspicions. *)
  let _e, d =
    one_request
      ~fd_spec:
        (Appserver.Fd_heartbeat
           { period = 10.; initial_timeout = 60.; timeout_bump = 30. })
      ()
  in
  let ok = Deployment.run_to_quiescence ~deadline:60_000. d in
  Alcotest.(check bool) "quiesced" true ok;
  (match Client.records d.client with
  | [ r ] -> Alcotest.(check int) "one try" 1 r.tries
  | _ -> Alcotest.fail "expected one record");
  check_no_violations "heartbeat nice run" d

let test_partitioned_minority_server () =
  (* One (non-primary) application server is partitioned away for a while:
     the majority makes progress; after healing everything settles. *)
  let partition, net =
    Dnet.Netmodel.partitionable (Dnet.Netmodel.three_tier ~n_dbs:1 ())
  in
  let e, d =
    Harness.Simrun.deployment ~net ~business:Business.trivial
      ~script:(fun ~issue ->
        ignore (issue "during-partition");
        ignore (issue "after-heal"))
      ()
  in
  let a3 = List.nth d.app_servers 2 in
  Dnet.Netmodel.isolate partition a3;
  Dsim.Engine.schedule e ~delay:400. (fun () ->
      Dnet.Netmodel.heal partition);
  let ok = Deployment.run_to_quiescence ~deadline:120_000. d in
  Alcotest.(check bool) "quiesced" true ok;
  Alcotest.(check int) "both delivered" 2
    (List.length (Client.records d.client));
  check_no_violations "partition" d

let test_multiple_clients_contention () =
  (* Three clients hammer the same account concurrently: lock conflicts are
     retried, and the final balance reflects every transfer exactly once. *)
  let e, d =
    Harness.Simrun.deployment
      ~seed_data:(Workload.Bank.seed_accounts [ ("hot", 0) ])
      ~business:Workload.Bank.update
      ~script:(fun ~issue ->
        for _ = 1 to 3 do
          ignore (issue "hot:1")
        done)
      ()
  in
  let extra_clients =
    List.map
      (fun name ->
        Client.spawn d.rt ~name ~period:400. ~servers:d.app_servers
          ~script:(fun ~issue ->
            for _ = 1 to 3 do
              ignore (issue "hot:10")
            done)
          ())
      [ "client-b"; "client-c" ]
  in
  let all_done () =
    Client.script_done d.client
    && List.for_all Client.script_done extra_clients
  in
  let ok = Dsim.Engine.run_until ~deadline:600_000. e all_done in
  Alcotest.(check bool) "all clients served" true ok;
  check_no_violations "multi-client" d;
  List.iter
    (fun c ->
      Alcotest.(check int) "three results each" 3
        (List.length (Client.records c)))
    (d.client :: extra_clients);
  let _, rm = List.hd d.dbs in
  Alcotest.(check bool) "every update applied exactly once" true
    (Dbms.Rm.read_committed rm "hot" = Some (Dbms.Value.Int 63))

let test_impatient_client_active_replication () =
  (* The paper: "with an impatient client ... we may easily end up in the
     situation where all application servers try to concurrently commit or
     abort a result. In this case, like in an active replication scheme,
     there is no single primary". A 5 ms back-off makes the client broadcast
     almost immediately; several servers then race on regA[1], and the
     write-once register keeps execution exactly-once anyway. *)
  let e, d = one_request ~client_period:5. () in
  let ok = Deployment.run_to_quiescence ~deadline:60_000. d in
  Alcotest.(check bool) "quiesced" true ok;
  (match Client.records d.client with
  | [ r ] -> Alcotest.(check int) "still one try" 1 r.tries
  | _ -> Alcotest.fail "expected one record");
  check_no_violations "impatient client" d;
  (* every server received the request (the broadcast raced the primary) *)
  let deliveries =
    List.filter
      (fun (e : Dsim.Trace.entry) ->
        match e.event with
        | Dsim.Trace.Delivered
            { payload = Etx_types.Request_msg { j = 1; _ }; dst; _ } ->
            List.mem dst d.app_servers
        | _ -> false)
      (Dsim.Trace.entries (Dsim.Engine.trace e))
  in
  Alcotest.(check bool) "more than one server engaged" true
    (List.length deliveries >= 2);
  (* and exactly one computation happened *)
  let computed =
    List.filter
      (fun (e : Dsim.Trace.entry) ->
        match e.event with
        | Dsim.Trace.Note (_, s) ->
            String.length s > 9 && String.sub s 0 9 = "computed:"
        | _ -> false)
      (Dsim.Trace.entries (Dsim.Engine.trace e))
  in
  Alcotest.(check int) "exactly one execution" 1 (List.length computed)

(* --- the client protocol (Fig. 2) details --- *)

let request_deliveries e =
  (* count Request deliveries per application-server pid *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (e : Dsim.Trace.entry) ->
      match e.event with
      | Dsim.Trace.Delivered m -> (
          match m.Runtime.Types.payload with
          | Etx_types.Request_msg _ ->
              let c =
                Option.value ~default:0 (Hashtbl.find_opt counts m.dst)
              in
              Hashtbl.replace counts m.dst (c + 1)
          | _ -> ())
      | _ -> ())
    (Dsim.Trace.entries (Dsim.Engine.trace e));
  counts

let test_client_backoff_then_broadcast () =
  (* The primary is dead from the start: the client first times out on it,
     then broadcasts to every server (Fig. 2 lines 5-7). *)
  let e, d = one_request ~client_period:300. () in
  Dsim.Engine.crash_at e 0.5 (Deployment.primary d);
  let ok = Deployment.run_to_quiescence ~deadline:60_000. d in
  Alcotest.(check bool) "quiesced" true ok;
  let counts = request_deliveries e in
  List.iteri
    (fun i server ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "server %d reached by broadcast" i)
          true
          (Hashtbl.find_opt counts server <> None))
    d.app_servers;
  (match Client.records d.client with
  | [ r ] ->
      (* the whole first back-off period was spent on the dead primary *)
      Alcotest.(check bool) "latency includes the back-off" true
        (r.delivered_at -. r.issued_at > 300.)
  | _ -> Alcotest.fail "expected one record");
  check_no_violations "backoff broadcast" d

let test_client_no_broadcast_in_nice_run () =
  (* In a failure-free run the optimisation holds: only the primary ever
     sees the request. *)
  let e, d = one_request () in
  ignore (Deployment.run_to_quiescence d);
  let counts = request_deliveries e in
  List.iteri
    (fun i server ->
      if i > 0 then
        Alcotest.(check (option int))
          (Printf.sprintf "server %d never contacted" i)
          None
          (Hashtbl.find_opt counts server))
    d.app_servers

let test_client_ignores_stale_result () =
  (* A stray Result for a different (rid, j) must not fool the client. *)
  let e, d =
    Harness.Simrun.deployment ~business:Business.trivial
      ~script:(fun ~issue ->
        let r = issue "real" in
        Alcotest.(check string) "genuine result" "ok:real" r.result)
      ()
  in
  (* inject a forged result for a nonexistent request before the run *)
  Dsim.Engine.schedule e ~delay:1. (fun () ->
      Dsim.Engine.post e ~src:(Deployment.primary d)
        ~dst:(Client.pid d.client)
        (Etx_types.Result_msg
           {
             rid = 999_999;
             group = 0;
             j = 1;
             decision =
               { result = Some "forged"; outcome = Dbms.Rm.Commit };
           }));
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  check_no_violations "stale result" d

(* --- §5 extension: register garbage collection --- *)

let gc_notes e =
  List.filter_map
    (fun (e : Dsim.Trace.entry) ->
      match e.event with
      | Dsim.Trace.Note (_, s)
        when String.length s > 3 && String.sub s 0 3 = "gc:" ->
          Some s
      | _ -> None)
    (Dsim.Trace.entries (Dsim.Engine.trace e))

let computed_try1_notes e rid =
  let prefix = Printf.sprintf "computed:%d:1:" rid in
  List.filter
    (fun (e : Dsim.Trace.entry) ->
      match e.event with
      | Dsim.Trace.Note (_, s) ->
          String.length s >= String.length prefix
          && String.sub s 0 (String.length prefix) = prefix
      | _ -> false)
    (Dsim.Trace.entries (Dsim.Engine.trace e))
  |> List.length

let test_gc_collects_registers () =
  let e, d = Harness.Simrun.deployment ~gc_after:500. ~business:Business.trivial
      ~script:(fun ~issue ->
        ignore (issue "one");
        ignore (issue "two"))
      ()
  in
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  (* let the grace period elapse and the GC threads run *)
  ignore (Dsim.Engine.run ~deadline:(Dsim.Engine.now_of e +. 2_000.) e);
  let notes = gc_notes e in
  (* every server sweeps at least once *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 sweeps (got %d)" (List.length notes))
    true
    (List.length notes >= 3);
  let ends_with_zero s =
    String.length s > 12
    && String.sub s (String.length s - 11) 11 = "instances=0"
  in
  (* the LAST sweep of every server frees everything: there are exactly as
     many zero-instance sweeps as servers *)
  Alcotest.(check int) "all three servers end empty" 3
    (List.length (List.filter ends_with_zero notes))

let test_gc_timed_at_most_once_caveat () =
  (* The paper's caveat, demonstrated: after the grace period the servers
     have genuinely forgotten the request, so a (rule-breaking) late
     retransmission is re-executed as if new. *)
  let e, d =
    Harness.Simrun.deployment ~gc_after:300. ~business:Business.trivial
      ~script:(fun ~issue -> ignore (issue "pay"))
      ()
  in
  let ok = Deployment.run_to_quiescence d in
  Alcotest.(check bool) "quiesced" true ok;
  let rid =
    match Client.records d.client with
    | [ r ] -> r.rid
    | _ -> Alcotest.fail "expected one record"
  in
  Alcotest.(check int) "computed once" 1 (computed_try1_notes e rid);
  (* grace period passes; GC runs *)
  ignore (Dsim.Engine.run ~deadline:(Dsim.Engine.now_of e +. 1_000.) e);
  Alcotest.(check bool) "collected" true (gc_notes e <> []);
  (* a late retransmission of (rid, j=1) straight to the primary *)
  let request = { Etx_types.rid; key = "pay"; body = "pay" } in
  Dsim.Engine.post e ~src:(Client.pid d.client)
    ~dst:(Deployment.primary d)
    (Etx_types.Request_msg { request; j = 1; group = 0; span = 0 });
  ignore (Dsim.Engine.run ~deadline:(Dsim.Engine.now_of e +. 2_000.) e);
  Alcotest.(check int) "re-executed after GC (the timed caveat)" 2
    (computed_try1_notes e rid)

(* --- the Synod (Paxos) register backend at the protocol level --- *)

let test_synod_backend_nice_run () =
  let _e, d =
    Harness.Simrun.deployment ~backend:Appserver.Reg_synod ~business:Business.trivial
      ~script:(fun ~issue -> ignore (issue "via-paxos"))
      ()
  in
  let ok = Deployment.run_to_quiescence ~deadline:60_000. d in
  Alcotest.(check bool) "quiesced" true ok;
  (match Client.records d.client with
  | [ r ] ->
      Alcotest.(check int) "one try" 1 r.tries;
      Alcotest.(check string) "result" "ok:via-paxos" r.result;
      (* the fast path is preserved: same latency band as the CT backend *)
      let latency = r.delivered_at -. r.issued_at in
      Alcotest.(check bool)
        (Printf.sprintf "latency %.1f in [230,280]" latency)
        true
        (latency > 230. && latency < 280.)
  | _ -> Alcotest.fail "expected one record");
  check_no_violations "synod nice run" d

let test_synod_backend_failover () =
  (* both fail-over shapes of Fig. 1, on the Paxos substrate *)
  List.iter
    (fun (crash_at, expect_tries) ->
      let e, d =
        Harness.Simrun.deployment ~backend:Appserver.Reg_synod ~client_period:300.
          ~business:Business.trivial
          ~script:(fun ~issue -> ignore (issue "x"))
          ()
      in
      Dsim.Engine.crash_at e crash_at (Deployment.primary d);
      let ok = Deployment.run_to_quiescence ~deadline:120_000. d in
      Alcotest.(check bool)
        (Printf.sprintf "quiesced (crash at %.0f)" crash_at)
        true ok;
      (match Client.records d.client with
      | [ r ] ->
          Alcotest.(check bool)
            (Printf.sprintf "tries at crash %.0f" crash_at)
            true (r.tries >= expect_tries)
      | _ -> Alcotest.fail "expected one record");
      check_no_violations "synod failover" d)
    [ (230., 1); (100., 2) ]

let prop_synod_backend_random_faults =
  QCheck.Test.make ~name:"spec holds on the Synod backend under faults"
    ~count:15
    QCheck.(pair (int_range 0 100_000) (float_range 1. 400.))
    (fun (seed, crash_time) ->
      let e, d =
        Harness.Simrun.deployment ~seed ~backend:Appserver.Reg_synod
          ~client_period:300. ~business:Business.trivial
          ~script:(fun ~issue -> ignore (issue "x"))
          ()
      in
      Dsim.Engine.crash_at e crash_time (Deployment.primary d);
      Etx.Deployment.run_to_quiescence ~deadline:300_000. d
      && Spec.check_all d = [])

(* --- §5 extension: crash-recovery application servers --- *)

let test_recoverable_all_servers_crash () =
  (* With persistent registers even ALL application servers may crash (and
     recover): the crash-stop protocol's majority assumption is gone. The
     delivered result may degrade to an error report when the re-elected
     winner cannot reconstruct the original result string, but the
     transaction's effect applies exactly once. *)
  let e, d =
    Harness.Simrun.deployment ~recoverable:true ~client_period:300.
      ~seed_data:(Workload.Bank.seed_accounts [ ("acct", 1000) ])
      ~business:Workload.Bank.update
      ~script:(fun ~issue -> ignore (issue "acct:-100"))
      ()
  in
  List.iteri
    (fun i server ->
      let at = 60. +. (float_of_int i *. 40.) in
      Dsim.Engine.crash_at e at server;
      Dsim.Engine.recover_at e (at +. 500.) server)
    d.app_servers;
  let ok = Deployment.run_to_quiescence ~deadline:300_000. d in
  Alcotest.(check bool) "recovered cluster finished the request" true ok;
  Alcotest.(check int) "delivered" 1 (List.length (Client.records d.client));
  (* the money moved exactly once, whatever the report said *)
  let _, rm = List.hd d.dbs in
  Alcotest.(check bool) "debited exactly once" true
    (Dbms.Rm.read_committed rm "acct" = Some (Dbms.Value.Int 900));
  (* agreement and non-blocking hold *)
  Alcotest.(check (list string)) "A.2" [] (Spec.agreement_a2 d);
  Alcotest.(check (list string)) "A.3" [] (Spec.agreement_a3 d);
  Alcotest.(check (list string)) "T.2" [] (Spec.termination_t2 d)

let test_recoverable_majority_down_blocks_then_resumes () =
  (* Two of three servers down: no majority, no progress (consensus needs
     it); once they come back the request completes — "a majority is
     eventually up together" replaces "a majority never crashes". *)
  let e, d =
    Harness.Simrun.deployment ~recoverable:true ~client_period:300.
      ~business:Business.trivial
      ~script:(fun ~issue -> ignore (issue "x"))
      ()
  in
  (match d.app_servers with
  | a1 :: a2 :: _ ->
      Dsim.Engine.crash_at e 20. a1;
      Dsim.Engine.crash_at e 20. a2;
      Dsim.Engine.recover_at e 8_000. a1;
      Dsim.Engine.recover_at e 8_000. a2
  | _ -> Alcotest.fail "expected three servers");
  (* blocked while the majority is down *)
  ignore (Dsim.Engine.run ~deadline:7_000. e);
  Alcotest.(check int) "no delivery without a majority" 0
    (List.length (Client.records d.client));
  (* resumes after recovery *)
  let ok = Deployment.run_to_quiescence ~deadline:300_000. d in
  Alcotest.(check bool) "completed after the majority returned" true ok;
  Alcotest.(check int) "delivered" 1 (List.length (Client.records d.client));
  Alcotest.(check (list string)) "A.3" [] (Spec.agreement_a3 d)

let test_recoverable_register_write_cost () =
  (* The ablation's point in unit-test form: persistent registers put
     forced IO back on the critical path, so the nice-run latency climbs
     from ~243 ms to beyond 2PC's ~260 ms — which is exactly why the paper
     keeps the middle tier diskless. *)
  let run ~recoverable =
    let _e, d =
      Harness.Simrun.deployment ~recoverable
        ~seed_data:(Workload.Bank.seed_accounts [ ("a", 100) ])
        ~business:Workload.Bank.update
        ~script:(fun ~issue -> ignore (issue "a:1"))
        ()
    in
    assert (Deployment.run_to_quiescence ~deadline:60_000. d);
    match Client.records d.client with
    | [ r ] -> r.delivered_at -. r.issued_at
    | _ -> Alcotest.fail "expected one record"
  in
  let volatile = run ~recoverable:false in
  let persistent = run ~recoverable:true in
  Alcotest.(check bool)
    (Printf.sprintf "persistent (%.1f) ≥ volatile (%.1f) + 30ms" persistent
       volatile)
    true
    (persistent > volatile +. 30.)

(* ------------------------------------------------------------------ *)
(* Random fault injection *)

let prop_spec_under_random_faults =
  QCheck.Test.make ~name:"e-Transaction spec under random faults" ~count:25
    QCheck.(
      quad (int_range 0 100_000) (float_range 0. 0.15) (float_range 1. 500.)
        (int_range 0 2))
    (fun (seed, loss, crash_time, victim_index) ->
      let net = Dnet.Netmodel.lossy ~loss (Dnet.Netmodel.lan ()) in
      let e, d =
        Harness.Simrun.deployment ~seed ~net ~client_period:300.
          ~fd_spec:
            (Appserver.Fd_heartbeat
               { period = 10.; initial_timeout = 60.; timeout_bump = 30. })
          ~business:Business.trivial
          ~script:(fun ~issue -> ignore (issue "x"))
          ()
      in
      let victim = List.nth d.app_servers victim_index in
      Dsim.Engine.crash_at e crash_time victim;
      let ok = Deployment.run_to_quiescence d ~deadline:300_000. in
      ok && Spec.check_all d = [])

let prop_crash_recovery_servers =
  QCheck.Test.make ~name:"crash-recovery servers under random schedules"
    ~count:15
    QCheck.(
      triple (int_range 0 100_000) (float_range 10. 400.) (int_range 1 3))
    (fun (seed, first_crash, n_victims) ->
      let e, d =
        Harness.Simrun.deployment ~seed ~recoverable:true ~client_period:300.
          ~seed_data:(Workload.Bank.seed_accounts [ ("acct", 1000) ])
          ~business:Workload.Bank.update
          ~script:(fun ~issue -> ignore (issue "acct:-100"))
          ()
      in
      List.iteri
        (fun i server ->
          if i < n_victims then begin
            let at = first_crash +. (float_of_int i *. 70.) in
            Dsim.Engine.crash_at e at server;
            Dsim.Engine.recover_at e (at +. 600.) server
          end)
        d.app_servers;
      let ok = Etx.Deployment.run_to_quiescence ~deadline:600_000. d in
      ok
      && Etx.Spec.agreement_a2 d = []
      && Etx.Spec.agreement_a3 d = []
      && Etx.Spec.termination_t2 d = []
      &&
      let _, rm = List.hd d.dbs in
      Dbms.Rm.read_committed rm "acct" = Some (Dbms.Value.Int 900))

let prop_spec_with_db_restarts =
  QCheck.Test.make ~name:"spec with database crash-recovery cycles" ~count:15
    QCheck.(pair (int_range 0 100_000) (float_range 10. 300.))
    (fun (seed, crash_time) ->
      let e, d =
        Harness.Simrun.deployment ~seed ~client_period:300. ~business:Business.trivial
          ~script:(fun ~issue ->
            ignore (issue "x");
            ignore (issue "y"))
          ()
      in
      let db = fst (List.hd d.dbs) in
      Dsim.Engine.crash_at e crash_time db;
      Dsim.Engine.recover_at e (crash_time +. 150.) db;
      Dsim.Engine.crash_at e (crash_time +. 320.) db;
      Dsim.Engine.recover_at e (crash_time +. 470.) db;
      let ok = Deployment.run_to_quiescence d ~deadline:300_000. in
      ok && Spec.check_all d = [])

(* Everything at once: loss, an imperfect detector, an application-server
   crash, a database restart, an impatient client, several requests, and a
   randomly chosen register backend. *)
let prop_kitchen_sink =
  QCheck.Test.make ~name:"kitchen sink: combined fault schedules" ~count:12
    QCheck.(
      quad (int_range 0 100_000) (float_range 0. 0.1) (float_range 50. 600.)
        (int_range 0 1))
    (fun (seed, loss, crash_time, backend_choice) ->
      let backend =
        if backend_choice = 0 then Appserver.Reg_ct else Appserver.Reg_synod
      in
      let net = Dnet.Netmodel.lossy ~loss (Dnet.Netmodel.three_tier ~n_dbs:1 ()) in
      let e, d =
        Harness.Simrun.deployment ~seed ~net ~backend
          ~client_period:(50. +. float_of_int (seed mod 400))
          ~fd_spec:
            (Appserver.Fd_heartbeat
               { period = 10.; initial_timeout = 60.; timeout_bump = 30. })
          ~seed_data:(Workload.Bank.seed_accounts [ ("k", 10_000) ])
          ~business:Workload.Bank.update
          ~script:(fun ~issue ->
            for _ = 1 to 3 do
              ignore (issue "k:7")
            done)
          ()
      in
      let victim = List.nth d.app_servers (seed mod 3) in
      Dsim.Engine.crash_at e crash_time victim;
      let db = fst (List.hd d.dbs) in
      Dsim.Engine.crash_at e (crash_time +. 180.) db;
      Dsim.Engine.recover_at e (crash_time +. 380.) db;
      let ok = Deployment.run_to_quiescence ~deadline:600_000. d in
      ok
      && Spec.check_all d = []
      &&
      (* three committed updates of +7 each, exactly once *)
      let _, rm = List.hd d.dbs in
      Dbms.Rm.read_committed rm "k" = Some (Dbms.Value.Int 10_021))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "etx"
    [
      ( "nice-runs",
        [
          Alcotest.test_case "single request commits" `Quick
            test_nice_run_commits;
          Alcotest.test_case "sequential requests" `Quick
            test_three_sequential_requests;
          Alcotest.test_case "latency matches paper shape" `Quick
            test_nice_run_latency_matches_paper_shape;
          Alcotest.test_case "user-level abort then commit" `Quick
            test_user_level_abort_then_commit;
          Alcotest.test_case "debit applies exactly once" `Quick
            test_successful_debit_applies_once;
          Alcotest.test_case "multiple databases" `Quick
            test_multiple_dbs_all_commit;
        ] );
      ( "fail-over",
        [
          Alcotest.test_case "abort mid-compute (Fig 1d)" `Quick
            test_failover_abort_midcompute;
          Alcotest.test_case "commit after regD (Fig 1c)" `Quick
            test_failover_commit_after_regd;
          Alcotest.test_case "client crash: T.2 holds" `Quick
            test_client_crash_t2_holds;
          Alcotest.test_case "db crash + recovery" `Quick
            test_db_crash_recovery;
          Alcotest.test_case "two of five servers crash" `Quick
            test_two_of_five_appservers_crash;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "crash at every point" `Quick
            test_crash_at_every_point;
          Alcotest.test_case "heartbeat fd nice run" `Quick
            test_heartbeat_fd_nice_run;
          Alcotest.test_case "partitioned minority" `Quick
            test_partitioned_minority_server;
          Alcotest.test_case "three concurrent clients" `Quick
            test_multiple_clients_contention;
          Alcotest.test_case "impatient client (active replication)" `Quick
            test_impatient_client_active_replication;
        ] );
      ( "client",
        [
          Alcotest.test_case "back-off then broadcast" `Quick
            test_client_backoff_then_broadcast;
          Alcotest.test_case "no broadcast in nice run" `Quick
            test_client_no_broadcast_in_nice_run;
          Alcotest.test_case "ignores stale results" `Quick
            test_client_ignores_stale_result;
        ] );
      ( "gc",
        [
          Alcotest.test_case "collects registers" `Quick
            test_gc_collects_registers;
          Alcotest.test_case "timed at-most-once caveat" `Quick
            test_gc_timed_at_most_once_caveat;
        ] );
      ( "synod-backend",
        [
          Alcotest.test_case "nice run" `Quick test_synod_backend_nice_run;
          Alcotest.test_case "fail-over (both shapes)" `Quick
            test_synod_backend_failover;
          q prop_synod_backend_random_faults;
        ] );
      ( "crash-recovery-servers",
        [
          Alcotest.test_case "all servers crash and recover" `Quick
            test_recoverable_all_servers_crash;
          Alcotest.test_case "majority down blocks, then resumes" `Quick
            test_recoverable_majority_down_blocks_then_resumes;
          Alcotest.test_case "persistence costs forced IO" `Quick
            test_recoverable_register_write_cost;
        ] );
      ( "random-faults",
        [
          q prop_spec_under_random_faults;
          q prop_spec_with_db_restarts;
          q prop_crash_recovery_servers;
          q prop_kitchen_sink;
        ] );
    ]
