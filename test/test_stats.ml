(* Tests for the statistics library: summaries, confidence intervals,
   latency-component breakdowns, table rendering. *)

let close = Alcotest.(check (float 1e-6))

let test_mean_stddev () =
  close "mean" 3. (Stats.Summary.mean [ 1.; 2.; 3.; 4.; 5. ]);
  close "stddev" (sqrt 2.5) (Stats.Summary.stddev [ 1.; 2.; 3.; 4.; 5. ]);
  close "stddev singleton" 0. (Stats.Summary.stddev [ 7. ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  close "p50" 50. (Stats.Summary.percentile xs 50.);
  close "p95" 95. (Stats.Summary.percentile xs 95.);
  close "p99" 99. (Stats.Summary.percentile xs 99.);
  close "p100 = max" 100. (Stats.Summary.percentile xs 100.);
  close "p0 = min" 1. (Stats.Summary.percentile xs 0.)

let test_of_samples () =
  let s = Stats.Summary.of_samples [ 10.; 12.; 14.; 16.; 18. ] in
  Alcotest.(check int) "n" 5 s.n;
  close "mean" 14. s.mean;
  close "min" 10. s.min;
  close "max" 18. s.max;
  Alcotest.(check bool) "ci brackets mean" true
    (s.ci90_low < s.mean && s.mean < s.ci90_high)

let test_ci_width_shrinks_with_n () =
  let narrow = Stats.Summary.of_samples (List.init 400 (fun i -> 100. +. float_of_int (i mod 10))) in
  let wide = Stats.Summary.of_samples (List.init 4 (fun i -> 100. +. float_of_int (i mod 10) *. 1.0)) in
  Alcotest.(check bool) "more samples, tighter CI" true
    (Stats.Summary.ci90_width_ratio narrow < Stats.Summary.ci90_width_ratio wide)

let test_of_samples_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_samples: empty")
    (fun () -> ignore (Stats.Summary.of_samples []))

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range 0. 1000.)) (float_range 0. 100.))
    (fun (xs, p) ->
      let v = Stats.Summary.percentile xs p in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      lo <= v && v <= hi)

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within min/max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0. 1000.))
    (fun xs ->
      let m = Stats.Summary.mean xs in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      lo -. 1e-9 <= m && m <= hi +. 1e-9)

(* breakdown: span needs an engine *)
let test_breakdown_span_and_rows () =
  let t = Dsim.Engine.create () in
  let bd = Stats.Breakdown.create () in
  let _ =
    Dsim.Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        Stats.Breakdown.span bd "sql" (fun () -> Dsim.Engine.sleep 100.);
        Stats.Breakdown.tick bd;
        Stats.Breakdown.span bd "sql" (fun () -> Dsim.Engine.sleep 200.);
        Stats.Breakdown.span bd "commit" (fun () -> Dsim.Engine.sleep 10.);
        Stats.Breakdown.tick bd)
  in
  ignore (Dsim.Engine.run t);
  Alcotest.(check int) "txns" 2 (Stats.Breakdown.transactions bd);
  close "sql mean" 150. (Stats.Breakdown.row bd "sql");
  close "commit mean" 5. (Stats.Breakdown.row bd "commit");
  close "unknown row" 0. (Stats.Breakdown.row bd "nope");
  Alcotest.(check (list string)) "categories" [ "commit"; "sql" ]
    (Stats.Breakdown.categories bd);
  close "other" 45. (Stats.Breakdown.other bd ~total:200.);
  Stats.Breakdown.reset bd;
  Alcotest.(check int) "reset" 0 (Stats.Breakdown.transactions bd)

let test_breakdown_add () =
  let bd = Stats.Breakdown.create () in
  Stats.Breakdown.add bd "x" 3.;
  Stats.Breakdown.add bd "x" 5.;
  Stats.Breakdown.tick bd;
  close "direct add" 8. (Stats.Breakdown.row bd "x")

let test_table_render () =
  let s =
    Stats.Table.render ~headers:[ "name"; "v" ]
      ~rows:[ [ "alpha"; "1.0" ]; [ "b"; "22.5" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all lines share the same width *)
  (match lines with
  | first :: rest ->
      List.iter
        (fun l ->
          Alcotest.(check int) "aligned" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "contains row" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = 'a') lines)

let test_fmt () =
  Alcotest.(check string) "ms" "216.4" (Stats.Table.fmt_ms 216.44);
  Alcotest.(check string) "pct+" "+16%" (Stats.Table.fmt_pct 16.1);
  Alcotest.(check string) "pct0" "+0%" (Stats.Table.fmt_pct 0.)

(* ------------------------------------------------------------------ *)
(* JSON emitter: the bench and live-smoke artefacts round-trip exactly. *)

let json = Alcotest.testable (Fmt.of_to_string Stats.Json.to_string) ( = )

let roundtrip name v =
  match Stats.Json.of_string (Stats.Json.to_string v) with
  | Ok v' -> Alcotest.check json name v v'
  | Error e -> Alcotest.failf "%s: parse error: %s" name e

let test_json_roundtrip () =
  let open Stats.Json in
  (* one value exercising every constructor, string escapes included *)
  roundtrip "kitchen sink"
    (Obj
       [
         ("schema", String "etx-bench-harness/4");
         ("null", Null);
         ("flags", List [ Bool true; Bool false ]);
         ("counts", List [ Int 0; Int (-3); Int 123_456_789 ]);
         ("escaped", String "a\"b\\c\nd\te\r\x01 é");
         ("empty_obj", Obj []);
         ("empty_list", List []);
         ("nested", Obj [ ("rows", List [ Obj [ ("x", Int 1) ] ]) ]);
       ]);
  (* floats print shortest-round-trip, so equality is exact *)
  List.iter
    (fun f -> roundtrip (string_of_float f) (Float f))
    [ 0.; 1.5; -2.25; 1916.8658909465159; 1.0e22; 4.94e-324 ]

let test_json_rendering () =
  let open Stats.Json in
  Alcotest.(check string) "compact atoms" "[null,true,-2,\"x\"]"
    (to_string ~indent:0 (List [ Null; Bool true; Int (-2); String "x" ]));
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\n\\u0001\""
    (to_string ~indent:0 (String "a\"b\\c\n\x01"));
  Alcotest.(check string) "whole floats keep a decimal point" "2.0"
    (to_string (Float 2.));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan))

let test_json_member () =
  let open Stats.Json in
  let doc = Obj [ ("a", Int 1); ("b", Obj [ ("c", Bool true) ]) ] in
  Alcotest.(check bool) "present" true (member "a" doc = Some (Int 1));
  Alcotest.(check bool) "missing" true (member "z" doc = None);
  Alcotest.(check bool) "non-object" true (member "a" (Int 3) = None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "of_samples" `Quick test_of_samples;
          Alcotest.test_case "ci width vs n" `Quick test_ci_width_shrinks_with_n;
          Alcotest.test_case "empty raises" `Quick test_of_samples_empty_raises;
          q prop_percentile_bounded;
          q prop_mean_bounded;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "span/rows/other" `Quick
            test_breakdown_span_and_rows;
          Alcotest.test_case "add" `Quick test_breakdown_add;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatting" `Quick test_fmt;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
    ]
