(* Tests for the transactional resource manager and the database server
   process: XA semantics, locking, durability, recovery, and the
   concurrency races between the vote/decide/exec paths. *)

open Dbms

(* Run [f] inside a single-fiber simulation. Most RM entry points charge
   virtual time and therefore must run inside a fiber. *)
let in_sim f =
  let t = Dsim.Engine.create () in
  let result = ref None in
  let _ =
    Dsim.Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        result := Some (f t))
  in
  ignore (Dsim.Engine.run t);
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not run"

let fresh_rm ?(timing = Rm.zero_timing) ?(seed_data = []) ?(force_latency = 1.)
    () =
  let disk = Dstore.Disk.create ~force_latency ~label:"log" () in
  Rm.create ~timing ~seed_data ~disk ~name:"db-test" ()

let xid ?(rid = 1) j = Xid.make ~rid ~j

let exec_ok = function
  | Rm.Exec_ok { business_ok; _ } -> business_ok
  | Rm.Exec_conflict _ -> Alcotest.fail "unexpected conflict"
  | Rm.Exec_rejected -> Alcotest.fail "unexpected rejection"

let phase_str rm x =
  match Rm.phase_of rm x with
  | None -> "?"
  | Some Rm.Active -> "active"
  | Some Rm.Prepared -> "prepared"
  | Some Rm.Committed -> "committed"
  | Some Rm.Aborted -> "aborted"

(* ------------------------------------------------------------------ *)
(* exec semantics *)

let test_exec_put_get () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      (match Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 5); Rm.Get "k" ] with
      | Rm.Exec_ok { values = [ Some (Value.Int 5) ]; business_ok = true } -> ()
      | _ -> Alcotest.fail "put/get inside workspace");
      (* not committed yet *)
      Alcotest.(check (option bool)) "not visible before commit" None
        (Option.map (fun _ -> true) (Rm.read_committed rm "k")))

let test_exec_add_semantics () =
  in_sim (fun _ ->
      let rm = fresh_rm ~seed_data:[ ("n", Value.Int 10) ] () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Add ("n", 5); Rm.Add ("n", 3) ]);
      (match Rm.exec rm ~xid:x [ Rm.Get "n" ] with
      | Rm.Exec_ok { values = [ Some (Value.Int 18) ]; _ } -> ()
      | _ -> Alcotest.fail "adds accumulate in workspace");
      (* Add on a missing key starts from zero *)
      ignore (Rm.exec rm ~xid:x [ Rm.Add ("fresh", 7) ]);
      match Rm.exec rm ~xid:x [ Rm.Get "fresh" ] with
      | Rm.Exec_ok { values = [ Some (Value.Int 7) ]; _ } -> ()
      | _ -> Alcotest.fail "add on missing key")

let test_exec_guard_pass_and_fail () =
  in_sim (fun _ ->
      let rm = fresh_rm ~seed_data:[ ("bal", Value.Int 50) ] () in
      let x1 = xid 1 in
      Rm.xa_start rm ~xid:x1;
      Alcotest.(check bool) "guard passes" true
        (exec_ok (Rm.exec rm ~xid:x1 [ Rm.Ensure_min ("bal", 50) ]));
      let x2 = xid 2 in
      Rm.xa_start rm ~xid:x2;
      Alcotest.(check bool) "guard fails" false
        (exec_ok (Rm.exec rm ~xid:x2 [ Rm.Ensure_min ("bal", 51) ]));
      (* the poisoned transaction votes no *)
      Alcotest.(check bool) "poisoned votes no" true
        (Rm.vote rm ~xid:x2 = Rm.No))

(* Regression: a redelivered exec batch (at-least-once delivery across a
   database recovery) must not apply its relative updates twice. The first
   delivery of a seq executes; a duplicate replays the recorded reply; a
   fresh seq (a conflict retry) executes anew. *)
let test_exec_dedup_replays_duplicates () =
  in_sim (fun _ ->
      let rm = fresh_rm ~seed_data:[ ("n", Value.Int 100) ] () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      let ops = [ Rm.Add ("n", 7); Rm.Get "n" ] in
      let first =
        match Rm.exec_dedup rm ~seq:0 ~xid:x ops with
        | Some (Rm.Exec_ok { values = [ Some (Value.Int v) ]; _ }) -> v
        | _ -> Alcotest.fail "first delivery executes"
      in
      Alcotest.(check int) "first applies once" 107 first;
      (* duplicate delivery of the same seq: replayed, not re-executed *)
      (match Rm.exec_dedup rm ~seq:0 ~xid:x ops with
      | Some (Rm.Exec_ok { values = [ Some (Value.Int v) ]; _ }) ->
          Alcotest.(check int) "duplicate replays the recorded reply" 107 v
      | _ -> Alcotest.fail "duplicate must replay");
      (* a fresh seq is a new attempt and executes *)
      (match Rm.exec_dedup rm ~seq:1 ~xid:x [ Rm.Get "n" ] with
      | Some (Rm.Exec_ok { values = [ Some (Value.Int v) ]; _ }) ->
          Alcotest.(check int) "fresh seq re-executes" 107 v
      | _ -> Alcotest.fail "fresh seq executes");
      (* the workspace holds exactly one Add despite the duplicate *)
      Alcotest.(check bool) "vote yes" true (Rm.vote rm ~xid:x = Rm.Yes);
      (match Rm.decide rm ~xid:x Rm.Commit with
      | Rm.Commit -> ()
      | Rm.Abort -> Alcotest.fail "commit");
      match Rm.read_committed rm "n" with
      | Some (Value.Int 107) -> ()
      | _ -> Alcotest.fail "committed value applied exactly once")

let test_exec_dedup_unknown_rejected () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      match Rm.exec_dedup rm ~seq:0 ~xid:(xid 9) [ Rm.Get "k" ] with
      | Some Rm.Exec_rejected -> ()
      | _ -> Alcotest.fail "unknown transaction must be rejected")

let test_exec_fail_op_poisons () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      Alcotest.(check bool) "fail op" false
        (exec_ok (Rm.exec rm ~xid:x [ Rm.Fail ]));
      Alcotest.(check bool) "votes no" true (Rm.vote rm ~xid:x = Rm.No))

let test_exec_type_mismatch_poisons () =
  in_sim (fun _ ->
      let rm = fresh_rm ~seed_data:[ ("s", Value.Str "hello") ] () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      Alcotest.(check bool) "add on string" false
        (exec_ok (Rm.exec rm ~xid:x [ Rm.Add ("s", 1) ])))

let test_exec_requires_xa_start () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      match Rm.exec rm ~xid:(xid 1) [ Rm.Get "k" ] with
      | Rm.Exec_rejected -> ()
      | Rm.Exec_ok _ | Rm.Exec_conflict _ ->
          Alcotest.fail "exec without xa_start must be rejected")

let test_exec_after_prepare_rejected () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
      Alcotest.(check bool) "vote yes" true (Rm.vote rm ~xid:x = Rm.Yes);
      match Rm.exec rm ~xid:x [ Rm.Get "k" ] with
      | Rm.Exec_rejected -> ()
      | Rm.Exec_ok _ | Rm.Exec_conflict _ ->
          Alcotest.fail "exec after prepare must be rejected")

(* ------------------------------------------------------------------ *)
(* locks *)

let test_lock_conflict () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x1 = xid 1 and x2 = xid 2 in
      Rm.xa_start rm ~xid:x1;
      Rm.xa_start rm ~xid:x2;
      ignore (Rm.exec rm ~xid:x1 [ Rm.Put ("k", Value.Int 1) ]);
      (match Rm.exec rm ~xid:x2 [ Rm.Put ("k", Value.Int 2) ] with
      | Rm.Exec_conflict "k" -> ()
      | _ -> Alcotest.fail "expected conflict on k");
      (* reads and guards do not take write locks *)
      match Rm.exec rm ~xid:x2 [ Rm.Get "k"; Rm.Ensure_min ("k", 0) ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "reads should not conflict")

let test_conflict_has_no_side_effect () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x1 = xid 1 and x2 = xid 2 in
      Rm.xa_start rm ~xid:x1;
      Rm.xa_start rm ~xid:x2;
      ignore (Rm.exec rm ~xid:x1 [ Rm.Put ("a", Value.Int 1) ]);
      (* batch that conflicts on [a] must not lock [b] either *)
      (match Rm.exec rm ~xid:x2 [ Rm.Put ("b", Value.Int 2); Rm.Put ("a", Value.Int 2) ] with
      | Rm.Exec_conflict _ -> ()
      | _ -> Alcotest.fail "expected conflict");
      Alcotest.(check (list (pair string bool)))
        "only x1's lock exists"
        [ ("a", true) ]
        (List.map (fun (k, o) -> (k, Xid.equal o x1)) (Rm.locks_held rm)))

let test_locks_released_on_decide () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x1 = xid 1 in
      Rm.xa_start rm ~xid:x1;
      ignore (Rm.exec rm ~xid:x1 [ Rm.Put ("k", Value.Int 1) ]);
      ignore (Rm.vote rm ~xid:x1);
      Alcotest.(check int) "lock held while prepared" 1
        (List.length (Rm.locks_held rm));
      ignore (Rm.decide rm ~xid:x1 Rm.Commit);
      Alcotest.(check int) "released after commit" 0
        (List.length (Rm.locks_held rm));
      (* a second transaction can now take the lock *)
      let x2 = xid 2 in
      Rm.xa_start rm ~xid:x2;
      match Rm.exec rm ~xid:x2 [ Rm.Put ("k", Value.Int 9) ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "lock should be free")

let test_locks_released_on_abort () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
      ignore (Rm.decide rm ~xid:x Rm.Abort);
      Alcotest.(check int) "released" 0 (List.length (Rm.locks_held rm)))

(* ------------------------------------------------------------------ *)
(* vote / decide: the paper's contract *)

let test_vote_unknown_is_no () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      Alcotest.(check bool) "unknown votes no" true
        (Rm.vote rm ~xid:(xid 99) = Rm.No))

let test_vote_idempotent () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
      Alcotest.(check bool) "first yes" true (Rm.vote rm ~xid:x = Rm.Yes);
      Alcotest.(check bool) "second yes" true (Rm.vote rm ~xid:x = Rm.Yes);
      Alcotest.(check string) "still prepared" "prepared" (phase_str rm x))

let test_decide_rule_a_abort_in_abort_out () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
      ignore (Rm.vote rm ~xid:x);
      Alcotest.(check bool) "abort in, abort out" true
        (Rm.decide rm ~xid:x Rm.Abort = Rm.Abort);
      Alcotest.(check (option bool)) "write discarded" None
        (Option.map (fun _ -> true) (Rm.read_committed rm "k")))

let test_decide_rule_b_yes_commit () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 7) ]);
      Alcotest.(check bool) "yes" true (Rm.vote rm ~xid:x = Rm.Yes);
      Alcotest.(check bool) "commit in, commit out" true
        (Rm.decide rm ~xid:x Rm.Commit = Rm.Commit);
      Alcotest.(check bool) "write applied" true
        (Rm.read_committed rm "k" = Some (Value.Int 7)))

let test_decide_commit_without_prepare_aborts () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 7) ]);
      (* V.2-violating input: commit an unprepared transaction *)
      Alcotest.(check bool) "defensive abort" true
        (Rm.decide rm ~xid:x Rm.Commit = Rm.Abort);
      Alcotest.(check (option bool)) "nothing applied" None
        (Option.map (fun _ -> true) (Rm.read_committed rm "k")))

let test_decide_idempotent_and_sticky () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 7) ]);
      ignore (Rm.vote rm ~xid:x);
      ignore (Rm.decide rm ~xid:x Rm.Commit);
      Alcotest.(check bool) "re-decide commit" true
        (Rm.decide rm ~xid:x Rm.Commit = Rm.Commit);
      (* even a (protocol-violating) late abort input gets the truth back *)
      Alcotest.(check bool) "decided outcome is sticky" true
        (Rm.decide rm ~xid:x Rm.Abort = Rm.Commit))

let test_decide_unknown_abort_recorded () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 5 in
      Alcotest.(check bool) "abort unknown" true
        (Rm.decide rm ~xid:x Rm.Abort = Rm.Abort);
      Alcotest.(check string) "recorded" "aborted" (phase_str rm x))

let test_commit_one_phase () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 3) ]);
      Alcotest.(check bool) "1pc commit" true
        (Rm.commit_one_phase rm ~xid:x = Rm.Commit);
      Alcotest.(check bool) "applied" true
        (Rm.read_committed rm "k" = Some (Value.Int 3));
      (* poisoned transaction cannot 1pc-commit *)
      let x2 = xid 2 in
      Rm.xa_start rm ~xid:x2;
      ignore (Rm.exec rm ~xid:x2 [ Rm.Fail ]);
      Alcotest.(check bool) "poisoned aborts" true
        (Rm.commit_one_phase rm ~xid:x2 = Rm.Abort);
      (* unknown transaction cannot 1pc-commit *)
      Alcotest.(check bool) "unknown aborts" true
        (Rm.commit_one_phase rm ~xid:(xid 9) = Rm.Abort))

(* ------------------------------------------------------------------ *)
(* durability and recovery *)

let test_recovery_committed_survive_active_lost () =
  in_sim (fun _ ->
      let rm = fresh_rm ~seed_data:[ ("base", Value.Int 1) ] () in
      let xc = xid 1 and xa = xid 2 in
      Rm.xa_start rm ~xid:xc;
      ignore (Rm.exec rm ~xid:xc [ Rm.Put ("committed", Value.Int 10) ]);
      ignore (Rm.vote rm ~xid:xc);
      ignore (Rm.decide rm ~xid:xc Rm.Commit);
      Rm.xa_start rm ~xid:xa;
      ignore (Rm.exec rm ~xid:xa [ Rm.Put ("active", Value.Int 20) ]);
      (* crash: replay the log *)
      Rm.recover rm;
      Alcotest.(check bool) "seed data back" true
        (Rm.read_committed rm "base" = Some (Value.Int 1));
      Alcotest.(check bool) "committed survives" true
        (Rm.read_committed rm "committed" = Some (Value.Int 10));
      Alcotest.(check (option bool)) "active lost" None
        (Option.map (fun _ -> true) (Rm.read_committed rm "active"));
      Alcotest.(check string) "active txn gone" "?" (phase_str rm xa);
      (* a recovered database answers No for the lost transaction *)
      Alcotest.(check bool) "lost txn votes no" true
        (Rm.vote rm ~xid:xa = Rm.No))

let test_recovery_in_doubt_keeps_locks () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
      ignore (Rm.vote rm ~xid:x);
      Rm.recover rm;
      Alcotest.(check (list bool)) "in doubt" [ true ]
        (List.map (fun x' -> Xid.equal x' x) (Rm.in_doubt rm));
      Alcotest.(check int) "lock re-acquired" 1
        (List.length (Rm.locks_held rm));
      (* the in-doubt transaction can still be decided *)
      Alcotest.(check bool) "late commit" true
        (Rm.decide rm ~xid:x Rm.Commit = Rm.Commit);
      Alcotest.(check bool) "applied after recovery" true
        (Rm.read_committed rm "k" = Some (Value.Int 1));
      Alcotest.(check int) "locks released" 0
        (List.length (Rm.locks_held rm)))

let test_recovery_aborted_stays_aborted () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
      ignore (Rm.vote rm ~xid:x);
      ignore (Rm.decide rm ~xid:x Rm.Abort);
      Rm.recover rm;
      Alcotest.(check string) "aborted after replay" "aborted" (phase_str rm x);
      Alcotest.(check int) "no in-doubt" 0 (List.length (Rm.in_doubt rm));
      Alcotest.(check int) "no locks" 0 (List.length (Rm.locks_held rm)))

let test_recovery_idempotent () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 4) ]);
      ignore (Rm.vote rm ~xid:x);
      ignore (Rm.decide rm ~xid:x Rm.Commit);
      Rm.recover rm;
      Rm.recover rm;
      Alcotest.(check bool) "double recovery" true
        (Rm.read_committed rm "k" = Some (Value.Int 4));
      Alcotest.(check (list bool)) "commit order preserved" [ true ]
        (List.map (fun x' -> Xid.equal x' x) (Rm.committed_xids rm)))

(* Regression: a decide(abort) racing a vote's log-force suspension must not
   leave the transaction prepared (the fail-over in-doubt bug). *)
let test_vote_decide_race () =
  let t = Dsim.Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:10. ~label:"log" () in
  let rm =
    Rm.create ~timing:Dbms.Rm.paper_timing ~seed_data:[] ~disk ~name:"db" ()
  in
  let vote_result = ref None in
  let x = xid 1 in
  let _ =
    Dsim.Engine.spawn t ~name:"db" ~main:(fun ~recovery:_ () ->
        Rm.xa_start rm ~xid:x;
        ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
        (* the voting fiber suspends inside vote (cpu + forced IO) *)
        Dsim.Engine.fork "voter" (fun () ->
            vote_result := Some (Rm.vote rm ~xid:x));
        (* meanwhile the cleaner's abort lands *)
        Dsim.Engine.sleep 5.;
        ignore (Rm.decide rm ~xid:x Rm.Abort))
  in
  ignore (Dsim.Engine.run t);
  Alcotest.(check bool) "vote saw the abort" true (!vote_result = Some Rm.No);
  Alcotest.(check string) "not stuck prepared" "aborted" (phase_str rm x);
  Alcotest.(check int) "no in-doubt" 0 (List.length (Rm.in_doubt rm));
  (* and the log must not resurrect it *)
  Rm.recover rm;
  Alcotest.(check int) "no in-doubt after replay" 0
    (List.length (Rm.in_doubt rm))

(* Concurrent committers on a group-commit database share force windows:
   N sessions reaching their commit point together pay a couple of disk
   forces, not 2N. Per-call mode (the default) stays at exactly 2N —
   the historical WAL's accounting. The ordering half of the property:
   commits that resume out of LSN order (the higher-LSN fiber can wake
   first after a shared window) must still ship ascending. *)
let gc_commit_storm ~gc n =
  let t = Dsim.Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:10. ~label:"log" () in
  let rm =
    Rm.create ~timing:Rm.zero_timing ~group_commit:gc ~disk ~name:"db" ()
  in
  let _ =
    Dsim.Engine.spawn t ~name:"db" ~main:(fun ~recovery:_ () ->
        for i = 1 to n do
          Dsim.Engine.fork "session" (fun () ->
              let x = xid i in
              Rm.xa_start rm ~xid:x;
              ignore
                (Rm.exec rm ~xid:x
                   [ Rm.Put (Printf.sprintf "k%d" i, Value.Int i) ]);
              ignore (Rm.vote rm ~xid:x);
              ignore (Rm.decide rm ~xid:x Rm.Commit))
        done)
  in
  ignore (Dsim.Engine.run t);
  Alcotest.(check int) "all committed" n (List.length (Rm.committed_xids rm));
  (rm, Dstore.Disk.forced_writes disk)

let test_group_commit_concurrent_sessions () =
  let _, forces_off = gc_commit_storm ~gc:false 8 in
  Alcotest.(check int) "per-call: one force per vote and decide" 16 forces_off;
  let rm, forces_on = gc_commit_storm ~gc:true 8 in
  Alcotest.(check bool)
    (Printf.sprintf "coalesced: %d forces for 8 committers" forces_on)
    true
    (forces_on <= 4);
  (* the change feed must come out in ascending LSN order no matter
     which fiber resumed first *)
  match Rm.changes_since rm ~lsn:0 with
  | Rm.Entries entries ->
      let lsns = List.map fst entries in
      Alcotest.(check (list int)) "feed ascending" (List.sort compare lsns)
        lsns;
      Alcotest.(check int) "every commit shipped" 8 (List.length entries)
  | Rm.Up_to_date | Rm.Snapshot _ ->
      Alcotest.fail "expected incremental entries"

(* ------------------------------------------------------------------ *)
(* strict two-phase locking (the serializability option) *)

let fresh_2pl () =
  let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
  Rm.create ~timing:Rm.zero_timing ~read_locks:true ~disk ~name:"db-2pl" ()

let test_2pl_readers_share () =
  in_sim (fun _ ->
      let rm = fresh_2pl () in
      let x1 = xid 1 and x2 = xid 2 in
      Rm.xa_start rm ~xid:x1;
      Rm.xa_start rm ~xid:x2;
      (match Rm.exec rm ~xid:x1 [ Rm.Get "k" ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "reader 1");
      match Rm.exec rm ~xid:x2 [ Rm.Get "k"; Rm.Ensure_min ("k", 0) ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "readers must share")

let test_2pl_writer_excludes_reader () =
  in_sim (fun _ ->
      let rm = fresh_2pl () in
      let w = xid 1 and r = xid 2 in
      Rm.xa_start rm ~xid:w;
      Rm.xa_start rm ~xid:r;
      ignore (Rm.exec rm ~xid:w [ Rm.Put ("k", Value.Int 1) ]);
      (match Rm.exec rm ~xid:r [ Rm.Get "k" ] with
      | Rm.Exec_conflict "k" -> ()
      | _ -> Alcotest.fail "reader must conflict with writer");
      (* ... until the writer decides *)
      ignore (Rm.vote rm ~xid:w);
      ignore (Rm.decide rm ~xid:w Rm.Commit);
      match Rm.exec rm ~xid:r [ Rm.Get "k" ] with
      | Rm.Exec_ok { values = [ Some (Value.Int 1) ]; _ } -> ()
      | _ -> Alcotest.fail "reader sees committed value after release")

let test_2pl_reader_excludes_writer () =
  in_sim (fun _ ->
      let rm = fresh_2pl () in
      let r = xid 1 and w = xid 2 in
      Rm.xa_start rm ~xid:r;
      Rm.xa_start rm ~xid:w;
      ignore (Rm.exec rm ~xid:r [ Rm.Get "k" ]);
      match Rm.exec rm ~xid:w [ Rm.Put ("k", Value.Int 1) ] with
      | Rm.Exec_conflict "k" -> ()
      | _ -> Alcotest.fail "writer must conflict with reader")

let test_2pl_upgrade () =
  in_sim (fun _ ->
      let rm = fresh_2pl () in
      let x1 = xid 1 in
      Rm.xa_start rm ~xid:x1;
      ignore (Rm.exec rm ~xid:x1 [ Rm.Get "k" ]);
      (* sole reader upgrades to writer *)
      (match Rm.exec rm ~xid:x1 [ Rm.Add ("k", 1) ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "sole reader upgrades");
      (* ... but not when a co-reader exists *)
      let rm2 = fresh_2pl () in
      let a = xid 1 and b = xid 2 in
      Rm.xa_start rm2 ~xid:a;
      Rm.xa_start rm2 ~xid:b;
      ignore (Rm.exec rm2 ~xid:a [ Rm.Get "k" ]);
      ignore (Rm.exec rm2 ~xid:b [ Rm.Get "k" ]);
      match Rm.exec rm2 ~xid:a [ Rm.Put ("k", Value.Int 1) ] with
      | Rm.Exec_conflict "k" -> ()
      | _ -> Alcotest.fail "upgrade must fail with a co-reader")

let test_2pl_shared_released_on_abort () =
  in_sim (fun _ ->
      let rm = fresh_2pl () in
      let r = xid 1 and w = xid 2 in
      Rm.xa_start rm ~xid:r;
      Rm.xa_start rm ~xid:w;
      ignore (Rm.exec rm ~xid:r [ Rm.Get "k" ]);
      ignore (Rm.decide rm ~xid:r Rm.Abort);
      match Rm.exec rm ~xid:w [ Rm.Put ("k", Value.Int 1) ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "shared lock must be released on abort")

let test_default_mode_reads_lock_free () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let w = xid 1 and r = xid 2 in
      Rm.xa_start rm ~xid:w;
      Rm.xa_start rm ~xid:r;
      ignore (Rm.exec rm ~xid:w [ Rm.Put ("k", Value.Int 1) ]);
      match Rm.exec rm ~xid:r [ Rm.Get "k" ] with
      | Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "default mode must not take read locks")

(* ------------------------------------------------------------------ *)
(* the server process (paper Fig. 3), driven by raw messages *)

(* Spawn one database server plus a scripted "application server" fiber
   that talks to it over a reliable channel and records what happens. *)
let server_scenario ?(crash_db_at = None) ?(recover_db_at = None) ~script () =
  let t = Dsim.Engine.create ~net:(Dnet.Netmodel.lan ()) () in
  let rt = Dsim.Runtime_sim.of_engine t in
  let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
  let rm = Rm.create ~timing:Rm.zero_timing ~seed_data:[] ~disk ~name:"db" () in
  let app_pid = ref [] in
  let db =
    Server.spawn rt ~name:"db" ~rm ~observers:(fun () -> !app_pid) ()
  in
  let result = ref None in
  let app =
    Dsim.Engine.spawn t ~name:"app" ~main:(fun ~recovery:_ () ->
        let ch = Dnet.Rchannel.create () in
        Dnet.Rchannel.start ch;
        let rd = Stub.Readiness.create ~dbs:[ db ] in
        Stub.Readiness.start rd;
        result := Some (script ~db ~ch ~rd))
  in
  app_pid := [ app ];
  (match crash_db_at with
  | Some at -> Dsim.Engine.crash_at t at db
  | None -> ());
  (match recover_db_at with
  | Some at -> Dsim.Engine.recover_at t at db
  | None -> ());
  ignore (Dsim.Engine.run ~deadline:60_000. t);
  match !result with
  | Some r -> (r, rm)
  | None -> Alcotest.fail "script did not finish"

let test_server_full_commit_round () =
  let vote, rm =
    server_scenario
      ~script:(fun ~db ~ch ~rd ->
        let x = xid 1 in
        Stub.xa_start ch rd ~db ~xid:x;
        (match Stub.exec ch rd ~db ~xid:x [ Rm.Put ("k", Value.Int 1) ] with
        | Rm.Exec_ok _ -> ()
        | _ -> Alcotest.fail "exec failed");
        Stub.xa_end ch rd ~db ~xid:x;
        let vote = Stub.wait_vote ch rd ~db ~xid:x in
        Stub.wait_ack_decide ch rd ~db ~xid:x Rm.Commit;
        vote)
      ()
  in
  Alcotest.(check bool) "voted yes" true (vote = Rm.Yes);
  Alcotest.(check bool) "committed" true
    (Rm.read_committed rm "k" = Some (Value.Int 1))

let test_server_concurrent_decide_during_prepare_queue () =
  (* decide and prepare are handled by separate fibers (the paper's
     cobegin): a decide for one transaction must not wait behind a vote for
     another *)
  let (), rm =
    server_scenario
      ~script:(fun ~db ~ch ~rd ->
        let x1 = xid 1 and x2 = xid 2 in
        Stub.xa_start ch rd ~db ~xid:x1;
        ignore (Stub.exec ch rd ~db ~xid:x1 [ Rm.Put ("a", Value.Int 1) ]);
        ignore (Stub.wait_vote ch rd ~db ~xid:x1);
        Stub.xa_start ch rd ~db ~xid:x2;
        ignore (Stub.exec ch rd ~db ~xid:x2 [ Rm.Put ("b", Value.Int 2) ]);
        ignore (Stub.wait_vote ch rd ~db ~xid:x2);
        (* decide both; order of arrival is not order of xid *)
        Stub.wait_ack_decide ch rd ~db ~xid:x2 Rm.Commit;
        Stub.wait_ack_decide ch rd ~db ~xid:x1 Rm.Abort)
      ()
  in
  Alcotest.(check (option bool)) "x1 aborted" None
    (Option.map (fun _ -> true) (Rm.read_committed rm "a"));
  Alcotest.(check bool) "x2 committed" true
    (Rm.read_committed rm "b" = Some (Value.Int 2))

let test_server_ready_on_recovery () =
  (* Crash the server while the app waits for a vote: the vote resolution
     must come from the recovery path (Ready bumps the epoch, the stub
     re-sends, the recovered server answers No for the lost transaction). *)
  let vote, _rm =
    server_scenario ~crash_db_at:(Some 50.) ~recover_db_at:(Some 200.)
      ~script:(fun ~db ~ch ~rd ->
        let x = xid 1 in
        Stub.xa_start ch rd ~db ~xid:x;
        ignore (Stub.exec ch rd ~db ~xid:x [ Rm.Put ("k", Value.Int 1) ]);
        Dsim.Engine.sleep 60.;
        (* db is down now; this blocks until recovery *)
        Stub.wait_vote ch rd ~db ~xid:x)
      ()
  in
  Alcotest.(check bool) "recovered server votes no for lost txn" true
    (vote = Rm.No)

let test_server_in_doubt_across_crash () =
  (* Vote yes, crash, recover: the transaction is in doubt and a late
     decide commits it. T.2's database half, at the message level. *)
  let (), rm =
    server_scenario ~crash_db_at:(Some 100.) ~recover_db_at:(Some 200.)
      ~script:(fun ~db ~ch ~rd ->
        let x = xid 1 in
        Stub.xa_start ch rd ~db ~xid:x;
        ignore (Stub.exec ch rd ~db ~xid:x [ Rm.Put ("k", Value.Int 5) ]);
        let vote = Stub.wait_vote ch rd ~db ~xid:x in
        Alcotest.(check bool) "voted yes before crash" true (vote = Rm.Yes);
        Dsim.Engine.sleep 150.;
        (* db crashed and came back; the prepared txn must still decide *)
        Stub.wait_ack_decide ch rd ~db ~xid:x Rm.Commit)
      ()
  in
  Alcotest.(check bool) "in-doubt txn committed after recovery" true
    (Rm.read_committed rm "k" = Some (Value.Int 5))

(* ------------------------------------------------------------------ *)
(* checkpointing (log compaction) *)

let committed_many rm n =
  for i = 1 to n do
    let x = xid i in
    Rm.xa_start rm ~xid:x;
    ignore (Rm.exec rm ~xid:x [ Rm.Put (Printf.sprintf "k%d" i, Value.Int i) ]);
    ignore (Rm.vote rm ~xid:x);
    ignore (Rm.decide rm ~xid:x Rm.Commit)
  done

let test_checkpoint_compacts_log () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      committed_many rm 10;
      Alcotest.(check int) "20 records before" 20 (Rm.log_length rm);
      Rm.checkpoint rm;
      Alcotest.(check int) "1 record after" 1 (Rm.log_length rm);
      Rm.recover rm;
      for i = 1 to 10 do
        Alcotest.(check bool)
          (Printf.sprintf "k%d survives" i)
          true
          (Rm.read_committed rm (Printf.sprintf "k%d" i) = Some (Value.Int i))
      done;
      Alcotest.(check int) "commit history preserved" 10
        (List.length (Rm.committed_xids rm)))

let test_checkpoint_preserves_decided_answers () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let xc = xid 1 and xa = xid 2 in
      Rm.xa_start rm ~xid:xc;
      ignore (Rm.exec rm ~xid:xc [ Rm.Put ("c", Value.Int 1) ]);
      ignore (Rm.vote rm ~xid:xc);
      ignore (Rm.decide rm ~xid:xc Rm.Commit);
      Rm.xa_start rm ~xid:xa;
      ignore (Rm.exec rm ~xid:xa [ Rm.Put ("a", Value.Int 1) ]);
      ignore (Rm.vote rm ~xid:xa);
      ignore (Rm.decide rm ~xid:xa Rm.Abort);
      Rm.checkpoint rm;
      Rm.recover rm;
      (* idempotent re-decides still answer the recorded outcome *)
      Alcotest.(check bool) "re-decide commit" true
        (Rm.decide rm ~xid:xc Rm.Commit = Rm.Commit);
      Alcotest.(check bool) "re-decide abort" true
        (Rm.decide rm ~xid:xa Rm.Abort = Rm.Abort))

let test_checkpoint_keeps_in_doubt () =
  in_sim (fun _ ->
      let rm = fresh_rm () in
      let x = xid 1 in
      Rm.xa_start rm ~xid:x;
      ignore (Rm.exec rm ~xid:x [ Rm.Put ("k", Value.Int 9) ]);
      ignore (Rm.vote rm ~xid:x);
      Rm.checkpoint rm;
      Alcotest.(check int) "snapshot + prepared record" 2 (Rm.log_length rm);
      Rm.recover rm;
      Alcotest.(check (list bool)) "still in doubt" [ true ]
        (List.map (fun x' -> Xid.equal x' x) (Rm.in_doubt rm));
      Alcotest.(check int) "lock re-acquired" 1 (List.length (Rm.locks_held rm));
      Alcotest.(check bool) "late commit still works" true
        (Rm.decide rm ~xid:x Rm.Commit = Rm.Commit);
      Alcotest.(check bool) "write applied" true
        (Rm.read_committed rm "k" = Some (Value.Int 9)))

(* ------------------------------------------------------------------ *)
(* crash-point recovery: the process dies at an arbitrary instant (possibly
   inside a forced write), recovery = checkpoint-load + LSN-ordered replay
   must reproduce exactly the transactions whose decide had returned, and
   exactly the prepared-undecided set as in-doubt. *)

(* Run [script rm] inside an engine process with a 10 ms forced-write
   latency, crash the process at [crash_at], recover it at [recover_at]
   (the recovery run calls [Rm.recover]), and return whether recovery ran
   plus the recovered [rm]. *)
let crash_recovery_scenario ~crash_at ~recover_at ~script () =
  let t = Dsim.Engine.create () in
  let disk = Dstore.Disk.create ~force_latency:10. ~label:"log" () in
  let rm = Rm.create ~timing:Rm.zero_timing ~seed_data:[] ~disk ~name:"db" () in
  let recovered = ref false in
  let pid =
    Dsim.Engine.spawn t ~name:"db" ~main:(fun ~recovery () ->
        if recovery then begin
          Rm.recover rm;
          recovered := true
        end
        else script rm)
  in
  Dsim.Engine.crash_at t crash_at pid;
  Dsim.Engine.recover_at t recover_at pid;
  ignore (Dsim.Engine.run t);
  (!recovered, rm)

(* Crash landing inside the checkpoint's single force: the snapshot record
   is volatile, so the cut drops it and replay falls back to the full log —
   the checkpoint never truncated (truncation runs only after the force
   returns), so nothing is lost. This is exactly the crash window the old
   truncate-then-append order left open. *)
let test_crash_during_checkpoint () =
  (* zero cpu timing: each commit is two 10 ms forces, so 5 commits end at
     t=100 and the checkpoint force spans (100, 110) — crash at 105 *)
  let recovered, rm =
    crash_recovery_scenario ~crash_at:105. ~recover_at:140.
      ~script:(fun rm ->
        committed_many rm 5;
        Rm.checkpoint rm)
      ()
  in
  Alcotest.(check bool) "recovered" true recovered;
  for i = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "k%d survives the aborted checkpoint" i)
      true
      (Rm.read_committed rm (Printf.sprintf "k%d" i) = Some (Value.Int i))
  done;
  (* the snapshot record was cut with the volatile tail: replay walked the
     original 10 records (5 prepared + 5 committed), not a snapshot *)
  Alcotest.(check int) "log back to the pre-checkpoint records" 10
    (Rm.log_length rm);
  Alcotest.(check int) "replay walked the full log" 10 (Rm.recovery_steps rm)

(* Crash after a completed checkpoint: replay is bounded by the snapshot,
   not the full history. *)
let test_checkpoint_bounds_replay () =
  (* 5 commits end at t=100, checkpoint force ends at 110, two more
     commits end at 150; crash at 165 — after everything *)
  let recovered, rm =
    crash_recovery_scenario ~crash_at:165. ~recover_at:180.
      ~script:(fun rm ->
        committed_many rm 5;
        Rm.checkpoint rm;
        for i = 6 to 7 do
          let x = xid i in
          Rm.xa_start rm ~xid:x;
          ignore
            (Rm.exec rm ~xid:x
               [ Rm.Put (Printf.sprintf "k%d" i, Value.Int i) ]);
          ignore (Rm.vote rm ~xid:x);
          ignore (Rm.decide rm ~xid:x Rm.Commit)
        done)
      ()
  in
  Alcotest.(check bool) "recovered" true recovered;
  for i = 1 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "k%d present" i)
      true
      (Rm.read_committed rm (Printf.sprintf "k%d" i) = Some (Value.Int i))
  done;
  (* snapshot + the two post-checkpoint transactions (2 records each) *)
  Alcotest.(check int) "replay bounded by the checkpoint" 5
    (Rm.recovery_steps rm)

(* The property: for ANY interleaving of commits, aborts, in-flight
   prepares and checkpoints, and ANY crash instant, recovery reproduces
   exactly the state of the decides that returned, and exactly the
   prepared-undecided transactions as in-doubt (crash inside a vote's or
   checkpoint's force included — those records are volatile and cut). *)
let prop_crash_point_recovery =
  (* action encoding: (kind mod 4, key mod 5) — 0/1 commit, 2 prepare and
     leave in doubt, 3 checkpoint. Commits dominate so state accumulates. *)
  QCheck.Test.make ~name:"any crash point: replay reproduces committed state"
    ~count:40
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 12)
           (pair (int_bound 3) (int_bound 4)))
        (float_range 1. 400.))
    (fun (actions, crash_at) ->
      let model : (string, Value.t) Hashtbl.t = Hashtbl.create 8 in
      let doubt = ref [] in
      let script rm =
        List.iteri
          (fun i (kind, key) ->
            let x = xid (i + 1) in
            let k = Printf.sprintf "k%d" key in
            Rm.xa_start rm ~xid:x;
            match Rm.exec rm ~xid:x [ Rm.Put (k, Value.Int (i + 1)) ] with
            | Rm.Exec_conflict _ | Rm.Exec_rejected ->
                (* an in-doubt holder owns the lock: the protocol aborts a
                   conflicted try (it never votes on one) *)
                ignore (Rm.decide rm ~xid:x Rm.Abort)
            | Rm.Exec_ok _ -> (
                if kind = 3 then Rm.checkpoint rm;
                match Rm.vote rm ~xid:x with
                | Rm.No -> ()
                | Rm.Yes -> (
                    (* the prepared record is durable from here on *)
                    doubt := x :: !doubt;
                    match kind with
                    | 2 -> () (* leave in doubt *)
                    | _ ->
                        ignore (Rm.decide rm ~xid:x Rm.Commit);
                        doubt := List.filter (fun x' -> not (Xid.equal x' x)) !doubt;
                        Hashtbl.replace model k (Value.Int (i + 1)))))
          actions
      in
      let recovered, rm =
        crash_recovery_scenario ~crash_at ~recover_at:(crash_at +. 500.)
          ~script ()
      in
      let state_matches () =
        List.for_all
          (fun key ->
            let k = Printf.sprintf "k%d" key in
            Rm.read_committed rm k = Hashtbl.find_opt model k)
          [ 0; 1; 2; 3; 4 ]
      in
      let doubt_matches () =
        let rids xs =
          List.sort compare (List.map (fun x -> x.Xid.rid) xs)
        in
        rids (Rm.in_doubt rm) = rids !doubt
      in
      recovered
      && state_matches ()
      && doubt_matches ()
      &&
      (* recovery is idempotent *)
      (Rm.recover rm;
       state_matches () && doubt_matches ()))

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_commit_applies_all_writes =
  QCheck.Test.make ~name:"commit applies exactly the workspace" ~count:100
    QCheck.(list (pair (string_gen_of_size (Gen.return 3) Gen.printable) small_int))
    (fun writes ->
      in_sim (fun _ ->
          let rm = fresh_rm () in
          let x = xid 1 in
          Rm.xa_start rm ~xid:x;
          ignore
            (Rm.exec rm ~xid:x
               (List.map (fun (k, v) -> Rm.Put ("w" ^ k, Value.Int v)) writes));
          ignore (Rm.vote rm ~xid:x);
          ignore (Rm.decide rm ~xid:x Rm.Commit);
          List.for_all
            (fun (k, _) ->
              (* last write to each key wins *)
              let expected =
                List.fold_left
                  (fun acc (k', v') -> if k' = k then Some v' else acc)
                  None writes
              in
              match (Rm.read_committed rm ("w" ^ k), expected) with
              | Some (Value.Int v), Some v' -> v = v'
              | None, None -> true
              | _ -> false)
            writes))

let prop_abort_applies_nothing =
  QCheck.Test.make ~name:"abort leaves the store untouched" ~count:100
    QCheck.(list (pair (string_gen_of_size (Gen.return 3) Gen.printable) small_int))
    (fun writes ->
      in_sim (fun _ ->
          let rm = fresh_rm ~seed_data:[ ("seed", Value.Int 1) ] () in
          let x = xid 1 in
          Rm.xa_start rm ~xid:x;
          ignore
            (Rm.exec rm ~xid:x
               (List.map (fun (k, v) -> Rm.Put ("w" ^ k, Value.Int v)) writes));
          ignore (Rm.vote rm ~xid:x);
          ignore (Rm.decide rm ~xid:x Rm.Abort);
          List.for_all
            (fun (k, _) -> Rm.read_committed rm ("w" ^ k) = None)
            writes
          && Rm.read_committed rm "seed" = Some (Value.Int 1)))

let prop_recovery_preserves_committed_state =
  QCheck.Test.make ~name:"recovery reconstructs committed state" ~count:50
    QCheck.(list (pair (int_bound 5) small_int))
    (fun txns ->
      in_sim (fun _ ->
          let rm = fresh_rm () in
          List.iteri
            (fun i (key_index, v) ->
              let x = xid (i + 1) in
              Rm.xa_start rm ~xid:x;
              ignore
                (Rm.exec rm ~xid:x
                   [ Rm.Put (Printf.sprintf "k%d" key_index, Value.Int v) ]);
              ignore (Rm.vote rm ~xid:x);
              ignore (Rm.decide rm ~xid:x Rm.Commit))
            txns;
          let before =
            List.init 6 (fun i -> Rm.read_committed rm (Printf.sprintf "k%d" i))
          in
          Rm.recover rm;
          let after =
            List.init 6 (fun i -> Rm.read_committed rm (Printf.sprintf "k%d" i))
          in
          before = after))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dbms"
    [
      ( "exec",
        [
          Alcotest.test_case "put/get" `Quick test_exec_put_get;
          Alcotest.test_case "add" `Quick test_exec_add_semantics;
          Alcotest.test_case "guards" `Quick test_exec_guard_pass_and_fail;
          Alcotest.test_case "redelivery dedup (regression)" `Quick
            test_exec_dedup_replays_duplicates;
          Alcotest.test_case "dedup rejects unknown" `Quick
            test_exec_dedup_unknown_rejected;
          Alcotest.test_case "fail op" `Quick test_exec_fail_op_poisons;
          Alcotest.test_case "type mismatch" `Quick
            test_exec_type_mismatch_poisons;
          Alcotest.test_case "requires xa_start" `Quick
            test_exec_requires_xa_start;
          Alcotest.test_case "rejected after prepare" `Quick
            test_exec_after_prepare_rejected;
        ] );
      ( "locks",
        [
          Alcotest.test_case "conflict" `Quick test_lock_conflict;
          Alcotest.test_case "atomic acquisition" `Quick
            test_conflict_has_no_side_effect;
          Alcotest.test_case "released on commit" `Quick
            test_locks_released_on_decide;
          Alcotest.test_case "released on abort" `Quick
            test_locks_released_on_abort;
        ] );
      ( "vote-decide",
        [
          Alcotest.test_case "unknown votes no" `Quick test_vote_unknown_is_no;
          Alcotest.test_case "vote idempotent" `Quick test_vote_idempotent;
          Alcotest.test_case "rule (a)" `Quick
            test_decide_rule_a_abort_in_abort_out;
          Alcotest.test_case "rule (b)" `Quick test_decide_rule_b_yes_commit;
          Alcotest.test_case "commit w/o prepare aborts" `Quick
            test_decide_commit_without_prepare_aborts;
          Alcotest.test_case "idempotent + sticky" `Quick
            test_decide_idempotent_and_sticky;
          Alcotest.test_case "unknown abort recorded" `Quick
            test_decide_unknown_abort_recorded;
          Alcotest.test_case "one-phase commit" `Quick test_commit_one_phase;
          Alcotest.test_case "vote/decide race (regression)" `Quick
            test_vote_decide_race;
          Alcotest.test_case "group commit: concurrent sessions" `Quick
            test_group_commit_concurrent_sessions;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "committed survive, active lost" `Quick
            test_recovery_committed_survive_active_lost;
          Alcotest.test_case "in-doubt keeps locks" `Quick
            test_recovery_in_doubt_keeps_locks;
          Alcotest.test_case "aborted stays aborted" `Quick
            test_recovery_aborted_stays_aborted;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent;
        ] );
      ( "strict-2pl",
        [
          Alcotest.test_case "readers share" `Quick test_2pl_readers_share;
          Alcotest.test_case "writer excludes reader" `Quick
            test_2pl_writer_excludes_reader;
          Alcotest.test_case "reader excludes writer" `Quick
            test_2pl_reader_excludes_writer;
          Alcotest.test_case "upgrade rules" `Quick test_2pl_upgrade;
          Alcotest.test_case "shared released on abort" `Quick
            test_2pl_shared_released_on_abort;
          Alcotest.test_case "default: reads lock-free" `Quick
            test_default_mode_reads_lock_free;
        ] );
      ( "server",
        [
          Alcotest.test_case "full commit round" `Quick
            test_server_full_commit_round;
          Alcotest.test_case "independent handler fibers" `Quick
            test_server_concurrent_decide_during_prepare_queue;
          Alcotest.test_case "Ready on recovery" `Quick
            test_server_ready_on_recovery;
          Alcotest.test_case "in-doubt across crash" `Quick
            test_server_in_doubt_across_crash;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "crash during checkpoint" `Quick
            test_crash_during_checkpoint;
          Alcotest.test_case "checkpoint bounds replay" `Quick
            test_checkpoint_bounds_replay;
          QCheck_alcotest.to_alcotest prop_crash_point_recovery;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "compacts the log" `Quick
            test_checkpoint_compacts_log;
          Alcotest.test_case "preserves decided answers" `Quick
            test_checkpoint_preserves_decided_answers;
          Alcotest.test_case "keeps in-doubt recoverable" `Quick
            test_checkpoint_keeps_in_doubt;
        ] );
      ( "properties",
        [
          q prop_commit_applies_all_writes;
          q prop_abort_applies_nothing;
          q prop_recovery_preserves_committed_state;
        ] );
    ]
