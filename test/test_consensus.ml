(* Tests for the consensus agent and write-once registers. *)

open Dsim
open Runtime
open Dnet

type Types.payload += V of int

let int_of_v = function V n -> n | _ -> Alcotest.fail "expected V payload"

(* Build [n] member processes (pids 0..n-1, spawned first so pids are
   known). Each runs [behave i agent] after starting its stack. Returns a
   record of observations per member. *)
let members_scenario ?(seed = 1) ?(net = Netmodel.lan ()) ?(oracle_fd = true)
    ~n ~behave () =
  let t = Engine.create ~seed ~net () in
  let rt = Runtime_sim.of_engine t in
  let peers = List.init n (fun i -> i) in
  let spawn_member i =
    let pid =
      Engine.spawn t ~name:(Printf.sprintf "a%d" (i + 1))
        ~main:(fun ~recovery:_ () ->
          let ch = Rchannel.create () in
          Rchannel.start ch;
          let fd =
            if oracle_fd then Fdetect.oracle rt
            else Fdetect.heartbeat ~peers ()
          in
          Fdetect.start fd;
          let agent = Consensus.Agent.create ~peers ~fd ~ch () in
          Consensus.Agent.start agent;
          behave i agent)
    in
    assert (pid = i)
  in
  List.iter spawn_member peers;
  t

let test_single_proposer_decides () =
  let decisions = Array.make 3 None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then
          decisions.(i) <- Some (Consensus.Agent.propose agent ~key:"k" (V 7))
        else begin
          (* learn passively *)
          Engine.sleep 500.;
          decisions.(i) <- Consensus.Agent.peek agent ~key:"k"
        end)
      ()
  in
  ignore (Engine.run ~deadline:2_000. t);
  Array.iteri
    (fun i d ->
      match d with
      | Some v -> Alcotest.(check int) (Printf.sprintf "member %d" i) 7 (int_of_v v)
      | None -> Alcotest.fail (Printf.sprintf "member %d undecided" i))
    decisions

let test_concurrent_proposers_agree () =
  let decisions = Array.make 3 None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        decisions.(i) <-
          Some (Consensus.Agent.propose agent ~key:"k" (V (100 + i))))
      ()
  in
  ignore (Engine.run ~deadline:5_000. t);
  let values = Array.to_list decisions |> List.filter_map Fun.id |> List.map int_of_v in
  Alcotest.(check int) "all decided" 3 (List.length values);
  (match values with
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) "agreement" v v') rest;
      Alcotest.(check bool) "validity" true (List.mem v [ 100; 101; 102 ])
  | [] -> Alcotest.fail "no decisions")

let test_decision_survives_coordinator_crash_after_decide () =
  (* a1 (round-0 coordinator) proposes and decides, then crashes; others
     must still learn the decision (reliable broadcast / forwarding). *)
  let decisions = Array.make 3 None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then begin
          decisions.(i) <- Some (Consensus.Agent.propose agent ~key:"k" (V 1))
        end
        else begin
          Engine.sleep 1_000.;
          decisions.(i) <- Consensus.Agent.peek agent ~key:"k"
        end)
      ()
  in
  Engine.crash_at t 50. 0;
  ignore (Engine.run ~deadline:3_000. t);
  (match decisions.(1) with
  | Some v -> Alcotest.(check int) "a2 learned" 1 (int_of_v v)
  | None -> Alcotest.fail "a2 undecided");
  match decisions.(2) with
  | Some v -> Alcotest.(check int) "a3 learned" 1 (int_of_v v)
  | None -> Alcotest.fail "a3 undecided"

let test_crashed_initial_coordinator_rotation () =
  (* a1 crashes immediately; a2 proposes; rotation must reach a decision. *)
  let decisions = Array.make 3 None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 1 then begin
          Engine.sleep 20.;
          decisions.(i) <- Some (Consensus.Agent.propose agent ~key:"k" (V 42))
        end
        else Engine.sleep infinity)
      ()
  in
  Engine.crash_at t 1. 0;
  let decided = Engine.run_until ~deadline:10_000. t (fun () -> decisions.(1) <> None) in
  Alcotest.(check bool) "decided despite crashed coordinator" true decided;
  match decisions.(1) with
  | Some v -> Alcotest.(check int) "a2's value" 42 (int_of_v v)
  | None -> Alcotest.fail "undecided"

let test_latency_one_round_trip_for_primary () =
  (* Nice run: primary write completes in about one LAN round trip (the
     paper's 4-5 ms claim), well under two round trips. *)
  let elapsed = ref infinity in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then begin
          let t0 = Engine.now () in
          ignore (Consensus.Agent.propose agent ~key:"k" (V 7));
          elapsed := Engine.now () -. t0
        end)
      ()
  in
  ignore (Engine.run ~deadline:1_000. t);
  Alcotest.(check bool)
    (Printf.sprintf "one round trip (got %.2f ms)" !elapsed)
    true
    (!elapsed < 7.0)

let test_five_members_minority_crash () =
  let decisions = Array.make 5 None in
  let t =
    members_scenario ~n:5
      ~behave:(fun i agent ->
        if i >= 2 then begin
          Engine.sleep 10.;
          decisions.(i) <-
            Some (Consensus.Agent.propose agent ~key:"k" (V i))
        end
        else Engine.sleep infinity)
      ()
  in
  Engine.crash_at t 1. 0;
  Engine.crash_at t 1. 1;
  let all_decided () = decisions.(2) <> None && decisions.(3) <> None && decisions.(4) <> None in
  let ok = Engine.run_until ~deadline:20_000. t all_decided in
  Alcotest.(check bool) "all correct decided" true ok;
  let values = Array.to_list decisions |> List.filter_map Fun.id |> List.map int_of_v in
  match values with
  | v :: rest -> List.iter (fun v' -> Alcotest.(check int) "agreement" v v') rest
  | [] -> Alcotest.fail "no decisions"

(* ------------------------------------------------------------------ *)
(* Write-once registers *)

let test_woreg_write_once () =
  let results = Array.make 3 None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        let reg = Consensus.Woreg.array agent ~name:"regA:r0" in
        results.(i) <- Some (Consensus.Woreg.write reg ~j:1 (V i)))
      ()
  in
  ignore (Engine.run ~deadline:5_000. t);
  let values = Array.to_list results |> List.filter_map Fun.id |> List.map int_of_v in
  Alcotest.(check int) "all writes returned" 3 (List.length values);
  match values with
  | v :: rest -> List.iter (fun v' -> Alcotest.(check int) "single written value" v v') rest
  | [] -> Alcotest.fail "no writes"

let test_woreg_read_bottom_then_value () =
  let before = ref (Some (V 999)) in
  let after = ref None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        let reg = Consensus.Woreg.array agent ~name:"regD:r0" in
        if i = 1 then begin
          before := Consensus.Woreg.read reg ~j:1;
          Engine.sleep 200.;
          after := Consensus.Woreg.read reg ~j:1
        end
        else if i = 0 then begin
          Engine.sleep 10.;
          ignore (Consensus.Woreg.write reg ~j:1 (V 5))
        end)
      ()
  in
  ignore (Engine.run ~deadline:2_000. t);
  Alcotest.(check bool) "⊥ before any write" true (!before = None);
  match !after with
  | Some v -> Alcotest.(check int) "value after write" 5 (int_of_v v)
  | None -> Alcotest.fail "read still ⊥ after write"

let test_woreg_distinct_indices_independent () =
  let r1 = ref None and r2 = ref None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        let reg = Consensus.Woreg.array agent ~name:"regA:r1" in
        if i = 0 then r1 := Some (Consensus.Woreg.write reg ~j:1 (V 10))
        else if i = 1 then r2 := Some (Consensus.Woreg.write reg ~j:2 (V 20)))
      ()
  in
  ignore (Engine.run ~deadline:5_000. t);
  Alcotest.(check bool) "j=1 got 10" true
    (match !r1 with Some v -> int_of_v v = 10 | None -> false);
  Alcotest.(check bool) "j=2 got 20" true
    (match !r2 with Some v -> int_of_v v = 20 | None -> false)

let test_woreg_distinct_arrays_independent () =
  let ra = ref None and rd = ref None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then begin
          let a = Consensus.Woreg.array agent ~name:"regA:r2" in
          let d = Consensus.Woreg.array agent ~name:"regD:r2" in
          ra := Some (Consensus.Woreg.write a ~j:1 (V 1));
          rd := Some (Consensus.Woreg.write d ~j:1 (V 2))
        end)
      ()
  in
  ignore (Engine.run ~deadline:5_000. t);
  Alcotest.(check bool) "regA independent" true
    (match !ra with Some v -> int_of_v v = 1 | None -> false);
  Alcotest.(check bool) "regD independent" true
    (match !rd with Some v -> int_of_v v = 2 | None -> false)

(* ------------------------------------------------------------------ *)
(* The Synod (Paxos) register backend *)

let synod_scenario ?(seed = 1) ?(net = Netmodel.lan ()) ~n ~behave () =
  let t = Engine.create ~seed ~net () in
  let peers = List.init n (fun i -> i) in
  List.iteri
    (fun i _ ->
      let pid =
        Engine.spawn t ~name:(Printf.sprintf "s%d" (i + 1))
          ~main:(fun ~recovery:_ () ->
            let ch = Rchannel.create () in
            Rchannel.start ch;
            let synod = Consensus.Synod.create ~peers ~ch () in
            Consensus.Synod.start synod;
            behave i synod)
      in
      assert (pid = i))
    peers;
  t

let test_synod_primary_fast_path () =
  let elapsed = ref infinity in
  let decided = Array.make 3 None in
  let t =
    synod_scenario ~n:3
      ~behave:(fun i synod ->
        if i = 0 then begin
          let t0 = Engine.now () in
          decided.(i) <- Some (Consensus.Synod.propose synod ~key:"k" (V 7));
          elapsed := Engine.now () -. t0
        end
        else begin
          Engine.sleep 300.;
          decided.(i) <- Consensus.Synod.peek synod ~key:"k"
        end)
      ()
  in
  ignore (Engine.run ~deadline:2_000. t);
  Array.iteri
    (fun i d ->
      match d with
      | Some v -> Alcotest.(check int) (Printf.sprintf "s%d learned" i) 7 (int_of_v v)
      | None -> Alcotest.failf "s%d undecided" i)
    decided;
  Alcotest.(check bool)
    (Printf.sprintf "ballot-0 fast path: one round trip (%.2f ms)" !elapsed)
    true (!elapsed < 7.

)

let test_synod_backup_writes_without_fd_wait () =
  (* The primary is dead; a backup proposer needs both phases but NO
     failure-detection wait: decision in a few round trips. *)
  let elapsed = ref infinity in
  let t =
    synod_scenario ~n:3
      ~behave:(fun i synod ->
        if i = 1 then begin
          Engine.sleep 10.;
          let t0 = Engine.now () in
          ignore (Consensus.Synod.propose synod ~key:"k" (V 42));
          elapsed := Engine.now () -. t0
        end)
      ()
  in
  Engine.crash_at t 1. 0;
  let ok = Engine.run_until ~deadline:10_000. t (fun () -> !elapsed < infinity) in
  Alcotest.(check bool) "decided" true ok;
  Alcotest.(check bool)
    (Printf.sprintf "two phases, no detector wait (%.2f ms)" !elapsed)
    true (!elapsed < 15.)

let test_synod_concurrent_writers_write_once () =
  let results = Array.make 3 None in
  let t =
    synod_scenario ~n:3
      ~behave:(fun i synod ->
        results.(i) <- Some (Consensus.Synod.propose synod ~key:"k" (V (100 + i))))
      ()
  in
  ignore (Engine.run ~deadline:30_000. t);
  let values = Array.to_list results |> List.filter_map Fun.id |> List.map int_of_v in
  Alcotest.(check int) "all returned" 3 (List.length values);
  match values with
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) "write-once" v v') rest;
      Alcotest.(check bool) "validity" true (List.mem v [ 100; 101; 102 ])
  | [] -> Alcotest.fail "no values"

let test_synod_majority_crash_blocks () =
  let decided = ref false in
  let t =
    synod_scenario ~n:3
      ~behave:(fun i synod ->
        if i = 2 then begin
          Engine.sleep 20.;
          ignore (Consensus.Synod.propose synod ~key:"k" (V 1));
          decided := true
        end)
      ()
  in
  Engine.crash_at t 1. 0;
  Engine.crash_at t 1. 1;
  ignore (Engine.run ~deadline:3_000. t);
  Alcotest.(check bool) "no quorum, no decision" false !decided

let test_synod_adopts_partially_accepted_value () =
  (* The Paxos safety crux: proposer s1 (ballot 0) gets its value accepted
     at ONE acceptor (s3) and crashes; the link s1→s2 is cut so s2 never
     saw it. When s2 later proposes its own value, its phase-1 quorum must
     include s3, discover the ballot-0 acceptance, and adopt s1's value —
     even though s1 never finished. *)
  let net _rng ~src ~dst =
    if src = 0 && dst = 1 then [] (* s1 -> s2 cut *) else [ 2.0 ]
  in
  let result = ref None in
  let t =
    synod_scenario ~net ~n:3
      ~behave:(fun i synod ->
        if i = 0 then begin
          Engine.sleep 5.;
          ignore (Consensus.Synod.propose synod ~key:"k" (V 111))
        end
        else if i = 1 then begin
          Engine.sleep 100.;
          result := Some (Consensus.Synod.propose synod ~key:"k" (V 222))
        end)
      ()
  in
  (* s1 crashes just after its accepts left, before any reply came back *)
  Engine.crash_at t 6. 0;
  let ok = Engine.run_until ~deadline:30_000. t (fun () -> !result <> None) in
  Alcotest.(check bool) "decided" true ok;
  match !result with
  | Some v ->
      Alcotest.(check int) "the dead proposer's value was adopted" 111
        (int_of_v v)
  | None -> Alcotest.fail "no decision"

let prop_synod_agreement_under_faults =
  QCheck.Test.make ~name:"synod agreement under loss and a crash" ~count:30
    QCheck.(triple (int_range 0 100_000) (float_range 0. 0.2) (int_range 0 2))
    (fun (seed, loss, victim) ->
      let n = 3 in
      let results = Array.make n None in
      let net = Netmodel.lossy ~loss (Netmodel.lan ()) in
      let t =
        synod_scenario ~seed ~net ~n
          ~behave:(fun i synod ->
            results.(i) <-
              Some (Consensus.Synod.propose synod ~key:"k" (V (100 + i))))
          ()
      in
      Engine.crash_at t (float_of_int (seed mod 13)) victim;
      let correct = List.filter (fun i -> i <> victim) [ 0; 1; 2 ] in
      let all_done () = List.for_all (fun i -> results.(i) <> None) correct in
      Engine.run_until ~deadline:120_000. t all_done
      &&
      let values =
        List.filter_map (fun i -> results.(i)) correct |> List.map int_of_v
      in
      match values with
      | v :: rest -> List.for_all (( = ) v) rest && List.mem v [ 100; 101; 102 ]
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* garbage collection *)

let test_forget_and_collect () =
  let counts = ref (-1, -1, -1) in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then begin
          ignore (Consensus.Agent.propose agent ~key:"a" (V 1));
          ignore (Consensus.Agent.propose agent ~key:"b" (V 2));
          Engine.sleep 100.;
          let before = Consensus.Agent.instance_count agent in
          Consensus.Agent.forget agent ~key:"a";
          let mid = Consensus.Agent.instance_count agent in
          let swept =
            Consensus.Agent.collect agent ~older_than:(Engine.now ())
          in
          ignore swept;
          counts := (before, mid, Consensus.Agent.instance_count agent)
        end)
      ()
  in
  ignore (Engine.run ~deadline:2_000. t);
  let before, mid, after = !counts in
  Alcotest.(check int) "two instances" 2 before;
  Alcotest.(check int) "one after forget" 1 mid;
  Alcotest.(check int) "none after collect" 0 after

let test_collect_respects_age () =
  let result = ref (-1) in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then begin
          ignore (Consensus.Agent.propose agent ~key:"old" (V 1));
          Engine.sleep 500.;
          ignore (Consensus.Agent.propose agent ~key:"young" (V 2));
          (* collect only what was decided more than 100 ms ago *)
          let _ =
            Consensus.Agent.collect agent
              ~older_than:(Engine.now () -. 100.)
          in
          result := Consensus.Agent.instance_count agent
        end)
      ()
  in
  ignore (Engine.run ~deadline:5_000. t);
  Alcotest.(check int) "young instance kept" 1 !result

let test_latecomer_gets_decide_after_driver_exit () =
  (* A server that asks about an instance long after it was decided (and
     its driver exited) must still learn the decision — the dispatcher's
     decided-instance service. *)
  let late = ref None in
  let t =
    members_scenario ~n:3
      ~behave:(fun i agent ->
        if i = 0 then ignore (Consensus.Agent.propose agent ~key:"k" (V 9))
        else if i = 1 then begin
          (* forget locally, then re-propose: the fresh driver's messages
             hit peers whose drivers are long gone *)
          Engine.sleep 300.;
          Consensus.Agent.collect agent ~older_than:(Engine.now ()) |> ignore;
          late := Some (Consensus.Agent.propose agent ~key:"k" (V 42))
        end)
      ()
  in
  ignore (Engine.run ~deadline:10_000. t);
  match !late with
  | Some v ->
      (* the old decision wins: peers answer C_decide from their memory *)
      Alcotest.(check int) "old decision returned" 9 (int_of_v v)
  | None -> Alcotest.fail "late proposer got nothing"

(* ------------------------------------------------------------------ *)
(* Properties under random loss, delay, crashes and real failure
   detectors. *)

let prop_agreement_under_faults =
  QCheck.Test.make ~name:"consensus agreement+validity under faults" ~count:40
    QCheck.(
      triple (int_range 0 100_000) (float_range 0. 0.2) (int_range 0 2))
    (fun (seed, loss, crash_member) ->
      let n = 3 in
      let decisions = Array.make n None in
      let net = Netmodel.lossy ~loss (Netmodel.lan ()) in
      let t =
        members_scenario ~seed ~net ~oracle_fd:false ~n
          ~behave:(fun i agent ->
            decisions.(i) <-
              Some (Consensus.Agent.propose agent ~key:"k" (V (100 + i))))
          ()
      in
      (* crash one member (a minority) at a random-ish time *)
      Engine.crash_at t (float_of_int (seed mod 17)) crash_member;
      let correct = List.filter (fun i -> i <> crash_member) [ 0; 1; 2 ] in
      let all_correct_decided () =
        List.for_all (fun i -> decisions.(i) <> None) correct
      in
      let ok = Engine.run_until ~deadline:60_000. t all_correct_decided in
      (* termination for correct members *)
      ok
      &&
      (* agreement + validity among those decided *)
      let values =
        List.filter_map (fun i -> decisions.(i)) correct |> List.map int_of_v
      in
      match values with
      | [] -> false
      | v :: rest ->
          List.for_all (( = ) v) rest && List.mem v [ 100; 101; 102 ])

let prop_write_once_under_concurrency =
  QCheck.Test.make ~name:"wo-register write-once under concurrent writers"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let n = 3 in
      let results = Array.make n None in
      let t =
        members_scenario ~seed ~n
          ~behave:(fun i agent ->
            let reg = Consensus.Woreg.array agent ~name:"reg" in
            Engine.sleep (float_of_int (seed mod (i + 2)));
            results.(i) <- Some (Consensus.Woreg.write reg ~j:7 (V i)))
          ()
      in
      ignore (Engine.run ~deadline:30_000. t);
      let values =
        Array.to_list results |> List.filter_map Fun.id |> List.map int_of_v
      in
      List.length values = n
      && match values with v :: rest -> List.for_all (( = ) v) rest | [] -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "consensus"
    [
      ( "agent",
        [
          Alcotest.test_case "single proposer" `Quick
            test_single_proposer_decides;
          Alcotest.test_case "concurrent proposers agree" `Quick
            test_concurrent_proposers_agree;
          Alcotest.test_case "decision survives crash" `Quick
            test_decision_survives_coordinator_crash_after_decide;
          Alcotest.test_case "coordinator rotation" `Quick
            test_crashed_initial_coordinator_rotation;
          Alcotest.test_case "primary writes in one round trip" `Quick
            test_latency_one_round_trip_for_primary;
          Alcotest.test_case "five members, minority crash" `Quick
            test_five_members_minority_crash;
          q prop_agreement_under_faults;
        ] );
      ( "woreg",
        [
          Alcotest.test_case "write-once" `Quick test_woreg_write_once;
          Alcotest.test_case "read ⊥ then value" `Quick
            test_woreg_read_bottom_then_value;
          Alcotest.test_case "indices independent" `Quick
            test_woreg_distinct_indices_independent;
          Alcotest.test_case "arrays independent" `Quick
            test_woreg_distinct_arrays_independent;
          q prop_write_once_under_concurrency;
        ] );
      ( "synod",
        [
          Alcotest.test_case "primary fast path" `Quick
            test_synod_primary_fast_path;
          Alcotest.test_case "backup writes without fd wait" `Quick
            test_synod_backup_writes_without_fd_wait;
          Alcotest.test_case "concurrent writers, write-once" `Quick
            test_synod_concurrent_writers_write_once;
          Alcotest.test_case "majority crash blocks" `Quick
            test_synod_majority_crash_blocks;
          Alcotest.test_case "adopts partially-accepted value" `Quick
            test_synod_adopts_partially_accepted_value;
          q prop_synod_agreement_under_faults;
        ] );
      ( "gc",
        [
          Alcotest.test_case "forget and collect" `Quick
            test_forget_and_collect;
          Alcotest.test_case "collect respects age" `Quick
            test_collect_respects_age;
          Alcotest.test_case "latecomer after local GC" `Quick
            test_latecomer_gets_decide_after_driver_exit;
        ] );
    ]
