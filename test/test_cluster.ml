(* Sharded-cluster tests: shard-map placement, single-shard equivalence
   with the plain deployment, multi-client routing across shards, and the
   cluster-level specification under random fault schedules. *)

open Etx

(* ------------------------------------------------------------------ *)
(* Shard map *)

let test_shard_map_determinism () =
  let m = Shard_map.create ~shards:4 () in
  List.iter
    (fun k ->
      let s = Shard_map.shard_of m k in
      Alcotest.(check int) ("stable placement of " ^ k) s (Shard_map.shard_of m k);
      Alcotest.(check bool) "in range" true (s >= 0 && s < 4))
    [ "acct0"; "acct1"; "x"; ""; "a:long:key" ];
  (* a single shard owns everything *)
  let one = Shard_map.create ~shards:1 () in
  Alcotest.(check int) "one shard" 0 (Shard_map.shard_of one "anything")

let test_shard_map_range_policy () =
  let m = Shard_map.create ~policy:(Shard_map.Range [ "g"; "p" ]) ~shards:3 () in
  Alcotest.(check int) "below first bound" 0 (Shard_map.shard_of m "acct");
  Alcotest.(check int) "between bounds" 1 (Shard_map.shard_of m "horse");
  Alcotest.(check int) "at a bound goes right" 1 (Shard_map.shard_of m "g");
  Alcotest.(check int) "above last bound" 2 (Shard_map.shard_of m "zebra")

let test_shard_map_validation () =
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Shard_map.create: shards must be >= 1") (fun () ->
      ignore (Shard_map.create ~shards:0 ()));
  Alcotest.check_raises "range bounds must match shard count"
    (Invalid_argument
       "Shard_map.create: a Range policy needs exactly shards-1 boundaries")
    (fun () ->
      ignore (Shard_map.create ~policy:(Shard_map.Range [ "a" ]) ~shards:3 ()));
  Alcotest.check_raises "range bounds must be sorted"
    (Invalid_argument "Shard_map.create: Range boundaries must be strictly sorted")
    (fun () ->
      ignore (Shard_map.create ~policy:(Shard_map.Range [ "p"; "g" ]) ~shards:3 ()))

let test_routing_key () =
  Alcotest.(check string) "key before colon" "acct7"
    (Etx_types.routing_key "acct7:25");
  Alcotest.(check string) "whole body when unkeyed" "ping"
    (Etx_types.routing_key "ping")

(* ------------------------------------------------------------------ *)
(* Single-shard equivalence: a 1-shard cluster is the plain deployment.
   Same seed, same workload — the client must observe byte-identical
   records (same rids, results, try counts and timestamps). *)

let test_single_shard_equivalence () =
  let seed = 7 in
  let seed_data = Workload.Bank.seed_accounts [ ("acct0", 1000) ] in
  let script ~issue =
    for _ = 1 to 3 do
      ignore (issue "acct0:5")
    done
  in
  let _e, d =
    Harness.Simrun.deployment ~seed ~seed_data ~business:Workload.Bank.update
      ~script ()
  in
  assert (Deployment.run_to_quiescence ~deadline:60_000. d);
  let _e, c =
    Harness.Simrun.cluster ~seed ~shards:1 ~seed_data
      ~business:Workload.Bank.update ~scripts:[ script ] ()
  in
  assert (Cluster.run_to_quiescence ~deadline:60_000. c);
  let base = Client.records d.client and shard = Cluster.all_records c in
  Alcotest.(check int) "same count" (List.length base) (List.length shard);
  List.iter2
    (fun (a : Client.record) b ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical" a.rid)
        true (a = b))
    base shard;
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c)

(* ------------------------------------------------------------------ *)
(* Multi-shard routing: every request lands on (and only on) its key's
   home shard, and throughput-relevant state never leaks across groups. *)

let test_two_shards_route_by_key () =
  let map = Shard_map.create ~shards:2 () in
  (* two keys per shard, one client per key *)
  let keys =
    let rec scan a acc = function
      | 0 -> List.rev acc
      | n ->
          let k = Printf.sprintf "acct%d" a in
          let wanted =
            List.length (List.filter (fun k' -> Shard_map.shard_of map k' = Shard_map.shard_of map k) acc)
            < 2
          in
          if wanted then scan (a + 1) (k :: acc) (n - 1) else scan (a + 1) acc n
    in
    scan 0 [] 4
  in
  let seed_data = Workload.Bank.seed_accounts (List.map (fun k -> (k, 100)) keys) in
  let scripts =
    List.map
      (fun k ~issue ->
        ignore (issue (k ^ ":1"));
        ignore (issue (k ^ ":2")))
      keys
  in
  let _e, c =
    Harness.Simrun.cluster ~seed:11 ~map ~seed_data
      ~business:Workload.Bank.update ~scripts ()
  in
  Alcotest.(check bool) "quiesced" true (Cluster.run_to_quiescence ~deadline:120_000. c);
  Alcotest.(check int) "all delivered" 8 (List.length (Cluster.all_records c));
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c);
  (* each key's final balance is on its home shard, absent elsewhere *)
  List.iter
    (fun k ->
      let home = Cluster.shard_of_key c k in
      Array.iteri
        (fun s (g : Cluster.group) ->
          List.iter
            (fun (dbpid, rm) ->
              match (Dbms.Rm.read_committed rm k, s = home) with
              | Some (Dbms.Value.Int 103), true -> ()
              | None, false -> ()
              | v, _ ->
                  Alcotest.failf "key %s on shard %d (db p%d): %s" k s dbpid
                    (match v with
                    | Some x -> Dbms.Value.to_string x
                    | None -> "missing"))
            g.dbs)
        c.groups)
    keys

(* a request whose group stamp does not match the receiving server is
   dropped, not executed: point a client's router at the wrong shard and
   the request must never commit there *)
let test_misrouted_request_dropped () =
  let _e, c =
    Harness.Simrun.cluster ~seed:3 ~shards:2 ~business:Business.trivial
      ~scripts:[ (fun ~issue -> ignore (issue "x")) ]
      ()
  in
  let rt = c.rt in
  let home = Cluster.shard_of_key c "y" in
  let wrong = 1 - home in
  let wrong_servers = (Cluster.group c wrong).app_servers in
  (* group stamp says home, wire target is the other shard's servers *)
  let _bad =
    Client.spawn rt ~name:"confused"
      ~router:(fun _ -> (home, wrong_servers))
      ~servers:wrong_servers
      ~script:(fun ~issue -> ignore (issue "y"))
      ()
  in
  (* the well-routed client finishes; the misrouted one spins forever *)
  Alcotest.(check bool) "healthy client quiesces" true
    (rt.run_until ~deadline:30_000. (fun () ->
         List.for_all Client.script_done c.clients));
  Alcotest.(check bool) "misrouted request never delivered" false
    (rt.run_until ~deadline:30_000. (fun () -> Client.script_done _bad));
  (* and the wrong shard's servers noted the drop *)
  let drops =
    List.filter
      (fun (_, note) ->
        String.length note >= 9 && String.sub note 0 9 = "misrouted")
      (rt.notes ())
  in
  Alcotest.(check bool) "servers logged the misroute" true (drops <> [])

(* the drop is not silent: the wrong shard's server answers with an
   explicit bounce Nack, which the client counts and reacts to by fanning
   out immediately instead of waiting out its resend timer *)
let test_misrouted_request_bounced () =
  let reg = Obs.Registry.create () in
  let _e, c =
    Harness.Simrun.cluster ~seed:3 ~shards:2 ~obs:reg ~business:Business.trivial
      ~scripts:[ (fun ~issue -> ignore (issue "x")) ]
      ()
  in
  let rt = c.rt in
  let home = Cluster.shard_of_key c "y" in
  let wrong = 1 - home in
  let wrong_servers = (Cluster.group c wrong).app_servers in
  let bad =
    Client.spawn rt ~name:"confused"
      ~router:(fun _ -> (home, wrong_servers))
      ~servers:wrong_servers
      ~script:(fun ~issue -> ignore (issue "y"))
      ()
  in
  Alcotest.(check bool) "healthy client quiesces" true
    (rt.run_until ~deadline:30_000. (fun () ->
         List.for_all Client.script_done c.clients));
  Alcotest.(check bool) "misrouted request never delivered" false
    (rt.run_until ~deadline:30_000. (fun () -> Client.script_done bad));
  Alcotest.(check bool) "bounce Nacks reached the client" true
    (Obs.Registry.counter_total reg "client.bounced" > 0);
  Alcotest.(check int) "nothing committed for the misroute" 0
    (Obs.Registry.counter_total reg "client.committed"
    - List.length (Cluster.all_records c))

(* ------------------------------------------------------------------ *)
(* Random fault injection over a 2-shard, 4-client cluster: message loss,
   an imperfect failure detector, and an application-server crash on a
   random shard. Per-shard A.1–A.3 / V.1–V.2 / T.2 plus the global
   exactly-once property must all hold. *)

let prop_cluster_spec_under_random_faults =
  QCheck.Test.make ~name:"cluster spec under random faults (2 shards, 4 clients)"
    ~count:15
    QCheck.(
      quad (int_range 0 100_000) (float_range 0. 0.15) (float_range 1. 500.)
        (int_range 0 5))
    (fun (seed, loss, crash_time, victim_index) ->
      let map = Shard_map.create ~shards:2 () in
      let keys = [ "acct0"; "acct1"; "acct2"; "acct3" ] in
      let seed_data =
        Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
      in
      let scripts =
        List.map
          (fun k ~issue ->
            ignore (issue (k ^ ":1"));
            ignore (issue (k ^ ":1")))
          keys
      in
      let net = Dnet.Netmodel.lossy ~loss (Dnet.Netmodel.three_tier ~n_dbs:2 ()) in
      let e, c =
        Harness.Simrun.cluster ~seed ~map ~net ~client_period:300.
          ~fd_spec:
            (Appserver.Fd_heartbeat
               { period = 10.; initial_timeout = 60.; timeout_bump = 30. })
          ~seed_data ~business:Workload.Bank.update ~scripts ()
      in
      (* victim_index ranges over both shards' three servers each *)
      let shard = victim_index / 3 and i = victim_index mod 3 in
      let victim = List.nth (Cluster.group c shard).app_servers i in
      Dsim.Engine.crash_at e crash_time victim;
      let ok = Cluster.run_to_quiescence ~deadline:600_000. c in
      ok && Cluster.Spec.check_all c = [])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cluster"
    [
      ( "shard-map",
        [
          Alcotest.test_case "hash placement deterministic" `Quick
            test_shard_map_determinism;
          Alcotest.test_case "range policy" `Quick test_shard_map_range_policy;
          Alcotest.test_case "validation" `Quick test_shard_map_validation;
          Alcotest.test_case "routing key" `Quick test_routing_key;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "one-shard cluster = plain deployment" `Quick
            test_single_shard_equivalence;
        ] );
      ( "routing",
        [
          Alcotest.test_case "two shards route by key" `Quick
            test_two_shards_route_by_key;
          Alcotest.test_case "misrouted request dropped" `Quick
            test_misrouted_request_dropped;
          Alcotest.test_case "misrouted request bounced" `Quick
            test_misrouted_request_bounced;
        ] );
      ("random-faults", [ q prop_cluster_spec_under_random_faults ]);
    ]
