(* Asynchronous change-log read replicas: the Replica structure itself
   (seeded provisioning, idempotent feed application, snapshot re-seed,
   provable lag), the wire protocol (serve / stale / refused — refusal is
   what makes dropping or promoting a replica always safe), replicated
   deployments end-to-end (reads served within the staleness bound,
   replica-consistency asserted by the spec, obs counters and their
   Prometheus round-trip), replicas=0 equivalence with the pre-replica
   path, and a randomized fault sweep interleaving primary database
   crash/recovery with replica reads on a 2-shard cluster. *)

open Etx
module Rt = Runtime.Etx_runtime

(* ------------------------------------------------------------------ *)
(* Replica structure: feed application and lag accounting *)

let test_replica_apply_idempotent () =
  let rep =
    Dbms.Replica.create
      ~seed_data:[ ("k", Dbms.Value.Int 1) ]
      ~name:"r" ()
  in
  Alcotest.(check bool) "seeded" true
    (Dbms.Replica.read rep "k" = Some (Dbms.Value.Int 1));
  Dbms.Replica.apply_entries rep
    [ (2, [ ("k", Dbms.Value.Int 5) ]); (4, [ ("j", Dbms.Value.Int 7) ]) ];
  Alcotest.(check int) "applied through 4" 4 (Dbms.Replica.applied_lsn rep);
  (* a reshipped prefix (the primary's shipping watermark is volatile
     across its recovery) must be dropped, not re-applied *)
  Dbms.Replica.apply_entries rep [ (2, [ ("k", Dbms.Value.Int 99) ]) ];
  Alcotest.(check bool) "duplicate dropped" true
    (Dbms.Replica.read rep "k" = Some (Dbms.Value.Int 5));
  Alcotest.(check int) "lsn unchanged" 4 (Dbms.Replica.applied_lsn rep)

let test_replica_snapshot_reseed () =
  let rep = Dbms.Replica.create ~name:"r" () in
  Dbms.Replica.apply_entries rep [ (2, [ ("old", Dbms.Value.Int 1) ]) ];
  Dbms.Replica.apply_snapshot rep
    ~state:[ ("fresh", Dbms.Value.Int 9) ]
    ~as_of:10;
  Alcotest.(check bool) "snapshot replaces the store" true
    (Dbms.Replica.read rep "old" = None
    && Dbms.Replica.read rep "fresh" = Some (Dbms.Value.Int 9));
  Alcotest.(check int) "applied jumps to as_of" 10
    (Dbms.Replica.applied_lsn rep);
  (* a stale snapshot (below what the replica already applied) is a
     duplicate of an older ship: dropped *)
  Dbms.Replica.apply_snapshot rep ~state:[] ~as_of:3;
  Alcotest.(check int) "stale snapshot dropped" 10
    (Dbms.Replica.applied_lsn rep)

let test_replica_lag_is_provable_staleness () =
  let rep = Dbms.Replica.create ~name:"r" () in
  Alcotest.(check int) "fresh replica has no provable lag" 0
    (Dbms.Replica.lag rep);
  Dbms.Replica.apply_entries rep [ (3, []) ];
  Alcotest.(check int) "applied ahead of watermark clamps to 0" 0
    (Dbms.Replica.lag rep)

(* ------------------------------------------------------------------ *)
(* Wire protocol: serve / stale / refused *)

let replica_scenario ~script () =
  let t = Dsim.Engine.create () in
  let rt = Dsim.Runtime_sim.of_engine t in
  let rep =
    Dbms.Replica.create
      ~seed_data:[ ("k", Dbms.Value.Int 1) ]
      ~name:"db1-r1" ()
  in
  let rpid = Dbms.Replica.spawn rt ~name:"db1-r1" ~replica:rep () in
  let _ =
    Dsim.Engine.spawn t ~name:"driver" ~main:(fun ~recovery:_ () ->
        let ch = Dnet.Rchannel.create () in
        Dnet.Rchannel.start ch;
        script ~ch ~rpid ~rep)
  in
  ignore (Dsim.Engine.run t);
  rep

let ask ch rpid ~seq ~bound ops =
  Dnet.Rchannel.send ch rpid (Dbms.Msg.Replica_exec { rid = 1; seq; ops; bound });
  match
    Rt.recv ~timeout:5_000. ~cls:Dbms.Msg.cls_replica_reply
      ~filter:(fun m -> m.Runtime.Types.src = rpid)
      ()
  with
  | Some m -> m.Runtime.Types.payload
  | None -> Alcotest.fail "no reply from replica"

let test_replica_serves_reads () =
  let rep =
    replica_scenario () ~script:(fun ~ch ~rpid ~rep:_ ->
        Dnet.Rchannel.send ch rpid
          (Dbms.Msg.Ship { entries = [ (2, [ ("k", Dbms.Value.Int 5) ]) ]; upto = 2 });
        match ask ch rpid ~seq:0 ~bound:8 [ Dbms.Rm.Get "k" ] with
        | Dbms.Msg.Replica_values { values; lsn; lag; _ } ->
            Alcotest.(check bool) "shipped value served" true
              (values = [ Some (Dbms.Value.Int 5) ]);
            Alcotest.(check int) "tagged with the applied LSN" 2 lsn;
            Alcotest.(check int) "no provable lag" 0 lag
        | _ -> Alcotest.fail "expected Replica_values")
  in
  Alcotest.(check int) "one batch served" 1 (Dbms.Replica.served rep)

let test_replica_stale_when_behind () =
  let rep =
    replica_scenario () ~script:(fun ~ch ~rpid ~rep:_ ->
        (* a watermark-only heartbeat: the primary is at LSN 12 but ships
           nothing, so the replica can prove it is 12 behind *)
        Dnet.Rchannel.send ch rpid
          (Dbms.Msg.Ship { entries = []; upto = 12 });
        (match ask ch rpid ~seq:0 ~bound:8 [ Dbms.Rm.Get "k" ] with
        | Dbms.Msg.Replica_stale { lag; _ } ->
            Alcotest.(check int) "provable lag reported" 12 lag
        | _ -> Alcotest.fail "expected Replica_stale");
        (* a caller with a looser bound is still served *)
        match ask ch rpid ~seq:1 ~bound:20 [ Dbms.Rm.Get "k" ] with
        | Dbms.Msg.Replica_values { lag; _ } ->
            Alcotest.(check int) "served with its lag" 12 lag
        | _ -> Alcotest.fail "expected Replica_values under the loose bound")
  in
  Alcotest.(check int) "one served, one stale" 1 (Dbms.Replica.served rep)

(* Promotion safety: a replica never executes anything but reads — it can
   never vote, hold a lock, or commit — so refusing (and by extension
   crashing, dropping, or re-seeding one) is always safe. *)
let test_replica_refuses_writes () =
  let rep =
    replica_scenario () ~script:(fun ~ch ~rpid ~rep:_ ->
        List.iter
          (fun (label, ops) ->
            match ask ch rpid ~seq:0 ~bound:1000 ops with
            | Dbms.Msg.Replica_refused _ -> ()
            | _ -> Alcotest.fail (label ^ ": write batch must be refused"))
          [
            ("put", [ Dbms.Rm.Put ("k", Dbms.Value.Int 2) ]);
            ("add", [ Dbms.Rm.Add ("k", 1) ]);
            ("mixed", [ Dbms.Rm.Get "k"; Dbms.Rm.Ensure_min ("k", 0) ]);
            ("fail", [ Dbms.Rm.Fail ]);
          ])
  in
  Alcotest.(check int) "nothing served" 0 (Dbms.Replica.served rep);
  Alcotest.(check bool) "store untouched" true
    (Dbms.Replica.read rep "k" = Some (Dbms.Value.Int 1))

(* ------------------------------------------------------------------ *)
(* Replicated deployments end-to-end *)

let seed_acct = Workload.Bank.seed_accounts [ ("acct0", 1000) ]

let replica_records (d : Deployment.t) =
  List.filter
    (fun (r : Client.record) -> r.replica <> None)
    (Client.records d.client)

let test_replica_reads_served_end_to_end () =
  let reg = Obs.Registry.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed:11 ~obs:reg ~replicas:2
      ~seed_data:seed_acct ~business:Workload.Bank.mixed
      ~script:(fun ~issue ->
        for r = 0 to 11 do
          ignore (issue (if r mod 4 = 3 then "acct0:1" else "acct0"))
        done)
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Deployment.run_to_quiescence ~deadline:300_000. d);
  Alcotest.(check int) "all delivered" 12
    (List.length (Client.records d.client));
  Alcotest.(check bool) "replica-served records" true
    (List.length (replica_records d) >= 1);
  List.iter
    (fun (r : Client.record) ->
      match r.replica with
      | Some (lsn, lag) ->
          Alcotest.(check bool)
            (Printf.sprintf "record %d within the bound" r.rid)
            true
            (lag <= 8 && lsn >= 0)
      | None -> ())
    (Client.records d.client);
  Alcotest.(check (list string)) "spec incl. replica consistency" []
    (Spec.check_all d);
  (* both sides of the read count: replicas served, servers routed *)
  let served =
    List.fold_left
      (fun acc (_, rep, _) -> acc + Dbms.Replica.served rep)
      0 d.replicas
  in
  Alcotest.(check bool) "replicas actually served" true (served >= 1);
  Alcotest.(check int) "obs replica.served matches the handles" served
    (Obs.Registry.counter_total reg "replica.served");
  Alcotest.(check bool) "servers counted the routed reads" true
    (Obs.Registry.counter_total reg "server.replica_served" >= 1);
  (* storage-tier metrics flow through the same registry *)
  Alcotest.(check bool) "db.force counted" true
    (Obs.Registry.counter_total reg "db.force" >= 1);
  (* Prometheus round-trip: the dump re-parses to the same served total *)
  let dump = Obs.Export_prom.to_string reg in
  let reparsed =
    int_of_float
      (List.fold_left ( +. ) 0.
         (Obs.Export_prom.counter_values dump ~metric:"etx_replica_served"))
  in
  Alcotest.(check int) "prometheus dump re-parses" served reparsed

let test_replicas_off_equivalence () =
  (* with replicas disabled the run must be record-for-record and
     event-for-event identical to a build that never heard of them *)
  let run replicas =
    let e, d =
      Harness.Simrun.deployment ~seed:7 ?replicas ~seed_data:seed_acct
        ~business:Workload.Bank.mixed
        ~script:(fun ~issue ->
          ignore (issue "acct0");
          ignore (issue "acct0:5");
          ignore (issue "acct0"))
        ()
    in
    assert (Deployment.run_to_quiescence ~deadline:300_000. d);
    (Dsim.Engine.events_of e, Client.records d.client)
  in
  let base_events, base = run None in
  let off_events, off = run (Some 0) in
  Alcotest.(check int) "same simulation event count" base_events off_events;
  Alcotest.(check int) "same record count" (List.length base)
    (List.length off);
  List.iter2
    (fun (a : Client.record) b ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical" a.rid)
        true (a = b))
    base off

let test_replica_obs_zero_emission_when_off () =
  let reg = Obs.Registry.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed:5 ~obs:reg ~seed_data:seed_acct
      ~business:Workload.Bank.mixed
      ~script:(fun ~issue ->
        ignore (issue "acct0");
        ignore (issue "acct0:2"))
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Deployment.run_to_quiescence ~deadline:300_000. d);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " not emitted") 0
        (Obs.Registry.counter_total reg name))
    [ "replica.served"; "server.replica_served"; "server.replica_fallback" ];
  let dump = Obs.Export_prom.to_string reg in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no replica metric in the dump" false
    (contains dump "etx_replica");
  (* the storage tier, by contrast, always reports its forced writes *)
  Alcotest.(check bool) "db.force still counted" true
    (Obs.Registry.counter_total reg "db.force" >= 1)

(* ------------------------------------------------------------------ *)
(* Randomized fault sweep: primary database crash/recovery interleaved
   with replica reads on a 2-shard cluster. Read_heavy bodies give a 3:1
   read:write interleave per client; single-key bodies stay intra-shard. *)

let prop_replica_cluster_under_db_crashes =
  QCheck.Test.make
    ~name:
      "replica consistency under primary db crash/recovery (2 shards, \
       mixed reads/writes)"
    ~count:6
    QCheck.(
      triple (int_range 0 100_000)
        (QCheck.oneofl [ false; true ]) (* method cache on/off *)
        (float_range 1. 2500.))
    (fun (seed, cache, crash_time) ->
      let clients = 4 and requests = 4 in
      let map = Shard_map.create ~shards:2 () in
      let kind =
        Workload.Generator.Read_heavy
          { accounts = clients; max_delta = 9; reads_per_write = 3 }
      in
      let scripts =
        List.init clients (fun i ->
            let bodies =
              Workload.Generator.bodies ~seed:(seed + (17 * i)) ~n:requests
                kind
            in
            fun ~issue -> List.iter (fun b -> ignore (issue b)) bodies)
      in
      let e, c =
        Harness.Simrun.cluster ~seed ~map ~cache ~replicas:1
          ~group_commit:true ~client_period:300.
          ~seed_data:(Workload.Generator.seed_data_of kind)
          ~business:(Workload.Generator.business_of kind)
          ~scripts ()
      in
      (* kill shard 0's primary database mid-run and bring it back: the
         shipper restarts with a volatile watermark, reships, and the
         replica must absorb the duplicates while still serving *)
      let db = fst (List.hd (Cluster.group c 0).Cluster.dbs) in
      Dsim.Engine.crash_at e crash_time db;
      Dsim.Engine.recover_at e (crash_time +. 200.) db;
      Cluster.run_to_quiescence ~deadline:600_000. c
      && List.length (Cluster.all_records c) = clients * requests
      && Cluster.Spec.check_all c = [])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "replica"
    [
      ( "replica-feed",
        [
          Alcotest.test_case "idempotent application" `Quick
            test_replica_apply_idempotent;
          Alcotest.test_case "snapshot re-seed" `Quick
            test_replica_snapshot_reseed;
          Alcotest.test_case "lag is provable staleness" `Quick
            test_replica_lag_is_provable_staleness;
        ] );
      ( "replica-protocol",
        [
          Alcotest.test_case "serves shipped state" `Quick
            test_replica_serves_reads;
          Alcotest.test_case "stale beyond the bound" `Quick
            test_replica_stale_when_behind;
          Alcotest.test_case "refuses writes (promotion-safe)" `Quick
            test_replica_refuses_writes;
        ] );
      ( "replicated-runs",
        [
          Alcotest.test_case "reads served end-to-end" `Quick
            test_replica_reads_served_end_to_end;
          Alcotest.test_case "replicas=0 is the pre-replica path" `Quick
            test_replicas_off_equivalence;
          Alcotest.test_case "no replica metrics when off" `Quick
            test_replica_obs_zero_emission_when_off;
        ] );
      ("fault-sweep", [ q prop_replica_cluster_under_db_crashes ]);
    ]
