(* Cross-shard e-Transaction tests: atomic commit over several replica
   groups (Paxos Commit over the wo-registers), the lone-participant abort
   rule, coordinator-crash completion by any group's cleaner, path
   equivalence when the wiring is off or the workload is co-located, and
   the gx observability counters. *)

open Etx

(* first account (beyond acct0) living on a different shard than acct0 *)
let cross_pair map =
  let shard a = Shard_map.shard_of map (Printf.sprintf "acct%d" a) in
  let rec find a =
    if a > 64 then Alcotest.fail "no cross pair in 64 accounts"
    else if shard a <> shard 0 then Printf.sprintf "acct%d" a
    else find (a + 1)
  in
  ("acct0", find 1)

(* every database of [key]'s home shard agrees on its committed balance *)
let check_balance c key expect =
  let home = Cluster.shard_of_key c key in
  List.iter
    (fun (dbpid, rm) ->
      match Dbms.Rm.read_committed rm key with
      | Some (Dbms.Value.Int v) when v = expect -> ()
      | v ->
          Alcotest.failf "%s on shard %d (db p%d): %s, want %d" key home dbpid
            (match v with
            | Some x -> Dbms.Value.to_string x
            | None -> "missing")
            expect)
    (Cluster.group c home).dbs

let heartbeat =
  Appserver.Fd_heartbeat { period = 10.; initial_timeout = 60.; timeout_bump = 30. }

(* ------------------------------------------------------------------ *)
(* Failure-free cross-shard transfer: both shards' databases apply their
   branch, the client gets the committed transfer result, and the full
   cluster spec — global atomicity included — is clean. *)

let test_cross_transfer_commits () =
  let map = Shard_map.create ~shards:2 () in
  let a, b = cross_pair map in
  let seed_data = Workload.Bank.seed_accounts [ (a, 100); (b, 5) ] in
  let _e, c =
    Harness.Simrun.cluster ~seed:13 ~map ~seed_data ~cross:true
      ~business:Workload.Bank.transfer
      ~scripts:[ (fun ~issue -> ignore (issue (Printf.sprintf "%s:%s:30" a b))) ]
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:300_000. c);
  (match Cluster.all_records c with
  | [ r ] ->
      Alcotest.(check string) "result"
        (Printf.sprintf "transferred:30:%s->%s" a b)
        r.result
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs));
  check_balance c a 70;
  check_balance c b 35;
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c)

(* ------------------------------------------------------------------ *)
(* A lone participant's abort vote aborts every shard: the debit branch
   fails its funds guard and votes no, so the credit branch — prepared and
   voting yes on its own shard — must abort too. The transfer degrades to
   the read-only probe on attempt [cross_probe_attempt], whose commit
   carries the failure report; no balance moves anywhere. *)

let test_cross_lone_abort_aborts_all_shards () =
  let map = Shard_map.create ~shards:2 () in
  let a, b = cross_pair map in
  let seed_data = Workload.Bank.seed_accounts [ (a, 10); (b, 0) ] in
  let _e, c =
    Harness.Simrun.cluster ~seed:19 ~map ~seed_data ~cross:true
      ~business:Workload.Bank.transfer
      ~scripts:[ (fun ~issue -> ignore (issue (Printf.sprintf "%s:%s:30" a b))) ]
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  (match Cluster.all_records c with
  | [ r ] ->
      Alcotest.(check string) "failure report"
        (Printf.sprintf "failed:insufficient-funds:%s=10" a)
        r.result;
      Alcotest.(check int) "degraded to the probe plan"
        Workload.Bank.cross_probe_attempt r.tries
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs));
  check_balance c a 10;
  check_balance c b 0;
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c)

(* ------------------------------------------------------------------ *)
(* Path equivalence: with the wiring off, or with it on but a co-located
   workload, the records are identical — the cross machinery adds no
   fiber, message or rng draw to the classic path. *)

let test_cross_wiring_off_equivalence () =
  let map = Shard_map.create ~shards:2 () in
  let kind = Workload.Generator.Bank_transfers { accounts = 8; max_amount = 5 } in
  (* cross_ratio 0: every transfer stays on its source account's shard *)
  let bodies = Workload.Generator.sharded_bodies ~map ~seed:6 ~n:8 kind in
  let scripts =
    [ (fun ~issue -> List.iter (fun (_, b) -> ignore (issue b)) bodies) ]
  in
  let build cross =
    let _e, c =
      Harness.Simrun.cluster ~seed:9 ~map
        ~seed_data:(Workload.Generator.seed_data_of kind)
        ~cross ~business:Workload.Bank.transfer ~scripts ()
    in
    Alcotest.(check bool) "quiesced" true
      (Cluster.run_to_quiescence ~deadline:600_000. c);
    Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c);
    c
  in
  let off = Cluster.all_records (build false) in
  let on = Cluster.all_records (build true) in
  Alcotest.(check int) "same count" (List.length off) (List.length on);
  List.iter2
    (fun (x : Client.record) y ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical" x.rid)
        true (x = y))
    off on

(* ------------------------------------------------------------------ *)
(* Coordinator crash mid-commit: the home-shard primary coordinating the
   transfer dies; a peer (re-elected via regA or the suspicion-gated
   cleaner scanning the Gx_elect record) completes or aborts the instance,
   and the client still gets exactly one committed result. *)

let test_cross_coordinator_crash_completed () =
  let map = Shard_map.create ~shards:2 () in
  let a, b = cross_pair map in
  let seed_data = Workload.Bank.seed_accounts [ (a, 100); (b, 5) ] in
  let e, c =
    Harness.Simrun.cluster ~seed:17 ~map ~seed_data ~cross:true
      ~client_period:300. ~fd_spec:heartbeat
      ~business:Workload.Bank.transfer
      ~scripts:[ (fun ~issue -> ignore (issue (Printf.sprintf "%s:%s:30" a b))) ]
      ()
  in
  let coord = Cluster.primary c ~shard:(Cluster.shard_of_key c a) in
  Dsim.Engine.crash_at e 30. coord;
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  (match Cluster.all_records c with
  | [ _ ] -> ()
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs));
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c)

(* qcheck sweep: 2–3 shards of all-cross transfers, one home-group server
   (the coordinator at index 0, or a would-be takeover peer) crashed at a
   random point mid-commit. Global atomicity, global exactly-once and the
   per-shard obligations must hold in every schedule. *)
let prop_cross_spec_under_coordinator_crash =
  QCheck.Test.make
    ~name:"cross-shard spec under coordinator crash (2-3 shards)" ~count:10
    QCheck.(
      quad (int_range 0 100_000) (int_range 2 3) (float_range 1. 400.)
        (int_range 0 2))
    (fun (seed, shards, crash_time, victim_i) ->
      let map = Shard_map.create ~shards () in
      let kind =
        Workload.Generator.Bank_transfers
          { accounts = 4 * shards; max_amount = 5 }
      in
      let bodies =
        Workload.Generator.sharded_bodies ~map ~cross_ratio:1.0 ~seed ~n:4 kind
      in
      let halves = List.filteri (fun i _ -> i mod 2 = 0) bodies in
      let rest = List.filteri (fun i _ -> i mod 2 = 1) bodies in
      let scripts =
        List.map
          (fun slice ~issue ->
            List.iter (fun (_, b) -> ignore (issue b)) slice)
          [ halves; rest ]
      in
      let e, c =
        Harness.Simrun.cluster ~seed ~map ~client_period:300.
          ~fd_spec:heartbeat
          ~seed_data:(Workload.Generator.seed_data_of kind)
          ~cross:true ~business:Workload.Bank.transfer ~scripts ()
      in
      let home = fst (List.hd bodies) in
      let victim = List.nth (Cluster.group c home).app_servers victim_i in
      Dsim.Engine.crash_at e crash_time victim;
      Cluster.run_to_quiescence ~deadline:600_000. c
      && Cluster.Spec.check_all c = [])

(* ------------------------------------------------------------------ *)
(* Observability: the gx counters flow through E_obs when a registry is
   attached, and are never emitted — not even as zero series — when the
   wiring is off. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_cross_obs_counters () =
  let reg = Obs.Registry.create () in
  let map = Shard_map.create ~shards:2 () in
  let a, b = cross_pair map in
  let seed_data = Workload.Bank.seed_accounts [ (a, 100); (b, 5) ] in
  let _e, c =
    Harness.Simrun.cluster ~seed:13 ~obs:reg ~map ~seed_data ~cross:true
      ~business:Workload.Bank.transfer
      ~scripts:[ (fun ~issue -> ignore (issue (Printf.sprintf "%s:%s:30" a b))) ]
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:300_000. c);
  Alcotest.(check int) "one cross transaction" 1
    (Obs.Registry.counter_total reg "txn.cross_shard");
  Alcotest.(check int) "one instance opened" 1
    (Obs.Registry.counter_total reg "gx.open");
  Alcotest.(check int) "both participants voted yes" 2
    (Obs.Registry.counter_total reg "gx.vote.yes");
  Alcotest.(check int) "no abort votes" 0
    (Obs.Registry.counter_total reg "gx.vote.no");
  Alcotest.(check int) "one global commit" 1
    (Obs.Registry.counter_total reg "gx.commit");
  (match Obs.Registry.merged_histogram reg "commit.participants" with
  | Some h -> Alcotest.(check int) "participants recorded" 1 (Obs.Histogram.count h)
  | None -> Alcotest.fail "commit.participants histogram missing")

let test_cross_obs_zero_emission_when_off () =
  let reg = Obs.Registry.create () in
  let map = Shard_map.create ~shards:2 () in
  let kind = Workload.Generator.Bank_transfers { accounts = 8; max_amount = 5 } in
  let bodies = Workload.Generator.sharded_bodies ~map ~seed:6 ~n:4 kind in
  let _e, c =
    Harness.Simrun.cluster ~seed:5 ~obs:reg ~map
      ~seed_data:(Workload.Generator.seed_data_of kind)
      ~business:Workload.Bank.transfer
      ~scripts:
        [ (fun ~issue -> List.iter (fun (_, b) -> ignore (issue b)) bodies) ]
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:300_000. c);
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " not emitted") 0
        (Obs.Registry.counter_total reg name))
    [
      "txn.cross_shard"; "gx.open"; "gx.vote.yes"; "gx.vote.no"; "gx.commit";
      "gx.abort"; "gx.complete"; "gx.takeover"; "client.bounced";
    ];
  Alcotest.(check bool) "no participants histogram" true
    (Obs.Registry.merged_histogram reg "commit.participants" = None);
  let dump = Obs.Export_prom.to_string reg in
  Alcotest.(check bool) "no gx metric in the dump" false (contains dump "etx_gx");
  (* the classic pipeline still reports *)
  Alcotest.(check bool) "client.committed still counted" true
    (Obs.Registry.counter_total reg "client.committed" = 4)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cross"
    [
      ( "commit",
        [
          Alcotest.test_case "cross transfer commits on both shards" `Quick
            test_cross_transfer_commits;
          Alcotest.test_case "lone abort vote aborts every shard" `Quick
            test_cross_lone_abort_aborts_all_shards;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "wiring off = wiring on for co-located load"
            `Quick test_cross_wiring_off_equivalence;
        ] );
      ( "faults",
        [
          Alcotest.test_case "coordinator crash completed by peers" `Quick
            test_cross_coordinator_crash_completed;
          q prop_cross_spec_under_coordinator_crash;
        ] );
      ( "obs",
        [
          Alcotest.test_case "gx counters emitted" `Quick
            test_cross_obs_counters;
          Alcotest.test_case "zero emission when off" `Quick
            test_cross_obs_zero_emission_when_off;
        ] );
    ]
