(* Batched commit pipeline and leader leases: register-name helpers,
   group-commit durability at the resource manager, batch=1 equivalence
   with the classic path, failure-free batched runs, and the spec under
   leaseholder crashes mid-batch. *)

open Etx

(* ------------------------------------------------------------------ *)
(* Register-name encode/decode (the one shared helper, Etx_types.Reg_name) *)

let test_reg_name_round_trip () =
  List.iter
    (fun (g, r) ->
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "round-trip g%d r%d" g r)
        (Some (g, r))
        (Etx_types.Reg_name.parse_reg_a (Etx_types.Reg_name.reg_a ~group:g ~rid:r)))
    [ (0, 0); (0, 1); (3, 1007); (17, 123456789) ];
  (* consensus instance keys carry a "[j]" suffix; the parse ignores it *)
  Alcotest.(check (option (pair int int)))
    "instance-key suffix tolerated" (Some (2, 41))
    (Etx_types.Reg_name.parse_reg_a
       (Etx_types.Reg_name.reg_a ~group:2 ~rid:41 ^ "[5]"))

let test_reg_name_rejects_others () =
  let none name =
    Alcotest.(check (option (pair int int)))
      (name ^ " is not a regA") None
      (Etx_types.Reg_name.parse_reg_a name)
  in
  none (Etx_types.Reg_name.reg_d ~group:1 ~rid:2);
  none (Etx_types.Reg_name.lease ~group:1);
  none (Etx_types.Reg_name.batch_a ~group:1 ~epoch:2 ~seq:3);
  none (Etx_types.Reg_name.batch_d ~group:1 ~epoch:2 ~seq:3);
  none "regA:r1";
  none "garbage"

let prop_reg_name_round_trip =
  QCheck.Test.make ~name:"Reg_name.reg_a round-trips through parse_reg_a"
    ~count:200
    QCheck.(pair (int_range 0 64) (int_range 0 1_000_000))
    (fun (group, rid) ->
      Etx_types.Reg_name.parse_reg_a (Etx_types.Reg_name.reg_a ~group ~rid)
      = Some (group, rid))

(* ------------------------------------------------------------------ *)
(* Group commit at the storage / resource-manager layer: one forced write
   covers a whole batch. *)

let in_sim f =
  let t = Dsim.Engine.create () in
  let result = ref None in
  let _ =
    Dsim.Engine.spawn t ~name:"p" ~main:(fun ~recovery:_ () ->
        result := Some (f t))
  in
  ignore (Dsim.Engine.run t);
  match !result with Some r -> r | None -> Alcotest.fail "fiber did not run"

let test_log_append_list_single_force () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let log = Dstore.Log.create ~disk () in
      Dstore.Log.append_list log [ "a"; "b"; "c"; "d" ];
      Dstore.Log.force log;
      Alcotest.(check int) "one force for four records" 1
        (Dstore.Disk.forced_writes disk);
      Alcotest.(check (list string))
        "records in order" [ "a"; "b"; "c"; "d" ]
        (Dstore.Log.records log))

let batch_of_active rm n =
  (* n independent started transactions on distinct keys, all executed *)
  List.init n (fun i ->
      let xid = Dbms.Xid.make ~rid:(100 + i) ~j:0 in
      Dbms.Rm.xa_start rm ~xid;
      (match
         Dbms.Rm.exec rm ~xid
           [ Dbms.Rm.Put (Printf.sprintf "k%d" i, Dbms.Value.Int i) ]
       with
      | Dbms.Rm.Exec_ok _ -> ()
      | _ -> Alcotest.fail "exec failed");
      Dbms.Rm.xa_end rm ~xid;
      xid)

let test_rm_vote_many_one_force () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let rm =
        Dbms.Rm.create ~timing:Dbms.Rm.zero_timing ~seed_data:[] ~disk
          ~name:"db-test" ()
      in
      let xids = batch_of_active rm 4 in
      let before = Dstore.Disk.forced_writes disk in
      let votes = Dbms.Rm.vote_many rm ~xids in
      Alcotest.(check int) "one force for the whole prepare batch" 1
        (Dstore.Disk.forced_writes disk - before);
      Alcotest.(check int) "every xid answered" 4 (List.length votes);
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "all yes" true (v = Dbms.Rm.Yes))
        votes)

let test_rm_decide_many_one_force () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let rm =
        Dbms.Rm.create ~timing:Dbms.Rm.zero_timing ~seed_data:[] ~disk
          ~name:"db-test" ()
      in
      let xids = batch_of_active rm 3 in
      ignore (Dbms.Rm.vote_many rm ~xids);
      let before = Dstore.Disk.forced_writes disk in
      let outcomes =
        Dbms.Rm.decide_many rm
          ~items:(List.map (fun x -> (x, Dbms.Rm.Commit)) xids)
      in
      Alcotest.(check int) "one force for the whole decide batch" 1
        (Dstore.Disk.forced_writes disk - before);
      List.iter
        (fun (_, o) ->
          Alcotest.(check bool) "all committed" true (o = Dbms.Rm.Commit))
        outcomes;
      List.iteri
        (fun i _ ->
          match Dbms.Rm.read_committed rm (Printf.sprintf "k%d" i) with
          | Some (Dbms.Value.Int v) ->
              Alcotest.(check int) "batched commit visible" i v
          | _ -> Alcotest.fail "batched commit not applied")
        xids)

let test_rm_decide_many_mixed () =
  in_sim (fun _ ->
      let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
      let rm =
        Dbms.Rm.create ~timing:Dbms.Rm.zero_timing ~seed_data:[] ~disk
          ~name:"db-test" ()
      in
      let xids = batch_of_active rm 2 in
      ignore (Dbms.Rm.vote_many rm ~xids);
      let items =
        match xids with
        | [ a; b ] -> [ (a, Dbms.Rm.Commit); (b, Dbms.Rm.Abort) ]
        | _ -> assert false
      in
      ignore (Dbms.Rm.decide_many rm ~items);
      Alcotest.(check bool) "committed key visible" true
        (Dbms.Rm.read_committed rm "k0" = Some (Dbms.Value.Int 0));
      Alcotest.(check bool) "aborted key absent" true
        (Dbms.Rm.read_committed rm "k1" = None))

(* ------------------------------------------------------------------ *)
(* batch=1 equivalence: the config is accepted and the run is
   record-for-record identical to the classic (unbatched) deployment. *)

let test_batch_one_equivalence () =
  let seed = 7 in
  let seed_data = Workload.Bank.seed_accounts [ ("acct0", 1000) ] in
  let script ~issue =
    for _ = 1 to 3 do
      ignore (issue "acct0:5")
    done
  in
  let _e, plain =
    Harness.Simrun.deployment ~seed ~seed_data ~business:Workload.Bank.update
      ~script ()
  in
  assert (Deployment.run_to_quiescence ~deadline:60_000. plain);
  let _e, b1 =
    Harness.Simrun.deployment ~seed ~batch:1 ~seed_data
      ~business:Workload.Bank.update ~script ()
  in
  assert (Deployment.run_to_quiescence ~deadline:60_000. b1);
  let base = Client.records plain.client and got = Client.records b1.client in
  Alcotest.(check int) "same count" (List.length base) (List.length got);
  List.iter2
    (fun (a : Client.record) b ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical" a.rid)
        true (a = b))
    base got;
  Alcotest.(check (list string)) "spec" [] (Spec.check_all b1)

let test_batch_config_validation () =
  Alcotest.check_raises "batch must be >= 1"
    (Invalid_argument "Appserver.config: batch must be >= 1") (fun () ->
      ignore
        (Harness.Simrun.deployment ~batch:0 ~business:Business.trivial
           ~script:(fun ~issue:_ -> ())
           ()));
  Alcotest.check_raises "gc is incompatible with batching"
    (Invalid_argument
       "Appserver.config: register GC is not supported on the batched path \
        (a collected lease or batch register would reopen a decided window)")
    (fun () ->
      ignore
        (Harness.Simrun.deployment ~batch:4 ~gc_after:1000.
           ~business:Business.trivial
           ~script:(fun ~issue:_ -> ())
           ()))

(* ------------------------------------------------------------------ *)
(* Failure-free batched run: many clients on one shard so the leaseholder
   actually assembles multi-transaction windows; every request delivers,
   the spec holds, and the batch-size histogram shows real batching. *)

let bank_scripts ~clients ~requests =
  List.init clients (fun i ->
      fun ~issue ->
        for _ = 1 to requests do
          ignore (issue (Printf.sprintf "acct%d:1" i))
        done)

let bank_seed ~clients =
  Workload.Bank.seed_accounts
    (List.init clients (fun i -> (Printf.sprintf "acct%d" i, 1000)))

let test_batched_run_failure_free () =
  let clients = 8 and requests = 2 in
  let reg = Obs.Registry.create () in
  let _e, c =
    Harness.Simrun.cluster ~seed:21 ~obs:reg ~shards:1 ~batch:4
      ~seed_data:(bank_seed ~clients) ~business:Workload.Bank.update
      ~scripts:(bank_scripts ~clients ~requests)
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  Alcotest.(check int) "all delivered" (clients * requests)
    (List.length (Cluster.all_records c));
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c);
  (match Obs.Registry.merged_histogram reg "server.batch_size" with
  | None -> Alcotest.fail "no server.batch_size histogram"
  | Some h ->
      Alcotest.(check bool) "windows recorded" true (Obs.Histogram.count h > 0);
      Alcotest.(check bool) "some window held > 1 transaction" true
        (match Obs.Histogram.max_value h with
        | Some m -> m > 1.
        | None -> false));
  Alcotest.(check bool) "a lease was acquired" true
    (Obs.Registry.counter_total reg "server.lease_acquired" >= 1)

(* ------------------------------------------------------------------ *)
(* Crash the leaseholder mid-batch: a survivor must take the lease,
   abort-or-finish every window of the dead epoch, and the spec (per-shard
   T.1/T.2, A.1–A.3, V.1–V.2, plus global exactly-once) must hold with
   every request still delivered exactly once. *)

let test_crash_leaseholder_mid_batch () =
  let clients = 6 and requests = 3 in
  let e, c =
    Harness.Simrun.cluster ~seed:5 ~shards:1 ~batch:4
      ~seed_data:(bank_seed ~clients) ~business:Workload.Bank.update
      ~scripts:(bank_scripts ~clients ~requests)
      ()
  in
  (* the head server takes the bootstrap lease; kill it inside the first
     window (paper timing: SQL alone is ~184 ms) *)
  Dsim.Engine.crash_at e 300. (Cluster.primary c ~shard:0);
  Alcotest.(check bool) "quiesced" true
    (Cluster.run_to_quiescence ~deadline:600_000. c);
  Alcotest.(check int) "all delivered despite the crash" (clients * requests)
    (List.length (Cluster.all_records c));
  Alcotest.(check (list string)) "cluster spec" [] (Cluster.Spec.check_all c)

let prop_batched_spec_under_leaseholder_crashes =
  QCheck.Test.make
    ~name:"batched spec under leaseholder crashes (2 shards, 4 clients)"
    ~count:10
    QCheck.(
      triple (int_range 0 100_000)
        (QCheck.oneofl [ 2; 4; 16 ])
        (float_range 1. 2000.))
    (fun (seed, batch, crash_time) ->
      let map = Shard_map.create ~shards:2 () in
      let keys = [ "acct0"; "acct1"; "acct2"; "acct3" ] in
      let seed_data =
        Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
      in
      let scripts =
        List.map
          (fun k ~issue ->
            ignore (issue (k ^ ":1"));
            ignore (issue (k ^ ":1")))
          keys
      in
      let e, c =
        Harness.Simrun.cluster ~seed ~map ~batch ~client_period:300.
          ~seed_data ~business:Workload.Bank.update ~scripts ()
      in
      (* kill shard 0's bootstrap leaseholder at a random point: before,
         during, or after its first windows *)
      Dsim.Engine.crash_at e crash_time (Cluster.primary c ~shard:0);
      let ok = Cluster.run_to_quiescence ~deadline:600_000. c in
      ok
      && List.length (Cluster.all_records c) = 8
      && Cluster.Spec.check_all c = [])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "batch"
    [
      ( "reg-name",
        [
          Alcotest.test_case "round-trip" `Quick test_reg_name_round_trip;
          Alcotest.test_case "rejects non-regA names" `Quick
            test_reg_name_rejects_others;
          q prop_reg_name_round_trip;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "log append_list + one force" `Quick
            test_log_append_list_single_force;
          Alcotest.test_case "vote_many forces once" `Quick
            test_rm_vote_many_one_force;
          Alcotest.test_case "decide_many forces once" `Quick
            test_rm_decide_many_one_force;
          Alcotest.test_case "decide_many mixed outcomes" `Quick
            test_rm_decide_many_mixed;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "batch=1 is the classic path" `Quick
            test_batch_one_equivalence;
          Alcotest.test_case "config validation" `Quick
            test_batch_config_validation;
        ] );
      ( "batched-runs",
        [
          Alcotest.test_case "failure-free batched run" `Quick
            test_batched_run_failure_free;
          Alcotest.test_case "crash leaseholder mid-batch" `Quick
            test_crash_leaseholder_mid_batch;
        ] );
      ("random-crashes", [ q prop_batched_spec_under_leaseholder_crashes ]);
    ]
