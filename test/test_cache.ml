(* Transactional method cache at the app-server tier: cache-key
   format/parse, the Method_cache structure itself (fills, intersection
   invalidation, the generation guard), cached deployments end-to-end
   (hits served, commit-piggybacked invalidation observed, coherence
   asserted by the spec), cache=off equivalence with the pre-cache path,
   and a randomized fault sweep over a 2-shard cluster mixing cached
   reads, writes, and leaseholder crashes. *)

open Etx

(* ------------------------------------------------------------------ *)
(* Cache_key: the shared key format (also used for obs labels) *)

let test_cache_key_round_trip () =
  List.iter
    (fun (label, body) ->
      Alcotest.(check (option (pair string string)))
        (Printf.sprintf "round-trip %s %s" label body)
        (Some (label, body))
        (Etx_types.Cache_key.parse (Etx_types.Cache_key.format ~label ~body)))
    [
      ("bank.audit", "acct0");
      ("bank.mixed", "acct3:17");
      ("travel.availability", "rome");
      ("m", "");
      ("m", "a/b/c");
      (* bodies may contain '/'; only the label may not *)
    ]

let test_cache_key_rejects () =
  let none name =
    Alcotest.(check (option (pair string string)))
      (name ^ " is not a cache key") None
      (Etx_types.Cache_key.parse name)
  in
  none "";
  none "cache:";
  none "cache:nobody";
  (* no '/' separator *)
  none "regA:g0:r1";
  none "garbage";
  Alcotest.check_raises "label with '/' refused"
    (Invalid_argument "Cache_key.format: label contains '/': a/b") (fun () ->
      ignore (Etx_types.Cache_key.format ~label:"a/b" ~body:"x"))

let prop_cache_key_round_trip =
  let label_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '.'; '_'; '0' ]) (int_range 1 12))
  in
  let body_gen =
    QCheck.Gen.(
      string_size
        ~gen:(oneofl [ 'a'; 'k'; ':'; '/'; '9'; '-' ])
        (int_range 0 20))
  in
  QCheck.Test.make ~name:"Cache_key format/parse round-trips" ~count:300
    QCheck.(pair (make label_gen) (make body_gen))
    (fun (label, body) ->
      Etx_types.Cache_key.parse (Etx_types.Cache_key.format ~label ~body)
      = Some (label, body))

(* ------------------------------------------------------------------ *)
(* Method_cache: fills, lookup, intersection invalidation, generation *)

let store_simple mc ~body ~reads ~result =
  Method_cache.store mc
    ~generation:(Method_cache.generation mc)
    ~label:"bank.audit" ~body ~reads ~result

let test_method_cache_store_find () =
  let mc = Method_cache.create () in
  Alcotest.(check (option string))
    "empty cache misses" None
    (Method_cache.find mc ~label:"bank.audit" ~body:"a");
  Alcotest.(check bool) "fresh store accepted" true
    (store_simple mc ~body:"a" ~reads:[ "a" ] ~result:"balance:a:10");
  Alcotest.(check (option string))
    "hit" (Some "balance:a:10")
    (Method_cache.find mc ~label:"bank.audit" ~body:"a");
  Alcotest.(check (option string))
    "different label misses" None
    (Method_cache.find mc ~label:"bank.mixed" ~body:"a");
  Alcotest.(check int) "one fill recorded" 1 (Method_cache.fills mc);
  Alcotest.(check int) "size" 1 (Method_cache.size mc)

let test_method_cache_invalidate_intersection () =
  let mc = Method_cache.create () in
  ignore (store_simple mc ~body:"a" ~reads:[ "a" ] ~result:"balance:a:1");
  ignore (store_simple mc ~body:"b" ~reads:[ "b" ] ~result:"balance:b:2");
  ignore
    (store_simple mc ~body:"sum" ~reads:[ "a"; "c" ] ~result:"balance:sum:3");
  (* a commit that wrote [a] must drop every entry reading [a], nothing
     else *)
  Alcotest.(check int) "two entries intersect the write" 2
    (Method_cache.invalidate mc ~writes:[ "a" ]);
  Alcotest.(check (option string))
    "survivor untouched" (Some "balance:b:2")
    (Method_cache.find mc ~label:"bank.audit" ~body:"b");
  Alcotest.(check (option string))
    "intersecting entry gone" None
    (Method_cache.find mc ~label:"bank.audit" ~body:"a");
  Alcotest.(check int) "disjoint write drops nothing" 0
    (Method_cache.invalidate mc ~writes:[ "z" ]);
  Alcotest.(check int) "drops counted" 2 (Method_cache.drops mc);
  Alcotest.(check int) "flush drops the rest" 1 (Method_cache.flush mc);
  Alcotest.(check int) "empty after flush" 0 (Method_cache.size mc)

let test_method_cache_generation_guard () =
  let mc = Method_cache.create () in
  (* snapshot, then an invalidation races in before the fill: the fill
     must be refused — its result may predate the committed write *)
  let g = Method_cache.generation mc in
  ignore (Method_cache.invalidate mc ~writes:[]);
  Alcotest.(check bool) "stale fill refused" false
    (Method_cache.store mc ~generation:g ~label:"bank.audit" ~body:"a"
       ~reads:[ "a" ] ~result:"balance:a:1");
  Alcotest.(check (option string))
    "nothing cached" None
    (Method_cache.find mc ~label:"bank.audit" ~body:"a");
  (* even an empty write set bumps the generation (flush-all sentinel and
     recovery use this) *)
  Alcotest.(check bool) "generation advanced by empty invalidate" true
    (Method_cache.generation mc > g);
  (* a fresh snapshot fills fine *)
  Alcotest.(check bool) "fresh fill accepted" true
    (store_simple mc ~body:"a" ~reads:[ "a" ] ~result:"balance:a:1")

(* ------------------------------------------------------------------ *)
(* Cached deployments end-to-end *)

let seed_acct = Workload.Bank.seed_accounts [ ("acct0", 1000) ]

let cached_records (d : Deployment.t) =
  List.filter (fun (r : Client.record) -> r.cached) (Client.records d.client)

let test_cached_reads_hit () =
  let reg = Obs.Registry.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed:11 ~obs:reg ~cache:true
      ~seed_data:seed_acct ~business:Workload.Bank.mixed
      ~script:(fun ~issue ->
        for _ = 1 to 5 do
          ignore (issue "acct0")
        done)
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Deployment.run_to_quiescence ~deadline:300_000. d);
  Alcotest.(check int) "all delivered" 5
    (List.length (Client.records d.client));
  List.iter
    (fun (r : Client.record) ->
      Alcotest.(check string)
        (Printf.sprintf "read %d sees the seed balance" r.rid)
        "balance:acct0:1000" r.result)
    (Client.records d.client);
  (* first read computes (miss + fill), the rest are served from cache *)
  Alcotest.(check bool) "cache-served records" true
    (List.length (cached_records d) >= 3);
  Alcotest.(check bool) "hits observed" true
    (Obs.Registry.counter_total reg "cache.hit" >= 3);
  Alcotest.(check bool) "a miss filled the cache" true
    (Obs.Registry.counter_total reg "cache.miss" >= 1);
  Alcotest.(check (list string)) "spec incl. coherence" [] (Spec.check_all d)

let test_commit_invalidates_and_rereads () =
  let reg = Obs.Registry.create () in
  let _e, d =
    Harness.Simrun.deployment ~seed:3 ~obs:reg ~cache:true
      ~seed_data:seed_acct ~business:Workload.Bank.mixed
      ~script:(fun ~issue ->
        ignore (issue "acct0");
        (* miss, fills *)
        ignore (issue "acct0");
        (* hit *)
        ignore (issue "acct0:5");
        (* committed write: piggybacked invalidation *)
        ignore (issue "acct0") (* must recompute, not serve the stale 1000 *))
      ()
  in
  Alcotest.(check bool) "quiesced" true
    (Deployment.run_to_quiescence ~deadline:300_000. d);
  (match Client.records d.client with
  | [ r1; r2; r3; r4 ] ->
      Alcotest.(check string) "first read" "balance:acct0:1000" r1.result;
      Alcotest.(check string) "second read" "balance:acct0:1000" r2.result;
      Alcotest.(check string) "write" "updated:acct0:1005" r3.result;
      Alcotest.(check string) "read after commit sees the new balance"
        "balance:acct0:1005" r4.result;
      Alcotest.(check bool) "post-write read was recomputed" true
        (not r4.cached)
  | rs -> Alcotest.fail (Printf.sprintf "expected 4 records, got %d"
                           (List.length rs)));
  Alcotest.(check bool) "invalidation observed" true
    (Obs.Registry.counter_total reg "cache.invalidate" >= 1);
  Alcotest.(check (list string)) "spec incl. coherence" [] (Spec.check_all d)

let test_cache_off_equivalence () =
  (* with the cache disabled the run must be record-for-record and
     event-for-event identical to a build that never heard of caching *)
  let run cache =
    let e, d =
      Harness.Simrun.deployment ~seed:7 ?cache ~seed_data:seed_acct
        ~business:Workload.Bank.mixed
        ~script:(fun ~issue ->
          ignore (issue "acct0");
          ignore (issue "acct0:5");
          ignore (issue "acct0"))
        ()
    in
    assert (Deployment.run_to_quiescence ~deadline:300_000. d);
    (Dsim.Engine.events_of e, Client.records d.client)
  in
  let base_events, base = run None in
  let off_events, off = run (Some false) in
  Alcotest.(check int) "same simulation event count" base_events off_events;
  Alcotest.(check int) "same record count" (List.length base)
    (List.length off);
  List.iter2
    (fun (a : Client.record) b ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical" a.rid)
        true (a = b))
    base off

(* ------------------------------------------------------------------ *)
(* Randomized fault sweep: cached reads + writes + leaseholder crashes
   on a 2-shard cluster. Read_heavy bodies give an exact 3:1 read:write
   interleave per client; each client's stream stays on its own account
   (single-key bodies route intra-shard by construction). *)

let prop_cached_cluster_under_crashes =
  QCheck.Test.make
    ~name:
      "cached cluster spec under app-server crashes (2 shards, mixed \
       reads/writes)"
    ~count:8
    QCheck.(
      triple (int_range 0 100_000)
        (QCheck.oneofl [ 1; 4 ])
        (float_range 1. 3000.))
    (fun (seed, batch, crash_time) ->
      let clients = 4 and requests = 4 in
      let map = Shard_map.create ~shards:2 () in
      let kind =
        Workload.Generator.Read_heavy
          { accounts = clients; max_delta = 9; reads_per_write = 3 }
      in
      let scripts =
        List.init clients (fun i ->
            let bodies =
              Workload.Generator.bodies ~seed:(seed + (17 * i)) ~n:requests
                kind
            in
            fun ~issue -> List.iter (fun b -> ignore (issue b)) bodies)
      in
      let e, c =
        Harness.Simrun.cluster ~seed ~map ~batch ~cache:true
          ~client_period:300.
          ~seed_data:(Workload.Generator.seed_data_of kind)
          ~business:(Workload.Generator.business_of kind)
          ~scripts ()
      in
      (* kill shard 0's head server (bootstrap leaseholder on the batched
         path, default primary on the classic one) at a random point *)
      Dsim.Engine.crash_at e crash_time (Cluster.primary c ~shard:0);
      Cluster.run_to_quiescence ~deadline:600_000. c
      && List.length (Cluster.all_records c) = clients * requests
      && Cluster.Spec.check_all c = [])

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache"
    [
      ( "cache-key",
        [
          Alcotest.test_case "round-trip" `Quick test_cache_key_round_trip;
          Alcotest.test_case "rejects non-keys" `Quick test_cache_key_rejects;
          q prop_cache_key_round_trip;
        ] );
      ( "method-cache",
        [
          Alcotest.test_case "store and find" `Quick
            test_method_cache_store_find;
          Alcotest.test_case "intersection invalidation" `Quick
            test_method_cache_invalidate_intersection;
          Alcotest.test_case "generation guard" `Quick
            test_method_cache_generation_guard;
        ] );
      ( "cached-runs",
        [
          Alcotest.test_case "reads are served from cache" `Quick
            test_cached_reads_hit;
          Alcotest.test_case "commit invalidates, reread recomputes" `Quick
            test_commit_invalidates_and_rereads;
          Alcotest.test_case "cache=off is the pre-cache path" `Quick
            test_cache_off_equivalence;
        ] );
      ("fault-sweep", [ q prop_cached_cluster_under_crashes ]);
    ]
