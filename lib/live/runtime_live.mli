(** Wall-clock runtime backend: protocol fibers on OS threads, real timers,
    and an in-process transport that applies the same {!Runtime.Etx_runtime.netmodel}
    delay/drop distributions as the simulator.

    Semantics relative to the simulator backend:

    - The clock is wall time in milliseconds since the run started
      ([run_until] starts it; before that, spawned processes are parked on a
      barrier and [now] reads 0) — sleeps, network delays and failure
      detector timeouts all measure real time.
    - Within one process, fibers are serialised by a per-process lock and
      interleave only at blocking points ([sleep]/[work]/[recv]), matching
      the simulator's cooperative scheduling; {e across} processes execution
      is genuinely concurrent.
    - [crash] takes effect at each fiber's next effect boundary: the victim
      is woken if blocked and discontinued with [Exit_fiber]; its mailbox is
      discarded. [recover] reruns the process main with [~recovery:true].
    - Determinism is lost: arrival order, the winner among same-class
      receivers and timer interleavings depend on the OS scheduler, so a
      live run validates correctness properties (exactly-once, agreement),
      not byte-identical traces. The seed only fixes the network model's
      random draws per call sequence, not the call sequence itself. *)

type t

val create :
  ?seed:int ->
  ?net:Runtime.Etx_runtime.netmodel ->
  ?obs:Obs.Registry.t ->
  unit ->
  t
(** [?obs] opts in observability, exactly as on the simulator backend:
    fibers get a sink through the [E_obs] effect; the backend counts
    per-class network traffic ([net.sent.*] / [net.recv.*] /
    [net.dropped.*] / [net.dead_letter.*] — note the live transport's
    drop-on-down path is counted as dead-letter here too), observes
    [work.<label>] durations and records note/crash/recover events.
    Timestamps are wall-clock ms since the run started. *)

val obs_registry : t -> Obs.Registry.t option

val runtime : t -> Runtime.Etx_runtime.t
(** The orchestration capability (backend tag ["live"]). [run_until] drives
    the run: the first call releases the start barrier; the deadline is in
    wall-clock milliseconds from that moment. A protocol exception raised in
    any fiber is re-raised by [run_until]. *)

val shutdown : t -> unit
(** Stop the runtime: wakes every blocked fiber (they exit at the aliveness
    check) and ends the timer thread. Idempotent; threads are not joined. *)

val now_ms : t -> float
val notes : t -> (Runtime.Types.proc_id * string) list
