open Runtime
open Types
module ER = Etx_runtime

(* The wall-clock backend: every protocol fiber is an OS thread (OCaml
   systhreads — one domain, so the runtime lock serialises OCaml execution
   and thread switches happen at blocking points), the virtual clock is
   [Unix.gettimeofday] relative to the run's start, and the network is an
   in-process transport that reuses the same [netmodel] delay/drop
   distributions as the simulator, realised with real timers.

   Concurrency discipline. Each process owns two mutexes:

   - [rlock] serialises the process's fibers: a fiber holds it from start to
     exit, releasing it only while blocked in [sleep]/[work]/[recv]. Within
     one process this restores the simulator's cooperative interleaving —
     protocol state is only touched by one fiber at a time.
   - [mlock] + [cond] protect the mailbox and the up/incarnation flags;
     deliveries, timer wake-ups and crash/recover signal [cond].

   Lock order is rlock -> mlock -> (t.lock | t.tlock); the leaf locks are
   never held while taking a proc lock.

   Crash semantics: [crash] flips [up], bumps the incarnation and clears the
   mailbox under [mlock] — it does not stop threads. Every effect checks
   aliveness and a dead fiber is discontinued with [Exit_fiber] at its next
   effect boundary (blocked fibers are woken and die immediately). A crashed
   process can thus execute a few more pure instructions than its simulated
   twin; it can no longer observe the runtime or send through it.

   What is lost relative to the simulator: determinism. Message arrival
   interleavings, the winner among same-class receivers, and timer firing
   order all depend on real scheduling, so live runs are for smoke/soak
   validation — correctness properties, not reproducible traces. *)

type blocked = Got_msg of message | Got_unit | Timed_out | Dead

type lproc = {
  pid : proc_id;
  pname : string;
  mutable up : bool;
  mutable inc : int;  (** incarnation; bumped by crash and recover *)
  mlock : Mutex.t;
  cond : Condition.t;
  mailbox : message Cq.t;
  rlock : Mutex.t;
  pmain : recovery:bool -> unit -> unit;
  psink : ER.obs_sink option;  (** per-process obs sink, built at spawn *)
}

type timer = { due : float;  (** wall clock, seconds *) tseq : int; action : unit -> unit }

type t = {
  lock : Mutex.t;  (** procs array, uids, msg ids, notes, net, rngs *)
  mutable procs : lproc array;
  mutable nprocs : int;
  mutable net : ER.netmodel;
  grng : Rng.t;
  net_rng : Rng.t;
  mutable next_uid : int;
  mutable next_msg_id : int;
  mutable notes_rev : (proc_id * string) list;
  mutable t0 : float;
  mutable started : bool;
  started_lock : Mutex.t;
  started_cond : Condition.t;
  timers : timer Heap.t;
  tlock : Mutex.t;
  mutable tseq : int;
  mutable stopped : bool;
  mutable failure : exn option;
  obs : Obs.Registry.t option;
      (** opt-in observability; [None] keeps every instrument site on the
          single-branch disabled path *)
}

let tick = 0.002 (* s; granularity of the timer thread and of [run_until] *)

let create ?(seed = 0xC0FFEE) ?(net = ER.default_net) ?obs () =
  let grng = Rng.create ~seed in
  {
    lock = Mutex.create ();
    procs = [||];
    nprocs = 0;
    net;
    grng;
    net_rng = Rng.split grng;
    (* same floor as the simulator: uids stay disjoint from try counters *)
    next_uid = 1000;
    next_msg_id = 0;
    notes_rev = [];
    t0 = 0.;
    started = false;
    started_lock = Mutex.create ();
    started_cond = Condition.create ();
    timers =
      Heap.create
        ~leq:(fun a b -> a.due < b.due || (a.due = b.due && a.tseq <= b.tseq))
        ();
    tlock = Mutex.create ();
    tseq = 0;
    stopped = false;
    failure = None;
    obs;
  }

let now_ms t = if t.started then (Unix.gettimeofday () -. t.t0) *. 1000. else 0.

let obs_registry t = t.obs

(* Registry sink bound to a node name, on this run's wall clock. *)
let obs_sink_for t node =
  Option.map
    (fun reg -> Obs.Registry.sink reg ~node ~now:(fun () -> now_ms t))
    t.obs

let obs_incr t node name =
  match t.obs with
  | None -> ()
  | Some reg -> Obs.Registry.incr reg ~node ~name 1

let obs_event t node name detail =
  match t.obs with
  | None -> ()
  | Some reg ->
      Obs.Registry.event reg ~node ~at:(now_ms t) ~trace:0 ~name detail

let proc_of t pid =
  Mutex.lock t.lock;
  let n = t.nprocs in
  let p = if pid >= 0 && pid < n then Some t.procs.(pid) else None in
  Mutex.unlock t.lock;
  match p with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Runtime_live: unknown process %d" pid)

let name_of t pid = (proc_of t pid).pname
let is_up t pid = (proc_of t pid).up

let record_failure t e =
  Mutex.lock t.lock;
  (match t.failure with None -> t.failure <- Some e | Some _ -> ());
  Mutex.unlock t.lock

(* Timers --------------------------------------------------------------- *)

let push_timer t ~due action =
  Mutex.lock t.tlock;
  t.tseq <- t.tseq + 1;
  Heap.push t.timers { due; tseq = t.tseq; action };
  Mutex.unlock t.tlock

let push_timer_ms t ~after_ms action =
  push_timer t ~due:(Unix.gettimeofday () +. (Float.max 0. after_ms /. 1000.)) action

let rec timer_loop t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.tlock;
  let stop = t.stopped in
  let rec drain acc =
    match Heap.peek t.timers with
    | Some tm when tm.due <= now ->
        ignore (Heap.pop t.timers);
        drain (tm.action :: acc)
    | _ -> acc
  in
  let actions = drain [] in
  Mutex.unlock t.tlock;
  (* fire outside tlock: actions take proc mlocks *)
  List.iter (fun a -> a ()) (List.rev actions);
  if not stop then begin
    Thread.delay tick;
    timer_loop t
  end

(* Start barrier: spawned fibers wait here so that, as in the simulator,
   nothing executes before the run is driven. *)

let wait_started t =
  Mutex.lock t.started_lock;
  while not t.started do
    Condition.wait t.started_cond t.started_lock
  done;
  Mutex.unlock t.started_lock

let start t =
  Mutex.lock t.started_lock;
  if not t.started then begin
    t.t0 <- Unix.gettimeofday ();
    t.started <- true;
    Condition.broadcast t.started_cond;
    ignore (Thread.create timer_loop t)
  end;
  Mutex.unlock t.started_lock

(* Transport ------------------------------------------------------------ *)

let deliver t dst m =
  match proc_of t dst with
  | exception Invalid_argument _ -> ()
  | p ->
      Mutex.lock p.mlock;
      let was_up = p.up in
      if p.up then begin
        ignore (Cq.push p.mailbox ~cls:(ER.classify m.payload) m);
        Condition.broadcast p.cond
      end;
      (* down: silently dropped, as in the simulator's dead-letter path *)
      Mutex.unlock p.mlock;
      if t.obs <> None then begin
        let cn = ER.class_name (ER.classify m.payload) in
        obs_incr t p.pname
          ((if was_up then "net.recv." else "net.dead_letter.") ^ cn)
      end

let transmit t ~src ~dst payload =
  Mutex.lock t.lock;
  t.next_msg_id <- t.next_msg_id + 1;
  let msg_id = t.next_msg_id in
  let delays =
    if src = dst then [ 0.001 ] else t.net t.net_rng ~src ~dst
  in
  Mutex.unlock t.lock;
  let m = { src; dst; payload; msg_id; sent_at = now_ms t } in
  if t.obs <> None then begin
    let cn = ER.class_name (ER.classify payload) in
    let sname = (proc_of t src).pname in
    match delays with
    | [] -> obs_incr t sname ("net.dropped." ^ cn)
    | ds -> List.iter (fun _ -> obs_incr t sname ("net.sent." ^ cn)) ds
  end;
  (* [] means the network dropped every copy *)
  List.iter (fun d -> push_timer_ms t ~after_ms:d (fun () -> deliver t dst m)) delays

(* Fibers --------------------------------------------------------------- *)

let alive t p inc = (not t.stopped) && p.up && p.inc = inc

(* Block the calling fiber until [ready] yields, the deadline passes, or the
   process dies. Releases [rlock] for the duration so sibling fibers run. *)
let block t p inc ?deadline ~ready () =
  Mutex.unlock p.rlock;
  Mutex.lock p.mlock;
  let rec wait () =
    if not (alive t p inc) then Dead
    else
      match ready () with
      | Some r -> r
      | None -> (
          match deadline with
          | Some dw when Unix.gettimeofday () >= dw -> Timed_out
          | _ ->
              Condition.wait p.cond p.mlock;
              wait ())
  in
  let r = wait () in
  Mutex.unlock p.mlock;
  Mutex.lock p.rlock;
  if alive t p inc then r else Dead

let wake p () =
  Mutex.lock p.mlock;
  Condition.broadcast p.cond;
  Mutex.unlock p.mlock

let rec handler t p inc : (unit, unit) Effect.Deep.handler =
  let open Effect.Deep in
  let take cls filter () =
    match (cls, filter) with
    | Some c, None -> Cq.pop_cls p.mailbox c
    | Some c, Some f -> Cq.take_first_in_cls p.mailbox c f
    | None, Some f -> Cq.take_first p.mailbox f
    | None, None -> Cq.pop p.mailbox
  in
  let pause k d =
    (* sleep and work are the same thing on a wall clock *)
    let fired = ref false in
    push_timer_ms t ~after_ms:d (fun () ->
        Mutex.lock p.mlock;
        fired := true;
        Condition.broadcast p.cond;
        Mutex.unlock p.mlock);
    let ready () = if !fired then Some Got_unit else None in
    match block t p inc ~ready () with
    | Dead -> discontinue k ER.Exit_fiber
    | _ -> continue k ()
  in
  {
    retc = (fun () -> ());
    exnc =
      (fun e ->
        match e with
        | ER.Exit_fiber -> ()
        | e ->
            (* a protocol bug: park it for [run_until] to re-raise *)
            record_failure t e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        let guarded (f : (a, unit) continuation -> unit) =
          Some
            (fun (k : (a, unit) continuation) ->
              if alive t p inc then f k else discontinue k ER.Exit_fiber)
        in
        match eff with
        | ER.E_now -> guarded (fun k -> continue k (now_ms t))
        | ER.E_self -> guarded (fun k -> continue k p.pid)
        | ER.E_random_float bound ->
            guarded (fun k ->
                Mutex.lock t.lock;
                let v = Rng.float t.grng bound in
                Mutex.unlock t.lock;
                continue k v)
        | ER.E_random_int bound ->
            guarded (fun k ->
                Mutex.lock t.lock;
                let v = Rng.int t.grng bound in
                Mutex.unlock t.lock;
                continue k v)
        | ER.E_fresh_uid ->
            guarded (fun k ->
                Mutex.lock t.lock;
                t.next_uid <- t.next_uid + 1;
                let v = t.next_uid in
                Mutex.unlock t.lock;
                continue k v)
        | ER.E_obs -> guarded (fun k -> continue k p.psink)
        | ER.E_note s ->
            guarded (fun k ->
                Mutex.lock t.lock;
                t.notes_rev <- (p.pid, s) :: t.notes_rev;
                Mutex.unlock t.lock;
                (match p.psink with
                | None -> ()
                | Some s' -> s'.ER.obs_event ~trace:0 "note" s);
                continue k ())
        | ER.E_sleep d -> guarded (fun k -> pause k d)
        | ER.E_work (label, d) ->
            guarded (fun k ->
                (match p.psink with
                | None -> ()
                | Some s -> s.ER.obs_observe ("work." ^ label) d);
                pause k d)
        | ER.E_send (dst, payload) ->
            guarded (fun k ->
                transmit t ~src:p.pid ~dst payload;
                continue k ())
        | ER.E_redeliver (src, payload) ->
            guarded (fun k ->
                Mutex.lock t.lock;
                t.next_msg_id <- t.next_msg_id + 1;
                let msg_id = t.next_msg_id in
                Mutex.unlock t.lock;
                let m =
                  { src; dst = p.pid; payload; msg_id; sent_at = now_ms t }
                in
                Mutex.lock p.mlock;
                ignore (Cq.push p.mailbox ~cls:(ER.classify payload) m);
                Condition.broadcast p.cond;
                Mutex.unlock p.mlock;
                continue k ())
        | ER.E_recv (cls, filter, timeout) ->
            guarded (fun k ->
                Mutex.lock p.mlock;
                let first = take cls filter () in
                Mutex.unlock p.mlock;
                match first with
                | Some m -> continue k (Some m)
                | None -> (
                    let deadline =
                      Option.map
                        (fun d -> Unix.gettimeofday () +. (d /. 1000.))
                        timeout
                    in
                    (match deadline with
                    | Some dw -> push_timer t ~due:dw (wake p)
                    | None -> ());
                    let ready () =
                      Option.map (fun m -> Got_msg m) (take cls filter ())
                    in
                    match block t p inc ?deadline ~ready () with
                    | Got_msg m -> continue k (Some m)
                    | Timed_out -> continue k None
                    | Dead | Got_unit -> discontinue k ER.Exit_fiber))
        | ER.E_fork (_fname, f) ->
            guarded (fun k ->
                ignore (Thread.create (fun () -> run_fiber t p inc f) ());
                continue k ())
        | _ -> None);
  }

and run_fiber t p inc f =
  Mutex.lock p.rlock;
  if alive t p inc then Effect.Deep.match_with f () (handler t p inc);
  Mutex.unlock p.rlock

(* Orchestration -------------------------------------------------------- *)

let spawn t ~name ~main =
  let p =
    Mutex.lock t.lock;
    let pid = t.nprocs in
    let p =
      {
        pid;
        pname = name;
        up = true;
        inc = 0;
        mlock = Mutex.create ();
        cond = Condition.create ();
        mailbox = Cq.create ();
        rlock = Mutex.create ();
        pmain = main;
        psink = obs_sink_for t name;
      }
    in
    let capacity = Array.length t.procs in
    if t.nprocs = capacity then begin
      let procs' = Array.make (max 8 (capacity * 2)) p in
      Array.blit t.procs 0 procs' 0 t.nprocs;
      t.procs <- procs'
    end;
    t.procs.(t.nprocs) <- p;
    t.nprocs <- t.nprocs + 1;
    Mutex.unlock t.lock;
    p
  in
  ignore
    (Thread.create
       (fun () ->
         wait_started t;
         run_fiber t p 0 (main ~recovery:false))
       ());
  p.pid

let crash t pid =
  let p = proc_of t pid in
  Mutex.lock p.mlock;
  let crashed = p.up in
  if p.up then begin
    p.up <- false;
    p.inc <- p.inc + 1;
    Cq.clear p.mailbox;
    Condition.broadcast p.cond
  end;
  Mutex.unlock p.mlock;
  if crashed then obs_event t p.pname "crash" ""

let recover t pid =
  let p = proc_of t pid in
  Mutex.lock p.mlock;
  if not p.up then begin
    p.up <- true;
    p.inc <- p.inc + 1;
    Cq.clear p.mailbox;
    let inc = p.inc in
    Mutex.unlock p.mlock;
    obs_event t p.pname "recover" "";
    ignore
      (Thread.create
         (fun () ->
           wait_started t;
           run_fiber t p inc (p.pmain ~recovery:true))
         ())
  end
  else Mutex.unlock p.mlock

let set_net t net =
  Mutex.lock t.lock;
  t.net <- net;
  Mutex.unlock t.lock

let notes t =
  Mutex.lock t.lock;
  let ns = t.notes_rev in
  Mutex.unlock t.lock;
  List.rev ns

let run_until ?deadline t pred =
  start t;
  let deadline_wall = Option.map (fun d -> t.t0 +. (d /. 1000.)) deadline in
  let rec loop () =
    (match t.failure with Some e -> raise e | None -> ());
    if pred () then true
    else
      match deadline_wall with
      | Some dw when Unix.gettimeofday () > dw -> pred ()
      | _ ->
          Thread.delay tick;
          loop ()
  in
  loop ()

let shutdown t =
  t.stopped <- true;
  (* release the barrier so never-started fibers can exit too *)
  Mutex.lock t.started_lock;
  if not t.started then begin
    t.t0 <- Unix.gettimeofday ();
    t.started <- true
  end;
  Condition.broadcast t.started_cond;
  Mutex.unlock t.started_lock;
  Mutex.lock t.lock;
  let ps = Array.sub t.procs 0 t.nprocs in
  Mutex.unlock t.lock;
  Array.iter (fun p -> wake p ()) ps

let runtime t =
  {
    ER.backend = "live";
    spawn = (fun ~name ~main -> spawn t ~name ~main);
    is_up = (fun pid -> is_up t pid);
    name_of = (fun pid -> name_of t pid);
    crash = (fun pid -> crash t pid);
    recover = (fun pid -> recover t pid);
    set_net = (fun net -> set_net t net);
    run_until = (fun ?deadline pred -> run_until ?deadline t pred);
    notes = (fun () -> notes t);
    obs = Option.map (fun reg node -> Obs.Registry.sink reg ~node ~now:(fun () -> now_ms t)) t.obs;
  }
