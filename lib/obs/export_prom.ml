(* Prometheus text exposition (text/plain version 0.0.4) of a registry
   snapshot. Metric names are mangled "client.committed" ->
   "etx_client_committed"; the (group, node) key becomes labels. Output is
   deterministically ordered (registry snapshots are sorted, histogram
   buckets ascending), so dumps diff cleanly across runs.

   [counter_values] is the inverse for exactly the sample lines this module
   emits — enough for the CI smoke to re-parse its own dump and cross-check
   counters against the protocol's Spec records. *)

let mangle name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  "etx_" ^ Bytes.to_string b

let labels (k : Registry.key) =
  Printf.sprintf "{group=\"%d\",node=\"%s\"}" k.group k.node

let labels_le (k : Registry.key) le =
  Printf.sprintf "{group=\"%d\",node=\"%s\",le=\"%s\"}" k.group k.node le

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Group a name-sorted (key, value) snapshot by metric name, preserving
   order, so each metric gets one TYPE line ahead of its samples. *)
let grouped bindings =
  List.fold_left
    (fun acc ((k : Registry.key), v) ->
      match acc with
      | (name, rows) :: rest when name = k.name ->
          (name, (k, v) :: rows) :: rest
      | _ -> (k.name, [ (k, v) ]) :: acc)
    [] bindings
  |> List.rev_map (fun (name, rows) -> (name, List.rev rows))

let to_string reg =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, rows) ->
      let m = mangle name in
      addf "# TYPE %s counter\n" m;
      List.iter (fun (k, v) -> addf "%s%s %d\n" m (labels k) v) rows)
    (grouped (Registry.counters reg));
  List.iter
    (fun (name, rows) ->
      let m = mangle name in
      addf "# TYPE %s gauge\n" m;
      List.iter (fun (k, v) -> addf "%s%s %s\n" m (labels k) (float_str v)) rows)
    (grouped (Registry.gauges reg));
  List.iter
    (fun (name, rows) ->
      let m = mangle name in
      addf "# TYPE %s histogram\n" m;
      List.iter
        (fun (k, h) ->
          (* Cumulative buckets: the zero bucket folds into every "le". *)
          let cum = ref (Histogram.zero_count h) in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              addf "%s_bucket%s %d\n" m
                (labels_le k (float_str (Histogram.upper_bound i)))
                !cum)
            (Histogram.to_sorted h);
          addf "%s_bucket%s %d\n" m (labels_le k "+Inf") (Histogram.count h);
          addf "%s_sum%s %s\n" m (labels k) (float_str (Histogram.sum h));
          addf "%s_count%s %d\n" m (labels k) (Histogram.count h))
        rows)
    (grouped (Registry.histograms reg));
  Buffer.contents buf

(* Parse back the sample values of one metric from a dump produced by
   [to_string]: lines "name{...} v" or "name v". Minimal by design. *)
let counter_values dump ~metric =
  String.split_on_char '\n' dump
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           let name_end =
             match String.index_opt line '{' with
             | Some i -> i
             | None -> ( match String.index_opt line ' ' with
                         | Some i -> i
                         | None -> String.length line)
           in
           if String.sub line 0 name_end <> metric then None
           else
             match String.rindex_opt line ' ' with
             | None -> None
             | Some i ->
                 float_of_string_opt
                   (String.sub line (i + 1) (String.length line - i - 1)))
