(** JSON export of a registry snapshot (schema ["etx-obs/1"]), built on
    [Stats.Json] like the other machine-readable artefacts. *)

val schema : string

val to_json : ?spans:bool -> Registry.t -> Stats.Json.t
(** Counters, gauges and histogram summaries (count/sum/min/max/mean,
    p50/p95/p99, sparse buckets). With [spans:true] the span and event
    stores are included too; an open span exports [stop = null]. *)

val to_string : ?spans:bool -> ?indent:int -> Registry.t -> string
