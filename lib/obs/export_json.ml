(* JSON export of a registry snapshot, built on the same [Stats.Json]
   value type as the bench and live-smoke artefacts so downstream tooling
   parses one format. Schema "etx-obs/1". Spans/events are included only on
   request — metric dumps stay small even for traced runs. *)

module J = Stats.Json

let schema = "etx-obs/1"

let key_fields (k : Registry.key) =
  [ ("group", J.Int k.group); ("name", J.String k.name); ("node", J.String k.node) ]

let hist_json h =
  let opt f = match f h with Some v -> J.Float v | None -> J.Null in
  let q p = match Histogram.quantile h p with Some v -> J.Float v | None -> J.Null in
  J.Obj
    [
      ("count", J.Int (Histogram.count h));
      ("sum", J.Float (Histogram.sum h));
      ("min", opt Histogram.min_value);
      ("max", opt Histogram.max_value);
      ("mean", opt Histogram.mean);
      ("p50", q 0.5);
      ("p95", q 0.95);
      ("p99", q 0.99);
      ("zero", J.Int (Histogram.zero_count h));
      ( "buckets",
        J.List
          (List.map
             (fun (i, c) -> J.List [ J.Int i; J.Int c ])
             (Histogram.to_sorted h)) );
    ]

let span_json (s : Span.t) =
  J.Obj
    [
      ("id", J.Int s.id);
      ("trace", J.Int s.trace);
      ("parent", J.Int s.parent);
      ("name", J.String s.name);
      ("node", J.String s.node);
      ("start", J.Float s.start);
      ("stop", if Span.closed s then J.Float s.stop else J.Null);
      ("attrs", J.Obj (List.map (fun (k, v) -> (k, J.String v)) (List.rev s.attrs)));
    ]

let event_json (e : Span.event) =
  J.Obj
    [
      ("trace", J.Int e.etrace);
      ("node", J.String e.enode);
      ("name", J.String e.ename);
      ("at", J.Float e.eat);
      ("detail", J.String e.detail);
    ]

let to_json ?(spans = false) reg =
  let base =
    [
      ("schema", J.String schema);
      ( "counters",
        J.List
          (List.map
             (fun (k, v) -> J.Obj (key_fields k @ [ ("value", J.Int v) ]))
             (Registry.counters reg)) );
      ( "gauges",
        J.List
          (List.map
             (fun (k, v) -> J.Obj (key_fields k @ [ ("value", J.Float v) ]))
             (Registry.gauges reg)) );
      ( "histograms",
        J.List
          (List.map
             (fun (k, h) -> J.Obj (key_fields k @ [ ("hist", hist_json h) ]))
             (Registry.histograms reg)) );
    ]
  in
  let traced =
    if not spans then []
    else
      [
        ("spans", J.List (List.map span_json (Registry.spans reg)));
        ("events", J.List (List.map event_json (Registry.events reg)));
      ]
  in
  J.Obj (base @ traced)

let to_string ?spans ?indent reg = J.to_string ?indent (to_json ?spans reg)
