(** Log-bucketed latency histogram with mergeable state and bounded-error
    quantiles.

    Buckets are geometric: bucket [i] holds values in
    [gamma^i, gamma^(i+1)) with gamma = 2^(1/8). Quantile estimates return
    the geometric midpoint of the bucket holding the requested rank, so
    their relative error is bounded by {!quantile_error} (~4.4%).
    {!merge} adds bucket counts pointwise; it is associative and
    commutative, so per-node or per-trial histograms can be combined in any
    order (property-tested in [test/test_obs.ml]). *)

type t

val gamma : float
(** Bucket growth factor, 2^(1/8). *)

val quantile_error : float
(** Relative error bound of {!quantile}: sqrt(gamma) - 1. *)

val create : unit -> t
val observe : t -> float -> unit
(** Record one observation. Values <= 0 land in a dedicated zero bucket. *)

val count : t -> int
val sum : t -> float
val min_value : t -> float option
val max_value : t -> float option
val mean : t -> float option

val quantile : t -> float -> float option
(** [quantile t q] estimates the q-quantile (q clamped to [0,1]); [None]
    iff the histogram is empty. The estimate's relative error is bounded by
    {!quantile_error} for positive observations; the zero bucket estimates
    as [0.]. *)

val merge : t -> t -> t
(** Pointwise sum; does not mutate either argument. *)

val copy : t -> t

val to_sorted : t -> (int * int) list
(** Sorted (bucket index, count) pairs, positive buckets only — the
    canonical form used by exporters and equality checks. *)

val zero_count : t -> int
val bucket_of : float -> int
val upper_bound : int -> float
(** Exclusive upper edge of a bucket, for Prometheus "le" labels. *)

val midpoint : int -> float
