(* Causal request tracing. A span is one timed phase of one request's
   life (the client's whole request, a server's try, the election inside
   it, a cleaner take-over, ...) on one node; spans carrying the same
   [trace] id (the request's rid) form one tree per request, stitched
   across nodes by the parent ids propagated in message payloads. A span
   whose owner crashed mid-phase simply never closes ([stop] stays NaN) —
   exactly the information a fail-over post-mortem needs. Point events
   ([event]) annotate a trace without a duration (consensus round marks,
   notes, crash/recover edges bridged from the simulator's trace). *)

type t = {
  id : int;
  trace : int;  (** request id; 0 groups backend-lifecycle spans *)
  parent : int;  (** parent span id, 0 = root *)
  name : string;
  node : string;
  start : float;
  mutable stop : float;  (** NaN while open *)
  mutable attrs : (string * string) list;
}

type event = {
  etrace : int;
  enode : string;
  ename : string;
  eat : float;
  detail : string;
}

let closed s = not (Float.is_nan s.stop)
let duration s = if closed s then Some (s.stop -. s.start) else None
let attr s k = List.assoc_opt k s.attrs

type tree = { span : t; children : tree list }

(* Spans of one trace as a forest: children attach to their parent when it
   exists in the same trace; spans with no (or an unknown) parent become
   roots. Siblings and roots are ordered by start time, then id, so the
   layout is deterministic. *)
let forest spans ~trace =
  let mine = List.filter (fun s -> s.trace = trace) spans in
  let ids = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace ids s.id ()) mine;
  let order a b =
    match compare a.start b.start with 0 -> compare a.id b.id | c -> c
  in
  let children_of id =
    List.filter (fun s -> s.parent = id) mine |> List.sort order
  in
  let rec build s = { span = s; children = List.map build (children_of s.id) }
  in
  List.filter (fun s -> s.parent = 0 || not (Hashtbl.mem ids s.parent)) mine
  |> List.sort order |> List.map build

let rec tree_size t = 1 + List.fold_left (fun a c -> a + tree_size c) 0 t.children

let find spans ~trace ~name =
  List.filter (fun s -> s.trace = trace && s.name = name) spans

(* Indented one-line-per-span rendering of a trace, for demos and docs. *)
let pp_forest ppf forest =
  let rec pp indent { span = s; children } =
    Format.fprintf ppf "%s%s@%s [%.1f..%s]%s@."
      (String.make (2 * indent) ' ')
      s.name s.node s.start
      (if closed s then Printf.sprintf "%.1f" s.stop else "open")
      (match s.attrs with
      | [] -> ""
      | attrs ->
          " "
          ^ String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs));
    List.iter (pp (indent + 1)) children
  in
  List.iter (pp 0) forest
