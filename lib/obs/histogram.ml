(* Log-bucketed latency histogram. Bucket [i] covers the half-open value
   range [gamma^i, gamma^(i+1)); with gamma = 2^(1/8) the geometric midpoint
   of a bucket is within sqrt(gamma) - 1 (about 4.4%) of any value the
   bucket holds, which bounds the relative error of every quantile estimate.
   Buckets are sparse (a hash table keyed by index), so the memory cost is
   proportional to the dynamic range actually observed, not to its bounds.
   Merging is pointwise addition of bucket counts — associative and
   commutative, so snapshots from independent nodes or trials can be
   combined in any order. *)

let gamma = Float.exp (Float.log 2. /. 8.)
let log_gamma = Float.log gamma

(* Relative error bound of [quantile]: estimates are geometric bucket
   midpoints, so |estimate - true| / true <= sqrt(gamma) - 1. *)
let quantile_error = Float.sqrt gamma -. 1.

type t = {
  mutable zero : int;  (** observations <= 0 (e.g. sub-clock-tick latencies) *)
  buckets : (int, int) Hashtbl.t;
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  {
    zero = 0;
    buckets = Hashtbl.create 16;
    total = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let bucket_of v = int_of_float (Float.floor (Float.log v /. log_gamma))

(* Value range of bucket [i]; exposed for exporters ("le" bounds). *)
let upper_bound i = Float.exp (float_of_int (i + 1) *. log_gamma)
let midpoint i = Float.exp ((float_of_int i +. 0.5) *. log_gamma)

let observe t v =
  if v <= 0. then t.zero <- t.zero + 1
  else begin
    let i = bucket_of v in
    let c = Option.value ~default:0 (Hashtbl.find_opt t.buckets i) in
    Hashtbl.replace t.buckets i (c + 1)
  end;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.total
let sum t = t.sum
let min_value t = if t.total = 0 then None else Some t.vmin
let max_value t = if t.total = 0 then None else Some t.vmax
let mean t = if t.total = 0 then None else Some (t.sum /. float_of_int t.total)

(* Sorted (bucket index, count) pairs, ascending; the zero bucket is not
   included (read [t.zero] via [zero_count]). Canonical form for equality
   checks and exporters. *)
let to_sorted t =
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let zero_count t = t.zero

let copy t =
  {
    zero = t.zero;
    buckets = Hashtbl.copy t.buckets;
    total = t.total;
    sum = t.sum;
    vmin = t.vmin;
    vmax = t.vmax;
  }

let merge a b =
  let m = copy a in
  m.zero <- m.zero + b.zero;
  Hashtbl.iter
    (fun i c ->
      let c0 = Option.value ~default:0 (Hashtbl.find_opt m.buckets i) in
      Hashtbl.replace m.buckets i (c0 + c))
    b.buckets;
  m.total <- m.total + b.total;
  m.sum <- m.sum +. b.sum;
  if b.vmin < m.vmin then m.vmin <- b.vmin;
  if b.vmax > m.vmax then m.vmax <- b.vmax;
  m

(* Bounded-error quantile: find the bucket holding the rank-q observation
   and return its geometric midpoint. q is clamped to [0, 1]. *)
let quantile t q =
  if t.total = 0 then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.total)))
    in
    if rank <= t.zero then Some 0.
    else begin
      let remaining = ref (rank - t.zero) in
      let result = ref None in
      List.iter
        (fun (i, c) ->
          if !result = None then begin
            remaining := !remaining - c;
            if !remaining <= 0 then result := Some (midpoint i)
          end)
        (to_sorted t);
      match !result with
      | Some _ as r -> r
      | None -> Some t.vmax (* rank beyond recorded buckets: numeric edge *)
    end
  end
