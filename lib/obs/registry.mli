(** Per-node metrics registry and span store.

    One registry covers one backend instance (all of its nodes). Metrics
    are keyed by [(group, node, name)] — the replica group is parsed from
    the node name ("g2:a1" -> group 2), so per-shard aggregation works
    without extra plumbing. Fibers reach the registry through the neutral
    {!Runtime.Etx_runtime.obs_sink} record built by {!sink}; protocol code
    never sees this module directly. *)

type key = { group : int; node : string; name : string }

type t

val create : ?spans:bool -> unit -> t
(** [spans:false] records metrics only: span/event calls become no-ops
    (the "metrics" mode of the obs-overhead benchmark). *)

val spans_enabled : t -> bool
val group_of_node : string -> int

(** {2 Mutation} (thread-safe; normally reached via {!sink}) *)

val incr : t -> node:string -> name:string -> int -> unit
val set_gauge : t -> node:string -> name:string -> float -> unit
val observe : t -> node:string -> name:string -> float -> unit

val span_open :
  t -> node:string -> at:float -> ?parent:int -> trace:int -> string -> int
(** Returns the new span id (0 when spans are disabled). *)

val span_close : t -> at:float -> int -> unit
(** Idempotent; closing span 0 or an already-closed span is a no-op. *)

val span_attr : t -> int -> string -> string -> unit
(** First write of a key wins (a crashed owner's attrs survive take-over). *)

val event :
  t -> node:string -> at:float -> trace:int -> name:string -> string -> unit

(** {2 Snapshots} (deterministically sorted by name, group, node) *)

val counters : t -> (key * int) list
val gauges : t -> (key * float) list
val histograms : t -> (key * Histogram.t) list
val spans : t -> Span.t list
val events : t -> Span.event list

val counter_total : ?group:int -> t -> string -> int
(** Sum of a counter over all nodes (optionally one group). *)

val counter_value : t -> node:string -> name:string -> int
val histogram : t -> node:string -> name:string -> Histogram.t option
val merged_histogram : ?group:int -> t -> string -> Histogram.t option

(** {2 Fiber-side sink} *)

val sink :
  t -> node:string -> now:(unit -> float) -> Runtime.Etx_runtime.obs_sink
(** Bind the registry to one node and a backend clock; backends answer the
    [E_obs] effect with this. *)
