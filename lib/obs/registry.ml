(* Per-node metrics registry: counters, gauges and log-bucketed histograms
   keyed by (group, node, name), plus the span/event store backing causal
   request tracing. One registry instance covers one backend instance (all
   its nodes), so a whole trial — sim or live — exports as one snapshot.

   The replica group is parsed from the node name ("g2:a1" -> group 2,
   ungrouped names -> group 0), matching the cluster's naming scheme, so
   per-shard aggregation needs no extra plumbing.

   Thread-safety: all mutation goes through one mutex. On the simulator
   backend the lock is uncontended (single-threaded engine); on the live
   backend it serialises the OS-thread fibers. The cost only exists when a
   registry was opted in — disabled observability never reaches this
   module (see the zero-cost argument in DESIGN.md §10). *)

module ER = Runtime.Etx_runtime

type key = { group : int; node : string; name : string }

let group_of_node node =
  if String.length node >= 2 && node.[0] = 'g' then
    match String.index_opt node ':' with
    | Some i -> (
        match int_of_string_opt (String.sub node 1 (i - 1)) with
        | Some g -> g
        | None -> 0)
    | None -> 0
  else 0

let key ~node ~name = { group = group_of_node node; node; name }

type t = {
  lock : Mutex.t;
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  hists : (key, Histogram.t) Hashtbl.t;
  mutable spans_rev : Span.t list;
  by_id : (int, Span.t) Hashtbl.t;
  mutable events_rev : Span.event list;
  mutable next_span : int;
  spans_on : bool;  (** when false, span/event calls are no-ops *)
}

let create ?(spans = true) () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 32;
    spans_rev = [];
    by_id = Hashtbl.create 256;
    events_rev = [];
    next_span = 0;
    spans_on = spans;
  }

let spans_enabled t = t.spans_on

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Metrics ------------------------------------------------------------- *)

let incr t ~node ~name by =
  locked t (fun () ->
      let k = key ~node ~name in
      match Hashtbl.find_opt t.counters k with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters k (ref by))

let set_gauge t ~node ~name v =
  locked t (fun () ->
      let k = key ~node ~name in
      match Hashtbl.find_opt t.gauges k with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges k (ref v))

let observe t ~node ~name v =
  locked t (fun () ->
      let k = key ~node ~name in
      let h =
        match Hashtbl.find_opt t.hists k with
        | Some h -> h
        | None ->
            let h = Histogram.create () in
            Hashtbl.replace t.hists k h;
            h
      in
      Histogram.observe h v)

(* Spans and events ---------------------------------------------------- *)

let span_open t ~node ~at ?(parent = 0) ~trace name =
  if not t.spans_on then 0
  else
    locked t (fun () ->
        t.next_span <- t.next_span + 1;
        let s =
          {
            Span.id = t.next_span;
            trace;
            parent;
            name;
            node;
            start = at;
            stop = Float.nan;
            attrs = [];
          }
        in
        t.spans_rev <- s :: t.spans_rev;
        Hashtbl.replace t.by_id s.id s;
        s.id)

let span_close t ~at id =
  if t.spans_on && id <> 0 then
    locked t (fun () ->
        match Hashtbl.find_opt t.by_id id with
        | Some s when Float.is_nan s.stop -> s.stop <- at
        | Some _ | None -> ())

let span_attr t id k v =
  if t.spans_on && id <> 0 then
    locked t (fun () ->
        match Hashtbl.find_opt t.by_id id with
        | Some s -> if not (List.mem_assoc k s.attrs) then s.attrs <- (k, v) :: s.attrs
        | None -> ())

let event t ~node ~at ~trace ~name detail =
  if t.spans_on then
    locked t (fun () ->
        t.events_rev <- { Span.etrace = trace; enode = node; ename = name; eat = at; detail } :: t.events_rev)

(* Read side ----------------------------------------------------------- *)

let key_order a b =
  match compare a.name b.name with
  | 0 -> (
      match compare a.group b.group with
      | 0 -> compare a.node b.node
      | c -> c)
  | c -> c

let sorted_bindings tbl read =
  Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> key_order a b)

let counters t = locked t (fun () -> sorted_bindings t.counters (fun r -> !r))
let gauges t = locked t (fun () -> sorted_bindings t.gauges (fun r -> !r))
let histograms t = locked t (fun () -> sorted_bindings t.hists Histogram.copy)
let spans t = locked t (fun () -> List.rev t.spans_rev)
let events t = locked t (fun () -> List.rev t.events_rev)

let counter_total ?group t name =
  List.fold_left
    (fun acc (k, v) ->
      if
        k.name = name
        && match group with None -> true | Some g -> k.group = g
      then acc + v
      else acc)
    0 (counters t)

let counter_value t ~node ~name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters (key ~node ~name) with
      | Some r -> !r
      | None -> 0)

let histogram t ~node ~name =
  locked t (fun () ->
      Option.map Histogram.copy (Hashtbl.find_opt t.hists (key ~node ~name)))

let merged_histogram ?group t name =
  let hs =
    List.filter_map
      (fun (k, h) ->
        if
          k.name = name
          && match group with None -> true | Some g -> k.group = g
        then Some h
        else None)
      (histograms t)
  in
  match hs with
  | [] -> None
  | h :: rest -> Some (List.fold_left Histogram.merge h rest)

(* Fiber-side sink ----------------------------------------------------- *)

(* Package the registry as the neutral closure record fibers obtain once
   through the [E_obs] effect. [node] is bound by the backend (the process
   the fiber belongs to), [now] is the backend's clock, so instrument sites
   never name a backend. *)
let sink t ~node ~now : ER.obs_sink =
  {
    ER.obs_count = (fun name by -> incr t ~node ~name by);
    obs_gauge = (fun name v -> set_gauge t ~node ~name v);
    obs_observe = (fun name v -> observe t ~node ~name v);
    obs_span_open =
      (fun ?parent ~trace name -> span_open t ~node ~at:(now ()) ?parent ~trace name);
    obs_span_close = (fun id -> span_close t ~at:(now ()) id);
    obs_span_attr = (fun id k v -> span_attr t id k v);
    obs_event =
      (fun ~trace name detail -> event t ~node ~at:(now ()) ~trace ~name detail);
  }
