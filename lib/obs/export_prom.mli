(** Prometheus text exposition (text/plain version 0.0.4) of a registry
    snapshot. Deterministically ordered, so dumps diff cleanly. *)

val mangle : string -> string
(** Metric-name mangling: ["client.committed"] -> ["etx_client_committed"]. *)

val to_string : Registry.t -> string
(** Counters, gauges, then histograms (cumulative [_bucket] series with
    geometric [le] bounds, [_sum], [_count]); one [# TYPE] line per metric;
    [(group, node)] as labels. *)

val counter_values : string -> metric:string -> float list
(** Sample values of one (mangled) metric name, re-parsed from a
    [to_string] dump — just enough for smoke tests to cross-check a dump
    against protocol ground truth. *)
