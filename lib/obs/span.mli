(** Causal request tracing: spans and point events.

    A span is one timed phase of one request on one node; all spans of a
    request share its rid as [trace] id and link through [parent] span ids
    (propagated across nodes in message payloads), forming one tree per
    request — including cleaner take-overs during fail-over. Spans are
    created through {!Registry}; this module holds the data model and the
    tree reconstruction. *)

type t = {
  id : int;
  trace : int;  (** request id; 0 groups backend-lifecycle spans *)
  parent : int;  (** parent span id, 0 = root *)
  name : string;
  node : string;
  start : float;
  mutable stop : float;  (** NaN while open (e.g. owner crashed mid-phase) *)
  mutable attrs : (string * string) list;
}

type event = {
  etrace : int;
  enode : string;
  ename : string;
  eat : float;
  detail : string;
}

val closed : t -> bool
val duration : t -> float option
(** [None] while the span is open. *)

val attr : t -> string -> string option

type tree = { span : t; children : tree list }

val forest : t list -> trace:int -> tree list
(** The trace's spans as parent-linked trees; spans with no (or an unknown)
    parent become roots. Deterministic order: start time, then id. *)

val tree_size : tree -> int
val find : t list -> trace:int -> name:string -> t list
val pp_forest : Format.formatter -> tree list -> unit
