open Runtime
module Rt = Etx_runtime

type Types.payload +=
  | Fd_heartbeat
  | Fd_wake  (** self-delivered poke: re-plan the coalesced monitor timer *)

let cls_hb =
  Rt.register_class ~name:"fd-heartbeat" (function
    | Fd_heartbeat -> true
    | _ -> false)

let cls_wake =
  Rt.register_class ~name:"fd-wake" (function
    | Fd_wake -> true
    | _ -> false)

type peer_state = {
  mutable last_heard : float;
  mutable timeout : float;
  mutable suspected : bool;
}

type hb = {
  period : float;
  bump : float;
  owner : Types.proc_id;
  peer_ids : Types.proc_id list;  (** broadcaster fan-out order *)
  states : peer_state option array;  (** indexed by pid; O(1) per lookup *)
  sink : Rt.obs_sink option;  (** fetched once at create; None = obs off *)
}

let count hb name =
  match hb.sink with None -> () | Some s -> s.Rt.obs_count name 1

type t = Heartbeat of hb | Oracle of Rt.t | Scripted of (Types.proc_id -> bool)

let heartbeat ?(period = 10.) ?(initial_timeout = 50.) ?(timeout_bump = 25.)
    ~peers () =
  let now = Rt.now () in
  let cap = 1 + List.fold_left max 0 peers in
  let states = Array.make cap None in
  List.iter
    (fun pid ->
      states.(pid) <-
        Some { last_heard = now; timeout = initial_timeout; suspected = false })
    peers;
  Heartbeat
    {
      period;
      bump = timeout_bump;
      owner = Rt.self ();
      peer_ids = peers;
      states;
      sink = Rt.obs ();
    }

let oracle engine = Oracle engine

let of_fun f = Scripted f

let state_of hb pid =
  if pid < 0 || pid >= Array.length hb.states then None else hb.states.(pid)

let broadcaster hb () =
  let self = Rt.self () in
  let rec loop () =
    List.iter
      (fun pid -> if pid <> self then Rt.send pid Fd_heartbeat)
      hb.peer_ids;
    Rt.sleep hb.period;
    loop ()
  in
  loop ()

let listener hb () =
  let rec loop () =
    match Rt.recv_cls cls_hb with
    | None -> ()
    | Some m ->
        (match state_of hb m.src with
        | None -> ()
        | Some st ->
            st.last_heard <- Rt.now ();
            if st.suspected then begin
              (* false suspicion: the ◇P adaptation rule. The cleared peer
                 re-enters the monitor's deadline computation, possibly
                 earlier than its current timer — poke it to re-plan. *)
              st.suspected <- false;
              st.timeout <- st.timeout +. hb.bump;
              count hb "fd.clears";
              Rt.redeliver ~src:hb.owner Fd_wake
            end);
        loop ()
  in
  loop ()

(* One coalesced timer instead of scanning every peer each half-period.
   Suspicions still happen on the same half-period tick grid (the [tick]
   cursor accumulates [period/2] exactly as the old sleep-per-tick loop
   did), but the monitor only wakes at ticks where some unsuspected peer's
   [last_heard + timeout] deadline can actually have expired — O(peers)
   work per deadline rather than per half-period. *)
let monitor hb () =
  let self = Rt.self () in
  let h = hb.period /. 2. in
  let tick = ref (Rt.now ()) in
  (* next unexamined grid point is [!tick +. h] *)
  let next_deadline () =
    let d = ref infinity in
    Array.iteri
      (fun pid st_opt ->
        match st_opt with
        | Some st when pid <> self && not st.suspected ->
            let dl = st.last_heard +. st.timeout in
            if dl < !d then d := dl
        | _ -> ())
      hb.states;
    !d
  in
  let rec loop () =
    let deadline = next_deadline () in
    if deadline = infinity then begin
      (* nothing to monitor until a suspicion is cleared *)
      ignore (Rt.recv_cls cls_wake);
      loop ()
    end
    else begin
      (* first grid point strictly past the deadline (suspicion uses
         [now -. last_heard > timeout], i.e. strict) *)
      let target = ref (!tick +. h) in
      while !target <= deadline do
        target := !target +. h
      done;
      let delay = !target -. Rt.now () in
      if delay > 0. then ignore (Rt.recv_cls ~timeout:delay cls_wake);
      let now = Rt.now () in
      if now >= !target then begin
        Array.iteri
          (fun pid st_opt ->
            match st_opt with
            | Some st
              when pid <> self
                   && (not st.suspected)
                   && now -. st.last_heard > st.timeout ->
                st.suspected <- true;
                count hb "fd.suspicions"
            | _ -> ())
          hb.states;
        tick := !target
      end;
      (* else: woken by a poke — re-plan from the unchanged cursor *)
      loop ()
    end
  in
  loop ()

let start = function
  | Oracle _ | Scripted _ -> ()
  | Heartbeat hb ->
      Rt.fork "fd-broadcast" (broadcaster hb);
      Rt.fork "fd-listen" (listener hb);
      Rt.fork "fd-monitor" (monitor hb)

let suspects t pid =
  match t with
  | Oracle engine -> not (engine.Rt.is_up pid)
  | Scripted f -> f pid
  | Heartbeat hb -> (
      match state_of hb pid with None -> false | Some st -> st.suspected)

let is_heartbeat = function Fd_heartbeat -> true | _ -> false

let current_timeout t pid =
  match t with
  | Oracle _ | Scripted _ -> None
  | Heartbeat hb -> (
      match state_of hb pid with None -> None | Some st -> Some st.timeout)
