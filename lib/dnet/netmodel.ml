open Runtime
module Rt = Etx_runtime

let constant d : Rt.netmodel = fun _rng ~src:_ ~dst:_ -> [ d ]

let uniform ~lo ~hi : Rt.netmodel =
 fun rng ~src:_ ~dst:_ -> [ lo +. Rng.float rng (hi -. lo) ]

let lan () = uniform ~lo:1.5 ~hi:2.5

let three_tier ~n_dbs () : Rt.netmodel =
 fun rng ~src ~dst ->
  if src < n_dbs || dst < n_dbs then [ 1.0 +. Rng.float rng 0.4 ]
  else [ 1.5 +. Rng.float rng 1.0 ]

let lossy ?(loss = 0.) ?(dup = 0.) base : Rt.netmodel =
 fun rng ~src ~dst ->
  if Rng.bool rng loss then []
  else
    let first = base rng ~src ~dst in
    if Rng.bool rng dup then first @ base rng ~src ~dst else first

type partition = { mutable isolated : Types.proc_id list }

let partitionable base =
  let p = { isolated = [] } in
  let model : Rt.netmodel =
   fun rng ~src ~dst ->
    if List.mem src p.isolated || List.mem dst p.isolated then []
    else base rng ~src ~dst
  in
  (p, model)

let isolate p pid = if not (List.mem pid p.isolated) then p.isolated <- pid :: p.isolated

let rejoin p pid = p.isolated <- List.filter (fun q -> q <> pid) p.isolated

let heal p = p.isolated <- []

let is_isolated p pid = List.mem pid p.isolated
