(** Reliable channel endpoints: retransmission + duplicate suppression.

    The paper assumes reliable channels with {e termination} (a message sent
    between two processes that stay up is eventually delivered) and
    {e integrity} (every message delivered at most once, and only if it was
    sent). In practice — the paper notes — "the abstraction of reliable
    channels is implemented by retransmitting messages and tracking
    duplicates"; this module is exactly that implementation.

    An endpoint lives inside one simulated process. Outgoing payloads get a
    per-destination sequence number and are retransmitted (with exponential
    back-off) until acknowledged; incoming data messages are acknowledged,
    deduplicated by [(source, sequence)] and handed to the owning process's
    mailbox via [Etx_runtime.redeliver], so protocol code above receives
    ordinary messages and stays oblivious to this layer.

    Endpoint state is volatile: it dies with the process, which is the
    correct semantics — a crashed process forgets what it sent, and the
    paper's protocols tolerate exactly that. *)

open Runtime

type t

val create :
  ?retransmit_after:float ->
  ?backoff_factor:float ->
  ?max_backoff:float ->
  unit ->
  t
(** Must be called from inside the owning fiber. Defaults: first
    retransmission after 10 ms, doubling up to 200 ms. *)

val start : t -> unit
(** Forks the receive-handler and retransmitter fibers. Call once, from the
    owning process, after [create]. *)

val send : t -> Types.proc_id -> Types.payload -> unit
(** Reliable send: at-least-once transmission, exactly-once delivery at a
    receiver endpoint while both processes stay up. Non-blocking. *)

val broadcast : t -> Types.proc_id list -> Types.payload -> unit

val pending : t -> int
(** Number of not-yet-acknowledged outgoing messages (for tests). *)

val inner_payload : Types.payload -> Types.payload option
(** [Some p] when the payload is a reliable-channel data frame carrying [p];
    [None] otherwise. Trace analyses use this to count protocol messages
    rather than channel frames. *)

val is_overhead : Types.payload -> bool
(** Channel bookkeeping (acks, kicks) that message-count analyses should
    ignore. *)
