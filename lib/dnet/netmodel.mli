(** Builders for engine network models (latency, loss, duplication,
    partitions).

    All distributions draw from the engine's dedicated network RNG stream, so
    workload randomness and fault randomness stay decorrelated. *)

open Runtime

val constant : float -> Etx_runtime.netmodel
(** Fixed one-way delivery delay. *)

val uniform : lo:float -> hi:float -> Etx_runtime.netmodel
(** One-way delay uniform in [\[lo, hi\]]. *)

val lan : unit -> Etx_runtime.netmodel
(** Calibrated to the paper's environment: an Orbix RPC round trip took
    3–5 ms on their 10 Mbit ethernet, so a one-way message costs
    1.5–2.5 ms. *)

val three_tier : n_dbs:int -> unit -> Etx_runtime.netmodel
(** The measurement topology: links that touch a database process (the
    first [n_dbs] pids by the deployment convention) are faster (1.0–1.4 ms
    one-way — the DB client library path) than the Orbix RPC links between
    clients and application servers ({!lan}). Calibrated so the Figure 8
    component rows land on the paper's values. *)

val lossy : ?loss:float -> ?dup:float -> Etx_runtime.netmodel -> Etx_runtime.netmodel
(** [lossy ~loss ~dup base] drops each message with probability [loss] and
    duplicates it with probability [dup] (second copy delayed by another
    draw of [base]). Defaults: [loss = 0.], [dup = 0.]. *)

type partition
(** Mutable partition controller: isolated processes can neither send nor
    receive across the cut. *)

val partitionable : Etx_runtime.netmodel -> partition * Etx_runtime.netmodel

val isolate : partition -> Types.proc_id -> unit
val rejoin : partition -> Types.proc_id -> unit
val heal : partition -> unit
val is_isolated : partition -> Types.proc_id -> bool
