(** Failure detectors.

    The paper requires an {e eventually perfect} (◇P) failure detector among
    application servers: {e completeness} — a crashed server is eventually
    permanently suspected by every server — and {e accuracy} — there is a
    time after which no correct server is suspected. {!heartbeat} implements
    the classic adaptive-timeout construction: suspect a peer when its
    heartbeat is overdue, and on a false suspicion (a message from a
    suspected peer arrives) raise that peer's timeout, so suspicions are
    eventually accurate under bounded-but-unknown delays.

    {!oracle} consults the engine's ground truth and is perfect by
    construction; the primary-backup comparison protocol requires it (the
    paper points out a false suspicion there leads to inconsistency), and
    tests use it to isolate protocol logic from detector quality. *)

open Runtime

type t

val heartbeat :
  ?period:float ->
  ?initial_timeout:float ->
  ?timeout_bump:float ->
  peers:Types.proc_id list ->
  unit ->
  t
(** Must be called from inside the owning fiber; monitors [peers]. Defaults:
    heartbeat every 10 ms, initial suspicion timeout 50 ms, bump +25 ms on
    each false suspicion. *)

val oracle : Etx_runtime.t -> t
(** Perfect detector reading the engine's process states. *)

val of_fun : (Types.proc_id -> bool) -> t
(** Scripted detector for tests: [suspects] delegates to the function. Used
    e.g. to inject a false suspicion deterministically and demonstrate why
    primary-backup needs perfect failure detection. *)

val start : t -> unit
(** Forks the broadcaster and monitor fibers (no-op for an oracle). *)

val suspects : t -> Types.proc_id -> bool
(** The paper's [suspect(a)] predicate, evaluated now. *)

val current_timeout : t -> Types.proc_id -> float option
(** The adaptive timeout for a peer (None for oracle detectors or unknown
    peers); exposed for tests of the adaptation rule. *)

val is_heartbeat : Types.payload -> bool
(** Detector traffic that message-count analyses should ignore. *)
