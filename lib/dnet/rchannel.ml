open Runtime
module Rt = Etx_runtime

(* [rc_ep] identifies the sending endpoint incarnation: a process that
   crashes and recovers gets a fresh endpoint whose sequence numbers restart,
   so deduplication must key on (source, endpoint, seq) — otherwise a
   recovered database's first messages would be dropped as duplicates.

   Sequence numbers are per destination (starting at 1), which lets an ack
   carry [rc_cum], the receiver's highest contiguously-delivered sequence
   for that (source, endpoint): one ack then retires a whole prefix of the
   outbox, and the receiver's duplicate-suppression state stays bounded by
   the out-of-order window instead of growing with every message ever
   seen. *)
type Types.payload +=
  | Rc_data of { rc_ep : int; rc_seq : int; inner : Types.payload }
  | Rc_ack of { rc_ep : int; rc_seq : int; rc_cum : int }
  | Rc_kick

let cls_frame =
  Rt.register_class ~name:"rc-frame" (function
    | Rc_data _ | Rc_ack _ -> true
    | _ -> false)

let cls_kick =
  Rt.register_class ~name:"rc-kick" (function
    | Rc_kick -> true
    | _ -> false)

type out_entry = {
  dst : Types.proc_id;
  seq : int;
  inner : Types.payload;
  mutable next_delay : float;
  mutable due : float;  (** absolute time of next retransmission *)
  mutable acked : bool;
}

(* sender-side per-destination stream *)
type dst_state = {
  mutable next_seq : int;
  live : (int, out_entry) Hashtbl.t;  (** seq -> unacked entry *)
  mutable min_live : int;
      (** every seq below this is retired; cumulative acks advance it *)
}

(* receiver-side per-(source, endpoint) stream *)
type rx_state = {
  mutable cum : int;  (** highest contiguously delivered sequence *)
  ooo : (int, unit) Hashtbl.t;  (** delivered out of order, above [cum] *)
}

(* Retransmission timers: a lazy-deletion min-heap of (due, entry)
   snapshots. Acking or rescheduling an entry leaves its old snapshot in
   the heap; pops skip snapshots whose entry is retired or whose due time
   moved on. [hseq] breaks due-time ties deterministically. *)
type helem = { hdue : float; hseq : int; entry : out_entry }

type t = {
  owner : Types.proc_id;
  ep : int;  (** endpoint incarnation, globally unique *)
  retransmit_after : float;
  backoff_factor : float;
  max_backoff : float;
  streams : (Types.proc_id, dst_state) Hashtbl.t;
  timers : helem Heap.t;
  mutable hseq : int;
  mutable pending : int;  (** unacked outgoing messages, O(1) *)
  rx : (Types.proc_id * int, rx_state) Hashtbl.t;
  sink : Rt.obs_sink option;  (** fetched once at create; None = obs off *)
}

let count t name =
  match t.sink with None -> () | Some s -> s.Rt.obs_count name 1

let create ?(retransmit_after = 10.) ?(backoff_factor = 2.)
    ?(max_backoff = 200.) () =
  {
    owner = Rt.self ();
    (* endpoint ids are engine-scoped (unique across incarnations within a
       trial) so independent trials stay self-contained *)
    ep = Rt.fresh_uid ();
    retransmit_after;
    backoff_factor;
    max_backoff;
    streams = Hashtbl.create 16;
    timers =
      Heap.create
        ~leq:(fun a b -> a.hdue < b.hdue || (a.hdue = b.hdue && a.hseq <= b.hseq))
        ();
    hseq = 0;
    pending = 0;
    rx = Hashtbl.create 16;
    sink = Rt.obs ();
  }

let pending t = t.pending

let stream_to t dst =
  match Hashtbl.find_opt t.streams dst with
  | Some ds -> ds
  | None ->
      let ds = { next_seq = 0; live = Hashtbl.create 16; min_live = 1 } in
      Hashtbl.add t.streams dst ds;
      ds

let stream_from t src rc_ep =
  match Hashtbl.find_opt t.rx (src, rc_ep) with
  | Some rs -> rs
  | None ->
      let rs = { cum = 0; ooo = Hashtbl.create 8 } in
      Hashtbl.add t.rx (src, rc_ep) rs;
      rs

let push_timer t e =
  t.hseq <- t.hseq + 1;
  Heap.push t.timers { hdue = e.due; hseq = t.hseq; entry = e }

let retire t (e : out_entry) =
  if not e.acked then begin
    e.acked <- true;
    t.pending <- t.pending - 1
  end

let handle_ack t ds ~seq ~cum =
  (match Hashtbl.find_opt ds.live seq with
  | Some e ->
      Hashtbl.remove ds.live seq;
      retire t e
  | None -> ());
  (* advance the retired prefix; each sequence number is visited at most
     once over the stream's lifetime, so this is amortised O(1) per ack *)
  while ds.min_live <= cum do
    (match Hashtbl.find_opt ds.live ds.min_live with
    | Some e ->
        Hashtbl.remove ds.live ds.min_live;
        retire t e
    | None -> ());
    ds.min_live <- ds.min_live + 1
  done

let handle_incoming t (m : Types.message) =
  match m.payload with
  | Rc_data { rc_ep; rc_seq; inner } ->
      let rs = stream_from t m.src rc_ep in
      let duplicate = rc_seq <= rs.cum || Hashtbl.mem rs.ooo rc_seq in
      if duplicate then count t "rc.duplicate";
      if not duplicate then begin
        if rc_seq = rs.cum + 1 then begin
          rs.cum <- rs.cum + 1;
          while Hashtbl.mem rs.ooo (rs.cum + 1) do
            Hashtbl.remove rs.ooo (rs.cum + 1);
            rs.cum <- rs.cum + 1
          done
        end
        else Hashtbl.add rs.ooo rc_seq ();
        Rt.send m.src (Rc_ack { rc_ep; rc_seq; rc_cum = rs.cum });
        Rt.redeliver ~src:m.src inner
      end
      else Rt.send m.src (Rc_ack { rc_ep; rc_seq; rc_cum = rs.cum })
  | Rc_ack { rc_ep; rc_seq; rc_cum } ->
      if rc_ep = t.ep then
        (match Hashtbl.find_opt t.streams m.src with
        | Some ds -> handle_ack t ds ~seq:rc_seq ~cum:rc_cum
        | None -> ())
  | _ -> ()

let receiver_loop t () =
  let rec loop () =
    match Rt.recv_cls cls_frame with
    | None -> ()
    | Some m ->
        handle_incoming t m;
        loop ()
  in
  loop ()

(* The retransmitter sleeps only while work is pending; with nothing unacked
   it blocks on a kick message, so a finished simulation reaches
   quiescence. *)
let retransmitter_loop t () =
  (* earliest live due time, discarding stale heap snapshots *)
  let rec next_due () =
    match Heap.peek t.timers with
    | None -> None
    | Some h ->
        if h.entry.acked || h.hdue <> h.entry.due then begin
          ignore (Heap.pop t.timers);
          next_due ()
        end
        else Some h.hdue
  in
  let rec fire now =
    match Heap.peek t.timers with
    | None -> ()
    | Some h ->
        if h.entry.acked || h.hdue <> h.entry.due then begin
          ignore (Heap.pop t.timers);
          fire now
        end
        else if h.hdue <= now then begin
          ignore (Heap.pop t.timers);
          let e = h.entry in
          count t "rc.retransmit";
          Rt.send e.dst
            (Rc_data { rc_ep = t.ep; rc_seq = e.seq; inner = e.inner });
          e.next_delay <-
            Float.min t.max_backoff (e.next_delay *. t.backoff_factor);
          e.due <- now +. e.next_delay;
          push_timer t e;
          fire now
        end
  in
  let rec loop () =
    if t.pending = 0 then begin
      Heap.clear t.timers;
      ignore (Rt.recv_cls cls_kick);
      loop ()
    end
    else
      match next_due () with
      | None ->
          (* unreachable while the every-live-entry-has-a-timer invariant
             holds; blocking on a kick keeps quiescence safe regardless *)
          ignore (Rt.recv_cls cls_kick);
          loop ()
      | Some due ->
          let delay = Float.max 0.01 (due -. Rt.now ()) in
          ignore (Rt.recv_cls ~timeout:delay cls_kick);
          fire (Rt.now ());
          loop ()
  in
  loop ()

let start t =
  Rt.fork "rchannel-rx" (receiver_loop t);
  Rt.fork "rchannel-retransmit" (retransmitter_loop t)

let send t dst inner =
  let ds = stream_to t dst in
  ds.next_seq <- ds.next_seq + 1;
  let seq = ds.next_seq in
  let entry =
    {
      dst;
      seq;
      inner;
      next_delay = t.retransmit_after;
      due = Rt.now () +. t.retransmit_after;
      acked = false;
    }
  in
  Hashtbl.add ds.live seq entry;
  count t "rc.send";
  let was_idle = t.pending = 0 in
  t.pending <- t.pending + 1;
  push_timer t entry;
  Rt.send dst (Rc_data { rc_ep = t.ep; rc_seq = seq; inner });
  if was_idle then Rt.redeliver ~src:t.owner Rc_kick

let broadcast t dsts inner = List.iter (fun dst -> send t dst inner) dsts

let inner_payload = function Rc_data { inner; _ } -> Some inner | _ -> None

let is_overhead = function Rc_ack _ | Rc_kick -> true | _ -> false
