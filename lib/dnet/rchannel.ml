open Dsim

(* [rc_ep] identifies the sending endpoint incarnation: a process that
   crashes and recovers gets a fresh endpoint whose sequence numbers restart,
   so deduplication must key on (source, endpoint, seq) — otherwise a
   recovered database's first messages would be dropped as duplicates. *)
type Types.payload +=
  | Rc_data of { rc_ep : int; rc_seq : int; inner : Types.payload }
  | Rc_ack of { rc_ep : int; rc_seq : int }
  | Rc_kick

type out_entry = {
  dst : Types.proc_id;
  seq : int;
  inner : Types.payload;
  mutable next_delay : float;
  mutable due : float;  (** absolute time of next retransmission *)
}

type t = {
  owner : Types.proc_id;
  ep : int;  (** endpoint incarnation, globally unique *)
  retransmit_after : float;
  backoff_factor : float;
  max_backoff : float;
  mutable next_seq : int;
  mutable outbox : out_entry list;
  seen : (Types.proc_id * int * int, unit) Hashtbl.t;
}

let create ?(retransmit_after = 10.) ?(backoff_factor = 2.)
    ?(max_backoff = 200.) () =
  {
    owner = Engine.self ();
    (* endpoint ids are engine-scoped (unique across incarnations within a
       trial) so independent trials stay self-contained *)
    ep = Engine.fresh_uid ();
    retransmit_after;
    backoff_factor;
    max_backoff;
    next_seq = 0;
    outbox = [];
    seen = Hashtbl.create 64;
  }

let pending t = List.length t.outbox

let is_rc_message m =
  match m.Types.payload with
  | Rc_data _ | Rc_ack _ -> true
  | _ -> false

let handle_incoming t (m : Types.message) =
  match m.payload with
  | Rc_data { rc_ep; rc_seq; inner } ->
      Engine.send m.src (Rc_ack { rc_ep; rc_seq });
      if not (Hashtbl.mem t.seen (m.src, rc_ep, rc_seq)) then begin
        Hashtbl.add t.seen (m.src, rc_ep, rc_seq) ();
        Engine.redeliver ~src:m.src inner
      end
  | Rc_ack { rc_ep; rc_seq } ->
      if rc_ep = t.ep then
        t.outbox <-
          List.filter
            (fun e -> not (e.dst = m.src && e.seq = rc_seq))
            t.outbox
  | _ -> ()

let receiver_loop t () =
  let rec loop () =
    match Engine.recv ~filter:is_rc_message () with
    | None -> ()
    | Some m ->
        handle_incoming t m;
        loop ()
  in
  loop ()

(* The retransmitter sleeps only while work is pending; with an empty outbox
   it blocks on a kick message, so a finished simulation reaches
   quiescence. *)
let retransmitter_loop t () =
  let is_kick m = match m.Types.payload with Rc_kick -> true | _ -> false in
  let rec loop () =
    match t.outbox with
    | [] ->
        ignore (Engine.recv ~filter:is_kick ());
        loop ()
    | entries ->
        let next_due =
          List.fold_left (fun acc e -> Float.min acc e.due) infinity entries
        in
        let delay = Float.max 0.01 (next_due -. Engine.now ()) in
        ignore (Engine.recv ~filter:is_kick ~timeout:delay ());
        let now = Engine.now () in
        List.iter
          (fun e ->
            if e.due <= now then begin
              Engine.send e.dst
                (Rc_data { rc_ep = t.ep; rc_seq = e.seq; inner = e.inner });
              e.next_delay <-
                Float.min t.max_backoff (e.next_delay *. t.backoff_factor);
              e.due <- now +. e.next_delay
            end)
          t.outbox;
        loop ()
  in
  loop ()

let start t =
  Engine.fork "rchannel-rx" (receiver_loop t);
  Engine.fork "rchannel-retransmit" (retransmitter_loop t)

let send t dst inner =
  t.next_seq <- t.next_seq + 1;
  let seq = t.next_seq in
  let entry =
    {
      dst;
      seq;
      inner;
      next_delay = t.retransmit_after;
      due = Engine.now () +. t.retransmit_after;
    }
  in
  let was_empty = t.outbox = [] in
  t.outbox <- entry :: t.outbox;
  Engine.send dst (Rc_data { rc_ep = t.ep; rc_seq = seq; inner });
  if was_empty then Engine.redeliver ~src:t.owner Rc_kick

let broadcast t dsts inner = List.iter (fun dst -> send t dst inner) dsts

let inner_payload = function Rc_data { inner; _ } -> Some inner | _ -> None

let is_overhead = function Rc_ack _ | Rc_kick -> true | _ -> false
