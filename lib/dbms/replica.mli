(** Asynchronous change-log read replica of one primary database.

    A replica holds a copy of the primary's {e committed} state, built by
    applying the change-log entries the primary's shipping thread streams
    to it ({!Msg.Ship} / {!Msg.Ship_snapshot}) in LSN order. It answers
    read-only business batches ({!Msg.Replica_exec}) with values tagged by
    the staleness it can {e prove}: the LSN delta between the freshest
    primary watermark it has heard of and the LSN it has applied. A batch
    whose provable lag exceeds the caller's bound is answered
    [Replica_stale]; a batch containing anything but reads is answered
    [Replica_refused] — a replica is promotion-safe precisely because it
    never executes a write, so refusing is always correct.

    Replicas are asynchronous in the sense of the paper's replication
    model: the primary never waits for them, so they cost no commit-path
    latency — the price is bounded staleness on the read path. *)

type t

val create : ?seed_data:(string * Value.t) list -> name:string -> unit -> t
(** [seed_data] provisions the replica from the same base state as its
    primary (the seed predates the change log, so it is never shipped);
    it must equal the primary's [seed_data] for the replica's store to
    track [state_at] from LSN 0. *)

val name : t -> string

val applied_lsn : t -> int
(** Highest primary LSN whose committed effects this replica holds. *)

val watermark : t -> int
(** Freshest primary [last_commit_lsn] this replica has heard of. *)

val lag : t -> int
(** Provable staleness, [max 0 (watermark - applied_lsn)]. *)

val served : t -> int
(** Read batches answered with values (not stale/refused). *)

val read : t -> string -> Value.t option
(** Direct store read (tests, property checkers). *)

val store_bindings : t -> (string * Value.t) list
(** The replica's committed state, sorted by key (the
    [replica_consistency] checker compares this against the primary's
    [state_at ~lsn:(applied_lsn)]). *)

val apply_entries : t -> (int * (string * Value.t) list) list -> unit
(** Apply shipped committed write-sets in LSN order; entries at or below
    [applied_lsn] are duplicates (the primary reships from scratch after
    recovering) and are dropped, so application is idempotent. *)

val apply_snapshot : t -> state:(string * Value.t) list -> as_of:int -> unit
(** Re-seed from a full committed snapshot (the replica fell below the
    primary's retention floor). Dropped unless [as_of] is ahead of
    [applied_lsn]. *)

val spawn :
  Runtime.Etx_runtime.t ->
  ?sql_cpu:float ->
  name:string ->
  replica:t ->
  unit ->
  Runtime.Types.proc_id
(** Spawn the replica process: one fiber applying the change feed, one
    answering read batches. [sql_cpu] is the virtual-time charge per
    served batch (the business logic runs here, not on the primary —
    replicas save coordination, not compute). Emits [replica.lag] (gauge)
    and [replica.served] (counter) through the fiber's obs sink. *)
