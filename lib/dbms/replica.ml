open Runtime
module Rt = Etx_runtime
open Dnet

type t = {
  rname : string;
  store : (string, Value.t) Hashtbl.t;
  mutable applied_lsn : int;
  mutable watermark : int;
  mutable served : int;
}

let create ?(seed_data = []) ~name () =
  let store = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace store k v) seed_data;
  { rname = name; store; applied_lsn = 0; watermark = 0; served = 0 }

let name t = t.rname
let applied_lsn t = t.applied_lsn
let watermark t = t.watermark
let lag t = max 0 (t.watermark - t.applied_lsn)
let served t = t.served
let read t k = Hashtbl.find_opt t.store k

let store_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let emit_lag t sink =
  match sink with
  | None -> ()
  | Some s -> s.Rt.obs_gauge "replica.lag" (float_of_int (lag t))

(* Feed application is idempotent: entries at or below [applied_lsn] are
   duplicates (the primary's shipping watermark is volatile — after a
   primary recovery it reships from scratch) and are dropped. *)
let apply_entries t entries =
  List.iter
    (fun (lsn, writes) ->
      if lsn > t.applied_lsn then begin
        List.iter (fun (k, v) -> Hashtbl.replace t.store k v) writes;
        t.applied_lsn <- lsn
      end)
    entries

let apply_snapshot t ~state ~as_of =
  if as_of > t.applied_lsn then begin
    Hashtbl.reset t.store;
    List.iter (fun (k, v) -> Hashtbl.replace t.store k v) state;
    t.applied_lsn <- as_of
  end

let feed_handler t ch sink () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_ship with
    | None -> ()
    | Some m ->
        (match m.Types.payload with
        | Msg.Ship { entries; upto } ->
            apply_entries t entries;
            if upto > t.watermark then t.watermark <- upto;
            emit_lag t sink
        | Msg.Ship_snapshot { state; as_of; upto } ->
            apply_snapshot t ~state ~as_of;
            if upto > t.watermark then t.watermark <- upto;
            emit_lag t sink
        | _ -> ());
        ignore ch;
        loop ()
  in
  loop ()

(* A batch is served only when every op is a read; anything else is
   refused — the replica holds no locks, no workspaces and no log, so it
   can never vote, which is exactly why crashing or dropping one is
   always safe (promotion-safe-to-refuse). *)
let try_reads t ops =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Rm.Get k :: rest -> go (Hashtbl.find_opt t.store k :: acc) rest
    | (Rm.Put _ | Rm.Add _ | Rm.Ensure_min _ | Rm.Fail) :: _ -> None
  in
  go [] ops

let exec_handler t ch ~sql_cpu sink () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_replica_exec with
    | None -> ()
    | Some m ->
        (match m.Types.payload with
        | Msg.Replica_exec { rid; seq; ops; bound } -> (
            match try_reads t ops with
            | None ->
                Rchannel.send ch m.src (Msg.Replica_refused { rid; seq })
            | Some _ when lag t > bound ->
                Rchannel.send ch m.src
                  (Msg.Replica_stale { rid; seq; lag = lag t })
            | Some _ ->
                (* one session fiber per served batch, exactly like the
                   primary's db-session forks: the SQL charges of
                   concurrent reads overlap instead of queueing behind a
                   single handler — a replica must not serialize what the
                   primary it offloads runs in parallel *)
                Rt.fork "replica-session" (fun () ->
                    (* the business logic runs here: same SQL charge as
                       the primary would pay, re-reading under the charge
                       so the values answered are the freshest applied
                       state (reads and lsn are captured together — no
                       yield between them) *)
                    if sql_cpu > 0. then Rt.work "SQL" sql_cpu;
                    let values =
                      match try_reads t ops with Some vs -> vs | None -> []
                    in
                    t.served <- t.served + 1;
                    (match sink with
                    | None -> ()
                    | Some s -> s.Rt.obs_count "replica.served" 1);
                    Rchannel.send ch m.src
                      (Msg.Replica_values
                         { rid; seq; values; lsn = t.applied_lsn; lag = lag t })))
        | _ -> ());
        loop ()
  in
  loop ()

let spawn (rt : Rt.t) ?(sql_cpu = 0.) ~name ~replica () =
  rt.spawn ~name ~main:(fun ~recovery:_ () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let sink = Rt.obs () in
      Rt.fork "replica-feed" (feed_handler replica ch sink);
      exec_handler replica ch ~sql_cpu sink ())
