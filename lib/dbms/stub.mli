(** Application-server-side stubs for talking to database servers.

    These are the client halves of the XA surface: blocking RPCs over a
    reliable channel, resilient to database crashes. Instead of letting
    every waiting fiber race to consume the single [Ready] a recovering
    database broadcasts (the paper's "receive Vote or Ready" idiom), an
    application server runs one {!Readiness} listener that consumes [Ready]
    messages and bumps a per-database {e recovery epoch}; every blocked stub
    polls that epoch and re-sends its request when the database comes back.
    This is observationally the paper's protocol — a recovery un-blocks
    every waiter — without the starvation race between concurrent waiters
    (e.g. a compute thread in [prepare] and a cleaning thread in
    [terminate]). *)

open Runtime

module Readiness : sig
  type t

  val create : dbs:Types.proc_id list -> t
  (** Call inside the owning fiber. *)

  val start : t -> unit
  (** Fork the [Ready]-consuming listener. *)

  val epoch : t -> Types.proc_id -> int
  (** Bumped every time the database broadcasts [Ready]. *)
end

val xa_start :
  ?poll:float -> Dnet.Rchannel.t -> Readiness.t -> db:Types.proc_id -> xid:Xid.t -> unit
(** Blocking XA start on one database (resent across its recoveries). *)

val xa_end :
  ?poll:float -> Dnet.Rchannel.t -> Readiness.t -> db:Types.proc_id -> xid:Xid.t -> unit

val exec :
  ?poll:float ->
  ?seq:int ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  db:Types.proc_id ->
  xid:Xid.t ->
  Rm.op list ->
  Rm.exec_reply
(** One blocking exec RPC; no conflict retry (see {!exec_retry}). [seq]
    (default 0) identifies this physical attempt within [xid]; the server
    executes each (xid, seq) at most once and replays the recorded reply to
    redelivered duplicates ({!Rm.exec_dedup}), so callers issuing several
    execs per transaction must give each a distinct number. *)

val exec_retry :
  ?poll:float ->
  ?backoff:float ->
  ?max_tries:int ->
  ?fresh_seq:(unit -> int) ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  db:Types.proc_id ->
  xid:Xid.t ->
  Rm.op list ->
  Rm.exec_reply
(** Like {!exec} but backs off and retries on [Exec_conflict] (a lock held
    by another — possibly dead — transaction that the cleaning thread will
    eventually release). After [max_tries] (default 20, backoff default
    40 ms) the conflict is returned to the caller, which should poison the
    transaction rather than commit a partial workspace. Each attempt draws
    its sequence number from [fresh_seq] (default: a counter private to
    this call); pass the transaction-scoped counter when a business run
    makes more than one exec call on the same [xid]. *)

val wait_vote :
  ?poll:float -> Dnet.Rchannel.t -> Readiness.t -> db:Types.proc_id -> xid:Xid.t -> Rm.vote
(** Send [Prepare] and wait for this database's vote, re-sending across
    recoveries (a recovered database forgets the transaction and votes
    [No], which is the paper's "Ready counts as failure" rule). *)

val wait_ack_decide :
  ?poll:float ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  db:Types.proc_id ->
  xid:Xid.t ->
  Rm.outcome ->
  unit
(** Send [Decide] and wait for [AckDecide], re-sending across recoveries —
    the paper's terminate() retry loop, per database. *)

val commit_one_phase :
  ?poll:float -> Dnet.Rchannel.t -> Readiness.t -> db:Types.proc_id -> xid:Xid.t -> Rm.outcome
(** Baseline protocol: single-phase commit RPC. *)

val broadcast_collect :
  ?poll:float ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  dbs:Types.proc_id list ->
  request:(Types.proc_id -> Types.payload) ->
  matches:(Types.payload -> 'a option) ->
  (Types.proc_id * 'a) list
(** The paper's multicast-then-wait-for-all idiom ([prepare()] and
    [terminate()] of Figure 4): send [request db] to every database at once,
    then collect one matching reply from each, re-sending to any database
    that recovers meanwhile. One sequential communication step regardless of
    the number of databases. *)

(** {1 Batched XA rounds (group commit)}

    One message per database carries a whole window of transactions and one
    reply carries every answer, so a window of N transactions costs the same
    number of protocol messages as a single transaction. Replies are matched
    on the full xid list: a batch RPC can never consume another batch's (or
    a single-transaction call's) reply. All four re-send across recoveries
    like their singular counterparts. *)

val xa_start_batch :
  ?poll:float ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  dbs:Types.proc_id list ->
  xids:Xid.t list ->
  unit

val xa_end_batch :
  ?poll:float ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  dbs:Types.proc_id list ->
  xids:Xid.t list ->
  unit

val prepare_batch :
  ?poll:float ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  dbs:Types.proc_id list ->
  xids:Xid.t list ->
  (Types.proc_id * (Xid.t * Rm.vote) list) list
(** Batched prepare: every database answers its whole vote vector (input
    order) after a single group-commit log force ({!Rm.vote_many}). *)

val decide_batch :
  ?poll:float ->
  Dnet.Rchannel.t ->
  Readiness.t ->
  dbs:Types.proc_id list ->
  items:(Xid.t * Rm.outcome) list ->
  unit
(** Batched terminate: one [Decide_batch] per database carrying all N
    outcomes, acknowledged once applied ({!Rm.decide_many}). *)
