(** The database server process of the paper's Figure 3.

    A {e pure server}: it only reacts to messages. Three concurrent handler
    fibers serve business-logic execution, prepare (vote) requests and
    decide requests — mirroring the paper's [cobegin] — all over reliable
    channels. On recovery it first replays its resource manager's log and
    broadcasts [Ready] to the application servers ("coming back", Fig. 3
    line 2), which un-blocks any of them waiting on a vote or an ack. *)

open Runtime

val spawn :
  Etx_runtime.t ->
  ?invalidate:bool ->
  ?migratable:bool ->
  ?ship:float * (unit -> Types.proc_id list) ->
  name:string ->
  rm:Rm.t ->
  observers:(unit -> Types.proc_id list) ->
  unit ->
  Types.proc_id
(** [observers ()] is the list of application servers to notify with [Ready]
    after a recovery (a thunk because application servers are usually
    spawned after the databases).

    [ship = (period, replicas)] forks the change-log shipping thread:
    every [period] ms of virtual time it streams the committed write-sets
    each process in [replicas ()] is missing ({!Msg.Ship}), or a full
    snapshot ({!Msg.Ship_snapshot}) when a checkpoint already discarded
    the replica's suffix. Omitted (the default) the thread is not even
    forked, so replica-less deployments are event-for-event identical to
    the pre-replica revision.

    [migratable] (default [false]) forks the online-shard-migration
    handler fiber serving {!Msg.Mig_seal_req} / {!Msg.Mig_pull_req} /
    {!Msg.Mig_push_req}. Off by default so non-elastic deployments keep
    their exact fiber census (and hence their scheduling).

    [invalidate] (default [false]) turns on commit-piggybacked cache
    invalidation: every committing decide additionally broadcasts
    [Msg.Invalidate] with the transaction's (or batch's) actual write
    keyset to [observers ()] before acking, and recovery broadcasts the
    [keys = []] flush-all sentinel. Off by default so cache-less
    deployments send byte-identical message streams. *)
