(** Transactional resource manager: the XA engine behind a database server.

    Implements the commitment surface the paper relies on — [vote] (XA
    prepare) and [decide] (XA commit/rollback) — over an in-memory key-value
    store with per-key write locks and a write-ahead log on a simulated
    {!Dstore.Disk}. Business logic runs through {!exec}, which executes a
    batch of operations inside a transaction workspace.

    Durability model (matches the paper's crash semantics):
    - committed state and prepared workspaces live in the WAL — they survive
      crashes;
    - active transactions are volatile — [recover] discards them;
    - prepared-but-undecided transactions are {e in-doubt} after recovery:
      their locks are re-acquired and they wait for a [decide].

    Timing model: each operation charges virtual time with
    [Etx_runtime.work] using the category labels of the paper's Figure 8
    ("start", "SQL", "end", "prepare", "commit"), so latency-breakdown
    accounting falls out of the trace. Calls must therefore run inside a
    fiber. *)

type outcome = Commit | Abort

type vote = Yes | No

type op =
  | Get of string
  | Put of string * Value.t
  | Add of string * int
      (** read-modify-write on an [Int] value; missing key starts from 0 *)
  | Ensure_min of string * int
      (** business-rule guard: current [Int] value must be ≥ bound; a failed
          guard is a {e user-level abort} — per the paper these are regular
          results that the database then refuses to commit *)
  | Fail
      (** unconditionally poison the transaction (application gives up, e.g.
          after repeated lock conflicts): it will vote [No] *)

type exec_reply =
  | Exec_ok of { values : Value.t option list; business_ok : bool }
      (** [values] has one entry per [Get]; [business_ok = false] records a
          failed guard: the transaction is poisoned and will vote [No] *)
  | Exec_conflict of string
      (** a write lock on the given key is held by another transaction; the
          caller should back off and retry *)
  | Exec_rejected  (** the transaction already left its active phase *)

type timing = {
  start_cpu : float;  (** xa_start overhead, charged per exec batch *)
  sql_cpu : float;  (** business-logic/SQL execution *)
  end_cpu : float;  (** xa_end overhead *)
  prepare_cpu : float;  (** prepare-time validation, on top of forced IO *)
  commit_cpu : float;  (** commit-time apply, on top of forced IO *)
  abort_cpu : float;
}

val paper_timing : timing
(** Calibrated so the Figure 8 component rows reproduce: start ≈ 3.4, SQL ≈
    187, end ≈ 3.4, prepare ≈ 19–21, commit ≈ 18.6 (all as seen from an
    application server over a 3–5 ms round-trip LAN). *)

val zero_timing : timing
(** All-zero CPU costs for functional tests (forced IO still charges the
    disk latency). *)

type t

val create :
  ?timing:timing ->
  ?seed_data:(string * Value.t) list ->
  ?read_locks:bool ->
  ?group_commit:bool ->
  disk:Dstore.Disk.t ->
  name:string ->
  unit ->
  t
(** The disk is this database's stable storage; [seed_data] is the initial
    committed state (re-applied on recovery before log replay).

    [group_commit:true] opts the redo log into the {!Dstore.Log}
    group-commit scheduler: concurrent forced writes coalesce into one
    {!Dstore.Disk.force} per window. Off by default — the per-call force
    discipline is byte-identical to the historical WAL behaviour.

    [read_locks:true] enables strict two-phase locking — the serializability
    protocol the paper assumes exists ("we assume the existence of some
    serializability protocol \[3\]"): [Get]/[Ensure_min] take shared locks
    (held to the decide, like write locks), writers exclude readers and vice
    versa, and a sole reader may upgrade to a writer. The default ([false])
    locks writes only, which suffices for every experiment in the paper.
    Shared locks are volatile: after a crash only the in-doubt transactions'
    {e write} locks are re-acquired (their read sets are not logged). *)

val xa_start : t -> xid:Xid.t -> unit
(** XA [xa_start]: open (or join) transaction [xid]; charges the "start"
    overhead. *)

val xa_end : t -> xid:Xid.t -> unit
(** XA [xa_end]: detach from [xid] before commitment processing; charges the
    "end" overhead. *)

val exec : t -> xid:Xid.t -> op list -> exec_reply
(** Run a batch inside transaction [xid]. The transaction must exist and be
    active ([xa_start] creates it): a batch for an unknown [xid] answers
    [Exec_rejected] — in particular after a crash wiped an in-flight
    transaction, so a recovered database can never rebuild a {e partial}
    workspace and vote [Yes] on it. Atomic with respect to locking: either
    all write locks are acquired or [Exec_conflict] is returned with no side
    effect. *)

val exec_dedup :
  t -> seq:int -> xid:Xid.t -> op list -> exec_reply option
(** {!exec} guarded against at-least-once redelivery: [seq] identifies one
    physical exec attempt within [xid] (the application server stamps each
    attempt with a fresh number). The first delivery of a [seq] executes;
    a duplicate that arrives after it finished replays the recorded reply
    without re-executing, and one that arrives {e while} the original is
    still running returns [None] (send no reply — the original's answers
    the caller). Without this, a batch redelivered across a database
    recovery applies its relative updates ([Add]) twice inside one
    workspace, silently corrupting the committed value. Transactions
    unknown to this incarnation answer [Some Exec_rejected]. *)

val vote : t -> xid:Xid.t -> vote
(** XA prepare. [Yes] makes the workspace durable (forced log write) and
    keeps locks; [No] aborts locally. Unknown transactions vote [No] —
    which is what a database that crashed and lost an active transaction
    answers. Idempotent. *)

val vote_many : t -> xids:Xid.t list -> (Xid.t * vote) list
(** Group-commit prepare: votes for a whole batch with a {e single} forced
    log write covering every [Yes] workspace (per-transaction CPU still
    charges). Equivalent to [List.map (vote t ~xid)] except for the forced
    IO count; same idempotence and unknown-transaction semantics. Answers
    in input order. *)

val decide : t -> xid:Xid.t -> outcome -> outcome
(** XA commit/rollback, following the paper's contract: (a) an [Abort] input
    returns [Abort]; (b) a [Commit] input on a transaction that voted [Yes]
    commits and returns [Commit]. Defensively, [Commit] on a transaction
    that never prepared aborts it. Idempotent: a decided transaction
    returns its decided outcome. *)

val decide_many : t -> items:(Xid.t * outcome) list -> (Xid.t * outcome) list
(** Group-commit decide: terminates a whole batch with a {e single} forced
    log write covering every commit/abort record. Equivalent to
    [List.map (fun (xid, o) -> decide t ~xid o)] except for the forced IO
    count. Answers in input order. *)

val commit_one_phase : t -> xid:Xid.t -> outcome
(** Single-phase commit used by the unreliable baseline protocol: no
    prepare, directly apply and force-log. Aborts if the transaction is
    poisoned or unknown. *)

val recover : t -> unit
(** Crash recovery: cut the log's non-durable tail ({!Dstore.Log.crash_cut}),
    rebuild committed state from seed data + checkpoint-bounded LSN-ordered
    replay, re-acquire locks of in-doubt transactions, discard active ones.
    Replay starts at the latest durable snapshot record (if any), so a
    checkpointed log recovers in time proportional to the suffix, not the
    history. Free of charge (reading the log is not a forced write). *)

val checkpoint : t -> unit
(** Compact the redo log: append one snapshot of the committed state (plus
    the decided-transaction record, so idempotent re-decides still answer
    correctly after recovery) and the still-prepared workspaces, make the
    group durable with a {e single} forced write, then raise the retention
    floor to the snapshot's LSN. Crash-atomic: a crash before the force
    recovers from the untruncated history, a crash after it finds a complete
    checkpoint. Observable behaviour is unchanged — recovery just replays a
    bounded log. *)

val log_length : t -> int
(** Number of retained log records (checkpoint/compaction tests). O(1). *)

val log_bytes : t -> int
(** Estimated byte footprint of the retained log records. O(1). *)

val durable_lsn : t -> int
(** Highest log sequence number guaranteed to survive a crash. O(1). *)

val appended_lsn : t -> int
(** Highest log sequence number handed out (volatile tail included). O(1). *)

val last_commit_lsn : t -> int
(** LSN of the newest committed-state mutation (commit record or snapshot).
    The change-log shipping watermark: a replica that has applied up to this
    LSN holds the current committed state. O(1). *)

val recovery_steps : t -> int
(** Number of log records replayed by the most recent {!recover} — the
    checkpoint-bounded replay length (experiments/tests). *)

(** {1 Change-log shipping (read replicas)} *)

type change_feed =
  | Up_to_date  (** the consumer already holds every committed change *)
  | Entries of (int * (string * Value.t) list) list
      (** committed write-sets above the consumer's LSN, ascending *)
  | Snapshot of { state : (string * Value.t) list; as_of : int }
      (** the consumer is below the retention floor (a checkpoint ran):
          incremental shipping is impossible, re-seed from this full
          committed snapshot at LSN [as_of] *)

val changes_since : ?max_entries:int -> t -> lsn:int -> change_feed
(** The committed changes a replica at [lsn] is missing. At most
    [max_entries] (default 64) entries per call — the shipper paginates. *)

val state_at :
  t -> lsn:int -> (string, Value.t) Hashtbl.t option
(** The committed store exactly as of [lsn]: snapshot state plus every
    committed write-set at LSNs ≤ [lsn]. [None] when [lsn] predates the
    retention floor (a later checkpoint discarded the history) or exceeds
    [last_commit_lsn]. The [replica_consistency] oracle. *)

(** {1 Online shard migration (elastic reconfiguration)}

    The storage half of DESIGN.md §16: a source database is {e sealed}
    against an ownership filter, its moving keys are copied to the
    destination through the same change-feed machinery that serves read
    replicas, and the destination records a durable per-source import
    watermark so a crashed-and-restarted transfer resumes idempotently. *)

val seal : t -> epoch:int -> owns:(string -> bool) -> unit
(** Install (and force-log) an ownership filter: from now on this database
    votes [No] on any transaction writing a key for which [owns] is false
    — closing the lost-update window where a commit lands on the source
    after its keys were copied away. Monotone in [epoch]: a re-seal with
    an older or equal epoch is a no-op. Survives crashes (logged and
    carried across checkpoints). *)

val sealed_epoch : t -> int
(** The installed seal's target epoch; [0] when unsealed. *)

val in_doubt_moving : t -> int
(** Prepared-but-undecided transactions that write at least one key the
    seal disowns. The migration driver's copy phase is complete only once
    this drains to zero {e and} the change feed answers [Up_to_date] —
    each such transaction will either commit (entering the feed below a
    later watermark) or abort. [0] when unsealed. *)

val import_watermark : t -> src:string -> int
(** Highest source LSN already imported from database [src]; [0] before
    any import. Durable (logged, restored by recovery). *)

val import :
  t ->
  src:string ->
  ?snapshot:(string * Value.t) list ->
  entries:(int * (string * Value.t) list) list ->
  upto:int ->
  unit ->
  int
(** Apply a transfer of moving-key write-sets from source database [src]:
    optional re-seed snapshot first, then [entries] (source-LSN order),
    covering source LSNs through [upto]. Idempotent under redelivery and
    driver restart: entries at or below the current watermark are
    dropped, an entry-only transfer at or below it is a no-op, a
    snapshot transfer strictly below it is a no-op (a snapshot {e at}
    the watermark re-applies — the bootstrap snapshot of an unlogged
    source arrives as [upto = 0], and values are absolute so
    re-application is harmless). Force-logs one record; the
    imported writes enter the committed change feed (replicas and
    {!state_at} see them). Returns the new watermark. *)

val commit_lsn_of : t -> Xid.t -> int option
(** The LSN of the transaction's commit record, when this incarnation
    committed it. The [migration_integrity] oracle compares it against
    the destination's import watermark. *)

val snapshot_floor : t -> int
(** The retention floor (latest checkpoint snapshot LSN); [0] when the
    full history is retained. *)

(** {1 Introspection (tests, property checkers, experiments)} *)

type txn_phase = Active | Prepared | Committed | Aborted

val phase_of : t -> Xid.t -> txn_phase option
val read_committed : t -> string -> Value.t option
val committed_xids : t -> Xid.t list
(** In commit order. *)

val writes_of : t -> Xid.t -> string list
(** Keys in the transaction's workspace (sorted, deduplicated) — for a
    committed transaction, the authoritative write keyset of the commit.
    Committed workspaces are retained in memory and restored by
    [W_committed] WAL replay, so this answers for every commit this
    incarnation knows about; transactions only present in a pre-crash
    snapshot answer [[]] (recovery therefore triggers a flush-all
    invalidation rather than relying on this). *)

val in_doubt : t -> Xid.t list
(** Prepared transactions awaiting a decision. *)

val known_xids : t -> Xid.t list
(** Every transaction this server currently has a record of (sorted). *)

val locks_held : t -> (string * Xid.t) list

val votes_cast : t -> (Xid.t * vote) list
(** Every vote this server ever answered, oldest first — the V.2 property
    checker reads this. (In-memory test instrumentation, not recovered.) *)

val name : t -> string
val disk : t -> Dstore.Disk.t

val group_commit : t -> bool
(** Whether this resource manager's redo log runs the group-commit
    scheduler ([create ~group_commit:true]). The database server reads
    this to pick its commitment concurrency shape: coalescing only pays
    when concurrent sessions force the log at the same time. *)
