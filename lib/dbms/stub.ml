open Runtime
module Rt = Etx_runtime
open Dnet

module Readiness = struct
  type t = { epochs : (Types.proc_id, int) Hashtbl.t }

  let create ~dbs =
    let epochs = Hashtbl.create 8 in
    List.iter (fun db -> Hashtbl.replace epochs db 0) dbs;
    { epochs }

  let listener t () =
    let rec loop () =
      match Rt.recv_cls Msg.cls_ready with
      | None -> ()
      | Some m ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt t.epochs m.src) in
          Hashtbl.replace t.epochs m.src (cur + 1);
          loop ()
    in
    loop ()

  let start t = Rt.fork "readiness" (listener t)

  let epoch t db = Option.value ~default:0 (Hashtbl.find_opt t.epochs db)
end

(* Core pattern: send the request, wait for a matching reply; if the
   database announces a recovery meanwhile, re-send. *)
let rpc ~poll ch rd ~db ~request ~matches =
  let rec attempt epoch =
    Rchannel.send ch db request;
    wait epoch
  and wait epoch =
    (* [matches] only ever accepts db reply payloads ([Msg.cls_reply]), so
       the scan can stay inside that bucket *)
    let filter m = m.Types.src = db && matches m.Types.payload <> None in
    match Rt.recv ~timeout:poll ~cls:Msg.cls_reply ~filter () with
    | Some m -> (
        match matches m.Types.payload with
        | Some reply -> reply
        | None -> wait epoch (* unreachable: filter checked *))
    | None ->
        let now_epoch = Readiness.epoch rd db in
        if now_epoch <> epoch then attempt now_epoch else wait epoch
  in
  attempt (Readiness.epoch rd db)

let default_poll = 25.

let xa_start ?(poll = default_poll) ch rd ~db ~xid =
  rpc ~poll ch rd ~db
    ~request:(Msg.Xa_start { xid })
    ~matches:(function
      | Msg.Xa_started { xid = x } when Xid.equal x xid -> Some ()
      | _ -> None)

let xa_end ?(poll = default_poll) ch rd ~db ~xid =
  rpc ~poll ch rd ~db
    ~request:(Msg.Xa_end { xid })
    ~matches:(function
      | Msg.Xa_ended { xid = x } when Xid.equal x xid -> Some ()
      | _ -> None)

(* The reply is matched on (xid, seq), not xid alone: a late reply to an
   earlier attempt (e.g. a conflict the caller already moved past) must not
   satisfy a newer attempt's wait. *)
let exec ?(poll = default_poll) ?(seq = 0) ch rd ~db ~xid ops =
  rpc ~poll ch rd ~db
    ~request:(Msg.Exec_req { xid; seq; ops })
    ~matches:(function
      | Msg.Exec_reply { xid = x; seq = s; reply }
        when Xid.equal x xid && s = seq ->
          Some reply
      | _ -> None)

(* Every physical attempt — including each conflict retry — draws a fresh
   [seq] so the server executes it exactly once even if the message is
   redelivered across a database recovery (Rm.exec_dedup). [fresh_seq]
   must be scoped to the transaction: the application server threads one
   counter through all the exec calls of a business run. *)
let exec_retry ?(poll = default_poll) ?(backoff = 40.) ?(max_tries = 20)
    ?fresh_seq ch rd ~db ~xid ops =
  let next =
    match fresh_seq with
    | Some f -> f
    | None ->
        let c = ref 0 in
        fun () ->
          let s = !c in
          incr c;
          s
  in
  let rec go tries =
    match exec ~poll ~seq:(next ()) ch rd ~db ~xid ops with
    | Rm.Exec_conflict _ as conflict ->
        if tries >= max_tries then conflict
        else begin
          Rt.sleep backoff;
          go (tries + 1)
        end
    | reply -> reply
  in
  go 1

let wait_vote ?(poll = default_poll) ch rd ~db ~xid =
  rpc ~poll ch rd ~db
    ~request:(Msg.Prepare { xid })
    ~matches:(function
      | Msg.Vote_msg { xid = x; vote } when Xid.equal x xid -> Some vote
      | _ -> None)

let wait_ack_decide ?(poll = default_poll) ch rd ~db ~xid outcome =
  rpc ~poll ch rd ~db
    ~request:(Msg.Decide { xid; outcome })
    ~matches:(function
      | Msg.Ack_decide { xid = x } when Xid.equal x xid -> Some ()
      | _ -> None)

let commit_one_phase ?(poll = default_poll) ch rd ~db ~xid =
  rpc ~poll ch rd ~db
    ~request:(Msg.Commit1 { xid })
    ~matches:(function
      | Msg.Commit1_reply { xid = x; outcome } when Xid.equal x xid ->
          Some outcome
      | _ -> None)

let same_xids = List.equal Xid.equal

let broadcast_collect ?(poll = default_poll) ch rd ~dbs ~request ~matches =
  List.iter (fun db -> Rchannel.send ch db (request db)) dbs;
  let collect db =
    let filter m = m.Types.src = db && matches m.Types.payload <> None in
    let rec wait epoch =
      match Rt.recv ~timeout:poll ~cls:Msg.cls_reply ~filter () with
      | Some m -> (
          match matches m.Types.payload with
          | Some reply -> reply
          | None -> wait epoch)
      | None ->
          let now_epoch = Readiness.epoch rd db in
          if now_epoch <> epoch then begin
            Rchannel.send ch db (request db);
            wait now_epoch
          end
          else wait epoch
    in
    (db, wait (Readiness.epoch rd db))
  in
  List.map collect dbs

(* Batched XA rounds: one message per database carries the whole window of
   transactions, and one reply carries every answer. Replies are matched on
   the full xid list so a batch RPC can never consume another batch's (or a
   single-transaction call's) reply. *)

let xa_start_batch ?poll ch rd ~dbs ~xids =
  ignore
    (broadcast_collect ?poll ch rd ~dbs
       ~request:(fun _ -> Msg.Xa_start_batch { xids })
       ~matches:(function
         | Msg.Xa_started_batch { xids = x } when same_xids x xids -> Some ()
         | _ -> None))

let xa_end_batch ?poll ch rd ~dbs ~xids =
  ignore
    (broadcast_collect ?poll ch rd ~dbs
       ~request:(fun _ -> Msg.Xa_end_batch { xids })
       ~matches:(function
         | Msg.Xa_ended_batch { xids = x } when same_xids x xids -> Some ()
         | _ -> None))

let prepare_batch ?poll ch rd ~dbs ~xids =
  broadcast_collect ?poll ch rd ~dbs
    ~request:(fun _ -> Msg.Prepare_batch { xids })
    ~matches:(function
      | Msg.Vote_batch { votes } when same_xids (List.map fst votes) xids ->
          Some votes
      | _ -> None)

let decide_batch ?poll ch rd ~dbs ~items =
  let xids = List.map fst items in
  ignore
    (broadcast_collect ?poll ch rd ~dbs
       ~request:(fun _ -> Msg.Decide_batch { items })
       ~matches:(function
         | Msg.Ack_decide_batch { xids = x } when same_xids x xids -> Some ()
         | _ -> None))
