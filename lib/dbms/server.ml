open Runtime
module Rt = Etx_runtime
open Dnet

let exec_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_exec with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Xa_start { xid } ->
            Rm.xa_start rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_started { xid })
        | Msg.Xa_end { xid } ->
            Rm.xa_end rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_ended { xid })
        | Msg.Exec_req { xid; seq; ops } ->
            (* each batch runs in its own session fiber: the long simulated
               SQL of one transaction must not serialize other clients'
               transactions behind it (locks, not the server loop, are the
               concurrency control). [exec_dedup] guards against redelivery
               (the channel only dedups within one incarnation); a [None]
               means a duplicate of a still-running batch — send nothing,
               the original's reply answers the caller. *)
            Rt.fork "db-session" (fun () ->
                match Rm.exec_dedup rm ~seq ~xid ops with
                | None -> ()
                | Some reply ->
                    Rchannel.send ch m.src (Msg.Exec_reply { xid; seq; reply }))
        | Msg.Commit1 { xid } ->
            let outcome = Rm.commit_one_phase rm ~xid in
            Rchannel.send ch m.src (Msg.Commit1_reply { xid; outcome })
        | Msg.Xa_start_batch { xids } ->
            List.iter (fun xid -> Rm.xa_start rm ~xid) xids;
            Rchannel.send ch m.src (Msg.Xa_started_batch { xids })
        | Msg.Xa_end_batch { xids } ->
            List.iter (fun xid -> Rm.xa_end rm ~xid) xids;
            Rchannel.send ch m.src (Msg.Xa_ended_batch { xids })
        | _ -> ());
        loop ()
  in
  loop ()

(* db.vote_ms / db.decide_ms time the resource manager's local step only
   (vote or decide plus its forced log write) — transport latency is
   accounted by the caller's phase spans. *)
let timed sink name f =
  match sink with
  | None -> f ()
  | Some s ->
      let t0 = Rt.now () in
      let r = f () in
      s.Rt.obs_observe name (Rt.now () -. t0);
      r

(* Commitment concurrency shape. With the classic per-call force
   discipline the prepare and decide handlers run their work inline: at
   most one vote and one decide force are ever in flight per database,
   which is byte-identical to the historical servers. A group-commit
   database instead handles each commitment message in its own session
   fiber — group commit only pays when sessions force the log
   concurrently, and a single sequential handler alternating with the
   decide path never overlaps two forces (the scheduler would coalesce
   nothing). This is the architecture the optimisation was invented
   for: many sessions reach their commit point independently and one
   disk write makes the whole window durable. *)
let session rm label f =
  if Rm.group_commit rm then Rt.fork label f else f ()

let prepare_handler rm ch sink () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_prepare with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Prepare { xid } ->
            session rm "db-prepare-session" (fun () ->
                let vote =
                  timed sink "db.vote_ms" (fun () -> Rm.vote rm ~xid)
                in
                Rchannel.send ch m.src (Msg.Vote_msg { xid; vote }))
        | Msg.Prepare_batch { xids } ->
            session rm "db-prepare-session" (fun () ->
                let votes =
                  timed sink "db.vote_ms" (fun () -> Rm.vote_many rm ~xids)
                in
                Rchannel.send ch m.src (Msg.Vote_batch { votes }))
        | _ -> ());
        loop ()
  in
  loop ()

let decide_handler rm ch sink ~invalidate ~observers () =
  (* Invalidation piggybacks on the decide path: when a decide commits, the
     transaction's actual write keyset (its retained workspace) is
     broadcast to every application server BEFORE the ack. Ordering
     matters: the decider's broadcast_collect keeps re-driving Decide until
     the ack arrives, so a crash between commit and broadcast is re-driven
     and the invalidation is re-sent — the ack is the protocol's evidence
     that invalidation went out. Re-delivered decides re-broadcast
     harmlessly (dropping an absent entry is a no-op). A commit whose
     workspace is empty broadcasts nothing: [keys = []] is reserved as the
     flush-all sentinel. *)
  let invalidate_commits xids =
    if invalidate then begin
      let keys =
        List.concat_map (fun xid -> Rm.writes_of rm xid) xids
        |> List.sort_uniq String.compare
      in
      if keys <> [] then
        Rchannel.broadcast ch (observers ()) (Msg.Invalidate { keys })
    end
  in
  let rec loop () =
    match Rt.recv_cls Msg.cls_decide with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Decide { xid; outcome } ->
            session rm "db-decide-session" (fun () ->
                let applied =
                  timed sink "db.decide_ms" (fun () ->
                      Rm.decide rm ~xid outcome)
                in
                if applied = Rm.Commit then invalidate_commits [ xid ];
                Rchannel.send ch m.src (Msg.Ack_decide { xid }))
        | Msg.Decide_batch { items } ->
            session rm "db-decide-session" (fun () ->
                let applied =
                  timed sink "db.decide_ms" (fun () ->
                      Rm.decide_many rm ~items)
                in
                invalidate_commits
                  (List.filter_map
                     (fun (xid, o) -> if o = Rm.Commit then Some xid else None)
                     applied);
                Rchannel.send ch m.src
                  (Msg.Ack_decide_batch { xids = List.map fst items }))
        | _ -> ());
        loop ()
  in
  loop ()

(* Change-log shipping: stream the committed suffix to each read replica,
   paginated, in LSN order. Push-based and fire-and-forget — the primary
   never waits for a replica (asynchronous replication: replicas cost no
   commit-path latency). The per-replica watermark below is volatile by
   design: a recovered primary reships from scratch and the replicas drop
   the duplicates (their apply is idempotent on LSNs). *)
let ship_thread rm ch ~period ~replicas () =
  let sent = Hashtbl.create 8 in
  let rec loop () =
    Rt.sleep period;
    List.iter
      (fun pid ->
        let from = try Hashtbl.find sent pid with Not_found -> 0 in
        match Rm.changes_since rm ~lsn:from with
        | Rm.Up_to_date -> ()
        | Rm.Entries entries ->
            let upto = Rm.last_commit_lsn rm in
            let top =
              List.fold_left (fun acc (l, _) -> max acc l) from entries
            in
            Hashtbl.replace sent pid top;
            Rchannel.send ch pid (Msg.Ship { entries; upto })
        | Rm.Snapshot { state; as_of } ->
            Hashtbl.replace sent pid as_of;
            Rchannel.send ch pid
              (Msg.Ship_snapshot
                 { state; as_of; upto = Rm.last_commit_lsn rm }))
      (replicas ());
    loop ()
  in
  loop ()

(* Online shard migration endpoint (DESIGN.md §16), forked only on
   migratable databases so non-elastic deployments keep their exact fiber
   census. Seal installs the durable ownership filter; pull serves the
   committed change feed above the driver's per-source watermark together
   with everything the driver's completion check reads — watermark,
   in-doubt-moving count and seal epoch arrive in one reply, so the check
   is atomic with respect to this database's state; push applies a
   transfer at the destination ([Rm.import] makes redelivery and driver
   takeover idempotent). All three are safe to re-drive. *)
let mig_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_mig with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Mig_seal_req { epoch; owns } ->
            Rm.seal rm ~epoch ~owns;
            Rchannel.send ch m.src (Msg.Mig_seal_ack { epoch })
        | Msg.Mig_pull_req { from_lsn } ->
            Rchannel.send ch m.src
              (Msg.Mig_pull_resp
                 {
                   from_lsn;
                   feed = Rm.changes_since rm ~lsn:from_lsn;
                   watermark = Rm.last_commit_lsn rm;
                   in_doubt_moving = Rm.in_doubt_moving rm;
                   sealed = Rm.sealed_epoch rm;
                 })
        | Msg.Mig_push_req { src; snapshot; entries; upto } ->
            let upto = Rm.import rm ~src ?snapshot ~entries ~upto () in
            Rchannel.send ch m.src (Msg.Mig_push_ack { src; upto })
        | _ -> ());
        loop ()
  in
  loop ()

let spawn (rt : Rt.t) ?(invalidate = false) ?(migratable = false) ?ship ~name
    ~rm ~observers () =
  rt.spawn ~name ~main:(fun ~recovery () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let sink = Rt.obs () in
      if recovery then begin
        Rm.recover rm;
        (* snapshot replay loses committed workspaces, so this incarnation
           cannot enumerate the write keysets of pre-crash commits:
           broadcast the flush-all sentinel and let every cache start
           cold *)
        if invalidate then
          Rchannel.broadcast ch (observers ()) (Msg.Invalidate { keys = [] });
        Rchannel.broadcast ch (observers ()) Msg.Ready
      end;
      (match ship with
      | None -> ()
      | Some (period, replicas) ->
          Rt.fork "db-ship" (ship_thread rm ch ~period ~replicas));
      if migratable then Rt.fork "db-mig" (mig_handler rm ch);
      Rt.fork "db-exec" (exec_handler rm ch);
      Rt.fork "db-prepare" (prepare_handler rm ch sink);
      decide_handler rm ch sink ~invalidate ~observers ())
