open Runtime
module Rt = Etx_runtime
open Dnet

let exec_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_exec with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Xa_start { xid } ->
            Rm.xa_start rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_started { xid })
        | Msg.Xa_end { xid } ->
            Rm.xa_end rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_ended { xid })
        | Msg.Exec_req { xid; ops } ->
            (* each batch runs in its own session fiber: the long simulated
               SQL of one transaction must not serialize other clients'
               transactions behind it (locks, not the server loop, are the
               concurrency control) *)
            Rt.fork "db-session" (fun () ->
                let reply = Rm.exec rm ~xid ops in
                Rchannel.send ch m.src (Msg.Exec_reply { xid; reply }))
        | Msg.Commit1 { xid } ->
            let outcome = Rm.commit_one_phase rm ~xid in
            Rchannel.send ch m.src (Msg.Commit1_reply { xid; outcome })
        | _ -> ());
        loop ()
  in
  loop ()

let prepare_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_prepare with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Prepare { xid } ->
            let vote = Rm.vote rm ~xid in
            Rchannel.send ch m.src (Msg.Vote_msg { xid; vote })
        | _ -> ());
        loop ()
  in
  loop ()

let decide_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_decide with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Decide { xid; outcome } ->
            let (_ : Rm.outcome) = Rm.decide rm ~xid outcome in
            Rchannel.send ch m.src (Msg.Ack_decide { xid })
        | _ -> ());
        loop ()
  in
  loop ()

let spawn (rt : Rt.t) ~name ~rm ~observers () =
  rt.spawn ~name ~main:(fun ~recovery () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      if recovery then begin
        Rm.recover rm;
        Rchannel.broadcast ch (observers ()) Msg.Ready
      end;
      Rt.fork "db-exec" (exec_handler rm ch);
      Rt.fork "db-prepare" (prepare_handler rm ch);
      decide_handler rm ch ())
