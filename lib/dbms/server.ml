open Runtime
module Rt = Etx_runtime
open Dnet

let exec_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_exec with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Xa_start { xid } ->
            Rm.xa_start rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_started { xid })
        | Msg.Xa_end { xid } ->
            Rm.xa_end rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_ended { xid })
        | Msg.Exec_req { xid; ops } ->
            (* each batch runs in its own session fiber: the long simulated
               SQL of one transaction must not serialize other clients'
               transactions behind it (locks, not the server loop, are the
               concurrency control) *)
            Rt.fork "db-session" (fun () ->
                let reply = Rm.exec rm ~xid ops in
                Rchannel.send ch m.src (Msg.Exec_reply { xid; reply }))
        | Msg.Commit1 { xid } ->
            let outcome = Rm.commit_one_phase rm ~xid in
            Rchannel.send ch m.src (Msg.Commit1_reply { xid; outcome })
        | Msg.Xa_start_batch { xids } ->
            List.iter (fun xid -> Rm.xa_start rm ~xid) xids;
            Rchannel.send ch m.src (Msg.Xa_started_batch { xids })
        | Msg.Xa_end_batch { xids } ->
            List.iter (fun xid -> Rm.xa_end rm ~xid) xids;
            Rchannel.send ch m.src (Msg.Xa_ended_batch { xids })
        | _ -> ());
        loop ()
  in
  loop ()

(* db.vote_ms / db.decide_ms time the resource manager's local step only
   (vote or decide plus its forced log write) — transport latency is
   accounted by the caller's phase spans. *)
let timed sink name f =
  match sink with
  | None -> f ()
  | Some s ->
      let t0 = Rt.now () in
      let r = f () in
      s.Rt.obs_observe name (Rt.now () -. t0);
      r

let prepare_handler rm ch sink () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_prepare with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Prepare { xid } ->
            let vote = timed sink "db.vote_ms" (fun () -> Rm.vote rm ~xid) in
            Rchannel.send ch m.src (Msg.Vote_msg { xid; vote })
        | Msg.Prepare_batch { xids } ->
            let votes =
              timed sink "db.vote_ms" (fun () -> Rm.vote_many rm ~xids)
            in
            Rchannel.send ch m.src (Msg.Vote_batch { votes })
        | _ -> ());
        loop ()
  in
  loop ()

let decide_handler rm ch sink () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_decide with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Decide { xid; outcome } ->
            let (_ : Rm.outcome) =
              timed sink "db.decide_ms" (fun () -> Rm.decide rm ~xid outcome)
            in
            Rchannel.send ch m.src (Msg.Ack_decide { xid })
        | Msg.Decide_batch { items } ->
            let (_ : (Xid.t * Rm.outcome) list) =
              timed sink "db.decide_ms" (fun () -> Rm.decide_many rm ~items)
            in
            Rchannel.send ch m.src
              (Msg.Ack_decide_batch { xids = List.map fst items })
        | _ -> ());
        loop ()
  in
  loop ()

let spawn (rt : Rt.t) ~name ~rm ~observers () =
  rt.spawn ~name ~main:(fun ~recovery () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let sink = Rt.obs () in
      if recovery then begin
        Rm.recover rm;
        Rchannel.broadcast ch (observers ()) Msg.Ready
      end;
      Rt.fork "db-exec" (exec_handler rm ch);
      Rt.fork "db-prepare" (prepare_handler rm ch sink);
      decide_handler rm ch sink ())
