open Runtime
module Rt = Etx_runtime
open Dnet

let exec_handler rm ch () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_exec with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Xa_start { xid } ->
            Rm.xa_start rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_started { xid })
        | Msg.Xa_end { xid } ->
            Rm.xa_end rm ~xid;
            Rchannel.send ch m.src (Msg.Xa_ended { xid })
        | Msg.Exec_req { xid; seq; ops } ->
            (* each batch runs in its own session fiber: the long simulated
               SQL of one transaction must not serialize other clients'
               transactions behind it (locks, not the server loop, are the
               concurrency control). [exec_dedup] guards against redelivery
               (the channel only dedups within one incarnation); a [None]
               means a duplicate of a still-running batch — send nothing,
               the original's reply answers the caller. *)
            Rt.fork "db-session" (fun () ->
                match Rm.exec_dedup rm ~seq ~xid ops with
                | None -> ()
                | Some reply ->
                    Rchannel.send ch m.src (Msg.Exec_reply { xid; seq; reply }))
        | Msg.Commit1 { xid } ->
            let outcome = Rm.commit_one_phase rm ~xid in
            Rchannel.send ch m.src (Msg.Commit1_reply { xid; outcome })
        | Msg.Xa_start_batch { xids } ->
            List.iter (fun xid -> Rm.xa_start rm ~xid) xids;
            Rchannel.send ch m.src (Msg.Xa_started_batch { xids })
        | Msg.Xa_end_batch { xids } ->
            List.iter (fun xid -> Rm.xa_end rm ~xid) xids;
            Rchannel.send ch m.src (Msg.Xa_ended_batch { xids })
        | _ -> ());
        loop ()
  in
  loop ()

(* db.vote_ms / db.decide_ms time the resource manager's local step only
   (vote or decide plus its forced log write) — transport latency is
   accounted by the caller's phase spans. *)
let timed sink name f =
  match sink with
  | None -> f ()
  | Some s ->
      let t0 = Rt.now () in
      let r = f () in
      s.Rt.obs_observe name (Rt.now () -. t0);
      r

let prepare_handler rm ch sink () =
  let rec loop () =
    match Rt.recv_cls Msg.cls_prepare with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Prepare { xid } ->
            let vote = timed sink "db.vote_ms" (fun () -> Rm.vote rm ~xid) in
            Rchannel.send ch m.src (Msg.Vote_msg { xid; vote })
        | Msg.Prepare_batch { xids } ->
            let votes =
              timed sink "db.vote_ms" (fun () -> Rm.vote_many rm ~xids)
            in
            Rchannel.send ch m.src (Msg.Vote_batch { votes })
        | _ -> ());
        loop ()
  in
  loop ()

let decide_handler rm ch sink ~invalidate ~observers () =
  (* Invalidation piggybacks on the decide path: when a decide commits, the
     transaction's actual write keyset (its retained workspace) is
     broadcast to every application server BEFORE the ack. Ordering
     matters: the decider's broadcast_collect keeps re-driving Decide until
     the ack arrives, so a crash between commit and broadcast is re-driven
     and the invalidation is re-sent — the ack is the protocol's evidence
     that invalidation went out. Re-delivered decides re-broadcast
     harmlessly (dropping an absent entry is a no-op). A commit whose
     workspace is empty broadcasts nothing: [keys = []] is reserved as the
     flush-all sentinel. *)
  let invalidate_commits xids =
    if invalidate then begin
      let keys =
        List.concat_map (fun xid -> Rm.writes_of rm xid) xids
        |> List.sort_uniq String.compare
      in
      if keys <> [] then
        Rchannel.broadcast ch (observers ()) (Msg.Invalidate { keys })
    end
  in
  let rec loop () =
    match Rt.recv_cls Msg.cls_decide with
    | None -> ()
    | Some m ->
        (match m.payload with
        | Msg.Decide { xid; outcome } ->
            let applied =
              timed sink "db.decide_ms" (fun () -> Rm.decide rm ~xid outcome)
            in
            if applied = Rm.Commit then invalidate_commits [ xid ];
            Rchannel.send ch m.src (Msg.Ack_decide { xid })
        | Msg.Decide_batch { items } ->
            let applied =
              timed sink "db.decide_ms" (fun () -> Rm.decide_many rm ~items)
            in
            invalidate_commits
              (List.filter_map
                 (fun (xid, o) -> if o = Rm.Commit then Some xid else None)
                 applied);
            Rchannel.send ch m.src
              (Msg.Ack_decide_batch { xids = List.map fst items })
        | _ -> ());
        loop ()
  in
  loop ()

let spawn (rt : Rt.t) ?(invalidate = false) ~name ~rm ~observers () =
  rt.spawn ~name ~main:(fun ~recovery () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let sink = Rt.obs () in
      if recovery then begin
        Rm.recover rm;
        (* snapshot replay loses committed workspaces, so this incarnation
           cannot enumerate the write keysets of pre-crash commits:
           broadcast the flush-all sentinel and let every cache start
           cold *)
        if invalidate then
          Rchannel.broadcast ch (observers ()) (Msg.Invalidate { keys = [] });
        Rchannel.broadcast ch (observers ()) Msg.Ready
      end;
      Rt.fork "db-exec" (exec_handler rm ch);
      Rt.fork "db-prepare" (prepare_handler rm ch sink);
      decide_handler rm ch sink ~invalidate ~observers ())
