(** Wire messages understood by a database server.

    [Prepare]/[Vote_msg]/[Decide]/[Ack_decide]/[Ready] are the paper's
    Figure 3 message types; [Exec_req]/[Exec_reply] carry the business-logic
    manipulation the paper abstracts as "transactional manipulation";
    [Commit1]/[Commit1_reply] support the unreliable baseline protocol's
    single-phase commit (Fig. 7a). *)

type Runtime.Types.payload +=
  | Xa_start of { xid : Xid.t }
  | Xa_started of { xid : Xid.t }
  | Xa_end of { xid : Xid.t }
  | Xa_ended of { xid : Xid.t }
  | Exec_req of { xid : Xid.t; seq : int; ops : Rm.op list }
      (** [seq] numbers the physical exec attempts within [xid] so the
          server can recognize a redelivered batch (see
          {!Rm.exec_dedup}) *)
  | Exec_reply of { xid : Xid.t; seq : int; reply : Rm.exec_reply }
  | Prepare of { xid : Xid.t }
  | Vote_msg of { xid : Xid.t; vote : Rm.vote }
  | Decide of { xid : Xid.t; outcome : Rm.outcome }
  | Ack_decide of { xid : Xid.t }
  | Ready
  | Commit1 of { xid : Xid.t }
  | Commit1_reply of { xid : Xid.t; outcome : Rm.outcome }
  (* batched variants (group commit): one message carries a whole window of
     transactions, so the prepare/decide round and its forced log writes are
     paid once per batch instead of once per transaction *)
  | Xa_start_batch of { xids : Xid.t list }
  | Xa_started_batch of { xids : Xid.t list }
  | Xa_end_batch of { xids : Xid.t list }
  | Xa_ended_batch of { xids : Xid.t list }
  | Prepare_batch of { xids : Xid.t list }
  | Vote_batch of { votes : (Xid.t * Rm.vote) list }
  | Decide_batch of { items : (Xid.t * Rm.outcome) list }
  | Ack_decide_batch of { xids : Xid.t list }
  (* change-log shipping (primary database -> its read replicas) and the
     bounded-staleness replica read protocol (application server -> replica) *)
  | Ship of {
      entries : (int * (string * Value.t) list) list;
          (** committed write-sets above the replica's applied LSN,
              ascending; [] is a watermark-only heartbeat *)
      upto : int;  (** primary's last committed LSN at ship time *)
    }
  | Ship_snapshot of {
      state : (string * Value.t) list;
      as_of : int;
      upto : int;
    }
      (** the replica fell below the primary's retention floor (a
          checkpoint ran): re-seed from a full committed snapshot *)
  | Replica_exec of { rid : int; seq : int; ops : Rm.op list; bound : int }
      (** read-only business batch; [bound] is the staleness the client
          tolerates (LSN delta) *)
  | Replica_values of {
      rid : int;
      seq : int;
      values : Value.t option list;
      lsn : int;  (** the replica's applied LSN: the state the reads saw *)
      lag : int;  (** provable staleness at serve time (LSN delta) *)
    }
  | Replica_stale of { rid : int; seq : int; lag : int }
      (** lag exceeded [bound]: caller must fall back to the primary *)
  | Replica_refused of { rid : int; seq : int }
      (** the batch was not read-only: replicas never execute writes *)
  (* online shard migration (driver application server <-> database):
     ownership sealing plus the pull/push range-copy protocol layered on
     the same change-feed machinery that serves read replicas. Handled by
     a dedicated fiber forked only on migratable databases. *)
  | Mig_seal_req of { epoch : int; owns : string -> bool }
      (** install (and force-log) an ownership filter: from now on this
          database votes No on any transaction writing a key it does not
          own under the epoch-[epoch] map. Monotone in [epoch]; replays
          and re-seals are idempotent *)
  | Mig_seal_ack of { epoch : int }
  | Mig_pull_req of { from_lsn : int }
      (** read the committed change feed above [from_lsn] (the driver's
          per-source watermark); read-only and idempotent *)
  | Mig_pull_resp of {
      from_lsn : int;  (** echoed, so stale replies can be discarded *)
      feed : Rm.change_feed;
      watermark : int;  (** the database's last committed LSN *)
      in_doubt_moving : int;
          (** prepared-but-undecided transactions that write a key the
              seal disowns: the copy is complete only once these drained
              to zero (each will commit below a later watermark or
              abort) *)
      sealed : int;  (** currently installed seal epoch; 0 = none *)
    }
  | Mig_push_req of {
      src : string;  (** source database name: the watermark namespace *)
      snapshot : (string * Value.t) list option;
          (** [Some state]: re-seed (the source fell below its retention
              floor), applied before [entries] *)
      entries : (int * (string * Value.t) list) list;
          (** moving-key write-sets in source-LSN order, ascending *)
      upto : int;  (** source LSN the transfer covers through *)
    }
  | Mig_push_ack of { src : string; upto : int }
      (** [upto] = the destination's durable per-[src] import watermark *)
  | Invalidate of { keys : string list }
      (** database → every application server: the write keyset of a
          just-committed transaction (or the union over a committed batch),
          piggybacked on the Decide fan-out so method caches drop entries
          whose read keyset intersects it. [keys = []] is the flush-all
          sentinel, broadcast by a database that recovered from a snapshot
          and can no longer enumerate the writes it replayed. Sent only
          when the deployment enables invalidation (cache on). *)

(* demux classes, one per server-side handler loop plus the stub-side
   reply and readiness streams *)
let cls_exec =
  Runtime.Etx_runtime.register_class ~name:"db-exec" (function
    | Exec_req _ | Commit1 _ | Xa_start _ | Xa_end _ | Xa_start_batch _
    | Xa_end_batch _ ->
        true
    | _ -> false)

let cls_prepare =
  Runtime.Etx_runtime.register_class ~name:"db-prepare" (function
    | Prepare _ | Prepare_batch _ -> true
    | _ -> false)

let cls_decide =
  Runtime.Etx_runtime.register_class ~name:"db-decide" (function
    | Decide _ | Decide_batch _ -> true
    | _ -> false)

let cls_reply =
  Runtime.Etx_runtime.register_class ~name:"db-reply" (function
    | Exec_reply _ | Vote_msg _ | Ack_decide _ | Xa_started _ | Xa_ended _
    | Commit1_reply _ | Xa_started_batch _ | Xa_ended_batch _ | Vote_batch _
    | Ack_decide_batch _ ->
        true
    | _ -> false)

let cls_invalidate =
  Runtime.Etx_runtime.register_class ~name:"db-invalidate" (function
    | Invalidate _ -> true
    | _ -> false)

let cls_ship =
  Runtime.Etx_runtime.register_class ~name:"db-ship" (function
    | Ship _ | Ship_snapshot _ -> true
    | _ -> false)

let cls_replica_exec =
  Runtime.Etx_runtime.register_class ~name:"replica-exec" (function
    | Replica_exec _ -> true
    | _ -> false)

let cls_replica_reply =
  Runtime.Etx_runtime.register_class ~name:"replica-reply" (function
    | Replica_values _ | Replica_stale _ | Replica_refused _ -> true
    | _ -> false)

let cls_mig =
  Runtime.Etx_runtime.register_class ~name:"db-mig" (function
    | Mig_seal_req _ | Mig_pull_req _ | Mig_push_req _ -> true
    | _ -> false)

let cls_mig_reply =
  Runtime.Etx_runtime.register_class ~name:"db-mig-reply" (function
    | Mig_seal_ack _ | Mig_pull_resp _ | Mig_push_ack _ -> true
    | _ -> false)

let cls_ready =
  Runtime.Etx_runtime.register_class ~name:"db-ready" (function
    | Ready -> true
    | _ -> false)
