open Runtime
module Rt = Etx_runtime

type outcome = Commit | Abort

type vote = Yes | No

type op =
  | Get of string
  | Put of string * Value.t
  | Add of string * int
  | Ensure_min of string * int
  | Fail

type exec_reply =
  | Exec_ok of { values : Value.t option list; business_ok : bool }
  | Exec_conflict of string
  | Exec_rejected

type timing = {
  start_cpu : float;
  sql_cpu : float;
  end_cpu : float;
  prepare_cpu : float;
  commit_cpu : float;
  abort_cpu : float;
}

(* Calibration: with the three-tier network model the application-server ↔
   database round trip averages 2.4 ms, so the CPU costs below put the
   app-server-visible components at Figure 8's values: start 3.4, SQL 187,
   end 3.4, prepare ≈ 19, commit 18.6. The forced-IO part of prepare/commit
   (12.5 ms) is charged by the disk. *)
let paper_timing =
  {
    start_cpu = 1.0;
    sql_cpu = 184.6;
    end_cpu = 1.0;
    prepare_cpu = 4.1;
    commit_cpu = 3.7;
    abort_cpu = 1.0;
  }

let zero_timing =
  {
    start_cpu = 0.;
    sql_cpu = 0.;
    end_cpu = 0.;
    prepare_cpu = 0.;
    commit_cpu = 0.;
    abort_cpu = 0.;
  }

type txn_phase = Active | Prepared | Committed | Aborted

type txn = {
  xid : Xid.t;
  mutable phase : txn_phase;
  mutable writes : (string * Value.t) list;  (* workspace, oldest first *)
  mutable poisoned : bool;
  mutable exec_log : (int * exec_reply option) list;
      (* per delivered exec sequence number: [None] while the batch is
         still executing, [Some reply] once terminal — the at-least-once
         redelivery guard (see [exec_dedup]) *)
}

(* Typed redo records. Each occupies one LSN in the redo log; recovery is
   checkpoint-load + LSN-ordered replay of everything above the latest
   [W_snapshot]. *)
type redo =
  | W_prepared of Xid.t * (string * Value.t) list
  | W_committed of Xid.t * (string * Value.t) list
  | W_aborted of Xid.t
  | W_snapshot of {
      state : (string * Value.t) list;  (** full committed state *)
      committed : Xid.t list;  (** commit order, oldest first *)
      aborted : Xid.t list;
      imports : (string * int) list;
          (** per-source migration import watermarks (empty except on
              migration destinations) *)
    }
  (* online shard migration (DESIGN.md §16) *)
  | W_seal of int * (string -> bool)
      (** ownership filter of the given epoch: replayed on recovery so a
          sealed source database cannot resurrect write acceptance for
          keys that are mid-migration (the predicate is pure placement
          data captured from the target shard map) *)
  | W_import of {
      src : string;
      snapshot : (string * Value.t) list option;
      entries : (int * (string * Value.t) list) list;
      upto : int;
    }
      (** migrated write-sets from source database [src], covering its
          change log through LSN [upto]; applied to committed state and
          fed to the change feed like a commit *)

(* On-disk footprint estimator for the db.log_bytes gauge: keys/strings
   dominate, fixed per-record framing overhead otherwise. *)
let value_size = function
  | Value.Int _ -> 8
  | Value.Str s -> 8 + String.length s

let writes_size ws =
  List.fold_left (fun a (k, v) -> a + 16 + String.length k + value_size v) 0 ws

let redo_size = function
  | W_prepared (_, ws) | W_committed (_, ws) -> 32 + writes_size ws
  | W_aborted _ -> 24
  | W_snapshot { state; committed; aborted; imports } ->
      32 + writes_size state
      + (16 * (List.length committed + List.length aborted))
      + List.fold_left (fun a (s, _) -> a + 16 + String.length s) 0 imports
  | W_seal _ -> 24
  | W_import { src; snapshot; entries; _ } ->
      32 + String.length src
      + writes_size (Option.value ~default:[] snapshot)
      + List.fold_left (fun a (_, ws) -> a + 8 + writes_size ws) 0 entries

(* A lock is exclusive (one writer) or shared (any number of readers);
   shared locks exist only in strict-2PL mode. *)
type lock_state = L_exclusive of Xid.t | L_shared of Xid.t list

type t = {
  rm_name : string;
  rm_disk : Dstore.Disk.t;
  timing : timing;
  seed_data : (string * Value.t) list;
  read_locks : bool;
  log : redo Dstore.Log.t;
  store : (string, Value.t) Hashtbl.t;
  locks : (string, lock_state) Hashtbl.t;
  txns : (Xid.t, txn) Hashtbl.t;
  mutable commit_order : Xid.t list;  (* newest first *)
  mutable vote_log : (Xid.t * vote) list;  (* newest first *)
  (* committed change history above the snapshot floor, for change-log
     shipping to read replicas and for [state_at] (spec re-execution):
     [(lsn, writes)] newest first. Rebuilt by recovery, reset by
     checkpoint. *)
  mutable changes : (int * (string * Value.t) list) list;
  mutable snapshot_state : (string * Value.t) list;
      (* committed state as of [snapshot_lsn] (seed data at LSN 0) *)
  mutable snapshot_lsn : int;
  mutable last_commit_lsn : int;
      (* shipping watermark: LSN of the latest committed change
         (= [snapshot_lsn] right after a checkpoint) *)
  mutable recovery_steps : int;  (* redo records applied by the last recover *)
  (* online shard migration (DESIGN.md §16) *)
  mutable seal : (int * (string -> bool)) option;
      (* highest-epoch ownership filter installed; a prepare whose write
         set leaves the owned region votes No *)
  commit_lsns : (Xid.t, int) Hashtbl.t;
      (* LSN of each transaction's commit record (above the snapshot
         floor): the migration-integrity oracle checks destination import
         watermarks against these *)
  imports : (string, int) Hashtbl.t;
      (* migration destination: highest source LSN imported, per source
         database name; durable via W_import / W_snapshot *)
}

let create ?(timing = paper_timing) ?(seed_data = []) ?(read_locks = false)
    ?(group_commit = false) ~disk ~name () =
  let store = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace store k v) seed_data;
  {
    rm_name = name;
    rm_disk = disk;
    timing;
    seed_data;
    read_locks;
    log =
      Dstore.Log.create ~coalesce:group_commit ~size_of:redo_size
        ~obs_prefix:"db" ~disk ();
    store;
    locks = Hashtbl.create 64;
    txns = Hashtbl.create 64;
    commit_order = [];
    vote_log = [];
    changes = [];
    snapshot_state = seed_data;
    snapshot_lsn = 0;
    last_commit_lsn = 0;
    recovery_steps = 0;
    seal = None;
    commit_lsns = Hashtbl.create 64;
    imports = Hashtbl.create 4;
  }

(* Append one redo record and make it durable: the append itself is free
   (volatile tail), the force charges the disk — one [Disk.force] per
   call in per-call mode, coalesced into group-commit windows when the
   database was created with [group_commit]. *)
let log_one t ~label r =
  let lsn = Dstore.Log.append t.log r in
  Dstore.Log.force ~label t.log;
  lsn

(* [changes] must stay sorted newest-first: under group commit two
   decides can share one force window and the higher-LSN fiber may
   resume first, so a plain prepend would record the pair out of order
   and [changes_since] (which reverses the prefix) would ship them
   descending — the replica's idempotent apply would then drop the
   lower LSN forever. Insertion is O(1) in the common in-order case. *)
let note_commit t ~lsn writes =
  let rec insert = function
    | ((l, _) as hd) :: rest when l > lsn -> hd :: insert rest
    | rest -> (lsn, writes) :: rest
  in
  t.changes <- insert t.changes;
  if lsn > t.last_commit_lsn then t.last_commit_lsn <- lsn

let name t = t.rm_name
let group_commit t = Dstore.Log.coalescing t.log
let disk t = t.rm_disk

let find_txn t xid = Hashtbl.find_opt t.txns xid

let get_txn t xid =
  match find_txn t xid with
  | Some txn -> txn
  | None ->
      let txn =
        { xid; phase = Active; writes = []; poisoned = false; exec_log = [] }
      in
      Hashtbl.replace t.txns xid txn;
      txn

let release_locks t xid =
  let updates =
    Hashtbl.fold
      (fun k state acc ->
        match state with
        | L_exclusive owner when Xid.equal owner xid -> (k, None) :: acc
        | L_shared owners when List.exists (Xid.equal xid) owners -> (
            match List.filter (fun o -> not (Xid.equal o xid)) owners with
            | [] -> (k, None) :: acc
            | rest -> (k, Some (L_shared rest)) :: acc)
        | L_exclusive _ | L_shared _ -> acc)
      t.locks []
  in
  List.iter
    (fun (k, state) ->
      match state with
      | None -> Hashtbl.remove t.locks k
      | Some s -> Hashtbl.replace t.locks k s)
    updates

(* Current value as seen by a transaction: its workspace shadows the
   committed store. *)
let lookup t txn key =
  let rec in_workspace = function
    | [] -> None
    | (k, v) :: rest -> (
        match in_workspace rest with
        | Some _ as hit -> hit
        | None -> if String.equal k key then Some v else None)
  in
  match in_workspace txn.writes with
  | Some v -> Some v
  | None -> Hashtbl.find_opt t.store key

let write_set ops =
  List.filter_map
    (function
      | Put (k, _) | Add (k, _) -> Some k
      | Get _ | Ensure_min _ | Fail -> None)
    ops
  |> List.sort_uniq String.compare

let read_set ops =
  List.filter_map
    (function
      | Get k | Ensure_min (k, _) -> Some k
      | Put _ | Add _ | Fail -> None)
    ops
  |> List.sort_uniq String.compare

(* Acquire every lock the batch needs or none (atomic): exclusive for the
   write set, shared for the read set in strict-2PL mode. A sole reader may
   upgrade to a writer. *)
let try_lock_all t xid ops =
  let writes = write_set ops in
  let reads =
    if t.read_locks then
      List.filter (fun k -> not (List.mem k writes)) (read_set ops)
    else []
  in
  let write_conflict k =
    match Hashtbl.find_opt t.locks k with
    | None -> false
    | Some (L_exclusive owner) -> not (Xid.equal owner xid)
    | Some (L_shared owners) ->
        not (List.for_all (Xid.equal xid) owners) (* upgrade iff sole owner *)
  in
  let read_conflict k =
    match Hashtbl.find_opt t.locks k with
    | None | Some (L_shared _) -> false
    | Some (L_exclusive owner) -> not (Xid.equal owner xid)
  in
  match
    ( List.find_opt write_conflict writes,
      List.find_opt read_conflict reads )
  with
  | Some k, _ | None, Some k -> Error k
  | None, None ->
      List.iter (fun k -> Hashtbl.replace t.locks k (L_exclusive xid)) writes;
      List.iter
        (fun k ->
          match Hashtbl.find_opt t.locks k with
          | None -> Hashtbl.replace t.locks k (L_shared [ xid ])
          | Some (L_shared owners) ->
              if not (List.exists (Xid.equal xid) owners) then
                Hashtbl.replace t.locks k (L_shared (xid :: owners))
          | Some (L_exclusive _) -> () (* ours, by the conflict check *))
        reads;
      Ok ()

let abort_local t txn ~log =
  release_locks t txn.xid;
  txn.phase <- Aborted;
  if log then ignore (log_one t ~label:"abort" (W_aborted txn.xid))

let xa_start t ~xid =
  let (_ : txn) = get_txn t xid in
  Rt.work "start" t.timing.start_cpu

let xa_end t ~xid =
  (* Must NOT create the transaction: if a crash wiped it after xa_start,
     re-creating an empty workspace here would let it vote Yes and commit a
     spurious no-op — the update would be silently lost. An unknown branch
     is simply detached; the prepare phase will then vote No. *)
  let (_ : txn option) = find_txn t xid in
  Rt.work "end" t.timing.end_cpu

let exec t ~xid ops =
  match find_txn t xid with
  | None -> Exec_rejected
  | Some txn -> (
  match txn.phase with
  | Prepared | Committed | Aborted -> Exec_rejected
  | Active -> (
      match try_lock_all t xid ops with
      | Error key -> Exec_conflict key
      | Ok () ->
          Rt.work "SQL" t.timing.sql_cpu;
          (* re-validate: a concurrent decide may have aborted us while the
             simulated SQL was running *)
          if txn.phase <> Active then Exec_rejected
          else begin
            let values = ref [] in
            let ok = ref true in
            let step op =
              if !ok then
                match op with
                | Get k -> values := lookup t txn k :: !values
                | Put (k, v) -> txn.writes <- txn.writes @ [ (k, v) ]
                | Add (k, n) -> (
                    match lookup t txn k with
                    | Some (Value.Int cur) ->
                        txn.writes <- txn.writes @ [ (k, Value.Int (cur + n)) ]
                    | None -> txn.writes <- txn.writes @ [ (k, Value.Int n) ]
                    | Some (Value.Str _) ->
                        ok := false;
                        txn.poisoned <- true)
                | Ensure_min (k, bound) -> (
                    match lookup t txn k with
                    | Some (Value.Int cur) when cur >= bound -> ()
                    | Some (Value.Int _) | None | Some (Value.Str _) ->
                        ok := false;
                        txn.poisoned <- true)
                | Fail ->
                    ok := false;
                    txn.poisoned <- true
            in
            List.iter step ops;
            Exec_ok { values = List.rev !values; business_ok = !ok }
          end))

(* Exec with at-least-once delivery protection. A reliable channel only
   dedups within one receiver incarnation: after a database crash the new
   incarnation's channel state is fresh, so a peer's outbox redelivers
   every un-acked [Exec_req] — and the readiness-epoch re-send in the stub
   adds another copy. A batch containing [Add]/[Put] is not idempotent
   (each application appends to the workspace, compounding relative
   updates), so the server routes every exec through here: each {e
   physical} attempt carries a unique per-transaction [seq], exactly one
   delivery of a given [seq] executes, the terminal reply is replayed to
   late duplicates, and a duplicate that arrives while the original is
   still executing is dropped ([None] — the original's reply answers the
   caller). Conflict retries use a {e fresh} [seq], so they re-execute as
   before. *)
let exec_dedup t ~seq ~xid ops =
  match find_txn t xid with
  | None -> Some Exec_rejected
  | Some txn -> (
      match List.assoc_opt seq txn.exec_log with
      | Some (Some cached) -> Some cached
      | Some None -> None
      | None ->
          txn.exec_log <- (seq, None) :: txn.exec_log;
          let reply = exec t ~xid ops in
          txn.exec_log <-
            (seq, Some reply) :: List.remove_assoc seq txn.exec_log;
          Some reply)

(* A sealed database disowns the keys a migration is moving away: any
   not-yet-prepared transaction writing one votes No. Transactions that
   prepared before the seal keep their Yes (their decide drains before the
   copy completes — the driver waits on [in_doubt_moving]); after that
   drain no new commit can ever touch a moving key here, which is the
   no-lost-update half of the migration safety argument. *)
let violates_seal t txn =
  match t.seal with
  | None -> false
  | Some (_, owns) -> List.exists (fun (k, _) -> not (owns k)) txn.writes

let vote t ~xid =
  let record v =
    t.vote_log <- (xid, v) :: t.vote_log;
    v
  in
  record
  @@
  match find_txn t xid with
  | None -> No
  | Some txn -> (
      match txn.phase with
      | Prepared | Committed -> Yes
      | Aborted -> No
      | Active ->
          if txn.poisoned || violates_seal t txn then begin
            Rt.work "abort" t.timing.abort_cpu;
            abort_local t txn ~log:false;
            No
          end
          else begin
            Rt.work "prepare" t.timing.prepare_cpu;
            (* Both the CPU charge and the forced log write suspend this
               fiber; a concurrent decide (e.g. a cleaning thread's abort)
               may have terminated the transaction meanwhile, so re-validate
               after every suspension instead of blindly promoting. *)
            if txn.phase <> Active then
              match txn.phase with
              | Committed | Prepared -> Yes
              | Aborted | Active -> No
            else begin
              ignore (log_one t ~label:"prepare" (W_prepared (xid, txn.writes)));
              if txn.phase = Active then begin
                txn.phase <- Prepared;
                Yes
              end
              else
                match txn.phase with
                | Committed | Prepared -> Yes
                | Aborted | Active ->
                    (* aborted while the prepare record was being forced:
                       make the log agree so recovery does not resurrect an
                       in-doubt transaction *)
                    ignore (log_one t ~label:"abort" (W_aborted xid));
                    No
            end
          end)

(* Group-commit prepare: classify and charge each transaction exactly as
   [vote] does, but stage the W_prepared records and force them all with a
   single disk write. The same post-suspension re-validation applies — any
   transaction aborted while the batch force was in flight gets a W_aborted
   record so recovery cannot resurrect it. *)
let vote_many t ~xids =
  let classify xid =
    match find_txn t xid with
    | None -> (xid, `No)
    | Some txn -> (
        match txn.phase with
        | Prepared | Committed -> (xid, `Yes)
        | Aborted -> (xid, `No)
        | Active ->
            if txn.poisoned || violates_seal t txn then begin
              Rt.work "abort" t.timing.abort_cpu;
              abort_local t txn ~log:false;
              (xid, `No)
            end
            else begin
              Rt.work "prepare" t.timing.prepare_cpu;
              if txn.phase <> Active then
                match txn.phase with
                | Committed | Prepared -> (xid, `Yes)
                | Aborted | Active -> (xid, `No)
              else (xid, `Stage txn)
            end)
  in
  let staged = List.map classify xids in
  let to_force =
    List.filter_map
      (function
        | xid, `Stage txn -> Some (W_prepared (xid, txn.writes))
        | _ -> None)
      staged
  in
  if to_force <> [] then begin
    Dstore.Log.append_list t.log to_force;
    Dstore.Log.force ~label:"prepare" t.log
  end;
  List.map
    (fun (xid, cls) ->
      let v =
        match cls with
        | `Yes -> Yes
        | `No -> No
        | `Stage txn ->
            if txn.phase = Active then begin
              txn.phase <- Prepared;
              Yes
            end
            else (
              match txn.phase with
              | Committed | Prepared -> Yes
              | Aborted | Active ->
                  ignore (log_one t ~label:"abort" (W_aborted xid));
                  No)
      in
      t.vote_log <- (xid, v) :: t.vote_log;
      (xid, v))
    staged

let apply_writes t writes =
  List.iter (fun (k, v) -> Hashtbl.replace t.store k v) writes

let commit_prepared t txn =
  Rt.work "commit" t.timing.commit_cpu;
  let lsn = log_one t ~label:"commit" (W_committed (txn.xid, txn.writes)) in
  apply_writes t txn.writes;
  release_locks t txn.xid;
  txn.phase <- Committed;
  t.commit_order <- txn.xid :: t.commit_order;
  Hashtbl.replace t.commit_lsns txn.xid lsn;
  note_commit t ~lsn txn.writes

let decide t ~xid outcome =
  match find_txn t xid with
  | None ->
      (* never heard of it: record the abort so later decides agree *)
      let txn = get_txn t xid in
      txn.phase <- Aborted;
      Abort
  | Some txn -> (
      match (txn.phase, outcome) with
      | Committed, (Commit | Abort) -> Commit
      | Aborted, (Commit | Abort) -> Abort
      | Prepared, Commit ->
          commit_prepared t txn;
          Commit
      | Prepared, Abort ->
          Rt.work "abort" t.timing.abort_cpu;
          abort_local t txn ~log:true;
          Abort
      | Active, (Commit | Abort) ->
          (* commit without prepare violates V.2; abort defensively *)
          Rt.work "abort" t.timing.abort_cpu;
          abort_local t txn ~log:false;
          Abort)

(* Group-commit decide: stage every transaction's terminal log record (the
   per-transaction CPU still charges), force them together with one disk
   write, then apply. Case analysis mirrors [decide]; the post-force phase
   guard keeps a concurrently-decided transaction from being applied
   twice. *)
let decide_many t ~items =
  let stage (xid, outcome) =
    match find_txn t xid with
    | None ->
        let txn = get_txn t xid in
        txn.phase <- Aborted;
        (xid, Abort, None)
    | Some txn -> (
        match (txn.phase, outcome) with
        | Committed, (Commit | Abort) -> (xid, Commit, None)
        | Aborted, (Commit | Abort) -> (xid, Abort, None)
        | Prepared, Commit ->
            Rt.work "commit" t.timing.commit_cpu;
            (xid, Commit, Some (txn, W_committed (xid, txn.writes)))
        | Prepared, Abort ->
            Rt.work "abort" t.timing.abort_cpu;
            (xid, Abort, Some (txn, W_aborted xid))
        | Active, (Commit | Abort) ->
            (* commit without prepare violates V.2; abort defensively *)
            Rt.work "abort" t.timing.abort_cpu;
            abort_local t txn ~log:false;
            (xid, Abort, None))
  in
  let staged = List.map stage items in
  (* stage every terminal record in the volatile tail (each draws its own
     LSN), then force the window with a single disk write *)
  let staged =
    List.map
      (fun (xid, out, pending) ->
        match pending with
        | Some (txn, r) -> (xid, out, Some (txn, r, Dstore.Log.append t.log r))
        | None -> (xid, out, None))
      staged
  in
  let records =
    List.filter_map (function _, _, Some (_, r, _) -> Some r | _ -> None)
      staged
  in
  let label =
    if List.exists (function W_committed _ -> true | _ -> false) records then
      "commit"
    else "abort"
  in
  if records <> [] then Dstore.Log.force ~label t.log;
  List.map
    (fun (xid, out, pending) ->
      (match pending with
      | Some (txn, W_committed (_, writes), lsn) when txn.phase = Prepared ->
          apply_writes t writes;
          release_locks t xid;
          txn.phase <- Committed;
          t.commit_order <- xid :: t.commit_order;
          Hashtbl.replace t.commit_lsns xid lsn;
          note_commit t ~lsn writes
      | Some (txn, W_aborted _, _) when txn.phase = Prepared ->
          abort_local t txn ~log:false (* terminal record already forced *)
      | Some _ | None -> ());
      (xid, out))
    staged

let commit_one_phase t ~xid =
  match find_txn t xid with
  | None -> Abort
  | Some txn -> (
      match txn.phase with
      | Committed -> Commit
      | Aborted | Prepared -> Abort
      | Active ->
          if txn.poisoned then begin
            abort_local t txn ~log:false;
            Abort
          end
          else begin
            commit_prepared t txn;
            Commit
          end)

let recover t =
  (* crash cut first: records appended but never forced died with the
     incarnation (exactly as if the old force-per-append WAL had crashed
     mid-force, before the record existed) *)
  Dstore.Log.crash_cut t.log;
  Hashtbl.reset t.store;
  Hashtbl.reset t.locks;
  Hashtbl.reset t.txns;
  t.commit_order <- [];
  t.changes <- [];
  t.snapshot_state <- t.seed_data;
  t.snapshot_lsn <- 0;
  t.last_commit_lsn <- 0;
  t.seal <- None;
  Hashtbl.reset t.commit_lsns;
  Hashtbl.reset t.imports;
  List.iter (fun (k, v) -> Hashtbl.replace t.store k v) t.seed_data;
  let replay_one lsn = function
    | W_prepared (xid, writes) ->
        let txn = get_txn t xid in
        txn.phase <- Prepared;
        txn.writes <- writes
    | W_committed (xid, writes) ->
        let txn = get_txn t xid in
        txn.phase <- Committed;
        txn.writes <- writes;
        apply_writes t writes;
        t.commit_order <- xid :: t.commit_order;
        Hashtbl.replace t.commit_lsns xid lsn;
        note_commit t ~lsn writes
    | W_aborted xid ->
        let txn = get_txn t xid in
        txn.phase <- Aborted
    | W_snapshot { state; committed; aborted; imports } ->
        Hashtbl.reset t.store;
        List.iter (fun (k, v) -> Hashtbl.replace t.store k v) state;
        List.iter
          (fun xid ->
            let txn = get_txn t xid in
            txn.phase <- Committed;
            t.commit_order <- xid :: t.commit_order)
          committed;
        List.iter
          (fun xid ->
            let txn = get_txn t xid in
            txn.phase <- Aborted)
          aborted;
        Hashtbl.reset t.imports;
        List.iter (fun (s, w) -> Hashtbl.replace t.imports s w) imports;
        t.changes <- [];
        t.snapshot_state <- state;
        t.snapshot_lsn <- lsn;
        if lsn > t.last_commit_lsn then t.last_commit_lsn <- lsn
    | W_seal (epoch, owns) -> (
        match t.seal with
        | Some (e, _) when e >= epoch -> ()
        | Some _ | None -> t.seal <- Some (epoch, owns))
    | W_import { src; snapshot; entries; upto } ->
        (match snapshot with
        | Some state -> apply_writes t state
        | None -> ());
        List.iter (fun (_, ws) -> apply_writes t ws) entries;
        let writes =
          Option.value ~default:[] snapshot @ List.concat_map snd entries
        in
        if writes <> [] then note_commit t ~lsn writes;
        let cur = Option.value ~default:0 (Hashtbl.find_opt t.imports src) in
        if upto > cur then Hashtbl.replace t.imports src upto
  in
  (* checkpoint-bounded replay: scan for the latest durable snapshot, then
     apply only it and the records above it, in LSN order *)
  let ckpt = ref 0 in
  Dstore.Log.iter_from t.log ~lsn:(Dstore.Log.base_lsn t.log) ~f:(fun lsn r ->
      match r with W_snapshot _ -> ckpt := lsn | _ -> ());
  let steps = ref 0 in
  Dstore.Log.iter_from t.log
    ~lsn:(max !ckpt (Dstore.Log.base_lsn t.log))
    ~f:(fun lsn r ->
      incr steps;
      replay_one lsn r);
  t.recovery_steps <- !steps;
  (* in-doubt transactions keep their write locks across the crash (read
     sets are not logged, so shared locks are volatile) *)
  Hashtbl.iter
    (fun xid txn ->
      if txn.phase = Prepared then
        List.iter
          (fun (k, _) -> Hashtbl.replace t.locks k (L_exclusive xid))
          txn.writes)
    t.txns

let checkpoint t =
  let state = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store [] in
  let decided phase =
    Hashtbl.fold
      (fun xid txn acc -> if txn.phase = phase then xid :: acc else acc)
      t.txns []
    |> List.sort Xid.compare
  in
  let prepared =
    Hashtbl.fold
      (fun xid txn acc ->
        if txn.phase = Prepared then (xid, txn.writes) :: acc else acc)
      t.txns []
  in
  (* Crash-atomic: the snapshot and the in-doubt workspaces are appended
     to the volatile tail and made durable by ONE force — a crash before
     it cuts the whole group (recovery replays the untruncated history), a
     crash after it finds a complete checkpoint. Only then is the history
     below the snapshot truncated; the old truncate-then-append order had
     a window in which a crash lost every committed record. *)
  let snap_lsn =
    Dstore.Log.append t.log
      (W_snapshot
         {
           state;
           committed = List.rev t.commit_order;
           aborted = decided Aborted;
           imports = Hashtbl.fold (fun s w acc -> (s, w) :: acc) t.imports [];
         })
  in
  (* in-doubt workspaces stay individually recoverable *)
  List.iter
    (fun (xid, writes) ->
      ignore (Dstore.Log.append t.log (W_prepared (xid, writes))))
    prepared;
  (* the ownership seal must survive the truncation below the snapshot *)
  (match t.seal with
  | Some (epoch, owns) ->
      ignore (Dstore.Log.append t.log (W_seal (epoch, owns)))
  | None -> ());
  Dstore.Log.force ~label:"checkpoint" t.log;
  Dstore.Log.truncate_below t.log ~lsn:snap_lsn;
  t.snapshot_state <- state;
  t.snapshot_lsn <- snap_lsn;
  t.changes <- [];
  if snap_lsn > t.last_commit_lsn then t.last_commit_lsn <- snap_lsn

let log_length t = Dstore.Log.length t.log
let log_bytes t = Dstore.Log.bytes t.log
let appended_lsn t = Dstore.Log.appended_lsn t.log
let durable_lsn t = Dstore.Log.durable_lsn t.log
let last_commit_lsn t = t.last_commit_lsn
let recovery_steps t = t.recovery_steps

(* ---------------- Change-log shipping surface ---------------- *)

type change_feed =
  | Up_to_date
  | Entries of (int * (string * Value.t) list) list
      (** committed writes above the consumer's LSN, ascending *)
  | Snapshot of { state : (string * Value.t) list; as_of : int }
      (** the consumer is below the snapshot floor: enumeration is no
          longer possible, re-seed from the full committed snapshot *)

let changes_since ?(max_entries = 64) t ~lsn =
  if lsn < t.snapshot_lsn then
    Snapshot { state = t.snapshot_state; as_of = t.snapshot_lsn }
  else
    let fresh =
      List.filter (fun (l, _) -> l > lsn) t.changes |> List.rev
    in
    match fresh with
    | [] -> Up_to_date
    | fresh ->
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        Entries (take max_entries fresh)

let state_at t ~lsn =
  if lsn < t.snapshot_lsn || lsn > t.last_commit_lsn then None
  else begin
    let h = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace h k v) t.snapshot_state;
    List.iter
      (fun (l, ws) ->
        if l <= lsn then List.iter (fun (k, v) -> Hashtbl.replace h k v) ws)
      (List.rev t.changes);
    Some h
  end

let phase_of t xid = Option.map (fun txn -> txn.phase) (find_txn t xid)

let read_committed t key = Hashtbl.find_opt t.store key

let committed_xids t = List.rev t.commit_order

let writes_of t xid =
  match find_txn t xid with
  | None -> []
  | Some txn ->
      List.sort_uniq String.compare (List.map fst txn.writes)

let in_doubt t =
  Hashtbl.fold
    (fun xid txn acc -> if txn.phase = Prepared then xid :: acc else acc)
    t.txns []
  |> List.sort Xid.compare

let locks_held t =
  Hashtbl.fold
    (fun k state acc ->
      match state with
      | L_exclusive xid -> (k, xid) :: acc
      | L_shared owners -> List.map (fun xid -> (k, xid)) owners @ acc)
    t.locks []
  |> List.sort compare

let known_xids t =
  Hashtbl.fold (fun xid _ acc -> xid :: acc) t.txns [] |> List.sort Xid.compare

let votes_cast t = List.rev t.vote_log

(* ---------------- Online shard migration surface ---------------- *)

let seal t ~epoch ~owns =
  match t.seal with
  | Some (e, _) when e >= epoch -> () (* monotone; re-seals are no-ops *)
  | Some _ | None ->
      ignore (log_one t ~label:"seal" (W_seal (epoch, owns)));
      t.seal <- Some (epoch, owns)

let sealed_epoch t = match t.seal with None -> 0 | Some (e, _) -> e

let in_doubt_moving t =
  match t.seal with
  | None -> 0
  | Some (_, owns) ->
      Hashtbl.fold
        (fun _ txn n ->
          if
            txn.phase = Prepared
            && List.exists (fun (k, _) -> not (owns k)) txn.writes
          then n + 1
          else n)
        t.txns 0

let import_watermark t ~src =
  Option.value ~default:0 (Hashtbl.find_opt t.imports src)

let import t ~src ?snapshot ~entries ~upto () =
  let cur = import_watermark t ~src in
  (* Entry-only transfers below or at the watermark are replays — drop
     them. A snapshot transfer additionally applies {e at} the watermark:
     the bootstrap snapshot of an unlogged source (seed data only) comes
     as [upto = 0] against a fresh watermark of 0, and re-applying the
     state the watermark already covers is the identity. *)
  if (if snapshot = None then upto <= cur else upto < cur) then cur
  else begin
    (* Without a snapshot, drop the prefix an earlier (possibly pre-crash)
       transfer already covered: entry LSNs are source LSNs, strictly
       above the watermark. With one, apply the transfer whole — snapshot
       plus its entry suffix reconstructs the source state at [upto]
       exactly, which supersedes anything imported before. *)
    let entries =
      if snapshot = None then List.filter (fun (l, _) -> l > cur) entries
      else entries
    in
    let lsn =
      log_one t ~label:"import" (W_import { src; snapshot; entries; upto })
    in
    (match snapshot with Some state -> apply_writes t state | None -> ());
    List.iter (fun (_, ws) -> apply_writes t ws) entries;
    let writes =
      Option.value ~default:[] snapshot @ List.concat_map snd entries
    in
    (* imported state enters the change feed like a commit, so the
       destination's read replicas and [state_at] oracle see it *)
    if writes <> [] then note_commit t ~lsn writes;
    let upto = max upto cur in
    Hashtbl.replace t.imports src upto;
    upto
  end

let commit_lsn_of t xid = Hashtbl.find_opt t.commit_lsns xid

let snapshot_floor t = t.snapshot_lsn
