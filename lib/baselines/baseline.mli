(** The unreliable baseline protocol (paper Figure 7a).

    A single stateless application server: execute the business logic, then
    a {e single-phase} commit at each database — no prepare phase, no
    logging, no replication, and therefore no guarantee. A client retry
    after a timeout starts a fresh transaction, so a request whose result
    was lost (e.g. the server crashed between commit and reply) can execute
    {e twice} — the at-least-once hazard that motivates e-Transactions.

    The paper's Figure 8 uses this protocol as the 0%-overhead reference. *)

open Runtime

val spawn_dbs :
  Etx_runtime.t ->
  n_dbs:int ->
  timing:Dbms.Rm.timing ->
  disk_force_latency:float ->
  seed_data:(string * Dbms.Value.t) list ->
  observers:(unit -> Types.proc_id list) ->
  (Types.proc_id * Dbms.Rm.t) list
(** Spawn the database tier (shared by the comparison-protocol builders). *)

val spawn :
  Etx_runtime.t ->
  ?name:string ->
  ?poll:float ->
  ?breakdown:Stats.Breakdown.t ->
  dbs:Types.proc_id list ->
  business:Etx.Business.t ->
  unit ->
  Types.proc_id

type t = {
  rt : Etx_runtime.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  server : Types.proc_id;
  client : Etx.Client.handle;
}

val build :
  ?net:Etx_runtime.netmodel ->
  ?n_dbs:int ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?breakdown:Stats.Breakdown.t ->
  rt:Etx_runtime.t ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  t
(** Same shape as {!Etx.Deployment.build}: builds on a fresh [rt], with one
    server and the paper's Figure 2 client driving it. *)
