open Runtime
module Rt = Etx_runtime
open Dnet
open Etx.Etx_types

type log_record =
  | L_start of Dbms.Xid.t
  | L_outcome of Dbms.Xid.t * Dbms.Rm.outcome

(* Fresh transaction identifiers come from the runtime's uid counter: unique
   across server incarnations (a recovered server must never collide with a
   transaction it ran before the crash) and ≥ 1000, disjoint from the
   client's try numbers. *)

let span breakdown label f =
  match breakdown with
  | None -> f ()
  | Some bd -> Stats.Breakdown.span bd label f

let decide_all ~poll ch rd ~dbs ~xid outcome =
  let (_ : (Types.proc_id * unit) list) =
    Dbms.Stub.broadcast_collect ~poll ch rd ~dbs
      ~request:(fun _ -> Dbms.Msg.Decide { xid; outcome })
      ~matches:(function
        | Dbms.Msg.Ack_decide { xid = x } when Dbms.Xid.equal x xid -> Some ()
        | _ -> None)
  in
  ()

(* [xid] is freshly minted per execution: 2PC gives at-most-once per
   TRANSACTION, but a client retry after a timeout is a new transaction —
   which is exactly the end-user duplication gap the paper motivates with. *)
let serve ?breakdown ~poll ~log ~dbs ~business ch rd (request : request) ~j
    ~xid =
  (* eager IO #1: the start record, before any prepare leaves *)
  span breakdown "log-start" (fun () ->
      Dstore.Log.append_list log [ L_start xid ];
      Dstore.Log.force ~label:"log-start" log);
  let collect label req matches =
    let (_ : (Types.proc_id * unit) list) =
      span breakdown label (fun () ->
          Dbms.Stub.broadcast_collect ~poll ch rd ~dbs ~request:req ~matches)
    in
    ()
  in
  collect "start"
    (fun _ -> Dbms.Msg.Xa_start { xid })
    (function
      | Dbms.Msg.Xa_started { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let seq = ref 0 in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let exec ~db ops =
    Dbms.Stub.exec_retry ~poll ~fresh_seq ch rd ~db ~xid ops
  in
  let result =
    span breakdown "SQL" (fun () ->
        business.Etx.Business.run
          { Etx.Business.xid; dbs; exec; attempt = j }
          ~body:request.body)
  in
  Rt.note (Printf.sprintf "computed:%d:%d:%s" request.rid j result);
  collect "end"
    (fun _ -> Dbms.Msg.Xa_end { xid })
    (function
      | Dbms.Msg.Xa_ended { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let votes =
    span breakdown "prepare" (fun () ->
        Dbms.Stub.broadcast_collect ~poll ch rd ~dbs
          ~request:(fun _ -> Dbms.Msg.Prepare { xid })
          ~matches:(function
            | Dbms.Msg.Vote_msg { xid = x; vote } when Dbms.Xid.equal x xid ->
                Some vote
            | _ -> None))
  in
  let outcome =
    if List.for_all (fun (_, v) -> v = Dbms.Rm.Yes) votes then Dbms.Rm.Commit
    else Dbms.Rm.Abort
  in
  (* eager IO #2: the outcome record, before any decide leaves *)
  span breakdown "log-outcome" (fun () ->
      Dstore.Log.append_list log [ L_outcome (xid, outcome) ];
      Dstore.Log.force ~label:"log-outcome" log);
  span breakdown "commit" (fun () ->
      decide_all ~poll ch rd ~dbs ~xid outcome);
  { result = Some result; outcome }

(* Presumed-nothing recovery: re-drive logged outcomes, abort logged starts
   without an outcome. *)
let recover_log ~poll ~log ~dbs ch rd =
  Dstore.Log.crash_cut log;
  let outcomes = Hashtbl.create 16 in
  let started = ref [] in
  List.iter
    (function
      | L_start xid -> started := xid :: !started
      | L_outcome (xid, o) -> Hashtbl.replace outcomes xid o)
    (Dstore.Log.records log);
  List.iter
    (fun xid ->
      match Hashtbl.find_opt outcomes xid with
      | Some o -> decide_all ~poll ch rd ~dbs ~xid o
      | None ->
          Dstore.Log.append_list log [ L_outcome (xid, Dbms.Rm.Abort) ];
          Dstore.Log.force ~label:"log-outcome" log;
          decide_all ~poll ch rd ~dbs ~xid Dbms.Rm.Abort)
    (List.rev !started)

let spawn (rt : Rt.t) ?(name = "2pc-coord") ?(poll = 10.) ?breakdown ~log
    ~dbs ~business () =
  rt.spawn ~name ~main:(fun ~recovery () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let rd = Dbms.Stub.Readiness.create ~dbs in
      Dbms.Stub.Readiness.start rd;
      if recovery then recover_log ~poll ~log ~dbs ch rd;
      let served = Hashtbl.create 32 in
      let wants m =
        match m.Types.payload with Request_msg _ -> true | _ -> false
      in
      let rec loop () =
        (match Rt.recv ~filter:wants () with
        | None -> ()
        | Some m -> (
            match m.payload with
            | Request_msg { request; j; _ } ->
                let decision =
                  match Hashtbl.find_opt served (request.rid, j) with
                  | Some d -> d
                  | None ->
                      let xid =
                        Dbms.Xid.make ~rid:request.rid ~j:(Rt.fresh_uid ())
                      in
                      let d =
                        serve ?breakdown ~poll ~log ~dbs ~business ch rd
                          request ~j ~xid
                      in
                      Hashtbl.replace served (request.rid, j) d;
                      d
                in
                Rchannel.send ch m.src
                  (Result_msg { rid = request.rid; j; decision; group = 0 })
            | _ -> ()));
        loop ()
      in
      loop ())

type t = {
  rt : Rt.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  coordinator : Types.proc_id;
  log : log_record Dstore.Log.t;
  coordinator_disk : Dstore.Disk.t;
  client : Etx.Client.handle;
}

let build ?net ?(n_dbs = 1) ?(timing = Dbms.Rm.paper_timing)
    ?(disk_force_latency = 12.5) ?(seed_data = []) ?(client_period = 400.)
    ?breakdown ~rt ~business ~script () =
  let net =
    match net with Some n -> n | None -> Netmodel.three_tier ~n_dbs ()
  in
  (rt : Rt.t).set_net net;
  let coord_pid = ref [] in
  let dbs =
    Baseline.spawn_dbs rt ~n_dbs ~timing ~disk_force_latency ~seed_data
      ~observers:(fun () -> !coord_pid)
  in
  let coordinator_disk =
    Dstore.Disk.create ~force_latency:disk_force_latency ~label:"coord-log" ()
  in
  let log = Dstore.Log.create ~disk:coordinator_disk () in
  let coordinator =
    spawn rt ?breakdown ~log ~dbs:(List.map fst dbs) ~business ()
  in
  coord_pid := [ coordinator ];
  let client =
    Etx.Client.spawn rt ~period:client_period ~servers:[ coordinator ]
      ~script ()
  in
  { rt; dbs; coordinator; log; coordinator_disk; client }
