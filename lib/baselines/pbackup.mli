(** Primary-backup replication adapted to e-Transactions (paper Figure 7c,
    after reference [18]).

    The primary replaces the 2PC coordinator's two forced log writes with
    two round trips to a backup: a {e start} record (request + client)
    before computing, and an {e outcome} record (result + decision) before
    the decides go out. On (supposedly perfect) detection of the primary's
    crash the backup takes over: it re-drives recorded outcomes, aborts
    recorded-but-undecided transactions, and starts serving requests itself.

    The paper's caveat is the point of this module: the scheme {e requires a
    perfect failure detector} — with a merely eventually-perfect detector a
    false suspicion makes primary and backup decide concurrently, and two
    databases can receive opposite decisions first (an A.3 violation). The
    test suite demonstrates exactly that with a scripted detector, and the
    e-Transaction protocol's wo-registers are how the paper closes this
    hole. *)

open Runtime

type t = {
  rt : Etx_runtime.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  primary : Types.proc_id;
  backup : Types.proc_id;
  client : Etx.Client.handle;
}

val build :
  ?net:Etx_runtime.netmodel ->
  ?n_dbs:int ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?breakdown:Stats.Breakdown.t ->
  ?backup_fd:(Etx_runtime.t -> Dnet.Fdetect.t) ->
  ?takeover_check:float ->
  rt:Etx_runtime.t ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  t
(** [backup_fd] builds the backup's detector watching the primary (default:
    the perfect oracle, as the scheme requires); [takeover_check] is how
    often the backup polls it (default 20 ms). *)
