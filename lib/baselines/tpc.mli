(** Presumed-nothing two-phase commit with a logging coordinator (paper
    Figure 7b).

    A single application server coordinates: it {e force-writes} a start
    record before sending prepares and an outcome record once the votes are
    in — the two eager disk IOs (~12.5 ms each in the paper's measurements)
    that make 2PC cost more than the asynchronous-replication protocol
    despite exchanging fewer messages. The log is the coordinator's stable
    storage: on recovery, logged-started-but-undecided transactions are
    aborted and logged outcomes are re-driven to the databases.

    2PC is {e blocking}: if the coordinator crashes between the votes and
    the decision, every database that voted yes holds its locks until the
    coordinator recovers — no third party can decide. (Contrast with the
    e-Transaction protocol, where any application server terminates the
    result.) [in_doubt_hold] in the tests demonstrates this. *)

open Runtime

type log_record =
  | L_start of Dbms.Xid.t
  | L_outcome of Dbms.Xid.t * Dbms.Rm.outcome

val spawn :
  Etx_runtime.t ->
  ?name:string ->
  ?poll:float ->
  ?breakdown:Stats.Breakdown.t ->
  log:log_record Dstore.Log.t ->
  dbs:Types.proc_id list ->
  business:Etx.Business.t ->
  unit ->
  Types.proc_id
(** The [log] must live on a disk created outside the process so it survives
    coordinator crashes. *)

type t = {
  rt : Etx_runtime.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  coordinator : Types.proc_id;
  log : log_record Dstore.Log.t;
  coordinator_disk : Dstore.Disk.t;
  client : Etx.Client.handle;
}

val build :
  ?net:Etx_runtime.netmodel ->
  ?n_dbs:int ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?breakdown:Stats.Breakdown.t ->
  rt:Etx_runtime.t ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  t
