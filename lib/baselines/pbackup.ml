open Runtime
module Rt = Etx_runtime
open Dnet
open Etx.Etx_types

type Types.payload +=
  | Pb_start of { xid : Dbms.Xid.t; request : request; client : Types.proc_id }
  | Pb_start_ack of { xid : Dbms.Xid.t }
  | Pb_outcome of { xid : Dbms.Xid.t; decision : decision }
  | Pb_outcome_ack of { xid : Dbms.Xid.t }

let span breakdown label f =
  match breakdown with
  | None -> f ()
  | Some bd -> Stats.Breakdown.span bd label f

let decide_all ~poll ch rd ~dbs ~xid outcome =
  let (_ : (Types.proc_id * unit) list) =
    Dbms.Stub.broadcast_collect ~poll ch rd ~dbs
      ~request:(fun _ -> Dbms.Msg.Decide { xid; outcome })
      ~matches:(function
        | Dbms.Msg.Ack_decide { xid = x } when Dbms.Xid.equal x xid -> Some ()
        | _ -> None)
  in
  ()

(* Run business + prepare; shared by the primary and the promoted backup. *)
let execute ?breakdown ~poll ~dbs ~business ch rd (request : request) ~j =
  let xid = Dbms.Xid.make ~rid:request.rid ~j in
  let collect label req matches =
    let (_ : (Types.proc_id * unit) list) =
      span breakdown label (fun () ->
          Dbms.Stub.broadcast_collect ~poll ch rd ~dbs ~request:req ~matches)
    in
    ()
  in
  collect "start"
    (fun _ -> Dbms.Msg.Xa_start { xid })
    (function
      | Dbms.Msg.Xa_started { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let seq = ref 0 in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let exec ~db ops =
    Dbms.Stub.exec_retry ~poll ~fresh_seq ch rd ~db ~xid ops
  in
  let result =
    span breakdown "SQL" (fun () ->
        business.Etx.Business.run
          { Etx.Business.xid; dbs; exec; attempt = j }
          ~body:request.body)
  in
  Rt.note (Printf.sprintf "computed:%d:%d:%s" request.rid j result);
  collect "end"
    (fun _ -> Dbms.Msg.Xa_end { xid })
    (function
      | Dbms.Msg.Xa_ended { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let votes =
    span breakdown "prepare" (fun () ->
        Dbms.Stub.broadcast_collect ~poll ch rd ~dbs
          ~request:(fun _ -> Dbms.Msg.Prepare { xid })
          ~matches:(function
            | Dbms.Msg.Vote_msg { xid = x; vote } when Dbms.Xid.equal x xid ->
                Some vote
            | _ -> None))
  in
  let outcome =
    if List.for_all (fun (_, v) -> v = Dbms.Rm.Yes) votes then Dbms.Rm.Commit
    else Dbms.Rm.Abort
  in
  (xid, { result = Some result; outcome })

let backup_rpc ch ~backup ~request_payload ~matches =
  Rchannel.send ch backup request_payload;
  let filter m = m.Types.src = backup && matches m.Types.payload in
  (* the backup never crashes in this scheme's assumptions; a plain wait *)
  ignore (Rt.recv ~filter ())

let spawn_primary (rt : Rt.t) ?(poll = 10.) ?breakdown ~backup ~dbs
    ~business () =
  rt.spawn ~name:"pb-primary" ~main:(fun ~recovery:_ () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let rd = Dbms.Stub.Readiness.create ~dbs in
      Dbms.Stub.Readiness.start rd;
      let served = Hashtbl.create 32 in
      let wants m =
        match m.Types.payload with Request_msg _ -> true | _ -> false
      in
      let rec loop () =
        (match Rt.recv ~filter:wants () with
        | None -> ()
        | Some m -> (
            match m.payload with
            | Request_msg { request; j; _ } ->
                let decision =
                  match Hashtbl.find_opt served (request.rid, j) with
                  | Some d -> d
                  | None ->
                      let xid = Dbms.Xid.make ~rid:request.rid ~j in
                      (* record the start at the backup (replaces log-start) *)
                      span breakdown "log-start" (fun () ->
                          backup_rpc ch ~backup
                            ~request_payload:
                              (Pb_start { xid; request; client = m.src })
                            ~matches:(function
                              | Pb_start_ack { xid = x } ->
                                  Dbms.Xid.equal x xid
                              | _ -> false));
                      let _, d =
                        execute ?breakdown ~poll ~dbs ~business ch rd request
                          ~j
                      in
                      (* record the outcome (replaces log-outcome) *)
                      span breakdown "log-outcome" (fun () ->
                          backup_rpc ch ~backup
                            ~request_payload:(Pb_outcome { xid; decision = d })
                            ~matches:(function
                              | Pb_outcome_ack { xid = x } ->
                                  Dbms.Xid.equal x xid
                              | _ -> false));
                      span breakdown "commit" (fun () ->
                          decide_all ~poll ch rd ~dbs ~xid d.outcome);
                      Hashtbl.replace served (request.rid, j) d;
                      d
                in
                Rchannel.send ch m.src
                  (Result_msg { rid = request.rid; j; decision; group = 0 })
            | _ -> ()));
        loop ()
      in
      loop ())

type record_entry = {
  request : request;
  client : Types.proc_id;
  mutable decision : decision option;
}

let spawn_backup (rt : Rt.t) ?(poll = 10.) ?breakdown ~fd ~takeover_check
    ~primary ~dbs ~business () =
  rt.spawn ~name:"pb-backup" ~main:(fun ~recovery:_ () ->
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let rd = Dbms.Stub.Readiness.create ~dbs in
      Dbms.Stub.Readiness.start rd;
      let fd = fd rt in
      Fdetect.start fd;
      let table : (Dbms.Xid.t, record_entry) Hashtbl.t = Hashtbl.create 32 in
      let promoted = ref false in
      let served = Hashtbl.create 32 in
      (* recording fiber: accept the primary's start/outcome records *)
      Rt.fork "pb-records" (fun () ->
          let wants m =
            match m.Types.payload with
            | Pb_start _ | Pb_outcome _ -> true
            | _ -> false
          in
          let rec loop () =
            (match Rt.recv ~filter:wants () with
            | None -> ()
            | Some m -> (
                match m.payload with
                | Pb_start { xid; request; client } ->
                    if not (Hashtbl.mem table xid) then
                      Hashtbl.replace table xid
                        { request; client; decision = None };
                    Rchannel.send ch m.src (Pb_start_ack { xid })
                | Pb_outcome { xid; decision } ->
                    (match Hashtbl.find_opt table xid with
                    | Some entry -> entry.decision <- Some decision
                    | None -> ());
                    Rchannel.send ch m.src (Pb_outcome_ack { xid })
                | _ -> ()));
            loop ()
          in
          loop ());
      (* serving fiber: only active after promotion *)
      Rt.fork "pb-serve" (fun () ->
          let wants m =
            match m.Types.payload with
            | Request_msg _ -> !promoted
            | _ -> false
          in
          let rec loop () =
            (match Rt.recv ~filter:wants () with
            | None -> ()
            | Some m -> (
                match m.payload with
                | Request_msg { request; j; _ } ->
                    let decision =
                      match Hashtbl.find_opt served (request.rid, j) with
                      | Some d -> d
                      | None ->
                          let xid, d =
                            execute ?breakdown ~poll ~dbs ~business ch rd
                              request ~j
                          in
                          decide_all ~poll ch rd ~dbs ~xid d.outcome;
                          Hashtbl.replace served (request.rid, j) d;
                          d
                    in
                    Rchannel.send ch m.src
                      (Result_msg { rid = request.rid; j; decision; group = 0 })
                | _ -> ()));
            loop ()
          in
          loop ());
      (* take-over monitor *)
      let rec watch () =
        Rt.sleep takeover_check;
        if Fdetect.suspects fd primary then begin
          promoted := true;
          Hashtbl.iter
            (fun xid entry ->
              let decision =
                match entry.decision with
                | Some d -> d (* finish what the primary decided *)
                | None -> abort_decision
              in
              decide_all ~poll ch rd ~dbs ~xid decision.outcome;
              Rchannel.send ch entry.client
                (Result_msg
                   { rid = entry.request.rid; j = xid.Dbms.Xid.j; decision; group = 0 }))
            table;
          Hashtbl.reset table
        end
        else watch ()
      in
      watch ())

type t = {
  rt : Rt.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  primary : Types.proc_id;
  backup : Types.proc_id;
  client : Etx.Client.handle;
}

let build ?net ?(n_dbs = 1) ?(timing = Dbms.Rm.paper_timing)
    ?(disk_force_latency = 12.5) ?(seed_data = []) ?(client_period = 400.)
    ?breakdown ?(backup_fd = Fdetect.oracle) ?(takeover_check = 20.) ~rt
    ~business ~script () =
  let net =
    match net with Some n -> n | None -> Netmodel.three_tier ~n_dbs ()
  in
  (rt : Rt.t).set_net net;
  let server_pids = ref [] in
  let dbs =
    Baseline.spawn_dbs rt ~n_dbs ~timing ~disk_force_latency ~seed_data
      ~observers:(fun () -> !server_pids)
  in
  let db_pids = List.map fst dbs in
  let n_db = List.length dbs in
  (* pids are sequential: primary = n_db, backup = n_db + 1 *)
  let primary =
    spawn_primary rt ?breakdown ~backup:(n_db + 1) ~dbs:db_pids ~business ()
  in
  let backup =
    spawn_backup rt ?breakdown ~fd:backup_fd ~takeover_check ~primary
      ~dbs:db_pids ~business ()
  in
  assert (primary = n_db && backup = n_db + 1);
  server_pids := [ primary; backup ];
  let client =
    Etx.Client.spawn rt ~period:client_period ~servers:[ primary; backup ]
      ~script ()
  in
  { rt; dbs; primary; backup; client }
