open Runtime
module Rt = Etx_runtime
open Dnet
open Etx.Etx_types

(* Shared by the comparison protocols: spawn the database tier. *)
let spawn_dbs rt ~n_dbs ~timing ~disk_force_latency ~seed_data ~observers =
  List.init n_dbs (fun i ->
      let name = Printf.sprintf "db%d" (i + 1) in
      let disk =
        Dstore.Disk.create ~force_latency:disk_force_latency ~label:"log" ()
      in
      let rm = Dbms.Rm.create ~timing ~seed_data ~disk ~name () in
      let pid = Dbms.Server.spawn rt ~name ~rm ~observers () in
      (pid, rm))

(* Fresh transaction identifiers come from the runtime's uid counter: unique
   across server incarnations (a recovered server must never collide with a
   transaction it ran before the crash) and ≥ 1000, disjoint from the
   client's try numbers. *)

let span breakdown label f =
  match breakdown with
  | None -> f ()
  | Some bd -> Stats.Breakdown.span bd label f

(* One client try: business logic then single-phase commit everywhere.
   [xid] is freshly minted per execution — an unreliable server has no
   exactly-once bookkeeping, so a client retry is a brand-new database
   transaction (the double-charge hazard). *)
let serve ?breakdown ~poll ~dbs ~business ch rd (request : request) ~j ~xid =
  let collect label req matches =
    let (_ : (Types.proc_id * unit) list) =
      span breakdown label (fun () ->
          Dbms.Stub.broadcast_collect ~poll ch rd ~dbs ~request:req
            ~matches)
    in
    ()
  in
  collect "start"
    (fun _ -> Dbms.Msg.Xa_start { xid })
    (function
      | Dbms.Msg.Xa_started { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let seq = ref 0 in
  let fresh_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let exec ~db ops =
    Dbms.Stub.exec_retry ~poll ~fresh_seq ch rd ~db ~xid ops
  in
  let result =
    span breakdown "SQL" (fun () ->
        business.Etx.Business.run
          { Etx.Business.xid; dbs; exec; attempt = j }
          ~body:request.body)
  in
  Rt.note (Printf.sprintf "computed:%d:%d:%s" request.rid j result);
  collect "end"
    (fun _ -> Dbms.Msg.Xa_end { xid })
    (function
      | Dbms.Msg.Xa_ended { xid = x } when Dbms.Xid.equal x xid -> Some ()
      | _ -> None);
  let outcomes =
    span breakdown "commit" (fun () ->
        Dbms.Stub.broadcast_collect ~poll ch rd ~dbs
          ~request:(fun _ -> Dbms.Msg.Commit1 { xid })
          ~matches:(function
            | Dbms.Msg.Commit1_reply { xid = x; outcome }
              when Dbms.Xid.equal x xid ->
                Some outcome
            | _ -> None))
  in
  let outcome =
    if List.for_all (fun (_, o) -> o = Dbms.Rm.Commit) outcomes then
      Dbms.Rm.Commit
    else Dbms.Rm.Abort
  in
  { result = Some result; outcome }

let spawn (rt : Rt.t) ?(name = "baseline") ?(poll = 10.) ?breakdown ~dbs
    ~business () =
  rt.spawn ~name ~main:(fun ~recovery:_ () ->
      (* stateless: a recovery simply starts serving afresh — which is
         exactly why a retried request can execute twice *)
      let ch = Rchannel.create () in
      Rchannel.start ch;
      let rd = Dbms.Stub.Readiness.create ~dbs in
      Dbms.Stub.Readiness.start rd;
      let served = Hashtbl.create 32 in
      let wants m =
        match m.Types.payload with Request_msg _ -> true | _ -> false
      in
      let rec loop () =
        (match Rt.recv ~filter:wants () with
        | None -> ()
        | Some m -> (
            match m.payload with
            | Request_msg { request; j; _ } ->
                let decision =
                  match Hashtbl.find_opt served (request.rid, j) with
                  | Some d -> d (* volatile duplicate suppression *)
                  | None ->
                      let xid =
                        Dbms.Xid.make ~rid:request.rid ~j:(Rt.fresh_uid ())
                      in
                      let d =
                        serve ?breakdown ~poll ~dbs ~business ch rd request ~j
                          ~xid
                      in
                      Hashtbl.replace served (request.rid, j) d;
                      d
                in
                Rchannel.send ch m.src
                  (Result_msg { rid = request.rid; j; decision; group = 0 })
            | _ -> ()));
        loop ()
      in
      loop ())

type t = {
  rt : Rt.t;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  server : Types.proc_id;
  client : Etx.Client.handle;
}

let build ?net ?(n_dbs = 1) ?(timing = Dbms.Rm.paper_timing)
    ?(disk_force_latency = 12.5) ?(seed_data = []) ?(client_period = 400.)
    ?breakdown ~rt ~business ~script () =
  let net =
    match net with Some n -> n | None -> Netmodel.three_tier ~n_dbs ()
  in
  (rt : Rt.t).set_net net;
  let server_pid = ref [] in
  let dbs =
    spawn_dbs rt ~n_dbs ~timing ~disk_force_latency ~seed_data
      ~observers:(fun () -> !server_pid)
  in
  let server = spawn rt ?breakdown ~dbs:(List.map fst dbs) ~business () in
  server_pid := [ server ];
  let client =
    Etx.Client.spawn rt ~period:client_period ~servers:[ server ] ~script ()
  in
  { rt; dbs; server; client }
