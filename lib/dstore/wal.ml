type 'a t = { disk : Disk.t; mutable rev_records : 'a list; mutable count : int }

let create ~disk () = { disk; rev_records = []; count = 0 }

let append ?label t r =
  Disk.force ?label t.disk;
  t.rev_records <- r :: t.rev_records;
  t.count <- t.count + 1

let append_many ?label t rs =
  match rs with
  | [] -> ()
  | rs ->
      Disk.force ?label t.disk;
      List.iter (fun r -> t.rev_records <- r :: t.rev_records) rs;
      t.count <- t.count + List.length rs

let records t = List.rev t.rev_records

let length t = t.count

let truncate t =
  Disk.force t.disk;
  t.rev_records <- [];
  t.count <- 0

let replay t ~init ~f = List.fold_left f init (records t)
