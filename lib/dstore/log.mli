(** LSN-addressed append-only redo log on a simulated {!Disk}.

    Replaces the old [Wal]: records are addressed by {e log sequence
    numbers} (LSNs, 1-based, monotonically increasing, never reused) and
    the log distinguishes what has merely been {e appended} (volatile,
    buffered in memory) from what has been {e forced} (durable). A crash
    loses the suffix above {!durable_lsn} — recovery must call
    {!crash_cut} before replaying, mirroring a real redo log whose tail
    page never hit the platter.

    Two force disciplines, chosen at {!create}:
    - [coalesce:false] (default): every {!force} issues one
      {!Disk.force}, unconditionally — byte-identical virtual-time
      behaviour to the old force-per-append WAL.
    - [coalesce:true]: a {e group-commit scheduler}. Concurrent forces
      coalesce into one {!Disk.force} per window: the first caller
      becomes the flusher for everything appended before its write
      started, later callers wait on the in-flight window (and one of
      them flushes the next window if their records missed it). N
      concurrent committers pay one disk latency, not N.

    Storage is segmented: records live in fixed-size slabs, appended in
    O(1) with no per-record list cells, iterated oldest-first by an O(1)
    cursor (no [List.rev] materialisation on replay — the old WAL's
    recovery allocated the whole log reversed). {!truncate_below}
    reclaims whole segments under a checkpoint LSN; the logical floor is
    exact, segment slabs are freed at slab granularity.

    All length/LSN accessors are O(1). *)

type 'a t

val create :
  ?coalesce:bool ->
  ?segment_size:int ->
  ?size_of:('a -> int) ->
  ?obs_prefix:string ->
  disk:Disk.t ->
  unit ->
  'a t
(** [segment_size] records per slab (default 256). [size_of] estimates a
    record's on-disk footprint in bytes for the [<prefix>.log_bytes]
    gauge (default: 1 per record). [obs_prefix] opts this log into
    observability: each {!force} counts [<prefix>.force] and refreshes
    the [<prefix>.log_len] / [<prefix>.log_bytes] gauges through the
    fiber's obs sink (nothing is emitted when obs is off, and logs
    created without a prefix — register persistence, baselines — never
    emit). *)

val append : 'a t -> 'a -> int
(** Append one record to the volatile tail; returns its LSN. No disk
    interaction and no virtual-time charge — durability is bought
    separately by {!force}. *)

val append_list : 'a t -> 'a list -> unit
(** Append records in order (each gets its own LSN). *)

val force : ?label:string -> 'a t -> unit
(** Make every record appended so far durable (advance [durable_lsn] to
    at least the [appended_lsn] observed at call time). See the force
    disciplines above. In per-call mode the {!Disk.force} is issued even
    if nothing new was appended (matching the old WAL's unconditional
    force, e.g. on truncate). Must run inside a fiber. *)

val appended_lsn : 'a t -> int
(** Highest LSN handed out; 0 when no record was ever appended. O(1). *)

val durable_lsn : 'a t -> int
(** Highest LSN guaranteed to survive a crash. O(1). *)

val base_lsn : 'a t -> int
(** Lowest retained LSN ([appended_lsn + 1] when the retained suffix is
    empty — also the initial state, base 1 / appended 0). O(1). *)

val length : 'a t -> int
(** Number of retained records, [appended_lsn - base_lsn + 1]. O(1). *)

val bytes : 'a t -> int
(** Estimated footprint of the retained records (per [size_of]). O(1). *)

val coalescing : 'a t -> bool
(** Whether this log was created with [coalesce:true] (the group-commit
    discipline). Lets the owner choose a matching concurrency shape —
    group commit only pays when forces actually overlap. *)

val get : 'a t -> lsn:int -> 'a option
(** Random access; [None] outside [base_lsn .. appended_lsn]. *)

val iter_from : 'a t -> lsn:int -> f:(int -> 'a -> unit) -> unit
(** [iter_from t ~lsn ~f] applies [f lsn' record] to every retained
    record with [lsn' >= lsn], in LSN order. The recovery/shipping
    cursor: O(1) per step, no intermediate list. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Left fold over all retained records, oldest first. *)

val records : 'a t -> 'a list
(** All retained records, oldest first (tests, small logs). *)

val crash_cut : 'a t -> unit
(** Discard the non-durable suffix (records above [durable_lsn]) — what
    a crash does to a real log's unflushed tail. Recovery must call this
    before replaying; also resets the group-commit scheduler (an
    in-flight window died with its fibers). *)

val truncate_below : 'a t -> lsn:int -> unit
(** Raise the retention floor to [lsn]: records below it are gone
    ({!get} answers [None], iteration starts at the floor) and sealed
    segments entirely below the floor are freed. No disk force — the
    checkpoint record justifying the truncation must already be durable
    (replaying a not-yet-truncated prefix twice is harmless; losing the
    checkpoint is not). Raising the floor above [durable_lsn] is
    rejected ([Invalid_argument]): never drop history that the durable
    log cannot reconstruct. *)
