type t = {
  latency : float;
  label : string;
  mutable forced : int;
}

let create ?(force_latency = 12.5) ~label () =
  { latency = force_latency; label; forced = 0 }

let force ?label t =
  t.forced <- t.forced + 1;
  Runtime.Etx_runtime.work (Option.value ~default:t.label label) t.latency

let forced_writes t = t.forced

let force_latency t = t.latency
