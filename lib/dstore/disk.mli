(** Simulated disk: charges virtual time for forced (synchronous) writes.

    The paper's Figure 8 hinges on forced-log IO costs: a 2PC coordinator
    pays two eager disk writes (~12.5 ms each in their measurements) that the
    asynchronous-replication protocol avoids. A [Disk.t] survives process
    crashes (it is stable storage); only the time accounting interacts with
    the engine, so [force] must be called from inside a fiber. *)

type t

val create : ?force_latency:float -> label:string -> unit -> t
(** [force_latency] defaults to 12.5 ms — the paper's measured cost of an
    eager log write on their hardware. [label] tags the [Trace.Work]
    entries (e.g. ["log-start"] rows of Figure 8 use per-call labels). *)

val force : ?label:string -> t -> unit
(** Charge one forced write ([label] defaults to the disk's label). *)

val forced_writes : t -> int
(** Total forced writes since creation (survives crashes). *)

val force_latency : t -> float
