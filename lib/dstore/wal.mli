(** Generic write-ahead log on a simulated {!Disk}.

    Appends are forced to disk before returning (charging virtual time);
    the record list survives crashes and is replayed at recovery. *)

type 'a t

val create : disk:Disk.t -> unit -> 'a t

val append : ?label:string -> 'a t -> 'a -> unit
(** Durably append one record (one forced disk write). *)

val append_many : ?label:string -> 'a t -> 'a list -> unit
(** Group commit: durably append all records with a {e single} forced disk
    write (order preserved, oldest first). The amortisation primitive for
    batched voting/deciding — N prepare records cost one force instead of
    N. Appending the empty list is a no-op (no force). *)

val records : 'a t -> 'a list
(** All records, oldest first. *)

val length : 'a t -> int

val truncate : 'a t -> unit
(** Discard the log (checkpointing); durable, one forced write. *)

val replay : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Left fold over the log, oldest first — the recovery idiom. *)
