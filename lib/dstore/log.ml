module Rt = Runtime.Etx_runtime

(* Records live in fixed-size slabs. [seg_base] is the LSN of slot 0;
   [hi] the highest filled LSN ([seg_base - 1] when empty). A segment
   seals (moves to the sealed list) when full; only the tail accepts
   appends. *)
type 'a segment = {
  seg_base : int;
  slots : 'a option array;
  mutable hi : int;
}

type 'a t = {
  disk : Disk.t;
  coalesce : bool;
  segment_size : int;
  size_of : 'a -> int;
  obs_prefix : string option;
  mutable sink : Rt.obs_sink option option;
      (* obs sink, fetched lazily on the first force (creation happens
         outside fibers, where the E_obs effect has no handler) *)
  mutable sealed : 'a segment list;  (* full slabs, oldest first *)
  mutable tail : 'a segment;
  mutable base_lsn : int;  (* retention floor: lowest retained LSN *)
  mutable appended_lsn : int;
  mutable durable_lsn : int;
  mutable byte_total : int;  (* estimated footprint of retained records *)
  mutable forcing : bool;  (* a coalesced force window is in flight *)
}

let fresh_segment ~size ~base = { seg_base = base; slots = Array.make size None; hi = base - 1 }

let create ?(coalesce = false) ?(segment_size = 256) ?(size_of = fun _ -> 1)
    ?obs_prefix ~disk () =
  if segment_size < 1 then invalid_arg "Log.create: segment_size must be >= 1";
  {
    disk;
    coalesce;
    segment_size;
    size_of;
    obs_prefix;
    sink = None;
    sealed = [];
    tail = fresh_segment ~size:segment_size ~base:1;
    base_lsn = 1;
    appended_lsn = 0;
    durable_lsn = 0;
    byte_total = 0;
    forcing = false;
  }

let coalescing t = t.coalesce
let appended_lsn t = t.appended_lsn
let durable_lsn t = t.durable_lsn
let base_lsn t = t.base_lsn
let length t = t.appended_lsn - t.base_lsn + 1
let bytes t = t.byte_total

let append t r =
  let lsn = t.appended_lsn + 1 in
  if lsn - t.tail.seg_base >= Array.length t.tail.slots then begin
    t.sealed <- t.sealed @ [ t.tail ];
    t.tail <- fresh_segment ~size:t.segment_size ~base:lsn
  end;
  t.tail.slots.(lsn - t.tail.seg_base) <- Some r;
  t.tail.hi <- lsn;
  t.appended_lsn <- lsn;
  t.byte_total <- t.byte_total + t.size_of r;
  lsn

let append_list t rs = List.iter (fun r -> ignore (append t r)) rs

let seg_for t lsn =
  if lsn >= t.tail.seg_base then Some t.tail
  else
    List.find_opt
      (fun s -> lsn >= s.seg_base && lsn - s.seg_base < Array.length s.slots)
      t.sealed

let get t ~lsn =
  if lsn < t.base_lsn || lsn > t.appended_lsn then None
  else
    match seg_for t lsn with
    | None -> None
    | Some s -> s.slots.(lsn - s.seg_base)

let iter_from t ~lsn ~f =
  let lo = max lsn t.base_lsn in
  let iter_seg s =
    for l = max lo s.seg_base to s.hi do
      match s.slots.(l - s.seg_base) with
      | Some r -> f l r
      | None -> ()
    done
  in
  List.iter iter_seg t.sealed;
  iter_seg t.tail

let fold t ~init ~f =
  let acc = ref init in
  iter_from t ~lsn:t.base_lsn ~f:(fun _ r -> acc := f !acc r);
  !acc

let records t = List.rev (fold t ~init:[] ~f:(fun acc r -> r :: acc))

let emit_obs t =
  match t.obs_prefix with
  | None -> ()
  | Some p -> (
      let sink =
        match t.sink with
        | Some s -> s
        | None ->
            let s = Rt.obs () in
            t.sink <- Some s;
            s
      in
      match sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_count (p ^ ".force") 1;
          s.Rt.obs_gauge (p ^ ".log_len") (float_of_int (length t));
          s.Rt.obs_gauge (p ^ ".log_bytes") (float_of_int t.byte_total))

(* The group-commit window: the flusher's Disk.force covers every record
   appended before the write started, so the window watermark is read
   AFTER winning the flusher role and before the force. Waiters poll in
   small virtual-time slices; whoever wakes to find its target still
   volatile and no window in flight becomes the next flusher. *)
let wait_slice = 0.25

let rec coalesced_force ?label t ~target =
  if t.durable_lsn >= target then ()
  else if t.forcing then begin
    Rt.sleep wait_slice;
    coalesced_force ?label t ~target
  end
  else begin
    t.forcing <- true;
    (* gather yield: let every fiber ready at this same instant append
       before the window watermark is read, so simultaneous committers
       share one disk write instead of serialising into two windows *)
    Rt.sleep 0.;
    let window = t.appended_lsn in
    Disk.force ?label t.disk;
    t.durable_lsn <- max t.durable_lsn window;
    t.forcing <- false;
    emit_obs t
  end

let force ?label t =
  if t.coalesce then coalesced_force ?label t ~target:t.appended_lsn
  else begin
    (* per-call discipline: unconditionally one forced write, exactly the
       old WAL's accounting (identity with pre-log revisions) *)
    Disk.force ?label t.disk;
    t.durable_lsn <- t.appended_lsn;
    emit_obs t
  end

let crash_cut t =
  t.forcing <- false;
  let d = t.durable_lsn in
  if t.appended_lsn > d then begin
    iter_from t ~lsn:(d + 1) ~f:(fun _ r ->
        t.byte_total <- t.byte_total - t.size_of r);
    let cut seg =
      for l = max seg.seg_base (d + 1) to seg.hi do
        seg.slots.(l - seg.seg_base) <- None
      done;
      seg.hi <- min seg.hi d
    in
    if t.tail.seg_base <= d + 1 then cut t.tail
    else begin
      (* the cut point lies in a sealed slab: it becomes the new tail,
         everything above it is dropped whole *)
      let keep = List.filter (fun s -> s.seg_base <= d) t.sealed in
      match List.rev keep with
      | last :: rest_rev
        when last.seg_base + Array.length last.slots - 1 > d ->
          cut last;
          t.sealed <- List.rev rest_rev;
          t.tail <- last
      | _ ->
          t.sealed <- keep;
          t.tail <- fresh_segment ~size:t.segment_size ~base:(d + 1)
    end;
    t.appended_lsn <- d
  end

let truncate_below t ~lsn =
  if lsn > t.durable_lsn + 1 then
    invalid_arg "Log.truncate_below: retention floor above durable_lsn";
  if lsn > t.base_lsn then begin
    let floor = min lsn (t.appended_lsn + 1) in
    iter_from t ~lsn:t.base_lsn ~f:(fun l r ->
        if l < floor then t.byte_total <- t.byte_total - t.size_of r);
    (* free slabs entirely below the floor; blank the boundary slab's
       dropped prefix so the records are collectable *)
    t.sealed <- List.filter (fun s -> s.hi >= floor) t.sealed;
    let blank seg =
      for l = seg.seg_base to min seg.hi (floor - 1) do
        seg.slots.(l - seg.seg_base) <- None
      done
    in
    List.iter blank t.sealed;
    blank t.tail;
    t.base_lsn <- lsn
  end
