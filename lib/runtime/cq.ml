type 'a node = {
  v : 'a;
  cls : int;
  seq : int;
  gen : int;
  mutable gprev : 'a node option;
  mutable gnext : 'a node option;
  mutable cprev : 'a node option;
  mutable cnext : 'a node option;
  mutable in_q : bool;
}

type 'a dl = { mutable head : 'a node option; mutable tail : 'a node option }

let dl_create () = { head = None; tail = None }

type 'a t = {
  g : 'a dl;
  mutable buckets : 'a dl array;  (** index [cls + 1]; slot 0 is unclassed *)
  mutable len : int;
  mutable seqc : int;
  mutable gen : int;
}

let create () = { g = dl_create (); buckets = [||]; len = 0; seqc = 0; gen = 0 }

let length t = t.len
let is_empty t = t.len = 0
let node_value n = n.v
let node_seq n = n.seq

let bucket_of t cls =
  let i = cls + 1 in
  if i < 0 then invalid_arg "Cq: class below -1";
  let cap = Array.length t.buckets in
  if i >= cap then begin
    let buckets' =
      Array.init (max 8 (max (i + 1) (cap * 2))) (fun j ->
          if j < cap then t.buckets.(j) else dl_create ())
    in
    t.buckets <- buckets'
  end;
  t.buckets.(i)

let push t ~cls v =
  t.seqc <- t.seqc + 1;
  let n =
    {
      v;
      cls;
      seq = t.seqc;
      gen = t.gen;
      gprev = t.g.tail;
      gnext = None;
      cprev = None;
      cnext = None;
      in_q = true;
    }
  in
  (match t.g.tail with None -> t.g.head <- Some n | Some p -> p.gnext <- Some n);
  t.g.tail <- Some n;
  let b = bucket_of t cls in
  n.cprev <- b.tail;
  (match b.tail with None -> b.head <- Some n | Some p -> p.cnext <- Some n);
  b.tail <- Some n;
  t.len <- t.len + 1;
  n

let unlink t n =
  (match n.gprev with None -> t.g.head <- n.gnext | Some p -> p.gnext <- n.gnext);
  (match n.gnext with None -> t.g.tail <- n.gprev | Some s -> s.gprev <- n.gprev);
  let b = t.buckets.(n.cls + 1) in
  (match n.cprev with None -> b.head <- n.cnext | Some p -> p.cnext <- n.cnext);
  (match n.cnext with None -> b.tail <- n.cprev | Some s -> s.cprev <- n.cprev);
  n.gprev <- None;
  n.gnext <- None;
  n.cprev <- None;
  n.cnext <- None;
  n.in_q <- false;
  t.len <- t.len - 1

let remove t n =
  if n.in_q && n.gen = t.gen then begin
    unlink t n;
    true
  end
  else false

let pop t =
  match t.g.head with
  | None -> None
  | Some n ->
      unlink t n;
      Some n.v

let pop_cls t cls =
  let i = cls + 1 in
  if i < 0 || i >= Array.length t.buckets then None
  else
    match t.buckets.(i).head with
    | None -> None
    | Some n ->
        unlink t n;
        Some n.v

let rec find_g pred = function
  | None -> None
  | Some n -> if pred n.v then Some n else find_g pred n.gnext

let rec find_c pred = function
  | None -> None
  | Some n -> if pred n.v then Some n else find_c pred n.cnext

let take_first t pred =
  match find_g pred t.g.head with
  | None -> None
  | Some n ->
      unlink t n;
      Some n.v

let first_matching_in_cls t cls pred =
  let i = cls + 1 in
  if i < 0 || i >= Array.length t.buckets then None
  else find_c pred t.buckets.(i).head

let take_first_in_cls t cls pred =
  match first_matching_in_cls t cls pred with
  | None -> None
  | Some n ->
      unlink t n;
      Some n.v

let cls_length t cls =
  let i = cls + 1 in
  if i < 0 || i >= Array.length t.buckets then 0
  else
    let rec go acc = function
      | None -> acc
      | Some n -> go (acc + 1) n.cnext
    in
    go 0 t.buckets.(i).head

let clear t =
  t.g.head <- None;
  t.g.tail <- None;
  Array.iter
    (fun b ->
      b.head <- None;
      b.tail <- None)
    t.buckets;
  t.len <- 0;
  t.gen <- t.gen + 1

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.v;
        go n.gnext
  in
  go t.g.head

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc
