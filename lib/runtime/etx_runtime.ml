open Types

(* The execution substrate the protocol stack is written against. Protocol
   fibers interact with their backend exclusively through effects (declared
   here, handled by whichever backend hosts the fiber), so protocol modules
   need no backend handle at all for the hot path. Orchestration-side
   operations (spawning processes, injecting faults, driving the run) go
   through the [t] capability record, built by a backend adapter:
   [Dsim.Runtime_sim.of_engine] for the discrete-event simulator and
   [Runtime_live.runtime] for the wall-clock threads backend. *)

exception Exit_fiber

type netmodel = Rng.t -> src:proc_id -> dst:proc_id -> float list

let default_net _rng ~src:_ ~dst:_ = [ 1.0 ]

(* Message classes ---------------------------------------------------- *)

type cls = int

(* The registry is global and backend-independent: protocol modules register
   their classes at module-initialisation time (single-domain, before any
   backend runs), and afterwards it is only read — so sharing it across Pool
   domains and OS threads is safe. Classification order is registration
   order: the first predicate that accepts a payload names its class. *)
let class_table : (string * (payload -> bool)) array ref = ref [||]

let register_class ?name pred =
  let id = Array.length !class_table in
  let name =
    match name with Some n -> n | None -> "cls" ^ string_of_int id
  in
  class_table := Array.append !class_table [| (name, pred) |];
  id

let class_name c =
  if c < 0 || c >= Array.length !class_table then "unclassed"
  else fst !class_table.(c)

let classify pl =
  let tbl = !class_table in
  let n = Array.length tbl in
  let rec go i = if i >= n then -1 else if snd tbl.(i) pl then i else go (i + 1) in
  go 0

let registered_classes () =
  Array.to_list (Array.mapi (fun i (n, _) -> (i, n)) !class_table)

(* Observability sink ------------------------------------------------- *)

(* A neutral record of closures through which fibers emit metrics, spans
   and events. The runtime layer only declares the shape; Obs.Registry
   implements it and backends answer [E_obs] with one bound to the
   performing process (or [None] when observability is off — the common
   case). Protocol modules fetch the sink ONCE at init via [obs ()] and
   branch on the option at each instrument site, so the disabled cost is a
   single predictable branch per event and zero allocation. *)
type obs_sink = {
  obs_count : string -> int -> unit;  (** add to a named counter *)
  obs_gauge : string -> float -> unit;
  obs_observe : string -> float -> unit;  (** record into a histogram *)
  obs_span_open : ?parent:int -> trace:int -> string -> int;
      (** open a span, returning its id; 0 means "no span" everywhere *)
  obs_span_close : int -> unit;
  obs_span_attr : int -> string -> string -> unit;
  obs_event : trace:int -> string -> string -> unit;
}

(* Effects performed by fibers. The handler (installed per fiber by the
   hosting backend) closes over the backend state, so the declarations carry
   no backend reference. *)
type _ Effect.t +=
  | E_now : time Effect.t
  | E_self : proc_id Effect.t
  | E_sleep : time -> unit Effect.t
  | E_work : string * time -> unit Effect.t
  | E_send : proc_id * payload -> unit Effect.t
  | E_redeliver : proc_id * payload -> unit Effect.t
  | E_recv :
      cls option * (message -> bool) option * time option
      -> message option Effect.t
  | E_fork : string * (unit -> unit) -> unit Effect.t
  | E_random_float : float -> float Effect.t
  | E_random_int : int -> int Effect.t
  | E_note : string -> unit Effect.t
  | E_fresh_uid : int Effect.t
  | E_obs : obs_sink option Effect.t

(* Orchestration capability ------------------------------------------- *)

(* What a backend must provide to host the cluster. [module type S] is the
   first-class-module spelling; [t] is the record spelling threaded through
   the protocol [config] records. They are interconvertible. *)
module type S = sig
  val backend : string
  (** Short tag ("sim", "live") recorded in artefacts and summaries. *)

  val spawn : name:string -> main:(recovery:bool -> unit -> unit) -> proc_id
  (** Register a process; its [main] starts once the backend runs. Process
      ids are assigned sequentially from 0 in spawn order. *)

  val is_up : proc_id -> bool
  val name_of : proc_id -> string

  val crash : proc_id -> unit
  (** Crash-stop: volatile state (mailbox, fibers) is discarded. *)

  val recover : proc_id -> unit
  (** Restart a crashed process; its [main] reruns with [~recovery:true]. *)

  val set_net : netmodel -> unit

  val run_until : ?deadline:time -> (unit -> bool) -> bool
  (** Drive the backend until the predicate holds or the deadline (in ms on
      the backend's own clock — virtual for sim, wall for live) passes;
      returns the predicate's final value. *)

  val notes : unit -> (proc_id * string) list
  (** All [note] annotations recorded so far, oldest first. *)

  val obs : (string -> obs_sink) option
  (** When observability was opted in at backend creation: builds the sink
      for a named node (used by orchestration-side instrumentation; fibers
      use the [E_obs] effect instead). [None] = observability off. *)
end

type t = {
  backend : string;
  spawn : name:string -> main:(recovery:bool -> unit -> unit) -> proc_id;
  is_up : proc_id -> bool;
  name_of : proc_id -> string;
  crash : proc_id -> unit;
  recover : proc_id -> unit;
  set_net : netmodel -> unit;
  run_until : ?deadline:time -> (unit -> bool) -> bool;
  notes : unit -> (proc_id * string) list;
  obs : (string -> obs_sink) option;
}

let of_module (module M : S) =
  {
    backend = M.backend;
    spawn = M.spawn;
    is_up = M.is_up;
    name_of = M.name_of;
    crash = M.crash;
    recover = M.recover;
    set_net = M.set_net;
    run_until = M.run_until;
    notes = M.notes;
    obs = M.obs;
  }

(* Fiber-side operations ---------------------------------------------- *)

let now () = Effect.perform E_now
let self () = Effect.perform E_self
let sleep d = Effect.perform (E_sleep d)
let work label d = Effect.perform (E_work (label, d))
let send dst payload = Effect.perform (E_send (dst, payload))
let send_all dsts payload = List.iter (fun dst -> send dst payload) dsts
let redeliver ~src payload = Effect.perform (E_redeliver (src, payload))

let recv ?timeout ?cls ~filter () =
  Effect.perform (E_recv (cls, Some filter, timeout))

let recv_cls ?timeout c = Effect.perform (E_recv (Some c, None, timeout))
let recv_any ?timeout () = Effect.perform (E_recv (None, None, timeout))
let fork name f = Effect.perform (E_fork (name, f))
let random_float bound = Effect.perform (E_random_float bound)
let random_int bound = Effect.perform (E_random_int bound)
let fresh_uid () = Effect.perform E_fresh_uid
let note s = Effect.perform (E_note s)

(* Fetch the hosting backend's sink for the calling process, or [None] when
   observability is off — including under a handler stack (or test driver)
   that predates [E_obs], hence the Unhandled catch. Call once at module
   init, not per event. *)
let obs () = try Effect.perform E_obs with Effect.Unhandled _ -> None

let exit_fiber () = raise Exit_fiber
