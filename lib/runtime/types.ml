(** Shared base types of the simulation kernel. *)

type time = float
(** Virtual time, in milliseconds. *)

type proc_id = int
(** Process identifier, dense from 0 in spawn order. *)

type payload = ..
(** Extensible message payload: each protocol layer extends this type with
    its own message constructors. *)

type message = {
  src : proc_id;
  dst : proc_id;
  payload : payload;
  msg_id : int;  (** globally unique, for dedup and tracing *)
  sent_at : time;
}

let pp_proc ppf pid = Format.fprintf ppf "p%d" pid
