(** Class-indexed FIFO backing the engine's mailboxes and waiter queues.

    Every element lives on two intrusive doubly-linked lists at once: a
    global list (overall arrival order, like {!Fifo}) and a per-class bucket
    (arrival order within one message class). That gives O(1) classed pop
    and O(1) cancellation through the {!node} handle returned by {!push},
    while the global list keeps the legacy predicate scan — oldest-first
    over all classes — exactly as the plain FIFO behaved.

    Class [-1] is the "unclassed" bucket; any [cls >= -1] is accepted and
    buckets grow on demand. [clear] is O(number of buckets): it drops both
    list spines and bumps a generation counter so that stale node handles
    (e.g. a receive-timeout closure racing a crash) turn {!remove} into a
    no-op. *)

type 'a t

type 'a node
(** Handle to one queued element; invalidated by removal or {!clear}. *)

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> cls:int -> 'a -> 'a node
(** Append at the tail of both the global list and class bucket. O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the globally oldest element. O(1). *)

val pop_cls : 'a t -> int -> 'a option
(** Remove and return the oldest element of one class. O(1). *)

val take_first : 'a t -> ('a -> bool) -> 'a option
(** Oldest element (global order) satisfying the predicate. O(position). *)

val take_first_in_cls : 'a t -> int -> ('a -> bool) -> 'a option
(** Oldest element of the class satisfying the predicate; scans only that
    bucket. *)

val first_matching_in_cls : 'a t -> int -> ('a -> bool) -> 'a node option
(** Like {!take_first_in_cls} but leaves the element queued, returning its
    handle — lets a caller compare candidates from several buckets by
    {!node_seq} before committing to one. *)

val node_value : 'a node -> 'a
val node_seq : 'a node -> int
(** Queue-wide arrival number; smaller = older. *)

val remove : 'a t -> 'a node -> bool
(** Unlink the node. O(1). Returns [false] if it was already removed or the
    queue was cleared since it was pushed. *)

val cls_length : 'a t -> int -> int
(** Bucket size, O(bucket). Test/diagnostic use. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Global (oldest-first) order. *)

val to_list : 'a t -> 'a list
