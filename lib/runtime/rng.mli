(** Deterministic pseudo-random number generator (SplitMix64).

    The engine owns one generator seeded at creation; identical seeds give
    identical simulations. [split] derives an independent stream, used to
    decorrelate e.g. the network-loss stream from workload randomness. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] is a new generator whose stream is independent of [t]'s
    subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0].
    Implemented with bitmask rejection sampling, so the distribution is
    exactly uniform for every bound (no modulo bias). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normally distributed value (Box–Muller). *)
