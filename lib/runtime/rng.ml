type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Bitmask rejection sampling: mask each draw down to the smallest
     power-of-two cover of [bound] and retry on overshoot. Unbiased for
     every bound, unlike the previous [v mod bound]. Draws keep 62 bits so
     values fit OCaml's native positive int range. *)
  let rec cover m = if m >= bound - 1 then m else cover ((m lsl 1) lor 1) in
  let mask = cover 1 in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let float t bound =
  assert (bound > 0.);
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 significant bits, as in the stdlib implementation *)
  v /. 9007199254740992.0 *. bound

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let gaussian t ~mean ~stddev =
  let rec non_zero () =
    let u = float t 1.0 in
    if u <= 0. then non_zero () else u
  in
  let u1 = non_zero () and u2 = float t 1.0 in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)
