(** The execution substrate the e-Transaction protocol stack runs on.

    The paper specifies the protocol independently of any execution engine;
    this module is the contract that makes that separation real in code.
    Protocol fibers interact with their backend exclusively through the
    fiber-side operations below — OCaml effects handled by whichever backend
    hosts the fiber — so protocol modules carry no backend handle on the hot
    path. Orchestration (spawning processes, fault injection, driving the
    run) goes through the {!t} capability record threaded through the
    protocol [config] records.

    Two backends exist:
    - [Dsim.Engine] — deterministic discrete-event simulation (virtual
      time); adapter: [Dsim.Runtime_sim.of_engine].
    - [Runtime_live] — wall-clock real time on OS threads; constructor:
      [Runtime_live.runtime].

    Crash/recovery semantics follow the paper's model on both backends: a
    crash kills every fiber of the process, clears its mailbox and drops
    in-flight wakeups (incarnation fencing); volatile state — anything held
    in fiber-local bindings — is lost, while state kept outside the fibers
    (e.g. [Dstore] stable storage) survives. Recovery re-runs the process
    main with [~recovery:true].

    Fiber-side operations ([now], [send], [recv], ...) must be called from
    inside a fiber; calling them outside raises [Effect.Unhandled]. *)

open Types

exception Exit_fiber

type netmodel = Rng.t -> src:proc_id -> dst:proc_id -> float list
(** Delivery delays for one send; the empty list drops the message, two or
    more elements duplicate it. Self-sends bypass the model. *)

val default_net : netmodel
(** Constant 1.0 ms delivery, no loss. *)

(** {1 Message classes}

    A class is a small integer naming a disjoint family of payloads, used to
    demultiplex deliveries in O(1) instead of predicate-scanning mailboxes
    and waiter lists. The registry is global and backend-independent:
    protocol modules register their classes once at module-initialisation
    time (before any backend runs; the registry is read-only afterwards, so
    it is safe to share across [Dsim.Pool] domains and OS threads).
    Classification order is registration order: the first predicate
    accepting a payload names its class; payloads no predicate accepts are
    "unclassed" and reachable only through the predicate receive path. *)

type cls = int

val register_class : ?name:string -> (Types.payload -> bool) -> cls
(** Register a payload family; returns its class id. Call only from
    module-level initialisation code. *)

val classify : Types.payload -> cls
(** First registered class accepting the payload, [-1] if none. *)

val class_name : cls -> string

val registered_classes : unit -> (cls * string) list
(** Registration order; for diagnostics and docs. *)

(** {1 Observability sink}

    The neutral surface through which fibers emit metrics, spans and trace
    events. The runtime layer only declares the record; [Obs.Registry]
    implements it and backends answer {!E_obs} with a sink bound to the
    performing process — or [None] when observability was not opted in, the
    common case. Protocol modules fetch the sink once at init via {!obs}
    and branch on the option per instrument site, so disabled observability
    costs one predictable branch and no allocation (DESIGN.md §10). *)

type obs_sink = {
  obs_count : string -> int -> unit;  (** add to a named counter *)
  obs_gauge : string -> float -> unit;
  obs_observe : string -> float -> unit;  (** record into a histogram *)
  obs_span_open : ?parent:int -> trace:int -> string -> int;
      (** open a span, returning its id; 0 means "no span" everywhere *)
  obs_span_close : int -> unit;
  obs_span_attr : int -> string -> string -> unit;
  obs_event : trace:int -> string -> string -> unit;
}

(** {1 Effects}

    Exposed so backends can install handlers; protocol code should use the
    fiber-side wrappers below instead of performing these directly. *)

type _ Effect.t +=
  | E_now : time Effect.t
  | E_self : proc_id Effect.t
  | E_sleep : time -> unit Effect.t
  | E_work : string * time -> unit Effect.t
  | E_send : proc_id * payload -> unit Effect.t
  | E_redeliver : proc_id * payload -> unit Effect.t
  | E_recv :
      cls option * (message -> bool) option * time option
      -> message option Effect.t
  | E_fork : string * (unit -> unit) -> unit Effect.t
  | E_random_float : float -> float Effect.t
  | E_random_int : int -> int Effect.t
  | E_note : string -> unit Effect.t
  | E_fresh_uid : int Effect.t
  | E_obs : obs_sink option Effect.t

(** {1 Orchestration capability} *)

(** What a backend provides to host the cluster, as a first-class module. *)
module type S = sig
  val backend : string
  (** Short tag ("sim", "live") recorded in artefacts and summaries. *)

  val spawn : name:string -> main:(recovery:bool -> unit -> unit) -> proc_id
  (** Register a process; its [main] starts once the backend runs. Process
      ids are assigned sequentially from 0 in spawn order. *)

  val is_up : proc_id -> bool
  val name_of : proc_id -> string

  val crash : proc_id -> unit
  (** Crash-stop: volatile state (mailbox, fibers) is discarded. *)

  val recover : proc_id -> unit
  (** Restart a crashed process; its [main] reruns with [~recovery:true]. *)

  val set_net : netmodel -> unit

  val run_until : ?deadline:time -> (unit -> bool) -> bool
  (** Drive the backend until the predicate holds or the deadline (in ms on
      the backend's own clock — virtual for sim, wall for live) passes;
      returns the predicate's final value. *)

  val notes : unit -> (proc_id * string) list
  (** All [note] annotations recorded so far, oldest first. *)

  val obs : (string -> obs_sink) option
  (** When observability was opted in at backend creation: builds the sink
      for a named node (orchestration-side instrumentation; fibers use the
      {!E_obs} effect instead). [None] = observability off. *)
end

(** The same capability as a record, for threading through [config]
    records. *)
type t = {
  backend : string;
  spawn : name:string -> main:(recovery:bool -> unit -> unit) -> proc_id;
  is_up : proc_id -> bool;
  name_of : proc_id -> string;
  crash : proc_id -> unit;
  recover : proc_id -> unit;
  set_net : netmodel -> unit;
  run_until : ?deadline:time -> (unit -> bool) -> bool;
  notes : unit -> (proc_id * string) list;
  obs : (string -> obs_sink) option;
}

val of_module : (module S) -> t

(** {1 Fiber-side operations} *)

val now : unit -> time
(** Milliseconds on the hosting backend's clock (virtual or wall). *)

val self : unit -> proc_id

val sleep : time -> unit

val work : string -> time -> unit
(** [work label d] models [d] ms of local computation (SQL execution, a
    forced disk write): time advances; the sim backend also records a
    [Trace.Work] entry for latency accounting (paper Fig. 8). *)

val send : proc_id -> payload -> unit

val send_all : proc_id list -> payload -> unit

val redeliver : src:proc_id -> payload -> unit
(** Enqueue a payload into the calling process's own mailbox, attributed to
    [src], bypassing the network. Used by the reliable-channel layer to hand
    deduplicated payloads to the protocol above. *)

val recv :
  ?timeout:time -> ?cls:cls -> filter:(message -> bool) -> unit -> message option
(** Selective receive: first scans the mailbox, then blocks. [None] only on
    timeout. Messages rejected by every waiting fiber stay queued.

    With [?cls] the scan is confined to that class's bucket (the filter then
    only refines within the class — callers must ensure the filter accepts
    no payload outside the class, or those messages become unreachable). *)

val recv_cls : ?timeout:time -> cls -> message option
(** O(1) classed receive: pops the oldest message of the class, or blocks
    in the class's waiter bucket. The fast path for converted hot loops. *)

val recv_any : ?timeout:time -> unit -> message option

val fork : string -> (unit -> unit) -> unit
(** Start a sibling fiber in the calling process. It dies with the process
    and is not restarted on recovery (the main must re-fork its helpers). *)

val random_float : float -> float
val random_int : int -> int

val fresh_uid : unit -> int
(** A fresh identifier unique within the hosting backend instance,
    monotonically increasing from 1000 (so values stay disjoint from client
    try counters). Used for request ids, channel endpoints and
    comparison-protocol transaction ids; keeping the counter per-instance
    (rather than process-global) makes trials self-contained, so parallel
    runs stay deterministic. *)

val note : string -> unit
(** Free-form annotation by the calling process; readable through the
    capability's [notes] (backed by the trace on sim, an in-memory list on
    live). *)

val obs : unit -> obs_sink option
(** The hosting backend's observability sink for the calling process, or
    [None] when observability is off (also when the hosting handler predates
    [E_obs]). Fetch once at fiber/module init — not per event. *)

val exit_fiber : unit -> 'a
(** Terminate the calling fiber silently. *)
