(** Imperative binary min-heap.

    The heap is parameterised by a strict "less-than" ordering supplied at
    creation time. Used by the simulation engine as its event queue, where
    determinism requires a total order on (time, sequence-number) keys. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~leq ()] is an empty heap ordered by [leq] (less-or-equal). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** [to_list h] is all elements in unspecified order (snapshot). *)
