type t = {
  totals : (string, float) Hashtbl.t;
  mutable txns : int;
}

let create () = { totals = Hashtbl.create 16; txns = 0 }

let add t category d =
  let cur = Option.value ~default:0. (Hashtbl.find_opt t.totals category) in
  Hashtbl.replace t.totals category (cur +. d)

let span t category f =
  let t0 = Runtime.Etx_runtime.now () in
  let r = f () in
  add t category (Runtime.Etx_runtime.now () -. t0);
  r

let tick t = t.txns <- t.txns + 1

let transactions t = t.txns

let row t category =
  if t.txns = 0 then 0.
  else
    Option.value ~default:0. (Hashtbl.find_opt t.totals category)
    /. float_of_int t.txns

let categories t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.totals []
  |> List.sort String.compare

let other t ~total =
  let accounted =
    Hashtbl.fold (fun _ v acc -> acc +. v) t.totals 0.
    /. float_of_int (max 1 t.txns)
  in
  total -. accounted

let reset t =
  Hashtbl.reset t.totals;
  t.txns <- 0
