type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal rendering that round-trips through float_of_string. *)
let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad level =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (level * indent) ' ')
    end
  in
  let rec emit level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            emit (level + 1) item)
          items;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            escape_string buf k;
            Buffer.add_string buf ": ";
            emit (level + 1) item)
          fields;
        pad level;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some code ->
                  (* non-ASCII escapes: emit UTF-8 (we never generate these,
                     but accept them for robustness) *)
                  if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | None -> fail "bad \\u escape");
              loop ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
