(** Minimal JSON emitter/parser for machine-readable artefacts.

    The bench harness and the live smoke both dump small machine-readable
    reports ([BENCH_harness.json], [LIVE_smoke.json]); this module replaces
    their hand-assembled [Printf] format strings with one shared value type,
    so escaping and number formatting live in a single place. Numbers are
    printed shortest-round-trip ([%.17g] fallback), so
    [of_string (to_string v)] reconstructs [v] exactly — the property the
    round-trip unit test pins down.

    It is deliberately not a general JSON library: no streaming, no
    unicode-escape decoding beyond what our own emitter produces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render; [indent] > 0 pretty-prints with that many spaces per level
    (default 2). Strings are escaped per RFC 8259 (control characters as
    [\u00XX]). *)

val to_channel : out_channel -> t -> unit
(** [to_string] with a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed). Numbers
    with a [.], [e] or [E] become [Float], others [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)
