(** A second write-once-register substrate: single-decree Paxos (Synod).

    The paper treats the consensus under its wo-registers as a pluggable
    "e.g. [4]" — this module plugs in the other canonical choice. Every
    process is acceptor, proposer and learner for any number of instances
    (string keys):

    - ballots are partitioned by proposer ([ballot mod n] owns it), and
      ballot 0 — owned by the default primary — may skip phase 1 (no lower
      ballot exists), so the primary's failure-free write costs one round
      trip to a majority, matching the paper's analytic claim exactly like
      the Chandra–Toueg agent's first-coordinator optimisation;
    - a non-primary writer runs both phases: {e two} round trips, with no
      failure-detector wait at all — which is this backend's point: where
      the rotating-coordinator agent pays a suspicion/round timeout when the
      coordinator crashed (ablation A6), Paxos proposers never wait on
      failure detection, only on quorums (ablation A8 contrasts the two);
    - decisions are learned via a broadcast and answered to late proposers.

    Liveness caveat (inherent to Paxos): duelling proposers can livelock;
    attempts back off with jitter. Safety needs no assumptions beyond a
    majority of acceptors being up to make progress. *)

open Runtime

type t

val create :
  ?attempt_timeout:float ->
  ?backoff:float ->
  peers:Types.proc_id list ->
  ch:Dnet.Rchannel.t ->
  unit ->
  t
(** Must be called inside the owning fiber. [peers] ordered identically
    everywhere; the head owns ballot 0. [attempt_timeout] (default 50 ms)
    bounds each phase's quorum wait; [backoff] (default 20 ms) spaces
    retries, with per-proposer jitter. *)

val start : t -> unit
(** Forks the acceptor/learner dispatcher. *)

val propose : t -> key:string -> Types.payload -> Types.payload
(** Blocks until the instance decides; returns the decided value. *)

val peek : t -> key:string -> Types.payload option

val decided_keys : t -> string list
