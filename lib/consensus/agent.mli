(** Chandra–Toueg style consensus among the application servers.

    One [Agent.t] lives in each application-server process and multiplexes
    any number of consensus {e instances}, identified by string keys (the
    write-once register arrays use keys like ["regA\[r0.1\]"]). The
    algorithm is the rotating-coordinator protocol of Chandra & Toueg
    (◇S-class), which the paper cites as its register substrate:

    - round [r]'s coordinator is [peers.(r mod n)];
    - participants send their timestamped estimates to the coordinator,
      which picks the most recently adopted value, proposes it, and decides
      once a majority acknowledges; suspicion of the coordinator (via the
      supplied failure detector) nacks the round and rotates.

    Two paper-mandated properties of the implementation:

    - {e first-coordinator optimisation}: in round 0 the coordinator may
      propose its own value without gathering estimates (nothing can have
      been adopted before round 0), so when the default primary writes a
      register the write costs one round trip to a majority — the paper's
      Appendix 3 analytic claim;
    - decisions are {e reliably broadcast}: every process forwards a
      decision on first receipt, so all correct servers eventually learn it
      (the register [read] liveness property relies on this).

    Correctness assumptions (the paper's): a majority of the [peers] never
    crash, crashed peers do not rejoin (agent state is volatile), channels
    are reliable (we run over {!Dnet.Rchannel}), and the failure detector is
    eventually perfect. Safety (agreement, validity, write-once) holds even
    if the detector misbehaves; only liveness needs ◇P. *)

open Runtime

type t

type persistence
(** Stable storage for a {e crash-recovery} agent (the paper's §5 pointer to
    consensus in the crash-recovery model, [22,23]): participants force-log
    every value adoption before acknowledging it and every decision before
    announcing it, so a recovered server rejoins without contradicting its
    pre-crash promises (it restarts above the last acknowledged round). This
    trades the crash-stop model's "majority never crashes" for "a majority
    is eventually up together" — at the price of forced IO on the register
    write path, which is precisely the cost the paper's diskless middle
    tier avoids (quantified by the persistence ablation). *)

val make_persistence : disk:Dstore.Disk.t -> persistence
(** The disk (and the log within) must be created {e outside} the process so
    it survives crashes. *)

val create :
  ?poll:float ->
  ?round_timeout:float ->
  ?persist:persistence ->
  peers:Types.proc_id list ->
  fd:Dnet.Fdetect.t ->
  ch:Dnet.Rchannel.t ->
  unit ->
  t
(** Must be called inside the owning application-server fiber. [peers] must
    list all application servers in the same order everywhere (the rotation
    schedule); the default primary must come first. [poll] is the local
    re-check interval for blocking waits (default 2 ms); [round_timeout]
    (default 100 ms) bounds how long any round is waited on before rotating
    — the ◇S-via-timeouts device that also lets processes desynchronised by
    recoveries converge to a common round. When [persist] is
    given and its log is non-empty, the agent recovers its instances from
    the log (free of charge — reading is not a forced write). *)

val start : t -> unit
(** Forks the dispatcher fiber. Call once after [create]. *)

val propose : t -> key:string -> Types.payload -> Types.payload
(** Propose a value for instance [key]; blocks until the instance decides
    and returns the decided value (not necessarily the proposal). *)

val peek : t -> key:string -> Types.payload option
(** This process's current knowledge of the decision (non-blocking). *)

val decided_keys : t -> string list
(** All locally known decided instances (tests, introspection). *)

val is_consensus_message : Types.payload -> bool
(** Classifier for trace analyses: consensus-protocol traffic (register
    writes) as opposed to application messages. *)

val forget : t -> key:string -> unit
(** Garbage-collect instance [key] locally (the paper's §5 register-array
    clean-up). Only safe for decided instances whose decision no process
    will ask about again; a later [propose] for the same key starts a {e
    fresh} instance, so the write-once guarantee no longer spans the
    collection point — the paper's "at-most-once only until a known period"
    caveat. No-op while a driver is still running. *)

val instance_count : t -> int
(** Number of locally known instances (memory accounting for GC tests). *)

val collect : t -> older_than:float -> int
(** Forget every decided instance whose decision was learned at or before
    [older_than]; returns how many were collected. Same safety caveat as
    {!forget}. *)
