open Runtime
module Rt = Etx_runtime
open Dnet

type Types.payload +=
  | C_estimate of {
      key : string;
      round : int;
      est : Types.payload option;
      ts : int;
    }
  | C_propose of { key : string; round : int; value : Types.payload }
  | C_ack of { key : string; round : int; ok : bool }
  | C_decide of { key : string; value : Types.payload }
  | C_decided_local of { key : string }
  | C_start of { key : string }
      (* a proposer that is not the round-0 coordinator announces the
         instance so that every correct peer participates from round 0 —
         CT liveness needs all correct processes in the round schedule *)

(* demux classes. All CT network traffic shares one bucket: the dispatcher
   and the per-instance drivers both wait on it (with filters narrowing to
   their share — driver-claimed round messages vs everything else), so
   neither ever scans the process's other backlogs (e.g. the primary's
   queued client requests). The local decision wakeup is its own bucket. *)
let cls_net =
  Rt.register_class ~name:"ct-net" (function
    | C_estimate _ | C_propose _ | C_ack _ | C_decide _ | C_start _ -> true
    | _ -> false)

let cls_decided =
  Rt.register_class ~name:"ct-decided" (function
    | C_decided_local _ -> true
    | _ -> false)

type instance = {
  key : string;
  mutable my_proposal : Types.payload option;
  mutable decided : Types.payload option;
  mutable decided_at : float;  (** local learn time, for garbage collection *)
  mutable driver_running : bool;
  mutable saved_est : Types.payload option;
      (** recovered adoption (crash-recovery mode) *)
  mutable saved_ts : int;
  mutable restart_round : int;
      (** never participate at or below a round acknowledged before a crash *)
}

(* Crash-recovery stable log: adoptions (before the ack leaves) and
   decisions (before they are announced). *)
type plog_record =
  | P_adopt of { key : string; round : int; value : Types.payload }
  | P_decide of { key : string; value : Types.payload }

type persistence = {
  pdisk : Dstore.Disk.t;
  plog : plog_record Dstore.Log.t;
}

let make_persistence ~disk = { pdisk = disk; plog = Dstore.Log.create ~disk () }

type t = {
  self : Types.proc_id;
  peers : Types.proc_id list;
  n : int;
  majority : int;
  fd : Fdetect.t;
  ch : Rchannel.t;
  poll : float;
  round_timeout : float;
  instances : (string, instance) Hashtbl.t;
  persist : persistence option;
  sink : Rt.obs_sink option;  (** fetched once at create; None = obs off *)
}

(* Register keys embed the request id ("g0:regD:r1003[1]"), which is the
   trace id of all observability for that request — parsing it here lets
   consensus events join the request's span tree without any API change. *)
let trace_of_key key =
  try Scanf.sscanf key "g%d:reg%c:r%d[" (fun _ _ rid -> rid) with
  | Scanf.Scan_failure _ | Failure _ | End_of_file -> 0

let ensure t key =
  match Hashtbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
      let inst =
        {
          key;
          my_proposal = None;
          decided = None;
          decided_at = nan;
          driver_running = false;
          saved_est = None;
          saved_ts = -1;
          restart_round = 0;
        }
      in
      Hashtbl.replace t.instances key inst;
      inst

let log_adoption t inst ~round value =
  match t.persist with
  | None -> ()
  | Some p ->
      Dstore.Log.append_list p.plog [ P_adopt { key = inst.key; round; value } ];
      Dstore.Log.force ~label:"reg-adopt" p.plog

let log_decision t inst value =
  match t.persist with
  | None -> ()
  | Some p ->
      Dstore.Log.append_list p.plog [ P_decide { key = inst.key; value } ];
      Dstore.Log.force ~label:"reg-decide" p.plog

let recover_from_log t p =
  let restore = function
    | P_adopt { key; round; value } ->
        let inst = ensure t key in
        if round >= inst.saved_ts then begin
          inst.saved_est <- Some value;
          inst.saved_ts <- round
        end;
        inst.restart_round <- max inst.restart_round (round + 1)
    | P_decide { key; value } ->
        let inst = ensure t key in
        if inst.decided = None then begin
          inst.decided <- Some value;
          inst.decided_at <- Rt.now ()
        end
  in
  Dstore.Log.crash_cut p.plog;
  Dstore.Log.iter_from p.plog ~lsn:(Dstore.Log.base_lsn p.plog) ~f:(fun _ r ->
      restore r)

let create ?(poll = 2.0) ?(round_timeout = 100.) ?persist ~peers ~fd ~ch () =
  let n = List.length peers in
  let t =
    {
      self = Rt.self ();
      peers;
      n;
      majority = (n / 2) + 1;
      fd;
      ch;
      poll;
      round_timeout;
      instances = Hashtbl.create 32;
      persist;
      sink = Rt.obs ();
    }
  in
  (match persist with None -> () | Some p -> recover_from_log t p);
  t

let coordinator t round = List.nth t.peers (round mod t.n)

let record_decision t inst value =
  match inst.decided with
  | Some _ -> ()
  | None ->
      log_decision t inst value;
      inst.decided <- Some value;
      inst.decided_at <- Rt.now ();
      (match t.sink with
      | None -> ()
      | Some s ->
          s.Rt.obs_count "consensus.decides" 1;
          s.Rt.obs_event ~trace:(trace_of_key inst.key) "consensus-decide"
            inst.key);
      (* wake any local proposer blocked in [propose] *)
      Rt.redeliver ~src:t.self (C_decided_local { key = inst.key });
      (* reliable broadcast: forward on first learn *)
      List.iter
        (fun p ->
          if p <> t.self then
            Rchannel.send t.ch p (C_decide { key = inst.key; value }))
        t.peers

(* --- the per-instance driver: one fiber running the CT state machine --- *)

(* The per-instance driver runs the rotating-coordinator state machine in
   direct style. Two liveness devices on top of suspicion-driven rotation:

   - every phase abandons its round after [round_timeout] (◇S via timeouts),
     so a round whose coordinator is stuck or gone always ends;
   - processes {e jump forward}: any message for a higher round re-enters
     the loop at that round (estimates we will coordinate are re-delivered
     so the new phase finds them in the mailbox; proposals are adopted on
     the spot). Without this, processes that restart at different rounds
     after recoveries would march in lock-step without ever meeting in a
     common round.

   Safety is unaffected: adoption timestamps carry the locking argument, and
   jumps only ever move rounds forward (never below a previously
   acknowledged round). *)
let driver t inst () =
  let wants_instance m =
    match m.Types.payload with
    | C_estimate { key; _ } | C_propose { key; _ } | C_ack { key; _ } ->
        key = inst.key
    | _ -> false
  in
  let adopt_and_ack ~round:r value ~coordinator:c =
    (* durable adoption before the promise leaves (crash-recovery mode);
       free in the crash-stop configuration *)
    log_adoption t inst ~round:r value;
    Rchannel.send t.ch c (C_ack { key = inst.key; round = r; ok = true })
  in
  (* highest round this driver entered, for the rounds-per-write metric *)
  let max_r = ref 0 in
  let rec go r est ts =
    if r > !max_r then max_r := r;
    match inst.decided with
    | Some _ -> ()
    | None ->
        let c = coordinator t r in
        if c = t.self then run_coordinator r est ts
        else run_participant r est ts c
  (* Shared reaction to messages that end the current phase by moving to a
     later round; returns [true] when the phase must stop. *)
  and jump_on (m : Types.message) ~current est ts =
    match m.payload with
    | C_propose { round = r'; value; _ } when r' >= current ->
        adopt_and_ack ~round:r' value ~coordinator:m.src;
        go (r' + 1) (Some value) r';
        true
    | C_estimate { round = r'; _ }
      when r' > current && coordinator t r' = t.self ->
        (* we coordinate that later round: requeue the estimate and go *)
        Rt.redeliver ~src:m.src m.payload;
        go r' est ts;
        true
    | C_estimate _ | C_propose _ | C_ack _ | _ -> false
  and run_coordinator r est ts =
    (* Phase 1/2: choose a value. Round 0 with an own proposal skips the
       estimate gathering (first-coordinator optimisation) — but only when
       nothing can have been adopted before round 0, which a recovered
       adoption would contradict. *)
    if r = 0 && inst.my_proposal <> None && inst.saved_est = None then
      propose r (Option.get inst.my_proposal)
    else begin
      let seen = Hashtbl.create 8 in
      Hashtbl.replace seen t.self (est, ts);
      let best () =
        let candidates =
          Hashtbl.fold (fun _ (e, s) acc -> (e, s) :: acc) seen []
        in
        let own =
          match inst.my_proposal with Some v -> [ (Some v, -1) ] | None -> []
        in
        List.fold_left
          (fun acc (e, s) ->
            match (e, acc) with
            | None, _ -> acc
            | Some _, Some (_, s') when s' >= s -> acc
            | Some v, _ -> Some (v, s))
          None (own @ candidates)
      in
      let deadline = Rt.now () +. t.round_timeout in
      let rec gather () =
        match inst.decided with
        | Some _ -> ()
        | None -> (
            match (Hashtbl.length seen >= t.majority, best ()) with
            | true, Some (v, _) -> propose r v
            | _ -> (
                match
                  Rt.recv ~timeout:t.poll ~cls:cls_net ~filter:wants_instance ()
                with
                | Some
                    ({ payload = C_estimate { round; est; ts; _ }; src; _ } as
                     m) ->
                    if round = r then begin
                      Hashtbl.replace seen src (est, ts);
                      gather ()
                    end
                    else if not (jump_on m ~current:r est ts) then gather ()
                | Some m ->
                    if not (jump_on m ~current:r est ts) then gather ()
                | None ->
                    if Rt.now () > deadline then go (r + 1) est ts
                    else gather ()))
      in
      gather ()
    end
  and propose r v =
    (* adopting our own proposal counts as an acknowledgement: in
       crash-recovery mode it must be durable before we count it *)
    log_adoption t inst ~round:r v;
    List.iter
      (fun p ->
        if p <> t.self then
          Rchannel.send t.ch p (C_propose { key = inst.key; round = r; value = v }))
      t.peers;
    let yes = ref 1 and no = ref 0 in
    let deadline = Rt.now () +. t.round_timeout in
    let rec collect () =
      match inst.decided with
      | Some _ -> ()
      | None ->
          if !yes >= t.majority then record_decision t inst v
          else if !yes + !no >= t.majority && !no >= 1 then
            go (r + 1) (Some v) r
          else begin
            match Rt.recv ~timeout:t.poll ~cls:cls_net ~filter:wants_instance () with
            | Some { payload = C_ack { round; ok; _ }; _ } when round = r ->
                if ok then incr yes else incr no;
                collect ()
            | Some m ->
                if not (jump_on m ~current:r (Some v) r) then collect ()
            | None ->
                if Rt.now () > deadline then go (r + 1) (Some v) r
                else collect ()
          end
    in
    collect ()
  and run_participant r est ts c =
    Rchannel.send t.ch c (C_estimate { key = inst.key; round = r; est; ts });
    let deadline = Rt.now () +. t.round_timeout in
    let give_up () =
      Rchannel.send t.ch c (C_ack { key = inst.key; round = r; ok = false });
      go (r + 1) est ts
    in
    let rec wait () =
      match inst.decided with
      | Some _ -> ()
      | None -> (
          match Rt.recv ~timeout:t.poll ~cls:cls_net ~filter:wants_instance () with
          | Some { payload = C_propose { round; value; _ }; src; _ }
            when round = r ->
              adopt_and_ack ~round:r value ~coordinator:src;
              go (r + 1) (Some value) r
          | Some m -> if not (jump_on m ~current:r est ts) then wait ()
          | None ->
              if Fdetect.suspects t.fd c || Rt.now () > deadline then
                give_up ()
              else wait ())
    in
    wait ()
  in
  (* A recovered adoption dominates a fresh proposal as the initial
     estimate, and the driver must start above any round it acknowledged
     before a crash. A fresh proposal carries ts = -1: any timestamp >= 0
     claims "adopted from the coordinator of round ts", and two distinct
     values may never make that claim for the same round — a fresh proposal
     stamped 0 could tie a genuine round-0 adoption and steal the lock. *)
  let est0, ts0 =
    match inst.saved_est with
    | Some _ as est -> (est, inst.saved_ts)
    | None -> (inst.my_proposal, -1)
  in
  go inst.restart_round est0 ts0;
  (match t.sink with
  | None -> ()
  | Some s ->
      (* rounds this driver traversed before the instance decided; >1 only
         when round 0 failed (coordinator crash, suspicion, timeout) *)
      let rounds = !max_r + 1 in
      s.Rt.obs_count "consensus.rounds" rounds;
      s.Rt.obs_observe "consensus.rounds_per_write" (float_of_int rounds));
  inst.driver_running <- false

let start_driver t inst =
  if (not inst.driver_running) && inst.decided = None then begin
    inst.driver_running <- true;
    Rt.fork ("consensus:" ^ inst.key) (driver t inst)
  end

(* --- dispatcher: auto-join, decisions, and stale-message service --- *)

let dispatcher t () =
  let wants m =
    match m.Types.payload with
    | C_decide _ | C_start _ -> true
    | C_estimate { key; _ } | C_propose { key; _ } | C_ack { key; _ } -> (
        (* steal only messages no running driver will consume *)
        match Hashtbl.find_opt t.instances key with
        | Some inst -> not inst.driver_running
        | None -> true)
    | _ -> false
  in
  let rec loop () =
    (match Rt.recv ~cls:cls_net ~filter:wants () with
    | None -> ()
    | Some m -> (
        match m.payload with
        | C_decide { key; value } ->
            let inst = ensure t key in
            record_decision t inst value
        | C_start { key } ->
            let inst = ensure t key in
            if inst.decided = None then start_driver t inst
        | C_estimate { key; _ } | C_propose { key; _ } | C_ack { key; _ } -> (
            let inst = ensure t key in
            match inst.decided with
            | Some value ->
                (* instance already over here: tell the sender *)
                Rchannel.send t.ch m.src (C_decide { key; value })
            | None ->
                (* auto-join: start a driver and let it find the message *)
                start_driver t inst;
                Rt.redeliver ~src:m.src m.payload)
        | _ -> ()));
    loop ()
  in
  loop ()

let start t = Rt.fork "consensus-dispatcher" (dispatcher t)

let propose t ~key value =
  let inst = ensure t key in
  match inst.decided with
  | Some v -> v
  | None ->
      if inst.my_proposal = None then inst.my_proposal <- Some value;
      (* the round-0 coordinator's own propose announces the instance; any
         other proposer must do so explicitly *)
      if (not inst.driver_running) && coordinator t 0 <> t.self then
        List.iter
          (fun p ->
            if p <> t.self then Rchannel.send t.ch p (C_start { key }))
          t.peers;
      start_driver t inst;
      let wants m =
        match m.Types.payload with
        | C_decided_local { key = k } -> k = key
        | _ -> false
      in
      let rec wait () =
        match inst.decided with
        | Some v -> v
        | None ->
            ignore (Rt.recv ~timeout:(t.poll *. 5.) ~cls:cls_decided ~filter:wants ());
            wait ()
      in
      wait ()

let peek t ~key =
  match Hashtbl.find_opt t.instances key with
  | None -> None
  | Some inst -> inst.decided

let is_consensus_message = function
  | C_estimate _ | C_propose _ | C_ack _ | C_decide _ | C_decided_local _
  | C_start _ ->
      true
  | _ -> false

let forget t ~key =
  match Hashtbl.find_opt t.instances key with
  | None -> ()
  | Some inst -> if not inst.driver_running then Hashtbl.remove t.instances key

let collect t ~older_than =
  let victims =
    Hashtbl.fold
      (fun key inst acc ->
        if
          (not inst.driver_running)
          && inst.decided <> None
          && inst.decided_at <= older_than
        then key :: acc
        else acc)
      t.instances []
  in
  List.iter (Hashtbl.remove t.instances) victims;
  List.length victims

let instance_count t = Hashtbl.length t.instances

let decided_keys t =
  Hashtbl.fold
    (fun key inst acc -> if inst.decided <> None then key :: acc else acc)
    t.instances []
  |> List.sort String.compare
