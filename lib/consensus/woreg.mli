(** Write-once registers (the paper's wo-registers) over consensus.

    A wo-register behaves like a CD-ROM: it can be written once and read
    many times. [write v] returns either [v] (this writer won) or the value
    some other process already wrote; [read] returns the written value or
    [⊥] ([None]) — and if a value was written, repeated reads eventually
    return it (decisions are reliably broadcast by the consensus agent).

    Registers come in arrays indexed by the result identifier [j], scoped to
    a request: the protocol's [regA] (which application server computes
    result [j]) and [regD] (the decision — result and outcome — for [j]). *)

open Runtime

type t
(** A register array backed by one consensus agent. *)

val array : Agent.t -> name:string -> t
(** [array agent ~name] is the register array [name] (e.g. ["regA:r0"]).
    Arrays with the same name on different servers denote the same shared
    registers; the name must therefore encode the request scope. *)

val write : t -> j:int -> Types.payload -> Types.payload
(** [write arr ~j v] writes register [j]: blocks until the underlying
    consensus instance decides, and returns the (unique) written value. *)

val read : t -> j:int -> Types.payload option
(** Non-blocking read: the written value, or [None] for [⊥]. *)

val key : t -> j:int -> string
(** The underlying consensus instance key (tests, tracing). *)
