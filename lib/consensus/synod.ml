open Runtime
module Rt = Etx_runtime
open Dnet

type Types.payload +=
  | S_prepare of { key : string; ballot : int }  (** phase 1a *)
  | S_promise of {
      key : string;
      ballot : int;
      accepted : (int * Types.payload) option;
    }  (** phase 1b *)
  | S_accept of { key : string; ballot : int; value : Types.payload }
      (** phase 2a *)
  | S_accepted of { key : string; ballot : int }  (** phase 2b *)
  | S_nack of { key : string; ballot : int }
      (** a higher promise exists; the proposer should move on *)
  | S_learn of { key : string; value : Types.payload }
  | S_decided_local of { key : string }

(* demux classes: acceptor-side requests, proposer-side replies, and the
   local decision wakeup each get their own mailbox bucket *)
let cls_request =
  Rt.register_class ~name:"synod-request" (function
    | S_prepare _ | S_accept _ | S_learn _ -> true
    | _ -> false)

let cls_reply =
  Rt.register_class ~name:"synod-reply" (function
    | S_promise _ | S_accepted _ | S_nack _ -> true
    | _ -> false)

let cls_decided =
  Rt.register_class ~name:"synod-decided" (function
    | S_decided_local _ -> true
    | _ -> false)

(* acceptor + learner + proposer state for one instance at one process *)
type instance = {
  key : string;
  mutable promised : int;  (** highest ballot promised (-1 = none) *)
  mutable accepted : (int * Types.payload) option;
  mutable decided : Types.payload option;
  mutable proposing : bool;  (** a proposer fiber is active here *)
}

type t = {
  self : Types.proc_id;
  peers : Types.proc_id list;
  index : int;  (** our slot in the ballot partition *)
  n : int;
  majority : int;
  ch : Rchannel.t;
  attempt_timeout : float;
  backoff : float;
  instances : (string, instance) Hashtbl.t;
}

let create ?(attempt_timeout = 50.) ?(backoff = 20.) ~peers ~ch () =
  let self = Rt.self () in
  let index =
    match List.find_index (fun p -> p = self) peers with
    | Some i -> i
    | None -> invalid_arg "Synod.create: self not among peers"
  in
  {
    self;
    peers;
    index;
    n = List.length peers;
    majority = (List.length peers / 2) + 1;
    ch;
    attempt_timeout;
    backoff;
    instances = Hashtbl.create 32;
  }

let ensure t key =
  match Hashtbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
      let inst =
        { key; promised = -1; accepted = None; decided = None; proposing = false }
      in
      Hashtbl.replace t.instances key inst;
      inst

let learn t inst value =
  if inst.decided = None then begin
    inst.decided <- Some value;
    Rt.redeliver ~src:t.self (S_decided_local { key = inst.key });
    List.iter
      (fun p ->
        if p <> t.self then Rchannel.send t.ch p (S_learn { key = inst.key; value }))
      t.peers
  end

(* ---------------- acceptor / learner ---------------- *)

let dispatcher t () =
  let rec loop () =
    (match Rt.recv_cls cls_request with
    | None -> ()
    | Some m -> (
        match m.payload with
        | S_prepare { key; ballot } ->
            let inst = ensure t key in
            (match inst.decided with
            | Some value -> Rchannel.send t.ch m.src (S_learn { key; value })
            | None ->
                if ballot > inst.promised then begin
                  inst.promised <- ballot;
                  Rchannel.send t.ch m.src
                    (S_promise { key; ballot; accepted = inst.accepted })
                end
                else Rchannel.send t.ch m.src (S_nack { key; ballot }))
        | S_accept { key; ballot; value } ->
            let inst = ensure t key in
            (match inst.decided with
            | Some value -> Rchannel.send t.ch m.src (S_learn { key; value })
            | None ->
                if ballot >= inst.promised then begin
                  inst.promised <- ballot;
                  inst.accepted <- Some (ballot, value);
                  Rchannel.send t.ch m.src (S_accepted { key; ballot })
                end
                else Rchannel.send t.ch m.src (S_nack { key; ballot }))
        | S_learn { key; value } -> learn t (ensure t key) value
        | _ -> ()));
    loop ()
  in
  loop ()

let start t = Rt.fork "synod-dispatcher" (dispatcher t)

(* ---------------- proposer ---------------- *)

(* Collect replies for one phase until a majority, a nack, or the attempt
   timeout; [matches] classifies a reply payload. *)
type 'a phase_result = Quorum of 'a list | Preempted | Timed_out

let collect_phase t inst ~matches =
  let deadline = Rt.now () +. t.attempt_timeout in
  (* [n_replies] rides along so reaching a quorum is O(1) per reply rather
     than re-counting the accumulated list each time *)
  let rec wait n_replies replies =
    if inst.decided <> None then Preempted
    else if n_replies >= t.majority then Quorum replies
    else
      let remaining = deadline -. Rt.now () in
      if remaining <= 0. then Timed_out
      else
        let filter m =
          match matches m.Types.payload with
          | `Reply _ | `Nack -> true
          | `Other -> false
        in
        match
          Rt.recv ~timeout:(Float.min remaining 5.) ~cls:cls_reply ~filter ()
        with
        | Some m -> (
            match matches m.Types.payload with
            | `Reply r -> wait (n_replies + 1) (r :: replies)
            | `Nack -> Preempted
            | `Other -> wait n_replies replies)
        | None -> wait n_replies replies
  in
  wait 0 []

let proposer t inst my_value () =
  let rec attempt ballot =
    match inst.decided with
    | Some _ -> ()
    | None ->
        let next () =
          (* jittered back-off keeps duelling proposers from lock-step *)
          Rt.sleep (t.backoff +. Rt.random_float t.backoff);
          attempt (ballot + t.n)
        in
        if ballot = 0 then
          (* lowest ballot: no acceptor can have accepted anything below
             it, so phase 1 is skipped — the primary's fast path *)
          phase2 ballot my_value next
        else begin
          List.iter
            (fun p ->
              Rchannel.send t.ch p (S_prepare { key = inst.key; ballot }))
            t.peers;
          let matches = function
            | S_promise { key; ballot = b; accepted }
              when key = inst.key && b = ballot ->
                `Reply accepted
            | S_nack { key; ballot = b } when key = inst.key && b = ballot ->
                `Nack
            | _ -> `Other
          in
          match collect_phase t inst ~matches with
          | Preempted -> if inst.decided = None then next ()
          | Timed_out -> next ()
          | Quorum promises ->
              (* adopt the value accepted at the highest ballot, if any *)
              let value =
                List.fold_left
                  (fun best promise ->
                    match (promise, best) with
                    | None, _ -> best
                    | Some (b, v), None -> Some (b, v)
                    | Some (b, v), Some (b', _) when b > b' -> Some (b, v)
                    | Some _, Some _ -> best)
                  None promises
                |> function
                | Some (_, v) -> v
                | None -> my_value
              in
              phase2 ballot value next
        end
  and phase2 ballot value next =
    List.iter
      (fun p ->
        Rchannel.send t.ch p (S_accept { key = inst.key; ballot; value }))
      t.peers;
    let matches = function
      | S_accepted { key; ballot = b } when key = inst.key && b = ballot ->
          `Reply ()
      | S_nack { key; ballot = b } when key = inst.key && b = ballot -> `Nack
      | _ -> `Other
    in
    match collect_phase t inst ~matches with
    | Quorum _ -> learn t inst value
    | Preempted -> if inst.decided = None then next ()
    | Timed_out -> next ()
  in
  attempt t.index;
  inst.proposing <- false

let propose t ~key value =
  let inst = ensure t key in
  match inst.decided with
  | Some v -> v
  | None ->
      if not inst.proposing then begin
        inst.proposing <- true;
        Rt.fork ("synod:" ^ key) (proposer t inst value)
      end;
      let wants m =
        match m.Types.payload with
        | S_decided_local { key = k } -> k = key
        | _ -> false
      in
      let rec wait () =
        match inst.decided with
        | Some v -> v
        | None ->
            ignore (Rt.recv ~timeout:10. ~cls:cls_decided ~filter:wants ());
            wait ()
      in
      wait ()

let peek t ~key =
  match Hashtbl.find_opt t.instances key with
  | None -> None
  | Some inst -> inst.decided

let decided_keys t =
  Hashtbl.fold
    (fun key inst acc -> if inst.decided <> None then key :: acc else acc)
    t.instances []
  |> List.sort String.compare
