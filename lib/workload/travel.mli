(** The paper's motivating travel application: a request books a flight, a
    hotel and a rental car; the result carries the reservation details.

    Resources are spread across the deployment's databases round-robin
    (flight inventory on db1, hotels on db2, cars on db3 when three
    databases exist — all on db1 otherwise), so the prepare phase really
    exercises multi-database atomic commitment. A sold-out resource fails an
    [Ensure_min] guard: the try aborts (user-level abort) and the retry
    reports the shortage as a committable result. *)

val book : Etx.Business.t
(** Request body: ["<destination>:<party-size>"]. Declares the three
    inventory keys of the destination as read+write keyset. *)

val availability : Etx.Business.t
(** Read-only availability lookup. Request body: the bare destination;
    result ["available:<dest>:seats=..,rooms=..,cars=.."]. Declares the
    destination's inventory keys as read keyset, so committed bookings
    invalidate cached lookups. *)

val seed_inventory :
  destinations:string list ->
  seats:int ->
  rooms:int ->
  cars:int ->
  (string * Dbms.Value.t) list
(** Inventory keys: ["seats:<dest>"], ["rooms:<dest>"], ["cars:<dest>"]. *)

val seats_key : string -> string
val rooms_key : string -> string
val cars_key : string -> string
