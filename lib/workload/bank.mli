(** Bank-account business logic.

    {!update} is the paper's measurement workload ("the application server
    executes some SQL statements to update a bank account on a single
    database"): it always commits, which makes latency runs uniform.
    {!transfer} exercises user-level aborts: insufficient funds poison the
    first try (the database then refuses to commit, per the paper's
    modelling of user-level aborts), and later tries compute a committable
    report instead — the paper's footnote-4 discipline. *)

val update : Etx.Business.t
(** Request body: ["<account>:<delta>"], e.g. ["acct42:+10"]. Adds [delta]
    to the account balance on the first database. Result:
    ["updated:<account>:<new-balance-if-read>"] — always committable. *)

val transfer : Etx.Business.t
(** Request body: ["<from>:<to>:<amount>"]. Guards [from >= amount]; debits
    and credits on the first database. Results: ["transferred:..."] or (on
    retries after a user-level abort) ["failed:insufficient-funds:..."].
    Declares a cross-shard decomposition (debit branch on [from]'s shard,
    credit branch on [to]'s shard), so transfers between accounts on
    different replica groups commit atomically via Paxos Commit; the first
    few attempts retry the transfer, later ones degrade to a read-only
    probe whose commit reports the failure (footnote-4 discipline). *)

val cross_probe_attempt : int
(** The attempt number at which a cross-shard transfer's plan degrades to
    the read-only probe of [from] (5): attempts below it retry the
    debit/credit plan verbatim, the probe's commit carries the
    insufficient-funds report. *)

val audit : Etx.Business.t
(** Read-only (declares [read_only] and a singleton read keyset, so the
    method cache may serve it): request body is an account name; the
    result reports its balance. Commits trivially. *)

val mixed : Etx.Business.t
(** Read-dominant mixed workload: a body {e without} a [':'] is an
    {!audit} of that account (cacheable read); ["<account>:<delta>"] is an
    {!update} (a write that invalidates cached audits of the account). *)

val seed_accounts : (string * int) list -> (string * Dbms.Value.t) list
(** Convenience: initial balances as database seed data. *)
