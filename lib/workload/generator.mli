(** Deterministic request-body generators for stress runs and benchmarks. *)

type kind =
  | Bank_updates of { accounts : int; max_delta : int }
  | Bank_transfers of { accounts : int; max_amount : int }
  | Travel_bookings of { destinations : string list; max_party : int }
  | Read_heavy of { accounts : int; max_delta : int; reads_per_write : int }
      (** mixed bank workload over {!Bank.mixed}: audits (bare account
          bodies, read-only) interleaved with updates at an exact
          [reads_per_write]:1 ratio — every [(reads_per_write + 1)]-th
          request is a write. [reads_per_write = 0] degenerates to
          {!Bank_updates}-shaped bodies. *)
  | Travel_lookups of { destinations : string list }
      (** pure read workload over {!Travel.availability}: bodies are bare
          destinations. *)

val bodies : seed:int -> n:int -> kind -> string list
(** [n] request bodies, reproducible for a given seed. *)

val sharded_bodies :
  map:Etx.Shard_map.t ->
  ?cross_ratio:float ->
  seed:int ->
  n:int ->
  kind ->
  (int * string) list
(** [n] [(shard, body)] pairs for a sharded cluster: the shard is where the
    body's routing key lives under [map]. Multi-key bodies (bank transfers)
    draw the destination account from the source's shard by default; with
    [cross_ratio > 0.] that fraction of them instead draw it from a foreign
    shard — cross-shard transfers for clusters built with [~cross:true].
    The interleave is deterministic (request [i] is cross iff
    [floor ((i+1) * r) > floor (i * r)]), so the mix is exact for any [n],
    and [cross_ratio = 0.] — the default — reproduces earlier revisions'
    bodies byte-for-byte (same rng draw sequence). Read-heavy and lookup
    bodies are single-key, so their reads are intra-shard by
    construction. *)

val business_of : kind -> Etx.Business.t

val seed_data_of : kind -> (string * Dbms.Value.t) list
(** Matching initial database contents (generous balances/inventory). *)
