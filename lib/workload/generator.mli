(** Deterministic request-body generators for stress runs and benchmarks. *)

type kind =
  | Bank_updates of { accounts : int; max_delta : int }
  | Bank_transfers of { accounts : int; max_amount : int }
  | Travel_bookings of { destinations : string list; max_party : int }

val bodies : seed:int -> n:int -> kind -> string list
(** [n] request bodies, reproducible for a given seed. *)

val sharded_bodies :
  map:Etx.Shard_map.t -> seed:int -> n:int -> kind -> (int * string) list
(** [n] [(shard, body)] pairs for a sharded cluster: the shard is where the
    body's routing key lives under [map]. Multi-key bodies (bank transfers)
    are constrained intra-shard — the destination account is drawn from the
    source's shard — because cross-shard commit is out of scope. *)

val business_of : kind -> Etx.Business.t

val seed_data_of : kind -> (string * Dbms.Value.t) list
(** Matching initial database contents (generous balances/inventory). *)
