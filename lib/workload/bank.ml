open Dbms

let first_db ctx = List.hd ctx.Etx.Business.dbs

(* A lock conflict that survived the stub's bounded retries: poison the
   transaction so this try ABORTS (and the client's retry runs afresh)
   rather than committing an empty workspace with a "busy" result. *)
let give_up_busy ctx ~db key =
  ignore (ctx.Etx.Business.exec ~db [ Rm.Fail ]);
  "busy:" ^ key

(* body "acct:delta" with delta like "+10" or "-3" *)
let parse_update body =
  match String.split_on_char ':' body with
  | [ account; delta ] -> (account, int_of_string delta)
  | _ -> invalid_arg ("Bank.update: bad request body " ^ body)

let run_update ctx ~body =
  let account, delta = parse_update body in
  let db = first_db ctx in
  match
    ctx.Etx.Business.exec ~db [ Rm.Add (account, delta); Rm.Get account ]
  with
  | Rm.Exec_ok { values = [ Some (Value.Int v) ]; business_ok = true } ->
      Printf.sprintf "updated:%s:%d" account v
  | Rm.Exec_ok _ -> Printf.sprintf "updated:%s" account
  | Rm.Exec_conflict key -> give_up_busy ctx ~db key
  | Rm.Exec_rejected -> "error:rejected"

(* keyset declarations are total: a malformed body declares nothing and
   the error surfaces inside [run], exactly as before *)
let update_keys body =
  match String.split_on_char ':' body with
  | [ account; _delta ] ->
      { Etx.Business.reads = [ account ]; writes = [ account ] }
  | _ -> Etx.Business.no_keys

let update =
  Etx.Business.make ~label:"bank-update" ~keys:update_keys run_update

let parse_transfer body =
  match String.split_on_char ':' body with
  | [ from_acct; to_acct; amount ] -> (from_acct, to_acct, int_of_string amount)
  | _ -> invalid_arg ("Bank.transfer: bad request body " ^ body)

let transfer_keys body =
  match String.split_on_char ':' body with
  | [ from_acct; to_acct; _amount ] ->
      { Etx.Business.reads = [ from_acct; to_acct ];
        writes = [ from_acct; to_acct ] }
  | _ -> Etx.Business.no_keys

(* Cross-shard decomposition of a transfer: the debit (with its funds
   guard) on the shard owning [from], the credit on the shard owning [to].
   Plans are pure functions of (attempt, body) — a takeover driver must be
   able to recompute them — so the intra-shard path's "re-check the balance
   and re-attempt" discipline is unavailable here. Instead the first few
   attempts retry the transfer verbatim (absorbing aborts from crashes and
   lock conflicts), then the plan degrades to a read-only probe of [from]
   whose commit carries the footnote-4 failure report. Mildly pessimistic:
   funds that only become sufficient after the degradation point report
   failure where the intra-shard path would transfer. *)
let cross_probe_attempt = 5

let transfer_cross =
  {
    Etx.Business.plan =
      (fun ~attempt ~body ->
        let from_acct, to_acct, amount = parse_transfer body in
        if attempt < cross_probe_attempt then
          [
            ( from_acct,
              [ Rm.Ensure_min (from_acct, amount); Rm.Add (from_acct, -amount) ]
            );
            (to_acct, [ Rm.Add (to_acct, amount) ]);
          ]
        else [ (from_acct, [ Rm.Get from_acct ]) ]);
    finish =
      (fun ~attempt ~body ~replies ->
        let from_acct, to_acct, amount = parse_transfer body in
        if attempt < cross_probe_attempt then
          Printf.sprintf "transferred:%d:%s->%s" amount from_acct to_acct
        else
          let bal =
            match List.assoc_opt from_acct replies with
            | Some { Etx.Business.values = [ Some v ]; _ } -> Value.to_string v
            | _ -> "0"
          in
          Printf.sprintf "failed:insufficient-funds:%s=%s" from_acct bal);
  }

let transfer =
  Etx.Business.make ~label:"bank-transfer" ~keys:transfer_keys
    ~cross:transfer_cross
    (fun ctx ~body ->
      let from_acct, to_acct, amount = parse_transfer body in
      let db = first_db ctx in
      let attempt_transfer () =
        match
          ctx.Etx.Business.exec ~db
            [
              Rm.Ensure_min (from_acct, amount);
              Rm.Add (from_acct, -amount);
              Rm.Add (to_acct, amount);
            ]
        with
        | Rm.Exec_ok { business_ok = true; _ } ->
            Printf.sprintf "transferred:%d:%s->%s" amount from_acct to_acct
        | Rm.Exec_ok { business_ok = false; _ } ->
            (* user-level abort: this try's transaction is poisoned and
               will abort; the client will retry with attempt > 1 *)
            "insufficient-funds"
        | Rm.Exec_conflict key -> give_up_busy ctx ~db key
        | Rm.Exec_rejected -> "error:rejected"
      in
      if ctx.Etx.Business.attempt = 1 then attempt_transfer ()
      else
        (* A previous try aborted. Re-check the balance: transfer again if
           it suffices (the abort came from a crash or race), otherwise
           compute a committable failure report (paper footnote 4). *)
        match ctx.Etx.Business.exec ~db [ Rm.Get from_acct ] with
        | Rm.Exec_ok { values = [ Some (Value.Int bal) ]; _ }
          when bal >= amount ->
            attempt_transfer ()
        | Rm.Exec_ok { values = [ v ]; _ } ->
            Printf.sprintf "failed:insufficient-funds:%s=%s" from_acct
              (match v with
              | Some value -> Value.to_string value
              | None -> "0")
        | Rm.Exec_ok _ | Rm.Exec_conflict _ | Rm.Exec_rejected ->
            "failed:insufficient-funds")

let run_audit ctx ~body =
  let db = first_db ctx in
  match ctx.Etx.Business.exec ~db [ Rm.Get body ] with
  | Rm.Exec_ok { values = [ Some v ]; _ } ->
      Printf.sprintf "balance:%s:%s" body (Value.to_string v)
  | Rm.Exec_ok _ -> Printf.sprintf "balance:%s:none" body
  | Rm.Exec_conflict key -> give_up_busy ctx ~db key
  | Rm.Exec_rejected -> "error:rejected"

let audit_keys body = { Etx.Business.reads = [ body ]; writes = [] }

(* Only a genuine balance read is a function of committed state; "busy:"
   and "error:" reports are transient and must never enter the cache. *)
let audit_cacheable result =
  String.length result >= 8 && String.sub result 0 8 = "balance:"

let audit =
  Etx.Business.make ~label:"bank-audit"
    ~read_only:(fun _ -> true)
    ~keys:audit_keys ~cacheable:audit_cacheable run_audit

(* Mixed read/write method for read-dominant workloads: a body without a
   ':' is an audit of that account (cacheable); "acct:delta" is an update.
   One method so a single deployment serves both shapes and the cache sees
   writes that invalidate its own reads. *)
let mixed_read body = not (String.contains body ':')

let mixed =
  Etx.Business.make ~label:"bank-mixed" ~read_only:mixed_read
    ~cacheable:audit_cacheable
    ~keys:(fun body ->
      if mixed_read body then audit_keys body else update_keys body)
    (fun ctx ~body ->
      if mixed_read body then run_audit ctx ~body else run_update ctx ~body)

let seed_accounts accounts =
  List.map (fun (name, balance) -> (name, Value.Int balance)) accounts
