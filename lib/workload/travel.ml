open Dbms

let seats_key dest = "seats:" ^ dest
let rooms_key dest = "rooms:" ^ dest
let cars_key dest = "cars:" ^ dest

let parse body =
  match String.split_on_char ':' body with
  | [ dest; party ] -> (dest, int_of_string party)
  | _ -> invalid_arg ("Travel.book: bad request body " ^ body)

(* Spread the three inventories over the available databases. *)
let resource_dbs ctx =
  match ctx.Etx.Business.dbs with
  | [] -> invalid_arg "Travel.book: no databases"
  | [ db ] -> (db, db, db)
  | [ db1; db2 ] -> (db1, db2, db1)
  | db1 :: db2 :: db3 :: _ -> (db1, db2, db3)

let inventory_keys dest = [ seats_key dest; rooms_key dest; cars_key dest ]

let book_keys body =
  match String.split_on_char ':' body with
  | [ dest; _party ] ->
      { Etx.Business.reads = inventory_keys dest; writes = inventory_keys dest }
  | _ -> Etx.Business.no_keys

let book =
  Etx.Business.make ~label:"travel-booking" ~keys:book_keys
    (fun ctx ~body ->
        let dest, party = parse body in
        let flights_db, hotels_db, cars_db = resource_dbs ctx in
        let exec = ctx.Etx.Business.exec in
        let reserve db key n =
          match exec ~db [ Rm.Ensure_min (key, n); Rm.Add (key, -n) ] with
          | Rm.Exec_ok { business_ok = true; _ } -> `Reserved
          | Rm.Exec_ok { business_ok = false; _ } -> `Sold_out
          | Rm.Exec_conflict _ ->
              (* exhausted lock-conflict retries: poison so this try aborts
                 instead of committing a partial booking *)
              ignore (exec ~db [ Rm.Fail ]);
              `Busy
          | Rm.Exec_rejected -> `Rejected
        in
        let availability () =
          let read db key =
            match exec ~db [ Rm.Get key ] with
            | Rm.Exec_ok { values = [ Some (Value.Int n) ]; _ } -> n
            | Rm.Exec_ok _ | Rm.Exec_conflict _ | Rm.Exec_rejected -> 0
          in
          Printf.sprintf "seats=%d,rooms=%d,cars=%d"
            (read flights_db (seats_key dest))
            (read hotels_db (rooms_key dest))
            (read cars_db (cars_key dest))
        in
        let try_book () =
          match reserve flights_db (seats_key dest) party with
          | `Sold_out -> "sold-out:flight:" ^ dest
          | `Busy | `Rejected -> "error:flight:" ^ dest
          | `Reserved -> (
              match reserve hotels_db (rooms_key dest) 1 with
              | `Sold_out -> "sold-out:hotel:" ^ dest
              | `Busy | `Rejected -> "error:hotel:" ^ dest
              | `Reserved -> (
                  match reserve cars_db (cars_key dest) 1 with
                  | `Sold_out -> "sold-out:car:" ^ dest
                  | `Busy | `Rejected -> "error:car:" ^ dest
                  | `Reserved ->
                      Printf.sprintf "booked:%s:flight+hotel+car:party=%d"
                        dest party))
        in
        if ctx.Etx.Business.attempt = 1 then try_book ()
        else begin
          (* A previous try aborted. If the shelves are genuinely empty,
             compute an informational result that will commit (paper
             footnote 4); otherwise — the abort came from a crash or a
             race — just book again. *)
          let read db key =
            match exec ~db [ Rm.Get key ] with
            | Rm.Exec_ok { values = [ Some (Value.Int n) ]; _ } -> n
            | Rm.Exec_ok _ | Rm.Exec_conflict _ | Rm.Exec_rejected -> 0
          in
          if
            read flights_db (seats_key dest) >= party
            && read hotels_db (rooms_key dest) >= 1
            && read cars_db (cars_key dest) >= 1
          then try_book ()
          else Printf.sprintf "unavailable:%s:%s" dest (availability ())
        end)

(* Read-only availability lookup: body is the bare destination. Declares
   the three inventory keys as its read keyset, so a booking's commit
   (which writes those keys) invalidates any cached lookup. *)
let availability =
  Etx.Business.make ~label:"travel-availability"
    ~read_only:(fun _ -> true)
    ~cacheable:(fun result ->
      String.length result >= 10 && String.sub result 0 10 = "available:")
    ~keys:(fun dest -> { Etx.Business.reads = inventory_keys dest; writes = [] })
    (fun ctx ~body ->
      let dest = body in
      let flights_db, hotels_db, cars_db = resource_dbs ctx in
      let exec = ctx.Etx.Business.exec in
      let read db key =
        match exec ~db [ Rm.Get key ] with
        | Rm.Exec_ok { values = [ Some (Value.Int n) ]; _ } -> Ok n
        | Rm.Exec_ok _ -> Ok 0
        | Rm.Exec_conflict _ ->
            (* exhausted lock-conflict retries: poison so this try aborts
               rather than committing (and caching) a made-up zero count *)
            ignore (exec ~db [ Rm.Fail ]);
            Error ("busy:" ^ key)
        | Rm.Exec_rejected -> Error ("error:rejected:" ^ key)
      in
      match read flights_db (seats_key dest) with
      | Error e -> e
      | Ok seats -> (
          match read hotels_db (rooms_key dest) with
          | Error e -> e
          | Ok rooms -> (
              match read cars_db (cars_key dest) with
              | Error e -> e
              | Ok cars ->
                  Printf.sprintf "available:%s:seats=%d,rooms=%d,cars=%d" dest
                    seats rooms cars)))

let seed_inventory ~destinations ~seats ~rooms ~cars =
  List.concat_map
    (fun dest ->
      [
        (seats_key dest, Value.Int seats);
        (rooms_key dest, Value.Int rooms);
        (cars_key dest, Value.Int cars);
      ])
    destinations
