type kind =
  | Bank_updates of { accounts : int; max_delta : int }
  | Bank_transfers of { accounts : int; max_amount : int }
  | Travel_bookings of { destinations : string list; max_party : int }
  | Read_heavy of { accounts : int; max_delta : int; reads_per_write : int }
  | Travel_lookups of { destinations : string list }

let bodies ~seed ~n kind =
  let rng = Runtime.Rng.create ~seed in
  let body i =
    match kind with
    | Bank_updates { accounts; max_delta } ->
        Printf.sprintf "acct%d:%d"
          (Runtime.Rng.int rng accounts)
          (1 + Runtime.Rng.int rng max_delta)
    | Bank_transfers { accounts; max_amount } ->
        let from_acct = Runtime.Rng.int rng accounts in
        let to_acct = (from_acct + 1 + Runtime.Rng.int rng (max 1 (accounts - 1))) mod accounts in
        Printf.sprintf "acct%d:acct%d:%d" from_acct to_acct
          (1 + Runtime.Rng.int rng max_amount)
    | Travel_bookings { destinations; max_party } ->
        let dest =
          List.nth destinations (Runtime.Rng.int rng (List.length destinations))
        in
        Printf.sprintf "%s:%d" dest (1 + Runtime.Rng.int rng max_party)
    | Read_heavy { accounts; max_delta; reads_per_write } ->
        (* deterministic interleave, not coin flips: every
           (reads_per_write + 1)-th request is a write, so the mix ratio
           is exact for any [n] — audits are bare account bodies, updates
           the usual "acct:delta" (the [Bank.mixed] dispatch). *)
        let cycle = max 1 (reads_per_write + 1) in
        if reads_per_write > 0 && i mod cycle <> cycle - 1 then
          Printf.sprintf "acct%d" (Runtime.Rng.int rng accounts)
        else
          Printf.sprintf "acct%d:%d"
            (Runtime.Rng.int rng accounts)
            (1 + Runtime.Rng.int rng max_delta)
    | Travel_lookups { destinations } ->
        List.nth destinations (Runtime.Rng.int rng (List.length destinations))
  in
  List.init n body

(* Keyed bodies for a sharded cluster: each comes with the shard its
   routing key maps to. Single-key kinds just tag [bodies]' output; bank
   transfers are intra-shard by default — the destination account is drawn
   from the source account's shard — with [cross_ratio] of them instead
   drawing the destination from a foreign shard (a cross-shard transfer for
   clusters built with [~cross:true]). The interleave is deterministic, not
   coin flips: request [i] is cross iff [floor ((i+1) * r) > floor (i * r)],
   so the ratio is exact for any [n] and [cross_ratio = 0.] leaves both the
   bodies and the rng draw sequence byte-identical to earlier revisions. A
   shard holding a single account degenerates to a self-transfer rather
   than escaping the shard, and a single-shard map degenerates cross draws
   back to intra-shard ones. Read-heavy bodies are single-key (one account
   per audit or update), so reads stay intra-shard for free. *)
let sharded_bodies ~map ?(cross_ratio = 0.) ~seed ~n kind =
  match kind with
  | Bank_updates _ | Travel_bookings _ | Read_heavy _ | Travel_lookups _ ->
      List.map
        (fun body -> (Etx.Shard_map.shard_of_body map body, body))
        (bodies ~seed ~n kind)
  | Bank_transfers { accounts; max_amount } ->
      let shard_of_acct a = Etx.Shard_map.shard_of map (Printf.sprintf "acct%d" a) in
      let by_shard = Hashtbl.create 8 in
      for a = accounts - 1 downto 0 do
        let s = shard_of_acct a in
        Hashtbl.replace by_shard s
          (a :: Option.value ~default:[] (Hashtbl.find_opt by_shard s))
      done;
      let all_accts = List.init accounts (fun a -> a) in
      let rng = Runtime.Rng.create ~seed in
      List.init n (fun i ->
          let cross =
            cross_ratio > 0.
            && int_of_float (float_of_int (i + 1) *. cross_ratio)
               > int_of_float (float_of_int i *. cross_ratio)
          in
          let from_acct = Runtime.Rng.int rng accounts in
          let s = shard_of_acct from_acct in
          let intra_mates () =
            List.filter (( <> ) from_acct) (Hashtbl.find by_shard s)
          in
          let mates =
            if cross then
              match
                List.filter (fun a -> shard_of_acct a <> s) all_accts
              with
              | [] -> intra_mates () (* single-shard map: nowhere to cross *)
              | foreign -> foreign
            else intra_mates ()
          in
          let to_acct =
            match mates with
            | [] -> from_acct
            | _ -> List.nth mates (Runtime.Rng.int rng (List.length mates))
          in
          ( s,
            Printf.sprintf "acct%d:acct%d:%d" from_acct to_acct
              (1 + Runtime.Rng.int rng max_amount) ))

let business_of = function
  | Bank_updates _ -> Bank.update
  | Bank_transfers _ -> Bank.transfer
  | Travel_bookings _ -> Travel.book
  | Read_heavy _ -> Bank.mixed
  | Travel_lookups _ -> Travel.availability

let seed_data_of = function
  | Bank_updates { accounts; _ }
  | Bank_transfers { accounts; _ }
  | Read_heavy { accounts; _ } ->
      Bank.seed_accounts
        (List.init accounts (fun i -> (Printf.sprintf "acct%d" i, 10_000)))
  | Travel_bookings { destinations; _ } | Travel_lookups { destinations } ->
      Travel.seed_inventory ~destinations ~seats:10_000 ~rooms:10_000
        ~cars:10_000
