type kind =
  | Bank_updates of { accounts : int; max_delta : int }
  | Bank_transfers of { accounts : int; max_amount : int }
  | Travel_bookings of { destinations : string list; max_party : int }

let bodies ~seed ~n kind =
  let rng = Runtime.Rng.create ~seed in
  let body () =
    match kind with
    | Bank_updates { accounts; max_delta } ->
        Printf.sprintf "acct%d:%d"
          (Runtime.Rng.int rng accounts)
          (1 + Runtime.Rng.int rng max_delta)
    | Bank_transfers { accounts; max_amount } ->
        let from_acct = Runtime.Rng.int rng accounts in
        let to_acct = (from_acct + 1 + Runtime.Rng.int rng (max 1 (accounts - 1))) mod accounts in
        Printf.sprintf "acct%d:acct%d:%d" from_acct to_acct
          (1 + Runtime.Rng.int rng max_amount)
    | Travel_bookings { destinations; max_party } ->
        let dest =
          List.nth destinations (Runtime.Rng.int rng (List.length destinations))
        in
        Printf.sprintf "%s:%d" dest (1 + Runtime.Rng.int rng max_party)
  in
  List.init n (fun _ -> body ())

let business_of = function
  | Bank_updates _ -> Bank.update
  | Bank_transfers _ -> Bank.transfer
  | Travel_bookings _ -> Travel.book

let seed_data_of = function
  | Bank_updates { accounts; _ } | Bank_transfers { accounts; _ } ->
      Bank.seed_accounts
        (List.init accounts (fun i -> (Printf.sprintf "acct%d" i, 10_000)))
  | Travel_bookings { destinations; _ } ->
      Travel.seed_inventory ~destinations ~seats:10_000 ~rooms:10_000
        ~cars:10_000
