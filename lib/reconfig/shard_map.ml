(* Epoch-versioned key → group placement (DESIGN.md §16).

   The map is pure data: the same value is held by every client, server and
   register, and placement is a deterministic function of the key alone.
   Epoch 0 is exactly the PR 4 map — [slots] top-level shards placed by
   FNV-1a mod (Hash) or by sorted boundary strings (Range) — and every
   later epoch is a *refinement*: a [split] replaces one group's leaves
   with a two-way subtree, so keys that do not move keep their placement
   bit-for-bit. That refinement discipline is what makes [diff] a pure
   structural walk and lets a no-reconfiguration run stay byte-identical
   to the unversioned map. *)

type policy = Hash | Range of string list

(* One slot's assignment. [Leaf g]: the whole slot region belongs to group
   [g]. [Hsplit (l, r)]: consume one bit of the key's hash quotient (the
   bits *above* the slot index, so sibling decisions are independent of
   the slot placement); 0 → [l], 1 → [r]. [Rsplit (b, l, r)]: keys < [b]
   → [l], keys >= [b] → [r]. *)
type node =
  | Leaf of int
  | Hsplit of node * node
  | Rsplit of string * node * node

type t = { epoch : int; policy : policy; assignment : node array }

(* FNV-1a over the key bytes, folded into OCaml's 63-bit native int (the
   64-bit offset basis with its top bit dropped; multiplication wraps mod
   2^63, which is just as mixing). [Hashtbl.hash] would work today, but its
   value is not pinned by the language; a hand-rolled hash keeps shard
   placement stable across compiler versions, which the deterministic
   replay story depends on. *)
let fnv1a key =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let create ?(policy = Hash) ~shards () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  (match policy with
  | Hash -> ()
  | Range bounds ->
      if List.length bounds <> shards - 1 then
        invalid_arg
          "Shard_map.create: a Range policy needs exactly shards-1 boundaries";
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | [ _ ] | [] -> true
      in
      if not (sorted bounds) then
        invalid_arg "Shard_map.create: Range boundaries must be strictly sorted");
  { epoch = 0; policy; assignment = Array.init shards (fun i -> Leaf i) }

let epoch t = t.epoch

let slots t = Array.length t.assignment

let slot_of t key =
  match t.policy with
  | Hash -> if slots t = 1 then 0 else fnv1a key mod slots t
  | Range bounds ->
      let rec find i = function
        | b :: rest -> if key < b then i else find (i + 1) rest
        | [] -> i
      in
      find 0 bounds

let shard_of t key =
  match t.assignment.(slot_of t key) with
  | Leaf g -> g (* epoch-0 fast path: no hash quotient needed *)
  | node ->
      let rec walk q = function
        | Leaf g -> g
        | Hsplit (l, r) -> walk (q lsr 1) (if q land 1 = 0 then l else r)
        | Rsplit (b, l, r) -> walk q (if key < b then l else r)
      in
      walk (fnv1a key / slots t) node

let rec leaf_groups acc = function
  | Leaf g -> if List.mem g acc then acc else g :: acc
  | Hsplit (l, r) | Rsplit (_, l, r) -> leaf_groups (leaf_groups acc l) r

let groups t =
  Array.fold_left leaf_groups [] t.assignment |> List.sort_uniq compare

let shards t = 1 + List.fold_left max 0 (groups t)

let shards_of t keys =
  List.map (shard_of t) keys |> List.sort_uniq compare

let split ?boundary t ~group ~target () =
  if target = group then invalid_arg "Shard_map.split: target = source group";
  if target < 0 || target > shards t then
    invalid_arg "Shard_map.split: target group would leave a gap";
  if not (List.mem group (groups t)) then
    invalid_arg "Shard_map.split: source group owns nothing";
  let rec refine = function
    | Leaf g when g = group -> (
        match boundary with
        | None -> Hsplit (Leaf g, Leaf target)
        | Some b -> Rsplit (b, Leaf g, Leaf target))
    | Leaf g -> Leaf g
    | Hsplit (l, r) -> Hsplit (refine l, refine r)
    | Rsplit (b, l, r) -> Rsplit (b, refine l, refine r)
  in
  {
    t with
    epoch = t.epoch + 1;
    assignment = Array.map refine t.assignment;
  }

(* ---------------- Diff between consecutive epochs ---------------- *)

type move = { src : int; dst : int }

let rec node_moves acc older newer =
  if older = newer then acc
  else
    match (older, newer) with
    | Leaf g, n ->
        (* the newer node refines this leaf: every foreign leaf under it
           receives keys from [g] *)
        List.fold_left
          (fun acc g' -> if g' = g || List.mem { src = g; dst = g' } acc then acc
                         else { src = g; dst = g' } :: acc)
          acc (leaf_groups [] n)
    | Hsplit (a, b), Hsplit (c, d) -> node_moves (node_moves acc a c) b d
    | Rsplit (x, a, b), Rsplit (y, c, d) when x = y ->
        node_moves (node_moves acc a c) b d
    | _ ->
        invalid_arg "Shard_map.diff: maps are not related by refinement"

let diff older newer =
  if newer.epoch <> older.epoch + 1 then
    invalid_arg "Shard_map.diff: epochs are not consecutive";
  if older.policy <> newer.policy || slots older <> slots newer then
    invalid_arg "Shard_map.diff: maps are not related by refinement";
  let acc = ref [] in
  Array.iteri
    (fun i o -> acc := node_moves !acc o newer.assignment.(i))
    older.assignment;
  List.sort_uniq compare !acc

let moved older newer key =
  let a = shard_of older key and b = shard_of newer key in
  if a = b then None else Some (a, b)

(* ---------------- Boundary derivation from observed keys ----------------

   Hand-sorting boundary strings is error-prone; a live system knows its
   key population. Both helpers work on the *distinct* observed keys, so a
   skewed access distribution does not skew placement of the key space. *)

let distinct_sorted keys = List.sort_uniq String.compare keys

let suggest_boundary ~keys =
  match distinct_sorted keys with
  | [] | [ _ ] ->
      invalid_arg
        "Shard_map.suggest_boundary: need at least 2 distinct keys to split"
  | ks ->
      (* the median key: everything >= it (the upper half) moves, so both
         sides of the split are non-empty by construction *)
      List.nth ks (List.length ks / 2)

let range_of_keys ~shards ~keys () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  let ks = distinct_sorted keys in
  let n = List.length ks in
  if n < shards then
    invalid_arg
      "Shard_map.range_of_keys: need at least one distinct key per shard";
  let bounds =
    List.init (shards - 1) (fun i -> List.nth ks ((i + 1) * n / shards))
  in
  create ~policy:(Range bounds) ~shards ()
