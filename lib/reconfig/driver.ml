(* The migration driver: seal → copy → flip → drain (DESIGN.md §16).

   Runs as a fiber inside a config-group application server — the one that
   received [Mig_start], or any config-group server whose monitor suspects
   the original owner. Crash tolerance is by {e re-drivability}, not
   exclusive ownership: every step is idempotent (seals are monotone,
   pulls are reads, pushes are watermark-guarded imports, installs are
   max-j seeds) and the two registers make the end points write-once — the
   decided [mig:e<n>] intent fixes what the work {e is}, and the decided
   [cfg:e<n>] flip fixes that it {e happened}. Two drivers racing over the
   same intent redo each other's steps harmlessly.

   Why no committed record is lost or duplicated (the two hazards):

   - {b Lost update}: a transaction could commit a moving key at the
     source after the copy read it. Closed by the durable database-level
     seal: once sealed, a source database votes No on any transaction
     writing a disowned key, and the copy of one source database is
     complete only when a single pull reply simultaneously shows the feed
     [Up_to_date], zero prepared-but-undecided transactions on moving keys
     and the epoch-e seal installed — so every commit that ever touched a
     moving key is below the watermark the destination acked.

   - {b Duplicate commit}: a try could commit at the source, its result
     message be lost, and the client retry the {e same} j at the
     destination after the flip — re-executing a committed transaction.
     Closed by decision transfer: before the flip, the driver collects
     every terminated (rid, j, result, outcome) the source group knows —
     from live servers' request states {e and} from their decided regD
     registers, which also cover tries whose serving server crashed (CT
     consensus decides at every correct process) — and installs them into
     the destination servers' request states, so a cross-flip
     retransmission replays the recorded result instead of re-executing. *)

open Runtime
module Rt = Etx_runtime
open Dnet

(* Everything the driver needs from its hosting application server,
   capability-style: the reconfiguration layer cannot depend on the core
   server, and the same record serves the first driver and any takeover. *)
type caps = {
  self : Types.proc_id;
  ch : Rchannel.t;
  propose : key:string -> Types.payload -> Types.payload;
      (** config-group consensus: blocks until the register is decided *)
  peek : key:string -> Types.payload option;
  suspected : Types.proc_id -> bool;
  servers_of : int -> Types.proc_id list;
  dbs_of : int -> (Types.proc_id * string) list;
      (** a group's databases as (process, durable name) — the name is the
          destination's per-source import-watermark namespace *)
  poll : float;
  sink : Rt.obs_sink option;
}

let count caps name n =
  if n > 0 then
    match caps.sink with None -> () | Some s -> s.Rt.obs_count name n

let observe caps name v =
  match caps.sink with None -> () | Some s -> s.Rt.obs_observe name v

(* Broadcast [request] to [peers] and await a matching reply from each,
   re-sending every poll period (handlers are idempotent). Suspected peers
   are given up on by default — crashed application servers stay down in
   this model. [forever:true] instead keeps re-sending through the
   suspicion: databases {e do} recover (with their durable state), and the
   safety of the seal and copy phases needs every database's ack, not
   every currently-up database's. [matches] inspects a reply and names the
   peer it settles (side effects welcome — the decision collector
   accumulates through it). *)
let collect_acks ?(forever = false) caps ~cls ~peers ~request ~matches =
  let pending = ref (List.sort_uniq compare peers) in
  let settle m =
    match matches m with
    | Some p -> pending := List.filter (fun q -> q <> p) !pending
    | None -> ()
  in
  let rec epoch () =
    if not forever then
      pending := List.filter (fun p -> not (caps.suspected p)) !pending;
    if !pending <> [] then begin
      List.iter (fun p -> Rchannel.send caps.ch p request) !pending;
      let deadline = Rt.now () +. caps.poll in
      let rec drain () =
        if !pending <> [] && Rt.now () < deadline then begin
          (match
             Rt.recv ~timeout:(deadline -. Rt.now ()) ~cls
               ~filter:(fun m -> matches m <> None)
               ()
           with
          | Some m -> settle m
          | None -> ());
          drain ()
        end
      in
      drain ();
      epoch ()
    end
  in
  epoch ()

let announce caps ~target =
  let everyone =
    List.init (Shard_map.shards target) Fun.id
    |> List.concat_map caps.servers_of
    |> List.sort_uniq compare
  in
  Rchannel.broadcast caps.ch everyone (Rmsg.Cfg_announce { map = target })

(* Copy one source database's moving keys to every destination group it
   feeds, through the pull/push protocol, until a single pull reply proves
   the source drained: feed up to date, no in-doubt moving transaction,
   epoch-e seal installed. Resumable from any crash point — the
   destination's durable per-source watermark restarts the loop where the
   last acked push left it. *)
let copy_db caps ~from ~target ~e ~g ~db ~db_name ~dsts =
  let t0 = Rt.now () in
  let moving_to d kvs =
    List.filter
      (fun (k, _) ->
        Shard_map.shard_of from k = g && Shard_map.shard_of target k = d)
      kvs
  in
  let push_all ~snapshot ~entries ~upto =
    List.iter
      (fun d ->
        let snapshot =
          match Option.map (moving_to d) snapshot with
          | Some [] -> None
          | s -> s
        in
        let entries =
          List.filter_map
            (fun (l, ws) ->
              match moving_to d ws with [] -> None | ws -> Some (l, ws))
            entries
        in
        if snapshot <> None || entries <> [] then begin
          let moved =
            List.length (Option.value ~default:[] snapshot)
            + List.fold_left (fun n (_, ws) -> n + List.length ws) 0 entries
          in
          let dest_dbs = List.map fst (caps.dbs_of d) in
          collect_acks ~forever:true caps ~cls:Dbms.Msg.cls_mig_reply
            ~peers:dest_dbs
            ~request:
              (Dbms.Msg.Mig_push_req { src = db_name; snapshot; entries; upto })
            ~matches:(fun m ->
              match m.Types.payload with
              | Dbms.Msg.Mig_push_ack { src; upto = u }
                when src = db_name && u >= upto ->
                  Some m.Types.src
              | _ -> None);
          count caps "migrate.keys_moved" moved
        end)
      dsts
  in
  let pull wm =
    let resp = ref None in
    collect_acks ~forever:true caps ~cls:Dbms.Msg.cls_mig_reply
      ~peers:[ db ]
      ~request:(Dbms.Msg.Mig_pull_req { from_lsn = wm })
      ~matches:(fun m ->
        match m.Types.payload with
        | Dbms.Msg.Mig_pull_resp { from_lsn; feed; in_doubt_moving; sealed; _ }
          when from_lsn = wm ->
            resp := Some (feed, in_doubt_moving, sealed);
            Some m.Types.src
        | _ -> None);
    !resp
  in
  let rec loop wm =
    match pull wm with
    | None -> assert false (* [forever] pulls always answer *)
    | Some (Dbms.Rm.Up_to_date, 0, sealed) when sealed >= e ->
        observe caps "migrate.drain_ms" (Rt.now () -. t0)
    | Some (Dbms.Rm.Up_to_date, _, _) ->
        (* sealed but still draining in-doubt moving transactions (each
           will commit into the feed or abort), or the seal ack is still
           in flight: re-poll *)
        Rt.sleep caps.poll;
        loop wm
    | Some (Dbms.Rm.Entries entries, _, _) ->
        let upto = List.fold_left (fun a (l, _) -> max a l) wm entries in
        push_all ~snapshot:None ~entries ~upto;
        loop upto
    | Some (Dbms.Rm.Snapshot { state; as_of }, _, _) ->
        push_all ~snapshot:(Some state) ~entries:[] ~upto:as_of;
        loop as_of
  in
  (* Start below LSN 0 so the first pull always answers with the full
     committed-state snapshot: seed data is committed state that predates
     the redo log, so a feed walked from LSN 0 would silently skip it and
     the copy of a quiet shard would move nothing. Re-drives re-pull the
     snapshot too — the destination's watermark guard drops a stale one. *)
  loop (-1)

(* Decision transfer for one source group: union the terminated tries
   every live source server knows of, then install them at every
   destination group before the flip. *)
let transfer_decisions caps ~e ~g ~dsts =
  let items = ref [] in
  collect_acks caps ~cls:Rmsg.cls_cfg_reply ~peers:(caps.servers_of g)
    ~request:(Rmsg.Mig_decisions_req { epoch = e })
    ~matches:(fun m ->
      match m.Types.payload with
      | Rmsg.Mig_decisions { epoch; items = more } when epoch = e ->
          items := more @ !items;
          Some m.Types.src
      | _ -> None);
  let items = List.sort_uniq compare !items in
  List.iter
    (fun d ->
      collect_acks caps ~cls:Rmsg.cls_cfg_reply ~peers:(caps.servers_of d)
        ~request:(Rmsg.Mig_install { epoch = e; items })
        ~matches:(fun m ->
          match m.Types.payload with
          | Rmsg.Mig_installed { epoch } when epoch = e -> Some m.Types.src
          | _ -> None))
    dsts

let run caps ~from ~target =
  let e = Shard_map.epoch target in
  match caps.peek ~key:(Rmsg.cfg_key ~epoch:e) with
  | Some _ ->
      (* already flipped (we are a late takeover): just re-announce *)
      announce caps ~target
  | None ->
      (* 1. decide the intent; the decided value wins — a takeover driver
         recomputes exactly the first driver's work from it *)
      let target =
        match
          caps.propose
            ~key:(Rmsg.mig_key ~epoch:e)
            (Rmsg.Mig_intent { owner = caps.self; target })
        with
        | Rmsg.Mig_intent { target; _ } -> target
        | _ -> target
      in
      let moves = Shard_map.diff from target in
      let srcs =
        List.sort_uniq compare (List.map (fun m -> m.Shard_map.src) moves)
      in
      let dsts_of g =
        List.filter_map
          (fun m -> if m.Shard_map.src = g then Some m.Shard_map.dst else None)
          moves
        |> List.sort_uniq compare
      in
      (* 2. seal the source groups, servers first (stop admitting new
         tries on moving keys), then databases (durably refuse commits of
         disowned keys — the actual safety barrier) *)
      List.iter
        (fun g ->
          collect_acks caps ~cls:Rmsg.cls_cfg_reply ~peers:(caps.servers_of g)
            ~request:(Rmsg.Mig_seal { target })
            ~matches:(fun m ->
              match m.Types.payload with
              | Rmsg.Mig_sealed { epoch; from = g' } when epoch = e && g' = g
                ->
                  Some m.Types.src
              | _ -> None);
          let owns k = Shard_map.shard_of target k = g in
          List.iter
            (fun (db, _) ->
              collect_acks ~forever:true caps ~cls:Dbms.Msg.cls_mig_reply
                ~peers:[ db ]
                ~request:(Dbms.Msg.Mig_seal_req { epoch = e; owns })
                ~matches:(fun m ->
                  match m.Types.payload with
                  | Dbms.Msg.Mig_seal_ack { epoch } when epoch = e ->
                      Some m.Types.src
                  | _ -> None))
            (caps.dbs_of g))
        srcs;
      (* 3. copy every source database's moving keys until drained *)
      List.iter
        (fun g ->
          List.iter
            (fun (db, db_name) ->
              copy_db caps ~from ~target ~e ~g ~db ~db_name ~dsts:(dsts_of g))
            (caps.dbs_of g))
        srcs;
      (* 4. transfer terminated-try decisions (duplicate-commit guard) *)
      List.iter (fun g -> transfer_decisions caps ~e ~g ~dsts:(dsts_of g)) srcs;
      (* 5. flip: the write-once register makes epoch e authoritative *)
      ignore (caps.propose ~key:(Rmsg.cfg_key ~epoch:e) (Rmsg.Cfg_value target));
      (* 6. drain: tell every server; clients follow through bounces *)
      announce caps ~target
