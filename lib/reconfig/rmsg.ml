(* Reconfiguration wire protocol and register naming (PROTOCOL.md
   "Reconfiguration").

   Two register sequences, both decided by the config group's (group 0's)
   consensus, mirror how every other protocol decision is learned:

   - [cfg:e<n>]  — the authoritative map of epoch n (value: [Cfg_value]).
     Write-once: the flip from epoch n-1 to n is the consensus decision
     of this instance, and any server that reads it learns the new map
     the same way it learns any decision.
   - [mig:e<n>]  — the migration intent toward epoch n (value:
     [Mig_intent]). Decided *before* any data moves, so a takeover driver
     recomputes exactly the same work from the register alone: the whole
     seal → copy → flip pipeline is a pure function of the decided intent
     plus idempotent per-step acknowledgements. *)

open Runtime

let cfg_key ~epoch = Printf.sprintf "cfg:e%d" epoch
let mig_key ~epoch = Printf.sprintf "mig:e%d" epoch

(* A (rid, try, result, outcome) tuple: one terminated try of the source
   group, installed at the destination before the flip so a client
   retransmission of an already-committed try replays its result there
   instead of re-executing it (the cross-flip duplicate-commit hazard). *)
type decision_item = int * int * string option * Dbms.Rm.outcome

type Types.payload +=
  | Cfg_value of Shard_map.t
      (** register value of [cfg:e<n>]: the authoritative epoch-n map *)
  | Mig_intent of { owner : Types.proc_id; target : Shard_map.t }
      (** register value of [mig:e<n>]: a migration toward [target] is in
          flight, first driven by [owner]; any config-group server that
          suspects [owner] re-drives it to completion *)
  | Cfg_query of { have : int }
      (** client/operator → any server: please send a map newer than
          epoch [have] *)
  | Cfg_current of { map : Shard_map.t }
      (** reply to [Cfg_query]; also the operator's completion signal *)
  | Cfg_announce of { map : Shard_map.t }
      (** driver → every server post-flip: adopt if newer (idempotent;
          the register sequence stays authoritative) *)
  | Mig_start of { target : Shard_map.t }
      (** operator → a config-group server: decide the intent and drive
          the migration *)
  | Mig_seal of { target : Shard_map.t }
      (** driver → source-group servers: stop admitting new tries for
          keys that [target] takes away (bounce them with the current
          epoch); replays of already-terminated tries still answer *)
  | Mig_sealed of { epoch : int; from : int }
      (** seal acknowledgement; [epoch] = target epoch, [from] = group *)
  | Mig_decisions_req of { epoch : int }
      (** driver → source-group servers: enumerate every terminated
          (rid, j) you know of — from your rid states and from the
          decided regD registers (which cover tries terminated by servers
          that have since crashed) *)
  | Mig_decisions of { epoch : int; items : decision_item list }
  | Mig_install of { epoch : int; items : decision_item list }
      (** driver → destination-group servers: pre-seed these terminated
          tries so cross-flip retransmissions replay instead of
          re-executing *)
  | Mig_installed of { epoch : int }

(* Demux classes. Registered at module load, like every other class. *)

let cls_cfg =
  Etx_runtime.register_class ~name:"etx-cfg" (function
    | Cfg_query _ | Cfg_announce _ | Mig_start _ | Mig_seal _
    | Mig_decisions_req _ | Mig_install _ ->
        true
    | _ -> false)

let cls_cfg_reply =
  Etx_runtime.register_class ~name:"etx-cfg-reply" (function
    | Cfg_current _ | Mig_sealed _ | Mig_decisions _ | Mig_installed _ -> true
    | _ -> false)
