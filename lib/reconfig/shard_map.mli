(** Epoch-versioned deterministic key → replica-group placement.

    A shard map is pure data shared by every client, server and register:
    the same key always lands on the same group, on any process, in any
    run. Epoch 0 reproduces the unversioned map bit-for-bit — [slots]
    top-level shards placed by FNV-1a modulo (Hash policy) or by
    strictly-sorted boundary strings (Range policy). Every later epoch is
    a {e refinement} produced by {!split}: one group's key region is
    divided between it and a target group, and nothing else moves.

    The authoritative current map of a running cluster lives in the
    [cfg:e<n>] write-once register sequence (see {!Rmsg} and
    DESIGN.md §16); the value stored there is exactly a [t]. *)

type policy = Hash | Range of string list

type node =
  | Leaf of int  (** the whole region belongs to this group *)
  | Hsplit of node * node
      (** consume one bit of the key's hash quotient; 0 → left, 1 → right *)
  | Rsplit of string * node * node
      (** keys below the boundary → left, at or above → right *)

type t = { epoch : int; policy : policy; assignment : node array }
(** [assignment] has one root node per top-level slot. Treat as
    read-only; build values with {!create} / {!split}. *)

val create : ?policy:policy -> shards:int -> unit -> t
(** Epoch-0 map: slot [i] is [Leaf i]. Raises [Invalid_argument] if
    [shards < 1], or if a [Range] policy does not carry exactly
    [shards - 1] strictly-sorted boundaries. *)

val epoch : t -> int

val slots : t -> int
(** Number of top-level slots (the epoch-0 shard count). Constant across
    splits. *)

val shards : t -> int
(** Number of replica groups the map can address: 1 + the highest group
    index appearing in any leaf. Grows as splits target fresh groups. *)

val groups : t -> int list
(** The group indices that own at least one region, sorted. *)

val shard_of : t -> string -> int
(** Group owning a routing key; in [0, shards). At epoch 0 this is
    exactly the unversioned placement (FNV-1a mod slots / boundary scan). *)

val shards_of : t -> string list -> int list
(** Participant set of a key set: the groups owning the keys, sorted and
    deduplicated. A singleton means the keys are co-located and the
    request can ride the intra-shard path. *)

val split : ?boundary:string -> t -> group:int -> target:int -> unit -> t
(** [split t ~group ~target ()] is epoch [t.epoch + 1] with every leaf of
    [group] divided between [group] and [target]: by one further hash bit
    (default), or at [boundary] (keys [>= boundary] move). [target] may
    be a fresh group ([shards t]) or an existing one; raises
    [Invalid_argument] if it equals [group], would leave an index gap, or
    if [group] owns nothing. *)

type move = { src : int; dst : int }

val diff : t -> t -> move list
(** [diff older newer] — the ownership transfers between two {e
    consecutive} epochs, sorted and deduplicated. Pure and total on maps
    related by refinement; raises [Invalid_argument] otherwise. The keys
    of a move are characterised by {!moved}. *)

val moved : t -> t -> string -> (int * int) option
(** [Some (src, dst)] iff the key's owner differs between the two maps. *)

val suggest_boundary : keys:string list -> string
(** The median of the distinct observed keys — splitting at it moves the
    upper half of the key {e space} (not the access load) regardless of
    skew. Raises [Invalid_argument] on fewer than 2 distinct keys. *)

val range_of_keys : shards:int -> keys:string list -> unit -> t
(** An epoch-0 [Range] map whose boundaries are the [shards]-quantiles of
    the distinct observed keys, so each shard starts with an equal share
    of the key population — no hand-sorted boundary strings. Raises
    [Invalid_argument] if fewer than [shards] distinct keys were
    observed. *)

(**/**)

val fnv1a : string -> int
(** The placement hash (exposed for tests and for documentation of the
    exact placement function; not part of the stable API). *)
