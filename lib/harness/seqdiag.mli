(** Render a trace as a textual message-sequence diagram — the tool that
    regenerates the paper's Figure 1/7 pictures from an actual run.

    One line per protocol event, chronologically:

    {v
    [  302.1] client  --Request(r1,j=2)-->  a2
    [  486.0] a2      --Prepare(r1.2)-->    db1
    [  505.2] a1      CRASH
    v}

    Reliable-channel frames are unwrapped, channel acks / heartbeats /
    local wake-ups are elided, and consensus traffic can be toggled. *)

open Dsim
open Runtime

val payload_label : Types.payload -> string option
(** Human label for a protocol payload ([None] = overhead, elide). *)

val render :
  ?include_consensus:bool ->
  ?max_lines:int ->
  names:(Types.proc_id -> string) ->
  Trace.t ->
  string
(** [names] maps pids to lifeline names (e.g. {!Dsim.Engine.name_of}).
    Defaults: consensus traffic elided, at most 200 lines (a trailing
    marker reports elision). *)

val of_engine : ?include_consensus:bool -> ?max_lines:int -> Engine.t -> string
(** Convenience wrapper using the engine's process names and trace. *)

val of_obs : ?max_lines:int -> Obs.Registry.t -> string
(** Timeline diagram built from an observability registry instead of a
    simulator trace: span opens ([+name]) and closes ([-name]) plus
    registered events (notes, CRASH/RECOVER), merged chronologically.
    Works identically on the live backend, where no {!Dsim.Trace} exists. *)
