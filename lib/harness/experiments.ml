let bank_seed = Workload.Bank.seed_accounts [ ("acct0", 1_000_000) ]

let update_body = "acct0:10"

let latencies records =
  List.map
    (fun (r : Etx.Client.record) -> r.delivered_at -. r.issued_at)
    records

(* ------------------------------------------------------------------ *)
(* Trial records

   Every sweep below is a list of self-contained trials mapped over a
   domain pool: each trial owns its private engine, RNG, trace and
   breakdown, built inside [run], so trials share no mutable state and the
   results are bit-identical whatever the domain count. *)

type 'a trial = { label : string; seed : int; run : seed:int -> 'a }

let default_domains = ref 1

let run_trials ?domains trials =
  let domains =
    match domains with Some d -> d | None -> !default_domains
  in
  Dsim.Pool.map ~domains (fun tr -> tr.run ~seed:tr.seed) trials

(* ------------------------------------------------------------------ *)
(* Figure 8 *)

type fig8_protocol = {
  protocol : string;
  components : (string * float) list;
  other : float;
  total : float;
  overhead_pct : float;
  ci90_ratio : float;
}

type fig8 = { transactions : int; protocols : fig8_protocol list }

let fig8_component_order =
  [ "start"; "end"; "commit"; "prepare"; "SQL"; "log-start"; "log-outcome" ]

let summarize ~protocol ~bd records =
  let samples = latencies records in
  let summary = Stats.Summary.of_samples samples in
  let components =
    List.map (fun c -> (c, Stats.Breakdown.row bd c)) fig8_component_order
  in
  let total = summary.Stats.Summary.mean in
  {
    protocol;
    components;
    other = Stats.Breakdown.other bd ~total;
    total;
    overhead_pct = 0.;
    ci90_ratio = Stats.Summary.ci90_width_ratio summary;
  }

let identical_updates ~transactions ~bd ~issue =
  for _ = 1 to transactions do
    ignore (issue update_body);
    Stats.Breakdown.tick bd
  done

let run_ar ~transactions ~seed =
  let bd = Stats.Breakdown.create () in
  let _e, d =
    Simrun.deployment ~seed ~breakdown:bd ~seed_data:bank_seed
      ~business:Workload.Bank.update
      ~script:(fun ~issue -> identical_updates ~transactions ~bd ~issue)
      ()
  in
  if not (Etx.Deployment.run_to_quiescence d) then
    failwith "figure8: AR run did not quiesce";
  (match Etx.Spec.check_all d with
  | [] -> ()
  | vs -> failwith ("figure8: AR violations: " ^ String.concat "; " vs));
  summarize ~protocol:"AR (e-Transactions)" ~bd (Etx.Client.records d.client)

let run_baseline ~transactions ~seed =
  let bd = Stats.Breakdown.create () in
  let e, b =
    Simrun.baseline ~seed ~breakdown:bd ~tracing:false ~seed_data:bank_seed
      ~business:Workload.Bank.update
      ~script:(fun ~issue -> identical_updates ~transactions ~bd ~issue)
      ()
  in
  let done_ () = Etx.Client.script_done b.client in
  if not (Dsim.Engine.run_until ~deadline:600_000. e done_) then
    failwith "figure8: baseline run did not finish";
  summarize ~protocol:"baseline (unreliable)" ~bd (Etx.Client.records b.client)

let run_tpc ~transactions ~seed =
  let bd = Stats.Breakdown.create () in
  let e, t =
    Simrun.tpc ~seed ~breakdown:bd ~tracing:false ~seed_data:bank_seed
      ~business:Workload.Bank.update
      ~script:(fun ~issue -> identical_updates ~transactions ~bd ~issue)
      ()
  in
  let done_ () = Etx.Client.script_done t.client in
  if not (Dsim.Engine.run_until ~deadline:600_000. e done_) then
    failwith "figure8: 2PC run did not finish";
  summarize ~protocol:"2PC (at-most-once)" ~bd (Etx.Client.records t.client)

let run_pb ~transactions ~seed =
  let bd = Stats.Breakdown.create () in
  let e, p =
    Simrun.pbackup ~seed ~breakdown:bd ~tracing:false ~seed_data:bank_seed
      ~business:Workload.Bank.update
      ~script:(fun ~issue -> identical_updates ~transactions ~bd ~issue)
      ()
  in
  let done_ () = Etx.Client.script_done p.client in
  if not (Dsim.Engine.run_until ~deadline:600_000. e done_) then
    failwith "figure8: primary-backup run did not finish";
  summarize ~protocol:"primary-backup" ~bd (Etx.Client.records p.client)

let figure8 ?(transactions = 40) ?(seed = 42) ?domains () =
  (* the AR trial keeps tracing on: [Spec.check_all] replays trace notes *)
  let trial label run = { label; seed; run } in
  let results =
    run_trials ?domains
      [
        trial "baseline" (fun ~seed -> run_baseline ~transactions ~seed);
        trial "ar" (fun ~seed -> run_ar ~transactions ~seed);
        trial "tpc" (fun ~seed -> run_tpc ~transactions ~seed);
        trial "pb" (fun ~seed -> run_pb ~transactions ~seed);
      ]
  in
  let baseline, ar, tpc, pb =
    match results with
    | [ baseline; ar; tpc; pb ] -> (baseline, ar, tpc, pb)
    | _ -> assert false
  in
  let with_overhead p =
    {
      p with
      overhead_pct = (p.total -. baseline.total) /. baseline.total *. 100.;
    }
  in
  {
    transactions;
    protocols =
      [ baseline; with_overhead ar; with_overhead tpc; with_overhead pb ];
  }

let render_figure8 f =
  let headers = "" :: List.map (fun p -> p.protocol) f.protocols in
  let component_row name =
    name
    :: List.map
         (fun p -> Stats.Table.fmt_ms (List.assoc name p.components))
         f.protocols
  in
  let rows =
    List.map component_row fig8_component_order
    @ [
        "other" :: List.map (fun p -> Stats.Table.fmt_ms p.other) f.protocols;
        "total" :: List.map (fun p -> Stats.Table.fmt_ms p.total) f.protocols;
        "cost of reliability"
        :: List.map (fun p -> Stats.Table.fmt_pct p.overhead_pct) f.protocols;
        "ci90/mean"
        :: List.map
             (fun p -> Printf.sprintf "%.1f%%" (p.ci90_ratio *. 100.))
             f.protocols;
      ]
  in
  Printf.sprintf
    "Figure 8 — latency components over %d identical transactions (ms)\n%s"
    f.transactions
    (Stats.Table.render ~headers ~rows)

(* ------------------------------------------------------------------ *)
(* Figure 7 *)

type fig7_row = {
  proto : string;
  app_messages : int;
  all_messages : int;
  steps : int;
  forced_ios : int;
}

let one_request_script ~issue = ignore (issue update_body)

let figure7 ?(seed = 42) ?domains () =
  (* every trial needs its trace: the whole figure is message counting *)
  let measure proto engine ~forced_ios =
    let trace = Dsim.Engine.trace engine in
    {
      proto;
      app_messages = Msgclass.application_messages trace;
      all_messages = Msgclass.protocol_messages trace;
      steps = Msgclass.protocol_steps trace;
      forced_ios;
    }
  in
  let trial label run = { label; seed; run } in
  run_trials ?domains
    [
      trial "baseline" (fun ~seed ->
          let e, b =
            Simrun.baseline ~seed ~seed_data:bank_seed
              ~business:Workload.Bank.update ~script:one_request_script ()
          in
          ignore
            (Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
                 Etx.Client.script_done b.client));
          measure "baseline" e ~forced_ios:0);
      trial "2PC" (fun ~seed ->
          let e, t =
            Simrun.tpc ~seed ~seed_data:bank_seed
              ~business:Workload.Bank.update ~script:one_request_script ()
          in
          ignore
            (Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
                 Etx.Client.script_done t.client));
          measure "2PC" e
            ~forced_ios:(Dstore.Disk.forced_writes t.coordinator_disk));
      trial "primary-backup" (fun ~seed ->
          let e, p =
            Simrun.pbackup ~seed ~seed_data:bank_seed
              ~business:Workload.Bank.update ~script:one_request_script ()
          in
          ignore
            (Dsim.Engine.run_until ~deadline:60_000. e (fun () ->
                 Etx.Client.script_done p.client));
          measure "primary-backup" e ~forced_ios:0);
      trial "AR" (fun ~seed ->
          let e, d =
            Simrun.deployment ~seed ~seed_data:bank_seed
              ~business:Workload.Bank.update ~script:one_request_script ()
          in
          ignore (Etx.Deployment.run_to_quiescence d);
          measure "AR (e-Transactions)" e ~forced_ios:0);
    ]

let render_figure7 rows =
  let headers =
    [ "protocol"; "app msgs"; "all msgs"; "steps"; "forced IOs" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.proto;
          string_of_int r.app_messages;
          string_of_int r.all_messages;
          string_of_int r.steps;
          string_of_int r.forced_ios;
        ])
      rows
  in
  "Figure 7 — communication in a failure-free committed execution\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* Figure 1 *)

type fig1_scenario = {
  label : string;
  delivered : bool;
  tries : int;
  cleaner_outcome : string option;
  violations : string list;
}

let cleaner_note engine =
  List.find_map
    (fun (e : Dsim.Trace.entry) ->
      match e.event with
      | Dsim.Trace.Note (_, s)
        when String.length s > 8 && String.sub s 0 8 = "cleaned:" -> (
          match String.rindex_opt s ':' with
          | Some i -> Some (String.sub s (i + 1) (String.length s - i - 1))
          | None -> None)
      | _ -> None)
    (Dsim.Trace.entries (Dsim.Engine.trace engine))

let fig1_run ~label ~seed ?(crash_primary_at = None) ?business
    ?(seed_data = bank_seed) ?(body = update_body) () =
  let business = Option.value ~default:Workload.Bank.update business in
  let e, d =
    Simrun.deployment ~seed ~client_period:300. ~seed_data ~business
      ~script:(fun ~issue -> ignore (issue body))
      ()
  in
  (match crash_primary_at with
  | Some t -> Dsim.Engine.crash_at e t (Etx.Deployment.primary d)
  | None -> ());
  let ok = Etx.Deployment.run_to_quiescence ~deadline:120_000. d in
  let tries =
    match Etx.Client.records d.client with
    | [ r ] -> r.tries
    | _ -> -1
  in
  {
    label;
    delivered = ok && Etx.Client.records d.client <> [];
    tries;
    cleaner_outcome = cleaner_note e;
    violations = Etx.Spec.check_all d;
  }

let figure1 ?(seed = 42) ?domains () =
  let trial label run = { label; seed; run } in
  run_trials ?domains
    [
      trial "(a)" (fun ~seed ->
          fig1_run ~label:"(a) failure-free commit" ~seed ());
      trial "(b)" (fun ~seed ->
          fig1_run ~label:"(b) failure-free abort (user-level)" ~seed
            ~business:Workload.Bank.transfer
            ~seed_data:
              (Workload.Bank.seed_accounts [ ("acct0", 5); ("acct1", 0) ])
            ~body:"acct0:acct1:100" ());
      trial "(c)" (fun ~seed ->
          fig1_run ~label:"(c) fail-over with commit" ~seed
            ~crash_primary_at:(Some 230.) ());
      trial "(d)" (fun ~seed ->
          fig1_run ~label:"(d) fail-over with abort" ~seed
            ~crash_primary_at:(Some 100.) ());
    ]

let render_figure1 scenarios =
  let headers = [ "scenario"; "delivered"; "tries"; "cleaner"; "violations" ] in
  let body =
    List.map
      (fun s ->
        [
          s.label;
          string_of_bool s.delivered;
          string_of_int s.tries;
          Option.value ~default:"-" s.cleaner_outcome;
          (match s.violations with
          | [] -> "none"
          | vs -> string_of_int (List.length vs) ^ "!");
        ])
      scenarios
  in
  "Figure 1 — the four canonical executions\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* Ablations *)

let failover_sweep ?(seed = 42) ?(timeouts = [ 20.; 50.; 100.; 200.; 400. ])
    ?domains () =
  run_trials ?domains
    (List.map
       (fun timeout ->
         {
           label = Printf.sprintf "fd-timeout-%g" timeout;
           seed;
           run =
             (fun ~seed ->
               let e, d =
                 Simrun.deployment ~seed ~client_period:300. ~tracing:false
                   ~fd_spec:
                     (Etx.Appserver.Fd_heartbeat
                        {
                          period = 10.;
                          initial_timeout = timeout;
                          timeout_bump = 25.;
                        })
                   ~seed_data:bank_seed ~business:Workload.Bank.update
                   ~script:one_request_script ()
               in
               Dsim.Engine.crash_at e 100. (Etx.Deployment.primary d);
               if not (Etx.Deployment.run_to_quiescence ~deadline:300_000. d)
               then failwith "failover_sweep: run did not quiesce";
               match Etx.Client.records d.client with
               | [ r ] -> (timeout, r.delivered_at -. r.issued_at, r.tries)
               | _ -> failwith "failover_sweep: expected one record");
         })
       timeouts)

let render_failover rows =
  let headers = [ "fd timeout (ms)"; "latency (ms)"; "tries" ] in
  let body =
    List.map
      (fun (t, l, tries) ->
        [ Stats.Table.fmt_ms t; Stats.Table.fmt_ms l; string_of_int tries ])
      rows
  in
  "A1 — fail-over latency vs failure-detector timeout (primary crashes at \
   t=100ms)\n"
  ^ Stats.Table.render ~headers ~rows:body

let backoff_sweep ?(seed = 42) ?(periods = [ 100.; 200.; 400.; 800.; 1600. ])
    ?domains () =
  run_trials ?domains
    (List.map
       (fun period ->
         {
           label = Printf.sprintf "backoff-%g" period;
           seed;
           run =
             (fun ~seed ->
               let nice =
                 let _e, d =
                   Simrun.deployment ~seed ~client_period:period
                     ~tracing:false ~seed_data:bank_seed
                     ~business:Workload.Bank.update ~script:one_request_script
                     ()
                 in
                 if not (Etx.Deployment.run_to_quiescence ~deadline:120_000. d)
                 then failwith "backoff_sweep: nice run did not quiesce";
                 match Etx.Client.records d.client with
                 | [ r ] -> r.delivered_at -. r.issued_at
                 | _ -> failwith "backoff_sweep: expected one record"
               in
               let failover =
                 let e, d =
                   Simrun.deployment ~seed ~client_period:period
                     ~tracing:false ~seed_data:bank_seed
                     ~business:Workload.Bank.update ~script:one_request_script
                     ()
                 in
                 Dsim.Engine.crash_at e 100. (Etx.Deployment.primary d);
                 if not (Etx.Deployment.run_to_quiescence ~deadline:300_000. d)
                 then failwith "backoff_sweep: failover run did not quiesce";
                 match Etx.Client.records d.client with
                 | [ r ] -> r.delivered_at -. r.issued_at
                 | _ -> failwith "backoff_sweep: expected one record"
               in
               (period, nice, failover));
         })
       periods)

let render_backoff rows =
  let headers =
    [ "back-off (ms)"; "nice latency (ms)"; "fail-over latency (ms)" ]
  in
  let body =
    List.map
      (fun (p, n, f) ->
        [ Stats.Table.fmt_ms p; Stats.Table.fmt_ms n; Stats.Table.fmt_ms f ])
      rows
  in
  "A2 — client back-off period: failure-free vs fail-over latency\n"
  ^ Stats.Table.render ~headers ~rows:body

let loss_sweep ?(seed = 42) ?(rates = [ 0.; 0.05; 0.1; 0.2; 0.3 ]) ?domains ()
    =
  (* tracing stays on: msgs/request is counted from the trace *)
  run_trials ?domains
    (List.map
       (fun rate ->
         {
           label = Printf.sprintf "loss-%g" rate;
           seed;
           run =
             (fun ~seed ->
               let net =
                 Dnet.Netmodel.lossy ~loss:rate (Dnet.Netmodel.lan ())
               in
               let n = 10 in
               let e, d =
                 Simrun.deployment ~seed ~net ~client_period:300.
                   ~seed_data:bank_seed ~business:Workload.Bank.update
                   ~script:(fun ~issue ->
                     for _ = 1 to n do
                       ignore (issue update_body)
                     done)
                   ()
               in
               if not (Etx.Deployment.run_to_quiescence ~deadline:600_000. d)
               then failwith "loss_sweep: run did not quiesce";
               let mean =
                 Stats.Summary.mean (latencies (Etx.Client.records d.client))
               in
               let msgs =
                 Msgclass.protocol_messages (Dsim.Engine.trace e) / n
               in
               (rate, mean, msgs));
         })
       rates)

let render_loss rows =
  let headers = [ "loss rate"; "mean latency (ms)"; "msgs/request" ] in
  let body =
    List.map
      (fun (r, l, m) ->
        [
          Printf.sprintf "%.0f%%" (r *. 100.);
          Stats.Table.fmt_ms l;
          string_of_int m;
        ])
      rows
  in
  "A3 — message loss: reliable-channel retransmission cost\n"
  ^ Stats.Table.render ~headers ~rows:body

let db_sweep ?(seed = 42) ?(counts = [ 1; 2; 4; 8 ]) ?domains () =
  run_trials ?domains
    (List.map
       (fun n_dbs ->
         {
           label = Printf.sprintf "dbs-%d" n_dbs;
           seed;
           run =
             (fun ~seed ->
               let baseline =
                 let e, b =
                   Simrun.baseline ~seed ~n_dbs ~tracing:false
                     ~seed_data:bank_seed ~business:Workload.Bank.update
                     ~script:one_request_script ()
                 in
                 ignore
                   (Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
                        Etx.Client.script_done b.client));
                 match Etx.Client.records b.client with
                 | [ r ] -> r.delivered_at -. r.issued_at
                 | _ -> failwith "db_sweep: baseline"
               in
               let ar =
                 let _e, d =
                   Simrun.deployment ~seed ~n_dbs ~tracing:false
                     ~seed_data:bank_seed ~business:Workload.Bank.update
                     ~script:one_request_script ()
                 in
                 if not (Etx.Deployment.run_to_quiescence ~deadline:120_000. d)
                 then failwith "db_sweep: AR did not quiesce";
                 match Etx.Client.records d.client with
                 | [ r ] -> r.delivered_at -. r.issued_at
                 | _ -> failwith "db_sweep: AR"
               in
               let tpc =
                 let e, t =
                   Simrun.tpc ~seed ~n_dbs ~tracing:false
                     ~seed_data:bank_seed ~business:Workload.Bank.update
                     ~script:one_request_script ()
                 in
                 ignore
                   (Dsim.Engine.run_until ~deadline:120_000. e (fun () ->
                        Etx.Client.script_done t.client));
                 match Etx.Client.records t.client with
                 | [ r ] -> r.delivered_at -. r.issued_at
                 | _ -> failwith "db_sweep: 2PC"
               in
               (n_dbs, baseline, ar, tpc));
         })
       counts)

let render_dbs rows =
  let headers = [ "databases"; "baseline (ms)"; "AR (ms)"; "2PC (ms)" ] in
  let body =
    List.map
      (fun (n, b, a, t) ->
        [
          string_of_int n;
          Stats.Table.fmt_ms b;
          Stats.Table.fmt_ms a;
          Stats.Table.fmt_ms t;
        ])
      rows
  in
  "A4 — prepare fan-out: latency vs number of databases\n"
  ^ Stats.Table.render ~headers ~rows:body

let persistence_ablation ?(seed = 42) ?(transactions = 15) ?domains () =
  let script ~issue =
    for _ = 1 to transactions do
      ignore (issue update_body)
    done
  in
  let ar_mean ~recoverable ~seed =
    let _e, d =
      Simrun.deployment ~seed ~recoverable ~tracing:false
        ~seed_data:bank_seed ~business:Workload.Bank.update ~script ()
    in
    if not (Etx.Deployment.run_to_quiescence ~deadline:600_000. d) then
      failwith "persistence_ablation: run did not quiesce";
    Stats.Summary.mean (latencies (Etx.Client.records d.client))
  in
  let tpc_mean ~seed =
    let e, t =
      Simrun.tpc ~seed ~tracing:false ~seed_data:bank_seed
        ~business:Workload.Bank.update ~script ()
    in
    ignore
      (Dsim.Engine.run_until ~deadline:600_000. e (fun () ->
           Etx.Client.script_done t.client));
    Stats.Summary.mean (latencies (Etx.Client.records t.client))
  in
  let trial label run = { label; seed; run } in
  run_trials ?domains
    [
      trial "AR, diskless (the paper's choice)" (fun ~seed ->
          ( "AR, diskless (the paper's choice)",
            ar_mean ~recoverable:false ~seed ));
      trial "AR, persistent registers (crash-recovery)" (fun ~seed ->
          ( "AR, persistent registers (crash-recovery)",
            ar_mean ~recoverable:true ~seed ));
      trial "2PC (reference)" (fun ~seed -> ("2PC (reference)", tpc_mean ~seed));
    ]

let render_persistence rows =
  let headers = [ "configuration"; "mean latency (ms)" ] in
  let body =
    List.map (fun (name, ms) -> [ name; Stats.Table.fmt_ms ms ]) rows
  in
  "A5 — the cost of recoverable application servers (why the middle tier is \
   diskless)\n"
  ^ Stats.Table.render ~headers ~rows:body

type Runtime.Types.payload += Sweep_value

let consensus_failover_sweep ?(seed = 42)
    ?(round_timeouts = [ 25.; 50.; 100.; 200.; 400. ]) ?domains () =
  let one round_timeout ~seed =
    let t =
      Dsim.Engine.create ~seed ~net:(Dnet.Netmodel.lan ()) ~tracing:false ()
    in
    let peers = [ 0; 1; 2 ] in
    let latency = ref infinity in
    let spawn_member i =
      let pid =
        Dsim.Engine.spawn t
          ~name:(Printf.sprintf "a%d" (i + 1))
          ~main:(fun ~recovery:_ () ->
            let ch = Dnet.Rchannel.create () in
            Dnet.Rchannel.start ch;
            (* a uselessly patient detector: only the round timeout can end
               a round whose coordinator is gone *)
            let fd =
              Dnet.Fdetect.heartbeat ~initial_timeout:1_000_000. ~peers ()
            in
            Dnet.Fdetect.start fd;
            let agent =
              Consensus.Agent.create ~round_timeout ~peers ~fd ~ch ()
            in
            Consensus.Agent.start agent;
            if i = 1 then begin
              Dsim.Engine.sleep 10.;
              let t0 = Dsim.Engine.now () in
              ignore (Consensus.Agent.propose agent ~key:"k" Sweep_value);
              latency := Dsim.Engine.now () -. t0
            end)
      in
      assert (pid = i)
    in
    List.iter spawn_member peers;
    (* the round-0 coordinator dies before anything happens *)
    Dsim.Engine.crash_at t 1. 0;
    if
      not
        (Dsim.Engine.run_until ~deadline:120_000. t (fun () ->
             !latency < infinity))
    then failwith "consensus_failover_sweep: no decision";
    (round_timeout, !latency)
  in
  run_trials ?domains
    (List.map
       (fun rt ->
         {
           label = Printf.sprintf "round-timeout-%g" rt;
           seed;
           run = (fun ~seed -> one rt ~seed);
         })
       round_timeouts)

let render_consensus_failover rows =
  let headers = [ "round timeout (ms)"; "register-write latency (ms)" ] in
  let body =
    List.map
      (fun (rt, l) -> [ Stats.Table.fmt_ms rt; Stats.Table.fmt_ms l ])
      rows
  in
  "A6 — consensus optimised for failures: wo-register write with a crashed \
   first coordinator\n"
  ^ Stats.Table.render ~headers ~rows:body

let throughput_sweep ?(seed = 42) ?(clients = [ 1; 2; 4; 8 ])
    ?(requests_per_client = 5) ?domains () =
  let run ~n_clients ~contended ~seed =
    let account i = if contended then "hot" else Printf.sprintf "acct%d" i in
    let seed_data =
      Workload.Bank.seed_accounts
        (("hot", 1_000_000)
        :: List.init n_clients (fun i -> (Printf.sprintf "acct%d" i, 1_000_000))
        )
    in
    let script_for i ~issue =
      for _ = 1 to requests_per_client do
        ignore (issue (Printf.sprintf "%s:1" (account i)))
      done
    in
    let e, d =
      Simrun.deployment ~seed ~tracing:false ~seed_data
        ~business:Workload.Bank.update ~script:(script_for 0) ()
    in
    let extra =
      List.init (n_clients - 1) (fun i ->
          Etx.Client.spawn d.rt
            ~name:(Printf.sprintf "client%d" (i + 1))
            ~period:400. ~servers:d.app_servers
            ~script:(script_for (i + 1))
            ())
    in
    let all_done () =
      Etx.Client.script_done d.client && List.for_all Etx.Client.script_done extra
    in
    if not (Dsim.Engine.run_until ~deadline:3_600_000. e all_done) then
      failwith "throughput_sweep: run did not finish";
    let total = float_of_int (n_clients * requests_per_client) in
    total /. (Dsim.Engine.now_of e /. 1_000.)
  in
  run_trials ?domains
    (List.map
       (fun n_clients ->
         {
           label = Printf.sprintf "clients-%d" n_clients;
           seed;
           run =
             (fun ~seed ->
               ( n_clients,
                 run ~n_clients ~contended:true ~seed,
                 run ~n_clients ~contended:false ~seed ));
         })
       clients)

let render_throughput rows =
  let headers =
    [ "clients"; "contended (tx/s)"; "disjoint accounts (tx/s)" ]
  in
  let body =
    List.map
      (fun (n, hot, cold) ->
        [
          string_of_int n;
          Printf.sprintf "%.2f" hot;
          Printf.sprintf "%.2f" cold;
        ])
      rows
  in
  "A7 — aggregate throughput vs concurrent clients (single database)\n"
  ^ Stats.Table.render ~headers ~rows:body

let scale_points = [ (3, 1); (3, 8); (5, 32); (10, 128); (25, 512) ]

let scale_sweep ?(seed = 42) ?(points = scale_points)
    ?(requests_per_client = 1) () =
  (* disjoint accounts: we are measuring substrate cost per simulated event,
     not lock contention, so the protocol work should scale with the cluster
     and not with retry storms *)
  let one (n_servers, n_clients) =
    let seed_data =
      Workload.Bank.seed_accounts
        (List.init n_clients (fun i -> (Printf.sprintf "acct%d" i, 1_000_000)))
    in
    let script_for i ~issue =
      for _ = 1 to requests_per_client do
        ignore (issue (Printf.sprintf "acct%d:1" i))
      done
    in
    let t0 = Unix.gettimeofday () in
    let e, d =
      Simrun.deployment ~seed ~tracing:false ~n_app_servers:n_servers
        ~seed_data ~business:Workload.Bank.update ~script:(script_for 0) ()
    in
    let extra =
      List.init (n_clients - 1) (fun i ->
          Etx.Client.spawn d.rt
            ~name:(Printf.sprintf "client%d" (i + 1))
            ~period:400. ~servers:d.app_servers
            ~script:(script_for (i + 1))
            ())
    in
    let all_done () =
      Etx.Client.script_done d.client && List.for_all Etx.Client.script_done extra
    in
    if not (Dsim.Engine.run_until ~deadline:7_200_000. e all_done) then
      failwith "scale_sweep: run did not finish";
    let wall_s = Unix.gettimeofday () -. t0 in
    let events = Dsim.Engine.events_of e in
    (n_servers, n_clients, events, wall_s, float_of_int events /. wall_s)
  in
  List.map one points

let render_scale rows =
  let headers =
    [ "app servers"; "clients"; "sim events"; "wall (s)"; "events/s" ]
  in
  let body =
    List.map
      (fun (s, c, ev, wall, rate) ->
        [
          string_of_int s;
          string_of_int c;
          string_of_int ev;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.0f" rate;
        ])
      rows
  in
  "A10 — substrate scalability: events/sec across cluster sizes (wall-clock, \
   host-dependent)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* A11 — shard scaling: S independent replica groups on one simulator.

   Unlike the substrate-cost scale sweep above (wall-clock events/sec,
   host-dependent), the figure of merit here is virtual-time throughput:
   committed transactions per simulated second at quiescence. Shards work
   in parallel in virtual time, so the quiescence time stays roughly flat
   while the request count grows with S — that ratio is the scaling story.
   Each trial is deterministic, so the rows are reproducible anywhere. *)

type shard_row = {
  shards : int;
  clients : int;
  requests : int;  (** total issued across all clients *)
  delivered : int;
  events : int;  (** simulation events to quiescence *)
  vtime_ms : float;  (** virtual time at quiescence *)
  tx_per_vs : float;  (** delivered per {e virtual} second *)
  wall_s : float;  (** host wall-clock cost of the trial *)
}

let shard_points = [ 1; 2; 4 ]

(* Deterministically pick [per_shard] account names owned by each shard:
   scan acct0, acct1, ... and keep the first hits per shard. *)
let shard_accounts ~map ~per_shard =
  let shards = Etx.Shard_map.shards map in
  let want = Array.make shards per_shard in
  let acc = Array.make shards [] in
  let rec scan a remaining =
    if remaining = 0 then ()
    else
      let key = Printf.sprintf "acct%d" a in
      let s = Etx.Shard_map.shard_of map key in
      if want.(s) > 0 then begin
        want.(s) <- want.(s) - 1;
        acc.(s) <- acc.(s) @ [ key ];
        scan (a + 1) (remaining - 1)
      end
      else scan (a + 1) remaining
  in
  scan 0 (shards * per_shard);
  acc

let shard_sweep ?(seed = 42) ?(points = shard_points) ?(clients_per_shard = 2)
    ?(requests_per_client = 4) ?domains () =
  let one n_shards ~seed =
    let map = Etx.Shard_map.create ~shards:n_shards () in
    let accounts = shard_accounts ~map ~per_shard:clients_per_shard in
    let keys = List.concat (Array.to_list accounts) in
    let n_clients = List.length keys in
    let seed_data =
      Workload.Bank.seed_accounts (List.map (fun k -> (k, 1_000_000)) keys)
    in
    (* client i hammers its own account, so every shard serves exactly
       [clients_per_shard] clients and there is no lock contention *)
    let scripts =
      List.map
        (fun key ~issue ->
          for _ = 1 to requests_per_client do
            ignore (issue (key ^ ":1"))
          done)
        keys
    in
    let t0 = Unix.gettimeofday () in
    let e, c =
      Simrun.cluster ~seed ~map ~seed_data ~business:Workload.Bank.update
        ~scripts ()
    in
    if not (Cluster.run_to_quiescence ~deadline:7_200_000. c) then
      failwith "shard_sweep: cluster did not quiesce";
    (match Cluster.Spec.check_all c with
    | [] -> ()
    | violations ->
        failwith ("shard_sweep: spec violated: " ^ String.concat "; " violations));
    let wall_s = Unix.gettimeofday () -. t0 in
    let vtime_ms = Dsim.Engine.now_of e in
    let delivered = List.length (Cluster.all_records c) in
    {
      shards = n_shards;
      clients = n_clients;
      requests = n_clients * requests_per_client;
      delivered;
      events = Dsim.Engine.events_of e;
      vtime_ms;
      tx_per_vs = float_of_int delivered /. (vtime_ms /. 1000.);
      wall_s;
    }
  in
  run_trials ?domains
    (List.map
       (fun s ->
         {
           label = Printf.sprintf "shards-%d" s;
           seed;
           run = one s;
         })
       points)

let render_shard rows =
  let headers =
    [
      "shards";
      "clients";
      "requests";
      "delivered";
      "sim events";
      "vtime (ms)";
      "tx/vsec";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.shards;
          string_of_int r.clients;
          string_of_int r.requests;
          string_of_int r.delivered;
          string_of_int r.events;
          Printf.sprintf "%.1f" r.vtime_ms;
          Printf.sprintf "%.2f" r.tx_per_vs;
        ])
      rows
  in
  "A11 — shard scaling: independent replica groups, virtual-time throughput \
   (deterministic)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* A16 — cross-shard commit: global atomicity's price in messages and
   throughput.

   Same figure of merit as A11 (virtual-time throughput at quiescence),
   but the workload is bank transfers with a controlled fraction of
   cross-shard destinations. Each cross transfer runs a Paxos-Commit
   instance over the participant groups' wo-registers instead of the
   group-local classic path, so the sweep exposes the message overhead
   (msgs/commit vs participant count) and the throughput cost as the
   cross fraction grows. Every row asserts the full cluster spec —
   including global atomicity — before reporting. *)

type cross_row = {
  cx_shards : int;
  cx_ratio : float;  (** requested cross-shard fraction of the workload *)
  cx_clients : int;
  cx_requests : int;
  cx_cross : int;  (** bodies whose two accounts live on different shards *)
  cx_delivered : int;
  cx_mean_participants : float;
      (** mean distinct shards per delivered transfer *)
  cx_events : int;
  cx_vtime_ms : float;
  cx_tx_per_vs : float;
  cx_msgs_per_commit : float;
  cx_wall_s : float;
}

let cross_points =
  [
    (2, 0.0); (2, 0.1); (2, 0.5); (2, 1.0);
    (4, 0.0); (4, 0.1); (4, 0.5); (4, 1.0);
  ]

(* distinct shards a transfer body touches, from its account keys *)
let body_shards ~map body =
  match String.split_on_char ':' body with
  | [ a; b; _ ] ->
      List.sort_uniq compare
        [ Etx.Shard_map.shard_of map a; Etx.Shard_map.shard_of map b ]
  | _ -> [ Etx.Shard_map.shard_of_body map body ]

let cross_sweep ?(seed = 42) ?(points = cross_points) ?(clients = 3)
    ?(requests = 12) ?domains () =
  let one (n_shards, ratio) ~seed =
    let map = Etx.Shard_map.create ~shards:n_shards () in
    let kind =
      Workload.Generator.Bank_transfers
        { accounts = 4 * n_shards; max_amount = 5 }
    in
    let bodies =
      Workload.Generator.sharded_bodies ~map ~cross_ratio:ratio ~seed
        ~n:requests kind
    in
    let n_cross =
      List.length
        (List.filter
           (fun (_, b) -> List.length (body_shards ~map b) > 1)
           bodies)
    in
    (* deal the body stream round-robin over the clients, preserving each
       client's issue order *)
    let slices = Array.make clients [] in
    List.iteri
      (fun i (_, body) ->
        slices.(i mod clients) <- slices.(i mod clients) @ [ body ])
      bodies;
    let scripts =
      Array.to_list
        (Array.map
           (fun bodies ~issue ->
             List.iter (fun b -> ignore (issue b)) bodies)
           slices)
    in
    let t0 = Unix.gettimeofday () in
    let e, c =
      Simrun.cluster ~seed ~map
        ~seed_data:(Workload.Generator.seed_data_of kind) ~cross:true
        ~business:(Workload.Generator.business_of kind) ~scripts ()
    in
    if not (Cluster.run_to_quiescence ~deadline:7_200_000. c) then
      failwith "cross_sweep: cluster did not quiesce";
    (match Cluster.Spec.check_all c with
    | [] -> ()
    | violations ->
        failwith ("cross_sweep: spec violated: " ^ String.concat "; " violations));
    let wall_s = Unix.gettimeofday () -. t0 in
    let vtime_ms = Dsim.Engine.now_of e in
    let records = Cluster.all_records c in
    let delivered = List.length records in
    let participants =
      List.fold_left
        (fun acc (r : Etx.Client.record) ->
          acc + List.length (body_shards ~map r.body))
        0 records
    in
    let msgs = Msgclass.protocol_messages (Dsim.Engine.trace e) in
    {
      cx_shards = n_shards;
      cx_ratio = ratio;
      cx_clients = clients;
      cx_requests = requests;
      cx_cross = n_cross;
      cx_delivered = delivered;
      cx_mean_participants =
        float_of_int participants /. float_of_int (max 1 delivered);
      cx_events = Dsim.Engine.events_of e;
      cx_vtime_ms = vtime_ms;
      cx_tx_per_vs = float_of_int delivered /. (vtime_ms /. 1000.);
      cx_msgs_per_commit =
        float_of_int msgs /. float_of_int (max 1 delivered);
      cx_wall_s = wall_s;
    }
  in
  run_trials ?domains
    (List.map
       (fun (s, r) ->
         {
           label = Printf.sprintf "cross-%d-%.2f" s r;
           seed;
           run = one (s, r);
         })
       points)

let render_cross rows =
  let headers =
    [
      "shards";
      "cross ratio";
      "cross/total";
      "delivered";
      "mean parts";
      "vtime (ms)";
      "tx/vsec";
      "msgs/commit";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.cx_shards;
          Printf.sprintf "%.2f" r.cx_ratio;
          Printf.sprintf "%d/%d" r.cx_cross r.cx_requests;
          string_of_int r.cx_delivered;
          Printf.sprintf "%.2f" r.cx_mean_participants;
          Printf.sprintf "%.1f" r.cx_vtime_ms;
          Printf.sprintf "%.2f" r.cx_tx_per_vs;
          Printf.sprintf "%.1f" r.cx_msgs_per_commit;
        ])
      rows
  in
  "A16 — cross-shard commit: Paxos Commit over the replica groups, cost vs \
   cross fraction (deterministic)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* A17 — elastic reconfiguration: an online 2 -> 3-group split under live
   traffic, throughput bucketed by migration phase.

   One trial warms the cluster with bank-update traffic, starts a split of
   group 0's slots toward the pre-provisioned spare, waits for the epoch
   flip, and runs to quiescence. Delivered records are bucketed by their
   delivery time against the [split, flip] window, so the "during" column
   is the throughput cost of sealing + copying + bouncing, and
   "before"/"after" bracket it with the undisturbed rates. The full
   cluster spec — including migration integrity and exactly-once — is
   asserted before any row is reported, and the row carries the copy and
   re-routing counters so regressions in bounce volume are visible, not
   just latency. *)

type migrate_row = {
  mg_clients : int;
  mg_requests : int;  (** issued across all clients *)
  mg_delivered : int;
  mg_before_tx_per_vs : float;
  mg_during_tx_per_vs : float;
  mg_after_tx_per_vs : float;
  mg_during_ms : float;  (** split -> flip window, virtual ms *)
  mg_drain_ms : float;  (** source databases' seal-to-drained time *)
  mg_keys_moved : int;
  mg_bounced : int;
  mg_map_refresh : int;
  mg_events : int;
  mg_wall_s : float;
}

let migrate_sweep ?(seed = 42) ?(issues = 10) ?domains () =
  let one ~seed =
    let reg = Obs.Registry.create () in
    let keys = List.init 6 (Printf.sprintf "acct%d") in
    let seed_data =
      Workload.Bank.seed_accounts (List.map (fun k -> (k, 1000)) keys)
    in
    let scripts =
      List.map
        (fun k ~issue ->
          for _ = 1 to issues do
            ignore (issue (k ^ ":1"))
          done)
        keys
    in
    let t0 = Unix.gettimeofday () in
    let e, c =
      Simrun.cluster ~seed ~obs:reg ~shards:2 ~reconfig:true ~provision:1
        ~client_period:200. ~seed_data ~business:Workload.Bank.update ~scripts
        ()
    in
    (* warm: let the epoch-0 cluster serve traffic before splitting *)
    ignore (Dsim.Engine.run_until ~deadline:600. e (fun () -> false));
    let t_split = Dsim.Engine.now_of e in
    ignore (Cluster.split c ~group:0 ~target:2);
    if not (Cluster.await_epoch ~deadline:600_000. c 1) then
      failwith "migrate_sweep: epoch flip did not happen";
    let t_flip = Dsim.Engine.now_of e in
    if not (Cluster.run_to_quiescence ~deadline:1_200_000. c) then
      failwith "migrate_sweep: cluster did not quiesce";
    (match Cluster.Spec.check_all c with
    | [] -> ()
    | violations ->
        failwith
          ("migrate_sweep: spec violated: " ^ String.concat "; " violations));
    let wall_s = Unix.gettimeofday () -. t0 in
    let records = Cluster.all_records c in
    let delivered = List.length records in
    let requests = 6 * issues in
    if delivered <> requests then
      failwith
        (Printf.sprintf "migrate_sweep: %d of %d requests delivered" delivered
           requests);
    let in_phase lo hi =
      List.length
        (List.filter
           (fun (r : Etx.Client.record) ->
             r.delivered_at >= lo && r.delivered_at < hi)
           records)
    in
    let t_end =
      List.fold_left
        (fun a (r : Etx.Client.record) -> max a r.delivered_at)
        t_flip records
    in
    let rate n window =
      if window <= 0. then 0. else float_of_int n /. (window /. 1000.)
    in
    let counter = Obs.Registry.counter_total reg in
    {
      mg_clients = 6;
      mg_requests = requests;
      mg_delivered = delivered;
      mg_before_tx_per_vs = rate (in_phase 0. t_split) t_split;
      mg_during_tx_per_vs = rate (in_phase t_split t_flip) (t_flip -. t_split);
      mg_after_tx_per_vs =
        rate (in_phase t_flip infinity) (t_end -. t_flip);
      mg_during_ms = t_flip -. t_split;
      mg_drain_ms =
        (match Obs.Registry.merged_histogram reg "migrate.drain_ms" with
        | Some h -> Option.value ~default:0. (Obs.Histogram.mean h)
        | None -> 0.);
      mg_keys_moved = counter "migrate.keys_moved";
      mg_bounced = counter "migrate.bounced";
      mg_map_refresh = counter "client.map_refresh";
      mg_events = Dsim.Engine.events_of e;
      mg_wall_s = wall_s;
    }
  in
  run_trials ?domains [ { label = "migrate"; seed; run = one } ]

let render_migrate rows =
  let headers =
    [
      "clients";
      "delivered";
      "tx/vsec before";
      "tx/vsec during";
      "tx/vsec after";
      "window (ms)";
      "drain (ms)";
      "keys moved";
      "bounced";
      "refreshes";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.mg_clients;
          Printf.sprintf "%d/%d" r.mg_delivered r.mg_requests;
          Printf.sprintf "%.2f" r.mg_before_tx_per_vs;
          Printf.sprintf "%.2f" r.mg_during_tx_per_vs;
          Printf.sprintf "%.2f" r.mg_after_tx_per_vs;
          Printf.sprintf "%.1f" r.mg_during_ms;
          Printf.sprintf "%.1f" r.mg_drain_ms;
          string_of_int r.mg_keys_moved;
          string_of_int r.mg_bounced;
          string_of_int r.mg_map_refresh;
        ])
      rows
  in
  "A17 — elastic reconfiguration: online split under live traffic, \
   throughput by migration phase (deterministic)\n"
  ^ Stats.Table.render ~headers ~rows:body

let register_backend_comparison ?(seed = 42) ?domains () =
  (* one register write among three members; [writer] proposes, the member
     being measured records the elapsed time; optionally member 0 (the
     primary / ballot-0 owner) is crashed at t=1 *)
  let run ~make_agent ~writer ~crash_primary ~seed =
    let t =
      Dsim.Engine.create ~seed ~net:(Dnet.Netmodel.lan ()) ~tracing:false ()
    in
    let rt = Dsim.Runtime_sim.of_engine t in
    let peers = [ 0; 1; 2 ] in
    let latency = ref infinity in
    List.iter
      (fun i ->
        let pid =
          Dsim.Engine.spawn t
            ~name:(Printf.sprintf "m%d" (i + 1))
            ~main:(fun ~recovery:_ () ->
              let ch = Dnet.Rchannel.create () in
              Dnet.Rchannel.start ch;
              let write = make_agent rt ~peers ~ch in
              if i = writer then begin
                Dsim.Engine.sleep 10.;
                let t0 = Dsim.Engine.now () in
                ignore (write ~key:"k" Sweep_value);
                latency := Dsim.Engine.now () -. t0
              end)
        in
        assert (pid = i))
      peers;
    if crash_primary then Dsim.Engine.crash_at t 1. 0;
    if
      not
        (Dsim.Engine.run_until ~deadline:300_000. t (fun () ->
             !latency < infinity))
    then failwith "register_backend_comparison: no decision";
    !latency
  in
  let ct ~fd_of rt ~peers ~ch =
    let fd = fd_of rt in
    Dnet.Fdetect.start fd;
    let agent = Consensus.Agent.create ~peers ~fd ~ch () in
    Consensus.Agent.start agent;
    fun ~key v -> Consensus.Agent.propose agent ~key v
  in
  let ct_oracle = ct ~fd_of:(fun rt -> Dnet.Fdetect.oracle rt) in
  let ct_blind =
    ct ~fd_of:(fun _ ->
        Dnet.Fdetect.heartbeat ~initial_timeout:1_000_000. ~peers:[ 0; 1; 2 ]
          ())
  in
  let synod _rt ~peers ~ch =
    let s = Consensus.Synod.create ~peers ~ch () in
    Consensus.Synod.start s;
    fun ~key v -> Consensus.Synod.propose s ~key v
  in
  let measure name make_agent =
    {
      label = name;
      seed;
      run =
        (fun ~seed ->
          ( name,
            run ~make_agent ~writer:0 ~crash_primary:false ~seed,
            run ~make_agent ~writer:1 ~crash_primary:true ~seed ));
    }
  in
  run_trials ?domains
    [
      measure "CT agent, perfect detector" ct_oracle;
      measure "CT agent, useless detector (100ms rounds)" ct_blind;
      measure "Synod (Paxos), no detector" synod;
    ]

let render_register_backends rows =
  let headers =
    [ "backend"; "primary write (ms)"; "fail-over write (ms)" ]
  in
  let body =
    List.map
      (fun (name, nice, failover) ->
        [ name; Stats.Table.fmt_ms nice; Stats.Table.fmt_ms failover ])
      rows
  in
  "A8 — wo-register substrates: failure-free vs crashed-coordinator writes\n"
  ^ Stats.Table.render ~headers ~rows:body

let fd_quality_sweep ?(seed = 42) ?(requests = 10)
    ?(timeouts = [ 15.; 25.; 50.; 100.; 200. ]) ?domains () =
  (* tracing stays on: cleanings are counted from trace notes and
     [Spec.check_all] replays them too *)
  let one timeout ~seed =
    (* jitter plus heartbeat loss: a dropped heartbeat stretches the
       silence past an aggressive timeout *)
    let net =
      Dnet.Netmodel.lossy ~loss:0.15 (Dnet.Netmodel.uniform ~lo:1.0 ~hi:6.0)
    in
    let e, d =
      (* timeout_bump = 0 disables the ◇P adaptation so the sweep shows the
         raw cost of a mis-set timeout; with the default bump the detector
         absorbs this jitter after a couple of mistakes (tested) *)
      Simrun.deployment ~seed ~net ~client_period:300. ~clean_period:10.
        ~fd_spec:
          (Etx.Appserver.Fd_heartbeat
             { period = 10.; initial_timeout = timeout; timeout_bump = 0. })
        ~seed_data:bank_seed ~business:Workload.Bank.update
        ~script:(fun ~issue ->
          for _ = 1 to requests do
            ignore (issue update_body)
          done)
        ()
    in
    if not (Etx.Deployment.run_to_quiescence ~deadline:600_000. d) then
      failwith "fd_quality_sweep: run did not quiesce";
    (match Etx.Spec.check_all d with
    | [] -> ()
    | vs ->
        failwith
          ("fd_quality_sweep: suspicions broke the spec!? "
          ^ String.concat "; " vs));
    let cleanings =
      List.length
        (List.filter
           (fun (e : Dsim.Trace.entry) ->
             match e.event with
             | Dsim.Trace.Note (_, s) ->
                 String.length s > 8 && String.sub s 0 8 = "cleaned:"
             | _ -> false)
           (Dsim.Trace.entries (Dsim.Engine.trace e)))
    in
    let extra_tries =
      List.fold_left
        (fun acc (r : Etx.Client.record) -> acc + r.tries - 1)
        0
        (Etx.Client.records d.client)
    in
    let mean = Stats.Summary.mean (latencies (Etx.Client.records d.client)) in
    (timeout, cleanings, extra_tries, mean)
  in
  run_trials ?domains
    (List.map
       (fun timeout ->
         {
           label = Printf.sprintf "fd-quality-%g" timeout;
           seed;
           run = (fun ~seed -> one timeout ~seed);
         })
       timeouts)

let render_fd_quality rows =
  let headers =
    [
      "fd timeout (ms)";
      "spurious cleanings";
      "extra tries";
      "mean latency (ms)";
    ]
  in
  let body =
    List.map
      (fun (t, c, x, l) ->
        [
          Stats.Table.fmt_ms t;
          string_of_int c;
          string_of_int x;
          Stats.Table.fmt_ms l;
        ])
      rows
  in
  "A9 — detector quality: false suspicions cost retries, never consistency \
   (spec asserted per row)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* A12 — per-phase latency attribution of the fail-over path.

   Re-runs the Figure 1(c) scenario (the primary crashes mid-request, a
   backup wins the next election and commits) with an observability
   registry attached, and attributes the client-visible latency of the
   committed request to the phases the span layer records: election,
   compute, prepare, consensus (the wo-register outcome write),
   terminate. The crashed owner's spans never close, so they are counted
   separately as abandoned work; the residue — failure-detection delay,
   client back-off, transport — is [other]. *)

type phase_row = { phase : string; mean_ms : float; share_pct : float }

type failover_phase_report = {
  trials : int;
  mean_latency_ms : float;
  mean_tries : float;
  abandoned_spans : float;  (** mean spans left open by the crash *)
  phases : phase_row list;
  other_ms : float;
}

let failover_phase_names =
  [ "election"; "compute"; "prepare"; "consensus"; "terminate" ]

let failover_phases ?(seed = 42) ?(trials = 5) ?domains () =
  let one ~seed =
    let reg = Obs.Registry.create () in
    let e, d =
      Simrun.deployment ~seed ~client_period:300. ~tracing:false ~obs:reg
        ~seed_data:bank_seed ~business:Workload.Bank.update
        ~script:one_request_script ()
    in
    Dsim.Engine.crash_at e 230. (Etx.Deployment.primary d);
    if not (Etx.Deployment.run_to_quiescence ~deadline:300_000. d) then
      failwith "failover_phases: run did not quiesce";
    let r =
      match Etx.Client.records d.client with
      | [ r ] -> r
      | _ -> failwith "failover_phases: expected one record"
    in
    let spans =
      List.filter
        (fun (s : Obs.Span.t) -> s.trace = r.rid)
        (Obs.Registry.spans reg)
    in
    let closed_dur name =
      List.fold_left
        (fun acc (s : Obs.Span.t) ->
          if s.name = name then
            acc +. Option.value ~default:0. (Obs.Span.duration s)
          else acc)
        0. spans
    in
    let abandoned =
      List.length (List.filter (fun s -> not (Obs.Span.closed s)) spans)
    in
    ( r.delivered_at -. r.issued_at,
      r.tries,
      abandoned,
      List.map (fun n -> (n, closed_dur n)) failover_phase_names )
  in
  let results =
    run_trials ?domains
      (List.init trials (fun i ->
           {
             label = Printf.sprintf "failover-phases-%d" i;
             seed = seed + i;
             run = one;
           }))
  in
  let n = float_of_int (List.length results) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
  let mean_latency = mean (fun (l, _, _, _) -> l) in
  let phases =
    List.map
      (fun name ->
        let m = mean (fun (_, _, _, ds) -> List.assoc name ds) in
        { phase = name; mean_ms = m; share_pct = 100. *. m /. mean_latency })
      failover_phase_names
  in
  let attributed = List.fold_left (fun a p -> a +. p.mean_ms) 0. phases in
  {
    trials = List.length results;
    mean_latency_ms = mean_latency;
    mean_tries = mean (fun (_, t, _, _) -> float_of_int t);
    abandoned_spans = mean (fun (_, _, a, _) -> float_of_int a);
    phases;
    other_ms = mean_latency -. attributed;
  }

let render_failover_phases rep =
  let headers = [ "phase"; "mean (ms)"; "share" ] in
  let body =
    List.map
      (fun p ->
        [
          p.phase;
          Stats.Table.fmt_ms p.mean_ms;
          Printf.sprintf "%.1f%%" p.share_pct;
        ])
      rep.phases
    @ [
        [
          "other (detection, back-off, transport)";
          Stats.Table.fmt_ms rep.other_ms;
          Printf.sprintf "%.1f%%" (100. *. rep.other_ms /. rep.mean_latency_ms);
        ];
      ]
  in
  Printf.sprintf
    "A12 — fail-over latency attribution from spans (%d trials, mean latency \
     %.1f ms, mean tries %.1f, %.1f spans abandoned by the crash)\n"
    rep.trials rep.mean_latency_ms rep.mean_tries rep.abandoned_spans
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* A13 — batched commit pipeline: throughput and message amortization
   against the batch cap.

   One shard, many concurrent clients on disjoint accounts, so the
   leaseholder has a deep queue and every window fills up to the cap.
   tx/vsec is delivered requests over the run's virtual time; messages
   per commit counts every protocol message on the wire (consensus,
   2PC, client traffic — retries included) over delivered requests, the
   amortization Figure 7 counts per single commit. *)

let batch_points = [ 1; 4; 16; 64 ]

type batch_row = {
  batch : int;
  tx_per_vs : float;
  msgs_per_commit : float;
  mean_latency_ms : float;
  mean_fill : float;
}

let batch_run ~seed ~clients ~requests ~batch =
  let reg = Obs.Registry.create ~spans:false () in
  let seed_data =
    Workload.Bank.seed_accounts
      (List.init clients (fun i -> (Printf.sprintf "acct%d" i, 1_000_000)))
  in
  let scripts =
    List.init clients (fun i ~issue ->
        for _ = 1 to requests do
          ignore (issue (Printf.sprintf "acct%d:1" i))
        done)
  in
  let e, c =
    Simrun.cluster ~seed ~obs:reg ~shards:1 ~batch ~seed_data
      ~business:Workload.Bank.update ~scripts ()
  in
  if not (Cluster.run_to_quiescence ~deadline:3_600_000. c) then
    failwith "batch_sweep: run did not quiesce";
  let records = Cluster.all_records c in
  let delivered = List.length records in
  if delivered <> clients * requests then
    failwith "batch_sweep: not every request delivered";
  let dn = float_of_int delivered in
  let vs = Dsim.Engine.now_of e /. 1_000. in
  let msgs = Msgclass.protocol_messages (Dsim.Engine.trace e) in
  let mean_fill =
    (* the classic path (batch = 1) assembles no windows and records no
       batch-size histogram: its fill is one by definition *)
    match Obs.Registry.merged_histogram reg "server.batch_size" with
    | Some h when Obs.Histogram.count h > 0 ->
        Obs.Histogram.sum h /. float_of_int (Obs.Histogram.count h)
    | _ -> 1.
  in
  {
    batch;
    tx_per_vs = dn /. vs;
    msgs_per_commit = float_of_int msgs /. dn;
    mean_latency_ms =
      List.fold_left ( +. ) 0. (latencies records) /. dn;
    mean_fill;
  }

let batch_sweep ?(seed = 42) ?(clients = 128) ?(requests = 2)
    ?(points = batch_points) ?domains () =
  run_trials ?domains
    (List.map
       (fun batch ->
         {
           label = Printf.sprintf "batch-%d" batch;
           seed;
           run = (fun ~seed -> batch_run ~seed ~clients ~requests ~batch);
         })
       points)

let render_batch rows =
  let headers =
    [ "batch cap"; "tx/vsec"; "msgs/commit"; "mean latency"; "mean fill" ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.batch;
          Printf.sprintf "%.1f" r.tx_per_vs;
          Printf.sprintf "%.1f" r.msgs_per_commit;
          Stats.Table.fmt_ms r.mean_latency_ms;
          Printf.sprintf "%.1f" r.mean_fill;
        ])
      rows
  in
  "A13 — batched commit pipeline: one compute/log/decide cycle per window \
   (single shard, disjoint accounts; spec asserted per row)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* A13b — which phase the batch collapses: amortized closed-span time per
   committed request, classic path vs a deep window. The same span names
   as A12, so the two tables line up. *)

let batch_phases ?(seed = 42) ?(clients = 128) ?(requests = 2)
    ?(batches = [ 1; 16 ]) ?domains () =
  let one ~batch ~seed =
    let reg = Obs.Registry.create () in
    let seed_data =
      Workload.Bank.seed_accounts
        (List.init clients (fun i -> (Printf.sprintf "acct%d" i, 1_000_000)))
    in
    let scripts =
      List.init clients (fun i ~issue ->
          for _ = 1 to requests do
            ignore (issue (Printf.sprintf "acct%d:1" i))
          done)
    in
    let _e, c =
      Simrun.cluster ~seed ~tracing:false ~obs:reg ~shards:1 ~batch
        ~seed_data ~business:Workload.Bank.update ~scripts ()
    in
    if not (Cluster.run_to_quiescence ~deadline:3_600_000. c) then
      failwith "batch_phases: run did not quiesce";
    let dn = float_of_int (List.length (Cluster.all_records c)) in
    let spans = Obs.Registry.spans reg in
    let per_commit name =
      List.fold_left
        (fun acc (s : Obs.Span.t) ->
          if s.name = name then
            acc +. Option.value ~default:0. (Obs.Span.duration s)
          else acc)
        0. spans
      /. dn
    in
    let durs = List.map (fun n -> (n, per_commit n)) failover_phase_names in
    let attributed = List.fold_left (fun a (_, d) -> a +. d) 0. durs in
    ( batch,
      List.map
        (fun (name, d) ->
          {
            phase = name;
            mean_ms = d;
            share_pct = (if attributed > 0. then 100. *. d /. attributed else 0.);
          })
        durs )
  in
  run_trials ?domains
    (List.map
       (fun batch ->
         {
           label = Printf.sprintf "batch-phases-%d" batch;
           seed;
           run = (fun ~seed -> one ~batch ~seed);
         })
       batches)

let render_batch_phases reports =
  let headers =
    "phase"
    :: List.map (fun (b, _) -> Printf.sprintf "batch=%d (ms/commit)" b) reports
  in
  let body =
    List.map
      (fun name ->
        name
        :: List.map
             (fun (_, phases) ->
               let p = List.find (fun p -> p.phase = name) phases in
               Stats.Table.fmt_ms p.mean_ms)
             reports)
      failover_phase_names
  in
  "A13b — amortized per-commit phase cost: batching collapses the \
   election (leased), consensus and terminate phases; SQL compute is \
   already overlapped\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* A14 — method cache: read-heavy sweep across app-server counts × cache
   on/off.

   One shard, a read-dominant mix (Bank.mixed audits with interleaved
   updates) over a handful of hot accounts, so repeat audits are frequent
   and the cache can serve them. With caching on, clients rotate their
   first-try server, so cached read throughput grows with the server
   count while the uncached curve stays flat (every request still rides
   the full commit pipeline at the group head); messages per delivered
   read collapse because a hit is one request/response round trip. The
   specification — including cache coherence — is asserted per row. *)

let read_points = [ 1; 2; 3; 4 ]

type read_row = {
  servers : int;
  cache : bool;
  reads : int;
  tx_per_vs : float;
  read_tx_per_vs : float;
  msgs_per_read : float;
  hit_rate : float;
  mean_read_latency_ms : float;
}

let read_run ~seed ~clients ~requests ~reads_per_write ~servers ~cache =
  let reg = Obs.Registry.create ~spans:false () in
  let kind =
    Workload.Generator.Read_heavy
      { accounts = 4; max_delta = 3; reads_per_write }
  in
  (* per-client seeds so the clients do not issue identical streams *)
  let scripts =
    List.init clients (fun i ~issue ->
        List.iter
          (fun body -> ignore (issue body))
          (Workload.Generator.bodies ~seed:(seed + (31 * i)) ~n:requests kind))
  in
  let e, c =
    Simrun.cluster ~seed ~obs:reg ~shards:1 ~n_app_servers:servers ~cache
      ~seed_data:(Workload.Generator.seed_data_of kind)
      ~business:(Workload.Generator.business_of kind)
      ~scripts ()
  in
  if not (Cluster.run_to_quiescence ~deadline:3_600_000. c) then
    failwith "read_sweep: run did not quiesce";
  (match Cluster.Spec.check_all c with
  | [] -> ()
  | vs -> failwith ("read_sweep: spec violated: " ^ String.concat "; " vs));
  let records = Cluster.all_records c in
  let delivered = List.length records in
  if delivered <> clients * requests then
    failwith "read_sweep: not every request delivered";
  (* audits answer "balance:..."; everything else is a write *)
  let read_records =
    List.filter
      (fun (r : Etx.Client.record) ->
        String.length r.result >= 8 && String.sub r.result 0 8 = "balance:")
      records
  in
  let reads = List.length read_records in
  let rn = float_of_int reads in
  let vs = Dsim.Engine.now_of e /. 1_000. in
  let msgs = Msgclass.protocol_messages (Dsim.Engine.trace e) in
  let hits = Obs.Registry.counter_total reg "cache.hit" in
  let misses = Obs.Registry.counter_total reg "cache.miss" in
  {
    servers;
    cache;
    reads;
    tx_per_vs = float_of_int delivered /. vs;
    read_tx_per_vs = rn /. vs;
    msgs_per_read = (if reads = 0 then 0. else float_of_int msgs /. rn);
    hit_rate =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses));
    mean_read_latency_ms =
      (if reads = 0 then 0.
       else List.fold_left ( +. ) 0. (latencies read_records) /. rn);
  }

let read_sweep ?(seed = 42) ?(clients = 8) ?(requests = 8)
    ?(reads_per_write = 7) ?(points = read_points) ?domains () =
  run_trials ?domains
    (List.concat_map
       (fun servers ->
         List.map
           (fun cache ->
             {
               label =
                 Printf.sprintf "read-%d-%s" servers
                   (if cache then "cache" else "plain");
               seed;
               run =
                 (fun ~seed ->
                   read_run ~seed ~clients ~requests ~reads_per_write ~servers
                     ~cache);
             })
           [ false; true ])
       points)

let render_read rows =
  let headers =
    [
      "servers";
      "cache";
      "reads";
      "tx/vsec";
      "read tx/vsec";
      "msgs/read";
      "hit rate";
      "read latency";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.servers;
          (if r.cache then "on" else "off");
          string_of_int r.reads;
          Printf.sprintf "%.1f" r.tx_per_vs;
          Printf.sprintf "%.1f" r.read_tx_per_vs;
          Printf.sprintf "%.1f" r.msgs_per_read;
          Printf.sprintf "%.0f%%" (r.hit_rate *. 100.);
          Stats.Table.fmt_ms r.mean_read_latency_ms;
        ])
      rows
  in
  "A14 — method cache: read-heavy mix across app servers × cache on/off \
   (single shard; spec incl. cache coherence asserted per row)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* A15 — the log-structured storage tier (DESIGN.md §14), three sweeps:

   a) group commit — disk forces per committed request against the batch
      cap, coalescing scheduler off vs on, at the default nonzero force
      latency. The window cap already amortizes the log writes of one
      window into one force; the scheduler additionally merges forces
      from *concurrent* windows and transactions, so both columns fall
      with the cap and the coalesced one falls faster.
   b) checkpointed recovery — a direct Rm micro-harness: commit a known
      history, optionally checkpointing along the way, then measure the
      checkpoint-bounded replay ([Rm.recovery_steps]) and the host cost
      of re-running recovery over the retained log.
   c) read replicas — the A14 read-heavy mix with the method cache on,
      across replica counts: cache-miss reads are served by bounded-
      staleness change-log replicas instead of riding the full commit
      pipeline, so read throughput keeps scaling after the cache alone
      has saturated. *)

let gc_points = [ 1; 4; 16; 64 ]

type gc_row = {
  gc_batch : int;
  gc_on : bool;
  forces : int;
  forces_per_commit : float;
  gc_tx_per_vs : float;
  gc_mean_latency_ms : float;
}

let gc_run ~seed ~clients ~requests ~servers ~batch ~gc =
  let reg = Obs.Registry.create ~spans:false () in
  let seed_data =
    Workload.Bank.seed_accounts
      (List.init clients (fun i -> (Printf.sprintf "acct%d" i, 1_000_000)))
  in
  let scripts =
    List.init clients (fun i ~issue ->
        for _ = 1 to requests do
          ignore (issue (Printf.sprintf "acct%d:1" i))
        done)
  in
  let e, c =
    Simrun.cluster ~seed ~obs:reg ~shards:1 ~n_app_servers:servers ~batch
      ~group_commit:gc ~seed_data ~business:Workload.Bank.update ~scripts ()
  in
  if not (Cluster.run_to_quiescence ~deadline:3_600_000. c) then
    failwith "group_commit_sweep: run did not quiesce";
  (match Cluster.Spec.check_all c with
  | [] -> ()
  | vs ->
      failwith ("group_commit_sweep: spec violated: " ^ String.concat "; " vs));
  let records = Cluster.all_records c in
  let delivered = List.length records in
  if delivered <> clients * requests then
    failwith "group_commit_sweep: not every request delivered";
  let dn = float_of_int delivered in
  let vs = Dsim.Engine.now_of e /. 1_000. in
  let forces = Obs.Registry.counter_total reg "db.force" in
  {
    gc_batch = batch;
    gc_on = gc;
    forces;
    forces_per_commit = float_of_int forces /. dn;
    gc_tx_per_vs = dn /. vs;
    gc_mean_latency_ms = List.fold_left ( +. ) 0. (latencies records) /. dn;
  }

(* 16 application servers, not the default 3: each server's compute
   thread runs one transaction at a time (the paper's architecture), so
   the db sees at most [servers] concurrent commitment steps. With only
   3 the ~25 ms of forced IO per ~600 ms transaction essentially never
   collides and the coalescing scheduler has nothing to merge — group
   commit without concurrent sessions buys exactly nothing. *)
let group_commit_sweep ?(seed = 42) ?(clients = 128) ?(requests = 2)
    ?(servers = 16) ?(points = gc_points) ?domains () =
  run_trials ?domains
    (List.concat_map
       (fun batch ->
         List.map
           (fun gc ->
             {
               label =
                 Printf.sprintf "gc-%d-%s" batch (if gc then "on" else "off");
               seed;
               run =
                 (fun ~seed ->
                   gc_run ~seed ~clients ~requests ~servers ~batch ~gc);
             })
           [ false; true ])
       points)

let render_gc rows =
  let headers =
    [
      "batch cap";
      "group commit";
      "forces";
      "forces/commit";
      "tx/vsec";
      "mean latency";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.gc_batch;
          (if r.gc_on then "on" else "off");
          string_of_int r.forces;
          Printf.sprintf "%.2f" r.forces_per_commit;
          Printf.sprintf "%.1f" r.gc_tx_per_vs;
          Stats.Table.fmt_ms r.gc_mean_latency_ms;
        ])
      rows
  in
  "A15a — group commit: disk forces per committed request vs the window \
   cap, coalescing scheduler off vs on (force latency 12.5 ms; spec \
   asserted per row)\n"
  ^ Stats.Table.render ~headers ~rows:body

let recovery_points = [ 64; 256; 1024 ]

type recovery_row = {
  commits : int;
  checkpointed : bool;
  log_len : int;
  steps : int;
  replay_ms : float;
}

let recovery_run ~seed ~commits ~checkpoint_every =
  let t = Dsim.Engine.create ~seed () in
  let disk = Dstore.Disk.create ~force_latency:1. ~label:"log" () in
  let rm =
    Dbms.Rm.create ~timing:Dbms.Rm.zero_timing ~seed_data:[] ~disk ~name:"db"
      ()
  in
  let row = ref None in
  let _pid =
    Dsim.Engine.spawn t ~name:"db" ~main:(fun ~recovery:_ () ->
        for i = 1 to commits do
          let x = Dbms.Xid.make ~rid:1 ~j:i in
          Dbms.Rm.xa_start rm ~xid:x;
          ignore
            (Dbms.Rm.exec rm ~xid:x
               [
                 Dbms.Rm.Put
                   (Printf.sprintf "k%d" (i mod 32), Dbms.Value.Int i);
               ]);
          ignore (Dbms.Rm.vote rm ~xid:x);
          ignore (Dbms.Rm.decide rm ~xid:x Dbms.Rm.Commit);
          match checkpoint_every with
          | Some k when i mod k = 0 -> Dbms.Rm.checkpoint rm
          | _ -> ()
        done;
        (* the history is fully durable (the last decide forced it), so
           [recover] finds no tail to cut and is pure replay — time it
           over enough repetitions to rise above timer noise *)
        let reps = 32 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          Dbms.Rm.recover rm
        done;
        let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
        row :=
          Some
            {
              commits;
              checkpointed = checkpoint_every <> None;
              log_len = Dbms.Rm.log_length rm;
              steps = Dbms.Rm.recovery_steps rm;
              replay_ms = dt *. 1_000.;
            })
  in
  ignore (Dsim.Engine.run t);
  match !row with
  | Some r -> r
  | None -> failwith "recovery_sweep: micro-harness did not finish"

let recovery_sweep ?(seed = 42) ?(points = recovery_points)
    ?(checkpoint_every = 48) ?domains () =
  run_trials ?domains
    (List.concat_map
       (fun commits ->
         List.map
           (fun ck ->
             {
               label =
                 Printf.sprintf "recovery-%d-%s" commits
                   (if ck <> None then "ckpt" else "plain");
               seed;
               run =
                 (fun ~seed -> recovery_run ~seed ~commits ~checkpoint_every:ck);
             })
           [ None; Some checkpoint_every ])
       points)

let render_recovery rows =
  let headers =
    [ "commits"; "checkpoints"; "log records"; "replay steps"; "replay ms" ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.commits;
          (if r.checkpointed then "on" else "off");
          string_of_int r.log_len;
          string_of_int r.steps;
          Printf.sprintf "%.3f" r.replay_ms;
        ])
      rows
  in
  "A15b — checkpointed recovery: replay work vs committed history, with \
   and without periodic checkpoints (replay ms is host CPU time, \
   machine-dependent; steps are deterministic)\n"
  ^ Stats.Table.render ~headers ~rows:body

let replica_points = [ 0; 1; 2 ]

type replica_row = {
  rep_replicas : int;
  rep_reads : int;
  rep_read_tx_per_vs : float;
  rep_served : int;
  rep_fallbacks : int;
  rep_hit_rate : float;
  rep_mean_read_latency_ms : float;
}

let replica_run ~seed ~clients ~requests ~reads_per_write ~servers ~replicas =
  let reg = Obs.Registry.create ~spans:false () in
  (* a WIDE key space, deliberately: repeat audits are rare, so the method
     cache — which only pays off on repeats — stays cold and nearly every
     read is a miss. This is the mix the cache cannot help with and
     replicas can: each replica is one more SQL engine serving misses off
     the primary's commit pipeline. (A14 covers the opposite regime, a
     few hot accounts where the cache absorbs the repeats.) *)
  let kind =
    Workload.Generator.Read_heavy
      { accounts = 48; max_delta = 3; reads_per_write }
  in
  let scripts =
    List.init clients (fun i ~issue ->
        List.iter
          (fun body -> ignore (issue body))
          (Workload.Generator.bodies ~seed:(seed + (31 * i)) ~n:requests kind))
  in
  (* retransmit later than the default 400 ms: a loaded replica answers in
     a few SQL rounds (~0.5 s), and every premature retry lands on the
     next server, which then runs its own replica read of the same rid *)
  let e, c =
    Simrun.cluster ~seed ~obs:reg ~shards:1 ~n_app_servers:servers ~cache:true
      ~replicas ~client_period:1_500.
      ~seed_data:(Workload.Generator.seed_data_of kind)
      ~business:(Workload.Generator.business_of kind)
      ~scripts ()
  in
  if not (Cluster.run_to_quiescence ~deadline:3_600_000. c) then
    failwith "replica_sweep: run did not quiesce";
  (match Cluster.Spec.check_all c with
  | [] -> ()
  | vs -> failwith ("replica_sweep: spec violated: " ^ String.concat "; " vs));
  let records = Cluster.all_records c in
  let delivered = List.length records in
  if delivered <> clients * requests then
    failwith "replica_sweep: not every request delivered";
  let read_records =
    List.filter
      (fun (r : Etx.Client.record) ->
        String.length r.result >= 8 && String.sub r.result 0 8 = "balance:")
      records
  in
  let reads = List.length read_records in
  let rn = float_of_int reads in
  let vs = Dsim.Engine.now_of e /. 1_000. in
  let hits = Obs.Registry.counter_total reg "cache.hit" in
  let misses = Obs.Registry.counter_total reg "cache.miss" in
  {
    rep_replicas = replicas;
    rep_reads = reads;
    rep_read_tx_per_vs = rn /. vs;
    rep_served = Obs.Registry.counter_total reg "server.replica_served";
    rep_fallbacks = Obs.Registry.counter_total reg "server.replica_fallback";
    rep_hit_rate =
      (if hits + misses = 0 then 0.
       else float_of_int hits /. float_of_int (hits + misses));
    rep_mean_read_latency_ms =
      (if reads = 0 then 0.
       else List.fold_left ( +. ) 0. (latencies read_records) /. rn);
  }

let replica_sweep ?(seed = 42) ?(clients = 8) ?(requests = 8)
    ?(reads_per_write = 7) ?(servers = 3) ?(points = replica_points) ?domains
    () =
  run_trials ?domains
    (List.map
       (fun replicas ->
         {
           label = Printf.sprintf "replica-%d" replicas;
           seed;
           run =
             (fun ~seed ->
               replica_run ~seed ~clients ~requests ~reads_per_write ~servers
                 ~replicas);
         })
       points)

let render_replica rows =
  let headers =
    [
      "replicas";
      "reads";
      "read tx/vsec";
      "replica-served";
      "fallbacks";
      "hit rate";
      "read latency";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.rep_replicas;
          string_of_int r.rep_reads;
          Printf.sprintf "%.1f" r.rep_read_tx_per_vs;
          string_of_int r.rep_served;
          string_of_int r.rep_fallbacks;
          Printf.sprintf "%.0f%%" (r.rep_hit_rate *. 100.);
          Stats.Table.fmt_ms r.rep_mean_read_latency_ms;
        ])
      rows
  in
  "A15c — change-log read replicas: cache-miss reads served at bounded \
   staleness, across replica counts (method cache on; spec incl. replica \
   consistency asserted per row)\n"
  ^ Stats.Table.render ~headers ~rows:body

(* ------------------------------------------------------------------ *)
(* CSV export *)

let csv_lines rows = String.concat "\n" (List.map (String.concat ",") rows)

let csv_figure8 f =
  let header =
    "component" :: List.map (fun p -> p.protocol) f.protocols
  in
  let component_row name =
    name
    :: List.map
         (fun p -> Printf.sprintf "%.3f" (List.assoc name p.components))
         f.protocols
  in
  csv_lines
    ((header :: List.map component_row fig8_component_order)
    @ [
        "other"
        :: List.map (fun p -> Printf.sprintf "%.3f" p.other) f.protocols;
        "total"
        :: List.map (fun p -> Printf.sprintf "%.3f" p.total) f.protocols;
        "overhead_pct"
        :: List.map (fun p -> Printf.sprintf "%.2f" p.overhead_pct) f.protocols;
      ])

let csv_figure7 rows =
  csv_lines
    ([ "protocol"; "app_messages"; "all_messages"; "steps"; "forced_ios" ]
    :: List.map
         (fun r ->
           [
             r.proto;
             string_of_int r.app_messages;
             string_of_int r.all_messages;
             string_of_int r.steps;
             string_of_int r.forced_ios;
           ])
         rows)

let csv_figure1 scenarios =
  csv_lines
    ([ "scenario"; "delivered"; "tries"; "cleaner"; "violations" ]
    :: List.map
         (fun s ->
           [
             s.label;
             string_of_bool s.delivered;
             string_of_int s.tries;
             Option.value ~default:"" s.cleaner_outcome;
             string_of_int (List.length s.violations);
           ])
         scenarios)

let csv_sweep2 ~header rows =
  csv_lines
    (String.split_on_char ',' header
    :: List.map
         (fun (x, y, n) ->
           [ Printf.sprintf "%.3f" x; Printf.sprintf "%.3f" y; string_of_int n ])
         rows)

let csv_backoff rows =
  csv_lines
    ([ "backoff_ms"; "nice_ms"; "failover_ms" ]
    :: List.map
         (fun (p, nice, failover) ->
           [
             Printf.sprintf "%.3f" p;
             Printf.sprintf "%.3f" nice;
             Printf.sprintf "%.3f" failover;
           ])
         rows)

let csv_dbs rows =
  csv_lines
    ([ "databases"; "baseline_ms"; "ar_ms"; "tpc_ms" ]
    :: List.map
         (fun (n, b, a, t) ->
           [
             string_of_int n;
             Printf.sprintf "%.3f" b;
             Printf.sprintf "%.3f" a;
             Printf.sprintf "%.3f" t;
           ])
         rows)

let csv_batch rows =
  csv_lines
    ([ "batch"; "tx_per_vs"; "msgs_per_commit"; "mean_latency_ms"; "mean_fill" ]
    :: List.map
         (fun r ->
           [
             string_of_int r.batch;
             Printf.sprintf "%.3f" r.tx_per_vs;
             Printf.sprintf "%.3f" r.msgs_per_commit;
             Printf.sprintf "%.3f" r.mean_latency_ms;
             Printf.sprintf "%.3f" r.mean_fill;
           ])
         rows)

let csv_read rows =
  csv_lines
    ([
       "servers";
       "cache";
       "reads";
       "tx_per_vs";
       "read_tx_per_vs";
       "msgs_per_read";
       "hit_rate";
       "mean_read_latency_ms";
     ]
    :: List.map
         (fun r ->
           [
             string_of_int r.servers;
             string_of_bool r.cache;
             string_of_int r.reads;
             Printf.sprintf "%.3f" r.tx_per_vs;
             Printf.sprintf "%.3f" r.read_tx_per_vs;
             Printf.sprintf "%.3f" r.msgs_per_read;
             Printf.sprintf "%.4f" r.hit_rate;
             Printf.sprintf "%.3f" r.mean_read_latency_ms;
           ])
         rows)

let csv_gc rows =
  csv_lines
    ([
       "batch";
       "group_commit";
       "forces";
       "forces_per_commit";
       "tx_per_vs";
       "mean_latency_ms";
     ]
    :: List.map
         (fun r ->
           [
             string_of_int r.gc_batch;
             string_of_bool r.gc_on;
             string_of_int r.forces;
             Printf.sprintf "%.4f" r.forces_per_commit;
             Printf.sprintf "%.3f" r.gc_tx_per_vs;
             Printf.sprintf "%.3f" r.gc_mean_latency_ms;
           ])
         rows)

let csv_recovery rows =
  csv_lines
    ([ "commits"; "checkpointed"; "log_len"; "replay_steps"; "replay_ms" ]
    :: List.map
         (fun r ->
           [
             string_of_int r.commits;
             string_of_bool r.checkpointed;
             string_of_int r.log_len;
             string_of_int r.steps;
             Printf.sprintf "%.4f" r.replay_ms;
           ])
         rows)

let csv_cross rows =
  csv_lines
    ([
       "shards";
       "cross_ratio";
       "cross";
       "requests";
       "delivered";
       "mean_participants";
       "events";
       "vtime_ms";
       "tx_per_vs";
       "msgs_per_commit";
     ]
    :: List.map
         (fun r ->
           [
             string_of_int r.cx_shards;
             Printf.sprintf "%.2f" r.cx_ratio;
             string_of_int r.cx_cross;
             string_of_int r.cx_requests;
             string_of_int r.cx_delivered;
             Printf.sprintf "%.3f" r.cx_mean_participants;
             string_of_int r.cx_events;
             Printf.sprintf "%.1f" r.cx_vtime_ms;
             Printf.sprintf "%.3f" r.cx_tx_per_vs;
             Printf.sprintf "%.3f" r.cx_msgs_per_commit;
           ])
         rows)

let csv_replica rows =
  csv_lines
    ([
       "replicas";
       "reads";
       "read_tx_per_vs";
       "replica_served";
       "fallbacks";
       "hit_rate";
       "mean_read_latency_ms";
     ]
    :: List.map
         (fun r ->
           [
             string_of_int r.rep_replicas;
             string_of_int r.rep_reads;
             Printf.sprintf "%.3f" r.rep_read_tx_per_vs;
             string_of_int r.rep_served;
             string_of_int r.rep_fallbacks;
             Printf.sprintf "%.4f" r.rep_hit_rate;
             Printf.sprintf "%.3f" r.rep_mean_read_latency_ms;
           ])
         rows)
