(* Convenience constructors: one call builds a deployment (or comparison
   protocol) on a fresh simulator engine and returns both, so harness sweeps
   and tests keep direct access to engine-only facilities (crash_at, trace,
   seqdiag) alongside the backend-agnostic handle. *)

let engine ?(seed = 1) ?(tracing = true) ?obs () =
  let e = Dsim.Engine.create ~seed ~tracing ?obs () in
  (e, Dsim.Runtime_sim.of_engine e)

let deployment ?seed ?tracing ?obs ?net ?n_app_servers ?n_dbs ?fd_spec ?timing
    ?disk_force_latency ?seed_data ?client_period ?clean_period ?poll
    ?gc_after ?backend ?recoverable ?register_disk_latency ?breakdown ?batch
    ?cache ?group_commit ?replicas ?replica_bound ?ship_period ~business
    ~script () =
  let e, rt = engine ?seed ?tracing ?obs () in
  let d =
    Etx.Deployment.build ?net ?n_app_servers ?n_dbs ?fd_spec ?timing
      ?disk_force_latency ?seed_data ?client_period ?clean_period ?poll
      ?gc_after ?backend ?recoverable ?register_disk_latency ?breakdown ?batch
      ?cache ?group_commit ?replicas ?replica_bound ?ship_period ~rt
      ~business ~script ()
  in
  (e, d)

let cluster ?seed ?tracing ?obs ?net ?map ?shards ?n_app_servers ?n_dbs ?fd_spec
    ?timing ?disk_force_latency ?seed_data ?client_period ?clean_period ?poll
    ?gc_after ?backend ?recoverable ?register_disk_latency ?batch ?cache
    ?group_commit ?replicas ?replica_bound ?ship_period ?cross ?reconfig
    ?provision ~business ~scripts () =
  let e, rt = engine ?seed ?tracing ?obs () in
  let c =
    Cluster.build ?net ?map ?shards ?n_app_servers ?n_dbs ?fd_spec ?timing
      ?disk_force_latency ?seed_data ?client_period ?clean_period ?poll
      ?gc_after ?backend ?recoverable ?register_disk_latency ?batch ?cache
      ?group_commit ?replicas ?replica_bound ?ship_period ?cross ?reconfig
      ?provision ~rt ~business ~scripts ()
  in
  (e, c)

let baseline ?seed ?tracing ?obs ?net ?n_dbs ?timing ?disk_force_latency ?seed_data
    ?client_period ?breakdown ~business ~script () =
  let e, rt = engine ?seed ?tracing ?obs () in
  let b =
    Baselines.Baseline.build ?net ?n_dbs ?timing ?disk_force_latency
      ?seed_data ?client_period ?breakdown ~rt ~business ~script ()
  in
  (e, b)

let tpc ?seed ?tracing ?obs ?net ?n_dbs ?timing ?disk_force_latency ?seed_data
    ?client_period ?breakdown ~business ~script () =
  let e, rt = engine ?seed ?tracing ?obs () in
  let t =
    Baselines.Tpc.build ?net ?n_dbs ?timing ?disk_force_latency ?seed_data
      ?client_period ?breakdown ~rt ~business ~script ()
  in
  (e, t)

let pbackup ?seed ?tracing ?obs ?net ?n_dbs ?timing ?disk_force_latency ?seed_data
    ?client_period ?breakdown ?backup_fd ?takeover_check ~business ~script ()
    =
  let e, rt = engine ?seed ?tracing ?obs () in
  let p =
    Baselines.Pbackup.build ?net ?n_dbs ?timing ?disk_force_latency ?seed_data
      ?client_period ?breakdown ?backup_fd ?takeover_check ~rt ~business
      ~script ()
  in
  (e, p)
