(** Message classification for trace analyses.

    The engine's trace records every send, including reliable-channel frames
    and acknowledgements, failure-detector heartbeats and local self-sends.
    The paper's communication-step figures (Figs. 1 and 7) count {e protocol
    messages}; these helpers unwrap channel frames and filter the noise. *)

open Dsim
open Runtime

type kind =
  | Application  (** requests, results, XA traffic, prepares, decides *)
  | Consensus  (** wo-register implementation traffic *)
  | Overhead  (** channel acks/kicks, heartbeats, local wake-ups *)

val kind_of : Types.message -> kind

val protocol_subject : Types.message -> bool
(** Application + consensus messages between distinct processes — what the
    paper's diagrams draw arrows for. *)

val application_subject : Types.message -> bool
(** Application messages only (excludes the register-write substrate). *)

val protocol_messages : Trace.t -> int
val application_messages : Trace.t -> int
val protocol_steps : Trace.t -> int
(** Longest causal chain of protocol messages — the "communication steps"
    of the paper's figures. *)
