open Dsim
open Runtime

let outcome_label = function
  | Dbms.Rm.Commit -> "commit"
  | Dbms.Rm.Abort -> "abort"

let vote_label = function Dbms.Rm.Yes -> "yes" | Dbms.Rm.No -> "no"

let xid_label x = Dbms.Xid.to_string x

let payload_label payload =
  match payload with
  | Etx.Etx_types.Request_msg { request; j; _ } ->
      Some (Printf.sprintf "Request(r%d,j=%d)" request.rid j)
  | Etx.Etx_types.Result_msg { rid; j; decision; _ } ->
      Some
        (Printf.sprintf "Result(r%d,j=%d,%s)" rid j
           (outcome_label decision.outcome))
  | Dbms.Msg.Xa_start { xid } -> Some ("XaStart(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Xa_started { xid } -> Some ("XaStarted(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Xa_end { xid } -> Some ("XaEnd(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Xa_ended { xid } -> Some ("XaEnded(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Exec_req { xid; ops; _ } ->
      Some (Printf.sprintf "Exec(%s,%d ops)" (xid_label xid) (List.length ops))
  | Dbms.Msg.Exec_reply { xid; reply; _ } ->
      let r =
        match reply with
        | Dbms.Rm.Exec_ok { business_ok = true; _ } -> "ok"
        | Dbms.Rm.Exec_ok { business_ok = false; _ } -> "user-abort"
        | Dbms.Rm.Exec_conflict k -> "conflict:" ^ k
        | Dbms.Rm.Exec_rejected -> "rejected"
      in
      Some (Printf.sprintf "ExecReply(%s,%s)" (xid_label xid) r)
  | Dbms.Msg.Prepare { xid } -> Some ("Prepare(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Vote_msg { xid; vote } ->
      Some (Printf.sprintf "Vote(%s,%s)" (xid_label xid) (vote_label vote))
  | Dbms.Msg.Decide { xid; outcome } ->
      Some
        (Printf.sprintf "Decide(%s,%s)" (xid_label xid)
           (outcome_label outcome))
  | Dbms.Msg.Ack_decide { xid } -> Some ("AckDecide(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Ready -> Some "Ready"
  | Dbms.Msg.Commit1 { xid } -> Some ("Commit1(" ^ xid_label xid ^ ")")
  | Dbms.Msg.Commit1_reply { xid; outcome } ->
      Some
        (Printf.sprintf "Commit1Reply(%s,%s)" (xid_label xid)
           (outcome_label outcome))
  | _ -> None

(* consensus messages get generic labels only when requested *)
let consensus_label payload =
  if Consensus.Agent.is_consensus_message payload then Some "consensus" else None

let render ?(include_consensus = false) ?(max_lines = 200) ~names trace =
  let buffer = Buffer.create 4096 in
  let lines = ref 0 in
  let elided = ref 0 in
  let emit at text =
    if !lines < max_lines then begin
      Buffer.add_string buffer (Printf.sprintf "[%9.1f] %s\n" at text);
      incr lines
    end
    else incr elided
  in
  let message_line (m : Types.message) =
    if m.src = m.dst then None
    else
      match Dnet.Rchannel.inner_payload m.payload with
      | Some _ ->
          (* a channel frame: its deduplicated redelivery (same src, inner
             payload) is the event worth drawing, so skip the frame *)
          None
      | None -> (
          match payload_label m.payload with
          | Some label -> Some (label, m)
          | None ->
              if include_consensus then
                match consensus_label m.payload with
                | Some label -> Some (label, m)
                | None -> None
              else None)
  in
  List.iter
    (fun (e : Trace.entry) ->
      match e.event with
      | Trace.Delivered m -> (
          match message_line m with
          | Some (label, m) ->
              emit e.at
                (Printf.sprintf "%-8s --%s-->  %s" (names m.src) label
                   (names m.dst))
          | None -> ())
      | Trace.Crashed p -> emit e.at (Printf.sprintf "%-8s CRASH" (names p))
      | Trace.Recovered p ->
          emit e.at (Printf.sprintf "%-8s RECOVER" (names p))
      | Trace.Note (p, s)
        when String.length s > 8 && String.sub s 0 8 = "cleaned:" ->
          emit e.at (Printf.sprintf "%-8s %s" (names p) s)
      | Trace.Note _ | Trace.Sent _ | Trace.Dropped _ | Trace.Dead_letter _
      | Trace.Spawned _ | Trace.Work _ ->
          ())
    (Trace.entries trace);
  if !elided > 0 then
    Buffer.add_string buffer (Printf.sprintf "... (%d more events)\n" !elided);
  Buffer.contents buffer

let of_engine ?include_consensus ?max_lines engine =
  render ?include_consensus ?max_lines
    ~names:(fun pid -> Engine.name_of engine pid)
    (Engine.trace engine)

(* Timeline rendering of an observability registry: span opens/closes plus
   events (notes, crash/recover), merged and time-ordered. Unlike
   {!of_engine} this needs no simulator trace, so it works identically on
   the live backend — the span layer's replacement for trace-based
   diagrams. *)
let of_obs ?(max_lines = 200) reg =
  let items = ref [] in
  List.iter
    (fun (e : Obs.Span.event) ->
      let text =
        match e.ename with
        | "crash" -> Printf.sprintf "%-8s CRASH" e.enode
        | "recover" -> Printf.sprintf "%-8s RECOVER" e.enode
        | name ->
            Printf.sprintf "%-8s %s%s" e.enode name
              (if e.detail = "" then "" else " " ^ e.detail)
      in
      items := (e.eat, text) :: !items)
    (Obs.Registry.events reg);
  List.iter
    (fun (s : Obs.Span.t) ->
      items :=
        (s.start, Printf.sprintf "%-8s +%s r%d" s.node s.name s.trace)
        :: !items;
      if Obs.Span.closed s then
        items :=
          (s.stop, Printf.sprintf "%-8s -%s r%d" s.node s.name s.trace)
          :: !items)
    (Obs.Registry.spans reg);
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !items)
  in
  let buffer = Buffer.create 4096 in
  let lines = ref 0 in
  let elided = ref 0 in
  List.iter
    (fun (at, text) ->
      if !lines < max_lines then begin
        Buffer.add_string buffer (Printf.sprintf "[%9.1f] %s\n" at text);
        incr lines
      end
      else incr elided)
    sorted;
  if !elided > 0 then
    Buffer.add_string buffer (Printf.sprintf "... (%d more events)\n" !elided);
  Buffer.contents buffer
