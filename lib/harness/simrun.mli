(** Build deployments on a fresh simulator engine in one call.

    The protocol builders ({!Etx.Deployment.build} and the
    {!Baselines} equivalents) are backend-agnostic: they take a runtime
    capability and never see the engine. Simulator-based sweeps and tests,
    however, routinely need the engine itself — for [crash_at], the trace,
    sequence diagrams, or virtual-time inspection — so these wrappers create
    the engine, adapt it with {!Dsim.Runtime_sim.of_engine}, run the builder,
    and return both. *)

val engine :
  ?seed:int ->
  ?tracing:bool ->
  ?obs:Obs.Registry.t ->
  unit ->
  Dsim.Engine.t * Runtime.Etx_runtime.t
(** A fresh engine plus its runtime capability (seed defaults to 1, tracing
    on — the historical deployment defaults). [?obs] opts in observability
    exactly as on {!Dsim.Engine.create}. *)

val deployment :
  ?seed:int ->
  ?tracing:bool ->
  ?obs:Obs.Registry.t ->
  ?net:Runtime.Etx_runtime.netmodel ->
  ?n_app_servers:int ->
  ?n_dbs:int ->
  ?fd_spec:Etx.Appserver.fd_spec ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?clean_period:float ->
  ?poll:float ->
  ?gc_after:float ->
  ?backend:Etx.Appserver.register_backend ->
  ?recoverable:bool ->
  ?register_disk_latency:float ->
  ?breakdown:Stats.Breakdown.t ->
  ?batch:int ->
  ?cache:bool ->
  ?group_commit:bool ->
  ?replicas:int ->
  ?replica_bound:int ->
  ?ship_period:float ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  Dsim.Engine.t * Etx.Deployment.t

val cluster :
  ?seed:int ->
  ?tracing:bool ->
  ?obs:Obs.Registry.t ->
  ?net:Runtime.Etx_runtime.netmodel ->
  ?map:Etx.Shard_map.t ->
  ?shards:int ->
  ?n_app_servers:int ->
  ?n_dbs:int ->
  ?fd_spec:Etx.Appserver.fd_spec ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?clean_period:float ->
  ?poll:float ->
  ?gc_after:float ->
  ?backend:Etx.Appserver.register_backend ->
  ?recoverable:bool ->
  ?register_disk_latency:float ->
  ?batch:int ->
  ?cache:bool ->
  ?group_commit:bool ->
  ?replicas:int ->
  ?replica_bound:int ->
  ?ship_period:float ->
  ?cross:bool ->
  ?reconfig:bool ->
  ?provision:int ->
  business:Etx.Business.t ->
  scripts:(issue:(string -> Etx.Client.record) -> unit) list ->
  unit ->
  Dsim.Engine.t * Cluster.t
(** A sharded {!Cluster} on a fresh engine — one script per client. *)

val baseline :
  ?seed:int ->
  ?tracing:bool ->
  ?obs:Obs.Registry.t ->
  ?net:Runtime.Etx_runtime.netmodel ->
  ?n_dbs:int ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?breakdown:Stats.Breakdown.t ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  Dsim.Engine.t * Baselines.Baseline.t

val tpc :
  ?seed:int ->
  ?tracing:bool ->
  ?obs:Obs.Registry.t ->
  ?net:Runtime.Etx_runtime.netmodel ->
  ?n_dbs:int ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?breakdown:Stats.Breakdown.t ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  Dsim.Engine.t * Baselines.Tpc.t

val pbackup :
  ?seed:int ->
  ?tracing:bool ->
  ?obs:Obs.Registry.t ->
  ?net:Runtime.Etx_runtime.netmodel ->
  ?n_dbs:int ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?breakdown:Stats.Breakdown.t ->
  ?backup_fd:(Runtime.Etx_runtime.t -> Dnet.Fdetect.t) ->
  ?takeover_check:float ->
  business:Etx.Business.t ->
  script:(issue:(string -> Etx.Client.record) -> unit) ->
  unit ->
  Dsim.Engine.t * Baselines.Pbackup.t
