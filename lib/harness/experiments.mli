(** Drivers that regenerate every table and figure of the paper's
    evaluation, plus the ablations called out in DESIGN.md.

    Each driver returns structured data and has a [render_*] companion that
    prints a table in the shape the paper uses. All runs are deterministic
    for a given seed.

    Every sweep is a list of self-contained {!trial}s mapped over a domain
    pool ({!Dsim.Pool}): each trial builds its own engine, RNG, trace and
    statistics inside its [run] function, so trials share no mutable state
    and the results are bit-identical whatever the [?domains] argument —
    parallelism only changes wall-clock time. *)

(** {1 Trials and the domain pool} *)

type 'a trial = { label : string; seed : int; run : seed:int -> 'a }
(** A self-contained unit of experimental work: [run ~seed] must build
    everything it touches (engine, processes, statistics) internally. *)

val default_domains : int ref
(** Domain count used by every sweep whose [?domains] argument is omitted.
    Defaults to 1 (fully sequential). Mutate once at startup (e.g. from a
    [--domains] flag); do not mutate concurrently with running sweeps. *)

val run_trials : ?domains:int -> 'a trial list -> 'a list
(** Map [trial.run] over the list via {!Dsim.Pool.map}, preserving input
    order. [?domains] defaults to [!default_domains]. *)

(** {1 E1/E4 — Figure 8: latency components and the cost of reliability} *)

type fig8_protocol = {
  protocol : string;
  components : (string * float) list;
      (** mean ms per transaction for each Figure 8 row *)
  other : float;
  total : float;  (** mean client-visible latency *)
  overhead_pct : float;  (** vs the baseline protocol *)
  ci90_ratio : float;  (** paper methodology: must stay below 10% *)
}

type fig8 = { transactions : int; protocols : fig8_protocol list }

val figure8 : ?transactions:int -> ?seed:int -> ?domains:int -> unit -> fig8
(** Runs baseline, asynchronous replication (this paper), 2PC, and — as a
    validation the paper argued analytically — primary-backup, each over
    [transactions] identical bank-account updates (default 40). *)

val render_figure8 : fig8 -> string

(** {1 E2 — Figure 7: communication in failure-free executions} *)

type fig7_row = {
  proto : string;
  app_messages : int;  (** application-level messages for one request *)
  all_messages : int;  (** including the wo-register substrate *)
  steps : int;  (** longest causal message chain *)
  forced_ios : int;  (** eager log writes at the application tier *)
}

val figure7 : ?seed:int -> ?domains:int -> unit -> fig7_row list

val render_figure7 : fig7_row list -> string

(** {1 E3 — Figure 1: the four canonical executions} *)

type fig1_scenario = {
  label : string;
  delivered : bool;
  tries : int;  (** final result identifier [j] *)
  cleaner_outcome : string option;
      (** what the cleaning thread terminated with, if it ran *)
  violations : string list;  (** must be empty *)
}

val figure1 : ?seed:int -> ?domains:int -> unit -> fig1_scenario list

val render_figure1 : fig1_scenario list -> string

(** {1 A1–A4 — ablations} *)

val failover_sweep :
  ?seed:int ->
  ?timeouts:float list ->
  ?domains:int ->
  unit ->
  (float * float * int) list
(** Heartbeat-detector timeout vs client-visible latency (and tries) of a
    request whose primary crashes mid-compute. *)

val render_failover : (float * float * int) list -> string

val backoff_sweep :
  ?seed:int ->
  ?periods:float list ->
  ?domains:int ->
  unit ->
  (float * float * float) list
(** Client back-off period vs (nice-run latency, fail-over latency). *)

val render_backoff : (float * float * float) list -> string

val loss_sweep :
  ?seed:int ->
  ?rates:float list ->
  ?domains:int ->
  unit ->
  (float * float * int) list
(** Message-loss rate vs mean latency and protocol message count (the
    reliable-channel retransmission cost). *)

val render_loss : (float * float * int) list -> string

val db_sweep :
  ?seed:int ->
  ?counts:int list ->
  ?domains:int ->
  unit ->
  (int * float * float * float) list
(** Number of databases vs mean latency for baseline / AR / 2PC (prepare
    fan-out happens in parallel, so the curves should stay nearly flat —
    the three-tier scalability argument). *)

val render_dbs : (int * float * float * float) list -> string

val persistence_ablation :
  ?seed:int -> ?transactions:int -> ?domains:int -> unit -> (string * float) list
(** A5: why the paper keeps the middle tier diskless. Mean nice-run latency
    of (i) the diskless protocol, (ii) the crash-recovery variant with
    persistent registers (forced IO on every register write, enabling
    application-server recovery), and (iii) 2PC for reference: persistence
    pushes the e-Transaction protocol past 2PC's cost. *)

val render_persistence : (string * float) list -> string

val consensus_failover_sweep :
  ?seed:int ->
  ?round_timeouts:float list ->
  ?domains:int ->
  unit ->
  (float * float) list
(** A6: the paper's closing remark — response time under failures depends on
    the consensus being optimised for failure cases. Measures the latency of
    a wo-register write whose round-0 coordinator has crashed, as a function
    of the consensus round timeout (the failure detector is made useless so
    the timeout is the only escape). Returns (round timeout, decision
    latency). *)

val render_consensus_failover : (float * float) list -> string

val throughput_sweep :
  ?seed:int ->
  ?clients:int list ->
  ?requests_per_client:int ->
  ?domains:int ->
  unit ->
  (int * float * float) list
(** A7: aggregate throughput vs number of concurrent clients, with all
    clients hammering one hot account (lock contention) vs each client
    owning its account (disjoint). Returns
    (clients, contended tx/s, disjoint tx/s). *)

val render_throughput : (int * float * float) list -> string

val scale_points : (int * int) list
(** Default (app servers, clients) points for {!scale_sweep}:
    (3,1) (3,8) (5,32) (10,128) (25,512). *)

val scale_sweep :
  ?seed:int ->
  ?points:(int * int) list ->
  ?requests_per_client:int ->
  unit ->
  (int * int * int * float * float) list
(** A10: substrate scalability. For each (app servers, clients) point, run a
    full deployment with disjoint accounts until every client script
    finishes, and report (servers, clients, simulated events, wall-clock
    seconds, events/sec). Unlike the other experiments this measures the
    simulator itself (wall-clock, host-dependent), so points run
    sequentially on one domain. *)

val render_scale : (int * int * int * float * float) list -> string

type shard_row = {
  shards : int;
  clients : int;
  requests : int;  (** total issued across all clients *)
  delivered : int;
  events : int;  (** simulation events to quiescence *)
  vtime_ms : float;  (** virtual time at quiescence *)
  tx_per_vs : float;  (** delivered per {e virtual} second *)
  wall_s : float;  (** host wall-clock cost of the trial *)
}

val shard_points : int list
(** Default shard counts for {!shard_sweep}: 1, 2, 4. *)

val shard_sweep :
  ?seed:int ->
  ?points:int list ->
  ?clients_per_shard:int ->
  ?requests_per_client:int ->
  ?domains:int ->
  unit ->
  shard_row list
(** A11: shard scaling. For each shard count S, build an S-shard
    {!Cluster} serving [clients_per_shard] clients per shard (each client
    owning one account on its shard), run to quiescence, assert
    {!Cluster.Spec.check_all} is clean, and report virtual-time throughput
    (delivered transactions per simulated second). Shards run in parallel
    in virtual time, so throughput scaling with S — at roughly flat
    quiescence time — is the point of the artefact. Deterministic per seed;
    trials map over the domain pool. *)

val render_shard : shard_row list -> string

type cross_row = {
  cx_shards : int;
  cx_ratio : float;  (** requested cross-shard fraction of the workload *)
  cx_clients : int;
  cx_requests : int;
  cx_cross : int;  (** bodies whose two accounts live on different shards *)
  cx_delivered : int;
  cx_mean_participants : float;
      (** mean distinct shards per delivered transfer *)
  cx_events : int;
  cx_vtime_ms : float;
  cx_tx_per_vs : float;
  cx_msgs_per_commit : float;
  cx_wall_s : float;
}

val cross_points : (int * float) list
(** Default {!cross_sweep} grid: shards 2 and 4 × cross ratio 0, 0.1, 0.5,
    1. *)

val cross_sweep :
  ?seed:int ->
  ?points:(int * float) list ->
  ?clients:int ->
  ?requests:int ->
  ?domains:int ->
  unit ->
  cross_row list
(** A16: cross-shard commit cost. For each (shards, cross ratio) point,
    build a cluster with [~cross:true], feed it [requests] bank transfers of
    which the given fraction have a foreign-shard destination
    ({!Workload.Generator.sharded_bodies} with [cross_ratio]), run to
    quiescence, assert {!Cluster.Spec.check_all} — including global
    atomicity — is clean, and report virtual-time throughput plus protocol
    messages per delivered commit alongside the mean participant count.
    Ratio 0 reproduces the classic intra-shard workload, so the first row
    of each shard count is the zero-overhead baseline. Deterministic per
    seed; trials map over the domain pool. *)

val render_cross : cross_row list -> string

type migrate_row = {
  mg_clients : int;
  mg_requests : int;  (** issued across all clients *)
  mg_delivered : int;
  mg_before_tx_per_vs : float;
  mg_during_tx_per_vs : float;
  mg_after_tx_per_vs : float;
  mg_during_ms : float;  (** split -> flip window, virtual ms *)
  mg_drain_ms : float;  (** source databases' seal-to-drained time *)
  mg_keys_moved : int;
  mg_bounced : int;
  mg_map_refresh : int;
  mg_events : int;
  mg_wall_s : float;
}

val migrate_sweep :
  ?seed:int -> ?issues:int -> ?domains:int -> unit -> migrate_row list
(** A17: elastic reconfiguration. Warm a 2-shard cluster (one
    pre-provisioned spare group) with bank-update traffic, split group 0's
    slots toward the spare while the clients keep issuing, and report
    virtual-time throughput before / during / after the [split, flip]
    window, the sealed sources' drain time, and the copy and re-routing
    counters ([migrate.keys_moved], [migrate.bounced],
    [client.map_refresh]). Asserts the full cluster spec — migration
    integrity and exactly-once included — and that every issued request was
    delivered exactly once. Deterministic per seed. *)

val render_migrate : migrate_row list -> string

val register_backend_comparison :
  ?seed:int -> ?domains:int -> unit -> (string * float * float) list
(** A8: the two wo-register substrates compared — the Chandra–Toueg agent
    (with a perfect and with a useless failure detector) and the Synod
    (Paxos) backend. For each: latency of a failure-free write by the
    default primary, and of a write by a backup while the round-0
    coordinator/ballot-0 owner is crashed. Returns
    (backend, nice write, fail-over write) in ms. *)

val render_register_backends : (string * float * float) list -> string

val fd_quality_sweep :
  ?seed:int ->
  ?requests:int ->
  ?timeouts:float list ->
  ?domains:int ->
  unit ->
  (float * int * int * float) list
(** A9: the paper's §5 claim that failure-suspicion mistakes never cost
    consistency, only performance. Under a jittery network, sweep the
    heartbeat detector's initial timeout and measure, over [requests]
    failure-free requests: spurious cleanings (the cleaning thread aborting
    a perfectly alive primary), extra client tries, and mean latency. The
    specification is asserted to hold in every configuration. Returns
    (timeout, spurious cleanings, total tries beyond one, mean latency). *)

val render_fd_quality : (float * int * int * float) list -> string

type phase_row = { phase : string; mean_ms : float; share_pct : float }

type failover_phase_report = {
  trials : int;
  mean_latency_ms : float;
  mean_tries : float;
  abandoned_spans : float;  (** mean spans left open by the crash *)
  phases : phase_row list;
  other_ms : float;
}

val failover_phase_names : string list
(** The attributed phases, in pipeline order:
    election, compute, prepare, consensus, terminate. *)

val failover_phases :
  ?seed:int -> ?trials:int -> ?domains:int -> unit -> failover_phase_report
(** A12: per-phase latency attribution of the fail-over path, measured from
    the observability span layer rather than the simulator trace. Re-runs
    the Figure 1(c) scenario (primary crashed mid-request) [trials] times
    with a registry attached and splits the committed request's mean
    client-visible latency into closed-span time per phase; the crashed
    owner's never-closed spans are reported as abandoned work, and the
    unattributed residue (failure detection, client back-off, transport)
    as [other_ms]. *)

val render_failover_phases : failover_phase_report -> string

type batch_row = {
  batch : int;  (** window cap (1 = classic, unbatched path) *)
  tx_per_vs : float;  (** delivered requests per virtual second *)
  msgs_per_commit : float;  (** protocol messages per delivered request *)
  mean_latency_ms : float;
  mean_fill : float;  (** mean transactions per assembled window *)
}

val batch_points : int list
(** The default sweep caps: 1, 4, 16, 64. *)

val batch_sweep :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?points:int list ->
  ?domains:int ->
  unit ->
  batch_row list
(** A13: single-shard throughput and message amortization against the
    batch cap. [clients] (default 128 — at least twice the deepest default
    cap, so consecutive windows serve disjoint client sets and never
    contend on the previous window's still-held locks) concurrent clients
    on disjoint accounts each issue [requests] (default 2) updates, so the
    leaseholder drains a deep queue; every run must deliver everything and
    quiesce. *)

val render_batch : batch_row list -> string

val batch_phases :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?batches:int list ->
  ?domains:int ->
  unit ->
  (int * phase_row list) list
(** A13b: amortized per-commit phase cost (closed-span ms over delivered
    requests), classic path versus a deep window, using the same phase
    names as {!failover_phases} so the A12 and A13b tables line up.
    Default [batches] is [[1; 16]]. *)

val render_batch_phases : (int * phase_row list) list -> string

type read_row = {
  servers : int;  (** app servers in the (single) group *)
  cache : bool;  (** method cache + commit-piggybacked invalidation on? *)
  reads : int;  (** delivered read (audit) requests *)
  tx_per_vs : float;  (** all delivered requests per virtual second *)
  read_tx_per_vs : float;  (** delivered reads per virtual second *)
  msgs_per_read : float;  (** protocol messages on the wire per read *)
  hit_rate : float;  (** cache.hit / (cache.hit + cache.miss); 0 when off *)
  mean_read_latency_ms : float;
}

val read_points : int list
(** Default app-server counts for {!read_sweep}: 1, 2, 3, 4. *)

val read_sweep :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?reads_per_write:int ->
  ?points:int list ->
  ?domains:int ->
  unit ->
  read_row list
(** A14: the method cache under a read-dominant mix. For each app-server
    count in [points] × cache off/on, run a single-shard cluster of
    [clients] clients each issuing [requests] {!Workload.Generator.Read_heavy}
    bodies (audits with one update every [reads_per_write + 1] requests
    over a few hot accounts), run to quiescence, and assert
    {!Cluster.Spec.check_all} — including per-shard cache coherence — is
    clean. With caching on, clients rotate their first-try server, so
    cached read throughput scales with the server count while the uncached
    curve stays flat and messages per read collapse (a hit is one
    request/response round trip). Deterministic per seed. *)

val render_read : read_row list -> string

(** {1 A15 — the log-structured storage tier}

    Three sweeps over the durable log of DESIGN.md §14: the group-commit
    scheduler, checkpoint-bounded recovery, and change-log read
    replicas. *)

type gc_row = {
  gc_batch : int;  (** window cap, as in A13 *)
  gc_on : bool;  (** group-commit coalescing scheduler on? *)
  forces : int;  (** {!Dstore.Disk.force} calls over the whole run *)
  forces_per_commit : float;
  gc_tx_per_vs : float;
  gc_mean_latency_ms : float;
}

val gc_points : int list
(** The default window caps: 1, 4, 16, 64. *)

val group_commit_sweep :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?servers:int ->
  ?points:int list ->
  ?domains:int ->
  unit ->
  gc_row list
(** A15a: disk forces per committed request against the batch cap ×
    coalescing off/on, at the default 12.5 ms force latency (the A13
    workload: [clients] concurrent clients on disjoint accounts, spec
    asserted per row). The cap amortizes one window's log writes into one
    force; the scheduler additionally merges forces from concurrent
    sessions, so both columns fall with the cap and the coalesced one
    stays at or below its per-call twin.

    [servers] (default 16, not the cluster default 3) sets the number of
    application servers and thereby the db-side commitment concurrency:
    each server's compute thread drives one transaction at a time, and a
    group-commit window can only merge forces that actually overlap. *)

val render_gc : gc_row list -> string

type recovery_row = {
  commits : int;  (** committed transactions before the measured crash *)
  checkpointed : bool;
  log_len : int;  (** log records retained at the crash point *)
  steps : int;  (** records replayed — {!Dbms.Rm.recovery_steps} *)
  replay_ms : float;
      (** host CPU cost of one recovery over that log (mean of 32 runs;
          machine-dependent, unlike [steps]) *)
}

val recovery_points : int list
(** Default committed-history lengths: 64, 256, 1024. *)

val recovery_sweep :
  ?seed:int ->
  ?points:int list ->
  ?checkpoint_every:int ->
  ?domains:int ->
  unit ->
  recovery_row list
(** A15b: a direct {!Dbms.Rm} micro-harness — commit each history length
    with and without a checkpoint every [checkpoint_every] (default 48,
    deliberately not a divisor of the default points so a residual
    suffix survives the last snapshot) commits, then measure recovery.
    Uncheckpointed replay grows linearly with the history; checkpointed
    replay is bounded by the suffix since the last snapshot. *)

val render_recovery : recovery_row list -> string

type replica_row = {
  rep_replicas : int;  (** read replicas per database *)
  rep_reads : int;  (** delivered read (audit) requests *)
  rep_read_tx_per_vs : float;
  rep_served : int;  (** reads answered from a replica snapshot *)
  rep_fallbacks : int;
      (** replica attempts that fell back to the primary pipeline *)
  rep_hit_rate : float;  (** method-cache hit rate (the cache stays on) *)
  rep_mean_read_latency_ms : float;
}

val replica_points : int list
(** Default replica counts: 0, 1, 2. *)

val replica_sweep :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?reads_per_write:int ->
  ?servers:int ->
  ?points:int list ->
  ?domains:int ->
  unit ->
  replica_row list
(** A15c: the A14 read-heavy mix with the method cache {e on}, across
    replica counts. Cache-miss reads are answered by bounded-staleness
    change-log replicas — no election, no transaction, no primary SQL —
    so read throughput keeps improving after the cache alone has
    saturated, and the full specification (including replica consistency)
    is asserted per row. *)

val render_replica : replica_row list -> string

(** {1 CSV export}

    Machine-readable companions to the render functions (header line plus
    one row per data point), for external plotting. *)

val csv_figure8 : fig8 -> string
val csv_figure7 : fig7_row list -> string
val csv_figure1 : fig1_scenario list -> string
val csv_sweep2 : header:string -> (float * float * int) list -> string
(** For A1 (timeout, latency, tries) and A3 (rate, latency, messages). *)

val csv_backoff : (float * float * float) list -> string
val csv_dbs : (int * float * float * float) list -> string
val csv_batch : batch_row list -> string
val csv_read : read_row list -> string
val csv_gc : gc_row list -> string
val csv_recovery : recovery_row list -> string
val csv_replica : replica_row list -> string
val csv_cross : cross_row list -> string
