open Dsim
open Runtime

type kind = Application | Consensus | Overhead

let kind_of (m : Types.message) =
  if m.src = m.dst then Overhead
  else
    let payload =
      match Dnet.Rchannel.inner_payload m.payload with
      | Some inner -> inner
      | None -> m.payload
    in
    if Dnet.Rchannel.is_overhead payload then Overhead
    else if Dnet.Fdetect.is_heartbeat payload then Overhead
    else if Consensus.Agent.is_consensus_message payload then Consensus
    else Application

let protocol_subject m =
  match kind_of m with Application | Consensus -> true | Overhead -> false

let application_subject m =
  match kind_of m with Application -> true | Consensus | Overhead -> false

let protocol_messages trace =
  Trace.message_count ~subject:protocol_subject trace

let application_messages trace =
  Trace.message_count ~subject:application_subject trace

let protocol_steps trace =
  Trace.communication_steps ~subject:protocol_subject trace
