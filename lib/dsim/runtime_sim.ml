(* The single adapter between the protocol stack's runtime capability and
   the discrete-event simulator: everything above lib/dsim reaches the
   engine only through the record built here. *)

let of_engine e =
  {
    Runtime.Etx_runtime.backend = "sim";
    spawn = (fun ~name ~main -> Engine.spawn e ~name ~main);
    is_up = (fun pid -> Engine.is_up e pid);
    name_of = (fun pid -> Engine.name_of e pid);
    crash = (fun pid -> Engine.crash e pid);
    recover = (fun pid -> Engine.recover e pid);
    set_net = (fun net -> Engine.set_net e net);
    run_until = (fun ?deadline pred -> Engine.run_until ?deadline e pred);
    notes =
      (fun () ->
        List.filter_map
          (fun (en : Trace.entry) ->
            match en.event with
            | Trace.Note (pid, s) -> Some (pid, s)
            | _ -> None)
          (Trace.entries (Engine.trace e)));
    obs =
      Option.map
        (fun reg node ->
          Obs.Registry.sink reg ~node ~now:(fun () -> Engine.now_of e))
        (Engine.obs_registry e);
  }
