open Runtime

type event =
  | Spawned of Types.proc_id * string
  | Sent of Types.message * Types.time
  | Dropped of Types.message
  | Delivered of Types.message
  | Dead_letter of Types.message
  | Crashed of Types.proc_id
  | Recovered of Types.proc_id
  | Work of Types.proc_id * string * float
  | Note of Types.proc_id * string

type entry = { at : Types.time; event : event }

type t = {
  mutable rev_entries : entry list;
  mutable count : int;
  enabled : bool;
}

let create ?(enabled = true) () = { rev_entries = []; count = 0; enabled }

let enabled t = t.enabled

let record t at event =
  if t.enabled then begin
    t.rev_entries <- { at; event } :: t.rev_entries;
    t.count <- t.count + 1
  end

let entries t = List.rev t.rev_entries

let always _ = true

let message_count ?(subject = always) t =
  let matches e =
    match e.event with Sent (m, _) -> subject m | _ -> false
  in
  List.length (List.filter matches (entries t))

(* Longest causal chain of messages: dynamic programming over sends in
   chronological order. [depth.(dst)] tracks, per process, the longest chain
   of messages already *delivered* to it; a send from [src] at time [t]
   starts a chain of length [chain-of-src-at-t] + 1, credited to [dst] at the
   delivery time. *)
let communication_steps ?(subject = always) t =
  let sends =
    List.filter_map
      (fun e ->
        match e.event with
        | Sent (m, delivery) when subject m -> Some (e.at, delivery, m)
        | Sent _ | Spawned _ | Dropped _ | Delivered _ | Dead_letter _
        | Crashed _ | Recovered _ | Work _ | Note _ ->
            None)
      (entries t)
  in
  let pending = Hashtbl.create 16 (* dst -> (delivery_time, depth) list *) in
  let settled = Hashtbl.create 16 (* proc -> current max depth *) in
  let depth_at pid now =
    let base = Option.value ~default:0 (Hashtbl.find_opt settled pid) in
    let arrived =
      match Hashtbl.find_opt pending pid with
      | None -> []
      | Some l -> List.filter (fun (d, _) -> d <= now) l
    in
    List.fold_left (fun acc (_, n) -> max acc n) base arrived
  in
  let best = ref 0 in
  List.iter
    (fun (sent_at, delivery, m) ->
      let d = depth_at m.Types.src sent_at + 1 in
      best := max !best d;
      let l = Option.value ~default:[] (Hashtbl.find_opt pending m.Types.dst) in
      Hashtbl.replace pending m.Types.dst ((delivery, d) :: l))
    sends;
  !best

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  dead_lettered : int;
  crashes : int;
  recoveries : int;
  notes : int;
}

let stats t =
  List.fold_left
    (fun acc e ->
      match e.event with
      | Sent _ -> { acc with sent = acc.sent + 1 }
      | Delivered _ -> { acc with delivered = acc.delivered + 1 }
      | Dropped _ -> { acc with dropped = acc.dropped + 1 }
      | Dead_letter _ -> { acc with dead_lettered = acc.dead_lettered + 1 }
      | Crashed _ -> { acc with crashes = acc.crashes + 1 }
      | Recovered _ -> { acc with recoveries = acc.recoveries + 1 }
      | Note _ -> { acc with notes = acc.notes + 1 }
      | Spawned _ | Work _ -> acc)
    {
      sent = 0;
      delivered = 0;
      dropped = 0;
      dead_lettered = 0;
      crashes = 0;
      recoveries = 0;
      notes = 0;
    }
    (entries t)

let pp_stats ppf s =
  Format.fprintf ppf
    "sent=%d delivered=%d dropped=%d dead-lettered=%d crashes=%d \
     recoveries=%d notes=%d"
    s.sent s.delivered s.dropped s.dead_lettered s.crashes s.recoveries
    s.notes

let pp_event ppf = function
  | Spawned (p, name) -> Format.fprintf ppf "spawn %a (%s)" Types.pp_proc p name
  | Sent (m, d) ->
      Format.fprintf ppf "send %a->%a #%d (delivery %.3f)" Types.pp_proc m.src
        Types.pp_proc m.dst m.msg_id d
  | Dropped m ->
      Format.fprintf ppf "drop %a->%a #%d" Types.pp_proc m.src Types.pp_proc
        m.dst m.msg_id
  | Delivered m ->
      Format.fprintf ppf "deliver %a->%a #%d" Types.pp_proc m.src Types.pp_proc
        m.dst m.msg_id
  | Dead_letter m ->
      Format.fprintf ppf "dead-letter %a->%a #%d" Types.pp_proc m.src
        Types.pp_proc m.dst m.msg_id
  | Crashed p -> Format.fprintf ppf "crash %a" Types.pp_proc p
  | Recovered p -> Format.fprintf ppf "recover %a" Types.pp_proc p
  | Work (p, label, d) ->
      Format.fprintf ppf "work %a %s %.3fms" Types.pp_proc p label d
  | Note (p, s) -> Format.fprintf ppf "note %a %s" Types.pp_proc p s
