(* Re-export: the runtime binary heap. *)
include Runtime.Heap
