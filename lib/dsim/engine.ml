open Types

exception Exit_fiber

type netmodel = Rng.t -> src:proc_id -> dst:proc_id -> float list

let default_net _rng ~src:_ ~dst:_ = [ 1.0 ]

type event = { at : time; seq : int; run : unit -> unit }

(* Message classes ---------------------------------------------------- *)

type cls = int

(* The registry is global: protocol modules register their classes at
   module-initialisation time (single-domain, before any engine runs), and
   afterwards it is only read — so sharing it across Pool domains is safe.
   Classification order is registration order: the first predicate that
   accepts a payload names its class. *)
let class_table : (string * (payload -> bool)) array ref = ref [||]

let register_class ?name pred =
  let id = Array.length !class_table in
  let name =
    match name with Some n -> n | None -> "cls" ^ string_of_int id
  in
  class_table := Array.append !class_table [| (name, pred) |];
  id

let class_name c =
  if c < 0 || c >= Array.length !class_table then "unclassed"
  else fst !class_table.(c)

let classify pl =
  let tbl = !class_table in
  let n = Array.length tbl in
  let rec go i = if i >= n then -1 else if snd tbl.(i) pl then i else go (i + 1) in
  go 0

let registered_classes () =
  Array.to_list (Array.mapi (fun i (n, _) -> (i, n)) !class_table)

type waiter = {
  wfilter : (message -> bool) option;  (** [None]: any message of the class *)
  wk : (message option, unit) Effect.Deep.continuation;
}

type proc = {
  pid : proc_id;
  pname : string;
  mutable up : bool;
  mutable incarnation : int;
  mailbox : message Cq.t;  (** oldest first, bucketed by class *)
  waiters : waiter Cq.t;  (** registration order, bucketed by class *)
  main : recovery:bool -> unit -> unit;
}

type t = {
  mutable vnow : time;
  queue : event Heap.t;
  mutable seq : int;
  mutable procs : proc array;
  mutable nprocs : int;
  grng : Rng.t;
  net_rng : Rng.t;
  mutable net : netmodel;
  tracer : Trace.t;
  trace_on : bool;  (** guards event construction, not just recording *)
  mutable next_msg_id : int;
  mutable next_uid : int;
  mutable nevents : int;  (** events executed by {!step}, for throughput *)
  mutable current : proc option;
  mutable stopping : bool;
}

(* Effects performed by fibers. The handler (installed per fiber) closes
   over the engine, so the declarations carry no engine reference. *)
type _ Effect.t +=
  | E_now : time Effect.t
  | E_self : proc_id Effect.t
  | E_sleep : time -> unit Effect.t
  | E_work : string * time -> unit Effect.t
  | E_send : proc_id * payload -> unit Effect.t
  | E_redeliver : proc_id * payload -> unit Effect.t
  | E_recv :
      cls option * (message -> bool) option * time option
      -> message option Effect.t
  | E_fork : string * (unit -> unit) -> unit Effect.t
  | E_random_float : float -> float Effect.t
  | E_random_int : int -> int Effect.t
  | E_note : string -> unit Effect.t
  | E_fresh_uid : int Effect.t

let create ?(seed = 0xC0FFEE) ?(net = default_net) ?(tracing = true) () =
  let grng = Rng.create ~seed in
  {
    vnow = 0.;
    queue =
      Heap.create
        ~leq:(fun a b -> a.at < b.at || (a.at = b.at && a.seq <= b.seq))
        ();
    seq = 0;
    procs = [||];
    nprocs = 0;
    grng;
    net_rng = Rng.split grng;
    net;
    tracer = Trace.create ~enabled:tracing ();
    trace_on = tracing;
    next_msg_id = 0;
    nevents = 0;
    (* uids start above any client try counter j so identifiers drawn here
       (transaction ids in the comparison protocols) stay disjoint from j *)
    next_uid = 1000;
    current = None;
    stopping = false;
  }

let trace t = t.tracer
let rng t = t.grng
let set_net t net = t.net <- net
let now_of t = t.vnow
let events_of t = t.nevents

let schedule t ~delay run =
  assert (delay >= 0.);
  t.seq <- t.seq + 1;
  Heap.push t.queue { at = t.vnow +. delay; seq = t.seq; run }

let proc_of t pid =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Engine: unknown process %d" pid);
  t.procs.(pid)

let name_of t pid = (proc_of t pid).pname
let is_up t pid = (proc_of t pid).up

(* Running fibers ----------------------------------------------------- *)

let rec handler : t -> proc -> (unit, unit) Effect.Deep.handler =
 fun t p ->
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc =
      (fun e ->
        match e with
        | Exit_fiber -> ()
        | e ->
            (* A protocol bug: abort the whole simulation loudly. *)
            raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_now -> Some (fun (k : (a, unit) continuation) -> continue k t.vnow)
        | E_self -> Some (fun k -> continue k p.pid)
        | E_random_float bound -> Some (fun k -> continue k (Rng.float t.grng bound))
        | E_random_int bound -> Some (fun k -> continue k (Rng.int t.grng bound))
        | E_fresh_uid ->
            Some
              (fun k ->
                t.next_uid <- t.next_uid + 1;
                continue k t.next_uid)
        | E_note s ->
            Some
              (fun k ->
                if t.trace_on then
                  Trace.record t.tracer t.vnow (Trace.Note (p.pid, s));
                continue k ())
        | E_sleep d ->
            Some
              (fun k ->
                let inc = p.incarnation in
                schedule t ~delay:d (fun () ->
                    if p.up && p.incarnation = inc then resume t p k ()))
        | E_work (label, d) ->
            Some
              (fun k ->
                if t.trace_on then
                  Trace.record t.tracer t.vnow (Trace.Work (p.pid, label, d));
                let inc = p.incarnation in
                schedule t ~delay:d (fun () ->
                    if p.up && p.incarnation = inc then resume t p k ()))
        | E_send (dst, payload) ->
            Some
              (fun k ->
                transmit t ~src:p.pid ~dst payload;
                continue k ())
        | E_redeliver (src, payload) ->
            Some
              (fun k ->
                let m =
                  {
                    src;
                    dst = p.pid;
                    payload;
                    msg_id = fresh_msg_id t;
                    sent_at = t.vnow;
                  }
                in
                enqueue_message t p m;
                continue k ())
        | E_recv (cls, filter, timeout) ->
            Some
              (fun k ->
                let taken =
                  match (cls, filter) with
                  | Some c, None -> Cq.pop_cls p.mailbox c
                  | Some c, Some f -> Cq.take_first_in_cls p.mailbox c f
                  | None, Some f -> Cq.take_first p.mailbox f
                  | None, None -> Cq.pop p.mailbox
                in
                match taken with
                | Some m -> continue k (Some m)
                | None -> (
                    let wcls = match cls with Some c -> c | None -> -1 in
                    let node =
                      Cq.push p.waiters ~cls:wcls { wfilter = filter; wk = k }
                    in
                    match timeout with
                    | None -> ()
                    | Some d ->
                        let inc = p.incarnation in
                        schedule t ~delay:d (fun () ->
                            if p.up && p.incarnation = inc then
                              if Cq.remove p.waiters node then
                                resume t p (Cq.node_value node).wk None)))
        | E_fork (fname, f) ->
            Some
              (fun k ->
                let inc = p.incarnation in
                schedule t ~delay:0. (fun () ->
                    if p.up && p.incarnation = inc then run_fiber t p f);
                if t.trace_on then
                  Trace.record t.tracer t.vnow
                    (Trace.Note (p.pid, "fork " ^ fname));
                continue k ())
        | _ -> None);
  }

and resume : 'a. t -> proc -> ('a, unit) Effect.Deep.continuation -> 'a -> unit
    =
 fun t p k v ->
  let saved = t.current in
  t.current <- Some p;
  Effect.Deep.continue k v;
  t.current <- saved

and run_fiber t p f =
  let saved = t.current in
  t.current <- Some p;
  Effect.Deep.match_with f () (handler t p);
  t.current <- saved

and fresh_msg_id t =
  t.next_msg_id <- t.next_msg_id + 1;
  t.next_msg_id

and enqueue_message t p m =
  if t.trace_on then Trace.record t.tracer t.vnow (Trace.Delivered m);
  (* A message of class [c] can be claimed by a class-[c] waiter or by a
     legacy predicate (unclassed) waiter; of the acceptors, the one that
     registered first wins — exactly the old single-list scan order. *)
  let c = classify m.payload in
  let accepts (w : waiter) =
    match w.wfilter with None -> true | Some f -> f m
  in
  let cand_u = Cq.first_matching_in_cls p.waiters (-1) accepts in
  let cand_c =
    if c >= 0 then Cq.first_matching_in_cls p.waiters c accepts else None
  in
  let best =
    match (cand_u, cand_c) with
    | None, x | x, None -> x
    | Some a, Some b ->
        if Cq.node_seq a <= Cq.node_seq b then Some a else Some b
  in
  match best with
  | None -> ignore (Cq.push p.mailbox ~cls:c m)
  | Some n ->
      ignore (Cq.remove p.waiters n);
      resume t p (Cq.node_value n).wk (Some m)

and transmit t ~src ~dst payload =
  let m = { src; dst; payload; msg_id = fresh_msg_id t; sent_at = t.vnow } in
  let delays =
    if src = dst then [ 0.001 ] else t.net t.net_rng ~src ~dst
  in
  match delays with
  | [] -> if t.trace_on then Trace.record t.tracer t.vnow (Trace.Dropped m)
  | delays ->
      List.iter
        (fun d ->
          if t.trace_on then
            Trace.record t.tracer t.vnow (Trace.Sent (m, t.vnow +. d));
          schedule t ~delay:d (fun () ->
              match t.procs.(dst).up with
              | true -> enqueue_message t t.procs.(dst) m
              | false ->
                  if t.trace_on then
                    Trace.record t.tracer t.vnow (Trace.Dead_letter m)))
        delays

(* Orchestration ------------------------------------------------------ *)

let spawn t ~name ~main =
  let pid = t.nprocs in
  let p =
    {
      pid;
      pname = name;
      up = true;
      incarnation = 0;
      mailbox = Cq.create ();
      waiters = Cq.create ();
      main;
    }
  in
  let capacity = Array.length t.procs in
  if t.nprocs = capacity then begin
    let procs' = Array.make (max 8 (capacity * 2)) p in
    Array.blit t.procs 0 procs' 0 t.nprocs;
    t.procs <- procs'
  end;
  t.procs.(t.nprocs) <- p;
  t.nprocs <- t.nprocs + 1;
  if t.trace_on then Trace.record t.tracer t.vnow (Trace.Spawned (pid, name));
  schedule t ~delay:0. (fun () ->
      if p.up && p.incarnation = 0 then run_fiber t p (main ~recovery:false));
  pid

let crash t pid =
  let p = proc_of t pid in
  if p.up then begin
    p.up <- false;
    p.incarnation <- p.incarnation + 1;
    Cq.clear p.mailbox;
    Cq.clear p.waiters;
    if t.trace_on then Trace.record t.tracer t.vnow (Trace.Crashed pid)
  end

let recover t pid =
  let p = proc_of t pid in
  if not p.up then begin
    p.up <- true;
    p.incarnation <- p.incarnation + 1;
    Cq.clear p.mailbox;
    Cq.clear p.waiters;
    if t.trace_on then Trace.record t.tracer t.vnow (Trace.Recovered pid);
    let inc = p.incarnation in
    schedule t ~delay:0. (fun () ->
        if p.up && p.incarnation = inc then
          run_fiber t p (p.main ~recovery:true))
  end

let crash_at t at pid =
  let delay = Float.max 0. (at -. t.vnow) in
  schedule t ~delay (fun () -> crash t pid)

let recover_at t at pid =
  let delay = Float.max 0. (at -. t.vnow) in
  schedule t ~delay (fun () -> recover t pid)

let post t ~src ~dst payload = transmit t ~src ~dst payload

type outcome = Quiescent | Deadline_reached | Stopped

let stop t = t.stopping <- true

let step t =
  match Heap.pop t.queue with
  | None -> None
  | Some ev ->
      assert (ev.at >= t.vnow);
      t.vnow <- ev.at;
      t.nevents <- t.nevents + 1;
      ev.run ();
      Some ev.at

let run ?deadline t =
  t.stopping <- false;
  let over at = match deadline with None -> false | Some d -> at > d in
  let rec loop () =
    if t.stopping then Stopped
    else
      match Heap.peek t.queue with
      | None -> Quiescent
      | Some ev when over ev.at ->
          (match deadline with Some d -> t.vnow <- d | None -> ());
          Deadline_reached
      | Some _ ->
          ignore (step t);
          loop ()
  in
  loop ()

let run_until ?deadline t pred =
  t.stopping <- false;
  let over at = match deadline with None -> false | Some d -> at > d in
  let rec loop () =
    if pred () then true
    else if t.stopping then false
    else
      match Heap.peek t.queue with
      | None -> pred ()
      | Some ev when over ev.at ->
          (match deadline with Some d -> t.vnow <- d | None -> ());
          pred ()
      | Some _ ->
          ignore (step t);
          loop ()
  in
  loop ()

(* Fiber-side wrappers ------------------------------------------------ *)

let now () = Effect.perform E_now
let self () = Effect.perform E_self
let sleep d = Effect.perform (E_sleep d)
let work label d = Effect.perform (E_work (label, d))
let send dst payload = Effect.perform (E_send (dst, payload))
let send_all dsts payload = List.iter (fun dst -> send dst payload) dsts
let redeliver ~src payload = Effect.perform (E_redeliver (src, payload))
let recv ?timeout ?cls ~filter () =
  Effect.perform (E_recv (cls, Some filter, timeout))

let recv_cls ?timeout c = Effect.perform (E_recv (Some c, None, timeout))
let recv_any ?timeout () = Effect.perform (E_recv (None, None, timeout))
let fork name f = Effect.perform (E_fork (name, f))
let random_float bound = Effect.perform (E_random_float bound)
let random_int bound = Effect.perform (E_random_int bound)
let fresh_uid () = Effect.perform E_fresh_uid
let note s = Effect.perform (E_note s)
let exit_fiber () = raise Exit_fiber
