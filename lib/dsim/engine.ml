open Runtime
open Types
module ER = Runtime.Etx_runtime

(* The engine is one backend of the Etx_runtime substrate: the effect
   declarations, message-class registry and fiber-side wrappers live in
   Runtime.Etx_runtime and are re-exported here so existing [Dsim.Engine]
   call sites keep working. The adapter packaging an engine as a runtime
   capability is {!Runtime_sim.of_engine}. *)

exception Exit_fiber = ER.Exit_fiber

type netmodel = ER.netmodel

let default_net = ER.default_net

type event = { at : time; seq : int; run : unit -> unit }

(* Message classes: global, backend-independent registry (see
   Etx_runtime). *)

type cls = ER.cls

let register_class = ER.register_class
let class_name = ER.class_name
let classify = ER.classify
let registered_classes = ER.registered_classes

type waiter = {
  wfilter : (message -> bool) option;  (** [None]: any message of the class *)
  wk : (message option, unit) Effect.Deep.continuation;
}

type proc = {
  pid : proc_id;
  pname : string;
  mutable up : bool;
  mutable incarnation : int;
  mailbox : message Cq.t;  (** oldest first, bucketed by class *)
  waiters : waiter Cq.t;  (** registration order, bucketed by class *)
  main : recovery:bool -> unit -> unit;
  psink : ER.obs_sink option;  (** per-process obs sink, built at spawn *)
}

type t = {
  mutable vnow : time;
  queue : event Heap.t;
  mutable seq : int;
  mutable procs : proc array;
  mutable nprocs : int;
  grng : Rng.t;
  net_rng : Rng.t;
  mutable net : netmodel;
  tracer : Trace.t;
  trace_on : bool;  (** guards event construction, not just recording *)
  mutable next_msg_id : int;
  mutable next_uid : int;
  mutable nevents : int;  (** events executed by {!step}, for throughput *)
  mutable current : proc option;
  mutable stopping : bool;
  obs : Obs.Registry.t option;
      (** opt-in observability; [None] keeps every instrument site on the
          single-branch disabled path *)
}

let create ?(seed = 0xC0FFEE) ?(net = default_net) ?(tracing = true) ?obs () =
  let grng = Rng.create ~seed in
  {
    vnow = 0.;
    queue =
      Heap.create
        ~leq:(fun a b -> a.at < b.at || (a.at = b.at && a.seq <= b.seq))
        ();
    seq = 0;
    procs = [||];
    nprocs = 0;
    grng;
    net_rng = Rng.split grng;
    net;
    tracer = Trace.create ~enabled:tracing ();
    trace_on = tracing;
    next_msg_id = 0;
    nevents = 0;
    (* uids start above any client try counter j so identifiers drawn here
       (transaction ids in the comparison protocols) stay disjoint from j *)
    next_uid = 1000;
    current = None;
    stopping = false;
    obs;
  }

let trace t = t.tracer
let obs_registry t = t.obs

(* Registry sink bound to a node name, on the virtual clock. *)
let obs_sink_for t node =
  Option.map
    (fun reg -> Obs.Registry.sink reg ~node ~now:(fun () -> t.vnow))
    t.obs

let obs_incr t node name =
  match t.obs with
  | None -> ()
  | Some reg -> Obs.Registry.incr reg ~node ~name 1

let obs_event t node name detail =
  match t.obs with
  | None -> ()
  | Some reg -> Obs.Registry.event reg ~node ~at:t.vnow ~trace:0 ~name detail
let rng t = t.grng
let set_net t net = t.net <- net
let now_of t = t.vnow
let events_of t = t.nevents

let schedule t ~delay run =
  assert (delay >= 0.);
  t.seq <- t.seq + 1;
  Heap.push t.queue { at = t.vnow +. delay; seq = t.seq; run }

let proc_of t pid =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "Engine: unknown process %d" pid);
  t.procs.(pid)

let name_of t pid = (proc_of t pid).pname
let is_up t pid = (proc_of t pid).up

(* Running fibers ----------------------------------------------------- *)

let rec handler : t -> proc -> (unit, unit) Effect.Deep.handler =
 fun t p ->
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc =
      (fun e ->
        match e with
        | Exit_fiber -> ()
        | e ->
            (* A protocol bug: abort the whole simulation loudly. *)
            raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | ER.E_now -> Some (fun (k : (a, unit) continuation) -> continue k t.vnow)
        | ER.E_self -> Some (fun k -> continue k p.pid)
        | ER.E_random_float bound ->
            Some (fun k -> continue k (Rng.float t.grng bound))
        | ER.E_random_int bound ->
            Some (fun k -> continue k (Rng.int t.grng bound))
        | ER.E_fresh_uid ->
            Some
              (fun k ->
                t.next_uid <- t.next_uid + 1;
                continue k t.next_uid)
        | ER.E_obs -> Some (fun k -> continue k p.psink)
        | ER.E_note s ->
            Some
              (fun k ->
                if t.trace_on then
                  Trace.record t.tracer t.vnow (Trace.Note (p.pid, s));
                (match p.psink with
                | None -> ()
                | Some s' -> s'.ER.obs_event ~trace:0 "note" s);
                continue k ())
        | ER.E_sleep d ->
            Some
              (fun k ->
                let inc = p.incarnation in
                schedule t ~delay:d (fun () ->
                    if p.up && p.incarnation = inc then resume t p k ()))
        | ER.E_work (label, d) ->
            Some
              (fun k ->
                if t.trace_on then
                  Trace.record t.tracer t.vnow (Trace.Work (p.pid, label, d));
                (match p.psink with
                | None -> ()
                | Some s -> s.ER.obs_observe ("work." ^ label) d);
                let inc = p.incarnation in
                schedule t ~delay:d (fun () ->
                    if p.up && p.incarnation = inc then resume t p k ()))
        | ER.E_send (dst, payload) ->
            Some
              (fun k ->
                transmit t ~src:p.pid ~dst payload;
                continue k ())
        | ER.E_redeliver (src, payload) ->
            Some
              (fun k ->
                let m =
                  {
                    src;
                    dst = p.pid;
                    payload;
                    msg_id = fresh_msg_id t;
                    sent_at = t.vnow;
                  }
                in
                enqueue_message t p m;
                continue k ())
        | ER.E_recv (cls, filter, timeout) ->
            Some
              (fun k ->
                let taken =
                  match (cls, filter) with
                  | Some c, None -> Cq.pop_cls p.mailbox c
                  | Some c, Some f -> Cq.take_first_in_cls p.mailbox c f
                  | None, Some f -> Cq.take_first p.mailbox f
                  | None, None -> Cq.pop p.mailbox
                in
                match taken with
                | Some m -> continue k (Some m)
                | None -> (
                    let wcls = match cls with Some c -> c | None -> -1 in
                    let node =
                      Cq.push p.waiters ~cls:wcls { wfilter = filter; wk = k }
                    in
                    match timeout with
                    | None -> ()
                    | Some d ->
                        let inc = p.incarnation in
                        schedule t ~delay:d (fun () ->
                            if p.up && p.incarnation = inc then
                              if Cq.remove p.waiters node then
                                resume t p (Cq.node_value node).wk None)))
        | ER.E_fork (fname, f) ->
            Some
              (fun k ->
                let inc = p.incarnation in
                schedule t ~delay:0. (fun () ->
                    if p.up && p.incarnation = inc then run_fiber t p f);
                if t.trace_on then
                  Trace.record t.tracer t.vnow
                    (Trace.Note (p.pid, "fork " ^ fname));
                continue k ())
        | _ -> None);
  }

and resume : 'a. t -> proc -> ('a, unit) Effect.Deep.continuation -> 'a -> unit
    =
 fun t p k v ->
  let saved = t.current in
  t.current <- Some p;
  Effect.Deep.continue k v;
  t.current <- saved

and run_fiber t p f =
  let saved = t.current in
  t.current <- Some p;
  Effect.Deep.match_with f () (handler t p);
  t.current <- saved

and fresh_msg_id t =
  t.next_msg_id <- t.next_msg_id + 1;
  t.next_msg_id

and enqueue_message t p m =
  if t.trace_on then Trace.record t.tracer t.vnow (Trace.Delivered m);
  (* A message of class [c] can be claimed by a class-[c] waiter or by a
     legacy predicate (unclassed) waiter; of the acceptors, the one that
     registered first wins — exactly the old single-list scan order. *)
  let c = classify m.payload in
  let accepts (w : waiter) =
    match w.wfilter with None -> true | Some f -> f m
  in
  let cand_u = Cq.first_matching_in_cls p.waiters (-1) accepts in
  let cand_c =
    if c >= 0 then Cq.first_matching_in_cls p.waiters c accepts else None
  in
  let best =
    match (cand_u, cand_c) with
    | None, x | x, None -> x
    | Some a, Some b ->
        if Cq.node_seq a <= Cq.node_seq b then Some a else Some b
  in
  match best with
  | None -> ignore (Cq.push p.mailbox ~cls:c m)
  | Some n ->
      ignore (Cq.remove p.waiters n);
      resume t p (Cq.node_value n).wk (Some m)

and transmit t ~src ~dst payload =
  let m = { src; dst; payload; msg_id = fresh_msg_id t; sent_at = t.vnow } in
  let delays =
    if src = dst then [ 0.001 ] else t.net t.net_rng ~src ~dst
  in
  (* Per-class traffic counters, keyed by the classifier's class name so
     the sim and live dumps line up metric-for-metric. *)
  let clsname () = class_name (classify payload) in
  match delays with
  | [] ->
      if t.trace_on then Trace.record t.tracer t.vnow (Trace.Dropped m);
      if t.obs <> None then
        obs_incr t t.procs.(src).pname ("net.dropped." ^ clsname ())
  | delays ->
      List.iter
        (fun d ->
          if t.trace_on then
            Trace.record t.tracer t.vnow (Trace.Sent (m, t.vnow +. d));
          if t.obs <> None then
            obs_incr t t.procs.(src).pname ("net.sent." ^ clsname ());
          schedule t ~delay:d (fun () ->
              match t.procs.(dst).up with
              | true ->
                  if t.obs <> None then
                    obs_incr t t.procs.(dst).pname ("net.recv." ^ clsname ());
                  enqueue_message t t.procs.(dst) m
              | false ->
                  if t.trace_on then
                    Trace.record t.tracer t.vnow (Trace.Dead_letter m);
                  if t.obs <> None then
                    obs_incr t t.procs.(dst).pname
                      ("net.dead_letter." ^ clsname ())))
        delays

(* Orchestration ------------------------------------------------------ *)

let spawn t ~name ~main =
  let pid = t.nprocs in
  let p =
    {
      pid;
      pname = name;
      up = true;
      incarnation = 0;
      mailbox = Cq.create ();
      waiters = Cq.create ();
      main;
      psink = obs_sink_for t name;
    }
  in
  let capacity = Array.length t.procs in
  if t.nprocs = capacity then begin
    let procs' = Array.make (max 8 (capacity * 2)) p in
    Array.blit t.procs 0 procs' 0 t.nprocs;
    t.procs <- procs'
  end;
  t.procs.(t.nprocs) <- p;
  t.nprocs <- t.nprocs + 1;
  if t.trace_on then Trace.record t.tracer t.vnow (Trace.Spawned (pid, name));
  schedule t ~delay:0. (fun () ->
      if p.up && p.incarnation = 0 then run_fiber t p (main ~recovery:false));
  pid

let crash t pid =
  let p = proc_of t pid in
  if p.up then begin
    p.up <- false;
    p.incarnation <- p.incarnation + 1;
    Cq.clear p.mailbox;
    Cq.clear p.waiters;
    if t.trace_on then Trace.record t.tracer t.vnow (Trace.Crashed pid);
    obs_event t p.pname "crash" ""
  end

let recover t pid =
  let p = proc_of t pid in
  if not p.up then begin
    p.up <- true;
    p.incarnation <- p.incarnation + 1;
    Cq.clear p.mailbox;
    Cq.clear p.waiters;
    if t.trace_on then Trace.record t.tracer t.vnow (Trace.Recovered pid);
    obs_event t p.pname "recover" "";
    let inc = p.incarnation in
    schedule t ~delay:0. (fun () ->
        if p.up && p.incarnation = inc then
          run_fiber t p (p.main ~recovery:true))
  end

let crash_at t at pid =
  let delay = Float.max 0. (at -. t.vnow) in
  schedule t ~delay (fun () -> crash t pid)

let recover_at t at pid =
  let delay = Float.max 0. (at -. t.vnow) in
  schedule t ~delay (fun () -> recover t pid)

let post t ~src ~dst payload = transmit t ~src ~dst payload

type outcome = Quiescent | Deadline_reached | Stopped

let stop t = t.stopping <- true

let step t =
  match Heap.pop t.queue with
  | None -> None
  | Some ev ->
      assert (ev.at >= t.vnow);
      t.vnow <- ev.at;
      t.nevents <- t.nevents + 1;
      ev.run ();
      Some ev.at

let run ?deadline t =
  t.stopping <- false;
  let over at = match deadline with None -> false | Some d -> at > d in
  let rec loop () =
    if t.stopping then Stopped
    else
      match Heap.peek t.queue with
      | None -> Quiescent
      | Some ev when over ev.at ->
          (match deadline with Some d -> t.vnow <- d | None -> ());
          Deadline_reached
      | Some _ ->
          ignore (step t);
          loop ()
  in
  loop ()

let run_until ?deadline t pred =
  t.stopping <- false;
  let over at = match deadline with None -> false | Some d -> at > d in
  let rec loop () =
    if pred () then true
    else if t.stopping then false
    else
      match Heap.peek t.queue with
      | None -> pred ()
      | Some ev when over ev.at ->
          (match deadline with Some d -> t.vnow <- d | None -> ());
          pred ()
      | Some _ ->
          ignore (step t);
          loop ()
  in
  loop ()

(* Fiber-side wrappers: shared with every backend, re-exported for existing
   call sites. *)

let now = ER.now
let self = ER.self
let sleep = ER.sleep
let work = ER.work
let send = ER.send
let send_all = ER.send_all
let redeliver = ER.redeliver
let recv = ER.recv
let recv_cls = ER.recv_cls
let recv_any = ER.recv_any
let fork = ER.fork
let random_float = ER.random_float
let random_int = ER.random_int
let fresh_uid = ER.fresh_uid
let note = ER.note
let exit_fiber = ER.exit_fiber
