(** The simulator as an {!Runtime.Etx_runtime} backend.

    This is the runtime adapter: the one place where the backend-agnostic
    protocol stack meets [Dsim.Engine]. Orchestration code builds the
    engine, wraps it here, and threads the capability through the protocol
    [config] records; the engine handle stays available on the side for
    sim-only facilities (trace analysis, [crash_at] fault scripts,
    [now_of]). [notes] replays [Trace.Note] entries, so the engine must be
    created with [~tracing:true] for note-based checks ([Spec]). *)

val of_engine : Engine.t -> Runtime.Etx_runtime.t
