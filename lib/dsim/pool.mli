(** Parallel map over OCaml 5 domains.

    The experiment harness runs many independent, deterministically-seeded
    simulation trials; this pool spreads them over domains. Work is handed
    out by an atomic next-index counter, so uneven trial costs balance
    without static chunking. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items] applies [f] to every item and returns the
    results in input order.

    [f] must be self-contained per item — no shared mutable state between
    items (harness trials each own their engine, RNG and trace). Under that
    condition the result is bit-identical to [List.map f items] whatever
    [domains] is.

    Exceptions raised by [f] are caught in the worker and re-raised in the
    caller once all workers have joined; the earliest item (in input order)
    that failed wins. Unlike sequential [List.map], items after a failing
    one are still evaluated.

    [domains <= 1] (or a single item) runs inline in the calling domain,
    spawning nothing. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism cap. *)
