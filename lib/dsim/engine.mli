(** Deterministic discrete-event simulation engine.

    Processes are cooperative fibers (OCaml effects) owning a shared
    per-process mailbox with selective receive. Virtual time advances only
    through the event queue; identical seeds give identical executions.

    Crash/recovery semantics follow the paper's model: a crash kills every
    fiber of the process, clears its mailbox and drops in-flight wakeups
    (incarnation fencing); volatile state — anything held in fiber-local
    bindings — is lost, while state kept outside the fibers (e.g. [Dstore]
    stable storage) survives. Recovery re-runs the process main with
    [~recovery:true].

    Fiber-side operations ([now], [send], [recv], ...) must be called from
    inside a fiber; calling them outside raises
    [Effect.Unhandled]. Orchestration operations ([spawn], [run], [crash_at],
    ...) must be called outside the event loop or from scheduled closures. *)

open Runtime
open Types

type t

type netmodel = Rng.t -> src:proc_id -> dst:proc_id -> float list
(** Delivery delays for one send; the empty list drops the message, two or
    more elements duplicate it. Self-sends bypass the model. *)

val default_net : netmodel
(** Constant 1.0 ms delivery, no loss. *)

val create :
  ?seed:int -> ?net:netmodel -> ?tracing:bool -> ?obs:Obs.Registry.t -> unit -> t
(** [~tracing:false] disables the trace sink entirely: no trace event is
    allocated or recorded anywhere in the hot path, and {!trace} returns an
    empty collector. Use it for trials that never read their trace (most
    harness sweeps); analyses such as {!Trace.communication_steps} or
    [Spec.check_all] (which replays [computed:] notes) need the default
    [~tracing:true].

    [?obs] opts in observability: fibers get a sink through the [E_obs]
    effect, the engine itself counts per-class network traffic
    ([net.sent.*] / [net.recv.*] / [net.dropped.*] / [net.dead_letter.*]),
    observes [work.<label>] durations and tees notes, crashes and
    recoveries into the registry's event store. Omitted (the default), no
    observability code runs beyond one branch per site. *)

val trace : t -> Trace.t

val obs_registry : t -> Obs.Registry.t option
(** The registry passed at {!create}, if any. *)

val rng : t -> Rng.t
val set_net : t -> netmodel -> unit

(** {1 Message classes}

    A class is a small integer naming a disjoint family of payloads, used to
    demultiplex deliveries in O(1) instead of predicate-scanning mailboxes
    and waiter lists. Protocol modules register their classes once at
    module-initialisation time (before any engine runs; the registry is
    read-only afterwards, so it is safe to share across {!Pool} domains).
    Classification order is registration order: the first predicate
    accepting a payload names its class; payloads no predicate accepts are
    "unclassed" and reachable only through the predicate receive path. *)

type cls = int

val register_class : ?name:string -> (Types.payload -> bool) -> cls
(** Register a payload family; returns its class id. Call only from
    module-level initialisation code. *)

val classify : Types.payload -> cls
(** First registered class accepting the payload, [-1] if none. *)

val class_name : cls -> string

val registered_classes : unit -> (cls * string) list
(** Registration order; for diagnostics and docs. *)

(** {1 Orchestration} *)

val spawn : t -> name:string -> main:(recovery:bool -> unit -> unit) -> proc_id
(** Creates a process and schedules its main fiber at the current time. *)

val name_of : t -> proc_id -> string
val is_up : t -> proc_id -> bool

val crash : t -> proc_id -> unit
(** Immediate crash (idempotent while down). *)

val recover : t -> proc_id -> unit
(** Immediate recovery: re-runs main with [~recovery:true]. No-op if up. *)

val crash_at : t -> time -> proc_id -> unit
val recover_at : t -> time -> proc_id -> unit

val post : t -> src:proc_id -> dst:proc_id -> payload -> unit
(** Orchestration-side send, subject to the network model. *)

val schedule : t -> delay:time -> (unit -> unit) -> unit
(** Raw event at [now + delay]; not fenced by any incarnation. *)

val now_of : t -> time

val events_of : t -> int
(** Number of simulation events executed so far — the denominator-free
    "simulated events" measure the throughput benchmarks report per
    wall-clock second. *)

type outcome =
  | Quiescent  (** event queue drained *)
  | Deadline_reached
  | Stopped  (** [stop] was called *)

val run : ?deadline:time -> t -> outcome

val run_until : ?deadline:time -> t -> (unit -> bool) -> bool
(** Runs until the predicate holds (checked after every event), the deadline
    passes, or the queue drains; returns whether the predicate holds. *)

val stop : t -> unit

(** {1 Fiber-side operations} *)

val now : unit -> time
val self : unit -> proc_id

val sleep : time -> unit

val work : string -> time -> unit
(** [work label d] advances virtual time by [d], recording a [Trace.Work]
    entry — used to model local computation such as SQL execution or a
    forced disk write, and to account latency components (paper Fig. 8). *)

val send : proc_id -> payload -> unit

val send_all : proc_id list -> payload -> unit

val redeliver : src:proc_id -> payload -> unit
(** Enqueue a payload into the calling process's own mailbox, attributed to
    [src], bypassing the network. Used by the reliable-channel layer to hand
    deduplicated payloads to the protocol above. *)

val recv :
  ?timeout:time -> ?cls:cls -> filter:(message -> bool) -> unit -> message option
(** Selective receive: first scans the mailbox, then blocks. [None] only on
    timeout. Messages rejected by every waiting fiber stay queued.

    With [?cls] the scan is confined to that class's bucket (the filter then
    only refines within the class — callers must ensure the filter accepts
    no payload outside the class, or those messages become unreachable). *)

val recv_cls : ?timeout:time -> cls -> message option
(** O(1) classed receive: pops the oldest message of the class, or blocks
    in the class's waiter bucket. The fast path for converted hot loops. *)

val recv_any : ?timeout:time -> unit -> message option

val fork : string -> (unit -> unit) -> unit
(** Start a sibling fiber in the calling process. It dies with the process
    and is not restarted on recovery (the main must re-fork its helpers). *)

val random_float : float -> float
val random_int : int -> int

val fresh_uid : unit -> int
(** A fresh identifier unique within this engine, monotonically increasing
    from 1000 (so values stay disjoint from client try counters). Used for
    request ids, channel endpoints and comparison-protocol transaction ids;
    keeping the counter per-engine (rather than process-global) makes
    trials self-contained, so parallel runs stay deterministic. *)

val note : string -> unit
(** Free-form trace annotation by the calling process. *)

val exit_fiber : unit -> 'a
(** Terminate the calling fiber silently. *)
