(** Deterministic discrete-event simulation engine.

    Processes are cooperative fibers (OCaml effects) owning a shared
    per-process mailbox with selective receive. Virtual time advances only
    through the event queue; identical seeds give identical executions.

    Crash/recovery semantics follow the paper's model: a crash kills every
    fiber of the process, clears its mailbox and drops in-flight wakeups
    (incarnation fencing); volatile state — anything held in fiber-local
    bindings — is lost, while state kept outside the fibers (e.g. [Dstore]
    stable storage) survives. Recovery re-runs the process main with
    [~recovery:true].

    Fiber-side operations ([now], [send], [recv], ...) must be called from
    inside a fiber; calling them outside raises
    [Effect.Unhandled]. Orchestration operations ([spawn], [run], [crash_at],
    ...) must be called outside the event loop or from scheduled closures. *)

open Types

type t

type netmodel = Rng.t -> src:proc_id -> dst:proc_id -> float list
(** Delivery delays for one send; the empty list drops the message, two or
    more elements duplicate it. Self-sends bypass the model. *)

val default_net : netmodel
(** Constant 1.0 ms delivery, no loss. *)

val create : ?seed:int -> ?net:netmodel -> ?tracing:bool -> unit -> t
(** [~tracing:false] disables the trace sink entirely: no trace event is
    allocated or recorded anywhere in the hot path, and {!trace} returns an
    empty collector. Use it for trials that never read their trace (most
    harness sweeps); analyses such as {!Trace.communication_steps} or
    [Spec.check_all] (which replays [computed:] notes) need the default
    [~tracing:true]. *)

val trace : t -> Trace.t
val rng : t -> Rng.t
val set_net : t -> netmodel -> unit

(** {1 Orchestration} *)

val spawn : t -> name:string -> main:(recovery:bool -> unit -> unit) -> proc_id
(** Creates a process and schedules its main fiber at the current time. *)

val name_of : t -> proc_id -> string
val is_up : t -> proc_id -> bool

val crash : t -> proc_id -> unit
(** Immediate crash (idempotent while down). *)

val recover : t -> proc_id -> unit
(** Immediate recovery: re-runs main with [~recovery:true]. No-op if up. *)

val crash_at : t -> time -> proc_id -> unit
val recover_at : t -> time -> proc_id -> unit

val post : t -> src:proc_id -> dst:proc_id -> payload -> unit
(** Orchestration-side send, subject to the network model. *)

val schedule : t -> delay:time -> (unit -> unit) -> unit
(** Raw event at [now + delay]; not fenced by any incarnation. *)

val now_of : t -> time

type outcome =
  | Quiescent  (** event queue drained *)
  | Deadline_reached
  | Stopped  (** [stop] was called *)

val run : ?deadline:time -> t -> outcome

val run_until : ?deadline:time -> t -> (unit -> bool) -> bool
(** Runs until the predicate holds (checked after every event), the deadline
    passes, or the queue drains; returns whether the predicate holds. *)

val stop : t -> unit

(** {1 Fiber-side operations} *)

val now : unit -> time
val self : unit -> proc_id

val sleep : time -> unit

val work : string -> time -> unit
(** [work label d] advances virtual time by [d], recording a [Trace.Work]
    entry — used to model local computation such as SQL execution or a
    forced disk write, and to account latency components (paper Fig. 8). *)

val send : proc_id -> payload -> unit

val send_all : proc_id list -> payload -> unit

val redeliver : src:proc_id -> payload -> unit
(** Enqueue a payload into the calling process's own mailbox, attributed to
    [src], bypassing the network. Used by the reliable-channel layer to hand
    deduplicated payloads to the protocol above. *)

val recv : ?timeout:time -> filter:(message -> bool) -> unit -> message option
(** Selective receive: first scans the mailbox, then blocks. [None] only on
    timeout. Messages rejected by every waiting fiber stay queued. *)

val recv_any : ?timeout:time -> unit -> message option

val fork : string -> (unit -> unit) -> unit
(** Start a sibling fiber in the calling process. It dies with the process
    and is not restarted on recovery (the main must re-fork its helpers). *)

val random_float : float -> float
val random_int : int -> int

val fresh_uid : unit -> int
(** A fresh identifier unique within this engine, monotonically increasing
    from 1000 (so values stay disjoint from client try counters). Used for
    request ids, channel endpoints and comparison-protocol transaction ids;
    keeping the counter per-engine (rather than process-global) makes
    trials self-contained, so parallel runs stay deterministic. *)

val note : string -> unit
(** Free-form trace annotation by the calling process. *)

val exit_fiber : unit -> 'a
(** Terminate the calling fiber silently. *)
