(** Mutable FIFO with O(1) append and in-place selective removal.

    Backs the engine's per-process mailbox and waiter list. The seed kept
    both as immutable lists appended with [xs @ [x]] — O(n) copying per
    delivery, O(n²) for a busy mailbox. Here append links one cell at the
    tail, and a selective take scans front-to-back and unlinks the match
    without rebuilding the spine. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail. O(1). *)

val take_first : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the oldest element satisfying the predicate. O(k)
    where k is the position of the match; no re-copying. *)

val pop : 'a t -> 'a option
(** Remove and return the oldest element. O(1). *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Front (oldest) to back. *)

val to_list : 'a t -> 'a list
(** Front (oldest) first. *)
