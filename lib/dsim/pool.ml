let default_domains () = Domain.recommended_domain_count ()

let map ?(domains = 1) f items =
  let n = List.length items in
  let domains = max 1 (min domains n) in
  if domains = 1 then List.map f items
  else begin
    let input = Array.of_list items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r = try Ok (f input.(i)) with e -> Error e in
        results.(i) <- Some r;
        worker ()
      end
    in
    let helpers = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error e) -> raise e
         | None -> assert false)
  end
