(* Re-export: the simulator shares the runtime substrate types. *)
include Runtime.Types
