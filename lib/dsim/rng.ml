(* Re-export: the runtime RNG, kept under Dsim for existing call sites. *)
include Runtime.Rng
