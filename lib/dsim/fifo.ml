type 'a cell = Nil | Cons of { v : 'a; mutable next : 'a cell }

type 'a t = {
  mutable head : 'a cell;
  mutable tail : 'a cell;  (** last cell when non-empty, [Nil] otherwise *)
  mutable len : int;
}

let create () = { head = Nil; tail = Nil; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let push t v =
  let c = Cons { v; next = Nil } in
  (match t.tail with Nil -> t.head <- c | Cons last -> last.next <- c);
  t.tail <- c;
  t.len <- t.len + 1

let take_first t pred =
  let rec scan prev cell =
    match cell with
    | Nil -> None
    | Cons c ->
        if pred c.v then begin
          (match prev with
          | Nil -> t.head <- c.next
          | Cons p -> p.next <- c.next);
          (match c.next with Nil -> t.tail <- prev | Cons _ -> ());
          t.len <- t.len - 1;
          Some c.v
        end
        else scan cell c.next
  in
  scan Nil t.head

let pop t =
  match t.head with
  | Nil -> None
  | Cons c ->
      t.head <- c.next;
      (match c.next with Nil -> t.tail <- Nil | Cons _ -> ());
      t.len <- t.len - 1;
      Some c.v

let clear t =
  t.head <- Nil;
  t.tail <- Nil;
  t.len <- 0

let iter f t =
  let rec go = function
    | Nil -> ()
    | Cons c ->
        f c.v;
        go c.next
  in
  go t.head

let to_list t =
  let rec go acc = function
    | Nil -> List.rev acc
    | Cons c -> go (c.v :: acc) c.next
  in
  go [] t.head
