(* Re-export: the runtime class-bucketed queue. *)
include Runtime.Cq
