(** Trace bus: the engine publishes structured events; analyses subscribe.

    Communication-step and message-count figures (paper Fig. 1 and Fig. 7)
    are computed from collected traces rather than instrumenting protocols. *)

open Runtime

type event =
  | Spawned of Types.proc_id * string
  | Sent of Types.message * Types.time  (** message and its delivery time *)
  | Dropped of Types.message  (** lost by the network model *)
  | Delivered of Types.message
  | Dead_letter of Types.message  (** destination was down *)
  | Crashed of Types.proc_id
  | Recovered of Types.proc_id
  | Work of Types.proc_id * string * float
      (** simulated local computation: process, category label, duration *)
  | Note of Types.proc_id * string  (** free-form protocol annotation *)

type entry = { at : Types.time; event : event }

type t
(** A collector accumulating entries in order. *)

val create : ?enabled:bool -> unit -> t
(** [~enabled:false] gives a no-op sink: [record] discards everything and
    [entries] stays empty. Trials that never read their trace use this to
    keep the simulator hot path allocation-free (the engine also skips
    building the event values — see {!Engine.create}). *)

val enabled : t -> bool

val record : t -> Types.time -> event -> unit
(** No-op when the collector is disabled. *)

val entries : t -> entry list
(** Entries in chronological (record) order. *)

val message_count : ?subject:(Types.message -> bool) -> t -> int
(** Number of [Sent] entries matching [subject] (default: all). *)

val communication_steps : ?subject:(Types.message -> bool) -> t -> int
(** Length of the longest causal chain of matching messages: a message [m2]
    extends a chain ending in [m1] when [m2.src = m1.dst] and [m2] was sent
    at or after [m1]'s delivery. This reproduces the "communication steps"
    counting of the paper's Figures 1 and 7. *)

type stats = {
  sent : int;
  delivered : int;
  dropped : int;  (** lost by the network model *)
  dead_lettered : int;  (** destination was down *)
  crashes : int;
  recoveries : int;
  notes : int;
}

val stats : t -> stats
(** Aggregate counts over the whole trace. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_event : Format.formatter -> event -> unit
