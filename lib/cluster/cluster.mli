(** Sharded cluster: the key space partitioned across independent replica
    groups.

    A cluster of S shards wires S complete e-Transaction deployments side by
    side on one runtime — each group has its own database servers, its own
    application-server set with a failure detector spanning only that group,
    and its own wo-register namespace (register names are prefixed [g<s>:],
    see {!Etx.Appserver}) — plus C clients that route every request by its
    {!Etx.Etx_types.routing_key} through a shared {!Etx.Shard_map}. With the
    default wiring groups never exchange protocol messages: consensus peers,
    2PC participants and cleaning scans are all group-local, so adding
    shards multiplies the cluster's independent agreement pipelines (partial
    replication in the sense of Sutra & Shapiro) instead of deepening one.

    A one-shard cluster is the plain {!Etx.Deployment} — same spawn order,
    same pids, same process names, same network model — so single-group
    behaviour (and its goldens) are reproduced exactly.

    Built with [~cross:true], a request whose declared keyset spans several
    groups commits atomically across them (DESIGN.md §15): the home group's
    server coordinates a Paxos-Commit instance over the groups' wo-registers
    — one vote register per participant shard, written yes only after that
    shard's databases all prepared — and any group's cleaner can finish or
    abort the instance when the coordinator is suspected. Consensus itself
    stays group-local (each register lives in its owner group's namespace);
    only the thin gx message layer crosses group boundaries. Co-located
    requests still take the classic path, record-for-record. *)

open Runtime

type group = {
  index : int;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  app_servers : Types.proc_id list;  (** ordered; head = group primary *)
  caches : (Types.proc_id * Etx.Method_cache.t) list;
      (** one method cache per app server when built with [~cache:true];
          empty otherwise *)
  replicas : (Types.proc_id * Dbms.Replica.t * Types.proc_id) list;
      (** (replica pid, handle, primary db pid) for the group's read
          replicas when built with [~replicas:n > 0]; empty otherwise *)
}

type t = {
  rt : Etx_runtime.t;
  map : Etx.Shard_map.t;  (** the epoch-0 map the cluster booted with *)
  groups : group array;
      (** every replica group, spare (pre-provisioned) groups included *)
  clients : Etx.Client.handle list;
  business : Etx.Business.t;
  replica_bound : int;
  cross : bool;  (** built with cross-shard commit wiring *)
  reconfig : bool;  (** built with elastic reconfiguration wiring *)
  maps : Etx.Shard_map.t list ref;
      (** the cluster's map history, newest first (last = the epoch-0
          [map]); {!split} appends each established epoch *)
  ops : int ref;  (** operator actions (splits) still in flight *)
}

val build :
  ?net:Etx_runtime.netmodel ->
  ?map:Etx.Shard_map.t ->
  ?shards:int ->
  ?n_app_servers:int ->
  ?n_dbs:int ->
  ?fd_spec:Etx.Appserver.fd_spec ->
  ?timing:Dbms.Rm.timing ->
  ?disk_force_latency:float ->
  ?seed_data:(string * Dbms.Value.t) list ->
  ?client_period:float ->
  ?clean_period:float ->
  ?poll:float ->
  ?gc_after:float ->
  ?backend:Etx.Appserver.register_backend ->
  ?recoverable:bool ->
  ?register_disk_latency:float ->
  ?batch:int ->
  ?cache:bool ->
  ?group_commit:bool ->
  ?replicas:int ->
  ?replica_bound:int ->
  ?ship_period:float ->
  ?cross:bool ->
  ?reconfig:bool ->
  ?provision:int ->
  rt:Etx_runtime.t ->
  business:Etx.Business.t ->
  scripts:(issue:(string -> Etx.Client.record) -> unit) list ->
  unit ->
  t
(** Builds on a fresh runtime. [shards] defaults to 1; pass [map] to control
    placement (its shard count then wins). [scripts] gives one script per
    client. [seed_data] is partitioned: each shard's databases store only
    the keys the map places there. Pid layout: databases first, shard-major
    ([0 .. shards*n_dbs-1], preserving the three-tier network model's
    "first pids are databases" convention), then each shard's application
    servers, then the clients. Remaining options mean exactly what they do
    in {!Etx.Deployment.build}, applied per group.

    [cache:true] equips every application server with a method cache and
    every database with commit-piggybacked invalidation (both group-local;
    see {!Etx.Deployment.build}); clients additionally rotate their
    first-try server ([affinity = client index]) so cached read traffic
    spreads over each group's servers. With the default [false], spawn
    order, affinity and message streams are identical to earlier
    revisions.

    [group_commit], [replicas], [replica_bound] and [ship_period] mean
    what they do in {!Etx.Deployment.build}, applied per group: every
    shard's databases get the coalescing redo log, and every shard gets
    [replicas] asynchronous read replicas per database (names
    [g<s>:db<i>-r<j>]), spawned after the clients so [replicas:0]
    clusters keep their exact pid layout.

    [cross:true] supplies every application server the cross-shard commit
    wiring ({!Etx.Appserver.cross_cfg}): requests whose declared keysets
    span several groups then commit atomically via Paxos Commit. With the
    default [false] no gx fiber is forked anywhere and every message
    stream is identical to earlier revisions.

    [reconfig:true] wires elastic reconfiguration (DESIGN.md §16): every
    application server tracks the epoch-versioned shard map and bounces
    requests its group does not own under the current epoch, every
    database accepts the migration protocol ([Dbms.Server ~migratable]),
    every client re-routes through its own mutable map view refreshed on
    epoch-stamped bounces, and group 0's consensus decides the
    [cfg:e<n>] register sequence. [provision] (default 0, requires
    [reconfig]) spawns that many spare replica groups — complete but
    owning no keys — as {!split} destinations; database pids stay first
    ([0 .. (shards+provision)*n_dbs - 1]). With the default [false]
    nothing changes: no cfg fiber, no spare processes, message streams
    identical to the static cluster. *)

val run_to_quiescence : ?deadline:float -> t -> bool
(** Every client script finished, every database of every shard settled
    (no in-doubt transaction, every yes vote decided), and every replica
    of an up primary caught up to its primary's committed watermark. *)

val shards : t -> int
(** Number of replica groups, spare (pre-provisioned) ones included. *)

val group : t -> int -> group
val shard_of_key : t -> string -> int
val primary : t -> shard:int -> Types.proc_id
val all_records : t -> Etx.Client.record list
(** Delivered records of every client (per-client order preserved). *)

(** {2 Elastic reconfiguration (requires [build ~reconfig:true])} *)

val current_map : t -> Etx.Shard_map.t
(** The newest map the operator has observed established. *)

val epoch : t -> int
(** [Etx.Shard_map.epoch (current_map t)]. *)

val await_epoch : ?deadline:float -> t -> int -> bool
(** Drive the runtime until the cluster's observed epoch reaches the
    given value (or the deadline passes — then [false]). *)

val split :
  ?boundary:string -> t -> group:int -> target:int -> int
(** Initiate an online split of [group]'s key slots toward the spare
    group [target] (see {!Etx.Shard_map.split}) and return the epoch the
    migration will establish. Asynchronous: an ephemeral operator-console
    process sends [Mig_start] to a live config-group server — re-sent
    until the flip is observed, so a crashed driver's migration is
    re-driven — and polls [Cfg_query] until the new epoch answers, then
    records the established map in [t.maps]. Rendezvous with completion
    via {!await_epoch} or {!run_to_quiescence} (which waits for all
    pending operator actions). Raises [Invalid_argument] if the cluster
    was not built with [~reconfig:true], if [target] is not a provisioned
    group, or if the split is ill-formed. *)

(** Cluster-level specification checks: the paper's per-group properties on
    every shard, plus the isolation property sharding adds. *)
module Spec : sig
  val shard_views : t -> Etx.Spec.View.t list
  (** One {!Etx.Spec.View.t} per shard, labelled [shard<i>]: the shard's
      databases, and the delivered records whose transaction that shard
      participated in — the records whose routing key it owns, plus (on
      cross-shard clusters) every record whose committed plan spanned it.
      Each participant view then carries the full per-shard obligations
      (A.1, exactly-once, ...) for the record. *)

  val global_exactly_once : t -> string list
  (** No delivered request committed a transaction on any shard outside
      its participant set — the home shard of its routing key, plus (on
      cross-shard clusters) the shards its committed plan spanned. (The
      per-view {!Etx.Spec.View.exactly_once} already pins exactly one
      commit, matching the delivered try, on every participant-shard
      database.) *)

  val global_atomicity : t -> string list
  (** The obligation cross-shard commit adds: (a) every delivered
      multi-participant record is committed at every database of every
      shard its plan spanned, and (b) every database anywhere that
      committed a try of a given request committed the {e same} try — a
      global transaction decides once, cluster-wide. Trivially empty on
      clusters without cross-shard traffic. *)

  val migration_integrity : t -> string list
  (** The obligations elastic reconfiguration adds; [[]] on clusters
      built without [~reconfig:true]. (a) every delivered record was
      served by a group that owned its key under some epoch of the map
      history; (b) every delivered try committed in {e exactly one}
      replica group — zero is a lost record, two a cross-flip duplicate
      execution; (c) for every consecutive epoch pair and moving range,
      each source-committed write of a moving key sits at or below the
      import watermark every destination database acked (nothing was
      left behind by the copy phase). *)

  val check_all : t -> string list
  (** [check_all] of every shard view (including per-shard cache
      coherence when caching is on and per-shard replica consistency
      when replicas are on), then {!global_exactly_once},
      {!global_atomicity} and {!migration_integrity}. *)

  val obs_consistency : Obs.Registry.t -> t -> string list
  (** Cross-checks an observability registry attached to the cluster's
      runtime against ground truth: total and per-client
      [client.committed] counters must equal the clients' delivered
      record counts exactly, and each shard's [server.committed] must be
      at least the number of committed records homed there (cleaners may
      re-terminate, so server-side counts are a lower bound). Returns
      violation descriptions; [[]] = consistent. *)
end
