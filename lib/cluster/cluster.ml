open Runtime
module Rt = Etx_runtime

type group = {
  index : int;
  dbs : (Types.proc_id * Dbms.Rm.t) list;
  app_servers : Types.proc_id list;
  caches : (Types.proc_id * Etx.Method_cache.t) list;
  replicas : (Types.proc_id * Dbms.Replica.t * Types.proc_id) list;
}

type t = {
  rt : Rt.t;
  map : Etx.Shard_map.t;
  groups : group array;
  clients : Etx.Client.handle list;
  business : Etx.Business.t;
  replica_bound : int;
  cross : bool;
  reconfig : bool;
  maps : Etx.Shard_map.t list ref;
      (* the cluster's map history, newest first; last = the epoch-0 [map].
         Appended by [split] when a migration's flip is observed. *)
  ops : int ref;  (* operator actions (splits) still in flight *)
}

let shards t = Array.length t.groups

let group t s = t.groups.(s)

let shard_of_key t key = Etx.Shard_map.shard_of t.map key

let primary t ~shard = List.hd t.groups.(shard).app_servers

let all_records t =
  List.concat_map (fun c -> Etx.Client.records c) t.clients

let build ?net ?map ?(shards = 1) ?(n_app_servers = 3) ?(n_dbs = 1)
    ?(fd_spec = Etx.Appserver.Fd_oracle) ?(timing = Dbms.Rm.paper_timing)
    ?(disk_force_latency = 12.5) ?(seed_data = []) ?(client_period = 400.)
    ?(clean_period = 20.) ?(poll = 10.) ?gc_after
    ?(backend = Etx.Appserver.Reg_ct) ?(recoverable = false)
    ?(register_disk_latency = 12.5) ?batch ?(cache = false)
    ?(group_commit = false) ?(replicas = 0) ?(replica_bound = 8)
    ?(ship_period = 5.) ?(cross = false) ?(reconfig = false) ?(provision = 0)
    ~rt ~business ~scripts () =
  if replicas < 0 then invalid_arg "Cluster.build: replicas must be >= 0";
  if provision < 0 then invalid_arg "Cluster.build: provision must be >= 0";
  if provision > 0 && not reconfig then
    invalid_arg "Cluster.build: provision needs ~reconfig:true";
  let map =
    match map with
    | Some m -> m
    | None -> Etx.Shard_map.create ~shards ()
  in
  let shards = Etx.Shard_map.shards map in
  if scripts = [] then invalid_arg "Cluster.build: no client scripts";
  (* spare (pre-provisioned) groups spawn complete — databases, servers,
     register namespace — but own no slice of the epoch-0 map; a later
     [split] migrates keys into them under live traffic *)
  let ngroups = shards + provision in
  let net =
    match net with
    | Some n -> n
    | None -> Dnet.Netmodel.three_tier ~n_dbs:(ngroups * n_dbs) ()
  in
  (rt : Rt.t).set_net net;
  (* Group-0 processes keep the single-group names (db1, a1, client) so a
     one-shard cluster is observably the plain deployment. *)
  let gname g base = if g = 0 then base else Printf.sprintf "g%d:%s" g base in
  (* Each shard stores only the keys it owns; a one-shard cluster gets
     everything, matching [Deployment.build ~seed_data]. *)
  let seed_for s =
    List.filter (fun (k, _) -> Etx.Shard_map.shard_of map k = s) seed_data
  in
  (* Databases first, shard-major: pids 0 .. shards*n_dbs - 1. The network
     model's "first pids are databases" convention and the deployment's pid
     layout both survive sharding this way. *)
  let app_pids = Array.make ngroups [] in
  (* per-db replica pid cell, filled after the replicas spawn (last) *)
  let group_cells =
    Array.init ngroups (fun s ->
        let seed_data = seed_for s in
        List.init n_dbs (fun i ->
            let name = gname s (Printf.sprintf "db%d" (i + 1)) in
            let disk =
              Dstore.Disk.create ~force_latency:disk_force_latency
                ~label:"log" ()
            in
            let rm =
              Dbms.Rm.create ~timing ~seed_data ~group_commit ~disk ~name ()
            in
            let cell = ref [] in
            let ship =
              if replicas > 0 then Some (ship_period, fun () -> !cell)
              else None
            in
            let pid =
              Dbms.Server.spawn rt ~invalidate:cache ~migratable:reconfig
                ?ship ~name ~rm
                ~observers:(fun () -> app_pids.(s))
                ()
            in
            (pid, rm, cell)))
  in
  let group_dbs =
    Array.map (List.map (fun (pid, rm, _) -> (pid, rm))) group_cells
  in
  (* Application servers per shard: each group has its own server set,
     failure detector (group-local, widened to every provisioned group
     when reconfiguration is on — migration drivers must be able to give
     up on crashed servers of other groups), consensus agents and
     register namespace. *)
  let db_base = ngroups * n_dbs in
  (* one shared wiring record: every server (spare groups included) tracks
     the epoch-versioned map, and the config group hosts the drivers *)
  let reconfig_cfg =
    if reconfig then
      Some
        {
          Etx.Appserver.init_map = map;
          cfg_group = 0;
          rc_groups = ngroups;
          rc_servers_of = (fun g -> app_pids.(g));
          rc_dbs_of =
            (fun g ->
              List.map
                (fun (pid, rm) -> (pid, Dbms.Rm.name rm))
                group_dbs.(g));
        }
    else None
  in
  let groups =
    Array.init ngroups (fun s ->
        let dbs = group_dbs.(s) in
        let db_pids = List.map fst dbs in
        let base = db_base + (s * n_app_servers) in
        let servers = List.init n_app_servers (fun i -> base + i) in
        let caches = ref [] in
        let spawned =
          List.init n_app_servers (fun index ->
              let persist =
                if recoverable then
                  Some
                    (Consensus.Agent.make_persistence
                       ~disk:
                         (Dstore.Disk.create
                            ~force_latency:register_disk_latency
                            ~label:"reg-log" ()))
                else None
              in
              let mcache =
                if cache then Some (Etx.Method_cache.create ()) else None
              in
              let reps =
                if replicas > 0 then
                  Some
                    (fun () ->
                      List.map
                        (fun (db_pid, _, cell) -> (db_pid, !cell))
                        group_cells.(s))
                else None
              in
              (* the gx wiring reads [app_pids] lazily, so it sees every
                 group once the whole cluster has spawned *)
              let cross_cfg =
                if cross then
                  Some
                    {
                      Etx.Appserver.shard_of_key =
                        (fun key -> Etx.Shard_map.shard_of map key);
                      peers = (fun k -> app_pids.(k));
                    }
                else None
              in
              let cfg =
                Etx.Appserver.config ~fd_spec ~clean_period ~poll ?gc_after
                  ~backend ?persist ?batch ?cache:mcache ?replicas:reps
                  ~replica_bound ?cross:cross_cfg ?reconfig:reconfig_cfg
                  ~group:s ~rt ~index ~servers ~dbs:db_pids ~business ()
              in
              let pid = Etx.Appserver.spawn cfg in
              (match mcache with
              | Some c -> caches := !caches @ [ (pid, c) ]
              | None -> ());
              pid)
        in
        assert (spawned = servers);
        app_pids.(s) <- servers;
        { index = s; dbs; app_servers = servers; caches = !caches;
          replicas = [] })
  in
  (* Clients last, all behind the same shard router. *)
  let router key =
    let s = Etx.Shard_map.shard_of map key in
    (s, groups.(s).app_servers)
  in
  let clients =
    List.mapi
      (fun i script ->
        let name = if i = 0 then "client" else Printf.sprintf "client%d" (i + 1) in
        (* with caching on, clients rotate their first-try server so read
           traffic (hits are served locally by whichever server is asked)
           spreads over the group instead of serializing at the head;
           cache-off runs keep the paper's head-first behaviour so they
           stay record-for-record with earlier revisions *)
        let affinity = if cache then i else 0 in
        (* each client gets its own mutable map view: clients learn of a
           reconfiguration independently, at their own pace *)
        let rc =
          if reconfig then
            Some
              {
                Etx.Client.map;
                group_servers = (fun g -> app_pids.(g));
                cfg_servers = app_pids.(0);
              }
          else None
        in
        Etx.Client.spawn rt ~name ~period:client_period ~affinity ~router
          ?reconfig:rc ~servers:groups.(0).app_servers ~script ())
      scripts
  in
  (* read replicas spawn LAST, shard-major: a [replicas:0] cluster
     allocates exactly the pids it always did (see Etx.Deployment) *)
  let groups =
    Array.mapi
      (fun s g ->
        let seed_data = seed_for s in
        let reps =
          List.concat
            (List.mapi
               (fun i (db_pid, _, cell) ->
                 List.init replicas (fun r ->
                     let name =
                       gname s (Printf.sprintf "db%d-r%d" (i + 1) (r + 1))
                     in
                     let replica =
                       Dbms.Replica.create ~seed_data ~name ()
                     in
                     let rpid =
                       Dbms.Replica.spawn rt
                         ~sql_cpu:timing.Dbms.Rm.sql_cpu ~name ~replica ()
                     in
                     cell := !cell @ [ rpid ];
                     (rpid, replica, db_pid)))
               group_cells.(s))
        in
        { g with replicas = reps })
      groups
  in
  {
    rt;
    map;
    groups;
    clients;
    business;
    replica_bound;
    cross;
    reconfig;
    maps = ref [ map ];
    ops = ref 0;
  }

let group_replicas_settled rt g =
  List.for_all
    (fun (_, replica, db_pid) ->
      (not ((rt : Rt.t).is_up db_pid))
      ||
      let rm = List.assoc db_pid g.dbs in
      Dbms.Replica.applied_lsn replica = Dbms.Rm.last_commit_lsn rm)
    g.replicas

let run_to_quiescence ?(deadline = 600_000.) t =
  let settled () =
    !(t.ops) = 0
    && List.for_all Etx.Client.script_done t.clients
    && Array.for_all
         (fun g ->
           List.for_all
             (fun (_, rm) -> Etx.Deployment.rm_settled rm)
             g.dbs
           && group_replicas_settled t.rt g)
         t.groups
  in
  t.rt.run_until ~deadline settled

(* ------------------------------------------------------------------ *)
(* Elastic reconfiguration (DESIGN.md §16): the operator surface. *)

let current_map t = List.hd !(t.maps)

let epoch t = Etx.Shard_map.epoch (current_map t)

let await_epoch ?(deadline = 600_000.) t e =
  t.rt.run_until ~deadline (fun () -> epoch t >= e)

(* Initiate an online split of [group]'s slots toward [target] and return
   the epoch the migration will establish. Runs asynchronously: an
   ephemeral operator-console process nudges a live config-group server
   with [Mig_start] (re-sent until the flip is observed, so a crashed
   driver's migration is re-driven by whichever server is up next) and
   polls [Cfg_query] until the cluster answers with the new epoch's map,
   which it then records in the cluster's map history. [await_epoch] (or
   [run_to_quiescence], which waits for all pending operator actions)
   rendezvouses with completion. *)
let split ?boundary t ~group ~target =
  if not t.reconfig then
    invalid_arg "Cluster.split: build the cluster with ~reconfig:true";
  if target < 0 || target >= Array.length t.groups then
    invalid_arg "Cluster.split: target group not provisioned";
  let from = current_map t in
  let tgt = Etx.Shard_map.split ?boundary from ~group ~target () in
  let e = Etx.Shard_map.epoch tgt in
  let cfg_servers = t.groups.(0).app_servers in
  t.ops := !(t.ops) + 1;
  let _pid =
    t.rt.spawn
      ~name:(Printf.sprintf "opctl-e%d" e)
      ~main:(fun ~recovery () ->
        if not recovery then begin
          let ch = Dnet.Rchannel.create () in
          Dnet.Rchannel.start ch;
          let rec drive () =
            (match List.find_opt t.rt.is_up cfg_servers with
            | Some s ->
                Dnet.Rchannel.send ch s
                  (Reconfig.Rmsg.Mig_start { target = tgt })
            | None -> ());
            Dnet.Rchannel.broadcast ch cfg_servers
              (Reconfig.Rmsg.Cfg_query { have = e - 1 });
            let deadline = Rt.now () +. 200. in
            let rec wait found =
              if found <> None || Rt.now () >= deadline then found
              else
                match
                  Rt.recv_cls
                    ~timeout:(deadline -. Rt.now ())
                    Reconfig.Rmsg.cls_cfg_reply
                with
                | Some
                    { Types.payload = Reconfig.Rmsg.Cfg_current { map }; _ }
                  when Etx.Shard_map.epoch map >= e ->
                    wait (Some map)
                | Some _ | None -> wait found
            in
            match wait None with
            | Some m ->
                t.maps := m :: !(t.maps);
                t.ops := !(t.ops) - 1
            | None -> drive ()
          in
          drive ()
        end)
  in
  e

(* ------------------------------------------------------------------ *)

module Spec = struct
  (* The groups whose databases committed the record's delivered try.
     Without reconfiguration this is the serving group; under it the two
     can differ — a result committed at the source before the flip is
     replayed by the destination via the driver's decision transfer, so
     the commit legitimately lives at the old owner. *)
  let committed_shards t (r : Etx.Client.record) =
    Array.to_list t.groups
    |> List.filter_map (fun g ->
           if
             List.exists
               (fun (_, rm) ->
                 List.exists
                   (fun xid ->
                     xid.Dbms.Xid.rid = r.rid && xid.Dbms.Xid.j = r.tries)
                   (Dbms.Rm.committed_xids rm))
               g.dbs
           then Some g.index
           else None)

  (* The replica groups a delivered record's transaction actually spanned.
     The serving group alone (stamped into the record by the server, so it
     stays correct when epochs move keys) unless the cluster runs
     cross-shard commit AND the business method's declared keyset spans
     several groups — the exact condition under which the engine forks
     into the Paxos-Commit path — in which case the participants are the
     shards of the {e committed} attempt's plan (later attempts may
     degrade to fewer branches, and only the branches of the winning plan
     ran anywhere). Under reconfiguration the participant is the group
     that {e committed} the try (falling back to the serving group when no
     commit is found — the per-view A.1 check then reports the miss). *)
  let participant_shards t (r : Etx.Client.record) =
    if t.reconfig && (not r.cached) && r.replica = None then
      match committed_shards t r with [] -> [ r.group ] | gs -> gs
    else
    let home = r.group in
    match t.business.Etx.Business.cross with
    | Some cross when t.cross && not r.cached && r.replica = None -> (
        let ks = t.business.Etx.Business.keys r.body in
        match
          Etx.Shard_map.shards_of t.map
            (ks.Etx.Business.reads @ ks.Etx.Business.writes)
        with
        | _ :: _ :: _ ->
            Etx.Shard_map.shards_of t.map
              (List.map fst
                 (cross.Etx.Business.plan ~attempt:r.tries ~body:r.body))
        | _ -> [ home ])
    | _ -> [ home ]

  let shard_views t =
    let scripts_done = List.for_all Etx.Client.script_done t.clients in
    let records = all_records t in
    Array.to_list
      (Array.map
         (fun g ->
           {
             Etx.Spec.View.label = Printf.sprintf "shard%d" g.index;
             dbs = g.dbs;
             (* a record belongs to every shard its transaction spanned:
                the per-shard A.1/exactly-once obligations then hold at
                each participant (all its databases committed the one
                delivered try), not just the home group *)
             records =
               List.filter
                 (fun (r : Etx.Client.record) ->
                   List.mem g.index (participant_shards t r))
                 records;
             scripts_done;
             notes = t.rt.notes;
             (* as in Etx.Spec.view: a crashed server's frozen cache is
                unreachable and flushed on recovery — skip it *)
             caches =
               List.filter (fun (pid, _) -> t.rt.is_up pid) g.caches;
             business = Some t.business;
             replicas = g.replicas;
             replica_bound = t.replica_bound;
           })
         t.groups)

  let global_exactly_once t =
    List.concat_map
      (fun (r : Etx.Client.record) ->
        let participants = participant_shards t r in
        Array.to_list t.groups
        |> List.concat_map (fun g ->
               if List.mem g.index participants then []
               else
                 List.filter_map
                   (fun (_, rm) ->
                     let strays =
                       List.filter
                         (fun xid -> xid.Dbms.Xid.rid = r.rid)
                         (Dbms.Rm.committed_xids rm)
                     in
                     if strays = [] then None
                     else
                       Some
                         (Printf.sprintf
                            "global exactly-once: request %d (key %S, \
                             participants %s) also committed at %s on shard %d"
                            r.rid r.key
                            (String.concat ","
                               (List.map string_of_int participants))
                            (Dbms.Rm.name rm) g.index))
                   g.dbs))
      (all_records t)

  (* The obligation cross-shard commit adds (DESIGN.md §15): a global
     transaction decides once, cluster-wide.

     (a) every delivered multi-participant record is committed at every
     database of every shard its plan spanned — no "debited here, never
     credited there";
     (b) outcome agreement across shards: every database anywhere that
     committed a try of request [rid] committed the {e same} try. A
     participant that committed try 1 while the others aborted it and
     committed try 2 shows up here even though each shard is locally
     consistent. *)
  let global_atomicity t =
    let violations = ref [] in
    let add fmt =
      Printf.ksprintf (fun s -> violations := s :: !violations) fmt
    in
    List.iter
      (fun (r : Etx.Client.record) ->
        match participant_shards t r with
        | [] | [ _ ] -> ()
        | shards ->
            List.iter
              (fun s ->
                List.iter
                  (fun (_, rm) ->
                    let committed =
                      List.exists
                        (fun xid ->
                          xid.Dbms.Xid.rid = r.rid && xid.Dbms.Xid.j = r.tries)
                        (Dbms.Rm.committed_xids rm)
                    in
                    if not committed then
                      add
                        "global atomicity: request %d try %d delivered but \
                         not committed at %s (participant shard %d)"
                        r.rid r.tries (Dbms.Rm.name rm) s)
                  t.groups.(s).dbs)
              shards)
      (all_records t);
    let by_rid = Hashtbl.create 64 in
    Array.iter
      (fun g ->
        List.iter
          (fun (_, rm) ->
            List.iter
              (fun xid ->
                let cur =
                  Option.value ~default:[]
                    (Hashtbl.find_opt by_rid xid.Dbms.Xid.rid)
                in
                Hashtbl.replace by_rid xid.Dbms.Xid.rid
                  ((xid.Dbms.Xid.j, Dbms.Rm.name rm) :: cur))
              (Dbms.Rm.committed_xids rm))
          g.dbs)
      t.groups;
    Hashtbl.iter
      (fun rid entries ->
        match List.sort_uniq compare (List.map fst entries) with
        | [] | [ _ ] -> ()
        | js ->
            add
              "global atomicity: request %d committed as different tries {%s} \
               across databases (%s)"
              rid
              (String.concat "," (List.map string_of_int js))
              (String.concat ","
                 (List.sort_uniq compare (List.map snd entries))))
      by_rid;
    List.rev !violations

  (* The obligations elastic reconfiguration adds (DESIGN.md §16):

     (a) {e served by an owner}: the group that delivered each committed
     record owned its routing key under some epoch of the cluster's map
     history — a request never executes at a group the key was never
     placed in;

     (b) {e one committing group}: each delivered try committed its
     transaction in exactly one replica group. Zero groups means the
     delivered result corresponds to no commit anywhere (a lost record);
     two means a try re-executed across a flip (the duplicate the
     driver's decision transfer exists to prevent);

     (c) {e nothing left behind}: for every consecutive epoch pair and
     every moving range, each source-committed write of a moving key sits
     at or below the import watermark every destination database acked —
     the copy phase drained the source before the flip. *)
  let migration_integrity t =
    if not t.reconfig then []
    else begin
      let violations = ref [] in
      let add fmt =
        Printf.ksprintf (fun s -> violations := s :: !violations) fmt
      in
      let maps = !(t.maps) in
      List.iter
        (fun (r : Etx.Client.record) ->
          if (not r.cached) && r.replica = None then begin
            if
              not
                (List.exists
                   (fun m -> Etx.Shard_map.shard_of m r.key = r.group)
                   maps)
            then
              add
                "migration: request %d (key %S) served by shard %d, which \
                 owned the key under no epoch <= %d"
                r.rid r.key r.group (epoch t);
            match committed_shards t r with
            | [ _ ] -> ()
            | [] ->
                add
                  "migration: request %d try %d delivered but committed at \
                   no group"
                  r.rid r.tries
            | gs ->
                add
                  "migration: request %d try %d committed at groups {%s} — \
                   a cross-flip duplicate execution"
                  r.rid r.tries
                  (String.concat "," (List.map string_of_int gs))
          end)
        (all_records t);
      let rec pairs = function
        | newer :: (older :: _ as rest) -> (older, newer) :: pairs rest
        | _ -> []
      in
      List.iter
        (fun (older, newer) ->
          List.iter
            (fun { Etx.Shard_map.src; dst } ->
              List.iter
                (fun (_, s_rm) ->
                  let s_name = Dbms.Rm.name s_rm in
                  List.iter
                    (fun xid ->
                      let moving =
                        List.exists
                          (fun k ->
                            Etx.Shard_map.shard_of older k = src
                            && Etx.Shard_map.shard_of newer k = dst)
                          (Dbms.Rm.writes_of s_rm xid)
                      in
                      match (moving, Dbms.Rm.commit_lsn_of s_rm xid) with
                      | true, Some lsn ->
                          List.iter
                            (fun (_, d_rm) ->
                              let wm =
                                Dbms.Rm.import_watermark d_rm ~src:s_name
                              in
                              if wm < lsn then
                                add
                                  "migration: %s committed request %d try \
                                   %d at LSN %d on a key moving to shard \
                                   %d, but %s imported it only through LSN \
                                   %d"
                                  s_name xid.Dbms.Xid.rid xid.Dbms.Xid.j lsn
                                  dst (Dbms.Rm.name d_rm) wm)
                            t.groups.(dst).dbs
                      | _ -> ())
                    (Dbms.Rm.committed_xids s_rm))
                t.groups.(src).dbs)
            (Etx.Shard_map.diff older newer))
        (pairs maps);
      List.rev !violations
    end

  let check_all t =
    List.concat_map Etx.Spec.View.check_all (shard_views t)
    @ global_exactly_once t @ global_atomicity t @ migration_integrity t

  (* The observability layer double-counts nothing by construction:
     [client.committed] is incremented exactly where a client appends a
     delivered record, so any drift between the registry and the client's
     own records is a bug in the obs plumbing, not in the protocol. *)
  let obs_consistency reg t =
    let violations = ref [] in
    let add fmt =
      Printf.ksprintf (fun s -> violations := s :: !violations) fmt
    in
    let records = all_records t in
    let total = Obs.Registry.counter_total reg "client.committed" in
    if total <> List.length records then
      add "obs: client.committed=%d but clients delivered %d records" total
        (List.length records);
    List.iteri
      (fun i c ->
        let node =
          if i = 0 then "client" else Printf.sprintf "client%d" (i + 1)
        in
        let n = Obs.Registry.counter_value reg ~node ~name:"client.committed" in
        let expect = List.length (Etx.Client.records c) in
        if n <> expect then
          add "obs: %s client.committed=%d but it delivered %d records" node n
            expect)
      t.clients;
    Array.iter
      (fun g ->
        (* cache- and replica-served records never committed a transaction,
           so they do not contribute to any server.committed counter *)
        let homed =
          List.length
            (List.filter
               (fun (r : Etx.Client.record) ->
                 (not r.cached)
                 && r.replica = None
                 &&
                 (* [server.committed] counts at the group that ran the
                    terminate — under reconfiguration the committing
                    group, not necessarily the one that delivered the
                    (possibly replayed) result *)
                 if t.reconfig then List.mem g.index (committed_shards t r)
                 else Etx.Shard_map.shard_of t.map r.key = g.index)
               records)
        in
        let n = Obs.Registry.counter_total ~group:g.index reg "server.committed" in
        (* cleaners may re-terminate, so the server-side count is a lower
           bound only: every delivered commit had at least one terminating
           commit in its home group *)
        if n < homed then
          add
            "obs: shard%d server.committed=%d < %d committed records homed \
             there"
            g.index n homed)
      t.groups;
    List.rev !violations
end
