(** The client protocol (paper Figure 2), wrapped in a simulated process.

    [issue] keeps retransmitting the request until a {e committed} result
    comes back: it first sends to the default primary, falls back to
    broadcasting to every application server after the back-off period, and
    increments the result identifier [j] whenever a try aborts. Only a
    committed result is delivered to the end-user — that, together with the
    server-side protocol, is the exactly-once guarantee.

    One deliberate strengthening of the figure's pseudo-code: after the
    broadcast (line 6) the paper waits unboundedly (line 7); we re-broadcast
    every back-off period, which is strictly more live and matches the
    paper's stated design ("clients use a simple timeout mechanism to
    re-submit requests"). *)

open Runtime

type record = {
  rid : int;
  key : string;  (** the request's routing key *)
  body : string;
  result : Etx_types.result_value;  (** the delivered (committed) result *)
  tries : int;  (** the final result identifier [j] *)
  issued_at : float;
  delivered_at : float;
  cached : bool;
      (** served from an app server's method cache ([Result_cached_msg]):
          no transaction was committed for this request, so the spec holds
          the record to the cache-coherence obligation instead of
          A.1/exactly-once *)
  replica : (int * int) option;
      (** [Some (lsn, lag)]: served by an asynchronous read replica
          ([Result_replica_msg]) from the primary's committed state as of
          [lsn], with provable staleness [lag] (an LSN delta ≤ the
          deployment's staleness bound); no transaction was committed for
          this request, so the spec holds the record to the
          replica-consistency obligation instead of A.1/exactly-once *)
  group : int;
      (** the replica group that served the committed result. Under
          reconfiguration a key's home group changes across epochs; the
          spec reads the serving group from the record instead of
          recomputing it from one map *)
}

type reconfig = {
  mutable map : Shard_map.t;
      (** this client's current view of the epoch-versioned shard map;
          refreshed when a bounce carries a newer epoch (DESIGN.md §16) *)
  group_servers : int -> Types.proc_id list;
      (** group index → that group's application servers *)
  cfg_servers : Types.proc_id list;
      (** the config group's application servers, queried ([Cfg_query])
          for newer maps *)
}

type handle

val spawn :
  Etx_runtime.t ->
  ?name:string ->
  ?period:float ->
  ?affinity:int ->
  ?router:(string -> int * Types.proc_id list) ->
  ?reconfig:reconfig ->
  servers:Types.proc_id list ->
  script:(issue:(string -> record) -> unit) ->
  unit ->
  handle
(** [servers] ordered, head = default primary; [period] is the back-off
    timeout (default 400 ms). [script] runs inside the client process and
    issues requests one at a time; it does not re-run if the client process
    is crashed and recovered (a crashed client stays silent, as in the
    paper's model).

    [affinity] (default 0) rotates the first-try target within the routed
    group's server list ([affinity mod length]), so a fleet of clients can
    spread initial load over the application servers instead of all
    addressing the head; 0 preserves the paper's head-first behaviour
    byte-for-byte. Retries still broadcast to the whole group.

    [router key] resolves the routing key of each issued request to the
    replica group serving it: [(group, group's servers, head = primary)].
    Defaults to [(0, servers)] — the single-group deployment. A sharded
    cluster passes the shard-map lookup here; requests and results carry the
    group on the wire so a misrouted request is dropped by the receiving
    server rather than executed on the wrong shard.

    [reconfig] supersedes [router]: the key is resolved against the
    client's mutable map view on {e every} attempt, and a server bounce
    carrying a newer epoch triggers a map refresh ([Cfg_query] to the
    config group, counted as [client.map_refresh]) followed by an
    immediate re-route of the same try — the client never aborts or
    duplicates a request because the cluster moved its key. *)

val pid : handle -> Types.proc_id

val records : handle -> record list
(** Results delivered so far, oldest first. *)

val script_done : handle -> bool
(** Whether the script ran to completion (the T.1 check). *)
