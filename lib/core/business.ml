open Runtime
module Rt = Etx_runtime

type context = {
  xid : Dbms.Xid.t;
  dbs : Types.proc_id list;
  exec : db:Types.proc_id -> Dbms.Rm.op list -> Dbms.Rm.exec_reply;
  attempt : int;
}

type keyset = { reads : string list; writes : string list }

type branch_reply = { ok : bool; values : Dbms.Value.t option list }

type cross_spec = {
  plan : attempt:int -> body:string -> (string * Dbms.Rm.op list) list;
  finish :
    attempt:int ->
    body:string ->
    replies:(string * branch_reply) list ->
    Etx_types.result_value;
}

type t = {
  label : string;
  run : context -> body:string -> Etx_types.result_value;
  read_only : string -> bool;
  keys : string -> keyset;
  cacheable : Etx_types.result_value -> bool;
  cross : cross_spec option;
}

let no_keys = { reads = []; writes = [] }

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* A committed result is not necessarily a function of committed state: a
   try re-executed during fail-over can commit a transient error report
   (e.g. the database rejected the re-execution of an already-prepared
   transaction). Such results may be delivered — the spec only asks that
   a delivered result was computed and committed — but must never be
   cached as if re-reading would reproduce them. *)
let default_cacheable result = not (has_prefix ~prefix:"error:" result)

let make ?(read_only = fun _ -> false) ?(keys = fun _ -> no_keys)
    ?(cacheable = default_cacheable) ?cross ~label run =
  { label; run; read_only; keys; cacheable; cross }

let trivial =
  make ~label:"trivial"
    (* writes a per-xid marker key, which no declared keyset can name; the
       databases' workspace-derived invalidation covers it *)
    (fun ctx ~body ->
      let key = Printf.sprintf "mark:%s" (Dbms.Xid.to_string ctx.xid) in
      match ctx.dbs with
      | [] -> "ok:" ^ body
      | db :: _ -> (
          match ctx.exec ~db [ Dbms.Rm.Put (key, Dbms.Value.Str body) ] with
          | Dbms.Rm.Exec_ok _ -> "ok:" ^ body
          | Dbms.Rm.Exec_conflict _ | Dbms.Rm.Exec_rejected -> "error:" ^ body))
