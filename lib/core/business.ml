open Runtime
module Rt = Etx_runtime

type context = {
  xid : Dbms.Xid.t;
  dbs : Types.proc_id list;
  exec : db:Types.proc_id -> Dbms.Rm.op list -> Dbms.Rm.exec_reply;
  attempt : int;
}

type t = {
  label : string;
  run : context -> body:string -> Etx_types.result_value;
}

let trivial =
  {
    label = "trivial";
    run =
      (fun ctx ~body ->
        let key = Printf.sprintf "mark:%s" (Dbms.Xid.to_string ctx.xid) in
        match ctx.dbs with
        | [] -> "ok:" ^ body
        | db :: _ -> (
            match ctx.exec ~db [ Dbms.Rm.Put (key, Dbms.Value.Str body) ] with
            | Dbms.Rm.Exec_ok _ -> "ok:" ^ body
            | Dbms.Rm.Exec_conflict _ | Dbms.Rm.Exec_rejected -> "error:" ^ body));
  }
