(* Per-app-server transactional method cache (Pfeifer & Lockemann).

   One instance per application server. Entries are keyed by
   [Etx_types.Cache_key.format ~label ~body] — the identity of a read-only
   business-method invocation — and carry the declared read keyset so
   commit-time invalidation can intersect it against each commit's write
   keyset.

   Consistency hinges on the fill/invalidate race: a result computed
   against snapshot S must not enter the cache after an invalidation for a
   write that S predates has already swept through (the sweep would miss
   it and the stale result would be served forever). The [generation]
   counter closes the window — every invalidation bumps it, and [store]
   refuses a fill whose generation snapshot (taken before the business
   method ran) is no longer current. Over-conservative (any concurrent
   invalidation kills the fill, intersecting or not) but fills are cheap
   to retry and correctness never depends on keyset intersection here. *)

type entry = {
  label : string;
  body : string;
  reads : string list;
  result : Etx_types.result_value;
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable generation : int;
  mutable fills : int;  (** successful stores *)
  mutable drops : int;  (** entries removed by invalidation/flush *)
}

let create () = { tbl = Hashtbl.create 64; generation = 0; fills = 0; drops = 0 }
let generation t = t.generation
let size t = Hashtbl.length t.tbl
let fills t = t.fills
let drops t = t.drops

let find t ~label ~body =
  match Hashtbl.find_opt t.tbl (Etx_types.Cache_key.format ~label ~body) with
  | Some e -> Some e.result
  | None -> None

let store t ~generation ~label ~body ~reads ~result =
  if generation <> t.generation then false
  else begin
    Hashtbl.replace t.tbl
      (Etx_types.Cache_key.format ~label ~body)
      { label; body; reads; result };
    t.fills <- t.fills + 1;
    true
  end

(* [invalidate t ~writes] drops every entry whose read keyset intersects
   [writes]; returns the number dropped. [writes = []] never matches, so a
   pure-marker commit (e.g. [Business.trivial]) costs nothing. *)
let invalidate t ~writes =
  t.generation <- t.generation + 1;
  match writes with
  | [] -> 0
  | _ ->
      let doomed =
        Hashtbl.fold
          (fun key e acc ->
            if List.exists (fun r -> List.mem r writes) e.reads then key :: acc
            else acc)
          t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) doomed;
      let n = List.length doomed in
      t.drops <- t.drops + n;
      n

(* [flush t] drops everything — the response to an [Invalidate { keys = [] }]
   flush-all (a database recovered from a snapshot and can no longer report
   the write keysets of the commits it replayed). *)
let flush t =
  t.generation <- t.generation + 1;
  let n = Hashtbl.length t.tbl in
  Hashtbl.reset t.tbl;
  t.drops <- t.drops + n;
  n

let entries t = Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
