(** Domain types and wire messages of the e-Transaction protocol. *)

type request = {
  rid : int;  (** unique request identifier *)
  key : string;  (** routing key: names the partition the request lives in *)
  body : string;  (** the "Request" domain value (e.g. travel parameters) *)
}

(* The routing key of a request body is the text before the first ':' —
   every workload writes bodies as "acct0:...", "paris:...", etc., so the
   first field names the datum the request touches. Bodies with no ':' are
   their own key. *)
let routing_key body =
  match String.index_opt body ':' with
  | Some i -> String.sub body 0 i
  | None -> body

(** The "Result" domain: what the business logic computed for the end-user
    (reservation numbers, hotel names, or a user-level failure report). *)
type result_value = string

(** A decision pairs a result with its transaction outcome — the content of
    the [regD] write-once registers. The paper writes [(nil, abort)] for a
    cleaning-thread abort; [result = None] encodes the [nil]. *)
type decision = { result : result_value option; outcome : Dbms.Rm.outcome }

let abort_decision = { result = None; outcome = Dbms.Rm.Abort }

(* [group] scopes the message to one replica group of a sharded cluster:
   servers drop requests addressed to another group, so a misrouted message
   can never start a transaction on the wrong shard. Single-group
   deployments use group 0 throughout. *)
(* [span] carries the client's root span id for causal tracing (0 = no
   tracing): the serving application server parents its per-try spans under
   it, stitching the cross-node request tree together. It is observability
   metadata only — no protocol decision reads it. *)
type Runtime.Types.payload +=
  | Request_msg of { request : request; j : int; group : int; span : int }
      (** client → application server: [\[Request, request, j\]] *)
  | Result_msg of { rid : int; j : int; decision : decision; group : int }
      (** application server → client: [\[Result, j, decision\]] *)
  | Reg_a_value of Runtime.Types.proc_id
      (** content of [regA\[j\]]: which server computes result [j] *)
  | Reg_d_value of decision  (** content of [regD\[j\]] *)

(* demux classes for the two client/server message streams *)
let cls_request =
  Runtime.Etx_runtime.register_class ~name:"etx-request" (function
    | Request_msg _ -> true
    | _ -> false)

let cls_result =
  Runtime.Etx_runtime.register_class ~name:"etx-result" (function
    | Result_msg _ -> true
    | _ -> false)

let pp_decision ppf d =
  Format.fprintf ppf "(%s,%s)"
    (match d.result with None -> "nil" | Some r -> r)
    (match d.outcome with Dbms.Rm.Commit -> "commit" | Dbms.Rm.Abort -> "abort")
