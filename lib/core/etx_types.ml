(** Domain types and wire messages of the e-Transaction protocol. *)

type request = {
  rid : int;  (** unique request identifier *)
  key : string;  (** routing key: names the partition the request lives in *)
  body : string;  (** the "Request" domain value (e.g. travel parameters) *)
}

(* The routing key of a request body is the text before the first ':' —
   every workload writes bodies as "acct0:...", "paris:...", etc., so the
   first field names the datum the request touches. Bodies with no ':' are
   their own key. *)
let routing_key body =
  match String.index_opt body ':' with
  | Some i -> String.sub body 0 i
  | None -> body

(** The "Result" domain: what the business logic computed for the end-user
    (reservation numbers, hotel names, or a user-level failure report). *)
type result_value = string

(** A decision pairs a result with its transaction outcome — the content of
    the [regD] write-once registers. The paper writes [(nil, abort)] for a
    cleaning-thread abort; [result = None] encodes the [nil]. *)
type decision = { result : result_value option; outcome : Dbms.Rm.outcome }

let abort_decision = { result = None; outcome = Dbms.Rm.Abort }

(** Canonical names of the protocol's stable registers. One encode/decode
    pair — the application server's writer path and the cleaning thread's
    scanner must agree byte-for-byte on the naming scheme, so neither spells
    the format string on its own. *)
module Reg_name = struct
  (* per-result registers of the classic (unbatched) path *)
  let reg_a ~group ~rid = Printf.sprintf "g%d:regA:r%d" group rid
  let reg_d ~group ~rid = Printf.sprintf "g%d:regD:r%d" group rid

  (* [parse_reg_a name] recovers the request id from a [reg_a] name (with or
     without a consensus instance suffix "[j]"); [None] for every other
     register family — the ":regA:r" literal rejects regD, lease and batch
     names, so a scanner over decided keys sees exactly the classic
     elections. *)
  let parse_reg_a name =
    try Scanf.sscanf name "g%d:regA:r%d" (fun g rid -> Some (g, rid))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

  (* [parse_reg_d name] recovers (group, rid, j) from a decided [reg_d]
     instance key "g<g>:regD:r<rid>[<j>]" — the migration driver's
     decision-transfer scan reads these to find tries terminated by
     servers that have since crashed (their rid states are gone; the
     registers are not). *)
  let parse_reg_d name =
    try
      Scanf.sscanf name "g%d:regD:r%d[%d]%!" (fun g rid j -> Some (g, rid, j))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

  (* lease-epoch register: instance [e] of the consensus object elects the
     holder of lease epoch [e] *)
  let lease ~group = Printf.sprintf "g%d:lease" group

  (* per-batch registers of the leased path: epoch [e], sequence number [k]
     within the epoch. Deliberately unparseable by [parse_reg_a]. *)
  let batch_a ~group ~epoch ~seq =
    Printf.sprintf "g%d:batchA:e%d:k%d" group epoch seq

  let batch_d ~group ~epoch ~seq =
    Printf.sprintf "g%d:batchD:e%d:k%d" group epoch seq

  (* Paxos-Commit registers of the cross-shard path. The transaction is
     globally identified by (rid, j) — the try that planned it — and each
     participant shard [k] owns two registers {e in its own group's
     consensus namespace}:

     - [gx_vote]: the participant's vote. [Gx_vote_value {ok = true}] may
       only be written after every database of shard [k] voted Yes on the
       branch (prepared), so a Commit outcome never meets an unprepared
       database; [ok = false] is the abort vote any suspicious party may
       contest with.
     - [gx_exec]: which server of shard [k] executes the branch (the
       branch-local analogue of [regA]).

     The "gx:" prefix is deliberately unparseable by [parse_reg_a], and
     [parse_gx_exec] rejects vote names (the ":a" suffix), so each scanner
     sees exactly its own family. *)
  let gx_vote ~rid ~j ~k = Printf.sprintf "gx:r%d.%d:p%d" rid j k
  let gx_exec ~rid ~j ~k = Printf.sprintf "gx:r%d.%d:p%d:a" rid j k

  let parse_gx_exec name =
    try
      Scanf.sscanf name "gx:r%d.%d:p%d:a%!" (fun rid j k -> Some (rid, j, k))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
end

(** Canonical names of method-cache entries. An entry caches the committed
    result of one read-only business-method invocation, so its identity is
    the pair (method label, request body) — one encode/decode pair shared by
    the application server's cache, the observability dumps and the spec
    checker, exactly like {!Reg_name} for the register families.

    Format: ["cache:<label>/<body>"]. The method label must not contain the
    ['/'] separator (labels are short identifiers like ["bank-audit"]); the
    body may contain anything, including further ['/'] characters — the
    parse splits on the {e first} one. *)
module Cache_key = struct
  let prefix = "cache:"

  let format ~label ~body =
    if String.contains label '/' then
      invalid_arg ("Cache_key.format: label contains '/': " ^ label);
    Printf.sprintf "%s%s/%s" prefix label body

  let parse name =
    let plen = String.length prefix in
    if
      String.length name <= plen
      || not (String.equal (String.sub name 0 plen) prefix)
    then None
    else
      let rest = String.sub name plen (String.length name - plen) in
      match String.index_opt rest '/' with
      | None -> None
      | Some i ->
          Some
            ( String.sub rest 0 i,
              String.sub rest (i + 1) (String.length rest - i - 1) )
end

(* [group] scopes the message to one replica group of a sharded cluster:
   servers drop requests addressed to another group, so a misrouted message
   can never start a transaction on the wrong shard. Single-group
   deployments use group 0 throughout. *)
(* [span] carries the client's root span id for causal tracing (0 = no
   tracing): the serving application server parents its per-try spans under
   it, stitching the cross-node request tree together. It is observability
   metadata only — no protocol decision reads it. *)
type Runtime.Types.payload +=
  | Request_msg of { request : request; j : int; group : int; span : int }
      (** client → application server: [\[Request, request, j\]] *)
  | Result_msg of { rid : int; j : int; decision : decision; group : int }
      (** application server → client: [\[Result, j, decision\]] *)
  | Reg_a_value of Runtime.Types.proc_id
      (** content of [regA\[j\]]: which server computes result [j] *)
  | Reg_d_value of decision  (** content of [regD\[j\]] *)
  | Result_batch_msg of {
      group : int;
      items : (int * int * decision) list;  (** (rid, j, decision) *)
    }
      (** application server → client: one message delivering every result
          of a batch that belongs to this client *)
  | Reg_lease_value of Runtime.Types.proc_id
      (** content of the lease register, instance [e]: holder of epoch [e] *)
  | Reg_batch_elect of {
      owner : Runtime.Types.proc_id;
      items : (int * int) list;  (** (rid, j) of every request in the batch *)
    }
      (** content of [batchA\[e,k\]]: the leaseholder's claim over a window
          of results — the batched analogue of N [Reg_a_value] writes *)
  | Reg_batch_seal
      (** content of [batchA\[e,k\]] written by a {e successor} leaseholder:
          closes epoch [e] at sequence [k]; the deposed holder's next elect
          attempt loses against it *)
  | Reg_batch_decide of decision list
      (** content of [batchD\[e,k\]]: the batch's decisions, positionally
          matching the winning [Reg_batch_elect.items] *)
  | Reg_batch_abort_all
      (** content of [batchD\[e,k\]] written by a cleaner: every request of
          the batch aborts (the batched analogue of [(nil, abort)]) *)
  | Result_cached_msg of { rid : int; j : int; result : result_value; group : int }
      (** application server → client: a read-only result served from the
          method cache, bypassing the registers and the commit pipeline.
          Distinct from {!Result_msg} so the client can mark the delivered
          record: cached records have no committed transaction behind them,
          and the spec checker holds them to the cache-coherence obligation
          instead of A.1/exactly-once *)
  | Result_replica_msg of {
      rid : int;
      j : int;
      result : result_value;
      lsn : int;  (** the replica state (primary LSN) the reads saw *)
      lag : int;  (** provable staleness at serve time (LSN delta) *)
      group : int;
    }
      (** application server → client: a read-only result computed on an
          asynchronous read replica, bypassing the registers and the commit
          pipeline. Like cached records these carry no committed
          transaction; the spec checker holds them to the
          replica-consistency obligation (result matches the primary's
          committed state {e as of [lsn]}, and [lag] ≤ the deployment's
          staleness bound) instead of A.1/exactly-once *)

type Runtime.Types.payload +=
  | Result_nack_msg of { rid : int; j : int; group : int; epoch : int }
      (** application server → client: explicit misroute bounce. The server
          cannot serve try [j] of [rid] (the request is stamped for another
          group, the key is not owned here under the current map, or the
          region is sealed for migration), so the client should fan out to
          other servers immediately instead of waiting out its resend
          timer. [epoch] is the server's map epoch ([0] when the
          deployment is not reconfigurable): a client holding an older map
          refetches it and re-routes (DESIGN.md §16). Carries no decision
          — it never concludes a try *)
  | Gx_elect of {
      owner : Runtime.Types.proc_id;
      participants : int list;
      body : string;
    }
      (** content of [regA\[j\]] for a {e cross-shard} try: the coordinator's
          claim over the global transaction. Carries the participant shard
          set and the request body so any cleaner that discovers the
          election can recompute the branch plan and drive the Paxos-Commit
          instance to completion without the crashed owner *)
  | Gx_vote_value of { ok : bool; values : Dbms.Value.t option list }
      (** content of a [Reg_name.gx_vote] register: participant [k]'s vote.
          [ok = true] promises every database of shard [k] is prepared;
          [values] are the branch's read results (for the coordinator's
          [finish]). [ok = false] aborts the global transaction *)
  | Gx_branch of { rid : int; j : int; k : int; ops : Dbms.Rm.op list }
      (** coordinator → participant-shard server: execute branch [k] of
          global transaction (rid, j) — run [ops] at your databases,
          prepare, and decide your shard's vote register. Resent until a
          {!Gx_voted} reply arrives *)
  | Gx_voted of {
      rid : int;
      j : int;
      k : int;
      ok : bool;
      values : Dbms.Value.t option list;
    }
      (** participant → coordinator: branch [k]'s vote register decided *)
  | Gx_resolve of { rid : int; j : int; k : int }
      (** takeover cleaner → participant-shard server: contest branch [k]'s
          vote register with an abort vote and reply its decided value —
          the suspicion-gated analogue of the classic regD contest *)
  | Gx_complete of { rid : int; j : int; k : int; outcome : Dbms.Rm.outcome }
      (** decision driver → participant-shard server: the global outcome is
          known; decide it at every database of shard [k]. Idempotent *)
  | Gx_completed of { rid : int; j : int; k : int }
      (** participant → decision driver: branch [k]'s databases decided *)

(* demux classes for the two client/server message streams *)
let cls_request =
  Runtime.Etx_runtime.register_class ~name:"etx-request" (function
    | Request_msg _ -> true
    | _ -> false)

let cls_result =
  Runtime.Etx_runtime.register_class ~name:"etx-result" (function
    | Result_msg _ | Result_batch_msg _ | Result_cached_msg _
    | Result_replica_msg _ | Result_nack_msg _ ->
        true
    | _ -> false)

(* cross-shard commit traffic: requests served by the gx handler fiber
   (forked only on cross-enabled servers), and replies consumed by whoever
   is driving the instance — coordinator pipeline or takeover cleaner *)
let cls_gx =
  Runtime.Etx_runtime.register_class ~name:"etx-gx" (function
    | Gx_branch _ | Gx_resolve _ | Gx_complete _ -> true
    | _ -> false)

let cls_gx_reply =
  Runtime.Etx_runtime.register_class ~name:"etx-gx-reply" (function
    | Gx_voted _ | Gx_completed _ -> true
    | _ -> false)

let pp_decision ppf d =
  Format.fprintf ppf "(%s,%s)"
    (match d.result with None -> "nil" | Some r -> r)
    (match d.outcome with Dbms.Rm.Commit -> "commit" | Dbms.Rm.Abort -> "abort")
