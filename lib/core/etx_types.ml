(** Domain types and wire messages of the e-Transaction protocol. *)

type request = {
  rid : int;  (** unique request identifier *)
  body : string;  (** the "Request" domain value (e.g. travel parameters) *)
}

(** The "Result" domain: what the business logic computed for the end-user
    (reservation numbers, hotel names, or a user-level failure report). *)
type result_value = string

(** A decision pairs a result with its transaction outcome — the content of
    the [regD] write-once registers. The paper writes [(nil, abort)] for a
    cleaning-thread abort; [result = None] encodes the [nil]. *)
type decision = { result : result_value option; outcome : Dbms.Rm.outcome }

let abort_decision = { result = None; outcome = Dbms.Rm.Abort }

type Runtime.Types.payload +=
  | Request_msg of { request : request; j : int }
      (** client → application server: [\[Request, request, j\]] *)
  | Result_msg of { rid : int; j : int; decision : decision }
      (** application server → client: [\[Result, j, decision\]] *)
  | Reg_a_value of Runtime.Types.proc_id
      (** content of [regA\[j\]]: which server computes result [j] *)
  | Reg_d_value of decision  (** content of [regD\[j\]] *)

(* demux classes for the two client/server message streams *)
let cls_request =
  Runtime.Etx_runtime.register_class ~name:"etx-request" (function
    | Request_msg _ -> true
    | _ -> false)

let cls_result =
  Runtime.Etx_runtime.register_class ~name:"etx-result" (function
    | Result_msg _ -> true
    | _ -> false)

let pp_decision ppf d =
  Format.fprintf ppf "(%s,%s)"
    (match d.result with None -> "nil" | Some r -> r)
    (match d.outcome with Dbms.Rm.Commit -> "commit" | Dbms.Rm.Abort -> "abort")
