(** The application-server protocol (paper Figures 4, 5 and 6).

    Each application server runs two protocol threads over a shared stack
    (reliable channels, failure detector, consensus agent, database
    readiness tracker):

    - the {e computation thread} (Fig. 5): on a client request [(r, j)] it
      competes for [regA\[j\]] — the write-once register electing which
      server computes try [j]. The winner runs the business logic inside
      transaction [(r, j)] across all databases, runs the atomic-commitment
      prepare phase (Fig. 4 [prepare()]), writes the resulting decision into
      [regD\[j\]] and terminates it (Fig. 4 [terminate()]: Decide to every
      database until acknowledged, then the result to the client);
    - the {e cleaning thread} (Fig. 6): for every suspected peer, it scans
      the registers of every known request and terminates each result the
      suspect had claimed, by writing [(nil, abort)] into [regD\[j\]] —
      obtaining either its own abort or, if the suspect got there first, the
      already-committed decision, which it then finishes (fail-over with
      commit, Fig. 1c).

    Application servers are stateless (all durable protocol state lives in
    the registers and the databases) and do not support recovery: per the
    paper's model a crashed server stays down, and a majority must stay up.

    When a [breakdown] accumulator is supplied, the winner path wraps each
    stage in {!Stats.Breakdown.span} with the paper's Figure 8 category
    names: "start", "SQL", "end", "prepare", "commit", "log-start" (the
    [regA] write) and "log-outcome" (the [regD] write).

    With [batch > 1] the server runs the {e leased, batched} fast path
    instead (DESIGN.md §12): a stable leaseholder elected once per lease
    epoch drains its request queue and pushes up to [batch] transactions
    through one election ([batchA]), one XA window, one group-commit
    prepare, one decision write ([batchD] — still the commit point) and one
    batched terminate round. Peers contest the lease only after the failure
    detector suspects the holder; the takeover seals the suspect's epoch,
    which aborts-or-finishes every outstanding batch (the Fig. 6 cleaning
    argument transposed to windows). *)

open Runtime

type fd_spec =
  | Fd_oracle  (** perfect detector from runtime ground truth *)
  | Fd_heartbeat of {
      period : float;
      initial_timeout : float;
      timeout_bump : float;
    }  (** the ◇P heartbeat detector of {!Dnet.Fdetect} *)

(** Which consensus implements the wo-registers — the paper treats this as
    pluggable ("e.g. \[4\]"); ablation A8 compares the two. *)
type register_backend =
  | Reg_ct  (** rotating-coordinator agent ({!Consensus.Agent}) *)
  | Reg_synod
      (** Paxos ({!Consensus.Synod}); detector-free, but without the
          persistence and garbage-collection extensions *)

type cross_cfg = {
  shard_of_key : string -> int;
      (** the cluster's routing map: which replica group owns a key *)
  peers : int -> Types.proc_id list;
      (** application servers of a participant group; a function because
          the full cluster membership is only known after every group
          spawned *)
}
(** Cross-shard commit wiring (DESIGN.md §15). When supplied, a request
    whose declared keyset spans several replica groups commits atomically
    across them via Paxos Commit over the wo-registers: the home server
    wins [regA\[j\]] with a [Gx_elect] record, ships each participant
    shard its branch of the plan ({!Business.cross_spec}), and commits iff
    every shard's vote register holds a yes vote — each cast only after
    that shard's databases all prepared. Any group's cleaner can finish or
    abort the instance when the coordinator is suspected, so a crashed
    coordinator never blocks the transaction. *)

type reconfig_cfg = {
  init_map : Shard_map.t;  (** the epoch-0 map the cluster booted with *)
  cfg_group : int;
      (** the group whose consensus decides the [cfg:e<n>] / [mig:e<n>]
          register sequences (group 0 by convention) and whose servers
          host migration drivers and the takeover monitor *)
  rc_groups : int;
      (** how many groups are provisioned (spares included): the
          heartbeat failure detector spans every provisioned group's
          servers when reconfiguration is on, because migration drivers
          must be able to give up on crashed servers of {e other}
          groups (seal and install acks) — a group-local detector never
          suspects them and the driver would wait forever *)
  rc_servers_of : int -> Types.proc_id list;
      (** group index → that group's application servers, spare
          (pre-provisioned) groups included *)
  rc_dbs_of : int -> (Types.proc_id * string) list;
      (** group index → that group's databases as (process, durable name);
          the name keys the destination's per-source import watermark *)
}
(** Elastic reconfiguration wiring (DESIGN.md §16). When supplied, the
    server forks a cfg fiber that tracks the epoch-versioned shard map
    (adopting newer maps from [Cfg_announce], answering [Cfg_query],
    sealing its group during migrations, and serving the driver's
    decision-transfer scans), and bounces requests its group does not own
    under the current map with an epoch-stamped [Result_nack_msg].
    Config-group servers additionally run {!Reconfig.Driver} migrations on
    [Mig_start] and a monitor that re-drives a decided migration intent
    whose owner is suspected. *)

type config = {
  rt : Etx_runtime.t;  (** the execution substrate hosting this server *)
  group : int;
      (** replica group (shard) this server belongs to; 0 for single-group
          deployments. Register names are prefixed with the group so two
          shards' wo-register arrays never collide, and requests stamped
          with another group are dropped rather than executed. *)
  index : int;  (** position in [servers]; 0 is the default primary *)
  servers : Types.proc_id list;
      (** this group's application servers, fixed order *)
  dbs : Types.proc_id list;
  business : Business.t;
  fd_spec : fd_spec;
  clean_period : float;  (** cleaning-thread scan interval *)
  poll : float;  (** local wait re-check interval *)
  exec_backoff : float;  (** lock-conflict retry back-off *)
  gc_after : float option;
      (** when set, a garbage-collection thread discards a request's
          register instances and protocol state this long after its last
          try terminated — the paper's §5 register-array clean-up. The
          at-most-once guarantee then only covers clients that do not
          retransmit after this period (the paper's timed caveat). *)
  backend : register_backend;
  persist : Consensus.Agent.persistence option;
      (** when set, the server's registers live on this stable storage and
          the server supports {e crash-recovery} (the paper's §5 pointer to
          [22,23]): on recovery it rejoins consensus from its log, so the
          liveness assumption weakens from "a majority never crashes" to "a
          majority is eventually up together". The cost — forced IO on the
          register write path — is exactly what the paper's diskless middle
          tier avoids; one caveat: a server re-elected for a try it had
          prepared before crashing cannot reconstruct the original result
          string, so the delivered result may degrade to an error report
          even though the transaction's effect applies exactly once. *)
  breakdown : Stats.Breakdown.t option;
  batch : int;
      (** maximum results per leased batch; 1 (the default) selects the
          classic per-result path, byte-identical to earlier revisions.
          Incompatible with [gc_after] (a collected lease or batch register
          would reopen a decided window). *)
  cache : Method_cache.t option;
      (** method cache for read-only business calls (DESIGN.md §13). On a
          hit the server replies [Result_cached_msg] without touching the
          registers or the databases; misses run the normal pipeline and
          fill the cache on commit (generation-guarded). A "cache-inval"
          fiber consumes the databases' commit-piggybacked [Invalidate]
          broadcasts — the deployment must spawn its database servers
          with [~invalidate:true] whenever caches are supplied. [None]
          (the default) leaves the request path byte-identical to the
          uncached protocol. *)
  replicas : (unit -> (Types.proc_id * Types.proc_id list) list) option;
      (** per-database asynchronous read replicas (DESIGN.md §14): on a
          cache-miss read-only request the server runs the business logic
          against a replica ([Replica_exec]/[Replica_values]) and replies
          [Result_replica_msg], tagged with the LSN snapshot the reads saw
          and its provable staleness — no election, no transaction, no
          primary SQL. A stale/refusing replica (or any loss of a single
          provable snapshot) falls back to the normal pipeline. A thunk
          because replicas are spawned after the application servers;
          [None] (the default) leaves the request path byte-identical to
          the replica-less protocol. *)
  replica_bound : int;
      (** max provable staleness (LSN delta) tolerated on a replica read *)
  replica_patience : float;
      (** how long a replica read may wait for its reply (poll-sliced)
          before falling back to the primary — bounds the stall a crashed
          or overloaded replica can impose on a request *)
  cross : cross_cfg option;
      (** cross-shard commit wiring; [None] (the default) confines every
          request to this server's own group — no gx fiber is forked and
          the request path stays byte-identical to the single-shard
          protocol *)
  reconfig : reconfig_cfg option;
      (** elastic reconfiguration; [None] (the default) fixes the map
          forever — no cfg fiber is forked and the request path stays
          byte-identical to the static protocol *)
}

val config :
  ?fd_spec:fd_spec ->
  ?clean_period:float ->
  ?poll:float ->
  ?exec_backoff:float ->
  ?gc_after:float ->
  ?backend:register_backend ->
  ?persist:Consensus.Agent.persistence ->
  ?breakdown:Stats.Breakdown.t ->
  ?group:int ->
  ?batch:int ->
  ?cache:Method_cache.t ->
  ?replicas:(unit -> (Types.proc_id * Types.proc_id list) list) ->
  ?replica_bound:int ->
  ?replica_patience:float ->
  ?cross:cross_cfg ->
  ?reconfig:reconfig_cfg ->
  rt:Etx_runtime.t ->
  index:int ->
  servers:Types.proc_id list ->
  dbs:Types.proc_id list ->
  business:Business.t ->
  unit ->
  config
(** Defaults: oracle failure detector, 20 ms clean period, 10 ms poll,
    40 ms exec back-off, no garbage collection, no breakdown accounting,
    group 0, batch 1 (classic path), no cache, no replicas, replica bound
    8, no cross-shard wiring. Raises [Invalid_argument] if [batch < 1] or
    if [batch > 1] is combined with [gc_after]. *)

val spawn : config -> Types.proc_id
(** Spawns on the backend in [cfg.rt]. *)
