(** Deterministic key → shard placement for the sharded cluster.

    A shard map is pure data shared by every client (and by the harness when
    partitioning seed data): the same key always lands on the same shard, on
    any process, in any run. Two policies:

    - [Hash] (default): FNV-1a over the key bytes, modulo the shard count.
      The hash is hand-rolled rather than [Hashtbl.hash] so placement cannot
      drift across compiler versions.
    - [Range bounds]: [shards - 1] strictly-sorted boundary strings; a key
      goes to the first shard whose boundary exceeds it (classic range
      partitioning, for workloads with meaningful key order). *)

type policy = Hash | Range of string list

type t

val create : ?policy:policy -> shards:int -> unit -> t
(** Raises [Invalid_argument] if [shards < 1], or if a [Range] policy does
    not carry exactly [shards - 1] strictly-sorted boundaries. *)

val shards : t -> int

val shard_of : t -> string -> int
(** Shard owning a routing key; in [0, shards). *)

val shard_of_body : t -> string -> int
(** [shard_of] of the body's {!Etx_types.routing_key}. *)

val shards_of : t -> string list -> int list
(** Participant set of a key set: the shards owning the keys, sorted and
    deduplicated. A singleton means the keys are co-located and the request
    can ride the intra-shard path. *)
