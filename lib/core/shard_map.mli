(** Deterministic key → shard placement for the sharded cluster.

    An alias of {!Reconfig.Shard_map} — the epoch-versioned map of
    DESIGN.md §16 — plus the body-routing helper core layers use. Epoch-0
    maps reproduce the historical unversioned placement bit-for-bit:
    FNV-1a modulo the shard count ([Hash], the default) or strictly-sorted
    boundary strings ([Range]). Later epochs are refinements produced by
    {!Reconfig.Shard_map.split} during online migration. *)

include module type of struct
  include Reconfig.Shard_map
end

val shard_of_body : t -> string -> int
(** [shard_of] of the body's {!Etx_types.routing_key}. *)
