let committed_for_rid rm rid =
  List.filter (fun xid -> xid.Dbms.Xid.rid = rid) (Dbms.Rm.committed_xids rm)

let agreement_a1 (d : Deployment.t) =
  List.concat_map
    (fun (record : Client.record) ->
      let xid = Dbms.Xid.make ~rid:record.rid ~j:record.tries in
      List.filter_map
        (fun (_, rm) ->
          match Dbms.Rm.phase_of rm xid with
          | Some Dbms.Rm.Committed -> None
          | phase ->
              Some
                (Printf.sprintf
                   "A.1: delivered %s not committed at %s (phase %s)"
                   (Dbms.Xid.to_string xid) (Dbms.Rm.name rm)
                   (match phase with
                   | None -> "unknown"
                   | Some Dbms.Rm.Active -> "active"
                   | Some Dbms.Rm.Prepared -> "prepared"
                   | Some Dbms.Rm.Aborted -> "aborted"
                   | Some Dbms.Rm.Committed -> assert false)))
        d.dbs)
    (Client.records d.client)

let agreement_a2 (d : Deployment.t) =
  List.concat_map
    (fun (_, rm) ->
      let by_rid = Hashtbl.create 8 in
      List.iter
        (fun xid ->
          let rid = xid.Dbms.Xid.rid in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_rid rid) in
          Hashtbl.replace by_rid rid (xid :: cur))
        (Dbms.Rm.committed_xids rm);
      Hashtbl.fold
        (fun rid xids acc ->
          if List.length xids > 1 then
            Printf.sprintf "A.2: %s committed %d results for request %d"
              (Dbms.Rm.name rm) (List.length xids) rid
            :: acc
          else acc)
        by_rid [])
    d.dbs

let decided_phase rm xid =
  match Dbms.Rm.phase_of rm xid with
  | Some Dbms.Rm.Committed -> Some Dbms.Rm.Commit
  | Some Dbms.Rm.Aborted -> Some Dbms.Rm.Abort
  | Some Dbms.Rm.Active | Some Dbms.Rm.Prepared | None -> None

let agreement_a3 (d : Deployment.t) =
  let all_xids =
    List.concat_map (fun (_, rm) -> Dbms.Rm.known_xids rm) d.dbs
    |> List.sort_uniq Dbms.Xid.compare
  in
  List.concat_map
    (fun xid ->
      let decisions =
        List.filter_map
          (fun (_, rm) ->
            Option.map (fun o -> (Dbms.Rm.name rm, o)) (decided_phase rm xid))
          d.dbs
      in
      match decisions with
      | [] | [ _ ] -> []
      | (_, first) :: rest ->
          List.filter_map
            (fun (name, o) ->
              if o = first then None
              else
                Some
                  (Printf.sprintf "A.3: %s decided differently on %s" name
                     (Dbms.Xid.to_string xid)))
            rest)
    all_xids

let computed_notes (d : Deployment.t) =
  List.filter_map
    (fun (_, s) ->
      if String.length s > 9 && String.sub s 0 9 = "computed:" then Some s
      else None)
    (d.rt.notes ())

let validity_v1 (d : Deployment.t) =
  let notes = computed_notes d in
  List.filter_map
    (fun (record : Client.record) ->
      let expected =
        Printf.sprintf "computed:%d:%d:%s" record.rid record.tries
          record.result
      in
      if List.mem expected notes then None
      else
        Some
          (Printf.sprintf
             "V.1: delivered result %S for request %d was never computed"
             record.result record.rid))
    (Client.records d.client)

let validity_v2 (d : Deployment.t) =
  let committed_anywhere =
    List.concat_map (fun (_, rm) -> Dbms.Rm.committed_xids rm) d.dbs
    |> List.sort_uniq Dbms.Xid.compare
  in
  List.concat_map
    (fun xid ->
      List.filter_map
        (fun (_, rm) ->
          let voted_yes =
            List.exists
              (fun (x, v) -> Dbms.Xid.equal x xid && v = Dbms.Rm.Yes)
              (Dbms.Rm.votes_cast rm)
          in
          if voted_yes then None
          else
            Some
              (Printf.sprintf "V.2: %s committed somewhere but %s never voted yes"
                 (Dbms.Xid.to_string xid) (Dbms.Rm.name rm)))
        d.dbs)
    committed_anywhere

let termination_t1 (d : Deployment.t) =
  if Client.script_done d.client then []
  else [ "T.1: client script did not run to completion" ]

let termination_t2 (d : Deployment.t) =
  List.concat_map
    (fun (_, rm) ->
      let in_doubt =
        List.map
          (fun xid ->
            Printf.sprintf "T.2: %s still in doubt at %s"
              (Dbms.Xid.to_string xid) (Dbms.Rm.name rm))
          (Dbms.Rm.in_doubt rm)
      in
      (* Only yes votes need a durable decision: a no vote aborts the
         transaction on the spot and holds no locks, and its (empty) abort
         record legitimately does not survive a later crash. *)
      let undecided_votes =
        List.filter_map
          (fun (xid, vote) ->
            match (vote, Dbms.Rm.phase_of rm xid) with
            | Dbms.Rm.No, _ -> None
            | Dbms.Rm.Yes, (Some Dbms.Rm.Committed | Some Dbms.Rm.Aborted) ->
                None
            | Dbms.Rm.Yes, (Some Dbms.Rm.Active | Some Dbms.Rm.Prepared | None)
              ->
                Some
                  (Printf.sprintf
                     "T.2: %s voted yes on %s but never decided it"
                     (Dbms.Rm.name rm) (Dbms.Xid.to_string xid)))
          (Dbms.Rm.votes_cast rm)
      in
      in_doubt @ undecided_votes)
    d.dbs

let exactly_once (d : Deployment.t) =
  List.concat_map
    (fun (record : Client.record) ->
      List.concat_map
        (fun (_, rm) ->
          match committed_for_rid rm record.rid with
          | [ xid ] when xid.Dbms.Xid.j = record.tries -> []
          | [ xid ] ->
              [
                Printf.sprintf
                  "exactly-once: %s committed try %d for request %d but the \
                   client delivered try %d"
                  (Dbms.Rm.name rm) xid.Dbms.Xid.j record.rid record.tries;
              ]
          | [] ->
              [
                Printf.sprintf
                  "exactly-once: no committed transaction at %s for \
                   delivered request %d"
                  (Dbms.Rm.name rm) record.rid;
              ]
          | xids ->
              [
                Printf.sprintf
                  "exactly-once: %d committed transactions at %s for request \
                   %d"
                  (List.length xids) (Dbms.Rm.name rm) record.rid;
              ])
        d.dbs)
    (Client.records d.client)

let check_all d =
  agreement_a1 d @ agreement_a2 d @ agreement_a3 d @ validity_v1 d
  @ validity_v2 d @ termination_t1 d @ termination_t2 d @ exactly_once d
