module View = struct
  type t = {
    label : string;
    dbs : (Runtime.Types.proc_id * Dbms.Rm.t) list;
    records : Client.record list;
    scripts_done : bool;
    notes : unit -> (Runtime.Types.proc_id * string) list;
    caches : (Runtime.Types.proc_id * Method_cache.t) list;
        (** per-app-server method caches (empty when caching is off);
            checked by {!cache_coherence} *)
    business : Business.t option;
        (** the deployment's business logic, for cache re-execution *)
    replicas :
      (Runtime.Types.proc_id * Dbms.Replica.t * Runtime.Types.proc_id) list;
        (** (replica pid, handle, primary database pid) triples — empty
            when replicas are off; checked by {!replica_consistency} *)
    replica_bound : int;
        (** the deployment's staleness bound (LSN delta); every
            replica-served record must prove lag ≤ this *)
  }

  let tag v msg = if v.label = "" then msg else v.label ^ ": " ^ msg

  let committed_for_rid rm rid =
    List.filter (fun xid -> xid.Dbms.Xid.rid = rid) (Dbms.Rm.committed_xids rm)

  (* Records served from a method cache or a read replica have no
     committed transaction of their own: A.1 and exactly-once deliberately
     skip them (a cached result's provenance is covered by V.1's
     computed-note check and the cache-coherence obligation; a
     replica-served one by the replica-consistency obligation below). *)
  let transactional v =
    List.filter
      (fun (r : Client.record) -> (not r.cached) && r.replica = None)
      v.records

  let agreement_a1 v =
    List.concat_map
      (fun (record : Client.record) ->
        let xid = Dbms.Xid.make ~rid:record.rid ~j:record.tries in
        List.filter_map
          (fun (_, rm) ->
            match Dbms.Rm.phase_of rm xid with
            | Some Dbms.Rm.Committed -> None
            | phase ->
                Some
                  (tag v
                     (Printf.sprintf
                        "A.1: delivered %s not committed at %s (phase %s)"
                        (Dbms.Xid.to_string xid) (Dbms.Rm.name rm)
                        (match phase with
                        | None -> "unknown"
                        | Some Dbms.Rm.Active -> "active"
                        | Some Dbms.Rm.Prepared -> "prepared"
                        | Some Dbms.Rm.Aborted -> "aborted"
                        | Some Dbms.Rm.Committed -> assert false))))
          v.dbs)
      (transactional v)

  let agreement_a2 v =
    List.concat_map
      (fun (_, rm) ->
        let by_rid = Hashtbl.create 8 in
        List.iter
          (fun xid ->
            let rid = xid.Dbms.Xid.rid in
            let cur = Option.value ~default:[] (Hashtbl.find_opt by_rid rid) in
            Hashtbl.replace by_rid rid (xid :: cur))
          (Dbms.Rm.committed_xids rm);
        Hashtbl.fold
          (fun rid xids acc ->
            if List.length xids > 1 then
              tag v
                (Printf.sprintf "A.2: %s committed %d results for request %d"
                   (Dbms.Rm.name rm) (List.length xids) rid)
              :: acc
            else acc)
          by_rid [])
      v.dbs

  let decided_phase rm xid =
    match Dbms.Rm.phase_of rm xid with
    | Some Dbms.Rm.Committed -> Some Dbms.Rm.Commit
    | Some Dbms.Rm.Aborted -> Some Dbms.Rm.Abort
    | Some Dbms.Rm.Active | Some Dbms.Rm.Prepared | None -> None

  let agreement_a3 v =
    let all_xids =
      List.concat_map (fun (_, rm) -> Dbms.Rm.known_xids rm) v.dbs
      |> List.sort_uniq Dbms.Xid.compare
    in
    List.concat_map
      (fun xid ->
        let decisions =
          List.filter_map
            (fun (_, rm) ->
              Option.map (fun o -> (Dbms.Rm.name rm, o)) (decided_phase rm xid))
            v.dbs
        in
        match decisions with
        | [] | [ _ ] -> []
        | (_, first) :: rest ->
            List.filter_map
              (fun (name, o) ->
                if o = first then None
                else
                  Some
                    (tag v
                       (Printf.sprintf "A.3: %s decided differently on %s" name
                          (Dbms.Xid.to_string xid))))
              rest)
      all_xids

  let computed_notes v =
    List.filter_map
      (fun (_, s) ->
        if String.length s > 9 && String.sub s 0 9 = "computed:" then Some s
        else None)
      (v.notes ())

  (* Parse "computed:<rid>:<j>:<result>" structurally; the result field may
     itself contain ':'.  Malformed notes are dropped rather than matched. *)
  let computed_results notes =
    List.filter_map
      (fun note ->
        match String.split_on_char ':' note with
        | "computed" :: rid :: j :: (_ :: _ as rest) ->
            if int_of_string_opt rid <> None && int_of_string_opt j <> None
            then Some (String.concat ":" rest)
            else None
        | _ -> None)
      notes

  let validity_v1 v =
    let notes = computed_notes v in
    let results = computed_results notes in
    List.filter_map
      (fun (record : Client.record) ->
        if record.cached then
          (* a cached result has no try of its own: it must have been
             computed by SOME earlier try (the cache fill) — any rid/j —
             matched on the full result field, not a bare suffix *)
          if List.exists (String.equal record.result) results then None
          else
            Some
              (tag v
                 (Printf.sprintf
                    "V.1: cached result %S for request %d was never computed \
                     by any try"
                    record.result record.rid))
        else if record.replica <> None then
          (* a replica-served result was computed on the replica, outside
             the elected-try protocol: its provenance obligation is
             replica-consistency (re-execution against the primary's state
             as of the record's LSN), not the computed-note check *)
          None
        else
          let expected =
            Printf.sprintf "computed:%d:%d:%s" record.rid record.tries
              record.result
          in
          if List.mem expected notes then None
          else
            Some
              (tag v
                 (Printf.sprintf
                    "V.1: delivered result %S for request %d was never computed"
                    record.result record.rid)))
      v.records

  let validity_v2 v =
    let committed_anywhere =
      List.concat_map (fun (_, rm) -> Dbms.Rm.committed_xids rm) v.dbs
      |> List.sort_uniq Dbms.Xid.compare
    in
    List.concat_map
      (fun xid ->
        List.filter_map
          (fun (_, rm) ->
            let voted_yes =
              List.exists
                (fun (x, v) -> Dbms.Xid.equal x xid && v = Dbms.Rm.Yes)
                (Dbms.Rm.votes_cast rm)
            in
            if voted_yes then None
            else
              Some
                (tag v
                   (Printf.sprintf
                      "V.2: %s committed somewhere but %s never voted yes"
                      (Dbms.Xid.to_string xid) (Dbms.Rm.name rm))))
          v.dbs)
      committed_anywhere

  let termination_t1 v =
    if v.scripts_done then []
    else [ tag v "T.1: client script did not run to completion" ]

  let termination_t2 v =
    List.concat_map
      (fun (_, rm) ->
        let in_doubt =
          List.map
            (fun xid ->
              tag v
                (Printf.sprintf "T.2: %s still in doubt at %s"
                   (Dbms.Xid.to_string xid) (Dbms.Rm.name rm)))
            (Dbms.Rm.in_doubt rm)
        in
        (* Only yes votes need a durable decision: a no vote aborts the
           transaction on the spot and holds no locks, and its (empty) abort
           record legitimately does not survive a later crash. *)
        let undecided_votes =
          List.filter_map
            (fun (xid, vote) ->
              match (vote, Dbms.Rm.phase_of rm xid) with
              | Dbms.Rm.No, _ -> None
              | Dbms.Rm.Yes, (Some Dbms.Rm.Committed | Some Dbms.Rm.Aborted) ->
                  None
              | ( Dbms.Rm.Yes,
                  (Some Dbms.Rm.Active | Some Dbms.Rm.Prepared | None) ) ->
                  Some
                    (tag v
                       (Printf.sprintf
                          "T.2: %s voted yes on %s but never decided it"
                          (Dbms.Rm.name rm) (Dbms.Xid.to_string xid))))
            (Dbms.Rm.votes_cast rm)
        in
        in_doubt @ undecided_votes)
      v.dbs

  let exactly_once v =
    List.concat_map
      (fun (record : Client.record) ->
        List.concat_map
          (fun (_, rm) ->
            match committed_for_rid rm record.rid with
            | [ xid ] when xid.Dbms.Xid.j = record.tries -> []
            | [ xid ] ->
                [
                  tag v
                    (Printf.sprintf
                       "exactly-once: %s committed try %d for request %d but \
                        the client delivered try %d"
                       (Dbms.Rm.name rm) xid.Dbms.Xid.j record.rid record.tries);
                ]
            | [] ->
                [
                  tag v
                    (Printf.sprintf
                       "exactly-once: no committed transaction at %s for \
                        delivered request %d"
                       (Dbms.Rm.name rm) record.rid);
                ]
            | xids ->
                [
                  tag v
                    (Printf.sprintf
                       "exactly-once: %d committed transactions at %s for \
                        request %d"
                       (List.length xids) (Dbms.Rm.name rm) record.rid);
                ])
          v.dbs)
      (transactional v)

  (* Cache coherence (DESIGN.md §13): every entry still LIVE in a method
     cache must equal re-executing its method against the databases'
     current committed state — this is exactly the consistency claim of
     the commit-piggybacked invalidation protocol (a write that made an
     entry stale must have swept it). Re-execution runs the business logic
     over a read-only window onto each database's committed store; a
     supposedly read-only method that attempts a write during re-execution
     is itself a violation. Entries already invalidated are (correctly)
     not checked — a result {e delivered} before a later write is allowed
     to be outdated by it, just like an uncached read would be. *)
  let cache_coherence v =
    match v.business with
    | None -> []
    | Some b ->
        let db_pids = List.map fst v.dbs in
        List.concat_map
          (fun (pid, cache) ->
            List.concat_map
              (fun (e : Method_cache.entry) ->
                let where =
                  Printf.sprintf "%s (server %d)"
                    (Etx_types.Cache_key.format ~label:e.label ~body:e.body)
                    pid
                in
                if e.label <> b.Business.label then
                  [
                    tag v
                      (Printf.sprintf
                         "cache-coherence: %s cached for method %S but the \
                          deployment runs %S"
                         where e.label b.Business.label);
                  ]
                else begin
                  let wrote = ref false in
                  let exec ~db ops =
                    let rm = List.assoc db v.dbs in
                    let values =
                      List.filter_map
                        (fun op ->
                          match op with
                          | Dbms.Rm.Get k ->
                              Some (Dbms.Rm.read_committed rm k)
                          | _ ->
                              wrote := true;
                              None)
                        ops
                    in
                    Dbms.Rm.Exec_ok { values; business_ok = true }
                  in
                  let ctx =
                    {
                      Business.xid = Dbms.Xid.make ~rid:0 ~j:0;
                      dbs = db_pids;
                      exec;
                      attempt = 1;
                    }
                  in
                  let fresh = b.Business.run ctx ~body:e.body in
                  let writes =
                    if !wrote then
                      [
                        tag v
                          (Printf.sprintf
                             "cache-coherence: re-executing %s performed \
                              writes (method is not read-only)"
                             where);
                      ]
                    else []
                  in
                  let stale =
                    if String.equal fresh e.result then []
                    else
                      [
                        tag v
                          (Printf.sprintf
                             "cache-coherence: %s caches %S but re-execution \
                              against committed state gives %S"
                             where e.result fresh);
                      ]
                  in
                  writes @ stale
                end)
              (Method_cache.entries cache))
          v.caches

  (* Replica consistency (DESIGN.md §14). Two obligations:

     (a) {e replica state = a committed log prefix}: every replica's store
     must equal the primary's committed state as of the replica's applied
     LSN — the change feed applied in LSN order can produce nothing else,
     and any divergence (reordering, a lost entry, a write leaking onto a
     replica) shows up here. [state_at] answers [None] when a later
     checkpoint discarded the history below the replica's LSN or the LSN
     is ahead of the primary's committed watermark (possible mid-recovery
     while the primary replays); both are unverifiable, not violations —
     the fault sweeps run this check at quiescence too, where the common
     case is verifiable.

     (b) {e every replica-served record is honestly bounded}: its proven
     lag is within the deployment's bound, and re-executing the business
     method against the primary's committed state {e as of the record's
     LSN} reproduces the delivered result — the staleness tag is a real
     snapshot, not a guess. *)
  let replica_consistency v =
    let state_checks =
      List.concat_map
        (fun (rpid, replica, db_pid) ->
          match List.assoc_opt db_pid v.dbs with
          | None -> []
          | Some rm -> (
              match Dbms.Rm.state_at rm ~lsn:(Dbms.Replica.applied_lsn replica)
              with
              | None -> [] (* unverifiable: checkpointed past or mid-replay *)
              | Some expect ->
                  let expected =
                    Hashtbl.fold (fun k value acc -> (k, value) :: acc) expect []
                    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
                  in
                  if expected = Dbms.Replica.store_bindings replica then []
                  else
                    [
                      tag v
                        (Printf.sprintf
                           "replica-consistency: %s (pid %d) at LSN %d does                             not equal %s's committed prefix"
                           (Dbms.Replica.name replica)
                           rpid
                           (Dbms.Replica.applied_lsn replica)
                           (Dbms.Rm.name rm));
                    ]))
        v.replicas
    in
    let record_checks =
      match v.business with
      | None -> []
      | Some b ->
          let db_pids = List.map fst v.dbs in
          List.concat_map
            (fun (record : Client.record) ->
              match record.replica with
              | None -> []
              | Some (lsn, lag) ->
                  let bound_errs =
                    if lag <= v.replica_bound then []
                    else
                      [
                        tag v
                          (Printf.sprintf
                             "replica-consistency: request %d served with                               lag %d above bound %d"
                             record.rid lag v.replica_bound);
                      ]
                  in
                  let unverifiable = ref false in
                  let exec ~db ops =
                    match
                      Option.bind
                        (List.assoc_opt db v.dbs)
                        (fun rm -> Dbms.Rm.state_at rm ~lsn)
                    with
                    | None ->
                        unverifiable := true;
                        Dbms.Rm.Exec_ok { values = []; business_ok = true }
                    | Some state ->
                        let values =
                          List.filter_map
                            (fun op ->
                              match op with
                              | Dbms.Rm.Get k ->
                                  Some (Hashtbl.find_opt state k)
                              | _ ->
                                  unverifiable := true;
                                  None)
                            ops
                        in
                        Dbms.Rm.Exec_ok { values; business_ok = true }
                  in
                  let ctx =
                    {
                      Business.xid = Dbms.Xid.make ~rid:0 ~j:0;
                      dbs = db_pids;
                      exec;
                      attempt = 1;
                    }
                  in
                  let fresh = b.Business.run ctx ~body:record.body in
                  let result_errs =
                    if !unverifiable || String.equal fresh record.result then
                      []
                    else
                      [
                        tag v
                          (Printf.sprintf
                             "replica-consistency: request %d delivered %S                               but the primary's state at LSN %d gives %S"
                             record.rid record.result lsn fresh);
                      ]
                  in
                  bound_errs @ result_errs)
            v.records
    in
    state_checks @ record_checks

  let check_all v =
    agreement_a1 v @ agreement_a2 v @ agreement_a3 v @ validity_v1 v
    @ validity_v2 v @ termination_t1 v @ termination_t2 v @ exactly_once v
    @ cache_coherence v @ replica_consistency v
end

let view ?(label = "") (d : Deployment.t) =
  {
    View.label;
    dbs = d.dbs;
    records = Client.records d.client;
    scripts_done = Client.script_done d.client;
    notes = d.rt.notes;
    (* only live servers' caches carry the coherence obligation: a crashed
       server can serve nothing, and its recovery path starts cold *)
    caches = List.filter (fun (pid, _) -> d.rt.is_up pid) d.caches;
    business = Some d.business;
    replicas = d.replicas;
    replica_bound = d.replica_bound;
  }

let agreement_a1 d = View.agreement_a1 (view d)
let agreement_a2 d = View.agreement_a2 (view d)
let agreement_a3 d = View.agreement_a3 (view d)
let validity_v1 d = View.validity_v1 (view d)
let validity_v2 d = View.validity_v2 (view d)
let termination_t1 d = View.termination_t1 (view d)
let termination_t2 d = View.termination_t2 (view d)
let exactly_once d = View.exactly_once (view d)
let cache_coherence d = View.cache_coherence (view d)
let replica_consistency d = View.replica_consistency (view d)
let check_all d = View.check_all (view d)
