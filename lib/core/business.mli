(** The paper's [compute()] abstraction: business logic that manipulates the
    databases inside a transaction and produces a result value.

    [compute()] is non-deterministic — its result depends on database state
    — and may be invoked several times for the same request (for successive
    result identifiers [j]). It must not commit anything itself. Per the
    paper's footnote, business logic must not insist forever on an
    uncommittable outcome: after a user-level abort it should eventually
    compute a result that merely {e reports} the problem, which the
    databases will happily commit. *)

open Runtime

type context = {
  xid : Dbms.Xid.t;  (** the transaction this computation runs in *)
  dbs : Types.proc_id list;  (** all database servers *)
  exec : db:Types.proc_id -> Dbms.Rm.op list -> Dbms.Rm.exec_reply;
      (** blocking transactional batch on one database (with bounded
          lock-conflict retry); [Exec_rejected] means the database lost the
          transaction — give up, the vote will abort the try *)
  attempt : int;  (** the result identifier [j] of this try *)
}

type keyset = { reads : string list; writes : string list }
(** The database keys a method invocation declares it will touch, as a
    function of the request body alone (it cannot depend on database
    state). [reads] index cache entries for invalidation; [writes] let the
    decider invalidate its own cache eagerly. Declared keysets may
    under-approximate writes — the commit pipeline's invalidation is
    derived from the transaction's {e actual} workspace at the database —
    but [reads] must cover every key whose value the result depends on,
    or cached results can go stale undetected. *)

type branch_reply = { ok : bool; values : Dbms.Value.t option list }
(** Outcome of one branch of a cross-shard plan: [ok] is the branch's
    business verdict (a failed [Ensure_min], a lock-conflict give-up or a
    database rejection all make it [false], which becomes an abort vote);
    [values] are the branch's [Get] results in operation order. *)

type cross_spec = {
  plan : attempt:int -> body:string -> (string * Dbms.Rm.op list) list;
      (** [plan ~attempt ~body] decomposes the invocation into branches:
          [(anchor_key, ops)] pairs, each executed transactionally on the
          shard owning [anchor_key]. Pure — it may depend only on its
          arguments (it is re-evaluated verbatim by whoever completes the
          transaction after a coordinator crash). Branches sharing a shard
          are merged by the engine. Like the classic [run], successive
          attempts may plan differently (e.g. degrade to a read-only probe
          after user-level aborts) but must eventually plan something the
          databases will commit. *)
  finish :
    attempt:int ->
    body:string ->
    replies:(string * branch_reply) list ->
    Etx_types.result_value;
      (** [finish] folds the branches' replies (keyed by anchor key) into
          the result value, called only when every branch voted yes — the
          commit case. Pure for the same reason as [plan]: any driver must
          derive the identical committed result. *)
}
(** Cross-shard decomposition of a business method, used only when the
    request's keys span several shards; co-located requests always ride
    [run]. *)

type t = {
  label : string;
  run : context -> body:string -> Etx_types.result_value;
      (** must always return a (non-nil) result value *)
  read_only : string -> bool;
      (** [read_only body]: this invocation performs no writes and is
          idempotent, so its result may be served from the method cache *)
  keys : string -> keyset;  (** declared keyset of an invocation *)
  cacheable : Etx_types.result_value -> bool;
      (** [cacheable result]: the committed result of a read-only call is
          a function of committed state and may enter the method cache.
          Transient error reports (a try re-executed during fail-over can
          commit one) are deliverable but must not be cached — re-reading
          would not reproduce them. *)
  cross : cross_spec option;
      (** cross-shard decomposition; [None] (the default) confines the
          method to a single shard, exactly as before cross-shard commit
          existed *)
}

val no_keys : keyset
(** [{ reads = []; writes = [] }] — the declaration of a method that does
    not participate in caching. *)

val make :
  ?read_only:(string -> bool) ->
  ?keys:(string -> keyset) ->
  ?cacheable:(Etx_types.result_value -> bool) ->
  ?cross:cross_spec ->
  label:string ->
  (context -> body:string -> Etx_types.result_value) ->
  t
(** Smart constructor; [read_only] defaults to never, [keys] to
    {!no_keys} — i.e. methods are uncacheable unless they opt in —
    [cacheable] to rejecting ["error:"]-prefixed results (the
    convention every bundled workload uses for transient failures), and
    [cross] to [None] (single-shard only). Workloads with richer result
    grammars should whitelist explicitly. *)

val trivial : t
(** Reads nothing, writes one marker key; useful for protocol tests. *)
