(** The paper's [compute()] abstraction: business logic that manipulates the
    databases inside a transaction and produces a result value.

    [compute()] is non-deterministic — its result depends on database state
    — and may be invoked several times for the same request (for successive
    result identifiers [j]). It must not commit anything itself. Per the
    paper's footnote, business logic must not insist forever on an
    uncommittable outcome: after a user-level abort it should eventually
    compute a result that merely {e reports} the problem, which the
    databases will happily commit. *)

open Runtime

type context = {
  xid : Dbms.Xid.t;  (** the transaction this computation runs in *)
  dbs : Types.proc_id list;  (** all database servers *)
  exec : db:Types.proc_id -> Dbms.Rm.op list -> Dbms.Rm.exec_reply;
      (** blocking transactional batch on one database (with bounded
          lock-conflict retry); [Exec_rejected] means the database lost the
          transaction — give up, the vote will abort the try *)
  attempt : int;  (** the result identifier [j] of this try *)
}

type t = {
  label : string;
  run : context -> body:string -> Etx_types.result_value;
      (** must always return a (non-nil) result value *)
}

val trivial : t
(** Reads nothing, writes one marker key; useful for protocol tests. *)
