(** Per-app-server transactional method cache (Pfeifer & Lockemann's
    {e Theory and Practice of Transactional Method Caching} applied to the
    paper's three-tier shape).

    Caches the committed results of read-only business-method invocations
    at the stateless middle tier, keyed by {!Etx_types.Cache_key}.
    Invalidation is driven by the commit pipeline: every committed
    transaction's write keyset is intersected against each entry's
    declared read keyset, and intersecting entries are dropped. The cache
    itself is a plain mutable structure — all synchronisation is the
    app-server fiber's (fibers are cooperatively scheduled on both
    backends, so operations are atomic between yields); the fill/compute
    race across yields is closed by the {!generation} counter. *)

type entry = {
  label : string;  (** business-method label *)
  body : string;  (** request body (the method's arguments) *)
  reads : string list;  (** declared read keyset — invalidation index *)
  result : Etx_types.result_value;
}

type t

val create : unit -> t

val find : t -> label:string -> body:string -> Etx_types.result_value option
(** Cache lookup; [None] is a miss. *)

val generation : t -> int
(** Monotone counter bumped by every {!invalidate}/{!flush}. Snapshot it
    {e before} running a business method; pass the snapshot to {!store}. *)

val store :
  t ->
  generation:int ->
  label:string ->
  body:string ->
  reads:string list ->
  result:Etx_types.result_value ->
  bool
(** Fill the cache with a freshly computed read-only result. Refused
    ([false]) when [generation] is stale — an invalidation ran between the
    snapshot and the fill, so the result may predate a committed write. *)

val invalidate : t -> writes:string list -> int
(** Drop every entry whose read keyset intersects [writes]; returns the
    number dropped. Always bumps the generation, even when [writes = []]
    drops nothing. *)

val flush : t -> int
(** Drop everything (flush-all invalidation); returns the number dropped. *)

val size : t -> int
val entries : t -> entry list
(** Live entries, unordered — the spec checker re-executes each against
    committed state. *)

val fills : t -> int
(** Lifetime count of successful {!store}s. *)

val drops : t -> int
(** Lifetime count of entries dropped by {!invalidate}/{!flush}. *)
