open Runtime
module Rt = Etx_runtime
open Dnet

type record = {
  rid : int;
  key : string;
  body : string;
  result : Etx_types.result_value;
  tries : int;
  issued_at : float;
  delivered_at : float;
  cached : bool;
      (** served from an app server's method cache: no transaction was
          committed for this request, so the spec checks cache coherence
          instead of A.1/exactly-once *)
  replica : (int * int) option;
      (** [Some (lsn, lag)]: served by an asynchronous read replica from
          the primary's committed state as of [lsn], with provable
          staleness [lag]; no transaction was committed for this request,
          so the spec checks replica consistency instead of
          A.1/exactly-once *)
}

type handle = {
  pid : Types.proc_id;
  records : record list ref;
  finished : bool ref;
}

(* Request ids come from the runtime's per-instance uid counter so
   concurrent clients in one runtime never collide, and independent trials
   (possibly running in parallel domains) never share state. *)
let fresh_rid () = Rt.fresh_uid ()

let wants_result rid j m =
  match m.Types.payload with
  | Etx_types.Result_msg { rid = r; j = j'; _ }
  | Etx_types.Result_cached_msg { rid = r; j = j'; _ }
  | Etx_types.Result_replica_msg { rid = r; j = j'; _ }
  | Etx_types.Result_nack_msg { rid = r; j = j'; _ } ->
      r = rid && j' = j
  | Etx_types.Result_batch_msg { items; _ } ->
      List.exists (fun (r, j', _) -> r = rid && j' = j) items
  | _ -> false

(* this client's decision for (rid, j), from any framing; the [bool] marks
   a cache-served reply and the option a replica-served one (both always a
   committed-with-result shape) *)
let decision_for rid j m =
  match m.Types.payload with
  | Etx_types.Result_msg { decision; _ } -> (decision, false, None)
  | Etx_types.Result_cached_msg { result; _ } ->
      ({ Etx_types.result = Some result; outcome = Dbms.Rm.Commit }, true, None)
  | Etx_types.Result_replica_msg { result; lsn; lag; _ } ->
      ( { Etx_types.result = Some result; outcome = Dbms.Rm.Commit },
        false,
        Some (lsn, lag) )
  | Etx_types.Result_batch_msg { items; _ } -> (
      match List.find_opt (fun (r, j', _) -> r = rid && j' = j) items with
      | Some (_, _, d) -> (d, false, None)
      | None -> assert false)
  | _ -> assert false

let spawn (rt : Rt.t) ?(name = "client") ?(period = 400.) ?(affinity = 0)
    ?router ~servers ~script () =
  let records = ref [] in
  let finished = ref false in
  (match servers with
  | _ :: _ -> ()
  | [] -> invalid_arg "Client.spawn: no application servers");
  (* [route key] names the replica group serving [key]: default is the
     single group made of [servers]; a sharded cluster passes [router] to
     spread keys over its groups. *)
  let route =
    match router with
    | Some r -> r
    | None -> fun _key -> (0, servers)
  in
  let pid =
    rt.spawn ~name ~main:(fun ~recovery () ->
        if recovery then Rt.note "client-recovery:staying-silent"
        else begin
          let ch = Rchannel.create () in
          Rchannel.start ch;
          (* fetched once per fiber; None = observability off (common case) *)
          let sink = Rt.obs () in
          let issue body =
            let rid = fresh_rid () in
            let key = Etx_types.routing_key body in
            let group, servers = route key in
            (* [affinity] rotates the first-try target so independent
               clients spread over the group's servers (cache locality /
               load); 0 — the default — is the paper's behaviour of always
               addressing the head server first. Retries still broadcast. *)
            let primary =
              match servers with
              | [] -> invalid_arg "Client: router returned no servers"
              | servers ->
                  List.nth servers (affinity mod List.length servers)
            in
            let request = { Etx_types.rid; key; body } in
            let issued_at = Rt.now () in
            let span =
              match sink with
              | None -> 0
              | Some s ->
                  s.Rt.obs_count "client.requests" 1;
                  s.Rt.obs_span_open ~trace:rid "request"
            in
            (* one try = one result identifier j (Fig. 2 main loop) *)
            let rec try_j j =
              Rchannel.send ch primary
                (Etx_types.Request_msg { request; j; group; span });
              match
                Rt.recv ~timeout:period ~cls:Etx_types.cls_result
                  ~filter:(wants_result rid j) ()
              with
              | Some { Types.payload = Etx_types.Result_nack_msg _; _ } ->
                  (* explicit misroute bounce: the primary serves another
                     group, so fan out to the rest of the list now rather
                     than waiting out the resend timer *)
                  (match sink with
                  | None -> ()
                  | Some s -> s.Rt.obs_count "client.bounced" 1);
                  broadcast_phase j
              | Some m -> conclude j m
              | None -> broadcast_phase j
            and broadcast_phase j =
              (match sink with
              | None -> ()
              | Some s -> s.Rt.obs_count "client.backoff_epochs" 1);
              Rchannel.broadcast ch servers
                (Etx_types.Request_msg { request; j; group; span });
              await_broadcast j
            and await_broadcast j =
              match
                Rt.recv ~timeout:period ~cls:Etx_types.cls_result
                  ~filter:(wants_result rid j) ()
              with
              | Some { Types.payload = Etx_types.Result_nack_msg _; _ } ->
                  (* a bounce during the broadcast phase carries no news —
                     the fan-out already reached every server — so consume
                     it and keep waiting for a real result (no immediate
                     rebroadcast: N-1 misrouted targets would otherwise
                     trigger N-1 resend storms) *)
                  await_broadcast j
              | Some m -> conclude j m
              | None -> broadcast_phase j
            and conclude j m =
              let decision, cached, replica = decision_for rid j m in
              match (decision.outcome, decision.result) with
              | Dbms.Rm.Commit, Some result ->
                  let record =
                    {
                      rid;
                      key;
                      body;
                      result;
                      tries = j;
                      issued_at;
                      delivered_at = Rt.now ();
                      cached;
                      replica;
                    }
                  in
                  records := !records @ [ record ];
                  (match sink with
                  | None -> ()
                  | Some s ->
                      (* incremented exactly where the record is
                         appended, so counter == |records| on any
                         backend — the Spec cross-check relies on it *)
                      s.Rt.obs_count "client.committed" 1;
                      if cached then s.Rt.obs_count "client.cache_served" 1;
                      if replica <> None then
                        s.Rt.obs_count "client.replica_served" 1;
                      s.Rt.obs_observe "client.latency_ms"
                        (record.delivered_at -. record.issued_at);
                      s.Rt.obs_span_attr span "tries" (string_of_int j);
                      s.Rt.obs_span_close span);
                  record
              | Dbms.Rm.Commit, None ->
                  (* a committed decision always carries a result (V.1);
                     reaching this is a protocol bug worth crashing on *)
                  failwith "e-Transaction: committed decision without result"
              | Dbms.Rm.Abort, _ ->
                  (match sink with
                  | None -> ()
                  | Some s -> s.Rt.obs_count "client.retries" 1);
                  try_j (j + 1)
            in
            try_j 1
          in
          script ~issue;
          finished := true
        end)
  in
  { pid; records; finished }

let pid t = t.pid

let records t = !(t.records)

let script_done t = !(t.finished)
